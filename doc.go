// Package immersionoc is a reproduction of "Cost-Efficient
// Overclocking in Immersion-Cooled Datacenters" (Jalili et al.,
// ISCA 2021): calibrated models of two-phase immersion cooling,
// sustained overclocking and its power/lifetime/stability costs, and
// the control-plane systems the paper builds on top — an
// overclocking governor, an overclocking-enhanced VM auto-scaler,
// oversubscription-based dense packing, virtual failover buffers, and
// the TCO analysis.
//
// The library lives under internal/; the runnable surfaces are the
// cmd/ tools (octl regenerates every table and figure), the examples/
// programs, and the root-level benchmarks in bench_test.go. See
// README.md, DESIGN.md and EXPERIMENTS.md.
package immersionoc
