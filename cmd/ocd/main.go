// Command ocd is the overclocking control-plane daemon: the paper's
// placement + overclock governor served live over HTTP instead of
// replayed in batch. It loads a fleet (the same dcsim models octl's
// experiments run), advances the simulation in stepped or scaled time,
// and serves the typed v1 API defined in internal/api — the shape of a
// Kubernetes scheduler extender (filter/prioritize) plus the overclock
// grant/cancel verb and deterministic time control:
//
//	ocd -fleet default -listen 127.0.0.1:8080 &
//	curl -s localhost:8080/v1/status | jq .
//	curl -s -XPOST localhost:8080/v1/filter -d '{"vm":{"id":1,"vcores":4,"memory_gb":16,"avg_util":0.5}}'
//	curl -s -XPOST localhost:8080/v1/overclock -d '{"server":3}'
//	curl -s -XPOST localhost:8080/v1/step -d '{"steps":12}'
//	curl -s localhost:8080/metrics
//
// Flags:
//
//	-listen addr  API listen address (default 127.0.0.1:8080; use
//	              127.0.0.1:0 for an ephemeral port — the resolved
//	              address is logged on stderr)
//	-fleet spec   "default" or a JSON fleet-config file (see fleetFile)
//	-mode m       "stepped" (time advances only via POST /v1/step) or
//	              "scaled" (wall-clock drives steps continuously)
//	-scale X      in scaled mode, simulated seconds per wall second
//	-shards N     partition the fleet into N concurrently-stepped
//	              shards (0 = serial; KPIs are byte-stable either way)
//	-j N          GOMAXPROCS override (0 = runtime default); also grows
//	              the shared worker budget sharded stepping draws from
//	-seed N       override the fleet trace's RNG seed
//	-publish-max-latency d
//	              group-commit window for snapshot publication: writes
//	              arriving within d of the last publish coalesce into
//	              one, published at latest d after the first (0 = every
//	              write publishes immediately)
//	-timeout d    graceful-shutdown drain budget (0 = 5s)
//	-metrics f    write the final telemetry snapshot as JSON to f on exit
//	-pprof addr   serve net/http/pprof on addr
//
// On SIGTERM or SIGINT the daemon drains in-flight requests, writes
// the final telemetry snapshot (-metrics), logs the closing fleet
// report, and exits 0.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"immersionoc/internal/cli"
	"immersionoc/internal/dcsim"
	"immersionoc/internal/ocd"
	"immersionoc/internal/sweep"
	"immersionoc/internal/telemetry"
	"immersionoc/internal/vm"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

type options struct {
	cli.Common // -j, -seed, -timeout, -metrics, -pprof

	listen        string
	fleet         string
	mode          string
	scale         float64
	shards        int
	publishWindow time.Duration
}

func parseArgs(args []string) (options, error) {
	var c options
	fs := flag.NewFlagSet("ocd", flag.ContinueOnError)
	c.Register(fs)
	fs.StringVar(&c.listen, "listen", "127.0.0.1:8080", "API listen address (host:0 picks an ephemeral port)")
	fs.StringVar(&c.fleet, "fleet", "default", `fleet config: "default" or a JSON file path`)
	fs.StringVar(&c.mode, "mode", "stepped", `time mode: "stepped" (POST /v1/step) or "scaled" (wall clock)`)
	fs.Float64Var(&c.scale, "scale", 300, "scaled mode: simulated seconds per wall second")
	fs.IntVar(&c.shards, "shards", 0, "fleet simulation shards stepped concurrently (0 = serial)")
	fs.DurationVar(&c.publishWindow, "publish-max-latency", 0,
		"write-plane group-commit window; 0 publishes a snapshot after every write")
	if _, err := cli.ParseInterleaved(fs, args); err != nil {
		return c, err
	}
	if c.publishWindow < 0 {
		return c, errors.New("-publish-max-latency must be non-negative")
	}
	if c.mode != ocd.ModeStepped && c.mode != ocd.ModeScaled {
		return c, fmt.Errorf("-mode must be %q or %q", ocd.ModeStepped, ocd.ModeScaled)
	}
	if c.scale <= 0 {
		return c, errors.New("-scale must be positive")
	}
	if c.shards < 0 {
		return c, errors.New("-shards must be non-negative")
	}
	return c, nil
}

// fleetFile is the JSON schema of -fleet (snake_case, matching the
// wire convention). A trace block with a positive arrival rate makes
// the daemon replay that generated workload during steps (closed
// loop); without one the daemon starts empty and arrivals come only
// through the API (open loop).
type fleetFile struct {
	Servers            int     `json:"servers"`
	ServersPerTank     int     `json:"servers_per_tank"`
	OversubRatio       float64 `json:"oversub_ratio"`
	FeederBudgetW      float64 `json:"feeder_budget_w"`
	StepS              float64 `json:"step_s"`
	OverclockThreshold float64 `json:"overclock_threshold"`
	DurationS          float64 `json:"duration_s"`
	Trace              *struct {
		Seed             uint64  `json:"seed"`
		ArrivalRatePerS  float64 `json:"arrival_rate_per_s"`
		MeanLifetimeS    float64 `json:"mean_lifetime_s"`
		HighPerfFraction float64 `json:"high_perf_fraction"`
	} `json:"trace,omitempty"`
}

// loadFleet resolves -fleet into a dcsim config. The -seed override
// applies to a replayed trace's RNG.
func loadFleet(spec string, seed uint64) (dcsim.Config, error) {
	cfg := dcsim.DefaultConfig()
	if spec == "default" || spec == "" {
		cfg.Events = []vm.Event{} // open loop: the API drives arrivals
		return cfg, nil
	}
	data, err := os.ReadFile(spec)
	if err != nil {
		return cfg, err
	}
	var f fleetFile
	if err := json.Unmarshal(data, &f); err != nil {
		return cfg, fmt.Errorf("fleet %s: %w", spec, err)
	}
	if f.Servers > 0 {
		cfg.Servers = f.Servers
	}
	if f.ServersPerTank > 0 {
		cfg.ServersPerTank = f.ServersPerTank
	}
	cfg.OversubRatio = f.OversubRatio
	cfg.FeederBudgetW = f.FeederBudgetW
	if f.StepS > 0 {
		cfg.StepS = f.StepS
	}
	if f.OverclockThreshold > 0 {
		cfg.OverclockThreshold = f.OverclockThreshold
	}
	if f.DurationS > 0 {
		cfg.Trace.DurationS = f.DurationS
	}
	if f.Trace != nil && f.Trace.ArrivalRatePerS > 0 {
		cfg.Trace.Seed = f.Trace.Seed
		cfg.Trace.ArrivalRatePerS = f.Trace.ArrivalRatePerS
		if f.Trace.MeanLifetimeS > 0 {
			cfg.Trace.MeanLifetimeS = f.Trace.MeanLifetimeS
		}
		cfg.Trace.HighPerfFraction = f.Trace.HighPerfFraction
	} else {
		cfg.Events = []vm.Event{}
	}
	if seed != 0 {
		cfg.Trace.Seed = seed
	}
	return cfg, nil
}

func run(args []string) int {
	c, err := parseArgs(args)
	if err != nil {
		return 2
	}
	if c.Workers > 0 {
		runtime.GOMAXPROCS(c.Workers)
		// The sharded simulation draws its step workers from the same
		// process-wide budget octl's sweeps use; -j sizes both.
		sweep.Shared.Grow(c.Workers)
	}

	cfg, err := loadFleet(c.fleet, c.Seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ocd: %v\n", err)
		return 1
	}
	cfg.Shards = c.shards
	reg := telemetry.NewRegistry()
	cfg.Tel = reg.Scope("dcsim")
	d, err := ocd.New(cfg, c.mode, reg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ocd: %v\n", err)
		return 1
	}
	d.SetPublishMaxLatency(c.publishWindow)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if c.Pprof != "" {
		ln, err := cli.ServePprof("ocd", c.Pprof, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ocd: %v\n", err)
			return 1
		}
		defer ln.Close()
	}

	ln, err := cli.Listen("ocd", "api", c.listen, "/v1", os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ocd: %v\n", err)
		return 1
	}
	srv := newHTTPServer(d.Handler())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	if c.mode == ocd.ModeScaled {
		go d.RunScaled(ctx, c.scale)
	}

	// Wait for a signal (or the server dying under us), then drain:
	// in-flight requests finish within the timeout, the final telemetry
	// snapshot is flushed, and the closing fleet report is logged.
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "ocd: serve: %v\n", err)
		return 1
	}
	stop()
	drain := c.Timeout
	if drain <= 0 {
		drain = 5 * time.Second
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "ocd: shutdown: %v\n", err)
	}
	if c.Metrics != "" {
		if err := writeMetrics(c.Metrics, reg); err != nil {
			fmt.Fprintf(os.Stderr, "ocd: metrics: %v\n", err)
			return 1
		}
	}
	fmt.Fprintf(os.Stderr, "ocd: final: %s\n", d.FinalReport())
	return 0
}

// newHTTPServer wraps the daemon handler in an http.Server with the
// timeouts a long-lived control plane needs: a slowloris client
// dribbling its header or body cannot pin a connection open forever,
// while responses stay unbounded because a chunked /v1/step batch may
// legitimately take minutes to answer.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// writeMetrics flushes the registry snapshot as indented JSON.
func writeMetrics(path string, reg *telemetry.Registry) error {
	data, err := reg.Snapshot().MarshalIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
