package main

// The daemon wraps a stepwise dcsim.Sim behind the typed v1 API. One
// mutex serializes every simulation touch — the Sim is engineered for
// a single control loop, and an HTTP handler is just another entrant
// into that loop. Decisions go through the Sim's placement.Decider, so
// an answer served here is the same answer the batch evaluation would
// compute.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"immersionoc/internal/api"
	"immersionoc/internal/dcsim"
	"immersionoc/internal/placement"
	"immersionoc/internal/telemetry"
	"immersionoc/internal/vm"
)

const (
	modeStepped = "stepped"
	modeScaled  = "scaled"
)

// maxStepsPerCall bounds one /v1/step request so a typo cannot hold
// the simulation lock for minutes.
const maxStepsPerCall = 100000

type daemon struct {
	mu   sync.Mutex
	sim  *dcsim.Sim
	vms  map[int]*vm.VM // placed VMs by ID, for Remove
	mode string
	reg  *telemetry.Registry

	grants, denies *telemetry.Counter
	requests       *telemetry.Counter
}

func newDaemon(cfg dcsim.Config, mode string, reg *telemetry.Registry) (*daemon, error) {
	sim, err := dcsim.New(cfg)
	if err != nil {
		return nil, err
	}
	ocd := reg.Scope("ocd")
	return &daemon{
		sim:      sim,
		vms:      make(map[int]*vm.VM),
		mode:     mode,
		reg:      reg,
		grants:   ocd.Counter("overclock_grants"),
		denies:   ocd.Counter("overclock_denies"),
		requests: ocd.Counter("http_requests"),
	}, nil
}

// runScaled drives the control loop from the wall clock: every
// StepS/scale wall seconds, one simulated step.
func (d *daemon) runScaled(ctx context.Context, scale float64) {
	interval := time.Duration(d.sim.StepS() / scale * float64(time.Second))
	if interval <= 0 {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			d.mu.Lock()
			d.sim.Step()
			d.mu.Unlock()
		}
	}
}

// apiError carries an HTTP status with a message for ErrorResponse.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func errf(code int, format string, a ...any) error {
	return &apiError{code: code, msg: fmt.Sprintf(format, a...)}
}

// post wires a typed request handler: decode JSON, check the version
// tag, run fn under the daemon lock, encode the response (or an
// ErrorResponse with the apiError's status).
func post[Req any, Resp any](d *daemon, vers func(Req) string, fn func(Req) (Resp, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		d.requests.Inc()
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req Req
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		if v := vers(req); v != "" && v != api.Version {
			writeError(w, http.StatusBadRequest, "unsupported version "+v)
			return
		}
		d.mu.Lock()
		resp, err := fn(req)
		d.mu.Unlock()
		if err != nil {
			code := http.StatusInternalServerError
			if ae, ok := err.(*apiError); ok {
				code = ae.code
			}
			writeError(w, code, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, api.ErrorResponse{Vers: api.Version, Error: msg})
}

// vmFromSpec reconstructs the simulator's VM from its wire form. The
// placement models read only size, class and the utilization
// statistics, all of which survive the JSON round trip bit-exactly, so
// an API-driven arrival is indistinguishable from a trace-replayed one.
func vmFromSpec(s api.VMSpec) (*vm.VM, error) {
	if s.VCores <= 0 || s.MemoryGB <= 0 {
		return nil, errf(http.StatusBadRequest, "vm %d: need positive vcores and memory", s.ID)
	}
	var class vm.Class
	switch s.Class {
	case "", "regular":
		class = vm.Regular
	case "high-perf":
		class = vm.HighPerf
	case "harvest":
		class = vm.Harvest
	default:
		return nil, errf(http.StatusBadRequest, "vm %d: unknown class %q", s.ID, s.Class)
	}
	return &vm.VM{
		ID:               s.ID,
		Type:             vm.Type{Name: fmt.Sprintf("v%d", s.VCores), VCores: s.VCores, MemoryGB: s.MemoryGB},
		Class:            class,
		AvgUtil:          s.AvgUtil,
		ScalableFraction: s.ScalableFraction,
	}, nil
}

func (d *daemon) serverRef(i int) api.ServerRef {
	info := d.sim.Server(i)
	return api.ServerRef{Index: info.Index, ID: info.ID, Tank: info.Tank}
}

// filter answers "which servers can take this VM" with per-server
// machine-readable rejection reasons.
func (d *daemon) filter(req api.FilterRequest) (api.FilterResponse, error) {
	v, err := vmFromSpec(req.VM)
	if err != nil {
		return api.FilterResponse{}, err
	}
	cl := d.sim.Cluster()
	servers := cl.Servers()
	resp := api.FilterResponse{Vers: api.Version}
	for i, srv := range servers {
		ref := d.serverRef(i)
		reason := cl.Explain(srv, v)
		if reason == "" && v.Class == vm.HighPerf &&
			d.sim.TankOverclocked(ref.Tank) >= d.sim.TankBudget(ref.Tank) {
			// A guaranteed-overclock VM needs condenser headroom in the
			// tank, not just core headroom on the server.
			reason = "thermal"
		}
		if reason == "" {
			resp.Eligible = append(resp.Eligible, ref)
		} else {
			resp.Failed = append(resp.Failed, api.FilterFailure{Server: ref, Reason: reason})
		}
	}
	return resp, nil
}

// prioritize scores candidates 0–100: packing headroom after placement
// blended with remaining wear credit (a server with slack in both can
// absorb bursts by overclocking instead of degrading).
func (d *daemon) prioritize(req api.PrioritizeRequest) (api.PrioritizeResponse, error) {
	v, err := vmFromSpec(req.VM)
	if err != nil {
		return api.PrioritizeResponse{}, err
	}
	pol := d.sim.Cluster().Policy
	resp := api.PrioritizeResponse{Vers: api.Version}
	for _, i := range req.Servers {
		if i < 0 || i >= d.sim.ServerCount() {
			return api.PrioritizeResponse{}, errf(http.StatusBadRequest, "server %d out of range", i)
		}
		info := d.sim.Server(i)
		capV := float64(info.PCores)
		if pol.CPUOversubRatio > 0 && info.Overclockable {
			capV = math.Floor(capV * (1 + pol.CPUOversubRatio))
		}
		headroom := (capV - float64(info.VCoresUsed) - float64(v.Type.VCores)) / capV
		headroom = math.Max(0, math.Min(1, headroom))
		credit := 1.0
		if info.WearProRata > 0 {
			credit = math.Max(0, math.Min(1, 1-info.WearUsed/info.WearProRata))
		}
		resp.Scores = append(resp.Scores, api.HostScore{
			Server: api.ServerRef{Index: info.Index, ID: info.ID, Tank: info.Tank},
			Score:  100 * (0.6*headroom + 0.4*credit),
		})
	}
	sort.SliceStable(resp.Scores, func(a, b int) bool {
		if resp.Scores[a].Score != resp.Scores[b].Score {
			return resp.Scores[a].Score > resp.Scores[b].Score
		}
		return resp.Scores[a].Server.Index < resp.Scores[b].Server.Index
	})
	return resp, nil
}

// place binds a VM through the cluster packer with trace-identical
// rejection accounting.
func (d *daemon) place(req api.PlaceRequest) (api.PlaceResponse, error) {
	v, err := vmFromSpec(req.VM)
	if err != nil {
		return api.PlaceResponse{}, err
	}
	if _, dup := d.vms[v.ID]; dup {
		return api.PlaceResponse{}, errf(http.StatusConflict, "vm %d already placed", v.ID)
	}
	srv, err := d.sim.Place(v)
	if err != nil {
		return api.PlaceResponse{Vers: api.Version, Placed: false, Error: err.Error()}, nil
	}
	d.vms[v.ID] = v
	ref := d.serverRef(srv.ID)
	return api.PlaceResponse{Vers: api.Version, Placed: true, Server: &ref}, nil
}

// remove releases a VM; departures of VMs that were rejected at
// arrival are no-ops, matching trace replay.
func (d *daemon) remove(req api.RemoveRequest) (api.RemoveResponse, error) {
	v, ok := d.vms[req.ID]
	if !ok {
		return api.RemoveResponse{Vers: api.Version, Removed: false}, nil
	}
	d.sim.Remove(v)
	delete(d.vms, req.ID)
	return api.RemoveResponse{Vers: api.Version, Removed: true}, nil
}

// overclock evaluates a grant (or applies a cancel) through the Sim's
// decider, so an API grant obeys exactly the governor's admission
// rules: Equation 1 threshold, tank condenser budget, wear-risk
// budget, feeder cap.
func (d *daemon) overclock(req api.OverclockGrantRequest) (api.OverclockDecision, error) {
	if req.Server < 0 || req.Server >= d.sim.ServerCount() {
		return api.OverclockDecision{}, errf(http.StatusBadRequest, "server %d out of range", req.Server)
	}
	if req.Cancel {
		d.sim.SetOverclock(req.Server, false)
		return api.OverclockDecision{
			Vers: api.Version, Granted: false, Reason: "cancelled",
			RowPowerW: d.sim.RowPowerW(),
		}, nil
	}
	info := d.sim.Server(req.Server)
	if info.Overclocked {
		return api.OverclockDecision{
			Vers: api.Version, Granted: true, Reason: string(placement.ReasonGranted),
			RowPowerW: d.sim.RowPowerW(),
		}, nil
	}
	dec := d.sim.Decider().Evaluate(placement.GrantQuery{
		Overclockable:   info.Overclockable,
		DemandCores:     info.DemandCores,
		PCores:          float64(info.PCores),
		TankOverclocked: d.sim.TankOverclocked(info.Tank),
		TankBudget:      d.sim.TankBudget(info.Tank),
		WearUsed:        info.WearUsed,
		WearProRata:     info.WearProRata,
		RowPowerW:       d.sim.RowPowerW(),
		OverclockDeltaW: info.PowerOCW - info.PowerNomW,
	})
	if dec.Allow {
		d.sim.SetOverclock(req.Server, true)
		d.grants.Inc()
	} else {
		d.denies.Inc()
	}
	return api.OverclockDecision{
		Vers: api.Version, Granted: dec.Allow, Reason: string(dec.Reason),
		RowPowerW: d.sim.RowPowerW(),
	}, nil
}

// step advances the simulation deterministically (stepped mode only).
func (d *daemon) step(req api.StepRequest) (api.StepResponse, error) {
	if d.mode != modeStepped {
		return api.StepResponse{}, errf(http.StatusConflict, "time is %s; POST /v1/step needs -mode stepped", d.mode)
	}
	n := req.Steps
	if n <= 0 {
		n = 1
	}
	if n > maxStepsPerCall {
		return api.StepResponse{}, errf(http.StatusBadRequest, "steps %d exceeds the per-call cap %d", n, maxStepsPerCall)
	}
	for i := 0; i < n; i++ {
		d.sim.Step()
	}
	return api.StepResponse{Vers: api.Version, SimTimeS: d.sim.Now(), StepsRun: n}, nil
}

// status snapshots the fleet KPIs (cumulative counts from the run's
// report plus live row/thermal state).
func (d *daemon) status() api.FleetStatus {
	rep := d.sim.Report()
	oc := 0
	maxBath := 0.0
	for i := 0; i < d.sim.TankCount(); i++ {
		oc += d.sim.TankOverclocked(i)
		if b := d.sim.TankBathC(i); b > maxBath {
			maxBath = b
		}
	}
	return api.FleetStatus{
		Vers:                 api.Version,
		SimTimeS:             d.sim.Now(),
		StepS:                d.sim.StepS(),
		Mode:                 d.mode,
		Servers:              d.sim.ServerCount(),
		Tanks:                d.sim.TankCount(),
		PlacedVMs:            len(d.vms),
		Density:              d.sim.Cluster().Stats().Density,
		Rejected:             rep.Rejected,
		RowPowerW:            d.sim.RowPowerW(),
		MaxBathC:             rep.MaxBathC,
		Overclocked:          oc,
		Grants:               rep.TotalGrants,
		Cancelled:            rep.CancelledOverclocks,
		CapEvents:            rep.CapEvents,
		OverclockServerHours: rep.OverclockServerHours,
		MeanWearUsed:         rep.MeanWearUsed,
	}
}

// finalReport renders the closing fleet report for the shutdown log.
func (d *daemon) finalReport() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sim.Report().String()
}

// handler builds the daemon's route table.
func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/filter", post(d, func(r api.FilterRequest) string { return r.Vers }, d.filter))
	mux.HandleFunc("/v1/prioritize", post(d, func(r api.PrioritizeRequest) string { return r.Vers }, d.prioritize))
	mux.HandleFunc("/v1/place", post(d, func(r api.PlaceRequest) string { return r.Vers }, d.place))
	mux.HandleFunc("/v1/remove", post(d, func(r api.RemoveRequest) string { return r.Vers }, d.remove))
	mux.HandleFunc("/v1/overclock", post(d, func(r api.OverclockGrantRequest) string { return r.Vers }, d.overclock))
	mux.HandleFunc("/v1/step", post(d, func(r api.StepRequest) string { return r.Vers }, d.step))
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		d.requests.Inc()
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		d.mu.Lock()
		st := d.status()
		d.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		d.requests.Inc()
		snap := d.reg.Snapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = snap.WritePrometheus(w, "ocd")
	})
	return mux
}
