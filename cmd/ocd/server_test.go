package main

import (
	"net/http"
	"testing"
	"time"
)

// TestHTTPServerTimeouts pins the server construction: a slowloris
// client must be bounded by header/read timeouts.
func TestHTTPServerTimeouts(t *testing.T) {
	srv := newHTTPServer(http.NewServeMux())
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: slowloris headers hold connections forever")
	}
	if srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout unset: slow request bodies hold the handler forever")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: idle keep-alive connections accumulate")
	}
	if srv.WriteTimeout > 0 && srv.WriteTimeout < time.Minute {
		t.Error("WriteTimeout would cut off legitimate long /v1/step batches")
	}
}
