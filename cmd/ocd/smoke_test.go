package main

// TestOCDSmoke is the end-to-end daemon check CI runs as its ocd leg:
// build the real binary, start it on an ephemeral port, drive one
// filter → grant → step → status cycle through the typed client, then
// SIGTERM it and require a clean exit (drain + final telemetry flush)
// within five seconds.

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"immersionoc/internal/api"
	"immersionoc/internal/telemetry"
)

var apiLine = regexp.MustCompile(`ocd: api on (http://[^\s]+:\d+)/v1`)

func TestOCDSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ocd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	metricsPath := filepath.Join(dir, "final.json")
	cmd := exec.Command(bin, "-listen", "127.0.0.1:0", "-mode", "stepped", "-metrics", metricsPath)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs its resolved ephemeral address; scrape it.
	sc := bufio.NewScanner(stderr)
	baseURL := ""
	var tail strings.Builder
	for sc.Scan() {
		line := sc.Text()
		tail.WriteString(line + "\n")
		if m := apiLine.FindStringSubmatch(line); m != nil {
			baseURL = m[1]
			break
		}
	}
	if baseURL == "" {
		t.Fatalf("no resolved listen address in stderr:\n%s", tail.String())
	}
	// Keep draining stderr so the daemon never blocks on the pipe.
	done := make(chan string, 1)
	go func() {
		for sc.Scan() {
			tail.WriteString(sc.Text() + "\n")
		}
		done <- tail.String()
	}()

	c := api.NewClient(baseURL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	// One full control cycle: place load, filter, request a grant,
	// advance time, read status.
	hot := api.VMSpec{ID: 1, VCores: 16, MemoryGB: 64, AvgUtil: 0.9, ScalableFraction: 0.5}
	if _, err := c.Place(ctx, api.PlaceRequest{VM: hot}); err != nil {
		t.Fatalf("place: %v", err)
	}
	hot2 := hot
	hot2.ID = 2
	pr, err := c.Place(ctx, api.PlaceRequest{VM: hot2})
	if err != nil || !pr.Placed {
		t.Fatalf("place 2: %+v, %v", pr, err)
	}
	fr, err := c.Filter(ctx, api.FilterRequest{VM: api.VMSpec{ID: 3, VCores: 2, MemoryGB: 8, AvgUtil: 0.3}})
	if err != nil || len(fr.Eligible) == 0 {
		t.Fatalf("filter: %+v, %v", fr, err)
	}
	od, err := c.Overclock(ctx, api.OverclockGrantRequest{Server: pr.Server.Index})
	if err != nil || !od.Granted {
		t.Fatalf("overclock: %+v, %v", od, err)
	}
	sr, err := c.Step(ctx, api.StepRequest{Steps: 2})
	if err != nil || sr.StepsRun != 2 {
		t.Fatalf("step: %+v, %v", sr, err)
	}
	st, err := c.Status(ctx)
	if err != nil || st.Grants == 0 || st.PlacedVMs != 2 {
		t.Fatalf("status: %+v, %v", st, err)
	}
	if text, err := c.Metrics(ctx); err != nil || !strings.Contains(text, "ocd_row_power_w") {
		t.Fatalf("metrics: %v", err)
	}

	// SIGTERM: drain and exit 0 within 5 s, with the final telemetry
	// snapshot flushed to -metrics. Stderr must hit EOF before Wait —
	// Wait closes the pipe and would race the drain goroutine.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var stderrText string
	select {
	case stderrText = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not exit within 5s of SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly: %v\n%s", err, stderrText)
	}

	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("final telemetry flush missing: %v", err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("final telemetry not valid JSON: %v", err)
	}
	if snap.Scopes["dcsim"].Counters["steps"] != 2 {
		t.Fatalf("final snapshot wrong step count: %v", snap.Scopes["dcsim"].Counters)
	}
	if !strings.Contains(stderrText, "ocd: final:") {
		t.Fatalf("no final report logged:\n%s", stderrText)
	}
}
