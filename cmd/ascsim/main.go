// Command ascsim runs the overclocking-enhanced auto-scaler simulation
// with tunable load and thresholds and prints a per-interval trace plus
// summary statistics.
//
//	ascsim -policy oca -qps-start 500 -qps-max 4000 -qps-step 500 -phase 300
//
// Exit codes follow octl's convention: 0 on success, 1 on a runtime
// error, 2 on a usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"immersionoc/internal/autoscaler"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("ascsim", flag.ContinueOnError)
	policyName := fs.String("policy", "oca", "auto-scaler policy: baseline, oce, oca")
	qpsStart := fs.Float64("qps-start", 500, "initial client load (QPS)")
	qpsMax := fs.Float64("qps-max", 4000, "peak client load (QPS)")
	qpsStep := fs.Float64("qps-step", 500, "load increment per phase")
	phase := fs.Float64("phase", 300, "seconds per phase")
	seed := fs.Uint64("seed", 3, "arrival seed")
	outThr := fs.Float64("scale-out", 0.50, "scale-out utilization threshold")
	upThr := fs.Float64("scale-up", 0.40, "scale-up utilization threshold")
	trace := fs.Bool("trace", true, "print a per-minute trace")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ascsim: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	var policy autoscaler.Policy
	switch strings.ToLower(*policyName) {
	case "baseline":
		policy = autoscaler.Baseline
	case "oce", "oc-e":
		policy = autoscaler.OCE
	case "oca", "oc-a":
		policy = autoscaler.OCA
	default:
		fmt.Fprintf(os.Stderr, "ascsim: unknown policy %q\n", *policyName)
		return 2
	}

	phases := autoscaler.RampPhases(*qpsStart, *qpsMax, *qpsStep, *phase)
	cfg := autoscaler.DefaultConfig(policy, phases)
	cfg.Seed = *seed
	cfg.ScaleOutThr = *outThr
	cfg.ScaleUpThr = *upThr

	r, err := autoscaler.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ascsim: %v\n", err)
		return 1
	}

	fmt.Printf("policy %s over %d phases (%.0f→%.0f QPS)\n\n", r.Policy, len(phases), *qpsStart, *qpsMax)
	if *trace {
		fmt.Printf("%8s %6s %6s %5s %8s\n", "t", "util", "freq%", "VMs", "power")
		total := 0.0
		for _, p := range phases {
			total += p.DurationS
		}
		for ts := 60.0; ts < total; ts += 60 {
			fmt.Printf("%7.0fs %6.2f %5.0f%% %5.0f %7.0fW\n",
				ts, r.Util.At(ts), r.FreqFrac.At(ts)*100, r.VMs.At(ts), r.PowerW.At(ts))
		}
		fmt.Println()
	}
	fmt.Printf("requests: %d completed, %d dropped\n", r.Completed, r.Dropped)
	fmt.Printf("latency:  P95 %.2f ms, mean %.2f ms\n", r.P95LatencyS*1000, r.AvgLatencyS*1000)
	fmt.Printf("capacity: max %d VMs, %.2f VM×hours\n", r.MaxVMs, r.VMHours)
	fmt.Printf("power:    %.0f W server average, %.0f W VM-attributed, %.1f mJ/request\n", r.AvgPowerW, r.AvgVMPowerW, r.EnergyPerReqJ*1000)
	fmt.Printf("actions:  %d scale-outs, %d scale-ins, %d scale-ups, %d scale-downs\n",
		r.ScaleOuts, r.ScaleIns, r.ScaleUps, r.ScaleDowns)
	return 0
}
