package main

import "testing"

// TestExitCodes pins the shared CLI convention: 0 on success, 2 on
// usage errors (bad flags, unknown policies, stray arguments).
func TestExitCodes(t *testing.T) {
	args := []string{"-trace=false", "-qps-max", "1000", "-phase", "60"}
	if code := run(args); code != 0 {
		t.Fatalf("short run exited %d, want 0", code)
	}
	if code := run([]string{"-no-such-flag"}); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
	if code := run([]string{"-policy", "warp-speed"}); code != 2 {
		t.Fatalf("unknown policy exited %d, want 2", code)
	}
	if code := run([]string{"stray-arg"}); code != 2 {
		t.Fatalf("stray argument exited %d, want 2", code)
	}
}
