// Command tcocalc evaluates the datacenter TCO model for the three
// scenarios of Table VI at a configurable oversubscription ratio.
//
//	tcocalc -oversub 0.10
//
// Exit codes follow octl's convention: 0 on success, 1 on a runtime
// error, 2 on a usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"immersionoc/internal/tco"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("tcocalc", flag.ContinueOnError)
	oversub := fs.Float64("oversub", 0.10, "physical-core oversubscription ratio")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "tcocalc: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	m, err := tco.NewDefaultFromTableI()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcocalc: %v\n", err)
		return 1
	}

	fmt.Printf("capacity expansion from PUE reclaim (%.2f → %.2f): %+.1f%% servers\n\n",
		m.AirPeakPUE, m.TwoPhasePeakPUE, (m.ExpansionFactor()-1)*100)

	air := m.CostPerCore(tco.AirCooled)
	fmt.Printf("%-22s %10s %10s %10s\n", "category", "air", "2PIC", "2PIC+OC")
	nonOC := m.CostPerCore(tco.TwoPhase)
	oc := m.CostPerCore(tco.TwoPhaseOC)
	for _, c := range tco.Categories() {
		fmt.Printf("%-22s %10.3f %10.3f %10.3f\n", c, air.PerCore[c], nonOC.PerCore[c], oc.PerCore[c])
	}
	fmt.Printf("%-22s %10.3f %10.3f %10.3f\n", "cost / physical core", air.Total(), nonOC.Total(), oc.Total())

	fmt.Printf("\ncost / virtual core at %.0f%% oversubscription:\n", *oversub*100)
	for _, s := range []tco.Scenario{tco.AirCooled, tco.TwoPhase, tco.TwoPhaseOC} {
		base := m.CostPerVCore(s, 0)
		with := m.CostPerVCore(s, *oversub)
		note := ""
		if s != tco.AirCooled {
			sv := m.OversubAnalysis(s, *oversub)
			note = fmt.Sprintf("  (%.1f%% cheaper than air)", sv.VsAir*100)
		}
		fmt.Printf("  %-24s %.3f → %.3f%s\n", s, base, with, note)
	}
	fmt.Println("\n(only overclockable 2PIC can absorb the oversubscription without performance loss)")
	return 0
}
