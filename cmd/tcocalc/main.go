// Command tcocalc evaluates the datacenter TCO model for the three
// scenarios of Table VI at a configurable oversubscription ratio.
//
//	tcocalc -oversub 0.10
package main

import (
	"flag"
	"fmt"
	"log"

	"immersionoc/internal/tco"
)

func main() {
	oversub := flag.Float64("oversub", 0.10, "physical-core oversubscription ratio")
	flag.Parse()

	m, err := tco.NewDefaultFromTableI()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("capacity expansion from PUE reclaim (%.2f → %.2f): %+.1f%% servers\n\n",
		m.AirPeakPUE, m.TwoPhasePeakPUE, (m.ExpansionFactor()-1)*100)

	air := m.CostPerCore(tco.AirCooled)
	fmt.Printf("%-22s %10s %10s %10s\n", "category", "air", "2PIC", "2PIC+OC")
	nonOC := m.CostPerCore(tco.TwoPhase)
	oc := m.CostPerCore(tco.TwoPhaseOC)
	for _, c := range tco.Categories() {
		fmt.Printf("%-22s %10.3f %10.3f %10.3f\n", c, air.PerCore[c], nonOC.PerCore[c], oc.PerCore[c])
	}
	fmt.Printf("%-22s %10.3f %10.3f %10.3f\n", "cost / physical core", air.Total(), nonOC.Total(), oc.Total())

	fmt.Printf("\ncost / virtual core at %.0f%% oversubscription:\n", *oversub*100)
	for _, s := range []tco.Scenario{tco.AirCooled, tco.TwoPhase, tco.TwoPhaseOC} {
		base := m.CostPerVCore(s, 0)
		with := m.CostPerVCore(s, *oversub)
		note := ""
		if s != tco.AirCooled {
			sv := m.OversubAnalysis(s, *oversub)
			note = fmt.Sprintf("  (%.1f%% cheaper than air)", sv.VsAir*100)
		}
		fmt.Printf("  %-24s %.3f → %.3f%s\n", s, base, with, note)
	}
	fmt.Println("\n(only overclockable 2PIC can absorb the oversubscription without performance loss)")
}
