package main

import "testing"

// TestExitCodes pins the shared CLI convention: 0 on success, 2 on
// usage errors.
func TestExitCodes(t *testing.T) {
	if code := run(nil); code != 0 {
		t.Fatalf("default run exited %d, want 0", code)
	}
	if code := run([]string{"-no-such-flag"}); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
	if code := run([]string{"stray-arg"}); code != 2 {
		t.Fatalf("stray argument exited %d, want 2", code)
	}
}
