package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: immersionoc/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkKernel/schedule-fire         	 1000000	        25.83 ns/op	       0 B/op	       0 allocs/op
BenchmarkKernel/retime-8              	 1000000	        40.10 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	immersionoc/internal/sim	0.240s
pkg: immersionoc/internal/queueing
BenchmarkOversubscribed 	       5	   9597124 ns/op	     19093 requests/op	 1794128 B/op	   19304 allocs/op
PASS
ok  	immersionoc/internal/queueing	0.064s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	k := got["internal/sim:BenchmarkKernel/schedule-fire"]
	if k == nil || k["ns/op"] != 25.83 || k["allocs/op"] != 0 {
		t.Fatalf("schedule-fire metrics wrong: %v", k)
	}
	// The -8 procs suffix is stripped; the hyphen in "schedule-fire" is not.
	if _, ok := got["internal/sim:BenchmarkKernel/retime"]; !ok {
		t.Fatalf("procs suffix not stripped: %v", got)
	}
	q := got["internal/queueing:BenchmarkOversubscribed"]
	if q == nil || q["allocs/op"] != 19304 || q["requests/op"] != 19093 {
		t.Fatalf("oversubscribed metrics wrong: %v", q)
	}
}

func TestRunWritesJSONWithBaseline(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := os.WriteFile(base, []byte(`{"benchmarks":{"internal/queueing:BenchmarkOversubscribed":{"allocs/op":236954}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "BENCH.json")
	var stderr bytes.Buffer
	code := run([]string{"-baseline", base, "-out", out}, strings.NewReader(sampleBench), new(bytes.Buffer), &stderr)
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Benchmarks map[string]map[string]float64 `json:"benchmarks"`
		Baseline   struct {
			Benchmarks map[string]map[string]float64 `json:"benchmarks"`
		} `json:"baseline"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	after := doc.Benchmarks["internal/queueing:BenchmarkOversubscribed"]["allocs/op"]
	before := doc.Baseline.Benchmarks["internal/queueing:BenchmarkOversubscribed"]["allocs/op"]
	if after != 19304 || before != 236954 {
		t.Fatalf("before/after pair wrong: before=%v after=%v", before, after)
	}
	if before/after < 5 {
		t.Fatalf("recorded improvement %.1f×, acceptance floor is 5×", before/after)
	}
}

func TestRunFailsOnEmptyInput(t *testing.T) {
	var stderr bytes.Buffer
	if code := run(nil, strings.NewReader("no benchmarks here\n"), new(bytes.Buffer), &stderr); code != 1 {
		t.Fatalf("run on empty input = %d, want 1", code)
	}
}
