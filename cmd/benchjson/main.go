// Command benchjson converts `go test -bench` output on stdin into a
// JSON document mapping benchmark → metrics (ns/op, allocs/op, B/op and
// any custom b.ReportMetric units). It seeds the repository's perf
// trajectory: `make bench` pipes the full sweep through it to produce
// BENCH_<n>.json, optionally embedding a checked-in pre-change baseline
// for before/after comparison.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -benchmem ./... | benchjson -baseline bench_baseline.json -out BENCH_3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// modulePrefix is stripped from package paths so keys read
// "internal/sim:BenchmarkKernel/retime" rather than repeating the
// module name in every entry.
const modulePrefix = "immersionoc/"

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "write the JSON document to this file instead of stdout")
	baseline := fs.String("baseline", "", "JSON file embedded verbatim under \"baseline\" (pre-change reference numbers)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	benches, err := parseBench(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: reading bench output: %v\n", err)
		return 1
	}
	if len(benches) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines found on stdin")
		return 1
	}
	doc := map[string]any{"benchmarks": benches}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		var base any
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(stderr, "benchjson: parsing baseline %s: %v\n", *baseline, err)
			return 1
		}
		doc["baseline"] = base
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	buf = append(buf, '\n')
	if *out == "" {
		_, err = stdout.Write(buf)
	} else {
		err = os.WriteFile(*out, buf, 0o644)
	}
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	return 0
}

// parseBench extracts benchmark result lines. `go test` interleaves
// per-package headers (goos/goarch/pkg/cpu) with result lines of the
// form "BenchmarkName[-procs]  iters  value unit  value unit ...";
// the current "pkg:" header qualifies the benchmark name so the same
// benchmark in two packages cannot collide.
func parseBench(r io.Reader) (map[string]map[string]float64, error) {
	res := map[string]map[string]float64{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimPrefix(strings.TrimSpace(rest), modulePrefix)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		metrics := map[string]float64{}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			metrics[f[i+1]] = v
		}
		if len(metrics) == 0 {
			continue
		}
		name := trimProcsSuffix(f[0])
		if pkg != "" {
			name = pkg + ":" + name
		}
		res[name] = metrics
	}
	return res, sc.Err()
}

// trimProcsSuffix drops the trailing "-<GOMAXPROCS>" go test appends on
// multi-proc runs, but leaves hyphenated benchmark names alone.
func trimProcsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
