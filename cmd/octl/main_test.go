package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"immersionoc/internal/experiments"
	"immersionoc/internal/telemetry"
)

// docCommentNames extracts the experiment names advertised in this
// command's doc comment (the "Paper artifacts:", "Extensions:" and
// "ASCII figure renderings:" paragraphs of main.go).
func docCommentNames(t *testing.T) []string {
	t.Helper()
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	collecting := false
	for _, line := range strings.Split(string(src), "\n") {
		if !strings.HasPrefix(line, "//") {
			break // end of the doc comment
		}
		text := strings.TrimSpace(strings.TrimPrefix(line, "//"))
		switch {
		case strings.HasPrefix(text, "Paper artifacts:"),
			strings.HasPrefix(text, "Extensions:"),
			strings.HasPrefix(text, "ASCII figure renderings:"):
			collecting = true
			text = text[strings.Index(text, ":")+1:]
		case text == "":
			collecting = false
		}
		if !collecting {
			continue
		}
		for _, tok := range strings.Fields(text) {
			tok = strings.TrimSuffix(tok, ".")
			if regexp.MustCompile(`^[a-z][a-z0-9-]*$`).MatchString(tok) {
				names = append(names, tok)
			}
		}
	}
	if len(names) < 20 {
		t.Fatalf("parsed only %d names from the doc comment; parser broken?", len(names))
	}
	return names
}

// TestDocCommentMatchesRegistry keeps the doc comment and the registry
// in lockstep: every advertised name resolves, and every registered
// experiment is advertised.
func TestDocCommentMatchesRegistry(t *testing.T) {
	advertised := map[string]bool{}
	for _, n := range docCommentNames(t) {
		advertised[n] = true
		if _, ok := experiments.Lookup(n); !ok {
			t.Errorf("doc comment advertises %q, not in the registry", n)
		}
	}
	for _, n := range experiments.Names() {
		if !advertised[n] {
			t.Errorf("registered experiment %q missing from the doc comment", n)
		}
	}
}

// TestDesignRegenerationNamesResolve checks that every `octl <name>`
// regeneration instruction in DESIGN.md resolves in the registry.
func TestDesignRegenerationNamesResolve(t *testing.T) {
	src, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile("`octl ([a-z0-9*/-]+)`")
	matches := re.FindAllStringSubmatch(string(src), -1)
	if len(matches) < 20 {
		t.Fatalf("found only %d `octl …` mentions in DESIGN.md; parser broken?", len(matches))
	}
	for _, m := range matches {
		name := m[1]
		if name == "list" || name == "all" {
			continue // subcommands, not experiments
		}
		if strings.Contains(name, "*") {
			// Wildcard family: at least one registered name must match
			// the prefix.
			prefix := strings.TrimSuffix(name, "*")
			found := false
			for _, n := range experiments.Names() {
				if strings.HasPrefix(n, prefix) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("DESIGN.md wildcard %q matches no registered experiment", name)
			}
			continue
		}
		if _, ok := experiments.Lookup(name); !ok {
			t.Errorf("DESIGN.md regeneration target %q not in the registry", name)
		}
	}
}

func TestRegistryCoversPaperArtifacts(t *testing.T) {
	required := []string{
		"table1", "table2", "table3", "fig4", "table5", "table6",
		"power-savings", "stability", "tco-oversub",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig15", "fig16",
		"table11", "packing", "buffers", "capacity",
	}
	for _, name := range required {
		e, ok := experiments.Lookup(name)
		if !ok {
			t.Errorf("paper artifact %q missing from the registry", name)
			continue
		}
		if !e.HasTag("paper") {
			t.Errorf("paper artifact %q not tagged \"paper\" (tags %v)", name, e.Tags)
		}
	}
}

func TestParseArgsInterleavedFlags(t *testing.T) {
	c, names, err := parseArgs([]string{"all", "-j", "8", "-json"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Workers != 8 || !c.jsonOut {
		t.Fatalf("flags after the subcommand not parsed: %+v", c)
	}
	if len(names) != 1 || names[0] != "all" {
		t.Fatalf("names = %v", names)
	}
}

func TestSelection(t *testing.T) {
	all, err := selection(options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := selection(options{}, []string{"all"})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 || len(all) != len(explicit) {
		t.Fatalf("`octl` selects %d, `octl all` selects %d", len(all), len(explicit))
	}
	for _, e := range all {
		if e.Kind != experiments.KindTable {
			t.Errorf("`octl all` selected non-table %q", e.Name)
		}
	}

	named, err := selection(options{}, []string{"fig9", "table5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(named) != 2 || named[0].Name != "fig9" || named[1].Name != "table5" {
		t.Fatalf("named selection = %v", named)
	}

	if _, err := selection(options{}, []string{"nonesuch"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}

	tagged, err := selection(options{tags: "paper"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tagged {
		if !e.HasTag("paper") {
			t.Errorf("-tags paper selected %q (tags %v)", e.Name, e.Tags)
		}
	}
	if len(tagged) < 10 {
		t.Fatalf("-tags paper selected only %d experiments", len(tagged))
	}

	if _, err := selection(options{tags: "paper"}, []string{"fig9"}); err == nil {
		t.Fatal("-tags combined with names accepted")
	}
	if _, err := selection(options{tags: "nonesuch"}, nil); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

// TestMetricsFlagWritesSnapshot runs a real (shortened) sim experiment
// through the CLI entry point with -metrics and asserts the exported
// JSON carries per-experiment engine telemetry plus the runner scope —
// the acceptance path for `octl -json -metrics out.json`.
func TestMetricsFlagWritesSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if code := run([]string{"-json", "-metrics", path, "-duration", "120", "fig15"}); code != 0 {
		t.Fatalf("run exited %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	exp, ok := snap.Scopes["fig15"]
	if !ok {
		t.Fatalf("no fig15 scope in metrics; scopes: %v", snap.Scopes)
	}
	if exp.Counters["requests"] == 0 || exp.Counters["completed"] == 0 {
		t.Fatalf("fig15 engine counters empty: %v", exp.Counters)
	}
	soj, ok := exp.Histograms["sojourn_s"]
	if !ok || soj.Count == 0 || soj.P95 <= 0 {
		t.Fatalf("fig15 sojourn histogram missing or empty: %+v", soj)
	}
	rn, ok := snap.Scopes["runner"]
	if !ok || rn.Counters["attempts"] == 0 {
		t.Fatalf("runner scope missing attempts: %v", rn.Counters)
	}
	if _, ok := rn.Histograms["wall_s"]; !ok {
		t.Fatal("runner wall_s histogram missing")
	}
}

// TestUsageErrorsExitTwo pins the CLI error convention shared with
// tcocalc and ascsim: usage errors exit 2.
func TestUsageErrorsExitTwo(t *testing.T) {
	if code := run([]string{"-no-such-flag"}); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
	if code := run([]string{"no-such-experiment"}); code != 2 {
		t.Fatalf("unknown experiment exited %d, want 2", code)
	}
}
