package main

import "testing"

func TestRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range all {
		if e.name == "" {
			t.Fatal("empty experiment name")
		}
		if seen[e.name] {
			t.Fatalf("duplicate experiment %q", e.name)
		}
		seen[e.name] = true
		if e.run == nil {
			t.Fatalf("experiment %q has no runner", e.name)
		}
	}
}

func TestRegistryCoversPaperArtifacts(t *testing.T) {
	required := []string{
		"table1", "table2", "table3", "fig4", "table5", "table6",
		"power-savings", "stability", "tco-oversub",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig15", "fig16",
		"table11", "packing", "buffers", "capacity",
	}
	have := map[string]bool{}
	for _, e := range all {
		have[e.name] = true
	}
	for _, name := range required {
		if !have[name] {
			t.Errorf("paper artifact %q missing from the registry", name)
		}
	}
}

func TestFastExperimentsRun(t *testing.T) {
	// The model-driven (non-simulation) experiments must all render.
	fast := map[string]bool{
		"table1": true, "table2": true, "table3": true, "fig4": true,
		"table5": true, "power-savings": true, "stability": true,
		"table6": true, "tco-oversub": true, "fig9": true, "fig10": true,
		"fig11": true, "wearbudget": true, "cooling": true,
		"ablation-bec": true, "highperf": true, "tank": true,
	}
	for _, e := range all {
		if !fast[e.name] {
			continue
		}
		tbl, err := e.run()
		if err != nil {
			t.Errorf("%s: %v", e.name, err)
			continue
		}
		if tbl == nil || len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", e.name)
		}
	}
}

func TestPlotNamesDisjoint(t *testing.T) {
	names := map[string]bool{}
	for _, e := range all {
		names[e.name] = true
	}
	seen := map[string]bool{}
	for _, p := range plots {
		if names[p.name] {
			t.Errorf("plot %q collides with an experiment name", p.name)
		}
		if seen[p.name] {
			t.Errorf("duplicate plot %q", p.name)
		}
		seen[p.name] = true
		if p.run == nil {
			t.Errorf("plot %q has no runner", p.name)
		}
	}
}
