// Command octl regenerates the paper's tables and figures from the
// simulation models through the parallel experiment runner. Run with
// no arguments for the full evaluation, or name specific experiments:
//
//	octl table1 table5 fig9
//	octl all -j 8
//	octl list
//	octl -tags paper
//	octl -json fig9 table5 > results.ndjson
//	octl -out artifacts/ all
//
// Flags (accepted before or after experiment names):
//
//	-j N            worker budget (default GOMAXPROCS): bounds the
//	                experiments in flight AND the simulation cells each
//	                experiment's internal sweeps fan out, all drawing
//	                from one shared process-wide budget — output is
//	                byte-identical at any N
//	-tags a,b       run the experiments carrying any of the tags
//	-json           emit NDJSON results on stdout instead of tables
//	-out dir        write one <name>.json + <name>.txt per experiment
//	-timeout d      per-experiment timeout (e.g. 30s; 0 = none)
//	-retries N      re-run a failing experiment up to N times
//	-seed N         override every experiment's RNG seed (0 = calibrated)
//	-duration S     override simulated duration in seconds (0 = calibrated)
//	-metrics file   write the run's telemetry snapshot as JSON to file
//	-pprof addr     serve net/http/pprof on addr (e.g. localhost:6060)
//
// A failing experiment no longer aborts the run: octl runs everything,
// prints a failure summary, and exits non-zero at the end. A run
// summary footer (wall time, percentile experiment latencies) goes to
// stderr.
//
// Paper artifacts: table1 table2 table3 fig4 table5 table6
// power-savings stability fig9 fig10 fig11 fig12 fig13 tco-oversub
// fig15 fig16 table11 packing buffers capacity.
//
// Extensions: highperf wearbudget capping tank policies diurnal
// cooling fleetsim migration ablation-eq1 ablation-bec
// ablation-bursts.
//
// ASCII figure renderings: plot-fig12 plot-fig15 plot-fig16
// plot-diurnal.
//
// `octl list` prints the full registry with kinds and tags.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"immersionoc/internal/cli"
	"immersionoc/internal/experiments"
	"immersionoc/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

type options struct {
	cli.Common // -j, -seed, -timeout, -metrics, -pprof

	tags     string
	jsonOut  bool
	outDir   string
	retries  int
	duration float64
}

// parseArgs accepts flags interleaved with experiment names
// (`octl all -j 8` and `octl -j 8 all` both work).
func parseArgs(args []string) (options, []string, error) {
	var c options
	fs := flag.NewFlagSet("octl", flag.ContinueOnError)
	c.Register(fs)
	fs.StringVar(&c.tags, "tags", "", "comma-separated tags to select experiments by")
	fs.BoolVar(&c.jsonOut, "json", false, "emit NDJSON results on stdout")
	fs.StringVar(&c.outDir, "out", "", "write per-experiment .json and .txt files to this directory")
	fs.IntVar(&c.retries, "retries", 0, "re-run a failing experiment up to N times")
	fs.Float64Var(&c.duration, "duration", 0, "override simulated duration in seconds (0 = calibrated defaults)")
	names, err := cli.ParseInterleaved(fs, args)
	return c, names, err
}

// selection resolves the command line into an ordered experiment list.
func selection(c options, names []string) ([]experiments.Experiment, error) {
	if c.tags != "" {
		if len(names) > 0 {
			return nil, fmt.Errorf("use either -tags or experiment names, not both")
		}
		want := map[string]bool{}
		for _, t := range strings.Split(c.tags, ",") {
			if t = strings.TrimSpace(t); t != "" {
				want[t] = true
			}
		}
		var sel []experiments.Experiment
		for _, e := range experiments.All() {
			for _, t := range e.Tags {
				if want[t] {
					sel = append(sel, e)
					break
				}
			}
		}
		if len(sel) == 0 {
			return nil, fmt.Errorf("no experiments carry tags %q", c.tags)
		}
		return sel, nil
	}
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		return experiments.Tables(), nil
	}
	var sel []experiments.Experiment
	for _, n := range names {
		e, ok := experiments.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q\navailable: %s",
				n, strings.Join(experiments.Names(), " "))
		}
		sel = append(sel, e)
	}
	return sel, nil
}

func run(args []string) int {
	c, names, err := parseArgs(args)
	if err != nil {
		return 2
	}
	if len(names) == 1 && names[0] == "list" {
		list(os.Stdout)
		return 0
	}
	sel, err := selection(c, names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "octl: %v\n", err)
		return 2
	}
	if c.outDir != "" {
		if err := os.MkdirAll(c.outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "octl: %v\n", err)
			return 1
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if c.Pprof != "" {
		ln, err := cli.ServePprof("octl", c.Pprof, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "octl: %v\n", err)
			return 1
		}
		defer ln.Close()
	}

	// Stream results in submission order as they complete: workers
	// post indices on done, the loop below flushes the ready prefix.
	outcomes := make([]*runner.Outcome, len(sel))
	done := make(chan int, len(sel))
	cfg := runner.Config{
		Workers: c.Workers,
		Timeout: c.Timeout,
		Retries: c.retries,
		Options: experiments.Options{Seed: c.Seed, DurationS: c.duration},
		OnDone: func(i int, o runner.Outcome) {
			outcomes[i] = &o
			done <- i
		},
	}
	reportCh := make(chan *runner.Report, 1)
	go func() { reportCh <- runner.Run(ctx, sel, cfg) }()

	failed := 0
	for next, received := 0, 0; received < len(sel); {
		<-done
		received++
		for next < len(sel) && outcomes[next] != nil {
			if !emit(c, *outcomes[next]) {
				failed++
			}
			next++
		}
	}
	report := <-reportCh
	fmt.Fprintf(os.Stderr, "octl: %s\n", report.Summary())
	if c.Metrics != "" {
		if err := writeMetrics(c.Metrics, report); err != nil {
			fmt.Fprintf(os.Stderr, "octl: metrics: %v\n", err)
			return 1
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "octl: %d of %d experiments failed:\n", failed, len(sel))
		for _, o := range report.Failed() {
			fmt.Fprintf(os.Stderr, "octl:   %s: %s\n", o.Name, firstLine(o.Err))
		}
		return 1
	}
	return 0
}

// emit prints or writes one outcome; it reports success.
func emit(c options, o runner.Outcome) bool {
	if !o.OK() {
		fmt.Fprintf(os.Stderr, "octl: %s: %s\n", o.Name, firstLine(o.Err))
		return false
	}
	if c.outDir != "" {
		if err := writeArtifacts(c.outDir, o); err != nil {
			fmt.Fprintf(os.Stderr, "octl: %s: %v\n", o.Name, err)
			return false
		}
		return true
	}
	if c.jsonOut {
		line, err := json.Marshal(o.Result)
		if err != nil {
			fmt.Fprintf(os.Stderr, "octl: %s: %v\n", o.Name, err)
			return false
		}
		fmt.Printf("%s\n", line)
		return true
	}
	fmt.Printf("== %s ==\n%s\n", o.Name, o.Result.Text())
	return true
}

// writeMetrics stores the run's telemetry snapshot as indented JSON.
func writeMetrics(path string, report *runner.Report) error {
	if report.Telemetry == nil {
		return fmt.Errorf("run collected no telemetry")
	}
	data, err := report.Telemetry.MarshalIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeArtifacts stores <name>.json and <name>.txt under dir.
func writeArtifacts(dir string, o runner.Outcome) error {
	data, err := json.Marshal(o.Result)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, o.Name+".json"), append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, o.Name+".txt"), []byte(o.Result.Text()), 0o644)
}

// list prints the registry: one line per experiment with kind and tags.
func list(w *os.File) {
	for _, e := range experiments.All() {
		fmt.Fprintf(w, "%-16s %-5s %s\n", e.Name, e.Kind, strings.Join(e.Tags, ","))
	}
}

// firstLine trims a (possibly multi-line, stack-carrying) error for
// the failure summary.
func firstLine(err error) string {
	if err == nil {
		return ""
	}
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i] + " …"
	}
	return s
}
