// Command octl regenerates the paper's tables and figures from the
// simulation models. Run with no arguments for the full evaluation, or
// name specific experiments:
//
//	octl table1 table5 fig9
//	octl all
//
// Paper artifacts: table1 table2 table3 fig4 table5 table6
// power-savings stability fig9 fig10 fig11 fig12 fig13 tco-oversub
// fig15 fig16 table11 packing buffers capacity.
//
// Extensions: highperf wearbudget capping tank policies diurnal
// cooling fleetsim ablation-eq1 ablation-bec ablation-bursts.
//
// ASCII figure renderings: plot-fig12 plot-fig15 plot-fig16
// plot-diurnal.
package main

import (
	"fmt"
	"os"
	"strings"

	"immersionoc/internal/experiments"
)

type experiment struct {
	name string
	run  func() (*experiments.Table, error)
}

func wrap(f func() *experiments.Table) func() (*experiments.Table, error) {
	return func() (*experiments.Table, error) { return f(), nil }
}

var all = []experiment{
	{"table1", wrap(experiments.TableI)},
	{"table2", wrap(experiments.TableII)},
	{"table3", experiments.TableIII},
	{"fig4", wrap(experiments.Fig4)},
	{"table5", experiments.TableV},
	{"power-savings", func() (*experiments.Table, error) {
		_, t, err := experiments.PowerSavings()
		return t, err
	}},
	{"stability", wrap(experiments.StabilityReport)},
	{"table6", experiments.TableVI},
	{"tco-oversub", func() (*experiments.Table, error) {
		t, _, _, err := experiments.OversubTCO()
		return t, err
	}},
	{"fig9", wrap(experiments.Fig9)},
	{"fig10", wrap(experiments.Fig10)},
	{"fig11", wrap(experiments.Fig11)},
	{"fig12", wrap(experiments.Fig12)},
	{"fig13", wrap(experiments.Fig13)},
	{"fig15", experiments.Fig15},
	{"fig16", experiments.Fig16},
	{"table11", func() (*experiments.Table, error) {
		t, _, err := experiments.TableXI()
		return t, err
	}},
	{"packing", wrap(experiments.Packing)},
	{"buffers", wrap(experiments.Buffers)},
	{"capacity", wrap(experiments.CapacityCrisis)},
	{"capping", experiments.Capping},
	{"ablation-eq1", experiments.AblationEq1},
	{"ablation-bec", experiments.AblationBEC},
	{"ablation-bursts", wrap(experiments.AblationBursts)},
	{"policies", experiments.PolicyComparison},
	{"tank", experiments.TankEnvelope},
	{"highperf", experiments.HighPerf},
	{"wearbudget", experiments.WearBudget},
	{"diurnal", experiments.Diurnal},
	{"cooling", experiments.CoolingComparison},
	{"fleetsim", experiments.FleetSim},
	{"migration", experiments.Migration},
}

// plots render ASCII charts instead of tables.
var plots = []struct {
	name string
	run  func() (string, error)
}{
	{"plot-fig12", experiments.PlotFig12},
	{"plot-fig15", experiments.PlotFig15},
	{"plot-fig16", experiments.PlotFig16},
	{"plot-diurnal", experiments.PlotDiurnal},
}

func main() {
	args := os.Args[1:]
	if len(args) == 0 || (len(args) == 1 && args[0] == "all") {
		for _, e := range all {
			run(e)
		}
		return
	}
	known := make(map[string]experiment, len(all))
	var names []string
	for _, e := range all {
		known[e.name] = e
		names = append(names, e.name)
	}
	knownPlots := map[string]func() (string, error){}
	for _, p := range plots {
		knownPlots[p.name] = p.run
		names = append(names, p.name)
	}
	for _, a := range args {
		if pr, ok := knownPlots[a]; ok {
			out, err := pr()
			if err != nil {
				fmt.Fprintf(os.Stderr, "octl: %s: %v\n", a, err)
				os.Exit(1)
			}
			fmt.Printf("== %s ==\n%s\n", a, out)
			continue
		}
		e, ok := known[a]
		if !ok {
			fmt.Fprintf(os.Stderr, "octl: unknown experiment %q\navailable: %s\n", a, strings.Join(names, " "))
			os.Exit(2)
		}
		run(e)
	}
}

func run(e experiment) {
	t, err := e.run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "octl: %s: %v\n", e.name, err)
		os.Exit(1)
	}
	fmt.Printf("== %s ==\n%s\n", e.name, t)
}
