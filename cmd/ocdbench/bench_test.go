package main

import (
	"testing"
	"time"
)

// BenchmarkOcdbench runs the closed-loop generator against a
// self-hosted 500-server fleet (paced stepper contending with the
// readers) for one second per op, and reports the measured read
// quantiles as custom metrics so ocdbench's p99 lands in BENCH_9.json
// next to the serving micro-benchmarks.
func BenchmarkOcdbench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := runLoad(loadCfg{
			servers:    500,
			workers:    4,
			duration:   time.Second,
			mix:        "status=6,metrics=2,filter=1,prioritize=1",
			stepBatch:  10,
			stepPeriod: 5 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Errors > 0 {
			b.Fatalf("%d request errors", rep.Errors)
		}
		b.ReportMetric(rep.P50Us, "p50-us")
		b.ReportMetric(rep.P99Us, "p99-us")
		b.ReportMetric(rep.P999Us, "p999-us")
		b.ReportMetric(rep.RPS, "req/s")
	}
}
