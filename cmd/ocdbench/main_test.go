package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestOcdbenchSelfHostSmoke drives a short self-hosted run end to end
// — fleet build, prefill, paced stepper, closed-loop workers, digest
// merge — and checks the JSON report is coherent.
func TestOcdbenchSelfHostSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-servers", "48", "-workers", "2", "-duration", "150ms",
		"-step-batch", "2", "-step-period", "2ms",
		"-mix", "status=4,metrics=2,filter=1,prioritize=1,healthz=1",
		"-json",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, out.String())
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors: %s", rep.Errors, out.String())
	}
	if rep.Requests == 0 || rep.RPS <= 0 {
		t.Fatalf("no load issued: %s", out.String())
	}
	if rep.P50Us <= 0 || rep.P99Us < rep.P50Us || rep.P999Us < rep.P99Us {
		t.Fatalf("quantiles out of order: p50=%v p99=%v p999=%v", rep.P50Us, rep.P99Us, rep.P999Us)
	}
	if len(rep.Endpoints) != 5 {
		t.Fatalf("want all 5 endpoints in report, got %d: %s", len(rep.Endpoints), out.String())
	}
	var sum int
	for _, e := range rep.Endpoints {
		sum += e.Requests
		if e.Requests > 0 && e.MaxUs < e.P999Us {
			t.Fatalf("endpoint %s: max %v below p999 %v", e.Endpoint, e.MaxUs, e.P999Us)
		}
	}
	if sum != rep.Requests {
		t.Fatalf("endpoint requests sum %d != total %d", sum, rep.Requests)
	}
}

// TestOcdbenchHumanReport checks the table renderer and that -addr
// targeting reuses an externally served daemon.
func TestOcdbenchHumanReport(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-servers", "24", "-workers", "1", "-duration", "80ms",
		"-step-period", "0s", "-mix", "status=1",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"ocdbench:", "self-hosted fleet: 24 servers", "status", "p99"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestOcdbenchUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-workers", "0"},
		{"-duration", "0s"},
		{"-mix", "status"},
		{"-mix", "warp=1"},
		{"-mix", "status=-1"},
		{"-mix", ""},
		{"stray"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		full := append([]string{"-servers", "8", "-duration", "10ms"}, args...)
		if code := run(full, &out, &errb); code == 0 {
			t.Fatalf("args %v: want failure, got success\n%s", args, out.String())
		}
	}
}

func TestParseMixSchedule(t *testing.T) {
	sched, err := parseMix("status=2, metrics=1,filter=0")
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 3 {
		t.Fatalf("schedule %v, want 3 entries", sched)
	}
	n := map[string]int{}
	for _, s := range sched {
		n[s]++
	}
	if n["status"] != 2 || n["metrics"] != 1 || n["filter"] != 0 {
		t.Fatalf("schedule %v, want status×2 metrics×1", sched)
	}
}

// TestParseMixNormalizesWeights pins the gcd reduction: scaled weight
// lists collapse to the same minimal cycle, and the issued proportions
// are untouched.
func TestParseMixNormalizesWeights(t *testing.T) {
	a, err := parseMix("status=6,metrics=2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := parseMix("status=3,metrics=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 4 {
		t.Fatalf("scaled mix not normalized: %v vs %v", a, b)
	}
	n := map[string]int{}
	for _, s := range a {
		n[s]++
	}
	if n["status"] != 3 || n["metrics"] != 1 {
		t.Fatalf("normalized schedule %v, want status×3 metrics×1", a)
	}
	// Co-prime weights must pass through unreduced.
	c, err := parseMix("place=6,remove=5,overclock=4,status=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 16 {
		t.Fatalf("co-prime weights reduced: %v", c)
	}
}

// TestParseMixPresets checks each preset expands to a valid schedule
// with the documented emphasis.
func TestParseMixPresets(t *testing.T) {
	for name, want := range map[string]string{
		"read":  "status",
		"mixed": "status",
		"write": "place",
	} {
		sched, err := parseMix(name)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		n := map[string]int{}
		for _, s := range sched {
			n[s]++
		}
		top, topN := "", 0
		for s, c := range n {
			if c > topN {
				top, topN = s, c
			}
		}
		if top != want {
			t.Fatalf("preset %s: dominant endpoint %s, want %s (schedule %v)", name, top, want, sched)
		}
	}
	// The write preset must carry all three mutating endpoints.
	sched, err := parseMix("write")
	if err != nil {
		t.Fatal(err)
	}
	n := map[string]int{}
	for _, s := range sched {
		n[s]++
	}
	if n["place"] == 0 || n["remove"] == 0 || n["overclock"] == 0 {
		t.Fatalf("write preset missing a mutating endpoint: %v", sched)
	}
}

// TestOcdbenchWriteMixSmoke drives the write preset end to end against
// a self-hosted fleet — placers, removers and overclockers through the
// real client — with a group-commit window set, and requires an
// error-free run reporting all four endpoints.
func TestOcdbenchWriteMixSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-servers", "64", "-workers", "2", "-duration", "150ms",
		"-step-batch", "2", "-step-period", "2ms",
		"-mix", "write", "-publish-max-latency", "1ms",
		"-json",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, out.String())
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors: %s", rep.Errors, out.String())
	}
	if len(rep.Endpoints) != 4 {
		t.Fatalf("want place/remove/overclock/status in report, got %d: %s", len(rep.Endpoints), out.String())
	}
	seen := map[string]bool{}
	for _, e := range rep.Endpoints {
		seen[e.Endpoint] = true
		if e.Requests == 0 {
			t.Fatalf("endpoint %s issued no requests: %s", e.Endpoint, out.String())
		}
	}
	for _, want := range []string{"place", "remove", "overclock", "status"} {
		if !seen[want] {
			t.Fatalf("endpoint %s missing from report: %s", want, out.String())
		}
	}
}
