// Command ocdbench is a closed-loop load generator for the ocd
// daemon. Each worker issues one request at a time from a weighted
// endpoint mix — read endpoints and the write plane's place/remove/
// overclock — and records the round-trip latency in a per-worker
// stats.Digest, so the report's p50/p99/p999 are exact order
// statistics, not histogram-bucket approximations. With no -addr it
// self-hosts an in-process daemon on a loopback listener — fleet size,
// a paced background stepper, and the write plane's publish knobs are
// then configurable, so one binary measures the serving path end to
// end (HTTP stack included) without a deployment.
//
// -mix takes either explicit endpoint=weight pairs or a preset:
// "read" (the status-poll-dominant default), "mixed" (reads with a
// placement churn minority), or "write" (place/remove/overclock
// heavy — the mix that stresses snapshot publication).
//
//	ocdbench -servers 2000 -workers 4 -duration 10s -mix write
//	ocdbench -servers 2000 -mix write -publish-max-latency 1ms
//	ocdbench -addr http://127.0.0.1:8080 -duration 30s -json
//
// Exit codes follow octl's convention: 0 on success, 1 on a runtime
// error, 2 on a usage error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"immersionoc/internal/api"
	"immersionoc/internal/dcsim"
	"immersionoc/internal/ocd"
	"immersionoc/internal/stats"
	"immersionoc/internal/telemetry"
	"immersionoc/internal/vm"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// loadCfg is one benchmark run's shape, filled from flags (or directly
// by the BenchmarkOcdbench harness).
type loadCfg struct {
	addr          string        // target daemon; "" self-hosts
	servers       int           // self-host fleet size
	workers       int           // concurrent closed-loop workers
	duration      time.Duration // measurement window
	mix           string        // weighted endpoint mix or preset name
	stepBatch     int           // self-host: steps per control-loop pass
	stepPeriod    time.Duration // self-host: idle gap between passes; 0 disables stepping
	publishWindow time.Duration // self-host: write-plane group-commit window
	fullCopy      bool          // self-host: break COW publish chaining (baseline)
}

// endpointStats accumulates one endpoint's latencies across workers.
type endpointStats struct {
	name     string
	digest   *stats.Digest
	requests int
	errors   int
}

type endpointReport struct {
	Endpoint string  `json:"endpoint"`
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	RPS      float64 `json:"rps"`
	MeanUs   float64 `json:"mean_us"`
	P50Us    float64 `json:"p50_us"`
	P99Us    float64 `json:"p99_us"`
	P999Us   float64 `json:"p999_us"`
	MaxUs    float64 `json:"max_us"`
}

type report struct {
	Addr      string           `json:"addr"`
	Servers   int              `json:"servers,omitempty"`
	Workers   int              `json:"workers"`
	DurationS float64          `json:"duration_s"`
	Mix       string           `json:"mix"`
	Requests  int              `json:"requests"`
	Errors    int              `json:"errors"`
	RPS       float64          `json:"rps"`
	P50Us     float64          `json:"p50_us"`
	P99Us     float64          `json:"p99_us"`
	P999Us    float64          `json:"p999_us"`
	Endpoints []endpointReport `json:"endpoints"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ocdbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := loadCfg{}
	fs.StringVar(&cfg.addr, "addr", "", "daemon base URL; empty self-hosts an in-process fleet")
	fs.IntVar(&cfg.servers, "servers", 2000, "self-hosted fleet size")
	fs.IntVar(&cfg.workers, "workers", 4, "concurrent closed-loop workers")
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "measurement window")
	fs.StringVar(&cfg.mix, "mix", "status=6,metrics=2,filter=1,prioritize=1",
		"weighted endpoint mix (filter, prioritize, status, metrics, healthz, place, remove, overclock) or a preset: read, mixed, write")
	fs.IntVar(&cfg.stepBatch, "step-batch", 10, "self-host: simulation steps per control-loop pass")
	fs.DurationVar(&cfg.stepPeriod, "step-period", 5*time.Millisecond,
		"self-host: idle gap between control-loop passes (0 disables stepping)")
	fs.DurationVar(&cfg.publishWindow, "publish-max-latency", 0,
		"self-host: write-plane group-commit window (0 publishes after every write)")
	fs.BoolVar(&cfg.fullCopy, "full-copy-publish", false,
		"self-host: re-materialize the whole snapshot on every publish (pre-COW baseline)")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "ocdbench: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if cfg.workers <= 0 || cfg.duration <= 0 || (cfg.addr == "" && cfg.servers <= 0) {
		fmt.Fprintln(stderr, "ocdbench: need positive workers, duration, and fleet size")
		return 2
	}

	rep, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "ocdbench: %v\n", err)
		return 1
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "ocdbench: %v\n", err)
			return 1
		}
		return 0
	}
	printReport(stdout, rep)
	return 0
}

// mixPresets name the common load shapes so a run is `-mix write`
// instead of a hand-tuned weight list. The write preset weights the
// mutating endpoints heavily — the shape that stresses snapshot
// publication rather than the read plane.
var mixPresets = map[string]string{
	"read":  "status=6,metrics=2,filter=1,prioritize=1",
	"mixed": "status=3,filter=1,prioritize=1,place=2,remove=1,overclock=1",
	"write": "place=6,remove=5,overclock=4,status=1",
}

// parseMix expands "status=6,metrics=2,filter=1" (or a preset name)
// into a request schedule each worker cycles through, so the issued
// mix matches the weights exactly rather than statistically. Weights
// are reduced by their gcd first: "status=6,metrics=2" and
// "status=3,metrics=1" issue the same mix, and the shorter cycle keeps
// worker offset staggering effective at high weights.
func parseMix(mix string) ([]string, error) {
	if preset, ok := mixPresets[strings.TrimSpace(mix)]; ok {
		mix = preset
	}
	known := map[string]bool{
		"filter": true, "prioritize": true, "status": true, "metrics": true, "healthz": true,
		"place": true, "remove": true, "overclock": true,
	}
	type entry struct {
		name string
		w    int
	}
	var entries []entry
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want endpoint=weight", part)
		}
		if !known[name] {
			return nil, fmt.Errorf("mix entry %q: unknown endpoint", part)
		}
		w, err := strconv.Atoi(wstr)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix entry %q: weight must be a non-negative integer", part)
		}
		entries = append(entries, entry{name, w})
	}
	g := 0
	for _, e := range entries {
		g = gcd(g, e.w)
	}
	var schedule []string
	for _, e := range entries {
		w := e.w
		if g > 1 {
			w /= g
		}
		for i := 0; i < w; i++ {
			schedule = append(schedule, e.name)
		}
	}
	if len(schedule) == 0 {
		return nil, fmt.Errorf("mix %q selects no endpoints", mix)
	}
	return schedule, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// selfHost builds a prefilled fleet, serves it on a loopback listener,
// and (unless disabled) runs a paced stepper that contends with the
// benchmark's readers exactly as scaled mode would. The returned
// cleanup tears down stepper and server.
func selfHost(cfg loadCfg) (addr string, cleanup func(), err error) {
	simCfg := dcsim.DefaultConfig()
	simCfg.Servers = cfg.servers
	simCfg.Events = []vm.Event{}
	d, err := ocd.New(simCfg, ocd.ModeStepped, telemetry.NewRegistry())
	if err != nil {
		return "", nil, err
	}
	d.SetPublishMaxLatency(cfg.publishWindow)
	d.SetFullCopyPublish(cfg.fullCopy)
	h := d.Handler()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	addr = "http://" + ln.Addr().String()

	// Pack the fleet ~60% full so filter answers carry both eligible
	// and failed servers.
	c := api.NewClient(addr)
	ctx := context.Background()
	for i := 0; i < cfg.servers*3/5; i++ {
		_, err := c.Place(ctx, api.PlaceRequest{VM: api.VMSpec{
			ID: i, VCores: 8, MemoryGB: 32, AvgUtil: 0.6,
		}})
		if err != nil {
			_ = srv.Close()
			return "", nil, fmt.Errorf("prefill place %d: %w", i, err)
		}
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	if cfg.stepPeriod > 0 && cfg.stepBatch > 0 {
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Step(ctx, api.StepRequest{Steps: cfg.stepBatch}); err != nil {
					return
				}
				select {
				case <-stop:
					return
				case <-time.After(cfg.stepPeriod):
				}
			}
		}()
	} else {
		close(done)
	}
	cleanup = func() {
		close(stop)
		<-done
		_ = srv.Close()
	}
	return addr, cleanup, nil
}

// runLoad executes one closed-loop run and folds the per-worker
// digests into the report.
func runLoad(cfg loadCfg) (*report, error) {
	schedule, err := parseMix(cfg.mix)
	if err != nil {
		return nil, err
	}
	addr := cfg.addr
	servers := 0
	if addr == "" {
		servers = cfg.servers
		var cleanup func()
		addr, cleanup, err = selfHost(cfg)
		if err != nil {
			return nil, err
		}
		defer cleanup()
	}

	ctx := context.Background()
	c := api.NewClient(addr)
	st, err := c.Status(ctx)
	if err != nil {
		return nil, fmt.Errorf("probe %s: %w", addr, err)
	}
	prioritizeN := st.Servers
	if prioritizeN > 64 {
		prioritizeN = 64
	}
	prioritizeServers := make([]int, prioritizeN)
	for i := range prioritizeServers {
		prioritizeServers[i] = i
	}
	filterVM := api.VMSpec{ID: 1, VCores: 16, MemoryGB: 64, AvgUtil: 0.9}
	prioritizeVM := api.VMSpec{ID: 1, VCores: 8, MemoryGB: 32, AvgUtil: 0.5}
	// Write-endpoint ID management: each worker owns a disjoint ID
	// stripe far above the prefill range, so concurrent placers never
	// collide, and keeps a FIFO of its own live placements for removes.
	// A remove with an empty FIFO departs a never-placed ID — a valid
	// no-op request, so the issued mix stays exactly as scheduled.
	const writeIDBase = 1 << 30
	const writeIDStride = 1 << 20

	type workerStats map[string]*endpointStats
	results := make([]workerStats, cfg.workers)
	errs := make([]error, cfg.workers)
	deadline := time.Now().Add(cfg.duration)
	start := time.Now()
	donec := make(chan int, cfg.workers)
	for w := 0; w < cfg.workers; w++ {
		go func(w int) {
			defer func() { donec <- w }()
			ws := make(workerStats, 5)
			results[w] = ws
			nextID := writeIDBase + w*writeIDStride
			var pendingIDs []int // this worker's live placements, FIFO
			ocServer := w
			// Stagger starting offsets so workers don't issue the
			// schedule in lockstep.
			i := w * (len(schedule)/cfg.workers + 1)
			for time.Now().Before(deadline) {
				name := schedule[i%len(schedule)]
				i++
				es := ws[name]
				if es == nil {
					es = &endpointStats{name: name, digest: stats.NewDigest()}
					ws[name] = es
				}
				t0 := time.Now()
				var err error
				switch name {
				case "filter":
					_, err = c.Filter(ctx, api.FilterRequest{VM: filterVM})
				case "prioritize":
					_, err = c.Prioritize(ctx, api.PrioritizeRequest{VM: prioritizeVM, Servers: prioritizeServers})
				case "status":
					_, err = c.Status(ctx)
				case "metrics":
					_, err = c.Metrics(ctx)
				case "healthz":
					err = c.Healthz(ctx)
				case "place":
					var resp api.PlaceResponse
					spec := api.VMSpec{ID: nextID, VCores: 2, MemoryGB: 8, AvgUtil: 0.5}
					nextID++
					resp, err = c.Place(ctx, api.PlaceRequest{VM: spec})
					if err == nil && resp.Placed {
						pendingIDs = append(pendingIDs, spec.ID)
					}
				case "remove":
					id := writeIDBase - 1 // never placed: a no-op departure
					if len(pendingIDs) > 0 {
						id = pendingIDs[0]
						pendingIDs = pendingIDs[1:]
					}
					_, err = c.Remove(ctx, api.RemoveRequest{ID: id})
				case "overclock":
					_, err = c.Overclock(ctx, api.OverclockGrantRequest{Server: ocServer % st.Servers})
					ocServer += cfg.workers
				}
				es.digest.Add(float64(time.Since(t0)) / float64(time.Microsecond))
				es.requests++
				if err != nil {
					es.errors++
					if es.errors > 100 {
						errs[w] = fmt.Errorf("%s: too many errors, last: %w", name, err)
						return
					}
				}
			}
		}(w)
	}
	for range results {
		<-donec
	}
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Merge the per-worker digests per endpoint, then across endpoints
	// for the headline quantiles.
	merged := map[string]*endpointStats{}
	for _, ws := range results {
		for name, es := range ws {
			m := merged[name]
			if m == nil {
				m = &endpointStats{name: name, digest: stats.NewDigest()}
				merged[name] = m
			}
			m.digest.Merge(es.digest)
			m.requests += es.requests
			m.errors += es.errors
		}
	}
	total := stats.NewDigest()
	rep := &report{
		Addr:      addr,
		Servers:   servers,
		Workers:   cfg.workers,
		DurationS: elapsed.Seconds(),
		Mix:       cfg.mix,
	}
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := merged[name]
		total.Merge(m.digest)
		rep.Requests += m.requests
		rep.Errors += m.errors
		rep.Endpoints = append(rep.Endpoints, endpointReport{
			Endpoint: name,
			Requests: m.requests,
			Errors:   m.errors,
			RPS:      float64(m.requests) / elapsed.Seconds(),
			MeanUs:   m.digest.Mean(),
			P50Us:    m.digest.Quantile(0.5),
			P99Us:    m.digest.P99(),
			P999Us:   m.digest.Quantile(0.999),
			MaxUs:    m.digest.Max(),
		})
	}
	rep.RPS = float64(rep.Requests) / elapsed.Seconds()
	rep.P50Us = total.Quantile(0.5)
	rep.P99Us = total.P99()
	rep.P999Us = total.Quantile(0.999)
	return rep, nil
}

func printReport(w io.Writer, rep *report) {
	fmt.Fprintf(w, "ocdbench: %s  workers=%d  duration=%.2fs  mix=%s\n",
		rep.Addr, rep.Workers, rep.DurationS, rep.Mix)
	if rep.Servers > 0 {
		fmt.Fprintf(w, "self-hosted fleet: %d servers\n", rep.Servers)
	}
	fmt.Fprintf(w, "total: %d requests (%d errors)  %.0f req/s  p50=%.1fµs p99=%.1fµs p999=%.1fµs\n\n",
		rep.Requests, rep.Errors, rep.RPS, rep.P50Us, rep.P99Us, rep.P999Us)
	fmt.Fprintf(w, "%-12s %10s %8s %10s %10s %10s %10s %10s\n",
		"endpoint", "requests", "errors", "req/s", "p50µs", "p99µs", "p999µs", "maxµs")
	for _, e := range rep.Endpoints {
		fmt.Fprintf(w, "%-12s %10d %8d %10.0f %10.1f %10.1f %10.1f %10.1f\n",
			e.Endpoint, e.Requests, e.Errors, e.RPS, e.P50Us, e.P99Us, e.P999Us, e.MaxUs)
	}
}
