module immersionoc

go 1.22
