// Quickstart: build a simulated two-phase-immersion-cooled server,
// ask the overclocking governor for a safe configuration for a
// workload, apply it, and inspect the consequences — performance,
// power, junction temperature, and projected component lifetime.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"immersionoc/internal/core"
	"immersionoc/internal/freq"
	"immersionoc/internal/power"
	"immersionoc/internal/server"
	"immersionoc/internal/workload"
)

func main() {
	// Small tank #1: a 28-core Xeon W-3175X immersed in HFE-7000.
	srv := server.New(server.Tank1Spec())
	fmt.Printf("server: %s, %d cores, cooled by %s\n",
		srv.Spec.Name, srv.Spec.Cores, srv.Spec.Thermal.Describe())

	// The server runs the SQL OLTP workload on 4 cores at moderate
	// utilization; the rest of the machine hosts other VMs.
	app := workload.SQL
	srv.SetLoad(14, 16)

	// The governor vets overclocking configurations against the
	// lifetime model, the stability envelope, and the feeder's
	// power-delivery headroom.
	gov := core.NewGovernor(srv)
	gov.Feeder = power.NewFeeder(400)

	decision, err := gov.Decide(core.Request{
		Vector:      core.VectorOf(app),
		Objective:   core.MaxPerformance,
		UtilSum:     14,
		ActiveCores: 16,
	})
	if err != nil {
		log.Fatalf("no admissible overclock: %v", err)
	}
	fmt.Printf("\ngovernor decision: %s\n", decision.Rationale)

	if err := gov.Apply(decision); err != nil {
		log.Fatal(err)
	}

	// Inspect the operating point after overclocking.
	op, err := srv.OperatingPoint()
	if err != nil {
		log.Fatal(err)
	}
	life, err := srv.ProjectedLifetimeYears()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napplied %s: core %.2f GHz (%v band), %.3f V\n",
		srv.Config().Name, float64(srv.Config().CoreGHz), srv.Band(), srv.Voltage())
	fmt.Printf("  socket: %.0f W at Tj %.1f °C\n", op.PowerW, op.JunctionC)
	fmt.Printf("  server power: %.0f W (B2 baseline %.0f W)\n",
		srv.PowerW(), srv.Spec.ServerPower.Power(freq.B2, 14, 16))
	fmt.Printf("  projected lifetime: %.1f years (service life target %.0f)\n",
		life, gov.MinLifetimeYears)
	fmt.Printf("  %s %s: %.1f → %.1f ms (%.1f%% better)\n",
		app.Name, app.Metric,
		app.MetricValue(freq.B2), app.MetricValue(decision.Config),
		decision.Improvement*100)

	// Run for a simulated month and check wear accounting.
	if err := srv.Advance(30 * 24); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter 30 days: wear budget used %.2f%%, credit %.4f hazard-years, expected correctable errors %.1f\n",
		srv.WearUsed()*100, srv.WearCredit(), srv.ExpectedErrors())

	// Contrast with the same server in air: the governor refuses.
	airGov := core.NewGovernor(server.New(server.AirSpec()))
	if _, err := airGov.Decide(core.Request{
		Vector:      core.VectorOf(app),
		Objective:   core.MaxPerformance,
		UtilSum:     14,
		ActiveCores: 16,
	}); err != nil {
		fmt.Printf("\nair-cooled governor: %v\n", err)
		fmt.Println("(air cooling cannot sustain overclocking without sacrificing the 5-year service life — Table V)")
	}
}
