// Oversubscription: reproduce the dense-VM-packing use-case — run SQL
// VMs on fewer physical cores than they ask for, compare the baseline
// configuration with overclocking, and translate the freed cores into
// TCO per virtual core.
//
//	go run ./examples/oversubscription
package main

import (
	"fmt"
	"log"

	"immersionoc/internal/core"
	"immersionoc/internal/experiments"
	"immersionoc/internal/tco"
	"immersionoc/internal/workload"
)

func main() {
	// Part 1: latency under oversubscription (Figure 12's regime,
	// shortened). 4 SQL VMs × 4 vcores on 12 vs 16 pcores.
	p := experiments.DefaultFig12Params()
	p.DurationS = 240
	p.PCoreSteps = []int{12, 16}
	data := experiments.Fig12Data(p)

	b16, _ := experiments.Fig12Find(data, "B2", 16)
	b12, _ := experiments.Fig12Find(data, "B2", 12)
	o12, _ := experiments.Fig12Find(data, "OC3", 12)

	fmt.Println("4 SQL VMs (16 vcores) on a shared physical core pool:")
	fmt.Printf("  B2 @16 pcores (no oversubscription): P95 %7.1f ms, %3.0f W\n", b16.MeanP95MS, b16.AvgPowerW)
	fmt.Printf("  B2 @12 pcores (25%% oversubscribed):  P95 %7.1f ms, %3.0f W\n", b12.MeanP95MS, b12.AvgPowerW)
	fmt.Printf("  OC3 @12 pcores (oversubscribed+OC):  P95 %7.1f ms, %3.0f W\n", o12.MeanP95MS, o12.AvgPowerW)
	fmt.Printf("  → overclocking makes 12 pcores perform like 16 (%.2fx of the B2@16 P95), freeing 4 cores\n\n",
		o12.MeanP95MS/b16.MeanP95MS)

	// Part 2: which configuration does the governor prescribe to
	// absorb the oversubscription?
	demand := 4 * 4 * 0.55 // 4 VMs × 4 vcores × avg utilization
	needed := core.MitigationSpeedup(demand, 8)
	cfg, err := core.ConfigForSpeedup(needed, core.VectorOf(workload.SQL))
	if err != nil {
		fmt.Printf("governor: %.2fx speedup needed on 8 pcores: %v\n\n", needed, err)
	} else {
		fmt.Printf("governor: %.2fx speedup needed on 8 pcores → %s\n\n", needed, cfg.Name)
	}

	// Part 3: the TCO consequence (§VI-C).
	m, err := tco.NewDefaultFromTableI()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TCO per virtual core (air-cooled baseline = 1.000):")
	for _, s := range []tco.Scenario{tco.AirCooled, tco.TwoPhase, tco.TwoPhaseOC} {
		fmt.Printf("  %-24s %.3f\n", s.String(), m.CostPerVCore(s, 0))
	}
	withOversub := m.CostPerVCore(tco.TwoPhaseOC, 0.10)
	sav := m.OversubAnalysis(tco.TwoPhaseOC, 0.10)
	fmt.Printf("  %-24s %.3f (−%.0f%% vs air)\n",
		"OC 2PIC + 10% oversub", withOversub, sav.VsAir*100)
	fmt.Println("\n(the paper's headline: 10% oversubscription cuts Azure's cost per vcore by 13%)")
}
