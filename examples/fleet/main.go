// Fleet: run the full-stack datacenter simulation — VM placement with
// oversubscription, per-server overclock decisions, tank condenser
// budgets, feeder power capping, and wear accounting — over a synthetic
// two-day trace, and print the row's behaviour.
//
//	go run ./examples/fleet [-servers 36] [-rate 0.02] [-feeder 12000]
package main

import (
	"flag"
	"fmt"
	"log"

	"immersionoc/internal/dcsim"
	"immersionoc/internal/plot"
)

func main() {
	servers := flag.Int("servers", 36, "fleet size")
	rate := flag.Float64("rate", 0.02, "VM arrival rate per second")
	feeder := flag.Float64("feeder", 12000, "row power budget in watts (0 = unlimited)")
	flag.Parse()

	cfg := dcsim.DefaultConfig()
	cfg.Servers = *servers
	cfg.Trace.ArrivalRatePerS = *rate
	cfg.FeederBudgetW = *feeder

	rep, err := dcsim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fleet of %d servers in %d-blade tanks, %.0f W row budget\n\n",
		cfg.Servers, cfg.ServersPerTank, cfg.FeederBudgetW)
	fmt.Println(rep)
	fmt.Println()

	rep.Density.Name = "density (vcores/pcore)"
	fmt.Println(plot.Lines("packing density over the trace", 72, 8, rep.Density))
	rep.Overclocked.Name = "overclocked servers"
	fmt.Println(plot.Lines("overclocked servers over the trace", 72, 8, rep.Overclocked))
	rep.PowerW.Name = "row power (W)"
	fmt.Println(plot.Lines("row power over the trace", 72, 8, rep.PowerW))
}
