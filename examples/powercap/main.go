// Powercap: demonstrate workload-priority-based power capping (§IV).
// An overclocked row is hit by a shrinking power budget; the
// priority-aware capper sheds harvest and batch frequency first so
// critical workloads keep their overclock, then restores highest
// priority first when the budget recovers.
//
//	go run ./examples/powercap
package main

import (
	"fmt"
	"log"

	"immersionoc/internal/capping"
	"immersionoc/internal/freq"
	"immersionoc/internal/power"
)

func main() {
	ladder, err := freq.NewLadder(3.4, 4.1, 8)
	if err != nil {
		log.Fatal(err)
	}
	mk := func(name string, prio capping.Priority, servers int) *capping.Group {
		return &capping.Group{
			Name: name, Priority: prio, Servers: servers,
			UtilSum: 18, ActiveCores: 24,
			Model: power.Tank1Server, Ladder: ladder,
			Config: freq.OC1, ScalableFraction: 0.8,
		}
	}
	groups := []*capping.Group{
		mk("critical", capping.Critical, 8),
		mk("production", capping.Production, 10),
		mk("batch", capping.Batch, 8),
		mk("harvest", capping.Harvest, 6),
	}
	ctl, err := capping.NewController(1e9, 40, groups...)
	if err != nil {
		log.Fatal(err)
	}
	demand := ctl.TotalPowerW()
	fmt.Printf("row demand fully overclocked: %.0f W\n\n", demand)

	show := func(stage string) {
		fmt.Printf("%s (row %.0f W / budget %.0f W):\n", stage, ctl.TotalPowerW(), ctl.BudgetW)
		for _, g := range ctl.Groups() {
			fmt.Printf("  %-10s %-10s %.2f GHz (perf %+.1f%%)\n",
				g.Name, g.Priority, float64(g.FreqGHz()), -g.PerfImpact()*100)
		}
		fmt.Println()
	}

	// A sequence of budget changes: mild breach, severe breach,
	// recovery.
	for _, step := range []struct {
		label  string
		budget float64
	}{
		{"mild breach (-4%)", demand * 0.96},
		{"severe breach (-12%)", demand * 0.88},
		{"recovery", demand * 1.05},
	} {
		ctl.BudgetW = step.budget
		if step.budget >= demand {
			acts := ctl.Restore()
			fmt.Printf("-- %s: restored %d rungs\n", step.label, len(acts))
		} else {
			acts, err := ctl.Enforce()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("-- %s: shed %d rungs\n", step.label, len(acts))
		}
		show(step.label)
	}
	fmt.Println("critical shed last and least — harvest and batch absorbed the breaches.")
}
