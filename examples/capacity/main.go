// Capacity: exercise the fleet-level use-cases — replacing static
// failover buffers with overclocking-backed virtual buffers (Figure 6)
// and bridging a capacity crisis (Figure 7) — on a simulated cluster
// with a synthetic Azure-like VM trace.
//
//	go run ./examples/capacity [-servers 20] [-failures 2]
package main

import (
	"flag"
	"fmt"

	"immersionoc/internal/cluster"
	"immersionoc/internal/experiments"
	"immersionoc/internal/vm"
)

func main() {
	servers := flag.Int("servers", 20, "fleet size")
	failures := flag.Int("failures", 2, "servers lost in the failure event")
	flag.Parse()

	// Part 1: buffer reduction.
	trace := vm.DefaultTrace
	trace.ArrivalRatePerS = 0.25
	trace.DurationS = 24 * 3600
	trace.MeanLifetimeS = 48 * 3600
	res := experiments.BuffersData(*servers, *failures, 0.10, trace)

	fmt.Printf("fleet of %d servers (%d pcores each), %d-server failure:\n\n",
		*servers, cluster.TwoSocketBlade.PCores, *failures)
	fmt.Printf("  static buffer (10%% reserved): sells %4d vcores, recovers %5.1f%% of displaced VMs\n",
		res.StaticSellable, res.StaticRecovered*100)
	fmt.Printf("  virtual buffer (OC-backed):   sells %4d vcores, recovers %5.1f%% of displaced VMs\n",
		res.VirtualSellable, res.VirtualRecovered*100)
	fmt.Printf("  → the virtual buffer sells %d more vcores (%.0f%%) during normal operation\n\n",
		res.VirtualSellable-res.StaticSellable,
		float64(res.VirtualSellable-res.StaticSellable)/float64(res.StaticSellable)*100)

	// Part 2: capacity crisis.
	crisis := vm.DefaultTrace
	crisis.Seed = 99
	crisis.ArrivalRatePerS = 0.012
	crisis.DurationS = 2 * 24 * 3600
	crisis.MeanLifetimeS = 24 * 3600
	cres := experiments.CapacityCrisisData(16, crisis)
	fmt.Printf("capacity crisis: peak demand %d vcores against %d pcores\n", cres.DemandVCores, cres.SupplyPCores)
	fmt.Printf("  1:1 fleet denied %d VM requests; overclocking-backed fleet denied %d (−%.0f%%)\n",
		cres.DeniedBaseline, cres.DeniedOC,
		(1-float64(cres.DeniedOC)/float64(cres.DeniedBaseline))*100)

	// Part 3: packing density.
	pt := vm.DefaultTrace
	pt.ArrivalRatePerS = 0.012
	pres := experiments.PackingData(24, pt, 0.25)
	fmt.Printf("\npacking density on a 24-server fleet:\n")
	fmt.Printf("  air-cooled 1:1:      %.3f vcores/pcore (%d arrivals rejected)\n",
		pres.BaselineDensity, pres.BaselineRejected)
	fmt.Printf("  2PIC + 25%% oversub:  %.3f vcores/pcore (%d rejected) → +%.0f%% density\n",
		pres.OversubDensity, pres.OversubRejected, pres.DensityGain*100)
}
