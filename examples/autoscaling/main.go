// Autoscaling: run the paper's overclocking-enhanced auto-scaler on
// the Client-Server (M/G/k) workload and compare the three policies —
// Baseline (scale-out/in only), OC-E (overclock while scaling out),
// and OC-A (scale up, then out).
//
//	go run ./examples/autoscaling [-qps-max 4000] [-phase 300] [-seed 3]
package main

import (
	"flag"
	"fmt"
	"log"

	"immersionoc/internal/autoscaler"
)

func main() {
	qpsMax := flag.Float64("qps-max", 4000, "peak client load (QPS)")
	phaseS := flag.Float64("phase", 300, "seconds per load step")
	seed := flag.Uint64("seed", 3, "arrival process seed")
	flag.Parse()

	phases := autoscaler.RampPhases(500, *qpsMax, 500, *phaseS)
	fmt.Printf("load: 500 → %.0f QPS in steps of 500 every %.0f s\n\n", *qpsMax, *phaseS)

	var results []*autoscaler.Result
	for _, policy := range []autoscaler.Policy{autoscaler.Baseline, autoscaler.OCE, autoscaler.OCA} {
		cfg := autoscaler.DefaultConfig(policy, phases)
		cfg.Seed = *seed
		r, err := autoscaler.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, r)
	}

	base := results[0]
	fmt.Printf("%-9s %-12s %-12s %-8s %-9s %-10s %s\n",
		"policy", "P95 latency", "avg latency", "max VMs", "VM×hours", "VM power", "actions (out/in/up/down)")
	for _, r := range results {
		fmt.Printf("%-9s %6.2f ms    %6.2f ms    %-8d %-9.2f %+7.1f%%   %d/%d/%d/%d\n",
			r.Policy, r.P95LatencyS*1000, r.AvgLatencyS*1000, r.MaxVMs, r.VMHours,
			(r.AvgVMPowerW/base.AvgVMPowerW-1)*100,
			r.ScaleOuts, r.ScaleIns, r.ScaleUps, r.ScaleDowns)
	}

	oca := results[2]
	fmt.Printf("\nOC-A vs baseline: P95 %.2fx, avg %.2fx, VM-hours saved %.2f (%.0f%%)\n",
		oca.P95LatencyS/base.P95LatencyS, oca.AvgLatencyS/base.AvgLatencyS,
		base.VMHours-oca.VMHours, (1-oca.VMHours/base.VMHours)*100)

	// A coarse utilization/frequency timeline for the OC-A run.
	fmt.Println("\nOC-A timeline (every 5 minutes):")
	fmt.Printf("%8s %6s %6s %5s\n", "t", "util", "freq%", "VMs")
	total := 0.0
	for _, p := range phases {
		total += p.DurationS
	}
	for ts := 150.0; ts < total; ts += 300 {
		fmt.Printf("%7.0fs %6.2f %5.0f%% %5.0f\n",
			ts, oca.Util.At(ts), oca.FreqFrac.At(ts)*100, oca.VMs.At(ts))
	}
}
