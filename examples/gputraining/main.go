// Gputraining: the tank #2 scenario — an overclockable RTX 2080ti
// under FC-3284 runs CNN training. The GPU governor picks a Table VIII
// configuration per model, encoding the Figure 11 lesson: memory
// overclocking is granted only where the model's memory-bound fraction
// earns it.
//
//	go run ./examples/gputraining
package main

import (
	"fmt"
	"log"

	"immersionoc/internal/core"
	"immersionoc/internal/freq"
	"immersionoc/internal/server"
	"immersionoc/internal/workload"
)

func main() {
	srv := server.New(server.Tank2Spec())
	fmt.Printf("server: %s (%s attached)\n\n", srv.Spec.Name, srv.Spec.GPU.Name)

	fmt.Printf("%-8s %-7s %-12s %-12s %-10s\n", "model", "config", "train gain", "added power", "epoch time")
	for _, m := range workload.VGGModels() {
		d, err := core.DecideGPU(m, core.MaxPerformance, srv.Spec.GPU.Power)
		if err != nil {
			log.Fatalf("%s: %v", m.Name, err)
		}
		if err := srv.SetGPUConfig(d.Config); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %-7s %+10.1f%% %+9.0f W   %5.0f s → %.0f s\n",
			m.Name, d.Config.Name, d.Improvement*100, d.PowerDeltaW,
			m.Seconds(freq.GPUBase), m.Seconds(d.Config))
	}

	fmt.Println("\nperf-per-watt objective instead:")
	for _, name := range []string{"VGG16", "VGG16B"} {
		m, _ := workload.VGGByName(name)
		d, err := core.DecideGPU(m, core.PerfPerWatt, srv.Spec.GPU.Power)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s → %s (+%.1f%% at +%.0f W)\n", name, d.Config.Name, d.Improvement*100, d.PowerDeltaW)
	}
	fmt.Println("\n(the paper: OCG3 raised P99 power 9.5% over OCG1 for VGG16B while offering")
	fmt.Println(" little to no performance improvement — the governor refuses that trade)")
}
