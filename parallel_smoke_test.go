// Parallel smoke: the end-to-end assertion that the worker budget
// actually buys wall-clock time on a multi-core host. Opt-in via
// RUNNER_PARALLEL_SMOKE=1 because the development container has one
// CPU, where serial and parallel coincide; CI's multicore leg runs it
// at GOMAXPROCS=4.
package immersionoc_test

import (
	"context"
	"os"
	"runtime"
	"testing"
	"time"

	"immersionoc/internal/experiments"
	"immersionoc/internal/runner"
)

// TestRunnerParallelSmoke replays the duration-shortened evaluation
// serially and GOMAXPROCS-wide and requires the parallel run to be no
// slower than the serial one — the sweeps' fan-out plus the shared
// budget must never cost wall-clock time. On ≥4 cores a healthy run
// shows well over 2x; the hard gate stays at parity so a loaded CI
// host cannot flake the build.
func TestRunnerParallelSmoke(t *testing.T) {
	if os.Getenv("RUNNER_PARALLEL_SMOKE") == "" {
		t.Skip("set RUNNER_PARALLEL_SMOKE=1 to run (needs a multi-core host)")
	}
	cores := runtime.GOMAXPROCS(0)
	if cores < 2 {
		t.Skipf("GOMAXPROCS=%d: parallel speedup not observable", cores)
	}
	exps := experiments.Tables()
	if len(exps) == 0 {
		t.Fatal("empty registry")
	}
	opts := experiments.Options{DurationS: 120}
	run := func(workers int) time.Duration {
		start := time.Now()
		r := runner.Run(context.Background(), exps, runner.Config{Workers: workers, Options: opts})
		if failed := r.Failed(); len(failed) > 0 {
			t.Fatalf("%s: %v", failed[0].Name, failed[0].Err)
		}
		return time.Since(start)
	}
	run(1) // warm caches so the serial measurement is not paying first-run costs
	serial := run(1)
	parallel := run(cores)
	t.Logf("serial %s, parallel(%d) %s — %.2fx speedup",
		serial.Round(time.Millisecond), cores, parallel.Round(time.Millisecond),
		float64(serial)/float64(parallel))
	// 5% grace absorbs scheduler jitter on a shared runner.
	if parallel > serial+serial/20 {
		t.Fatalf("parallel run (%s) slower than serial (%s)", parallel, serial)
	}
}
