package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"immersionoc/internal/experiments"
	"immersionoc/internal/sweep"
	"immersionoc/internal/telemetry"
)

// fake builds an unregistered table experiment whose single row is
// derived from the name, so outcome content is checkable.
func fake(name string, run func(ctx context.Context, o experiments.Options) (experiments.Result, error)) experiments.Experiment {
	return experiments.Experiment{Name: name, Kind: experiments.KindTable, Run: run}
}

func tableFor(name string) experiments.Result {
	return experiments.Result{
		Name: name,
		Kind: experiments.KindTable,
		Table: &experiments.Table{
			Title:  "fake " + name,
			Header: []string{"k", "v"},
			Rows:   [][]string{{name, "1"}},
		},
	}
}

func okFake(name string) experiments.Experiment {
	return fake(name, func(ctx context.Context, o experiments.Options) (experiments.Result, error) {
		return tableFor(name), nil
	})
}

func TestParallelMatchesSerial(t *testing.T) {
	var exps []experiments.Experiment
	for i := 0; i < 20; i++ {
		exps = append(exps, okFake(fmt.Sprintf("exp%02d", i)))
	}
	serial := Run(context.Background(), exps, Config{Workers: 1})
	parallel := Run(context.Background(), exps, Config{Workers: 8})
	if len(serial.Outcomes) != len(exps) || len(parallel.Outcomes) != len(exps) {
		t.Fatalf("outcome counts %d / %d", len(serial.Outcomes), len(parallel.Outcomes))
	}
	for i := range exps {
		s, p := serial.Outcomes[i], parallel.Outcomes[i]
		if s.Name != exps[i].Name || p.Name != exps[i].Name {
			t.Fatalf("outcome %d out of submission order: %q / %q", i, s.Name, p.Name)
		}
		if !s.OK() || !p.OK() {
			t.Fatalf("outcome %d failed: %v / %v", i, s.Err, p.Err)
		}
		if s.Result.Text() != p.Result.Text() {
			t.Fatalf("outcome %d differs between serial and parallel", i)
		}
		if s.Rows != 1 || p.Rows != 1 {
			t.Fatalf("outcome %d rows %d / %d", i, s.Rows, p.Rows)
		}
	}
}

func TestPanicIsolation(t *testing.T) {
	exps := []experiments.Experiment{
		okFake("before"),
		fake("boom", func(ctx context.Context, o experiments.Options) (experiments.Result, error) {
			panic("kaboom")
		}),
		okFake("after"),
	}
	r := Run(context.Background(), exps, Config{Workers: 2})
	if got := len(r.Failed()); got != 1 {
		t.Fatalf("%d failures, want 1", got)
	}
	boom := r.Outcomes[1]
	if !boom.Panicked || boom.Err == nil || !strings.Contains(boom.Err.Error(), "kaboom") {
		t.Fatalf("panic not captured: %+v", boom)
	}
	if !r.Outcomes[0].OK() || !r.Outcomes[2].OK() {
		t.Fatal("panic killed sibling experiments")
	}
}

func TestErrorsCollectedNotFatal(t *testing.T) {
	wantErr := errors.New("no data")
	exps := []experiments.Experiment{
		fake("bad", func(ctx context.Context, o experiments.Options) (experiments.Result, error) {
			return experiments.Result{}, wantErr
		}),
		okFake("good"),
	}
	r := Run(context.Background(), exps, Config{Workers: 1})
	if !errors.Is(r.Outcomes[0].Err, wantErr) {
		t.Fatalf("err = %v", r.Outcomes[0].Err)
	}
	if !r.Outcomes[1].OK() {
		t.Fatal("failure aborted the run")
	}
}

func TestCancellationStopsPromptly(t *testing.T) {
	// One long experiment that honors ctx, plus queued experiments
	// that must be skipped once the context is cancelled.
	blocking := fake("long", func(ctx context.Context, o experiments.Options) (experiments.Result, error) {
		select {
		case <-ctx.Done():
			return experiments.Result{}, ctx.Err()
		case <-time.After(30 * time.Second):
			return tableFor("long"), nil
		}
	})
	exps := []experiments.Experiment{blocking, okFake("queued1"), okFake("queued2")}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	r := Run(ctx, exps, Config{Workers: 1})
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("cancelled run took %s", wall)
	}
	if !errors.Is(r.Outcomes[0].Err, context.Canceled) {
		t.Fatalf("long experiment err = %v", r.Outcomes[0].Err)
	}
	for _, o := range r.Outcomes[1:] {
		if !errors.Is(o.Err, context.Canceled) {
			t.Fatalf("queued experiment %q err = %v, want cancellation", o.Name, o.Err)
		}
		if o.Attempts != 0 {
			t.Fatalf("queued experiment %q ran %d times after cancel", o.Name, o.Attempts)
		}
	}
}

func TestPerExperimentTimeout(t *testing.T) {
	exps := []experiments.Experiment{
		fake("slow", func(ctx context.Context, o experiments.Options) (experiments.Result, error) {
			<-ctx.Done()
			return experiments.Result{}, ctx.Err()
		}),
		okFake("fast"),
	}
	r := Run(context.Background(), exps, Config{Workers: 2, Timeout: 50 * time.Millisecond})
	if !errors.Is(r.Outcomes[0].Err, context.DeadlineExceeded) {
		t.Fatalf("slow err = %v", r.Outcomes[0].Err)
	}
	if !r.Outcomes[1].OK() {
		t.Fatal("timeout leaked into the sibling experiment")
	}
}

func TestRetries(t *testing.T) {
	var calls atomic.Int64
	flaky := fake("flaky", func(ctx context.Context, o experiments.Options) (experiments.Result, error) {
		if calls.Add(1) < 3 {
			return experiments.Result{}, errors.New("transient")
		}
		return tableFor("flaky"), nil
	})
	r := Run(context.Background(), []experiments.Experiment{flaky}, Config{Retries: 2})
	o := r.Outcomes[0]
	if !o.OK() || o.Attempts != 3 {
		t.Fatalf("outcome %+v, want success on attempt 3", o)
	}

	calls.Store(0)
	r = Run(context.Background(), []experiments.Experiment{flaky}, Config{Retries: 1})
	if o := r.Outcomes[0]; o.OK() || o.Attempts != 2 {
		t.Fatalf("outcome %+v, want failure after 2 attempts", o)
	}
}

func TestOnDoneStreams(t *testing.T) {
	var exps []experiments.Experiment
	for i := 0; i < 8; i++ {
		exps = append(exps, okFake(fmt.Sprintf("exp%d", i)))
	}
	done := make(chan int, len(exps))
	Run(context.Background(), exps, Config{Workers: 4, OnDone: func(i int, o Outcome) {
		if o.Name != exps[i].Name {
			t.Errorf("OnDone(%d) got %q", i, o.Name)
		}
		done <- i
	}})
	if len(done) != len(exps) {
		t.Fatalf("OnDone fired %d times, want %d", len(done), len(exps))
	}
}

func TestReportAggregates(t *testing.T) {
	r := &Report{Outcomes: []Outcome{
		{Name: "a", Wall: 1 * time.Second, Attempts: 1},
		{Name: "b", Wall: 3 * time.Second, Attempts: 1},
		{Name: "c", Wall: 2 * time.Second, Attempts: 2, Err: errors.New("x")},
	}, Wall: 3 * time.Second, Workers: 3}
	if got := r.TotalExperimentTime(); got != 6*time.Second {
		t.Fatalf("total = %v", got)
	}
	if got := r.Slowest(); got.Name != "b" {
		t.Fatalf("slowest = %q", got.Name)
	}
	if got := r.Percentile(1); got != 3*time.Second {
		t.Fatalf("p100 = %v", got)
	}
	if got := r.Percentile(0); got != 1*time.Second {
		t.Fatalf("p0 = %v", got)
	}
	s := r.Summary()
	for _, want := range []string{"3 experiments", "2 ok, 1 failed", "1 retried", "max=3s (b)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}

// determinismSet is the registry subset the determinism test runs:
// every model-driven experiment plus the duration-shortened
// simulations — including every sweep-enabled harness, so the
// intra-experiment fan-out crosses the parallel path — without the
// full evaluation cost.
func determinismSet(t *testing.T) ([]experiments.Experiment, experiments.Options) {
	set := experiments.WithTag("fast")
	if len(set) < 10 {
		t.Fatalf("only %d fast experiments registered", len(set))
	}
	if !testing.Short() {
		for _, name := range []string{
			"fig12", "fig13", "diurnal", "policies",
			"ablation-eq1", "ablation-bursts", "fleetsim", "packing", "capacity",
		} {
			e, ok := experiments.Lookup(name)
			if !ok {
				t.Fatalf("%s not registered", name)
			}
			set = append(set, e)
		}
	}
	return set, experiments.Options{DurationS: 90}
}

// TestDeterminismAcrossWorkers asserts the acceptance property: the
// same seed produces byte-identical JSON whether the run is serial or
// 8-wide.
func TestDeterminismAcrossWorkers(t *testing.T) {
	exps, opts := determinismSet(t)
	marshal := func(r *Report) []string {
		t.Helper()
		lines := make([]string, len(r.Outcomes))
		for i, o := range r.Outcomes {
			if !o.OK() {
				t.Fatalf("%s: %v", o.Name, o.Err)
			}
			b, err := json.Marshal(o.Result)
			if err != nil {
				t.Fatal(err)
			}
			lines[i] = string(b)
		}
		return lines
	}
	serial := marshal(Run(context.Background(), exps, Config{Workers: 1, Options: opts}))
	parallel := marshal(Run(context.Background(), exps, Config{Workers: 8, Options: opts}))
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("%s: JSON differs between -j 1 and -j 8:\n  serial:   %s\n  parallel: %s",
				exps[i].Name, serial[i], parallel[i])
		}
	}
}

// TestRegistryExperimentsCancelPromptly cancels a run over the
// longest-running sims and requires a prompt return well under the
// serial cost.
func TestRegistryExperimentsCancelPromptly(t *testing.T) {
	if testing.Short() {
		t.Skip("sim cancellation in -short mode")
	}
	var exps []experiments.Experiment
	for _, name := range []string{"fig12", "fig13"} {
		e, ok := experiments.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		exps = append(exps, e)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	r := Run(ctx, exps, Config{Workers: 1})
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("cancelled sim run took %s", wall)
	}
	for _, o := range r.Outcomes {
		if o.OK() {
			t.Errorf("%s completed despite cancellation", o.Name)
		}
	}
}

// TestPercentileEdgeCases pins the boundary behavior of the cached
// percentile: empty runs, single-outcome runs, and repeat calls (the
// sort happens once and must keep answering consistently).
func TestPercentileEdgeCases(t *testing.T) {
	empty := &Report{}
	for _, p := range []float64{0, 0.5, 1} {
		if got := empty.Percentile(p); got != 0 {
			t.Fatalf("empty Percentile(%v) = %v, want 0", p, got)
		}
	}
	single := &Report{Outcomes: []Outcome{{Name: "only", Wall: 7 * time.Second}}}
	for _, p := range []float64{0, 0.5, 1} {
		if got := single.Percentile(p); got != 7*time.Second {
			t.Fatalf("single Percentile(%v) = %v, want 7s", p, got)
		}
	}
	r := &Report{Outcomes: []Outcome{
		{Wall: 3 * time.Second}, {Wall: 1 * time.Second}, {Wall: 2 * time.Second},
	}}
	if got := r.Percentile(0); got != 1*time.Second {
		t.Fatalf("p0 = %v, want 1s", got)
	}
	if got := r.Percentile(1); got != 3*time.Second {
		t.Fatalf("p1 = %v, want 3s", got)
	}
	// Repeat calls hit the cached sort and must agree.
	if a, b := r.Percentile(0.5), r.Percentile(0.5); a != b || a != 2*time.Second {
		t.Fatalf("repeat p50 = %v / %v, want 2s", a, b)
	}
}

// TestReportTelemetry asserts the run's snapshot carries both the
// experiment's own metrics (scoped by name) and the runner's counters.
func TestReportTelemetry(t *testing.T) {
	exps := []experiments.Experiment{
		fake("writer", func(ctx context.Context, o experiments.Options) (experiments.Result, error) {
			o.Tel.Counter("work").Add(3)
			o.Tel.Gauge("depth").Set(2.5)
			o.Tel.Histogram("lat_s", telemetry.LatencyBuckets).Observe(0.004)
			return tableFor("writer"), nil
		}),
		fake("flaky", func(ctx context.Context, o experiments.Options) (experiments.Result, error) {
			return experiments.Result{}, errors.New("transient")
		}),
	}
	r := Run(context.Background(), exps, Config{Workers: 2, Retries: 1})
	if r.Telemetry == nil {
		t.Fatal("report carries no telemetry snapshot")
	}
	w, ok := r.Telemetry.Scopes["writer"]
	if !ok {
		t.Fatalf("no scope for experiment; scopes = %v", r.Telemetry.Scopes)
	}
	if w.Counters["work"] != 3 || w.Gauges["depth"] != 2.5 {
		t.Fatalf("writer metrics = %+v", w)
	}
	if h := w.Histograms["lat_s"]; h.Count != 1 || h.Sum != 0.004 {
		t.Fatalf("writer histogram = %+v", h)
	}
	rn, ok := r.Telemetry.Scopes["runner"]
	if !ok {
		t.Fatal("no runner scope")
	}
	// writer ran once, flaky ran twice (one retry) and failed.
	if rn.Counters["attempts"] != 3 || rn.Counters["retries"] != 1 || rn.Counters["failures"] != 1 {
		t.Fatalf("runner counters = %v", rn.Counters)
	}
	if h := rn.Histograms["wall_s"]; h.Count != 2 {
		t.Fatalf("wall histogram count = %d, want 2", h.Count)
	}
}

// TestTelemetryOff asserts telemetry.Off disables collection end to
// end: no snapshot, and the no-op scope handed to experiments is safe.
func TestTelemetryOff(t *testing.T) {
	exps := []experiments.Experiment{
		fake("quiet", func(ctx context.Context, o experiments.Options) (experiments.Result, error) {
			o.Tel.Counter("work").Inc() // no-op, must not panic
			return tableFor("quiet"), nil
		}),
	}
	r := Run(context.Background(), exps, Config{Metrics: telemetry.Off})
	if !r.Outcomes[0].OK() {
		t.Fatalf("run failed: %v", r.Outcomes[0].Err)
	}
	if r.Telemetry != nil {
		t.Fatalf("telemetry.Off still produced a snapshot: %+v", r.Telemetry)
	}
}

// TestConcurrentOnDoneAndTelemetry exercises the advertised
// concurrency contract under the race detector: ≥8 workers, OnDone
// firing from many goroutines, and every experiment hammering the
// same telemetry scope (they share a name, hence a scope).
func TestConcurrentOnDoneAndTelemetry(t *testing.T) {
	const n = 64
	exps := make([]experiments.Experiment, n)
	for i := range exps {
		exps[i] = fake("shared", func(ctx context.Context, o experiments.Options) (experiments.Result, error) {
			for j := 0; j < 200; j++ {
				o.Tel.Counter("hits").Inc()
				o.Tel.Gauge("level").SetMax(float64(j))
				o.Tel.Histogram("lat_s", telemetry.LatencyBuckets).Observe(float64(j) / 1e4)
			}
			return tableFor("shared"), nil
		})
	}
	var mu sync.Mutex
	seen := 0
	r := Run(context.Background(), exps, Config{Workers: 8, OnDone: func(i int, o Outcome) {
		mu.Lock()
		seen++
		mu.Unlock()
	}})
	if seen != n {
		t.Fatalf("OnDone fired %d times, want %d", seen, n)
	}
	sc := r.Telemetry.Scopes["shared"]
	if sc.Counters["hits"] != n*200 {
		t.Fatalf("hits = %d, want %d", sc.Counters["hits"], n*200)
	}
	if got := r.Telemetry.Scopes["shared"].Histograms["lat_s"].Count; got != n*200 {
		t.Fatalf("histogram count = %d, want %d", got, n*200)
	}
}

// TestCancellationPromise is the regression test for the package-doc
// promise: a cancelled context stops a *running* simulation at its
// internal boundaries — the experiment returns the context error long
// before its simulated hour completes.
func TestCancellationPromise(t *testing.T) {
	if testing.Short() {
		t.Skip("sim cancellation in -short mode")
	}
	e, ok := experiments.Lookup("diurnal")
	if !ok {
		t.Fatal("diurnal not registered")
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	r := Run(ctx, []experiments.Experiment{e}, Config{Workers: 1})
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("cancelled diurnal run took %s", wall)
	}
	o := r.Outcomes[0]
	if o.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (cancellation is never retried)", o.Attempts)
	}
	if !errors.Is(o.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled from inside the simulation", o.Err)
	}
}

// TestSharedBudgetNeverExceeded is the runner↔sweep semaphore
// contract: experiments and the sweep cells they fan out draw from one
// budget, so total live parallelism never exceeds its capacity — a
// worker blocked on its experiment's sweep lends the cells its own
// token rather than holding it idle.
func TestSharedBudgetNeverExceeded(t *testing.T) {
	const capTokens = 3
	budget := sweep.NewBudget(capTokens)
	var running, peak atomic.Int64
	enter := func() {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
	}
	var exps []experiments.Experiment
	for i := 0; i < 6; i++ {
		exps = append(exps, fake(fmt.Sprintf("sweeper%d", i),
			func(ctx context.Context, o experiments.Options) (experiments.Result, error) {
				enter()
				time.Sleep(2 * time.Millisecond)
				running.Add(-1)
				// Fan out like a converted harness: the worker's token is
				// lent to these cells while the experiment blocks here.
				_, err := sweep.Map(ctx, 5, sweep.Options{Workers: o.Workers},
					func(ctx context.Context, j int) (int, error) {
						enter()
						time.Sleep(time.Millisecond)
						running.Add(-1)
						return j, nil
					})
				if err != nil {
					return experiments.Result{}, err
				}
				enter()
				running.Add(-1)
				return tableFor("sweeper"), nil
			}))
	}
	r := Run(context.Background(), exps, Config{Workers: capTokens, Budget: budget})
	for _, o := range r.Outcomes {
		if !o.OK() {
			t.Fatalf("%s: %v", o.Name, o.Err)
		}
	}
	if p := peak.Load(); p > capTokens {
		t.Fatalf("peak live parallelism %d exceeds the shared budget's %d tokens", p, capTokens)
	}
	if u := budget.Used(); u != 0 {
		t.Fatalf("budget leaks %d tokens after the run", u)
	}
	if c := budget.Cap(); c != capTokens {
		t.Fatalf("budget cap changed to %d", c)
	}
}

// TestWorkersReachSweeps: the requested -j width is threaded into
// experiments.Options even when the pool itself is capped at the
// experiment count, so a lone experiment still sweeps wide.
func TestWorkersReachSweeps(t *testing.T) {
	var seen atomic.Int64
	e := fake("lone", func(ctx context.Context, o experiments.Options) (experiments.Result, error) {
		seen.Store(int64(o.Workers))
		return tableFor("lone"), nil
	})
	Run(context.Background(), []experiments.Experiment{e}, Config{Workers: 8, Budget: sweep.NewBudget(8)})
	if got := seen.Load(); got != 8 {
		t.Fatalf("Options.Workers = %d inside the experiment, want the requested 8", got)
	}

	// An explicit Options.Workers is left alone.
	Run(context.Background(), []experiments.Experiment{e},
		Config{Workers: 8, Budget: sweep.NewBudget(8), Options: experiments.Options{Workers: 2}})
	if got := seen.Load(); got != 2 {
		t.Fatalf("Options.Workers = %d, want the explicit 2", got)
	}
}
