// Package runner executes registered experiments concurrently through
// a bounded worker pool. It is the substrate every evaluation entry
// point fans out through: octl drives it for the CLI, the benchmarks
// measure it, and future parameter sweeps and calibration searches are
// expected to submit thousands of experiment evaluations through the
// same engine.
//
// The engine provides, per run:
//
//   - bounded parallelism (Config.Workers, default GOMAXPROCS),
//   - context cancellation (a cancelled context marks the remaining
//     experiments as failed with the context error and returns
//     promptly; running experiments honor cancellation at their
//     internal simulation boundaries — the kernel's event batches and
//     the fleet simulation's control steps — so a cancelled or
//     timed-out simulation stops mid-run instead of completing),
//   - per-experiment timeouts (Config.Timeout),
//   - panic isolation (a panicking experiment reports an error with
//     its stack instead of killing the run),
//   - bounded retries for flaky harnesses (Config.Retries), and
//   - per-experiment observability: wall time, result row count,
//     attempt count and pass/fail, aggregated into a Report with
//     latency percentiles and a telemetry snapshot (Config.Metrics)
//     carrying each experiment's engine metrics under a scope named
//     after it.
//
// Outcomes are reported in submission order regardless of completion
// order, so a parallel run is byte-for-byte comparable with a serial
// one.
//
// Worker slots are tokens in a budget shared with internal/sweep
// (sweep.Shared unless Config.Budget overrides it): each worker holds
// a token while its experiment runs, and an experiment that fans its
// own grid out through sweep.Map lends that token to its cells while
// the worker blocks on them. The requested worker count therefore
// bounds total live parallelism — experiments plus sweep cells — and
// the resolved count is threaded into experiments.Options.Workers so
// `octl -j` reaches inside each experiment's grid loops.
package runner

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"immersionoc/internal/experiments"
	"immersionoc/internal/sweep"
	"immersionoc/internal/telemetry"
)

// Config tunes one Run call. The zero value runs with GOMAXPROCS
// workers, no per-experiment timeout and no retries.
type Config struct {
	// Workers bounds the number of experiments executing at once.
	// Non-positive means runtime.GOMAXPROCS(0).
	Workers int
	// Timeout, when positive, bounds each experiment attempt; the
	// attempt's context is cancelled at the deadline. Experiments honor
	// cancellation at their internal simulation boundaries.
	Timeout time.Duration
	// Retries is the number of times a failing experiment is re-run
	// before its error is reported. Panics and timeouts count as
	// failures; context cancellation is never retried.
	Retries int
	// Options is passed to every experiment. The zero value reproduces
	// the published tables.
	Options experiments.Options
	// OnDone, when non-nil, is called as each experiment finishes with
	// its submission index and outcome. It may be called from multiple
	// worker goroutines concurrently; the callback must be safe for
	// that.
	OnDone func(i int, o Outcome)
	// Metrics selects the telemetry registry for the run. Nil (the
	// zero value) gives the run a fresh registry so concurrent Run
	// calls do not mix; pass telemetry.Default to publish into the
	// process-wide registry, or telemetry.Off to disable collection.
	// Each experiment's harness metrics land under a scope named
	// after the experiment; the runner's own counters land under
	// "runner".
	Metrics *telemetry.Registry
	// Budget is the worker-token pool shared between the runner and
	// the intra-experiment sweeps. Nil uses sweep.Shared, the
	// process-wide budget. Each worker holds a token while its
	// experiment runs and lends it to the experiment's sweep cells
	// while blocked on them, so experiments × cells never exceed the
	// budget's capacity. The budget is grown to the requested worker
	// count, never shrunk, so the runner's own parallelism is never
	// throttled below Workers.
	Budget *sweep.Budget
}

// Outcome is the observed result of one submitted experiment.
type Outcome struct {
	// Name is the experiment name.
	Name string
	// Result holds the artifact when Err is nil.
	Result experiments.Result
	// Err is the experiment error, the recovered panic, the attempt
	// timeout, or the run's cancellation error.
	Err error
	// Wall is the total wall-clock time spent on the experiment across
	// all attempts. Zero for experiments skipped by cancellation.
	Wall time.Duration
	// Rows is the structured row count of the result (0 for plots and
	// failures).
	Rows int
	// Attempts is the number of times the experiment ran (0 when it
	// was skipped by cancellation).
	Attempts int
	// Panicked reports whether the final attempt ended in a recovered
	// panic.
	Panicked bool
}

// OK reports whether the experiment produced its artifact.
func (o Outcome) OK() bool { return o.Err == nil }

// Report aggregates one Run call.
type Report struct {
	// Outcomes holds one entry per submitted experiment, in submission
	// order.
	Outcomes []Outcome
	// Wall is the wall-clock duration of the whole run.
	Wall time.Duration
	// Workers is the resolved worker count the run used.
	Workers int
	// Telemetry is the run's metrics snapshot: one scope per
	// experiment (engine counters, latency histograms, power/thermal
	// gauges) plus the runner's own "runner" scope. Nil when the run
	// used telemetry.Off.
	Telemetry *telemetry.Snapshot

	// sortedWalls caches the sorted per-experiment wall times for
	// Percentile; computed once on first use.
	sortOnce    sync.Once
	sortedWalls []time.Duration
}

// Failed returns the outcomes that did not produce an artifact.
func (r *Report) Failed() []Outcome {
	var out []Outcome
	for _, o := range r.Outcomes {
		if !o.OK() {
			out = append(out, o)
		}
	}
	return out
}

// TotalExperimentTime is the summed per-experiment wall time — the
// serial cost the worker pool amortized.
func (r *Report) TotalExperimentTime() time.Duration {
	var sum time.Duration
	for _, o := range r.Outcomes {
		sum += o.Wall
	}
	return sum
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1, nearest-rank) of the
// per-experiment wall times, or 0 for an empty run. The sorted wall
// times are computed once on first call and cached — Summary alone
// asks for two percentiles — so call it only after the run's outcomes
// are final.
func (r *Report) Percentile(p float64) time.Duration {
	if len(r.Outcomes) == 0 {
		return 0
	}
	r.sortOnce.Do(func() {
		walls := make([]time.Duration, len(r.Outcomes))
		for i, o := range r.Outcomes {
			walls[i] = o.Wall
		}
		sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
		r.sortedWalls = walls
	})
	walls := r.sortedWalls
	idx := int(math.Ceil(p*float64(len(walls)))) - 1
	if idx >= len(walls) {
		idx = len(walls) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return walls[idx]
}

// Slowest returns the longest-running outcome, or a zero Outcome for
// an empty run.
func (r *Report) Slowest() Outcome {
	var max Outcome
	for i, o := range r.Outcomes {
		if i == 0 || o.Wall > max.Wall {
			max = o
		}
	}
	return max
}

// Summary renders the one-line run footer octl prints.
func (r *Report) Summary() string {
	ok, retried := 0, 0
	for _, o := range r.Outcomes {
		if o.OK() {
			ok++
		}
		if o.Attempts > 1 {
			retried++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d experiments in %s (%d workers): %d ok, %d failed",
		len(r.Outcomes), round(r.Wall), r.Workers, ok, len(r.Outcomes)-ok)
	if retried > 0 {
		fmt.Fprintf(&b, ", %d retried", retried)
	}
	if len(r.Outcomes) > 0 {
		slow := r.Slowest()
		fmt.Fprintf(&b, "; exp wall p50=%s p95=%s max=%s (%s); serial cost %s",
			round(r.Percentile(0.50)), round(r.Percentile(0.95)),
			round(slow.Wall), slow.Name, round(r.TotalExperimentTime()))
	}
	return b.String()
}

// round trims a duration for display.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	}
	return d
}

// Run executes the experiments through the worker pool and returns
// when every submitted experiment has either finished or been skipped
// by cancellation. Outcomes appear in submission order. Run never
// panics because of an experiment; it is safe to call concurrently
// with itself.
func Run(ctx context.Context, exps []experiments.Experiment, cfg Config) *Report {
	requested := cfg.Workers
	if requested <= 0 {
		requested = runtime.GOMAXPROCS(0)
	}
	if requested < 1 {
		requested = 1
	}
	// The pool never needs more workers than experiments, but the
	// requested width still reaches inside each experiment: a lone
	// `octl fig12 -j 8` runs one experiment whose sweep fans its grid
	// out 8-wide.
	workers := requested
	if workers > len(exps) {
		workers = len(exps)
	}
	if workers < 1 {
		workers = 1
	}
	budget := cfg.Budget
	if budget == nil {
		budget = sweep.Shared
	}
	budget.Grow(requested)
	if cfg.Options.Workers == 0 {
		cfg.Options.Workers = requested
	}
	report := &Report{Outcomes: make([]Outcome, len(exps)), Workers: workers}
	start := time.Now()

	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	rm := runMetrics{
		attempts: reg.Scope("runner").Counter("attempts"),
		retries:  reg.Scope("runner").Counter("retries"),
		panics:   reg.Scope("runner").Counter("panics"),
		failures: reg.Scope("runner").Counter("failures"),
		skipped:  reg.Scope("runner").Counter("skipped"),
		wall:     reg.Scope("runner").Histogram("wall_s", telemetry.WallBuckets),
	}

	jobs := make(chan int, len(exps))
	for i := range exps {
		jobs <- i
	}
	close(jobs)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				var o Outcome
				if lease, err := acquireSlot(ctx, budget); err != nil {
					// The run was cancelled: mark the remaining
					// experiments without starting them.
					o = Outcome{Name: exps[i].Name, Err: err}
					rm.skipped.Inc()
				} else {
					// The experiment runs holding a budget token; its
					// context carries the lease so a sweep inside can
					// lend the slot to its cells while this worker
					// blocks on them.
					o = runOne(sweep.Attach(ctx, lease), exps[i], cfg, reg, rm)
					lease.Release()
				}
				report.Outcomes[i] = o
				if cfg.OnDone != nil {
					cfg.OnDone(i, o)
				}
			}
		}()
	}
	wg.Wait()
	report.Wall = time.Since(start)
	report.Telemetry = reg.Snapshot()
	return report
}

// acquireSlot takes a budget token, refusing outright when the run is
// already cancelled (a free token must not resurrect a skipped
// experiment).
func acquireSlot(ctx context.Context, b *sweep.Budget) (*sweep.Lease, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.Acquire(ctx)
}

// runMetrics holds the runner's own telemetry handles (all nil no-ops
// when collection is off).
type runMetrics struct {
	attempts, retries, panics, failures, skipped *telemetry.Counter
	wall                                         *telemetry.Histogram
}

// runOne executes a single experiment with retries. The experiment's
// harness publishes its engine metrics into a scope keyed by the
// experiment name.
func runOne(ctx context.Context, e experiments.Experiment, cfg Config, reg *telemetry.Registry, rm runMetrics) Outcome {
	out := Outcome{Name: e.Name}
	cfg.Options.Tel = reg.Scope(e.Name)
	start := time.Now()
	for attempt := 0; ; attempt++ {
		out.Attempts = attempt + 1
		rm.attempts.Inc()
		if attempt > 0 {
			rm.retries.Inc()
		}
		res, panicked, err := attemptOne(ctx, e, cfg)
		out.Panicked = panicked
		out.Err = err
		if panicked {
			rm.panics.Inc()
		}
		if err == nil {
			out.Result = res
			out.Rows = res.RowCount()
			break
		}
		if attempt >= cfg.Retries || ctx.Err() != nil {
			break
		}
	}
	if out.Err != nil {
		rm.failures.Inc()
	}
	out.Wall = time.Since(start)
	rm.wall.Observe(out.Wall.Seconds())
	return out
}

// attemptOne makes one attempt under the per-attempt timeout,
// converting a panic into an error carrying the stack.
func attemptOne(ctx context.Context, e experiments.Experiment, cfg Config) (res experiments.Result, panicked bool, err error) {
	actx := ctx
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	defer func() {
		if p := recover(); p != nil {
			panicked = true
			err = fmt.Errorf("panic: %v\n%s", p, debug.Stack())
		}
	}()
	res, err = e.Run(actx, cfg.Options)
	// An experiment that returns success after its deadline passed
	// raced the timeout; the artifact is still good, keep it.
	return res, false, err
}
