package dcsim

// Tests for the sharded control step: partition geometry, and the
// byte-stability promise — a fleet stepped under any shard count must
// produce bit-identical KPIs and time series, because the barrier
// replays the per-server power deltas in fleet order regardless of
// which goroutine computed them.

import (
	"reflect"
	"testing"
)

func TestShardPartitionGeometry(t *testing.T) {
	cases := []struct {
		shards, tanks, perTank, servers int
	}{
		{1, 3, 12, 36},
		{4, 3, 12, 36}, // clamped by New, but newShards(3,...) directly
		{3, 3, 12, 36},
		{8, 84, 12, 1000}, // last tank partial
		{7, 13, 5, 61},
	}
	for _, tc := range cases {
		n := tc.shards
		if n > tc.tanks {
			n = tc.tanks
		}
		shards := newShards(n, tc.tanks, tc.perTank, tc.servers)
		wantT, wantS := 0, 0
		for i, sh := range shards {
			if sh.t0 != wantT || sh.s0 != wantS {
				t.Fatalf("%+v shard %d: range starts at (t%d, s%d), want (t%d, s%d)", tc, i, sh.t0, sh.s0, wantT, wantS)
			}
			if sh.t1 < sh.t0 || sh.s1 < sh.s0 {
				t.Fatalf("%+v shard %d: inverted range %+v", tc, i, sh)
			}
			// Tanks must not straddle shards: the server range is
			// derived from whole tanks.
			if sh.s0 != sh.t0*tc.perTank {
				t.Fatalf("%+v shard %d: server range splits a tank", tc, i)
			}
			wantT, wantS = sh.t1, sh.s1
		}
		if wantT != tc.tanks || wantS != tc.servers {
			t.Fatalf("%+v: partition covers (t%d, s%d), want (t%d, s%d)", tc, wantT, wantS, tc.tanks, tc.servers)
		}
	}
}

// fleetScaleConfig is the 1000-server / 10k-VM workload of
// BenchmarkFleetScale — large enough that grants, feeder interactions
// and thousands of placements all occur.
func fleetScaleConfig() Config {
	cfg := DefaultConfig()
	cfg.Servers = 1000
	cfg.ServersPerTank = 12
	cfg.FeederBudgetW = 347000
	cfg.Trace.DurationS = 24 * 3600
	cfg.Trace.ArrivalRatePerS = 10000.0 / (24 * 3600)
	cfg.Trace.MeanLifetimeS = 10 * 3600
	return cfg
}

// TestShardsEquivalenceFleetScale pins shards=1 against shards=8 at
// fleet scale on the complete report: every cumulative KPI and every
// float64 sample of every time series, compared bit-for-bit.
func TestShardsEquivalenceFleetScale(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-scale equivalence run skipped in -short")
	}
	base := fleetScaleConfig()
	runAt := func(shards int) *Report {
		cfg := base
		cfg.Shards = shards
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return rep
	}
	serial := runAt(1)
	sharded := runAt(8)
	if !reflect.DeepEqual(serial, sharded) {
		t.Errorf("shards=1 and shards=8 reports differ\nserial:  %s\nsharded: %s", serial, sharded)
		for i, p := range serial.PowerW.Values {
			if sharded.PowerW.Values[i] != p {
				t.Fatalf("first power divergence at sample %d: %v vs %v", i, p, sharded.PowerW.Values[i])
			}
		}
		for i, b := range serial.BathC.Values {
			if sharded.BathC.Values[i] != b {
				t.Fatalf("first bath divergence at sample %d: %v vs %v", i, b, sharded.BathC.Values[i])
			}
		}
	}
	if serial.TotalGrants == 0 || serial.PeakOverclocked == 0 {
		t.Fatalf("workload exercised no overclocking; equivalence is vacuous: %s", serial)
	}
}

// TestShardsClampedToTanks checks shard counts beyond the tank count
// degrade gracefully instead of creating empty shards.
func TestShardsClampedToTanks(t *testing.T) {
	cfg := smallConfig() // 3 tanks
	cfg.Shards = 64
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.shards) != 3 {
		t.Fatalf("64 shards over 3 tanks built %d shards, want 3", len(sim.shards))
	}
	sim.Step()
	if sim.Now() != cfg.StepS {
		t.Fatalf("sharded step did not advance time: %v", sim.Now())
	}
}
