package dcsim

import (
	"context"
	"errors"
	"testing"

	"immersionoc/internal/telemetry"
	"immersionoc/internal/thermal"
	"immersionoc/internal/vm"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Trace.DurationS = 12 * 3600
	return cfg
}

func TestRunProducesReport(t *testing.T) {
	rep, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakDensity <= 0 {
		t.Fatal("no VMs placed")
	}
	if rep.PowerW.Len() == 0 || rep.BathC.Len() == 0 {
		t.Fatal("series not recorded")
	}
	if rep.MaxBathC < 50 {
		t.Fatalf("bath %v below FC-3284 boiling point", rep.MaxBathC)
	}
	if rep.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("non-deterministic: %s vs %s", a, b)
	}
}

func TestHighLoadTriggersOverclocks(t *testing.T) {
	cfg := smallConfig()
	cfg.Trace.ArrivalRatePerS = 0.05
	cfg.Trace.MeanLifetimeS = 20 * 3600
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakOverclocked == 0 {
		t.Fatal("heavy oversubscribed load never overclocked")
	}
	if rep.OverclockServerHours <= 0 {
		t.Fatal("no overclock hours accrued")
	}
	// Tank admission keeps each tank within its condenser budget.
	budget := thermal.LargeTank().OverclockBudget(12, 658, 858)
	if rep.PeakOverclocked > 3*budget {
		t.Fatalf("peak OC %d exceeds 3 tanks × budget %d", rep.PeakOverclocked, budget)
	}
}

func TestFeederBudgetCancelsOverclocks(t *testing.T) {
	cfg := smallConfig()
	cfg.Trace.ArrivalRatePerS = 0.05
	cfg.Trace.MeanLifetimeS = 20 * 3600
	cfg.FeederBudgetW = 11200 // tight
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CapEvents == 0 || rep.CancelledOverclocks == 0 {
		t.Fatalf("tight feeder never capped: %s", rep)
	}
	// The row must actually respect the budget at every sample.
	for _, p := range rep.PowerW.Values {
		if p > cfg.FeederBudgetW*1.001 {
			t.Fatalf("row power %v exceeds budget %v", p, cfg.FeederBudgetW)
		}
	}
}

func TestWearStaysNearSchedule(t *testing.T) {
	rep, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Immersed fleet at moderate load wears well below the 5-year
	// schedule even with opportunistic overclocking.
	if rep.MeanWearUsed >= 1 {
		t.Fatalf("fleet wearing faster than schedule: %v", rep.MeanWearUsed)
	}
	if rep.MeanWearUsed <= 0 {
		t.Fatal("no wear accrued")
	}
}

func TestRunValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Servers = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero servers accepted")
	}
	cfg = DefaultConfig()
	cfg.StepS = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestTraceReplayConsistency(t *testing.T) {
	// Density must return to ~0 after all VMs depart.
	cfg := smallConfig()
	cfg.Trace.DurationS = 6 * 3600
	cfg.Trace.MeanLifetimeS = 1800
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = vm.DefaultTrace
	last := rep.Density.Values[len(rep.Density.Values)-1]
	if last > rep.PeakDensity {
		t.Fatal("density bookkeeping inconsistent")
	}
}

// stepCountingCtx reports itself cancelled after its Err method has
// been consulted limit times — a deterministic stand-in for "the user
// hit ^C while step N was executing".
type stepCountingCtx struct {
	context.Context
	calls, limit int
}

func (c *stepCountingCtx) Err() error {
	c.calls++
	if c.calls > c.limit {
		return context.Canceled
	}
	return nil
}

// TestRunCtxPreCancelled asserts a cancelled context stops the run
// before the first control step executes.
func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reg := telemetry.NewRegistry()
	cfg := smallConfig()
	cfg.Tel = reg.Scope("fleet")
	if _, err := RunCtx(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	if steps := reg.Scope("fleet").Counter("steps").Value(); steps != 0 {
		t.Fatalf("%d control steps ran after cancellation", steps)
	}
}

// TestRunCtxStopsWithinOneStep pins the cancellation promise: once
// the context reports cancelled, at most the in-flight control step
// finishes — the simulation does not run to the end of the trace.
func TestRunCtxStopsWithinOneStep(t *testing.T) {
	const limit = 5
	reg := telemetry.NewRegistry()
	cfg := smallConfig()
	cfg.Tel = reg.Scope("fleet")
	ctx := &stepCountingCtx{Context: context.Background(), limit: limit}
	if _, err := RunCtx(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	steps := reg.Scope("fleet").Counter("steps").Value()
	if steps > limit {
		t.Fatalf("%d control steps ran, want ≤ %d (cancellation checked each step boundary)", steps, limit)
	}
	// The trace would run far longer than limit steps; make sure the
	// cancellation actually cut it short rather than the config.
	if total := cfg.Trace.DurationS / cfg.StepS; float64(steps) >= total {
		t.Fatalf("cancellation never cut the run short (%d of %.0f steps)", steps, total)
	}
}
