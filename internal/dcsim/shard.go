package dcsim

// Fleet sharding: the control step partitioned by tank so independent
// slices of the fleet advance concurrently under the process-wide
// sweep budget, synchronizing only at the feeder/capping barrier.
//
// A shard owns a contiguous run of tanks and, through the fixed
// server→tank geometry, the contiguous run of servers inside them —
// tanks never straddle shards, so heat accumulation, tank integration
// and wear accrual touch shard-local state only. The two parallel
// phases bracket one serial barrier:
//
//	phase 1 (parallel)  refresh power caches, reset clocks to nominal
//	barrier  (serial)   fold power deltas into the row sum, offer every
//	                    server to the Decider, Decide (grant + feeder
//	                    capping)
//	phase 2 (parallel)  per-tank heat → condenser integration → wear
//
// Determinism is by construction, not by tolerance: phase 1 does not
// touch the shared row-power sum — it records each server's addends
// (the exact float64 deltas the serial loop would have added) in
// server order, and the barrier replays them shard by shard, which is
// fleet order. The running sum therefore sees the identical sequence
// of additions at every shard count, so KPIs are byte-stable from
// shards=1 to shards=N, and byte-identical to the pre-sharding serial
// loop. The bath maximum reduces through per-shard maxima in shard
// order, which preserves the serial comparison sequence exactly
// (float max returns one of its operands).
//
// Wear accrual memoizes hazards per shard: the HazardCache is not
// safe for concurrent use, and its values depend only on the queried
// condition (quantized grid + lerp), so giving each shard its own
// cache changes nothing but the memoization locality.

import (
	"context"
	"math"

	"immersionoc/internal/freq"
	"immersionoc/internal/power"
	"immersionoc/internal/reliability"
	"immersionoc/internal/sweep"
)

// shard is one slice of the fleet: tanks [t0, t1) and the servers
// [s0, s1) they hold, plus the per-step scratch the parallel phases
// fill for the barrier to consume.
type shard struct {
	t0, t1 int
	s0, s1 int

	// addends are the row-power deltas phase 1 produced, in server
	// order; the barrier replays them into stepContext.rowPowerW.
	addends []float64
	// ocDelta is the net overclock-count change from phase 1's clock
	// resets (always ≤ 0); the barrier folds it into the shared
	// stepContext.ocTotal, which phase 1 must not touch concurrently.
	ocDelta int
	// maxBath is the shard's hottest bath after phase 2.
	maxBath float64
}

// newShards partitions nTanks tanks into n contiguous shards (n
// pre-clamped to [1, nTanks]) and derives each shard's server range
// from the tank geometry.
func newShards(n, nTanks, serversPerTank, servers int) []*shard {
	shards := make([]*shard, n)
	for i := range shards {
		t0 := i * nTanks / n
		t1 := (i + 1) * nTanks / n
		s0 := t0 * serversPerTank
		s1 := t1 * serversPerTank
		if s1 > servers {
			s1 = servers
		}
		shards[i] = &shard{t0: t0, t1: t1, s0: s0, s1: s1}
	}
	return shards
}

// phase1 refreshes the power caches of the shard's servers and resets
// every clock to nominal, recording the row-power addends the serial
// loop would have folded — same values, same per-server order — for
// the barrier to replay. Overclock counts change only on tanks the
// shard owns, so the shared ocPerTank slice is written race-free.
func (sh *shard) phase1(sc *stepContext) {
	sh.addends = sh.addends[:0]
	sh.ocDelta = 0
	for _, st := range sc.states[sh.s0:sh.s1] {
		d, vc := st.srv.ExpectedDemand(), st.srv.VCoresUsed()
		if d != st.lastDemand || vc != st.lastVCores {
			old := st.current()
			st.lastDemand, st.lastVCores = d, vc
			st.powerNomW = BladeServer.Power(freq.B2, d, vc)
			st.powerOCW = BladeServer.Power(freq.OC1, d, vc)
			sh.addends = append(sh.addends, st.current()-old)
		}
		if st.oc {
			st.oc = false
			sc.ocPerTank[st.tank]--
			sh.ocDelta--
			sh.addends = append(sh.addends, st.powerNomW-st.powerOCW)
		}
	}
}

// phase2 integrates the shard's thermal and wear state: per-tank heat
// accumulated in server order, condenser integration, the shard-local
// bath maximum, and wear accrual against the shard's hazard cache.
func (sh *shard) phase2(s *Sim) {
	sc := s.sc
	for t := sh.t0; t < sh.t1; t++ {
		sc.heat[t] = 0
	}
	for _, st := range sc.states[sh.s0:sh.s1] {
		w := nominalHeatW
		if st.oc {
			w = overclockHeatW
		}
		util := math.Min(1, st.lastDemand/st.pcores)
		sc.heat[st.tank] += idleHeatW + (w-idleHeatW)*util
	}
	sh.maxBath = 0
	for t := sh.t0; t < sh.t1; t++ {
		b := s.tanks[t].Step(s.cfg.StepS, sc.heat[t])
		if b > sh.maxBath {
			sh.maxBath = b
		}
	}

	hours := s.cfg.StepS / 3600
	for _, st := range sc.states[sh.s0:sh.s1] {
		bath := s.tanks[st.tank].BathC()
		cond := reliability.Condition{VoltageV: power.NominalVoltage, TjMaxC: bath + nominalTjRiseC, TjMinC: bath}
		if st.oc {
			cond = reliability.Condition{VoltageV: power.OverclockedVoltage, TjMaxC: bath + ocTjRiseC, TjMinC: bath}
		}
		util := math.Min(1, st.lastDemand/st.pcores)
		st.wear.Accrue(cond, hours, util)
		st.hours += hours
	}
}

// runShards executes f over every shard. A single shard runs inline
// (the serial fast path the small fleets keep); multiple shards fan
// out through sweep.Map, drawing workers from the lease attached to
// ctx or the process-wide shared budget — the same cap octl -j and
// the daemon grow, so sharded stepping and experiment sweeps never
// oversubscribe the host together.
func (s *Sim) runShards(ctx context.Context, f func(*shard)) error {
	if len(s.shards) == 1 {
		f(s.shards[0])
		return nil
	}
	_, err := sweep.Map(ctx, len(s.shards), sweep.Options{Workers: len(s.shards)},
		func(_ context.Context, i int) (struct{}, error) {
			f(s.shards[i])
			return struct{}{}, nil
		})
	return err
}
