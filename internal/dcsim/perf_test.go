package dcsim

// Tests pinning the O(changed state) control loop to the behaviour of
// the original recompute-everything implementation: golden reports
// captured from the pre-optimization tip, and a randomized equivalence
// check of the incremental row-power sum against a naive fleet sweep.

import (
	"math"
	"testing"
	"testing/quick"

	"immersionoc/internal/cluster"
	"immersionoc/internal/freq"
	"immersionoc/internal/rng"
	"immersionoc/internal/vm"
)

// Golden report strings captured from the pre-optimization
// implementation (full per-step recompute). The incremental control
// loop must reproduce them verbatim — including the capped scenario,
// whose 117 cap events / 1910 cancellations exercise the delta-updated
// feeder path against thresholds the old code evaluated with fresh
// fleet sums.
func TestGoldenReports(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() Config
		want string
	}{
		{
			name: "small",
			cfg:  smallConfig,
			want: "peak density 0.441, rejected 0, peak OC 8, OC server-hours 45.2, max bath 50.0°C, cap events 0 (0 cancelled), wear rate 0.11× schedule",
		},
		{
			name: "capped",
			cfg: func() Config {
				cfg := DefaultConfig()
				cfg.Trace.DurationS = 12 * 3600
				cfg.Trace.ArrivalRatePerS = 0.05
				cfg.Trace.MeanLifetimeS = 20 * 3600
				cfg.FeederBudgetW = 11200
				return cfg
			},
			want: "peak density 1.250, rejected 933, peak OC 16, OC server-hours 49.7, max bath 50.0°C, cap events 117 (1910 cancelled), wear rate 0.26× schedule",
		},
		{
			name: "bench",
			cfg: func() Config {
				cfg := DefaultConfig()
				cfg.Trace.DurationS = 24 * 3600
				return cfg
			},
			want: "peak density 0.470, rejected 0, peak OC 9, OC server-hours 115.0, max bath 50.0°C, cap events 0 (0 cancelled), wear rate 0.14× schedule",
		},
		{
			name: "scale",
			cfg: func() Config {
				cfg := DefaultConfig()
				cfg.Servers = 1000
				cfg.ServersPerTank = 12
				cfg.FeederBudgetW = 347000
				cfg.Trace.DurationS = 24 * 3600
				cfg.Trace.ArrivalRatePerS = 10000.0 / (24 * 3600)
				cfg.Trace.MeanLifetimeS = 10 * 3600
				return cfg
			},
			want: "peak density 0.204, rejected 0, peak OC 84, OC server-hours 1375.3, max bath 50.0°C, cap events 0 (0 cancelled), wear rate 0.06× schedule",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The goldens must hold at every shard count: the sharded
			// step's delta-replay barrier promises byte-stable KPIs
			// from the serial path to any partitioning.
			for _, shards := range []int{1, 4} {
				cfg := tc.cfg()
				cfg.Shards = shards
				rep, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if got := rep.String(); got != tc.want {
					t.Errorf("shards=%d: report drifted from pre-optimization golden\n got: %s\nwant: %s", shards, got, tc.want)
				}
			}
		})
	}
}

// TestRowPowerIncrementalMatchesRecompute drives the step context's
// delta-maintained row-power sum through randomized place / remove /
// overclock-toggle sequences and checks it against a naive full-fleet
// recompute after every operation.
func TestRowPowerIncrementalMatchesRecompute(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		cl := cluster.New(cluster.TwoSocketBlade, cluster.Policy{CPUOversubRatio: 0.5}, 8)
		servers := cl.Servers()
		states := make([]*serverState, len(servers))
		sc := &stepContext{ocPerTank: make([]int, 1)}
		for i, s := range servers {
			states[i] = &serverState{srv: s, pcores: float64(s.Spec.PCores)}
			states[i].powerNomW = BladeServer.Power(freq.B2, 0, 0)
			states[i].powerOCW = BladeServer.Power(freq.OC1, 0, 0)
			sc.rowPowerW += states[i].powerNomW
		}
		var placed []*vm.VM
		nextID := 1
		for op := 0; op < 200; op++ {
			switch r.Intn(3) {
			case 0: // place
				v := &vm.VM{
					ID:      nextID,
					Type:    vm.Type{Name: "q", VCores: 1 + r.Intn(8), MemoryGB: 4},
					AvgUtil: 0.05 + 0.9*r.Float64(),
				}
				nextID++
				if _, err := cl.Place(v); err == nil {
					placed = append(placed, v)
				}
			case 1: // remove
				if len(placed) > 0 {
					i := r.Intn(len(placed))
					if err := cl.Remove(placed[i]); err != nil {
						return false
					}
					placed[i] = placed[len(placed)-1]
					placed = placed[:len(placed)-1]
				}
			case 2: // overclock toggle
				st := states[r.Intn(len(states))]
				sc.refreshPower(st)
				sc.setOC(st, !st.oc)
			}
			for _, st := range states {
				sc.refreshPower(st)
			}
			var naive float64
			for _, st := range states {
				cfgF := freq.B2
				if st.oc {
					cfgF = freq.OC1
				}
				naive += BladeServer.Power(cfgF, st.srv.ExpectedDemand(), st.srv.VCoresUsed())
			}
			if math.Abs(sc.rowPowerW-naive) > 1e-6*math.Max(1, math.Abs(naive)) {
				t.Logf("seed %d op %d: incremental %v vs naive %v", seed, op, sc.rowPowerW, naive)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
