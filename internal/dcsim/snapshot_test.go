package dcsim

import (
	"testing"
)

// TestSnapshotMatchesLiveReads pins the snapshot export to the live
// control accessors at several points through a run: every exported
// field must equal what the corresponding Sim method reports at the
// same instant, including the row-power running sum copied bit-exact.
func TestSnapshotMatchesLiveReads(t *testing.T) {
	cfg := DefaultConfig()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snap FleetSnapshot
	for !sim.Done() {
		for i := 0; i < 40 && !sim.Done(); i++ {
			sim.Step()
		}
		sim.Snapshot(&snap)
		if snap.SimTimeS != sim.Now() || snap.StepS != sim.StepS() {
			t.Fatalf("time mismatch: snap (%v, %v) vs sim (%v, %v)",
				snap.SimTimeS, snap.StepS, sim.Now(), sim.StepS())
		}
		if snap.RowPowerW != sim.RowPowerW() {
			t.Fatalf("row power: snap %v != live %v", snap.RowPowerW, sim.RowPowerW())
		}
		rep := sim.Report()
		if snap.Rejected != rep.Rejected || snap.MaxBathC != rep.MaxBathC ||
			snap.TotalGrants != rep.TotalGrants ||
			snap.CancelledOverclocks != rep.CancelledOverclocks ||
			snap.CapEvents != rep.CapEvents ||
			snap.OverclockServerHours != rep.OverclockServerHours ||
			snap.MeanWearUsed != rep.MeanWearUsed {
			t.Fatalf("report KPI mismatch at t=%v", sim.Now())
		}
		oc := 0
		for i := 0; i < sim.TankCount(); i++ {
			if snap.OCPerTank[i] != sim.TankOverclocked(i) ||
				snap.TankBudget[i] != sim.TankBudget(i) ||
				snap.TankBathC[i] != sim.TankBathC(i) {
				t.Fatalf("tank %d column mismatch at t=%v", i, sim.Now())
			}
			oc += sim.TankOverclocked(i)
		}
		if snap.Overclocked != oc || sim.Overclocked() != oc {
			t.Fatalf("overclocked: snap %d, incremental %d, recount %d", snap.Overclocked, sim.Overclocked(), oc)
		}
		for i := 0; i < sim.ServerCount(); i++ {
			info := sim.Server(i)
			if snap.WearUsed.At(i) != info.WearUsed || snap.WearProRata.At(i) != info.WearProRata {
				t.Fatalf("server %d wear mismatch at t=%v", i, sim.Now())
			}
			if snap.Flat.VCoresUsed.At(i) != info.VCoresUsed ||
				snap.Flat.VMs.At(i) != info.VMs ||
				snap.Flat.MemoryUsedGB.At(i) != info.MemoryUsedGB {
				t.Fatalf("server %d placement column mismatch at t=%v", i, sim.Now())
			}
		}
		if snap.Flat.Density != sim.Cluster().Stats().Density {
			t.Fatalf("density mismatch at t=%v", sim.Now())
		}
	}
}

// TestSnapshotIsReadOnly checks that taking a snapshot cannot perturb
// the simulation: a run interleaved with snapshots produces KPIs
// byte-identical to an undisturbed run. This is the property that lets
// the daemon publish after every step without forking from the batch
// evaluation — in particular the export must not refresh power caches,
// which would reorder the row-power float additions.
func TestSnapshotIsReadOnly(t *testing.T) {
	cfg := DefaultConfig()
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snap FleetSnapshot
	for !sim.Done() {
		sim.Snapshot(&snap)
		sim.Step()
	}
	sim.Snapshot(&snap)
	got := sim.Report()
	if got.String() != plain.String() ||
		got.PeakDensity != plain.PeakDensity ||
		got.MaxBathC != plain.MaxBathC ||
		got.OverclockServerHours != plain.OverclockServerHours ||
		got.MeanWearUsed != plain.MeanWearUsed {
		t.Fatalf("snapshot-interleaved run diverged:\n  got  %v\n  want %v", got, plain)
	}
	if snap.RowPowerW != sim.RowPowerW() {
		t.Fatalf("final row power mismatch")
	}
}

// TestSnapshotReusesSlices checks the warm-destination contract:
// re-snapshotting into the same FleetSnapshot performs zero
// allocations, which is what lets the daemon republish after every
// mutation without generating garbage.
func TestSnapshotReusesSlices(t *testing.T) {
	cfg := DefaultConfig()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sim.Step()
	}
	var snap FleetSnapshot
	sim.Snapshot(&snap)
	if n := testing.AllocsPerRun(50, func() { sim.Snapshot(&snap) }); n != 0 {
		t.Fatalf("warm snapshot allocated %v times per run, want 0", n)
	}
}
