package dcsim

import (
	"math/rand"
	"testing"

	"immersionoc/internal/vm"
)

// TestSnapshotCOWMatchesFullCopy is the randomized COW differential:
// a chained snapshot (re-exported into the same destination after
// every mutation batch, so it exercises the chunk-sharing path) must
// stay byte-identical to a fresh fully-materialized snapshot taken at
// the same instant, across arbitrary mutation traces — placements,
// removals, overclock toggles, steps, server failures and
// remove-after-fail — and across chunk geometries, including chunk
// sizes that do not divide the fleet size.
func TestSnapshotCOWMatchesFullCopy(t *testing.T) {
	for _, shift := range []uint{1, 3, 10} {
		shift := shift
		t.Run(map[uint]string{1: "chunk2", 3: "chunk8", 10: "chunk1024"}[shift], func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Servers = 37 // 37 % 2, 37 % 8, 37 % 1024 all non-zero
			cfg.ServersPerTank = 4
			cfg.Events = []vm.Event{}
			cfg.SnapshotChunkShift = shift
			sim, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(int64(shift)))
			sizes := []vm.Type{vm.Size2, vm.Size4, vm.Size8}
			var live []*vm.VM
			nextID := 0

			var chained FleetSnapshot
			for round := 0; round < 60; round++ {
				// One mutation batch.
				for k := 0; k < 1+rng.Intn(5); k++ {
					switch op := rng.Intn(10); {
					case op < 4: // place
						v := &vm.VM{ID: nextID, Type: sizes[rng.Intn(len(sizes))], AvgUtil: 0.3 + 0.4*rng.Float64()}
						nextID++
						if _, err := sim.Place(v); err == nil {
							live = append(live, v)
						}
					case op < 6 && len(live) > 0: // remove
						j := rng.Intn(len(live))
						sim.Remove(live[j])
						live[j] = live[len(live)-1]
						live = live[:len(live)-1]
					case op < 8: // overclock toggle
						sim.SetOverclock(rng.Intn(sim.ServerCount()), rng.Intn(2) == 0)
					default:
						sim.Step()
					}
				}
				switch round {
				case 25: // failure batch: Failed column + KPI drops
					gone := map[int]bool{}
					for _, v := range sim.Cluster().FailServers(3) {
						gone[v.ID] = true
					}
					kept := live[:0]
					for _, v := range live {
						if !gone[v.ID] {
							kept = append(kept, v)
						}
					}
					live = kept
				case 26: // remove-after-fail: a displaced VM's departure is a no-op
					sim.Remove(&vm.VM{ID: nextID - 1, Type: vm.Size2})
				}

				sim.Snapshot(&chained)
				var full FleetSnapshot
				sim.Snapshot(&full)
				compareSnapshots(t, round, &chained, &full)
			}
		})
	}
}

// compareSnapshots requires a and b byte-identical in every exported
// field (floats compared exactly: the COW path must share or copy the
// very same values the full materialization reads).
func compareSnapshots(t *testing.T, round int, a, b *FleetSnapshot) {
	t.Helper()
	if a.SimTimeS != b.SimTimeS || a.StepS != b.StepS || a.ServersPerTank != b.ServersPerTank ||
		a.RowPowerW != b.RowPowerW || a.Overclocked != b.Overclocked ||
		a.Rejected != b.Rejected || a.MaxBathC != b.MaxBathC ||
		a.TotalGrants != b.TotalGrants || a.CancelledOverclocks != b.CancelledOverclocks ||
		a.CapEvents != b.CapEvents || a.OverclockServerHours != b.OverclockServerHours ||
		a.MeanWearUsed != b.MeanWearUsed {
		t.Fatalf("round %d: scalar KPI mismatch:\nchained %+v\nfull    %+v", round, a, b)
	}
	if len(a.OCPerTank) != len(b.OCPerTank) || len(a.TankBathC) != len(b.TankBathC) ||
		len(a.TankBudget) != len(b.TankBudget) {
		t.Fatalf("round %d: tank column lengths diverged", round)
	}
	for i := range a.OCPerTank {
		if a.OCPerTank[i] != b.OCPerTank[i] || a.TankBudget[i] != b.TankBudget[i] ||
			a.TankBathC[i] != b.TankBathC[i] {
			t.Fatalf("round %d tank %d: column mismatch", round, i)
		}
	}
	fa, fb := &a.Flat, &b.Flat
	if fa.Servers != fb.Servers || fa.PlacedVMs != fb.PlacedVMs || fa.Density != fb.Density ||
		fa.Spec != fb.Spec || fa.OversubRatio != fb.OversubRatio || fa.VCoreCap != fb.VCoreCap {
		t.Fatalf("round %d: flat scalar mismatch", round)
	}
	for i := 0; i < fa.Servers; i++ {
		if a.WearUsed.At(i) != b.WearUsed.At(i) || a.WearProRata.At(i) != b.WearProRata.At(i) {
			t.Fatalf("round %d server %d: wear column mismatch", round, i)
		}
		if fa.ID.At(i) != fb.ID.At(i) || fa.VCoresUsed.At(i) != fb.VCoresUsed.At(i) ||
			fa.VMs.At(i) != fb.VMs.At(i) || fa.MemoryUsedGB.At(i) != fb.MemoryUsedGB.At(i) ||
			fa.DemandCores.At(i) != fb.DemandCores.At(i) ||
			fa.Failed.At(i) != fb.Failed.At(i) || fa.Reserved.At(i) != fb.Reserved.At(i) {
			t.Fatalf("round %d server %d: flat column mismatch", round, i)
		}
	}
}
