package dcsim

// Control-plane accessors: the read and actuation surface the ocd
// daemon serves its placement/overclock API from. Everything here
// operates on the same incremental state the step loop maintains, so
// an API-served answer between steps is consistent with what the next
// Step will compute.

import "immersionoc/internal/reliability"

// ServerInfo is a read-only snapshot of one server's control state.
type ServerInfo struct {
	// Index is the dense fleet index (Sim.SetOverclock's handle).
	Index int
	// ID is the cluster server ID.
	ID int
	// Tank is the server's immersion tank index.
	Tank int
	// Overclockable reports hardware overclock capability.
	Overclockable bool
	// Overclocked reports the server's current clock configuration.
	Overclocked bool
	// PCores is the physical core count; VCoresUsed the allocated
	// virtual cores; VMs the placed VM count.
	PCores, VCoresUsed, VMs int
	// MemoryGB / MemoryUsedGB are total and allocated memory.
	MemoryGB, MemoryUsedGB float64
	// DemandCores is the expected concurrent core demand
	// (Σ vcores·AvgUtil over placed VMs).
	DemandCores float64
	// PowerNomW / PowerOCW are the blade's power at the nominal and
	// overclocked configurations for the current demand.
	PowerNomW, PowerOCW float64
	// WearUsed is the consumed fraction of the lifetime wear budget;
	// WearProRata the fraction a server wearing exactly on schedule
	// would have consumed by now.
	WearUsed, WearProRata float64
}

// ServerCount returns the fleet size.
func (s *Sim) ServerCount() int { return len(s.states) }

// Server snapshots server i's control state, refreshing its power
// cache so the numbers reflect the cluster's current allocations (the
// refresh folds any delta into the row-power sum, exactly as the step
// loop would).
func (s *Sim) Server(i int) ServerInfo {
	st := s.states[i]
	s.sc.refreshPower(st)
	return ServerInfo{
		Index:         i,
		ID:            st.srv.ID,
		Tank:          st.tank,
		Overclockable: st.srv.Spec.Overclockable,
		Overclocked:   st.oc,
		PCores:        st.srv.Spec.PCores,
		VCoresUsed:    st.srv.VCoresUsed(),
		VMs:           st.srv.VMs(),
		MemoryGB:      st.srv.Spec.MemoryGB,
		MemoryUsedGB:  st.srv.MemoryUsed(),
		DemandCores:   st.lastDemand,
		PowerNomW:     st.powerNomW,
		PowerOCW:      st.powerOCW,
		WearUsed:      st.wear.Used(),
		WearProRata:   st.hours / (reliability.ServiceLifeYears * 24 * 365),
	}
}

// SetOverclock toggles server i's clock configuration, folding the
// power delta into the row sum. A grant made between steps holds until
// the next Step re-decides the whole fleet.
func (s *Sim) SetOverclock(i int, oc bool) {
	st := s.states[i]
	s.sc.refreshPower(st)
	s.sc.setOC(st, oc)
}

// RefreshServerPower folds server i's pending power delta into the
// row sum, exactly as a Server() read would, without building the info
// struct. Control planes call it after a mutation so the running sum
// is fully folded before they publish a read snapshot.
func (s *Sim) RefreshServerPower(i int) { s.sc.refreshPower(s.states[i]) }

// RowPowerW returns the row's current total power draw.
func (s *Sim) RowPowerW() float64 { return s.sc.rowPowerW }

// TankCount returns the number of immersion tanks.
func (s *Sim) TankCount() int { return len(s.tanks) }

// TankBathC returns tank i's current bath temperature.
func (s *Sim) TankBathC(i int) float64 { return s.tanks[i].BathC() }

// TankBudget returns tank i's condenser overclock budget.
func (s *Sim) TankBudget(i int) int { return s.sc.tankBudget[i] }

// TankOverclocked counts the servers currently overclocked in tank i.
// The count is maintained on every clock toggle, so the read is O(1) —
// at hyperscale the daemon's status endpoint would otherwise pay
// tanks × servers per request.
func (s *Sim) TankOverclocked(i int) int { return s.sc.ocPerTank[i] }

// Overclocked counts the servers currently overclocked fleet-wide,
// maintained incrementally alongside the per-tank counts — the O(1)
// read Snapshot publishes, where the export used to re-sum the tanks.
func (s *Sim) Overclocked() int { return s.sc.ocTotal }

// StepS returns the control-loop period in seconds.
func (s *Sim) StepS() float64 { return s.cfg.StepS }
