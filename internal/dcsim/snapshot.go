package dcsim

// FleetSnapshot is the immutable read-model export: everything the
// control-plane's read endpoints (filter / prioritize / status) need,
// copied out of the live simulation so a published snapshot can be
// read lock-free while the simulation steps on.
//
// The export is O(changed state), not O(fleet): per-server columns are
// chunked copy-on-write (internal/cow) chained off the previously
// exported snapshot, per-tank columns are shared wholesale between
// exports when no clock toggled / no step ran (generation-gated), and
// the scalar KPIs (Overclocked, the packing KPIs inside Flat) read
// incrementally maintained counters instead of re-scanning tanks or
// servers. A destination must be reused only against the Sim that
// filled it (generation fields are per-Sim); a fresh destination is
// materialized in full.
//
// The export is strictly observational. In particular it does NOT
// refresh the per-server power caches: rowPowerW is a running float
// sum whose value depends on the order deltas were folded in, and the
// step loop replays those deltas in fleet order to stay byte-stable
// across shard counts. Copying the current value — rather than
// "helpfully" refreshing stale entries — is what keeps a snapshot
// taken between steps bit-identical to what the locked read path
// reports at the same simulated time.

import (
	"immersionoc/internal/cluster"
	"immersionoc/internal/cow"
	"immersionoc/internal/reliability"
)

// FleetSnapshot carries the fleet's read-model state at one simulated
// instant. All columns are indexed the same way the simulation indexes
// them: per-server columns by dense fleet index, per-tank columns by
// tank index (tank of server i = i / ServersPerTank).
type FleetSnapshot struct {
	// SimTimeS is the simulated time the snapshot was taken at; StepS
	// the control period.
	SimTimeS, StepS float64
	// ServersPerTank maps a server index to its tank.
	ServersPerTank int

	// RowPowerW is the row draw exactly as the running sum stood.
	RowPowerW float64
	// Overclocked is the number of servers currently overclocked
	// (= Σ OCPerTank, maintained incrementally on clock toggles).
	Overclocked int

	// Cumulative KPIs from the run report.
	Rejected             int
	MaxBathC             float64
	TotalGrants          int
	CancelledOverclocks  int
	CapEvents            int
	OverclockServerHours float64
	MeanWearUsed         float64

	// Per-tank columns. TankBudget aliases the simulation's immutable
	// budget table; OCPerTank and TankBathC are copied only when a
	// clock toggle / control step invalidated them (the generation
	// fields below) and shared with the previous export otherwise.
	// Published snapshots never mutate them.
	OCPerTank  []int
	TankBudget []int
	TankBathC  []float64
	ocGen      uint64
	bathGen    uint64

	// Per-server wear columns: consumed lifetime-budget fraction and
	// the pro-rata fraction an on-schedule server would have consumed.
	// Chunked COW: shared between exports while no step runs.
	WearUsed    cow.Col[float64]
	WearProRata cow.Col[float64]

	// Flat is the cluster's columnar placement export (allocations,
	// headroom inputs, packing KPIs), chunked COW as well.
	Flat cluster.Flat
}

// Snapshot fills dst from the simulation's current state. When dst is
// the snapshot produced by this Sim's previous export, unchanged
// columns (and unchanged chunks of the per-server columns) are shared
// with it rather than copied, so steady-state republishing after a
// k-server mutation costs O(k + dirty chunks). The caller must hold
// whatever lock serializes simulation access; the snapshot itself
// touches no simulation state that a pure read would not (Report
// refreshes the derived MeanWearUsed KPI, as the status endpoint
// always has).
func (s *Sim) Snapshot(dst *FleetSnapshot) {
	rep := s.Report()
	dst.SimTimeS = s.t
	dst.StepS = s.cfg.StepS
	dst.ServersPerTank = s.cfg.ServersPerTank
	dst.RowPowerW = s.sc.rowPowerW
	dst.Overclocked = s.sc.ocTotal

	dst.Rejected = rep.Rejected
	dst.MaxBathC = rep.MaxBathC
	dst.TotalGrants = rep.TotalGrants
	dst.CancelledOverclocks = rep.CancelledOverclocks
	dst.CapEvents = rep.CapEvents
	dst.OverclockServerHours = rep.OverclockServerHours
	dst.MeanWearUsed = rep.MeanWearUsed

	nTanks := len(s.tanks)
	dst.TankBudget = s.sc.tankBudget // immutable after New: always shared
	if dst.ocGen != s.sc.ocGen || len(dst.OCPerTank) != nTanks {
		dst.OCPerTank = append([]int(nil), s.sc.ocPerTank...)
		dst.ocGen = s.sc.ocGen
	}
	if dst.bathGen != s.sc.bathGen || len(dst.TankBathC) != nTanks {
		col := make([]float64, nTanks)
		for i, tk := range s.tanks {
			col[i] = tk.BathC()
		}
		dst.TankBathC = col
		dst.bathGen = s.sc.bathGen
	}

	states := s.states
	cow.Fill(s.wearTrack, &dst.WearUsed, func(d []float64, base int) {
		for j := range d {
			d[j] = states[base+j].wear.Used()
		}
	})
	cow.Fill(s.wearTrack, &dst.WearProRata, func(d []float64, base int) {
		for j := range d {
			d[j] = states[base+j].hours / (reliability.ServiceLifeYears * 24 * 365)
		}
	})
	s.wearTrack.Advance()

	s.cl.ExportFlat(&dst.Flat)
}
