package dcsim

// FleetSnapshot is the immutable read-model export: everything the
// control-plane's read endpoints (filter / prioritize / status) need,
// copied out of the live simulation in one pass so a published
// snapshot can be read lock-free while the simulation steps on.
//
// The export is strictly observational. In particular it does NOT
// refresh the per-server power caches: rowPowerW is a running float
// sum whose value depends on the order deltas were folded in, and the
// step loop replays those deltas in fleet order to stay byte-stable
// across shard counts. Copying the current value — rather than
// "helpfully" refreshing stale entries — is what keeps a snapshot
// taken between steps bit-identical to what the locked read path
// reports at the same simulated time.

import (
	"immersionoc/internal/cluster"
	"immersionoc/internal/reliability"
)

// FleetSnapshot carries the fleet's read-model state at one simulated
// instant. All slices are indexed the same way the simulation indexes
// them: per-server columns by dense fleet index, per-tank columns by
// tank index (tank of server i = i / ServersPerTank).
type FleetSnapshot struct {
	// SimTimeS is the simulated time the snapshot was taken at; StepS
	// the control period.
	SimTimeS, StepS float64
	// ServersPerTank maps a server index to its tank.
	ServersPerTank int

	// RowPowerW is the row draw exactly as the running sum stood.
	RowPowerW float64
	// Overclocked is the number of servers currently overclocked
	// (Σ OCPerTank).
	Overclocked int

	// Cumulative KPIs from the run report.
	Rejected             int
	MaxBathC             float64
	TotalGrants          int
	CancelledOverclocks  int
	CapEvents            int
	OverclockServerHours float64
	MeanWearUsed         float64

	// Per-tank columns.
	OCPerTank  []int
	TankBudget []int
	TankBathC  []float64

	// Per-server wear columns: consumed lifetime-budget fraction and
	// the pro-rata fraction an on-schedule server would have consumed.
	WearUsed    []float64
	WearProRata []float64

	// Flat is the cluster's columnar placement export (allocations,
	// headroom inputs, packing KPIs).
	Flat cluster.Flat
}

// Snapshot fills dst from the simulation's current state, reusing
// dst's slices when they are large enough so steady-state republishing
// does not allocate once the destination has warmed up. The caller
// must hold whatever lock serializes simulation access; the snapshot
// itself touches no simulation state that a pure read would not
// (Report refreshes the derived MeanWearUsed KPI, as the status
// endpoint always has).
func (s *Sim) Snapshot(dst *FleetSnapshot) {
	rep := s.Report()
	dst.SimTimeS = s.t
	dst.StepS = s.cfg.StepS
	dst.ServersPerTank = s.cfg.ServersPerTank
	dst.RowPowerW = s.sc.rowPowerW

	dst.Rejected = rep.Rejected
	dst.MaxBathC = rep.MaxBathC
	dst.TotalGrants = rep.TotalGrants
	dst.CancelledOverclocks = rep.CancelledOverclocks
	dst.CapEvents = rep.CapEvents
	dst.OverclockServerHours = rep.OverclockServerHours
	dst.MeanWearUsed = rep.MeanWearUsed

	nTanks := len(s.tanks)
	dst.OCPerTank = growIntCol(dst.OCPerTank, nTanks)
	dst.TankBudget = growIntCol(dst.TankBudget, nTanks)
	dst.TankBathC = growFloatCol(dst.TankBathC, nTanks)
	oc := 0
	for i, tk := range s.tanks {
		dst.OCPerTank[i] = s.sc.ocPerTank[i]
		dst.TankBudget[i] = s.sc.tankBudget[i]
		dst.TankBathC[i] = tk.BathC()
		oc += s.sc.ocPerTank[i]
	}
	dst.Overclocked = oc

	n := len(s.states)
	dst.WearUsed = growFloatCol(dst.WearUsed, n)
	dst.WearProRata = growFloatCol(dst.WearProRata, n)
	for i, st := range s.states {
		dst.WearUsed[i] = st.wear.Used()
		dst.WearProRata[i] = st.hours / (reliability.ServiceLifeYears * 24 * 365)
	}

	s.cl.ExportFlat(&dst.Flat)
}

func growIntCol(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloatCol(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
