// Package dcsim is the full-stack integration simulation: a fleet of
// immersion tanks replays a VM arrival trace through the cluster
// placer, an overclocking governor policy decides per-server clocks to
// absorb oversubscription, tanks integrate the resulting heat through
// their condensers, a row feeder enforces the power-delivery budget by
// cancelling the lowest-value overclocks, and every overclocked hour
// accrues wear against the lifetime budget.
//
// It is the "everything wired together" demonstration a control-plane
// operator would run before turning the paper's techniques on in
// production: the same models that reproduce the paper's tables, now
// interacting.
//
// The simulation is exposed two ways. Run/RunCtx execute a closed
// trace-driven batch run (the paper's evaluation). Sim is the same
// machine opened up step by step: New builds the fleet, Step advances
// one control period, and Place/Remove/SetOverclock let an external
// control plane — the ocd daemon — drive arrivals and overclock grants
// between steps. Both paths share one policy implementation: the grant
// / tank-admission / feeder-capping decisions are delegated to a
// placement.Decider (the paper's governor by default), so API-served
// decisions and batch KPIs cannot fork.
//
// The control loop is engineered to cost O(changed state) per step
// rather than O(fleet size × placed VMs): per-server expected demand
// is maintained incrementally by the cluster, per-server power is
// cached and folded into a running row-power sum by deltas, hazard
// rates come from a fleet-shared quantized cache, and all per-step
// scratch lives in a reusable step context. See DESIGN.md ("Fleet
// control-plane performance") for the invariants.
package dcsim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"immersionoc/internal/cluster"
	"immersionoc/internal/cow"
	"immersionoc/internal/freq"
	"immersionoc/internal/placement"
	"immersionoc/internal/power"
	"immersionoc/internal/reliability"
	"immersionoc/internal/stats"
	"immersionoc/internal/telemetry"
	"immersionoc/internal/thermal"
	"immersionoc/internal/vm"
)

// Config parameterizes a fleet run.
type Config struct {
	// Servers is the fleet size; ServersPerTank groups them into
	// tanks (the last tank may be partial).
	Servers, ServersPerTank int
	// OversubRatio is the CPU oversubscription the placer may use.
	OversubRatio float64
	// FeederBudgetW is the row's power-delivery limit (0 = no limit).
	FeederBudgetW float64
	// Trace generates the VM workload; its DurationS is the run
	// horizon even when Events overrides the generated trace.
	Trace vm.TraceConfig
	// Events, when non-nil, replaces the trace generated from Trace —
	// a prebuilt arrival/departure stream (vm.Events order), or an
	// empty non-nil slice for an open-loop run driven entirely through
	// Sim.Place/Remove (the daemon path).
	Events []vm.Event
	// StepS is the control-loop period in trace seconds.
	StepS float64
	// OverclockThreshold is the expected-demand/pcores ratio above
	// which a server requests an overclock. Expected demand is the
	// long-run mean; bursts run ~2× above it, so a server whose mean
	// demand exceeds half its cores will contend during bursts —
	// that is the regime overclocking absorbs (Figure 12).
	OverclockThreshold float64
	// Decider, when non-nil, replaces the built-in governor policy.
	// The default is a placement.Governor configured from this Config
	// (Equation 1 threshold, per-tank condenser budgets, feeder cap).
	Decider placement.Decider
	// Shards partitions the fleet by tank into that many contiguous
	// slices stepped concurrently under the process-wide sweep budget
	// (clamped to [1, tanks]; ≤ 1 keeps the serial inline path). KPIs
	// are byte-stable at every shard count — see internal/dcsim/shard.go
	// for the ordered delta-replay barrier that guarantees it.
	Shards int
	// SnapshotChunkShift re-chunks the snapshot's per-server COW
	// columns at 1<<shift servers per chunk (0 = the cow package
	// default of 1024). Test hook: small chunks exercise the
	// copy-on-write machinery on small fleets.
	SnapshotChunkShift uint
	// Tel, when non-nil, receives the run's telemetry: the control
	// step counter, row power / bath temperature gauges with running
	// peaks, and counters for rejections, cap events and cancelled
	// overclocks.
	Tel *telemetry.Scope
}

// DefaultConfig is a 3-tank row under moderate load.
func DefaultConfig() Config {
	trace := vm.DefaultTrace
	trace.ArrivalRatePerS = 0.01
	trace.DurationS = 2 * 24 * 3600
	trace.MeanLifetimeS = 10 * 3600
	return Config{
		Servers:            36,
		ServersPerTank:     12,
		OversubRatio:       0.25,
		FeederBudgetW:      12500,
		Trace:              trace,
		StepS:              300,
		OverclockThreshold: 0.5,
	}
}

// BladeServer is the per-blade power model (2 × 24-core sockets).
var BladeServer = power.ServerModel{
	PlatformW:    60,
	UncoreRefW:   40,
	MemRefW:      44,
	CorePerGHzV2: 1.75,
	CoreActiveW:  0.9,
	CoreParkedW:  0.25,
	TotalCores:   48,
	Curve:        power.XeonW3175XCurve,
}

// Report carries the run's KPIs.
type Report struct {
	// PeakDensity is the highest vcores/pcore reached.
	PeakDensity float64
	// Rejected counts denied VM arrivals.
	Rejected int
	// MaxBathC is the hottest any tank's bath got.
	MaxBathC float64
	// PeakOverclocked is the most servers overclocked at once.
	PeakOverclocked int
	// TotalGrants sums the per-step surviving overclock grants — the
	// cumulative grant count the control-plane equivalence checks pin.
	TotalGrants int
	// OverclockServerHours integrates overclocked servers over time.
	OverclockServerHours float64
	// CapEvents counts steps where the feeder budget forced
	// overclocks to be cancelled.
	CapEvents int
	// CancelledOverclocks counts overclocks revoked by the feeder.
	CancelledOverclocks int
	// MeanWearUsed is the fleet-average fraction of the pro-rata
	// wear budget consumed (1.0 = wearing exactly at the 5-year
	// schedule).
	MeanWearUsed float64
	// PowerW, BathC, Overclocked and Density are time series.
	PowerW, BathC, Overclocked, Density *stats.Series
	// InterferenceAtRisk counts step observations where an
	// oversubscribed server's demand exceeded even overclocked
	// capacity.
	InterferenceAtRisk int
}

// Per-server heat-model constants: idle floor and the demand-scaled
// span up to the nominal/overclocked envelope.
const (
	idleHeatW      = 200.0
	nominalHeatW   = 658.0
	overclockHeatW = 858.0
	nominalTjRiseC = 16.0
	ocTjRiseC      = 24.0
)

type serverState struct {
	srv   *cluster.Server
	tank  int
	oc    bool
	wear  *reliability.WearMeter
	hours float64

	// Loop invariants, hoisted so the hot path reads fields instead
	// of re-deriving them every step.
	pcores float64 // float64(srv.Spec.PCores)
	ocCap  float64 // pcores × OCSpeedup (interference-at-risk bound)

	// Power cache. powerNomW/powerOCW hold the blade's power at the
	// nominal (B2) and overclocked (OC1) configurations for the
	// demand/vcores pair they were computed at; they are refreshed
	// only when the cluster's incremental state for this server
	// changes, and the row-power running sum is updated by the delta.
	lastDemand float64
	lastVCores int
	powerNomW  float64
	powerOCW   float64
}

// current returns the cached power at the server's current clock.
func (st *serverState) current() float64 {
	if st.oc {
		return st.powerOCW
	}
	return st.powerNomW
}

// stepContext holds every piece of per-step scratch the control loop
// needs, allocated once per run and reused across steps, plus the
// incrementally maintained row-power sum. It is the placement.Actuator
// the decider toggles grants through: SetOverclock folds the clock
// change into the running sum, so the decider's feeder loop reads
// RowPowerW instead of recomputing the fleet.
type stepContext struct {
	states []*serverState
	heat   []float64 // per-tank heat input, reset each step
	// tankBudget holds the per-tank condenser budgets (loop-invariant).
	tankBudget []int
	// ocPerTank counts the servers currently overclocked in each tank,
	// maintained on every clock toggle so the control plane's per-tank
	// status reads are O(1) instead of a fleet scan. During phase 1
	// each element is written only by the shard owning its tank.
	ocPerTank []int
	// ocTotal is Σ ocPerTank, maintained alongside it so the fleet-wide
	// Overclocked KPI is an O(1) read instead of an O(tanks) recount.
	// Phase 1's clock resets accumulate per-shard deltas (shard.ocDelta)
	// that the serial barrier folds in.
	ocTotal int
	// ocGen / bathGen are snapshot-invalidation generations: ocGen
	// advances whenever any clock may have toggled, bathGen whenever a
	// step integrated the tanks. Snapshot shares its per-tank columns
	// with the previous export while the generation is unchanged.
	ocGen, bathGen uint64
	// rowPowerW is Σ current per-server power, updated by deltas when
	// a server's demand/allocation changes or its clock toggles.
	rowPowerW float64
}

var _ placement.Actuator = (*stepContext)(nil)

// refreshPower re-derives the cached nominal/overclocked power for a
// server whose cluster state changed and folds the delta into the
// row-power running sum.
func (sc *stepContext) refreshPower(st *serverState) {
	d, vc := st.srv.ExpectedDemand(), st.srv.VCoresUsed()
	if d == st.lastDemand && vc == st.lastVCores {
		return
	}
	old := st.current()
	st.lastDemand, st.lastVCores = d, vc
	st.powerNomW = BladeServer.Power(freq.B2, d, vc)
	st.powerOCW = BladeServer.Power(freq.OC1, d, vc)
	sc.rowPowerW += st.current() - old
}

// setOC toggles a server's clock and folds the power delta into the
// row sum.
func (sc *stepContext) setOC(st *serverState, oc bool) {
	if st.oc == oc {
		return
	}
	st.oc = oc
	sc.ocGen++
	if oc {
		sc.ocPerTank[st.tank]++
		sc.ocTotal++
		sc.rowPowerW += st.powerOCW - st.powerNomW
	} else {
		sc.ocPerTank[st.tank]--
		sc.ocTotal--
		sc.rowPowerW += st.powerNomW - st.powerOCW
	}
}

// SetOverclock implements placement.Actuator.
func (sc *stepContext) SetOverclock(index int, oc bool) {
	sc.setOC(sc.states[index], oc)
}

// RowPowerW implements placement.Actuator.
func (sc *stepContext) RowPowerW() float64 { return sc.rowPowerW }

// simMetrics are the telemetry handles, hoisted out of the step loop
// (nil no-ops when the config carries no scope).
type simMetrics struct {
	steps, rejected, capEvents, cancelledOC      *telemetry.Counter
	power, peakPower, bath, peakBath, tj, peakTj *telemetry.Gauge
	overclocked                                  *telemetry.Gauge
}

// Sim is the fleet simulation opened up for stepwise control. New
// builds the fleet at time zero; Step advances one control period
// (trace replay where the config carries events, overclock decisions,
// thermal integration, wear accrual, KPI capture). Between steps an
// external control plane may Place and Remove VMs and toggle overclock
// grants — the next Step folds those changes in through the same
// incremental accounting the batch path uses. Sim is not safe for
// concurrent use; the daemon serializes access.
type Sim struct {
	cfg    Config
	cl     *cluster.Cluster
	tanks  []*thermal.Tank
	states []*serverState
	sc     *stepContext
	shards []*shard
	dec    placement.Decider
	rep    *Report
	events []vm.Event
	ei     int
	t      float64
	m      simMetrics

	// wearTrack drives the snapshot's wear-column COW: steps mark the
	// whole fleet (every server accrues wear each step), everything
	// else leaves the columns shareable.
	wearTrack *cow.Tracker
	// wearStale gates the Report() MeanWearUsed recompute: wear moves
	// only in step phase 2, so between steps the cached mean is exact
	// and Report is O(1).
	wearStale bool
}

// New validates cfg and builds the fleet at simulated time zero.
func New(cfg Config) (*Sim, error) {
	if cfg.Servers <= 0 || cfg.ServersPerTank <= 0 {
		return nil, errors.New("dcsim: need positive fleet and tank sizes")
	}
	if cfg.StepS <= 0 {
		return nil, errors.New("dcsim: need positive step")
	}
	if cfg.OverclockThreshold <= 0 {
		cfg.OverclockThreshold = 0.5
	}

	cl := cluster.New(cluster.TwoSocketBlade, cluster.Policy{CPUOversubRatio: cfg.OversubRatio}, cfg.Servers)
	if cfg.SnapshotChunkShift != 0 {
		cl.SetExportChunkShift(cfg.SnapshotChunkShift)
	}
	nTanks := (cfg.Servers + cfg.ServersPerTank - 1) / cfg.ServersPerTank
	tanks := make([]*thermal.Tank, nTanks)
	for i := range tanks {
		tanks[i] = thermal.LargeTank()
		if err := tanks[i].Validate(); err != nil {
			return nil, err
		}
	}

	states := make([]*serverState, cfg.Servers)
	for i, s := range cl.Servers() {
		states[i] = &serverState{
			srv:    s,
			tank:   i / cfg.ServersPerTank,
			wear:   reliability.NewWearMeter(reliability.Composite5nm, reliability.ServiceLifeYears),
			pcores: float64(s.Spec.PCores),
			ocCap:  float64(s.Spec.PCores) * s.Spec.OCSpeedup,
		}
	}

	// Shards partition the fleet by tank; each gets its own quantized
	// hazard cache, because the cache memoizes through a plain map (not
	// safe for concurrent use) while its values depend only on the
	// queried condition — within a shard all servers of a tank accrue
	// wear at one of two conditions (nominal or overclocked at the
	// tank's bath), so the Arrhenius and Coffin–Manson evaluations
	// still amortize across the shard's row slice.
	nShards := cfg.Shards
	if nShards < 1 {
		nShards = 1
	}
	if nShards > nTanks {
		nShards = nTanks
	}
	shards := newShards(nShards, nTanks, cfg.ServersPerTank, cfg.Servers)
	for _, sh := range shards {
		hazards := reliability.NewHazardCache(reliability.Composite5nm)
		for _, st := range states[sh.s0:sh.s1] {
			st.wear.SetHazardCache(hazards)
		}
	}

	events := cfg.Events
	if events == nil {
		events = vm.Events(vm.Generate(cfg.Trace))
	}
	nSteps := int(math.Ceil(cfg.Trace.DurationS/cfg.StepS)) + 1
	rep := &Report{
		PowerW:      stats.NewSeriesCap("row-power", nSteps),
		BathC:       stats.NewSeriesCap("max-bath", nSteps),
		Overclocked: stats.NewSeriesCap("overclocked", nSteps),
		Density:     stats.NewSeriesCap("density", nSteps),
	}

	// Step context: per-step scratch allocated once, the per-tank
	// condenser budgets computed once (they depend only on tank
	// geometry, not tank state), and the row-power running sum seeded
	// from the idle fleet.
	sc := &stepContext{
		states:     states,
		heat:       make([]float64, nTanks),
		tankBudget: make([]int, nTanks),
		ocPerTank:  make([]int, nTanks),
		ocGen:      1,
		bathGen:    1,
	}
	for i, tk := range tanks {
		n := cfg.ServersPerTank
		if rem := cfg.Servers - i*cfg.ServersPerTank; rem < n {
			n = rem
		}
		sc.tankBudget[i] = tk.OverclockBudget(n, nominalHeatW, overclockHeatW)
	}
	for _, st := range states {
		st.powerNomW = BladeServer.Power(freq.B2, 0, 0)
		st.powerOCW = BladeServer.Power(freq.OC1, 0, 0)
		sc.rowPowerW += st.powerNomW
	}

	dec := cfg.Decider
	if dec == nil {
		dec = &placement.Governor{
			Thresh:        cfg.OverclockThreshold,
			TankBudget:    sc.tankBudget,
			FeederBudgetW: cfg.FeederBudgetW,
		}
	}

	return &Sim{
		cfg:       cfg,
		cl:        cl,
		tanks:     tanks,
		states:    states,
		sc:        sc,
		shards:    shards,
		dec:       dec,
		rep:       rep,
		events:    events,
		wearTrack: cow.NewTracker(cfg.Servers, cfg.SnapshotChunkShift),
		wearStale: true,
		m: simMetrics{
			steps:       cfg.Tel.Counter("steps"),
			rejected:    cfg.Tel.Counter("rejected"),
			capEvents:   cfg.Tel.Counter("cap_events"),
			cancelledOC: cfg.Tel.Counter("cancelled_overclocks"),
			power:       cfg.Tel.Gauge("row_power_w"),
			peakPower:   cfg.Tel.Gauge("peak_row_power_w"),
			bath:        cfg.Tel.Gauge("bath_c"),
			peakBath:    cfg.Tel.Gauge("peak_bath_c"),
			tj:          cfg.Tel.Gauge("tj_c"),
			peakTj:      cfg.Tel.Gauge("peak_tj_c"),
			overclocked: cfg.Tel.Gauge("overclocked"),
		},
	}, nil
}

// Now returns the current simulated time in seconds.
func (s *Sim) Now() float64 { return s.t }

// Done reports whether the run has reached the configured horizon.
// The daemon may keep stepping past it; the batch path stops here.
func (s *Sim) Done() bool { return s.t >= s.cfg.Trace.DurationS }

// Cluster exposes the fleet's placement state.
func (s *Sim) Cluster() *cluster.Cluster { return s.cl }

// Decider returns the policy deciding overclock grants.
func (s *Sim) Decider() placement.Decider { return s.dec }

// Place routes a VM arrival through the cluster placer with the same
// rejection accounting the trace-replay path uses.
func (s *Sim) Place(v *vm.VM) (*cluster.Server, error) {
	srv, err := s.cl.Place(v)
	if err != nil {
		s.rep.Rejected++
		s.m.rejected.Inc()
	}
	return srv, err
}

// Remove releases a VM placed earlier. Departures of VMs that were
// rejected at arrival are ignored, matching trace replay.
func (s *Sim) Remove(v *vm.VM) { _ = s.cl.Remove(v) }

// Step executes one control step at the current simulated time, then
// advances the clock by the configured period. It is StepCtx without
// cancellation; the only failure left is a panicking shard cell, which
// is re-raised rather than swallowed.
func (s *Sim) Step() {
	if err := s.StepCtx(context.Background()); err != nil {
		panic(fmt.Sprintf("dcsim: step failed: %v", err))
	}
}

// StepCtx executes one control step under ctx. With Shards > 1 the
// parallel phases run through sweep.Map, which observes ctx between
// cells; a non-nil error means the step was abandoned mid-flight and
// the simulation must not be stepped further (batch runs return the
// error, the daemon only ever steps with a background context).
func (s *Sim) StepCtx(ctx context.Context) error {
	cfg := &s.cfg
	sc := s.sc
	rep := s.rep
	t := s.t
	s.m.steps.Inc()

	// Replay trace events due this step. The cluster maintains
	// per-server expected demand incrementally, so the step's cost
	// below tracks the number of servers these events touched.
	for s.ei < len(s.events) && s.events[s.ei].TimeS <= t {
		ev := s.events[s.ei]
		s.ei++
		if ev.Arrival {
			_, _ = s.Place(ev.VM)
		} else {
			s.Remove(ev.VM) // not placed → ignore
		}
	}

	// Phase 1 (parallel): per shard, refresh the power caches of
	// servers whose allocations changed and return every clock to
	// nominal, recording the row-power deltas in server order.
	if err := s.runShards(ctx, func(sh *shard) { sh.phase1(sc) }); err != nil {
		return err
	}

	// Barrier (serial): replay the recorded deltas shard by shard —
	// fleet order, the exact addition sequence the serial loop ran —
	// then drive the one Decider pass over the aggregated fleet
	// (Equation 1 threshold, tank admission, feeder capping — see
	// internal/placement). Grants and cancellations actuate through
	// the step context, which scatters the clock changes back onto
	// the shard-owned server states.
	for _, sh := range s.shards {
		for _, a := range sh.addends {
			sc.rowPowerW += a
		}
		sc.ocTotal += sh.ocDelta
	}
	s.dec.Begin(len(s.tanks))
	for i, st := range s.states {
		d := st.lastDemand
		s.dec.Offer(placement.Candidate{
			Index:       i,
			ID:          st.srv.ID,
			Tank:        st.tank,
			DemandCores: d,
			PCores:      st.pcores,
		})
		if d > st.ocCap {
			rep.InterferenceAtRisk++
		}
	}
	out := s.dec.Decide(sc)
	granted := out.Granted
	if out.Capped {
		rep.CapEvents++
		s.m.capEvents.Inc()
	}
	rep.CancelledOverclocks += out.Cancelled
	s.m.cancelledOC.Add(uint64(out.Cancelled))

	// Phase 2 (parallel): per shard, tank heat accumulation (idle
	// servers scale down — power follows demand), condenser
	// integration, and wear accrual at the stepped bath.
	if err := s.runShards(ctx, func(sh *shard) { sh.phase2(s) }); err != nil {
		return err
	}
	maxBath := 0.0
	for _, sh := range s.shards {
		if sh.maxBath > maxBath {
			maxBath = sh.maxBath
		}
	}
	if maxBath > rep.MaxBathC {
		rep.MaxBathC = maxBath
	}
	hours := cfg.StepS / 3600

	// Snapshot invalidation: phase 1 may have reset clocks (ocGen also
	// advances on every setOC), phase 2 integrated every tank and
	// accrued wear on every server, and the cached mean wear is stale.
	sc.ocGen++
	sc.bathGen++
	s.wearTrack.MarkAll()
	s.wearStale = true

	// KPIs. Density reads the cluster's incremental counters — the
	// same integer division Stats() runs, so the value is bit-identical
	// without the O(servers) scan.
	density := s.cl.Density()
	if density > rep.PeakDensity {
		rep.PeakDensity = density
	}
	if granted > rep.PeakOverclocked {
		rep.PeakOverclocked = granted
	}
	rep.TotalGrants += granted
	rep.OverclockServerHours += float64(granted) * hours
	p := sc.rowPowerW
	rep.PowerW.Add(t, p)
	rep.BathC.Add(t, maxBath)
	rep.Overclocked.Add(t, float64(granted))
	rep.Density.Add(t, density)
	s.m.power.Set(p)
	s.m.peakPower.SetMax(p)
	s.m.bath.Set(maxBath)
	s.m.peakBath.SetMax(maxBath)
	// Junction temperature rides the bath: +24 °C for overclocked
	// silicon, +16 °C nominal (the wear model's conditions).
	tj := maxBath + nominalTjRiseC
	if granted > 0 {
		tj = maxBath + ocTjRiseC
	}
	s.m.tj.Set(tj)
	s.m.peakTj.SetMax(tj)
	s.m.overclocked.Set(float64(granted))

	s.t = t + cfg.StepS
	return nil
}

// Report returns the run's KPIs with the fleet-average wear rate
// refreshed to the current step. Wear moves only inside Step, so the
// O(servers) mean recompute runs at most once per step — between steps
// (the mutation-heavy daemon regime) Report is O(1) off the cache.
func (s *Sim) Report() *Report {
	if s.wearStale {
		var wearSum float64
		for _, st := range s.states {
			if st.hours > 0 {
				proRata := st.hours / (reliability.ServiceLifeYears * 24 * 365)
				if proRata > 0 {
					wearSum += st.wear.Used() / proRata
				}
			}
		}
		s.rep.MeanWearUsed = wearSum / float64(len(s.states))
		s.wearStale = false
	}
	return s.rep
}

// Run executes the fleet simulation.
func Run(cfg Config) (*Report, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx executes the fleet simulation under ctx, checking for
// cancellation at every control-step boundary: a cancelled run
// returns the context error within one StepS of simulated progress
// instead of completing the trace.
func RunCtx(ctx context.Context, cfg Config) (*Report, error) {
	sim, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for !sim.Done() {
		// Cancellation checkpoint: one step of the control loop is the
		// simulation's natural boundary.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := sim.StepCtx(ctx); err != nil {
			return nil, err
		}
	}
	return sim.Report(), nil
}

// String summarizes a report.
func (r *Report) String() string {
	return fmt.Sprintf("peak density %.3f, rejected %d, peak OC %d, OC server-hours %.1f, max bath %.1f°C, cap events %d (%d cancelled), wear rate %.2f× schedule",
		r.PeakDensity, r.Rejected, r.PeakOverclocked, r.OverclockServerHours, r.MaxBathC, r.CapEvents, r.CancelledOverclocks, r.MeanWearUsed)
}
