// Package dcsim is the full-stack integration simulation: a fleet of
// immersion tanks replays a VM arrival trace through the cluster
// placer, an overclocking governor policy decides per-server clocks to
// absorb oversubscription, tanks integrate the resulting heat through
// their condensers, a row feeder enforces the power-delivery budget by
// cancelling the lowest-value overclocks, and every overclocked hour
// accrues wear against the lifetime budget.
//
// It is the "everything wired together" demonstration a control-plane
// operator would run before turning the paper's techniques on in
// production: the same models that reproduce the paper's tables, now
// interacting.
//
// The control loop is engineered to cost O(changed state) per step
// rather than O(fleet size × placed VMs): per-server expected demand
// is maintained incrementally by the cluster, per-server power is
// cached and folded into a running row-power sum by deltas, hazard
// rates come from a fleet-shared quantized cache, and all per-step
// scratch lives in a reusable step context. See DESIGN.md ("Fleet
// control-plane performance") for the invariants.
package dcsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"immersionoc/internal/cluster"
	"immersionoc/internal/freq"
	"immersionoc/internal/power"
	"immersionoc/internal/reliability"
	"immersionoc/internal/stats"
	"immersionoc/internal/telemetry"
	"immersionoc/internal/thermal"
	"immersionoc/internal/vm"
)

// Config parameterizes a fleet run.
type Config struct {
	// Servers is the fleet size; ServersPerTank groups them into
	// tanks (the last tank may be partial).
	Servers, ServersPerTank int
	// OversubRatio is the CPU oversubscription the placer may use.
	OversubRatio float64
	// FeederBudgetW is the row's power-delivery limit (0 = no limit).
	FeederBudgetW float64
	// Trace generates the VM workload.
	Trace vm.TraceConfig
	// StepS is the control-loop period in trace seconds.
	StepS float64
	// OverclockThreshold is the expected-demand/pcores ratio above
	// which a server requests an overclock. Expected demand is the
	// long-run mean; bursts run ~2× above it, so a server whose mean
	// demand exceeds half its cores will contend during bursts —
	// that is the regime overclocking absorbs (Figure 12).
	OverclockThreshold float64
	// Tel, when non-nil, receives the run's telemetry: the control
	// step counter, row power / bath temperature gauges with running
	// peaks, and counters for rejections, cap events and cancelled
	// overclocks.
	Tel *telemetry.Scope
}

// DefaultConfig is a 3-tank row under moderate load.
func DefaultConfig() Config {
	trace := vm.DefaultTrace
	trace.ArrivalRatePerS = 0.01
	trace.DurationS = 2 * 24 * 3600
	trace.MeanLifetimeS = 10 * 3600
	return Config{
		Servers:            36,
		ServersPerTank:     12,
		OversubRatio:       0.25,
		FeederBudgetW:      12500,
		Trace:              trace,
		StepS:              300,
		OverclockThreshold: 0.5,
	}
}

// BladeServer is the per-blade power model (2 × 24-core sockets).
var BladeServer = power.ServerModel{
	PlatformW:    60,
	UncoreRefW:   40,
	MemRefW:      44,
	CorePerGHzV2: 1.75,
	CoreActiveW:  0.9,
	CoreParkedW:  0.25,
	TotalCores:   48,
	Curve:        power.XeonW3175XCurve,
}

// Report carries the run's KPIs.
type Report struct {
	// PeakDensity is the highest vcores/pcore reached.
	PeakDensity float64
	// Rejected counts denied VM arrivals.
	Rejected int
	// MaxBathC is the hottest any tank's bath got.
	MaxBathC float64
	// PeakOverclocked is the most servers overclocked at once.
	PeakOverclocked int
	// OverclockServerHours integrates overclocked servers over time.
	OverclockServerHours float64
	// CapEvents counts steps where the feeder budget forced
	// overclocks to be cancelled.
	CapEvents int
	// CancelledOverclocks counts overclocks revoked by the feeder.
	CancelledOverclocks int
	// MeanWearUsed is the fleet-average fraction of the pro-rata
	// wear budget consumed (1.0 = wearing exactly at the 5-year
	// schedule).
	MeanWearUsed float64
	// PowerW, BathC, Overclocked and Density are time series.
	PowerW, BathC, Overclocked, Density *stats.Series
	// InterferenceAtRisk counts step observations where an
	// oversubscribed server's demand exceeded even overclocked
	// capacity.
	InterferenceAtRisk int
}

// Per-server heat-model constants: idle floor and the demand-scaled
// span up to the nominal/overclocked envelope.
const (
	idleHeatW      = 200.0
	nominalHeatW   = 658.0
	overclockHeatW = 858.0
	nominalTjRiseC = 16.0
	ocTjRiseC      = 24.0
)

type serverState struct {
	srv   *cluster.Server
	tank  int
	oc    bool
	wear  *reliability.WearMeter
	hours float64

	// Loop invariants, hoisted so the hot path reads fields instead
	// of re-deriving them every step.
	pcores    float64 // float64(srv.Spec.PCores)
	ocCap     float64 // pcores × OCSpeedup (interference-at-risk bound)
	thrDemand float64 // OverclockThreshold × pcores (overclock request bound)

	// Power cache. powerNomW/powerOCW hold the blade's power at the
	// nominal (B2) and overclocked (OC1) configurations for the
	// demand/vcores pair they were computed at; they are refreshed
	// only when the cluster's incremental state for this server
	// changes, and the row-power running sum is updated by the delta.
	lastDemand float64
	lastVCores int
	powerNomW  float64
	powerOCW   float64
}

// current returns the cached power at the server's current clock.
func (st *serverState) current() float64 {
	if st.oc {
		return st.powerOCW
	}
	return st.powerNomW
}

// ocReq is one server's overclock request for the step, keyed by how
// pressured it is (expected demand per pcore).
type ocReq struct {
	st   *serverState
	need float64
}

// ocSorter orders requests most-pressured first (ties by server ID).
// It is a pointer receiver so the one interface conversion in the run
// happens once, not per step.
type ocSorter struct{ reqs []ocReq }

func (s *ocSorter) Len() int      { return len(s.reqs) }
func (s *ocSorter) Swap(i, j int) { s.reqs[i], s.reqs[j] = s.reqs[j], s.reqs[i] }
func (s *ocSorter) Less(i, j int) bool {
	if s.reqs[i].need != s.reqs[j].need {
		return s.reqs[i].need > s.reqs[j].need
	}
	return s.reqs[i].st.srv.ID < s.reqs[j].st.srv.ID
}

// stepContext holds every piece of per-step scratch the control loop
// needs, allocated once per run and reused across steps, plus the
// incrementally maintained row-power sum.
type stepContext struct {
	sorter     ocSorter  // overclock requests + reusable sort adapter
	heat       []float64 // per-tank heat input, reset each step
	ocPerTank  []int     // per-tank granted overclocks, reset each step
	tankBudget []int     // per-tank condenser budgets (loop-invariant)
	// rowPowerW is Σ current per-server power, updated by deltas when
	// a server's demand/allocation changes or its clock toggles.
	rowPowerW float64
}

// refreshPower re-derives the cached nominal/overclocked power for a
// server whose cluster state changed and folds the delta into the
// row-power running sum.
func (sc *stepContext) refreshPower(st *serverState) {
	d, vc := st.srv.ExpectedDemand(), st.srv.VCoresUsed()
	if d == st.lastDemand && vc == st.lastVCores {
		return
	}
	old := st.current()
	st.lastDemand, st.lastVCores = d, vc
	st.powerNomW = BladeServer.Power(freq.B2, d, vc)
	st.powerOCW = BladeServer.Power(freq.OC1, d, vc)
	sc.rowPowerW += st.current() - old
}

// setOC toggles a server's clock and folds the power delta into the
// row sum.
func (sc *stepContext) setOC(st *serverState, oc bool) {
	if st.oc == oc {
		return
	}
	st.oc = oc
	if oc {
		sc.rowPowerW += st.powerOCW - st.powerNomW
	} else {
		sc.rowPowerW += st.powerNomW - st.powerOCW
	}
}

// Run executes the fleet simulation.
func Run(cfg Config) (*Report, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx executes the fleet simulation under ctx, checking for
// cancellation at every control-step boundary: a cancelled run
// returns the context error within one StepS of simulated progress
// instead of completing the trace.
func RunCtx(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Servers <= 0 || cfg.ServersPerTank <= 0 {
		return nil, errors.New("dcsim: need positive fleet and tank sizes")
	}
	if cfg.StepS <= 0 {
		return nil, errors.New("dcsim: need positive step")
	}
	if cfg.OverclockThreshold <= 0 {
		cfg.OverclockThreshold = 0.5
	}

	cl := cluster.New(cluster.TwoSocketBlade, cluster.Policy{CPUOversubRatio: cfg.OversubRatio}, cfg.Servers)
	nTanks := (cfg.Servers + cfg.ServersPerTank - 1) / cfg.ServersPerTank
	tanks := make([]*thermal.Tank, nTanks)
	for i := range tanks {
		tanks[i] = thermal.LargeTank()
		if err := tanks[i].Validate(); err != nil {
			return nil, err
		}
	}

	// The fleet shares one quantized hazard cache: within a step all
	// servers of a tank accrue wear at one of two conditions (nominal
	// or overclocked at the tank's bath), so the Arrhenius and
	// Coffin–Manson evaluations amortize across the row.
	hazards := reliability.NewHazardCache(reliability.Composite5nm)
	states := make([]*serverState, cfg.Servers)
	for i, s := range cl.Servers() {
		w := reliability.NewWearMeter(reliability.Composite5nm, reliability.ServiceLifeYears)
		w.SetHazardCache(hazards)
		states[i] = &serverState{
			srv:       s,
			tank:      i / cfg.ServersPerTank,
			wear:      w,
			pcores:    float64(s.Spec.PCores),
			ocCap:     float64(s.Spec.PCores) * s.Spec.OCSpeedup,
			thrDemand: cfg.OverclockThreshold * float64(s.Spec.PCores),
		}
	}

	events := vm.Events(vm.Generate(cfg.Trace))
	nSteps := int(math.Ceil(cfg.Trace.DurationS/cfg.StepS)) + 1
	rep := &Report{
		PowerW:      stats.NewSeriesCap("row-power", nSteps),
		BathC:       stats.NewSeriesCap("max-bath", nSteps),
		Overclocked: stats.NewSeriesCap("overclocked", nSteps),
		Density:     stats.NewSeriesCap("density", nSteps),
	}

	// Telemetry handles (nil no-ops when cfg.Tel is nil).
	mSteps := cfg.Tel.Counter("steps")
	mRejected := cfg.Tel.Counter("rejected")
	mCapEvents := cfg.Tel.Counter("cap_events")
	mCancelledOC := cfg.Tel.Counter("cancelled_overclocks")
	gPower := cfg.Tel.Gauge("row_power_w")
	gPeakPower := cfg.Tel.Gauge("peak_row_power_w")
	gBath := cfg.Tel.Gauge("bath_c")
	gPeakBath := cfg.Tel.Gauge("peak_bath_c")
	gTj := cfg.Tel.Gauge("tj_c")
	gPeakTj := cfg.Tel.Gauge("peak_tj_c")
	gOverclocked := cfg.Tel.Gauge("overclocked")

	// Step context: per-step scratch allocated once, the per-tank
	// condenser budgets computed once (they depend only on tank
	// geometry, not tank state), and the row-power running sum seeded
	// from the idle fleet.
	sc := &stepContext{
		heat:       make([]float64, nTanks),
		ocPerTank:  make([]int, nTanks),
		tankBudget: make([]int, nTanks),
	}
	for i, tk := range tanks {
		n := cfg.ServersPerTank
		if rem := cfg.Servers - i*cfg.ServersPerTank; rem < n {
			n = rem
		}
		sc.tankBudget[i] = tk.OverclockBudget(n, nominalHeatW, overclockHeatW)
	}
	for _, st := range states {
		st.powerNomW = BladeServer.Power(freq.B2, 0, 0)
		st.powerOCW = BladeServer.Power(freq.OC1, 0, 0)
		sc.rowPowerW += st.powerNomW
	}

	ei := 0
	for t := 0.0; t < cfg.Trace.DurationS; t += cfg.StepS {
		// Cancellation checkpoint: one step of the control loop is the
		// simulation's natural boundary.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mSteps.Inc()
		// Replay trace events due this step. The cluster maintains
		// per-server expected demand incrementally, so the step's cost
		// below tracks the number of servers these events touched.
		for ei < len(events) && events[ei].TimeS <= t {
			ev := events[ei]
			ei++
			if ev.Arrival {
				if _, err := cl.Place(ev.VM); err != nil {
					rep.Rejected++
					mRejected.Inc()
				}
			} else {
				_ = cl.Remove(ev.VM) // not placed → ignore
			}
		}

		// Overclock decisions: servers whose expected demand exceeds
		// the threshold request an overclock; others run nominal.
		// Power caches refresh only for servers whose allocations
		// changed since the last step.
		sc.sorter.reqs = sc.sorter.reqs[:0]
		for _, st := range states {
			sc.refreshPower(st)
			sc.setOC(st, false)
			d := st.lastDemand
			if d > st.thrDemand {
				sc.sorter.reqs = append(sc.sorter.reqs, ocReq{st: st, need: d / st.pcores})
			}
			if d > st.ocCap {
				rep.InterferenceAtRisk++
			}
		}
		// Most-pressured servers get their overclock first.
		sort.Sort(&sc.sorter)

		// Tank admission: each tank honours its condenser budget.
		for i := range sc.ocPerTank {
			sc.ocPerTank[i] = 0
		}
		granted := 0
		for _, r := range sc.sorter.reqs {
			if sc.ocPerTank[r.st.tank] < sc.tankBudget[r.st.tank] {
				sc.setOC(r.st, true)
				sc.ocPerTank[r.st.tank]++
				granted++
			}
		}

		// Feeder budget: cancel the least-pressured overclocks until
		// the row fits (priority capping at the granularity of whole
		// overclock grants). The running row-power sum makes this loop
		// O(cancellations) instead of a full fleet recompute per
		// iteration.
		if cfg.FeederBudgetW > 0 && sc.rowPowerW > cfg.FeederBudgetW {
			rep.CapEvents++
			mCapEvents.Inc()
			reqs := sc.sorter.reqs
			for i := len(reqs) - 1; i >= 0 && sc.rowPowerW > cfg.FeederBudgetW; i-- {
				if reqs[i].st.oc {
					sc.setOC(reqs[i].st, false)
					granted--
					rep.CancelledOverclocks++
					mCancelledOC.Inc()
				}
			}
		}

		// Thermals: integrate each tank's heat. Idle servers scale
		// down — power follows demand.
		for i := range sc.heat {
			sc.heat[i] = 0
		}
		for _, st := range states {
			w := nominalHeatW
			if st.oc {
				w = overclockHeatW
			}
			util := math.Min(1, st.lastDemand/st.pcores)
			sc.heat[st.tank] += idleHeatW + (w-idleHeatW)*util
		}
		maxBath := 0.0
		for i, tk := range tanks {
			b := tk.Step(cfg.StepS, sc.heat[i])
			if b > maxBath {
				maxBath = b
			}
		}
		if maxBath > rep.MaxBathC {
			rep.MaxBathC = maxBath
		}

		// Wear accrual: two conditions per tank (nominal/overclocked
		// at the tank's bath), served by the shared hazard cache.
		hours := cfg.StepS / 3600
		for _, st := range states {
			bath := tanks[st.tank].BathC()
			cond := reliability.Condition{VoltageV: power.NominalVoltage, TjMaxC: bath + nominalTjRiseC, TjMinC: bath}
			if st.oc {
				cond = reliability.Condition{VoltageV: power.OverclockedVoltage, TjMaxC: bath + ocTjRiseC, TjMinC: bath}
			}
			util := math.Min(1, st.lastDemand/st.pcores)
			st.wear.Accrue(cond, hours, util)
			st.hours += hours
		}

		// KPIs.
		density := cl.Stats().Density
		if density > rep.PeakDensity {
			rep.PeakDensity = density
		}
		if granted > rep.PeakOverclocked {
			rep.PeakOverclocked = granted
		}
		rep.OverclockServerHours += float64(granted) * hours
		p := sc.rowPowerW
		rep.PowerW.Add(t, p)
		rep.BathC.Add(t, maxBath)
		rep.Overclocked.Add(t, float64(granted))
		rep.Density.Add(t, density)
		gPower.Set(p)
		gPeakPower.SetMax(p)
		gBath.Set(maxBath)
		gPeakBath.SetMax(maxBath)
		// Junction temperature rides the bath: +24 °C for overclocked
		// silicon, +16 °C nominal (the wear model's conditions).
		tj := maxBath + nominalTjRiseC
		if granted > 0 {
			tj = maxBath + ocTjRiseC
		}
		gTj.Set(tj)
		gPeakTj.SetMax(tj)
		gOverclocked.Set(float64(granted))
	}

	// Fleet wear relative to the pro-rata schedule.
	var wearSum float64
	for _, st := range states {
		if st.hours > 0 {
			proRata := st.hours / (reliability.ServiceLifeYears * 24 * 365)
			if proRata > 0 {
				wearSum += st.wear.Used() / proRata
			}
		}
	}
	rep.MeanWearUsed = wearSum / float64(len(states))
	return rep, nil
}

// String summarizes a report.
func (r *Report) String() string {
	return fmt.Sprintf("peak density %.3f, rejected %d, peak OC %d, OC server-hours %.1f, max bath %.1f°C, cap events %d (%d cancelled), wear rate %.2f× schedule",
		r.PeakDensity, r.Rejected, r.PeakOverclocked, r.OverclockServerHours, r.MaxBathC, r.CapEvents, r.CancelledOverclocks, r.MeanWearUsed)
}
