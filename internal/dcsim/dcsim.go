// Package dcsim is the full-stack integration simulation: a fleet of
// immersion tanks replays a VM arrival trace through the cluster
// placer, an overclocking governor policy decides per-server clocks to
// absorb oversubscription, tanks integrate the resulting heat through
// their condensers, a row feeder enforces the power-delivery budget by
// cancelling the lowest-value overclocks, and every overclocked hour
// accrues wear against the lifetime budget.
//
// It is the "everything wired together" demonstration a control-plane
// operator would run before turning the paper's techniques on in
// production: the same models that reproduce the paper's tables, now
// interacting.
package dcsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"immersionoc/internal/cluster"
	"immersionoc/internal/freq"
	"immersionoc/internal/power"
	"immersionoc/internal/reliability"
	"immersionoc/internal/stats"
	"immersionoc/internal/telemetry"
	"immersionoc/internal/thermal"
	"immersionoc/internal/vm"
)

// Config parameterizes a fleet run.
type Config struct {
	// Servers is the fleet size; ServersPerTank groups them into
	// tanks (the last tank may be partial).
	Servers, ServersPerTank int
	// OversubRatio is the CPU oversubscription the placer may use.
	OversubRatio float64
	// FeederBudgetW is the row's power-delivery limit (0 = no limit).
	FeederBudgetW float64
	// Trace generates the VM workload.
	Trace vm.TraceConfig
	// StepS is the control-loop period in trace seconds.
	StepS float64
	// OverclockThreshold is the expected-demand/pcores ratio above
	// which a server requests an overclock. Expected demand is the
	// long-run mean; bursts run ~2× above it, so a server whose mean
	// demand exceeds half its cores will contend during bursts —
	// that is the regime overclocking absorbs (Figure 12).
	OverclockThreshold float64
	// Tel, when non-nil, receives the run's telemetry: the control
	// step counter, row power / bath temperature gauges with running
	// peaks, and counters for rejections, cap events and cancelled
	// overclocks.
	Tel *telemetry.Scope
}

// DefaultConfig is a 3-tank row under moderate load.
func DefaultConfig() Config {
	trace := vm.DefaultTrace
	trace.ArrivalRatePerS = 0.01
	trace.DurationS = 2 * 24 * 3600
	trace.MeanLifetimeS = 10 * 3600
	return Config{
		Servers:            36,
		ServersPerTank:     12,
		OversubRatio:       0.25,
		FeederBudgetW:      12500,
		Trace:              trace,
		StepS:              300,
		OverclockThreshold: 0.5,
	}
}

// BladeServer is the per-blade power model (2 × 24-core sockets).
var BladeServer = power.ServerModel{
	PlatformW:    60,
	UncoreRefW:   40,
	MemRefW:      44,
	CorePerGHzV2: 1.75,
	CoreActiveW:  0.9,
	CoreParkedW:  0.25,
	TotalCores:   48,
	Curve:        power.XeonW3175XCurve,
}

// Report carries the run's KPIs.
type Report struct {
	// PeakDensity is the highest vcores/pcore reached.
	PeakDensity float64
	// Rejected counts denied VM arrivals.
	Rejected int
	// MaxBathC is the hottest any tank's bath got.
	MaxBathC float64
	// PeakOverclocked is the most servers overclocked at once.
	PeakOverclocked int
	// OverclockServerHours integrates overclocked servers over time.
	OverclockServerHours float64
	// CapEvents counts steps where the feeder budget forced
	// overclocks to be cancelled.
	CapEvents int
	// CancelledOverclocks counts overclocks revoked by the feeder.
	CancelledOverclocks int
	// MeanWearUsed is the fleet-average fraction of the pro-rata
	// wear budget consumed (1.0 = wearing exactly at the 5-year
	// schedule).
	MeanWearUsed float64
	// PowerW, BathC, Overclocked and Density are time series.
	PowerW, BathC, Overclocked, Density *stats.Series
	// InterferenceAtRisk counts step observations where an
	// oversubscribed server's demand exceeded even overclocked
	// capacity.
	InterferenceAtRisk int
}

type serverState struct {
	srv   *cluster.Server
	tank  int
	oc    bool
	wear  *reliability.WearMeter
	hours float64
}

// Run executes the fleet simulation.
func Run(cfg Config) (*Report, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx executes the fleet simulation under ctx, checking for
// cancellation at every control-step boundary: a cancelled run
// returns the context error within one StepS of simulated progress
// instead of completing the trace.
func RunCtx(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Servers <= 0 || cfg.ServersPerTank <= 0 {
		return nil, errors.New("dcsim: need positive fleet and tank sizes")
	}
	if cfg.StepS <= 0 {
		return nil, errors.New("dcsim: need positive step")
	}
	if cfg.OverclockThreshold <= 0 {
		cfg.OverclockThreshold = 0.5
	}

	cl := cluster.New(cluster.TwoSocketBlade, cluster.Policy{CPUOversubRatio: cfg.OversubRatio}, cfg.Servers)
	nTanks := (cfg.Servers + cfg.ServersPerTank - 1) / cfg.ServersPerTank
	tanks := make([]*thermal.Tank, nTanks)
	for i := range tanks {
		tanks[i] = thermal.LargeTank()
		if err := tanks[i].Validate(); err != nil {
			return nil, err
		}
	}

	states := make([]*serverState, cfg.Servers)
	for i, s := range cl.Servers() {
		states[i] = &serverState{
			srv:  s,
			tank: i / cfg.ServersPerTank,
			wear: reliability.NewWearMeter(reliability.Composite5nm, reliability.ServiceLifeYears),
		}
	}

	events := vm.Events(vm.Generate(cfg.Trace))
	rep := &Report{
		PowerW:      stats.NewSeries("row-power"),
		BathC:       stats.NewSeries("max-bath"),
		Overclocked: stats.NewSeries("overclocked"),
		Density:     stats.NewSeries("density"),
	}

	// Telemetry handles (nil no-ops when cfg.Tel is nil).
	mSteps := cfg.Tel.Counter("steps")
	mRejected := cfg.Tel.Counter("rejected")
	mCapEvents := cfg.Tel.Counter("cap_events")
	mCancelledOC := cfg.Tel.Counter("cancelled_overclocks")
	gPower := cfg.Tel.Gauge("row_power_w")
	gPeakPower := cfg.Tel.Gauge("peak_row_power_w")
	gBath := cfg.Tel.Gauge("bath_c")
	gPeakBath := cfg.Tel.Gauge("peak_bath_c")
	gTj := cfg.Tel.Gauge("tj_c")
	gPeakTj := cfg.Tel.Gauge("peak_tj_c")
	gOverclocked := cfg.Tel.Gauge("overclocked")

	// serverDemand returns expected concurrent core demand.
	serverDemand := func(s *cluster.Server) float64 {
		var d float64
		for _, v := range s.VMsList() {
			d += float64(v.Type.VCores) * v.AvgUtil
		}
		return d
	}

	ei := 0
	for t := 0.0; t < cfg.Trace.DurationS; t += cfg.StepS {
		// Cancellation checkpoint: one step of the control loop is the
		// simulation's natural boundary.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mSteps.Inc()
		// Replay trace events due this step.
		for ei < len(events) && events[ei].TimeS <= t {
			ev := events[ei]
			ei++
			if ev.Arrival {
				if _, err := cl.Place(ev.VM); err != nil {
					rep.Rejected++
					mRejected.Inc()
				}
			} else {
				_ = cl.Remove(ev.VM) // not placed → ignore
			}
		}

		// Overclock decisions: servers whose expected demand exceeds
		// the threshold request an overclock; others run nominal.
		type ocReq struct {
			st   *serverState
			need float64
		}
		var requests []ocReq
		for _, st := range states {
			st.oc = false
			d := serverDemand(st.srv)
			pc := float64(st.srv.Spec.PCores)
			if d > cfg.OverclockThreshold*pc {
				requests = append(requests, ocReq{st: st, need: d / pc})
			}
			if d > pc*st.srv.Spec.OCSpeedup {
				rep.InterferenceAtRisk++
			}
		}
		// Most-pressured servers get their overclock first.
		sort.Slice(requests, func(i, j int) bool {
			if requests[i].need != requests[j].need {
				return requests[i].need > requests[j].need
			}
			return requests[i].st.srv.ID < requests[j].st.srv.ID
		})

		// Tank admission: each tank honours its condenser budget.
		ocPerTank := make([]int, nTanks)
		tankBudget := make([]int, nTanks)
		for i, tk := range tanks {
			n := cfg.ServersPerTank
			if rem := cfg.Servers - i*cfg.ServersPerTank; rem < n {
				n = rem
			}
			tankBudget[i] = tk.OverclockBudget(n, 658, 858)
		}
		granted := 0
		for _, r := range requests {
			if ocPerTank[r.st.tank] < tankBudget[r.st.tank] {
				r.st.oc = true
				ocPerTank[r.st.tank]++
				granted++
			}
		}

		// Feeder budget: cancel the least-pressured overclocks until
		// the row fits (priority capping at the granularity of whole
		// overclock grants).
		rowPower := func() float64 {
			var p float64
			for _, st := range states {
				cfgF := freq.B2
				if st.oc {
					cfgF = freq.OC1
				}
				p += BladeServer.Power(cfgF, serverDemand(st.srv), st.srv.VCoresUsed())
			}
			return p
		}
		if cfg.FeederBudgetW > 0 && rowPower() > cfg.FeederBudgetW {
			rep.CapEvents++
			mCapEvents.Inc()
			for i := len(requests) - 1; i >= 0 && rowPower() > cfg.FeederBudgetW; i-- {
				if requests[i].st.oc {
					requests[i].st.oc = false
					granted--
					rep.CancelledOverclocks++
					mCancelledOC.Inc()
				}
			}
		}

		// Thermals: integrate each tank's heat.
		heat := make([]float64, nTanks)
		for _, st := range states {
			w := 658.0
			if st.oc {
				w = 858.0
			}
			// Scale idle servers down: power follows demand.
			util := math.Min(1, serverDemand(st.srv)/float64(st.srv.Spec.PCores))
			heat[st.tank] += 200 + (w-200)*util
		}
		maxBath := 0.0
		for i, tk := range tanks {
			b := tk.Step(cfg.StepS, heat[i])
			if b > maxBath {
				maxBath = b
			}
		}
		if maxBath > rep.MaxBathC {
			rep.MaxBathC = maxBath
		}

		// Wear accrual.
		hours := cfg.StepS / 3600
		for _, st := range states {
			bath := tanks[st.tank].BathC()
			cond := reliability.Condition{VoltageV: power.NominalVoltage, TjMaxC: bath + 16, TjMinC: bath}
			if st.oc {
				cond = reliability.Condition{VoltageV: power.OverclockedVoltage, TjMaxC: bath + 24, TjMinC: bath}
			}
			util := math.Min(1, serverDemand(st.srv)/float64(st.srv.Spec.PCores))
			st.wear.Accrue(cond, hours, util)
			st.hours += hours
		}

		// KPIs.
		density := cl.Stats().Density
		if density > rep.PeakDensity {
			rep.PeakDensity = density
		}
		if granted > rep.PeakOverclocked {
			rep.PeakOverclocked = granted
		}
		rep.OverclockServerHours += float64(granted) * hours
		p := rowPower()
		rep.PowerW.Add(t, p)
		rep.BathC.Add(t, maxBath)
		rep.Overclocked.Add(t, float64(granted))
		rep.Density.Add(t, density)
		gPower.Set(p)
		gPeakPower.SetMax(p)
		gBath.Set(maxBath)
		gPeakBath.SetMax(maxBath)
		// Junction temperature rides the bath: +24 °C for overclocked
		// silicon, +16 °C nominal (the wear model's conditions).
		tj := maxBath + 16
		if granted > 0 {
			tj = maxBath + 24
		}
		gTj.Set(tj)
		gPeakTj.SetMax(tj)
		gOverclocked.Set(float64(granted))
	}

	// Fleet wear relative to the pro-rata schedule.
	var wearSum float64
	for _, st := range states {
		if st.hours > 0 {
			proRata := st.hours / (reliability.ServiceLifeYears * 24 * 365)
			if proRata > 0 {
				wearSum += st.wear.Used() / proRata
			}
		}
	}
	rep.MeanWearUsed = wearSum / float64(len(states))
	return rep, nil
}

// String summarizes a report.
func (r *Report) String() string {
	return fmt.Sprintf("peak density %.3f, rejected %d, peak OC %d, OC server-hours %.1f, max bath %.1f°C, cap events %d (%d cancelled), wear rate %.2f× schedule",
		r.PeakDensity, r.Rejected, r.PeakOverclocked, r.OverclockServerHours, r.MaxBathC, r.CapEvents, r.CancelledOverclocks, r.MeanWearUsed)
}
