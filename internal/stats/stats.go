// Package stats provides the streaming statistics used throughout the
// experiments: exact percentile digests for latency distributions,
// rolling time-windowed averages for the auto-scaler's utilization
// monitors, histograms, and simple time-series recording for figure
// regeneration.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Digest sample storage is chunked: samples append into fixed-size
// blocks instead of one contiguous slice, so a digest holding tens of
// millions of samples never doubles-and-copies a GB-scale buffer, and
// blocks recycle through a package-level pool across harness
// replications. Chunk sizes tier up from chunkMinFloats to
// chunkMaxFloats (doubling per chunk) so small digests stay small
// while large ones amortize to one 512 KiB block per 64Ki samples.
const (
	chunkMinShift = 10 // 1Ki floats = 8 KiB
	chunkMaxShift = 16 // 64Ki floats = 512 KiB
	chunkClasses  = chunkMaxShift - chunkMinShift + 1
)

// chunkPools recycles sample blocks by size class. Pooled blocks are
// plain capacity: length is reset on acquire. sync.Pool keeps this
// safe under the fleet simulator's concurrent shards.
var chunkPools [chunkClasses]sync.Pool

// chunkClass returns the size class of the i-th chunk of a digest.
func chunkClass(i int) int {
	if i >= chunkClasses {
		return chunkClasses - 1
	}
	return i
}

func acquireChunk(class int) []float64 {
	if c, ok := chunkPools[class].Get().([]float64); ok {
		return c[:0]
	}
	return make([]float64, 0, 1<<(chunkMinShift+class))
}

// Digest accumulates samples and answers percentile queries exactly.
// It is intended for simulation-scale sample counts (millions), where
// keeping every sample is cheap and exactness keeps the reproduced
// tables stable across runs. Storage is a list of pooled fixed-size
// chunks; quantile queries sort each chunk in place and select order
// statistics with a k-way merge, so results are identical to sorting
// one flat buffer.
type Digest struct {
	chunks [][]float64
	// active indexes the chunk currently receiving samples; chunks
	// past it are pre-acquired (Reserve) or retained (Reset) capacity.
	active int
	count  int
	sorted bool
	sum    float64
}

// NewDigest returns an empty digest.
func NewDigest() *Digest { return &Digest{} }

// Reserve grows the digest's chunk list to hold at least n samples
// without further chunk acquisition. Harnesses that replay the same
// simulation several times (replications, ablation arms) call it with
// the expected request count so the million-sample latency buffers are
// drawn from the pool once up front.
func (d *Digest) Reserve(n int) {
	total := 0
	for _, c := range d.chunks {
		total += cap(c)
	}
	for total < n {
		c := acquireChunk(chunkClass(len(d.chunks)))
		total += cap(c)
		d.chunks = append(d.chunks, c)
	}
}

// Add records one sample.
func (d *Digest) Add(v float64) {
	for {
		if d.active == len(d.chunks) {
			d.chunks = append(d.chunks, acquireChunk(chunkClass(len(d.chunks))))
		}
		c := d.chunks[d.active]
		if len(c) < cap(c) {
			d.chunks[d.active] = append(c, v)
			break
		}
		d.active++
	}
	d.count++
	d.sorted = false
	d.sum += v
}

// Count returns the number of samples recorded.
func (d *Digest) Count() int { return d.count }

// Sum returns the sum of all samples.
func (d *Digest) Sum() float64 { return d.sum }

// Mean returns the arithmetic mean (0 for an empty digest).
func (d *Digest) Mean() float64 {
	if d.count == 0 {
		return 0
	}
	return d.sum / float64(d.count)
}

// Merge folds every sample of o into d, leaving o untouched. Workers
// that each record into a private digest (the load generator's
// per-worker latency streams) merge them into one digest for the final
// quantile queries; the result is identical to having recorded all
// samples into d directly.
func (d *Digest) Merge(o *Digest) {
	if o == nil {
		return
	}
	for _, c := range o.chunks {
		for _, v := range c {
			d.Add(v)
		}
	}
}

// Reset discards all samples but keeps the chunks, so a warmed digest
// records the next run without touching the pool or the allocator.
func (d *Digest) Reset() {
	for i := range d.chunks {
		d.chunks[i] = d.chunks[i][:0]
	}
	d.active = 0
	d.count = 0
	d.sorted = false
	d.sum = 0
}

// Release empties the digest and returns its chunks to the pool for
// other digests to reuse. Harnesses call it once a run's digests have
// been reduced to scalars; using the digest afterwards is valid and
// starts from empty storage.
func (d *Digest) Release() {
	for i, c := range d.chunks {
		chunkPools[chunkClass(i)].Put(c[:0])
		d.chunks[i] = nil
	}
	d.chunks = d.chunks[:0]
	d.active = 0
	d.count = 0
	d.sorted = false
	d.sum = 0
}

// ensureSorted sorts each chunk in place. Chunk contents are a
// partition of the samples, so per-chunk sorting plus merge-selection
// in the query paths reproduces flat-sorted order exactly.
func (d *Digest) ensureSorted() {
	if !d.sorted {
		for _, c := range d.chunks {
			sort.Float64s(c)
		}
		d.sorted = true
	}
}

// orderStats returns the k-th and (k+1)-th smallest samples (0-based),
// merging the sorted chunks from whichever end is nearer the rank. If
// k is the last rank both returns are the k-th sample. Precondition:
// chunks are sorted and 0 <= k < count.
func (d *Digest) orderStats(k int) (float64, float64) {
	if k+1 < d.count-k {
		return d.mergeSelect(k, false)
	}
	if k == d.count-1 {
		v, _ := d.mergeSelect(0, true)
		return v, v
	}
	// Descending, the (k+1)-th smallest pops first (rank count-2-k
	// from the top) and the k-th smallest pops right after it.
	hi, lo := d.mergeSelect(d.count-2-k, true)
	return lo, hi
}

// mergeSelect pops r+2 elements off a k-way merge of the sorted chunks
// and returns the r-th and (r+1)-th popped (the latter clamped to the
// r-th at the end of the data). desc merges largest-first, so rank r
// counts from the top.
func (d *Digest) mergeSelect(r int, desc bool) (float64, float64) {
	// cur[i] is how many elements chunk i has already yielded.
	cur := make([]int, len(d.chunks))
	head := func(i int) float64 {
		c := d.chunks[i]
		if desc {
			return c[len(c)-1-cur[i]]
		}
		return c[cur[i]]
	}
	// h is a binary min-heap (max-heap when desc) of chunk indices
	// ordered by their next unyielded element.
	h := make([]int, 0, len(d.chunks))
	before := func(a, b int) bool {
		if desc {
			return head(a) > head(b)
		}
		return head(a) < head(b)
	}
	up := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !before(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	down := func() {
		i := 0
		for {
			l, rgt := 2*i+1, 2*i+2
			m := i
			if l < len(h) && before(h[l], h[m]) {
				m = l
			}
			if rgt < len(h) && before(h[rgt], h[m]) {
				m = rgt
			}
			if m == i {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for i, c := range d.chunks {
		if len(c) > 0 {
			h = append(h, i)
			up(len(h) - 1)
		}
	}
	var a, b float64
	for popped := 0; popped <= r+1 && len(h) > 0; popped++ {
		top := h[0]
		v := head(top)
		if popped == r {
			a, b = v, v
		} else if popped == r+1 {
			b = v
		}
		cur[top]++
		if cur[top] == len(d.chunks[top]) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		down()
	}
	return a, b
}

// Quantile returns the q-quantile (q in [0,1]) using linear
// interpolation between closest ranks. Returns 0 for an empty digest.
func (d *Digest) Quantile(q float64) float64 {
	if d.count == 0 {
		return 0
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	d.ensureSorted()
	if d.count == 1 {
		return d.chunks[0][0]
	}
	pos := q * float64(d.count-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	vlo, vhi := d.orderStats(lo)
	if lo == hi {
		return vlo
	}
	frac := pos - float64(lo)
	return vlo*(1-frac) + vhi*frac
}

// P95 returns the 95th percentile.
func (d *Digest) P95() float64 { return d.Quantile(0.95) }

// P99 returns the 99th percentile.
func (d *Digest) P99() float64 { return d.Quantile(0.99) }

// Max returns the largest sample (0 for empty).
func (d *Digest) Max() float64 {
	if d.count == 0 {
		return 0
	}
	d.ensureSorted()
	m := math.Inf(-1)
	for _, c := range d.chunks {
		if len(c) > 0 && c[len(c)-1] > m {
			m = c[len(c)-1]
		}
	}
	return m
}

// Min returns the smallest sample (0 for empty).
func (d *Digest) Min() float64 {
	if d.count == 0 {
		return 0
	}
	d.ensureSorted()
	m := math.Inf(1)
	for _, c := range d.chunks {
		if len(c) > 0 && c[0] < m {
			m = c[0]
		}
	}
	return m
}

// Stddev returns the population standard deviation.
func (d *Digest) Stddev() float64 {
	if d.count == 0 {
		return 0
	}
	mean := d.Mean()
	var ss float64
	for _, c := range d.chunks {
		for _, v := range c {
			dv := v - mean
			ss += dv * dv
		}
	}
	return math.Sqrt(ss / float64(d.count))
}

// Window is a rolling time window of (time, value) samples. The
// auto-scaler uses Windows to compute "average CPU utilization over the
// last 3 minutes / 30 seconds" exactly as the paper describes.
type Window struct {
	span   float64 // seconds of history to retain
	times  []float64
	values []float64
}

// NewWindow returns a rolling window retaining span seconds of samples.
func NewWindow(span float64) *Window {
	if span <= 0 {
		panic("stats: window span must be positive")
	}
	return &Window{span: span}
}

// Add records a sample at time t, evicting samples older than span.
// Samples must be added in non-decreasing time order.
func (w *Window) Add(t, v float64) {
	if n := len(w.times); n > 0 && t < w.times[n-1] {
		panic("stats: window samples must be time-ordered")
	}
	w.times = append(w.times, t)
	w.values = append(w.values, v)
	cut := t - w.span
	i := 0
	for i < len(w.times) && w.times[i] < cut {
		i++
	}
	if i > 0 {
		w.times = append(w.times[:0], w.times[i:]...)
		w.values = append(w.values[:0], w.values[i:]...)
	}
}

// Mean returns the average of the samples currently in the window
// (0 when empty).
func (w *Window) Mean() float64 {
	if len(w.values) == 0 {
		return 0
	}
	var s float64
	for _, v := range w.values {
		s += v
	}
	return s / float64(len(w.values))
}

// Len returns the number of retained samples.
func (w *Window) Len() int { return len(w.values) }

// Span returns the configured window span in seconds.
func (w *Window) Span() float64 { return w.span }

// Last returns the most recent sample value (0 when empty).
func (w *Window) Last() float64 {
	if len(w.values) == 0 {
		return 0
	}
	return w.values[len(w.values)-1]
}

// Slope returns the least-squares trend of the windowed samples in
// value units per second (0 with fewer than two samples or zero time
// spread). Predictive auto-scaling uses it to forecast utilization.
func (w *Window) Slope() float64 {
	n := float64(len(w.times))
	if n < 2 {
		return 0
	}
	var st, sv, stt, stv float64
	for i := range w.times {
		st += w.times[i]
		sv += w.values[i]
		stt += w.times[i] * w.times[i]
		stv += w.times[i] * w.values[i]
	}
	den := n*stt - st*st
	if den == 0 {
		return 0
	}
	return (n*stv - st*sv) / den
}

// Forecast extrapolates the windowed trend horizon seconds past the
// most recent sample.
func (w *Window) Forecast(horizonS float64) float64 {
	return w.Last() + w.Slope()*horizonS
}

// Series records an append-only (time, value) series — one per curve of
// a reproduced figure.
type Series struct {
	Name   string
	Times  []float64
	Values []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// NewSeriesCap returns an empty named series with room for n points,
// for recorders that know the sample count up front (e.g. a control
// loop appending once per step over a fixed horizon) and want the
// appends to stop growing the backing arrays mid-run.
func NewSeriesCap(name string, n int) *Series {
	if n < 0 {
		n = 0
	}
	return &Series{
		Name:   name,
		Times:  make([]float64, 0, n),
		Values: make([]float64, 0, n),
	}
}

// Add appends a point.
func (s *Series) Add(t, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Times) }

// At returns the value at or immediately before time t (0 if the series
// has no point at or before t).
func (s *Series) At(t float64) float64 {
	i := sort.SearchFloat64s(s.Times, t)
	if i < len(s.Times) && s.Times[i] == t {
		return s.Values[i]
	}
	if i == 0 {
		return 0
	}
	return s.Values[i-1]
}

// Mean returns the time-unweighted mean of the recorded values.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Max returns the largest recorded value (0 when empty).
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// TimeWeightedMean integrates the series as a step function over
// [start, end] and divides by the span. Useful for VM-count integrals
// (VM×hours) and average power.
func (s *Series) TimeWeightedMean(start, end float64) float64 {
	if end <= start {
		return 0
	}
	return s.Integral(start, end) / (end - start)
}

// Integral integrates the step function defined by the series over
// [start, end]. Each recorded value holds from its timestamp until the
// next point (or end).
func (s *Series) Integral(start, end float64) float64 {
	if end <= start || len(s.Times) == 0 {
		return 0
	}
	var total float64
	for i := 0; i < len(s.Times); i++ {
		t0 := s.Times[i]
		var t1 float64
		if i+1 < len(s.Times) {
			t1 = s.Times[i+1]
		} else {
			t1 = end
		}
		lo := math.Max(t0, start)
		hi := math.Min(t1, end)
		if hi > lo {
			total += s.Values[i] * (hi - lo)
		}
	}
	return total
}

// Histogram is a fixed-bucket histogram over [lo, hi).
type Histogram struct {
	lo, hi  float64
	buckets []uint64
	under   uint64
	over    uint64
	count   uint64
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if hi <= lo || n <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]uint64, n)}
}

// Add records a sample.
func (h *Histogram) Add(v float64) {
	h.count++
	switch {
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.over++
	default:
		i := int((v - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
		if i >= len(h.buckets) {
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// OutOfRange returns the counts of samples below lo and at/above hi.
func (h *Histogram) OutOfRange() (under, over uint64) { return h.under, h.over }
