// Package stats provides the streaming statistics used throughout the
// experiments: exact percentile digests for latency distributions,
// rolling time-windowed averages for the auto-scaler's utilization
// monitors, histograms, and simple time-series recording for figure
// regeneration.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Digest accumulates samples and answers percentile queries exactly.
// It is intended for simulation-scale sample counts (millions), where
// keeping every sample is cheap and exactness keeps the reproduced
// tables stable across runs.
type Digest struct {
	samples []float64
	sorted  bool
	sum     float64
}

// NewDigest returns an empty digest.
func NewDigest() *Digest { return &Digest{} }

// Reserve grows the digest's sample buffer to hold at least n samples
// without further reallocation. Harnesses that replay the same
// simulation several times (replications, ablation arms) call it with
// the expected request count so the million-sample latency buffers are
// sized once instead of doubling their way up every run.
func (d *Digest) Reserve(n int) {
	if n > cap(d.samples) {
		buf := make([]float64, len(d.samples), n)
		copy(buf, d.samples)
		d.samples = buf
	}
}

// Add records one sample.
func (d *Digest) Add(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
	d.sum += v
}

// Count returns the number of samples recorded.
func (d *Digest) Count() int { return len(d.samples) }

// Sum returns the sum of all samples.
func (d *Digest) Sum() float64 { return d.sum }

// Mean returns the arithmetic mean (0 for an empty digest).
func (d *Digest) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return d.sum / float64(len(d.samples))
}

// Reset discards all samples.
func (d *Digest) Reset() {
	d.samples = d.samples[:0]
	d.sorted = false
	d.sum = 0
}

func (d *Digest) ensureSorted() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// Quantile returns the q-quantile (q in [0,1]) using linear
// interpolation between closest ranks. Returns 0 for an empty digest.
func (d *Digest) Quantile(q float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	d.ensureSorted()
	if len(d.samples) == 1 {
		return d.samples[0]
	}
	pos := q * float64(len(d.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return d.samples[lo]
	}
	frac := pos - float64(lo)
	return d.samples[lo]*(1-frac) + d.samples[hi]*frac
}

// P95 returns the 95th percentile.
func (d *Digest) P95() float64 { return d.Quantile(0.95) }

// P99 returns the 99th percentile.
func (d *Digest) P99() float64 { return d.Quantile(0.99) }

// Max returns the largest sample (0 for empty).
func (d *Digest) Max() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	return d.samples[len(d.samples)-1]
}

// Min returns the smallest sample (0 for empty).
func (d *Digest) Min() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	return d.samples[0]
}

// Stddev returns the population standard deviation.
func (d *Digest) Stddev() float64 {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	mean := d.Mean()
	var ss float64
	for _, v := range d.samples {
		dv := v - mean
		ss += dv * dv
	}
	return math.Sqrt(ss / float64(n))
}

// Window is a rolling time window of (time, value) samples. The
// auto-scaler uses Windows to compute "average CPU utilization over the
// last 3 minutes / 30 seconds" exactly as the paper describes.
type Window struct {
	span   float64 // seconds of history to retain
	times  []float64
	values []float64
}

// NewWindow returns a rolling window retaining span seconds of samples.
func NewWindow(span float64) *Window {
	if span <= 0 {
		panic("stats: window span must be positive")
	}
	return &Window{span: span}
}

// Add records a sample at time t, evicting samples older than span.
// Samples must be added in non-decreasing time order.
func (w *Window) Add(t, v float64) {
	if n := len(w.times); n > 0 && t < w.times[n-1] {
		panic("stats: window samples must be time-ordered")
	}
	w.times = append(w.times, t)
	w.values = append(w.values, v)
	cut := t - w.span
	i := 0
	for i < len(w.times) && w.times[i] < cut {
		i++
	}
	if i > 0 {
		w.times = append(w.times[:0], w.times[i:]...)
		w.values = append(w.values[:0], w.values[i:]...)
	}
}

// Mean returns the average of the samples currently in the window
// (0 when empty).
func (w *Window) Mean() float64 {
	if len(w.values) == 0 {
		return 0
	}
	var s float64
	for _, v := range w.values {
		s += v
	}
	return s / float64(len(w.values))
}

// Len returns the number of retained samples.
func (w *Window) Len() int { return len(w.values) }

// Span returns the configured window span in seconds.
func (w *Window) Span() float64 { return w.span }

// Last returns the most recent sample value (0 when empty).
func (w *Window) Last() float64 {
	if len(w.values) == 0 {
		return 0
	}
	return w.values[len(w.values)-1]
}

// Slope returns the least-squares trend of the windowed samples in
// value units per second (0 with fewer than two samples or zero time
// spread). Predictive auto-scaling uses it to forecast utilization.
func (w *Window) Slope() float64 {
	n := float64(len(w.times))
	if n < 2 {
		return 0
	}
	var st, sv, stt, stv float64
	for i := range w.times {
		st += w.times[i]
		sv += w.values[i]
		stt += w.times[i] * w.times[i]
		stv += w.times[i] * w.values[i]
	}
	den := n*stt - st*st
	if den == 0 {
		return 0
	}
	return (n*stv - st*sv) / den
}

// Forecast extrapolates the windowed trend horizon seconds past the
// most recent sample.
func (w *Window) Forecast(horizonS float64) float64 {
	return w.Last() + w.Slope()*horizonS
}

// Series records an append-only (time, value) series — one per curve of
// a reproduced figure.
type Series struct {
	Name   string
	Times  []float64
	Values []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// NewSeriesCap returns an empty named series with room for n points,
// for recorders that know the sample count up front (e.g. a control
// loop appending once per step over a fixed horizon) and want the
// appends to stop growing the backing arrays mid-run.
func NewSeriesCap(name string, n int) *Series {
	if n < 0 {
		n = 0
	}
	return &Series{
		Name:   name,
		Times:  make([]float64, 0, n),
		Values: make([]float64, 0, n),
	}
}

// Add appends a point.
func (s *Series) Add(t, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Times) }

// At returns the value at or immediately before time t (0 if the series
// has no point at or before t).
func (s *Series) At(t float64) float64 {
	i := sort.SearchFloat64s(s.Times, t)
	if i < len(s.Times) && s.Times[i] == t {
		return s.Values[i]
	}
	if i == 0 {
		return 0
	}
	return s.Values[i-1]
}

// Mean returns the time-unweighted mean of the recorded values.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Max returns the largest recorded value (0 when empty).
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// TimeWeightedMean integrates the series as a step function over
// [start, end] and divides by the span. Useful for VM-count integrals
// (VM×hours) and average power.
func (s *Series) TimeWeightedMean(start, end float64) float64 {
	if end <= start {
		return 0
	}
	return s.Integral(start, end) / (end - start)
}

// Integral integrates the step function defined by the series over
// [start, end]. Each recorded value holds from its timestamp until the
// next point (or end).
func (s *Series) Integral(start, end float64) float64 {
	if end <= start || len(s.Times) == 0 {
		return 0
	}
	var total float64
	for i := 0; i < len(s.Times); i++ {
		t0 := s.Times[i]
		var t1 float64
		if i+1 < len(s.Times) {
			t1 = s.Times[i+1]
		} else {
			t1 = end
		}
		lo := math.Max(t0, start)
		hi := math.Min(t1, end)
		if hi > lo {
			total += s.Values[i] * (hi - lo)
		}
	}
	return total
}

// Histogram is a fixed-bucket histogram over [lo, hi).
type Histogram struct {
	lo, hi  float64
	buckets []uint64
	under   uint64
	over    uint64
	count   uint64
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if hi <= lo || n <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]uint64, n)}
}

// Add records a sample.
func (h *Histogram) Add(v float64) {
	h.count++
	switch {
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.over++
	default:
		i := int((v - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
		if i >= len(h.buckets) {
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// OutOfRange returns the counts of samples below lo and at/above hi.
func (h *Histogram) OutOfRange() (under, over uint64) { return h.under, h.over }
