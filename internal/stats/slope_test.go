package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSlopeLinear(t *testing.T) {
	w := NewWindow(100)
	for i := 0; i <= 10; i++ {
		w.Add(float64(i), 2+0.5*float64(i))
	}
	if got := w.Slope(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("slope %v, want 0.5", got)
	}
	if got := w.Forecast(4); math.Abs(got-(7+2)) > 1e-12 {
		t.Fatalf("forecast %v, want 9", got)
	}
}

func TestSlopeFlat(t *testing.T) {
	w := NewWindow(100)
	for i := 0; i < 5; i++ {
		w.Add(float64(i), 3)
	}
	if got := w.Slope(); math.Abs(got) > 1e-12 {
		t.Fatalf("flat slope %v", got)
	}
}

func TestSlopeDegenerate(t *testing.T) {
	w := NewWindow(100)
	if w.Slope() != 0 {
		t.Fatal("empty window slope")
	}
	w.Add(1, 5)
	if w.Slope() != 0 {
		t.Fatal("single-sample slope")
	}
	if w.Forecast(10) != 5 {
		t.Fatalf("single-sample forecast %v", w.Forecast(10))
	}
}

func TestSlopeUsesWindowOnly(t *testing.T) {
	w := NewWindow(5)
	// Old decreasing samples get evicted; the retained trend is
	// increasing.
	w.Add(0, 10)
	w.Add(1, 9)
	w.Add(10, 1)
	w.Add(12, 3)
	w.Add(14, 5)
	if got := w.Slope(); got <= 0 {
		t.Fatalf("slope %v, want positive after eviction", got)
	}
}

// Property: slope sign matches the endpoints' order for monotone data.
func TestSlopeSignProperty(t *testing.T) {
	f := func(deltas []uint8) bool {
		if len(deltas) < 2 {
			return true
		}
		w := NewWindow(1e9)
		v := 0.0
		for i, d := range deltas {
			v += float64(d%16) + 0.1 // strictly increasing
			w.Add(float64(i), v)
		}
		return w.Slope() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
