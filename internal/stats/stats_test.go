package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDigestBasics(t *testing.T) {
	d := NewDigest()
	if d.Count() != 0 || d.Mean() != 0 || d.Quantile(0.5) != 0 {
		t.Fatal("empty digest not zero-valued")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		d.Add(v)
	}
	if d.Count() != 5 {
		t.Fatalf("count %d", d.Count())
	}
	if d.Mean() != 3 {
		t.Fatalf("mean %v", d.Mean())
	}
	if d.Min() != 1 || d.Max() != 5 {
		t.Fatalf("min/max %v/%v", d.Min(), d.Max())
	}
	if got := d.Quantile(0.5); got != 3 {
		t.Fatalf("median %v", got)
	}
	if got := d.Quantile(0); got != 1 {
		t.Fatalf("q0 %v", got)
	}
	if got := d.Quantile(1); got != 5 {
		t.Fatalf("q1 %v", got)
	}
}

func TestDigestInterpolation(t *testing.T) {
	d := NewDigest()
	d.Add(0)
	d.Add(10)
	if got := d.Quantile(0.25); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("q0.25 = %v, want 2.5", got)
	}
}

func TestDigestAddAfterQuery(t *testing.T) {
	d := NewDigest()
	d.Add(1)
	_ = d.Quantile(0.5)
	d.Add(0)
	if got := d.Min(); got != 0 {
		t.Fatalf("min after re-add %v", got)
	}
}

func TestDigestReset(t *testing.T) {
	d := NewDigest()
	d.Add(4)
	d.Reset()
	if d.Count() != 0 || d.Sum() != 0 {
		t.Fatal("reset did not clear digest")
	}
}

func TestDigestStddev(t *testing.T) {
	d := NewDigest()
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		d.Add(v)
	}
	if got := d.Stddev(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("stddev %v, want 2", got)
	}
}

func TestDigestQuantileOutOfRangePanics(t *testing.T) {
	d := NewDigest()
	d.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("q=1.5 did not panic")
		}
	}()
	d.Quantile(1.5)
}

// Property: digest quantiles bracket the data and are monotone in q.
func TestDigestQuantileProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		d := NewDigest()
		for _, v := range vals {
			d.Add(v)
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
			got := d.Quantile(q)
			if got < sorted[0]-1e-9 || got > sorted[len(sorted)-1]+1e-9 {
				return false
			}
			if got < prev-1e-9 {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDigestChunkedMatchesFlatSort is the differential gate for the
// chunked storage: across several chunk boundaries (tiered sizes
// included), every quantile must be bit-identical to indexing one
// flat sorted buffer, interleaved with adds after queries.
func TestDigestChunkedMatchesFlatSort(t *testing.T) {
	d := NewDigest()
	r := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return float64(r%1000000) / 997.0
	}
	var flat []float64
	check := func() {
		sorted := append([]float64(nil), flat...)
		sort.Float64s(sorted)
		for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
			pos := q * float64(len(sorted)-1)
			lo, hi := int(math.Floor(pos)), int(math.Ceil(pos))
			want := sorted[lo]
			if lo != hi {
				frac := pos - float64(lo)
				want = sorted[lo]*(1-frac) + sorted[hi]*frac
			}
			if got := d.Quantile(q); got != want {
				t.Fatalf("n=%d Quantile(%v) = %v, want %v", len(sorted), q, got, want)
			}
		}
		if d.Min() != sorted[0] || d.Max() != sorted[len(sorted)-1] {
			t.Fatalf("n=%d min/max %v/%v, want %v/%v",
				len(sorted), d.Min(), d.Max(), sorted[0], sorted[len(sorted)-1])
		}
	}
	// Past 1Ki+2Ki+4Ki the digest spans four chunks of three size
	// classes; query mid-stream to exercise re-sorting partially
	// filled chunks after adds.
	for _, n := range []int{1, 100, 1500, 4000, 9000} {
		for len(flat) < n {
			v := next()
			d.Add(v)
			flat = append(flat, v)
		}
		check()
	}
	if len(d.chunks) < 4 {
		t.Fatalf("expected multi-chunk storage, got %d chunks", len(d.chunks))
	}
}

// TestDigestResetKeepsChunks: a warmed digest must record a same-sized
// run after Reset without growing its chunk list or allocating.
func TestDigestResetKeepsChunks(t *testing.T) {
	d := NewDigest()
	fill := func() {
		for i := 0; i < 5000; i++ {
			d.Add(float64(i%97) * 1.5)
		}
	}
	fill()
	chunks := len(d.chunks)
	d.Reset()
	if d.Count() != 0 || d.Sum() != 0 {
		t.Fatal("reset did not clear digest")
	}
	if got := testing.AllocsPerRun(5, func() { fill(); d.Reset() }); got != 0 {
		t.Fatalf("warm fill allocated %.1f times", got)
	}
	if len(d.chunks) != chunks {
		t.Fatalf("chunk list changed across Reset: %d -> %d", chunks, len(d.chunks))
	}
}

// TestDigestReleaseRecycles: released chunks come back from the pool
// for the next digest instead of the allocator.
func TestDigestReleaseRecycles(t *testing.T) {
	d := NewDigest()
	for i := 0; i < 3000; i++ {
		d.Add(float64(i))
	}
	if got := d.Quantile(0.5); got != 1499.5 {
		t.Fatalf("median %v, want 1499.5", got)
	}
	d.Release()
	if d.Count() != 0 || len(d.chunks) != 0 {
		t.Fatalf("release left count=%d chunks=%d", d.Count(), len(d.chunks))
	}
	// The digest stays usable after Release.
	d.Add(7)
	if d.Count() != 1 || d.Quantile(1) != 7 {
		t.Fatalf("digest unusable after Release: count=%d", d.Count())
	}
}

// TestDigestReserveIsWarm: Reserve(n) must make n adds chunk-acquisition
// free.
func TestDigestReserveIsWarm(t *testing.T) {
	d := NewDigest()
	d.Reserve(10000)
	chunks := len(d.chunks)
	if chunks == 0 {
		t.Fatal("Reserve acquired no chunks")
	}
	for i := 0; i < 10000; i++ {
		d.Add(float64(i))
	}
	if len(d.chunks) != chunks {
		t.Fatalf("adds within the reservation grew chunks %d -> %d", chunks, len(d.chunks))
	}
	if d.Count() != 10000 {
		t.Fatalf("count %d", d.Count())
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(10)
	w.Add(0, 1)
	w.Add(5, 2)
	w.Add(12, 3) // evicts t=0 (12-10=2 > 0)
	if w.Len() != 2 {
		t.Fatalf("len %d, want 2", w.Len())
	}
	if got := w.Mean(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("mean %v, want 2.5", got)
	}
	if w.Last() != 3 {
		t.Fatalf("last %v", w.Last())
	}
}

func TestWindowOrderPanics(t *testing.T) {
	w := NewWindow(10)
	w.Add(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order add did not panic")
		}
	}()
	w.Add(4, 1)
}

func TestWindowEmptyMean(t *testing.T) {
	if NewWindow(5).Mean() != 0 {
		t.Fatal("empty window mean != 0")
	}
}

func TestSeriesAt(t *testing.T) {
	s := NewSeries("x")
	s.Add(0, 1)
	s.Add(10, 2)
	s.Add(20, 3)
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 1}, {5, 1}, {10, 2}, {15, 2}, {20, 3}, {100, 3},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Fatalf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestSeriesIntegral(t *testing.T) {
	s := NewSeries("vm")
	s.Add(0, 1)
	s.Add(10, 3)
	// [0,10): 1, [10,20]: 3 → integral over [0,20] = 10 + 30 = 40.
	if got := s.Integral(0, 20); math.Abs(got-40) > 1e-9 {
		t.Fatalf("integral %v, want 40", got)
	}
	if got := s.TimeWeightedMean(0, 20); math.Abs(got-2) > 1e-9 {
		t.Fatalf("time-weighted mean %v, want 2", got)
	}
}

func TestSeriesIntegralPartial(t *testing.T) {
	s := NewSeries("x")
	s.Add(0, 2)
	s.Add(10, 4)
	if got := s.Integral(5, 15); math.Abs(got-(5*2+5*4)) > 1e-9 {
		t.Fatalf("partial integral %v, want 30", got)
	}
}

func TestSeriesMeanMax(t *testing.T) {
	s := NewSeries("x")
	if s.Max() != 0 || s.Mean() != 0 {
		t.Fatal("empty series stats not 0")
	}
	s.Add(0, -5)
	s.Add(1, 7)
	if s.Max() != 7 {
		t.Fatalf("max %v", s.Max())
	}
	if s.Mean() != 1 {
		t.Fatalf("mean %v", s.Mean())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Add(v)
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Fatalf("out of range %d/%d, want 1/2", under, over)
	}
	if h.Bucket(0) != 2 { // 0 and 1.9
		t.Fatalf("bucket 0 = %d", h.Bucket(0))
	}
	if h.Bucket(1) != 1 { // 2
		t.Fatalf("bucket 1 = %d", h.Bucket(1))
	}
	if h.Bucket(4) != 1 { // 9.99
		t.Fatalf("bucket 4 = %d", h.Bucket(4))
	}
	if h.Count() != 7 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Buckets() != 5 {
		t.Fatalf("buckets %d", h.Buckets())
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid bounds did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestDigestMerge(t *testing.T) {
	// Recording 1..n split across three digests and merging must be
	// indistinguishable from recording into one digest directly —
	// including across chunk boundaries (n exceeds one chunk).
	const n = 3000
	want := NewDigest()
	parts := []*Digest{NewDigest(), NewDigest(), NewDigest()}
	for i := 0; i < n; i++ {
		v := float64((i * 7919) % n)
		want.Add(v)
		parts[i%3].Add(v)
	}
	got := NewDigest()
	for _, p := range parts {
		got.Merge(p)
	}
	got.Merge(nil) // no-op
	got.Merge(NewDigest())
	if got.Count() != want.Count() || got.Sum() != want.Sum() {
		t.Fatalf("merge: count/sum (%d, %v) != direct (%d, %v)",
			got.Count(), got.Sum(), want.Count(), want.Sum())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 0.999, 1} {
		if g, w := got.Quantile(q), want.Quantile(q); g != w {
			t.Fatalf("merge: q%v = %v, want %v", q, g, w)
		}
	}
	// Sources must be untouched by the merge.
	if parts[0].Count() != n/3 {
		t.Fatalf("merge consumed the source digest")
	}
}
