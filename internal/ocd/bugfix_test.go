package ocd

// Regression tests for the daemon's time/locking/hardening bugs. Each
// test fails against the pre-fix code:
//
//   - scaled mode used a time.Ticker and stepped once per tick, so a
//     step outrunning the interval dropped ticks and lost simulated
//     time permanently;
//   - /v1/step held the daemon lock for the whole batch (up to
//     100,000 steps), starving /v1/status;
//   - request bodies were decoded unbounded and trailing garbage
//     after the JSON document was silently ignored.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"immersionoc/internal/api"
	"immersionoc/internal/placement"
)

// sleepyDecider is a Decider stub whose Decide stalls: Sleep models a
// control step that outruns the scaled-mode interval. With FirstOnly
// set only the first step stalls — the workload a ticker-driven loop
// can never recover from, but an elapsed-time loop catches up after.
type sleepyDecider struct {
	Sleep     time.Duration
	FirstOnly bool

	mu    sync.Mutex
	calls int
}

func (s *sleepyDecider) Begin(int) {}

func (s *sleepyDecider) Offer(placement.Candidate) bool { return false }

func (s *sleepyDecider) Decide(placement.Actuator) placement.Outcome {
	s.mu.Lock()
	s.calls++
	stall := !s.FirstOnly || s.calls == 1
	s.mu.Unlock()
	if stall {
		time.Sleep(s.Sleep)
	}
	return placement.Outcome{}
}

func (s *sleepyDecider) Evaluate(placement.GrantQuery) placement.Decision {
	return placement.Decision{Reason: placement.ReasonEq1Threshold}
}

// TestScaledModeRecoversLostTime pins the RunScaled fix: one control
// step stalls far longer than the step interval, and the loop must
// still converge simulated time to elapsed-wall × scale. The ticker
// version drops ~50 ticks during the stall and stays that far behind
// forever; the elapsed-time version catches up within a chunk.
func TestScaledModeRecoversLostTime(t *testing.T) {
	cfg := testFleet()
	cfg.Decider = &sleepyDecider{Sleep: 250 * time.Millisecond, FirstOnly: true}
	d, c := startDaemon(t, cfg, ModeScaled)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const scale = 60_000 // StepS=300 → one step per 5 ms of wall time
	stepS := cfg.StepS
	start := time.Now()
	go d.RunScaled(ctx, scale)

	// The stalled step costs 250 ms ≈ 50 intervals. Converged means
	// the lag is under 10 steps — far below the ~50 steps the ticker
	// loop loses permanently, far above measurement slack.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		target := time.Since(start).Seconds() * scale
		lost := target - st.SimTimeS
		if st.SimTimeS > 0 && lost < 10*stepS {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scaled mode never recovered the stalled step: sim %.0f s, wall target %.0f s (lost %.0f s = %.0f steps)",
				st.SimTimeS, target, lost, lost/stepS)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The drift gauge must be exported and bounded once caught up.
	drift := d.reg.Scope("ocd").Gauge("sim_time_drift_s").Value()
	if drift > 10*stepS {
		t.Fatalf("sim_time_drift_s = %.0f after convergence, want < %.0f", drift, 10*stepS)
	}
}

// TestStatusAnswersDuringLargeStep pins the /v1/step chunking fix: a
// long batch must release the daemon lock between chunks so /v1/status
// answers mid-flight. Pre-fix the lock is held for the whole batch
// (~3 s here) and the 1-second status deadline expires.
func TestStatusAnswersDuringLargeStep(t *testing.T) {
	cfg := testFleet()
	cfg.Decider = &sleepyDecider{Sleep: 3 * time.Millisecond}
	_, c := startDaemon(t, cfg, ModeStepped)
	ctx := context.Background()

	const steps = 1000 // ≈ 3 s of stepping, ~16 chunks of 64
	type stepResult struct {
		resp api.StepResponse
		err  error
	}
	done := make(chan stepResult, 1)
	go func() {
		resp, err := c.Step(ctx, api.StepRequest{Steps: steps})
		done <- stepResult{resp, err}
	}()

	time.Sleep(100 * time.Millisecond) // let the batch take the lock
	stCtx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	st, err := c.Status(stCtx)
	if err != nil {
		t.Fatalf("/v1/status starved while /v1/step batch in flight: %v", err)
	}
	// The snapshot read plane answers instantly — possibly from the
	// pre-batch view if the first chunk is still running. Mid-batch
	// progress must become visible well before the ~3 s batch ends,
	// proving the lock is released and the view republished per chunk.
	deadline := time.Now().Add(2 * time.Second)
	for st.SimTimeS <= 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no chunk progress visible mid-batch: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
		if st, err = c.Status(ctx); err != nil {
			t.Fatalf("/v1/status during batch: %v", err)
		}
	}

	r := <-done
	if r.err != nil {
		t.Fatalf("step batch: %v", r.err)
	}
	if r.resp.StepsRun != steps || r.resp.SimTimeS != float64(steps)*cfg.StepS {
		t.Fatalf("step batch = %+v, want %d steps to t=%v", r.resp, steps, float64(steps)*cfg.StepS)
	}
}

// TestRequestBodyHardening pins the body-handling fixes: trailing
// garbage after the JSON document is a 400, and a body over the cap is
// a 413 instead of an unbounded decode.
func TestRequestBodyHardening(t *testing.T) {
	_, c := startDaemon(t, testFleet(), ModeStepped)

	post := func(body []byte) (int, string) {
		resp, err := http.Post(c.BaseURL+"/v1/step", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(msg)
	}

	// A well-formed single document still works.
	if code, msg := post([]byte(`{"steps":1}`)); code != http.StatusOK {
		t.Fatalf("clean request: HTTP %d %s", code, msg)
	}
	// Trailing garbage after the document: 400.
	if code, msg := post([]byte(`{"steps":1} trailing`)); code != http.StatusBadRequest || !strings.Contains(msg, "trailing") {
		t.Fatalf("trailing garbage: HTTP %d %s, want 400 naming trailing data", code, msg)
	}
	// A second concatenated JSON document is trailing data too.
	if code, _ := post([]byte(`{"steps":1}{"steps":99}`)); code != http.StatusBadRequest {
		t.Fatalf("concatenated documents: HTTP %d, want 400", code)
	}
	// A body past the cap: 413.
	huge, _ := json.Marshal(map[string]any{"steps": 1, "pad": strings.Repeat("x", maxBodyBytes+1)})
	if code, msg := post(huge); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: HTTP %d %s, want 413", code, msg)
	}
}
