package ocd

// The batch-equivalence test: the same diurnal workload driven two
// ways — replayed inside dcsim.Run (the paper's evaluation path) and
// pushed VM by VM through the daemon's HTTP API in stepped time — must
// land on bit-identical KPIs. This is the contract that makes the
// daemon trustworthy: an operator experimenting against the API sees
// exactly the economics the batch evaluation promised.

import (
	"context"
	"net/http/httptest"
	"testing"

	"immersionoc/internal/api"
	"immersionoc/internal/dcsim"
	"immersionoc/internal/telemetry"
	"immersionoc/internal/vm"
)

// equivFleet is sized so the diurnal peak forces real decisions:
// grants every step, feeder cap events at the crest.
func equivFleet() dcsim.Config {
	cfg := dcsim.DefaultConfig()
	cfg.Servers = 12
	cfg.ServersPerTank = 4
	cfg.FeederBudgetW = 3900
	cfg.Trace = vm.TraceConfig{
		Seed:             7,
		ArrivalRatePerS:  0.06,
		DurationS:        24 * 3600,
		MeanLifetimeS:    3 * 3600,
		HighPerfFraction: 0.05,
	}
	return cfg
}

// diurnalEvents builds the workload: arrivals thinned to a raised-
// cosine day (trough 20% of peak).
func diurnalEvents(cfg dcsim.Config) []vm.Event {
	return vm.Events(vm.GenerateDiurnal(vm.DiurnalConfig{
		TraceConfig:    cfg.Trace,
		TroughFraction: 0.2,
		PeriodS:        cfg.Trace.DurationS,
	}))
}

func specFromVM(v *vm.VM) api.VMSpec {
	return api.VMSpec{
		ID:               v.ID,
		VCores:           v.Type.VCores,
		MemoryGB:         v.Type.MemoryGB,
		Class:            v.Class.String(),
		AvgUtil:          v.AvgUtil,
		ScalableFraction: v.ScalableFraction,
	}
}

func TestHTTPSteppedMatchesBatch(t *testing.T) {
	cfg := equivFleet()
	events := diurnalEvents(cfg)
	if len(events) < 500 {
		t.Fatalf("diurnal trace too small to exercise anything: %d events", len(events))
	}

	// Batch run: the trace replayed inside the control loop.
	batchCfg := cfg
	batchCfg.Events = events
	batch, err := dcsim.Run(batchCfg)
	if err != nil {
		t.Fatal(err)
	}
	if batch.TotalGrants == 0 || batch.CancelledOverclocks == 0 ||
		batch.CapEvents == 0 || batch.Rejected == 0 {
		t.Fatalf("workload must exercise every decision path (grants %d, cancelled %d, caps %d, rejected %d); equivalence would be vacuous",
			batch.TotalGrants, batch.CancelledOverclocks, batch.CapEvents, batch.Rejected)
	}

	// Daemon run: an open-loop fleet, the same events pushed over HTTP
	// with the same timing discipline the batch loop uses — everything
	// due at or before t lands before the step at t.
	daemonCfg := cfg
	daemonCfg.Events = []vm.Event{}
	reg := telemetry.NewRegistry()
	daemonCfg.Tel = reg.Scope("dcsim")
	d, err := New(daemonCfg, ModeStepped, reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	c := api.NewClient(ts.URL)
	ctx := context.Background()

	simT := 0.0
	ei := 0
	for simT < cfg.Trace.DurationS {
		for ei < len(events) && events[ei].TimeS <= simT {
			ev := events[ei]
			ei++
			if ev.Arrival {
				if _, err := c.Place(ctx, api.PlaceRequest{VM: specFromVM(ev.VM)}); err != nil {
					t.Fatalf("place VM %d: %v", ev.VM.ID, err)
				}
			} else {
				if _, err := c.Remove(ctx, api.RemoveRequest{ID: ev.VM.ID}); err != nil {
					t.Fatalf("remove VM %d: %v", ev.VM.ID, err)
				}
			}
		}
		sr, err := c.Step(ctx, api.StepRequest{Steps: 1})
		if err != nil {
			t.Fatal(err)
		}
		simT = sr.SimTimeS
	}

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Bit-exact equality on every cumulative KPI: both paths ran the
	// same float operations in the same order, and the VM statistics
	// survive the JSON round trip losslessly.
	if st.Rejected != batch.Rejected {
		t.Errorf("rejected: http %d, batch %d", st.Rejected, batch.Rejected)
	}
	if st.Grants != batch.TotalGrants {
		t.Errorf("grants: http %d, batch %d", st.Grants, batch.TotalGrants)
	}
	if st.Cancelled != batch.CancelledOverclocks {
		t.Errorf("cancelled: http %d, batch %d", st.Cancelled, batch.CancelledOverclocks)
	}
	if st.CapEvents != batch.CapEvents {
		t.Errorf("cap events: http %d, batch %d", st.CapEvents, batch.CapEvents)
	}
	if st.OverclockServerHours != batch.OverclockServerHours {
		t.Errorf("OC server-hours: http %v, batch %v", st.OverclockServerHours, batch.OverclockServerHours)
	}
	if st.MaxBathC != batch.MaxBathC {
		t.Errorf("max bath: http %v, batch %v", st.MaxBathC, batch.MaxBathC)
	}
	if st.MeanWearUsed != batch.MeanWearUsed {
		t.Errorf("mean wear: http %v, batch %v", st.MeanWearUsed, batch.MeanWearUsed)
	}
	t.Logf("equivalent: grants %d, cancelled %d, cap events %d, OC server-hours %.2f, rejected %d",
		st.Grants, st.Cancelled, st.CapEvents, st.OverclockServerHours, st.Rejected)
}
