package ocd

// The snapshot read plane: /v1/filter, /v1/prioritize, /v1/status,
// /healthz and /metrics served entirely from the last published
// fleetView, with zero locking and zero steady-state allocations.
//
// Correctness contract: every handler here must produce bytes
// identical to its locked oracle in daemon.go when the view was
// published at the same simulated instant — TestSnapshotMatchesLockedReads
// pins that equivalence response by response. The allocation contract
// (0 allocs/op once scratch is warm) is pinned by the serving
// benchmarks.
//
// Recycling rules:
//   - fleetView is immutable after publishLocked stores it. Views are
//     never pooled: a reader may hold one arbitrarily long, so reusing
//     a retired view's slices would race with in-flight reads. The
//     write plane pays one view allocation per publish; readers pay
//     nothing.
//   - servScratch is per-request mutable state (decode buffer, request
//     structs, response slices, the pooled JSON encoder). It cycles
//     through d.scratch, so a request owns its scratch exclusively
//     from Get to Put.
//   - telemetry.PromRenderer is not safe for concurrent use, so
//     /metrics cycles renderers through d.renderers the same way.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"

	"immersionoc/internal/api"
	"immersionoc/internal/dcsim"
	"immersionoc/internal/telemetry"
	"immersionoc/internal/vm"
)

// reasonThermal is the interned filter-failure reason for a
// guaranteed-overclock VM landing in a tank with no condenser
// headroom; the cluster-level reasons are interned as cluster.Reason*.
const reasonThermal = "thermal"

// fleetView is one published read model: the simulation's columnar
// snapshot plus the daemon-level state the read endpoints report.
type fleetView struct {
	dcsim.FleetSnapshot
	// placedVMs is len(d.vms) at publish time — the daemon's notion of
	// placed VMs (includes VMs on failed servers, unlike
	// Flat.PlacedVMs, matching the locked status path).
	placedVMs int
}

// publishLocked snapshots the simulation into a new view and makes it
// the current read model. Caller must hold d.mu. The view CHAINS off
// the previously published one: the snapshot export shares every
// column chunk that no mutation dirtied since the last publish, so a
// one-VM write republishes in O(dirty chunks) instead of O(fleet). The
// previous view is never written — readers holding it are undisturbed.
// With fullCopyPublish set the chain is broken every time and the view
// materializes from scratch: the pre-COW publication cost, kept live
// as the benchmark baseline.
func (d *Daemon) publishLocked() {
	if d.lockedReads {
		return
	}
	v := &fleetView{}
	if !d.fullCopyPublish {
		if prev := d.snap.Load(); prev != nil {
			v.FleetSnapshot = prev.FleetSnapshot
		}
	}
	d.sim.Snapshot(&v.FleetSnapshot)
	v.placedVMs = len(d.vms)
	d.snap.Store(v)
}

// Shared header value slices: assigning a pre-built []string into the
// header map is the allocation-free spelling of Header().Set.
var (
	jsonCT = []string{"application/json"}
	textCT = []string{"text/plain; charset=utf-8"}
	promCT = []string{"text/plain; version=0.0.4; charset=utf-8"}

	healthzBody = []byte("ok\n")
)

// outputProxy is the stable io.Writer a pooled json.Encoder is bound
// to; each request points it at the live ResponseWriter for the
// duration of one Encode.
type outputProxy struct{ w io.Writer }

func (p *outputProxy) Write(b []byte) (int, error) { return p.w.Write(b) }

// hostScoreSorter is the typed sort.Interface for prioritize scores:
// score descending, fleet index ascending. The order is total (index
// breaks every tie), so any stable sort yields the same permutation as
// the locked path's sort.SliceStable — and a pointer receiver converts
// to sort.Interface without allocating, where sort.Slice's closure
// would.
type hostScoreSorter struct{ s []api.HostScore }

func (h *hostScoreSorter) Len() int      { return len(h.s) }
func (h *hostScoreSorter) Swap(i, j int) { h.s[i], h.s[j] = h.s[j], h.s[i] }
func (h *hostScoreSorter) Less(i, j int) bool {
	if h.s[i].Score != h.s[j].Score {
		return h.s[i].Score > h.s[j].Score
	}
	return h.s[i].Server.Index < h.s[j].Server.Index
}

// servScratch is the pooled per-request state of the read plane.
type servScratch struct {
	body []byte // request body buffer

	freq api.FilterRequest
	preq api.PrioritizeRequest // Servers doubles as the decode buffer

	eligible []api.ServerRef
	failed   []api.FilterFailure
	scores   []api.HostScore
	sorter   hostScoreSorter

	fresp  api.FilterResponse
	presp  api.PrioritizeResponse
	status api.FleetStatus

	out outputProxy
	enc *json.Encoder
}

func newServScratch() *servScratch {
	sc := &servScratch{body: make([]byte, 0, 4096)}
	sc.enc = json.NewEncoder(&sc.out)
	return sc
}

// writeJSON encodes v through the scratch's pooled encoder, matching
// the locked path's writeJSON byte for byte (same encoder settings,
// same trailing newline; the 200 status is implicit).
func (sc *servScratch) writeJSON(w http.ResponseWriter, v any) {
	w.Header()["Content-Type"] = jsonCT
	sc.out.w = w
	err := sc.enc.Encode(v)
	sc.out.w = nil
	if err != nil {
		// A json.Encoder's first error is sticky and would poison every
		// later request recycled through this scratch — replace it.
		sc.enc = json.NewEncoder(&sc.out)
	}
}

// readBody buffers the request body into the scratch, enforcing the
// same size cap — with the same error response — as the locked path's
// http.MaxBytesReader. Returns false with the response written.
func (sc *servScratch) readBody(w http.ResponseWriter, r *http.Request) bool {
	sc.body = sc.body[:0]
	for {
		if len(sc.body) == cap(sc.body) {
			sc.body = append(sc.body, 0)[:len(sc.body)]
		}
		n, err := r.Body.Read(sc.body[len(sc.body):cap(sc.body)])
		sc.body = sc.body[:len(sc.body)+n]
		if len(sc.body) > maxBodyBytes {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", maxBodyBytes))
			return false
		}
		if err == io.EOF {
			return true
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return false
		}
	}
}

// writeAPIError renders a handler error with its apiError status,
// exactly as post() does on the locked path.
func writeAPIError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if ae, ok := err.(*apiError); ok {
		code = ae.code
	}
	writeError(w, code, err.Error())
}

// serveFilter answers /v1/filter from the published view: the same
// eligibility walk as filterLocked, over the columnar export.
func (d *Daemon) serveFilter(w http.ResponseWriter, r *http.Request) {
	d.requests.Inc()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	sc := d.scratch.Get().(*servScratch)
	defer d.scratch.Put(sc)
	if !sc.readBody(w, r) {
		return
	}
	sc.freq = api.FilterRequest{}
	if !parseFilterRequest(sc.body, &sc.freq) {
		sc.freq = api.FilterRequest{}
		if !strictDecode(w, sc.body, &sc.freq) {
			return
		}
	}
	if v := sc.freq.Vers; v != "" && v != api.Version {
		writeError(w, http.StatusBadRequest, "unsupported version "+v)
		return
	}
	class, err := classFromSpec(&sc.freq.VM)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	view := d.snap.Load()
	flat := &view.Flat
	highPerf := class == vm.HighPerf
	sc.eligible = sc.eligible[:0]
	sc.failed = sc.failed[:0]
	for i := 0; i < flat.Servers; i++ {
		tank := i / view.ServersPerTank
		ref := api.ServerRef{Index: i, ID: flat.ID.At(i), Tank: tank}
		reason := flat.Explain(i, sc.freq.VM.VCores, sc.freq.VM.MemoryGB, highPerf)
		if reason == "" && highPerf && view.OCPerTank[tank] >= view.TankBudget[tank] {
			// A guaranteed-overclock VM needs condenser headroom in the
			// tank, not just core headroom on the server.
			reason = reasonThermal
		}
		if reason == "" {
			sc.eligible = append(sc.eligible, ref)
		} else {
			sc.failed = append(sc.failed, api.FilterFailure{Server: ref, Reason: reason})
		}
	}
	sc.fresp = api.FilterResponse{Vers: api.Version, Eligible: sc.eligible, Failed: sc.failed}
	sc.writeJSON(w, &sc.fresp)
}

// servePrioritize answers /v1/prioritize from the published view,
// replicating prioritizeLocked's scoring arithmetic expression for
// expression (the fleet is spec-uniform, so the capacity term hoists
// out of the loop).
func (d *Daemon) servePrioritize(w http.ResponseWriter, r *http.Request) {
	d.requests.Inc()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	sc := d.scratch.Get().(*servScratch)
	defer d.scratch.Put(sc)
	if !sc.readBody(w, r) {
		return
	}
	sc.preq.Vers = ""
	sc.preq.VM = api.VMSpec{}
	sc.preq.Servers = sc.preq.Servers[:0]
	if !parsePrioritizeRequest(sc.body, &sc.preq) {
		sc.preq.Vers = ""
		sc.preq.VM = api.VMSpec{}
		sc.preq.Servers = sc.preq.Servers[:0]
		if !strictDecode(w, sc.body, &sc.preq) {
			return
		}
	}
	if v := sc.preq.Vers; v != "" && v != api.Version {
		writeError(w, http.StatusBadRequest, "unsupported version "+v)
		return
	}
	if _, err := classFromSpec(&sc.preq.VM); err != nil {
		writeAPIError(w, err)
		return
	}
	view := d.snap.Load()
	flat := &view.Flat
	capV := float64(flat.Spec.PCores)
	if flat.OversubRatio > 0 && flat.Spec.Overclockable {
		capV = math.Floor(capV * (1 + flat.OversubRatio))
	}
	vcores := float64(sc.preq.VM.VCores)
	sc.scores = sc.scores[:0]
	for _, i := range sc.preq.Servers {
		if i < 0 || i >= flat.Servers {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("server %d out of range", i))
			return
		}
		headroom := (capV - float64(flat.VCoresUsed.At(i)) - vcores) / capV
		headroom = math.Max(0, math.Min(1, headroom))
		credit := 1.0
		if view.WearProRata.At(i) > 0 {
			credit = math.Max(0, math.Min(1, 1-view.WearUsed.At(i)/view.WearProRata.At(i)))
		}
		sc.scores = append(sc.scores, api.HostScore{
			Server: api.ServerRef{Index: i, ID: flat.ID.At(i), Tank: i / view.ServersPerTank},
			Score:  100 * (0.6*headroom + 0.4*credit),
		})
	}
	sc.sorter.s = sc.scores
	sort.Stable(&sc.sorter)
	sc.sorter.s = nil
	sc.presp = api.PrioritizeResponse{Vers: api.Version, Scores: sc.scores}
	sc.writeJSON(w, &sc.presp)
}

// serveStatus answers /v1/status from the published view's KPI block.
func (d *Daemon) serveStatus(w http.ResponseWriter, r *http.Request) {
	d.requests.Inc()
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	view := d.snap.Load()
	sc := d.scratch.Get().(*servScratch)
	defer d.scratch.Put(sc)
	sc.status = api.FleetStatus{
		Vers:                 api.Version,
		SimTimeS:             view.SimTimeS,
		StepS:                view.StepS,
		Mode:                 d.mode,
		Servers:              view.Flat.Servers,
		Tanks:                len(view.OCPerTank),
		PlacedVMs:            view.placedVMs,
		Density:              view.Flat.Density,
		Rejected:             view.Rejected,
		RowPowerW:            view.RowPowerW,
		MaxBathC:             view.MaxBathC,
		Overclocked:          view.Overclocked,
		Grants:               view.TotalGrants,
		Cancelled:            view.CancelledOverclocks,
		CapEvents:            view.CapEvents,
		OverclockServerHours: view.OverclockServerHours,
		MeanWearUsed:         view.MeanWearUsed,
	}
	sc.writeJSON(w, &sc.status)
}

// serveHealthz mirrors the locked liveness probe: any method, no
// request accounting, a constant body.
func (d *Daemon) serveHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header()["Content-Type"] = textCT
	_, _ = w.Write(healthzBody)
}

// serveMetrics renders the Prometheus exposition through a pooled
// plan-caching renderer, byte-identical to the locked path's
// Snapshot().WritePrometheus.
func (d *Daemon) serveMetrics(w http.ResponseWriter, r *http.Request) {
	d.requests.Inc()
	rend := d.renderers.Get().(*telemetry.PromRenderer)
	w.Header()["Content-Type"] = promCT
	_ = rend.Render(w)
	d.renderers.Put(rend)
}
