package ocd

// Differential tests pinning the snapshot read plane to the locked
// read plane. Two daemons with identical fleets are driven through
// their Handlers with an identical request stream — mutations included
// — and every read response (status line, Content-Type, body) must
// match byte for byte. One daemon serves reads from published
// snapshots; the twin has lockedReads set, routing the same endpoints
// through the pre-change mutex-and-live-Sim path. Because the write
// plane is shared code and deterministic, the twins stay in lockstep,
// so any divergence is the read plane's fault: a snapshot field copied
// wrong, a scoring expression drifting, a decode error shaped
// differently, an exposition byte out of place.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"immersionoc/internal/api"
	"immersionoc/internal/dcsim"
	"immersionoc/internal/telemetry"
)

// twinDaemons builds the snapshot daemon and its locked-reads twin
// over identical fleets. Telemetry registries carry only the ocd scope
// (no dcsim wall-clock histograms), so /metrics bodies are
// deterministic and comparable.
func twinDaemons(t *testing.T, cfg dcsim.Config) (snap, locked *Daemon) {
	t.Helper()
	d1, err := New(cfg, ModeStepped, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := New(cfg, ModeStepped, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	d2.lockedReads = true
	return d1, d2
}

// hit drives one raw request through a handler and captures the
// response.
func hit(h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	return rec
}

// TestSnapshotMatchesLockedReads is the end-to-end differential: a
// mutation-heavy session interleaved with a read corpus spanning every
// read endpoint, every request class, and the whole decode error
// surface. Each read must come back identical from both planes.
func TestSnapshotMatchesLockedReads(t *testing.T) {
	cfg := testFleet()
	cfg.FeederBudgetW = 2100 // just above idle draw: capping and denial paths engage
	dSnap, dLocked := twinDaemons(t, cfg)
	hSnap, hLocked := dSnap.Handler(), dLocked.Handler()

	post := func(path, body string) {
		t.Helper()
		a := hit(hSnap, http.MethodPost, path, body)
		b := hit(hLocked, http.MethodPost, path, body)
		if a.Code != b.Code || a.Body.String() != b.Body.String() {
			t.Fatalf("write %s %s diverged: snapshot HTTP %d %q vs locked HTTP %d %q",
				path, body, a.Code, a.Body.String(), b.Code, b.Body.String())
		}
	}

	// The read corpus: valid requests across classes and shapes, plus
	// every decode/validation error the read plane can produce. The
	// malformed entries double as the fast-parser differential — each
	// must fall back to the strict pipeline and reproduce its exact
	// error bytes.
	reads := []struct{ method, path, body string }{
		{"POST", "/v1/filter", `{"version":"v1","vm":{"id":1,"vcores":4,"memory_gb":16,"avg_util":0.5}}`},
		{"POST", "/v1/filter", `{"vm":{"id":2,"vcores":16,"memory_gb":64,"class":"high-perf","avg_util":0.9,"scalable_fraction":0.5}}`},
		{"POST", "/v1/filter", `{"vm":{"id":3,"vcores":2,"memory_gb":8,"class":"harvest","avg_util":0.1}}`},
		{"POST", "/v1/filter", `{"vm":{"id":4,"vcores":48,"memory_gb":512,"avg_util":0.2}}`},
		{"POST", "/v1/filter", ` { "vm" : { "id" : 5 , "vcores" : 4 , "memory_gb" : 1e1 , "avg_util" : 2.5e-1 } } `},
		{"POST", "/v1/filter", `{"vm":{"id":1},"vm":{"vcores":4,"memory_gb":16,"avg_util":0.5}}`}, // duplicate key merge
		{"POST", "/v1/filter", `{"vm":{"id":6,"vcores":4,"memory_gb":16,"avg_util":0.5},"extra":[1,{"x":"y\n"}]}`},
		{"POST", "/v1/filter", `{"version":"v1","vm":{"id":7,"vcores":4,"memory_gb":16,"avg_util":0.5}}`},
		{"POST", "/v1/filter", `{"version":"v2","vm":{"id":1,"vcores":4,"memory_gb":16}}`},
		{"POST", "/v1/filter", `{"vm":{"id":1,"vcores":0,"memory_gb":16}}`},
		{"POST", "/v1/filter", `{"vm":{"id":1,"vcores":4,"memory_gb":16,"class":"turbo"}}`},
		{"POST", "/v1/filter", `{"vm":{"id":1.5,"vcores":4,"memory_gb":16}}`},
		{"POST", "/v1/filter", `{"vm":{"id":01,"vcores":4,"memory_gb":16}}`},
		{"POST", "/v1/filter", `{"vm":{"class":null,"id":1,"vcores":4,"memory_gb":16,"avg_util":0.5}}`},
		{"POST", "/v1/filter", `{"vm":{"id":1,"vcores":4,"memory_gb":16}} trailing`},
		{"POST", "/v1/filter", `{"vm":{"id":1,"vcores":4,"memory_gb":16}}{"vm":{}}`},
		{"POST", "/v1/filter", `{`},
		{"POST", "/v1/filter", `null`},
		{"POST", "/v1/filter", `5`},
		{"POST", "/v1/filter", ``},
		{"GET", "/v1/filter", ""},
		{"POST", "/v1/prioritize", `{"version":"v1","vm":{"id":1,"vcores":4,"memory_gb":16,"avg_util":0.5},"servers":[0,1,2,3,4,5,6,7,8,9,10,11]}`},
		{"POST", "/v1/prioritize", `{"vm":{"id":1,"vcores":8,"memory_gb":32,"avg_util":0.7},"servers":[11,3,3,0]}`},
		{"POST", "/v1/prioritize", `{"vm":{"id":1,"vcores":4,"memory_gb":16},"servers":[]}`},
		{"POST", "/v1/prioritize", `{"vm":{"id":1,"vcores":4,"memory_gb":16},"servers":[0],"servers":[2,5]}`},
		{"POST", "/v1/prioritize", `{"vm":{"id":1,"vcores":4,"memory_gb":16},"servers":[12]}`},
		{"POST", "/v1/prioritize", `{"vm":{"id":1,"vcores":4,"memory_gb":16},"servers":[-1]}`},
		{"POST", "/v1/prioritize", `{"vm":{"id":1,"vcores":4,"memory_gb":16},"servers":[1e2]}`},
		{"POST", "/v1/prioritize", `{"vm":{"id":1,"vcores":4,"memory_gb":16},"servers":[0,]}`},
		{"GET", "/v1/status", ""},
		{"POST", "/v1/status", ""},
		{"GET", "/healthz", ""},
		{"GET", "/metrics", ""},
	}

	checkpoint := func(stage string) {
		t.Helper()
		for _, rd := range reads {
			a := hit(hSnap, rd.method, rd.path, rd.body)
			b := hit(hLocked, rd.method, rd.path, rd.body)
			if a.Code != b.Code {
				t.Fatalf("%s: %s %s %q: snapshot HTTP %d vs locked HTTP %d\nsnapshot: %s\nlocked:   %s",
					stage, rd.method, rd.path, rd.body, a.Code, b.Code, a.Body.String(), b.Body.String())
			}
			if ct1, ct2 := a.Header().Get("Content-Type"), b.Header().Get("Content-Type"); ct1 != ct2 {
				t.Fatalf("%s: %s %s: Content-Type %q vs %q", stage, rd.method, rd.path, ct1, ct2)
			}
			if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
				t.Fatalf("%s: %s %s %q diverged:\nsnapshot: %s\nlocked:   %s",
					stage, rd.method, rd.path, rd.body, a.Body.String(), b.Body.String())
			}
		}
	}

	checkpoint("empty fleet")

	// Fill the fleet with a mixed population: regular, high-perf and
	// harvest VMs, hot and cold, until placements start getting
	// rejected.
	for i := 0; i < 40; i++ {
		class := ""
		switch i % 4 {
		case 1:
			class = "high-perf"
		case 3:
			class = "harvest"
		}
		spec := api.VMSpec{
			ID: 100 + i, VCores: 2 << (i % 4), MemoryGB: float64(int(8) << (i % 4)),
			Class: class, AvgUtil: 0.2 + 0.05*float64(i%10), ScalableFraction: 0.5,
		}
		data, _ := json.Marshal(api.PlaceRequest{Vers: api.Version, VM: spec})
		post("/v1/place", string(data))
	}
	checkpoint("packed fleet")

	// Overclock grants until tank budgets and the tight feeder cap bite.
	for i := 0; i < 12; i++ {
		post("/v1/overclock", fmt.Sprintf(`{"server":%d}`, i))
	}
	checkpoint("overclocked fleet")

	// Step: wear accrues, baths heat, the capper may claw grants back.
	post("/v1/step", `{"steps":200}`)
	checkpoint("after stepping")

	// Churn: departures (including a never-placed ID) and a cancel.
	for _, id := range []int{100, 104, 108, 999} {
		post("/v1/remove", fmt.Sprintf(`{"id":%d}`, id))
	}
	post("/v1/overclock", `{"server":2,"cancel":true}`)
	checkpoint("after churn")

	// Failed-server churn: no HTTP endpoint fails hardware, so the
	// failure is injected under the daemon lock on both twins, as an
	// operator tool would. The emptied servers' power deltas are folded
	// in fleet order before the republish so the published row sum stays
	// bit-exact with the locked twin, whose read path folds on demand.
	fail := func(d *Daemon) []int {
		d.mu.Lock()
		defer d.mu.Unlock()
		var displaced []int
		for _, v := range d.sim.Cluster().FailServers(2) {
			displaced = append(displaced, v.ID)
		}
		for i := 0; i < d.sim.ServerCount(); i++ {
			d.sim.RefreshServerPower(i)
		}
		d.publishAfterWriteLocked()
		return displaced
	}
	displaced := fail(dSnap)
	fail(dLocked)
	checkpoint("after server failures")

	// Remove-after-fail: a displaced VM is still in the daemon's placed
	// set but no longer hosted, so its departure must be a cluster-side
	// no-op that still answers Removed:true — and both planes must agree
	// on the shrunken placed count afterwards.
	for _, id := range displaced {
		post("/v1/remove", fmt.Sprintf(`{"id":%d}`, id))
	}
	post("/v1/remove", `{"id":424242}`) // never placed: Removed:false
	checkpoint("after remove-after-fail")

	// Oversized body: same 413 from both planes.
	huge := `{"vm":{"id":1,"vcores":4,"memory_gb":16},"pad":"` + strings.Repeat("x", maxBodyBytes+1) + `"}`
	a := hit(hSnap, http.MethodPost, "/v1/filter", huge)
	b := hit(hLocked, http.MethodPost, "/v1/filter", huge)
	if a.Code != http.StatusRequestEntityTooLarge || b.Code != a.Code || a.Body.String() != b.Body.String() {
		t.Fatalf("oversized body: snapshot HTTP %d %q vs locked HTTP %d %q",
			a.Code, a.Body.String(), b.Code, b.Body.String())
	}
}

// TestDecodeFastMatchesStrict differentially pins the fast parser
// against encoding/json at the parser level: for every corpus entry
// the fast path either declines or produces exactly the struct the
// strict pipeline does.
func TestDecodeFastMatchesStrict(t *testing.T) {
	filterBodies := []string{
		`{"version":"v1","vm":{"id":9,"vcores":4,"memory_gb":16,"class":"high-perf","avg_util":0.45,"scalable_fraction":0.6}}`,
		`{"vm":{"id":-3,"vcores":1,"memory_gb":0.5,"avg_util":1}}`,
		`{}`,
		` {"vm":{}} `,
		`{"vm":{"id":0,"vcores":2,"memory_gb":8,"avg_util":1e-3}}`,
		`{"vm":{"id":1},"vm":{"vcores":7}}`,
		`{"vm":{"id":2147483647,"vcores":4,"memory_gb":1.7976931348623157e308}}`,
		`{"version":"","vm":{"id":1,"vcores":4,"memory_gb":16}}`,
		`{"vm":{"id":1,"vcores":4,"memory_gb":16,"class":"harvest"}}`,
		`{"vm":{"id":1,"vcores":4,"memory_gb":-0.0}}`,
	}
	for _, body := range filterBodies {
		var fast, strict api.FilterRequest
		if !parseFilterRequest([]byte(body), &fast) {
			t.Fatalf("fast parser declined the common wire form %q", body)
		}
		if err := json.Unmarshal([]byte(body), &strict); err != nil {
			t.Fatalf("strict decode of %q: %v", body, err)
		}
		if fast != strict {
			t.Fatalf("decode of %q diverged:\nfast:   %+v\nstrict: %+v", body, fast, strict)
		}
	}

	prioritizeBodies := []string{
		`{"version":"v1","vm":{"id":1,"vcores":4,"memory_gb":16},"servers":[0,5,3]}`,
		`{"vm":{"id":1,"vcores":4,"memory_gb":16},"servers":[]}`,
		`{"servers":[1],"servers":[7,8,9]}`,
		`{"servers":[ 0 , 1 ]}`,
	}
	for _, body := range prioritizeBodies {
		fast := api.PrioritizeRequest{Servers: make([]int, 0, 16)}
		var strict api.PrioritizeRequest
		if !parsePrioritizeRequest([]byte(body), &fast) {
			t.Fatalf("fast parser declined the common wire form %q", body)
		}
		if err := json.Unmarshal([]byte(body), &strict); err != nil {
			t.Fatalf("strict decode of %q: %v", body, err)
		}
		if fast.Vers != strict.Vers || fast.VM != strict.VM ||
			len(fast.Servers) != len(strict.Servers) {
			t.Fatalf("decode of %q diverged:\nfast:   %+v\nstrict: %+v", body, fast, strict)
		}
		for i := range fast.Servers {
			if fast.Servers[i] != strict.Servers[i] {
				t.Fatalf("decode of %q diverged at servers[%d]", body, i)
			}
		}
	}

	// Everything here must be DECLINED (never mis-parsed): inputs the
	// strict pipeline rejects, plus valid JSON outside the fast subset.
	declined := []string{
		``, `null`, `5`, `"x"`, `[]`, `{`, `{"vm":}`,
		`{"vm":{"id":1}} x`, `{"vm":{"id":1}}{"vm":{}}`,
		`{"vm":{"id":1.5}}`, `{"vm":{"id":1e2}}`, `{"vm":{"id":01}}`,
		`{"vm":{"id":+1}}`, `{"vm":{"id":-}}`, `{"vm":{"id":1.}}`,
		`{"vm":{"id":.5}}`, `{"vm":{"id":1e}}`, `{"vm":{"id":00}}`,
		`{"unknown":1}`, `{"vm":{"weird":1}}`, `{"vm":null}`,
		`{"version":null}`,
		`{"vm":{"class":"a\"b"}}`, `{"vm":{"id":1},}`,
		`{"vm":{"class":"café"}}`,
	}
	for _, body := range declined {
		var req api.FilterRequest
		if parseFilterRequest([]byte(body), &req) {
			t.Errorf("fast parser accepted %q; must decline to the strict fallback", body)
		}
		var preq api.PrioritizeRequest
		if parsePrioritizeRequest([]byte(body), &preq) {
			t.Errorf("fast prioritize parser accepted %q; must decline", body)
		}
	}
	for _, body := range []string{`{"servers":[1,]}`, `{"servers":[1.5]}`, `{"servers":null}`, `{"servers":[null]}`} {
		var preq api.PrioritizeRequest
		if parsePrioritizeRequest([]byte(body), &preq) {
			t.Errorf("fast prioritize parser accepted %q; must decline", body)
		}
	}

	// Zero-allocation contract of the accepted path.
	body := []byte(`{"version":"v1","vm":{"id":9,"vcores":4,"memory_gb":16,"class":"high-perf","avg_util":0.45}}`)
	var req api.FilterRequest
	if n := testing.AllocsPerRun(100, func() {
		req = api.FilterRequest{}
		if !parseFilterRequest(body, &req) {
			t.Fatal("declined")
		}
	}); n != 0 {
		t.Fatalf("fast filter decode allocated %v times per run, want 0", n)
	}
	pbody := []byte(`{"version":"v1","vm":{"id":1,"vcores":4,"memory_gb":16},"servers":[0,1,2,3,4,5,6,7]}`)
	preq := api.PrioritizeRequest{Servers: make([]int, 0, 16)}
	if n := testing.AllocsPerRun(100, func() {
		preq.Vers = ""
		preq.VM = api.VMSpec{}
		preq.Servers = preq.Servers[:0]
		if !parsePrioritizeRequest(pbody, &preq) {
			t.Fatal("declined")
		}
	}); n != 0 {
		t.Fatalf("fast prioritize decode allocated %v times per run, want 0", n)
	}
}
