package ocd

// Publish-path unit tests: the steady-state allocation bound of a
// chained publish, and the write-plane group-commit semantics
// (leading-edge publish, burst coalescing, trailing-edge flush, step
// absorption, and — under -race with concurrent writers — the
// guarantee that coalescing never leaves the latest write unpublished).

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"immersionoc/internal/dcsim"
	"immersionoc/internal/telemetry"
	"immersionoc/internal/vm"
)

// TestPublishAllocsBoundedByDirtyChunks pins the O(changed state)
// claim at the allocation level: a publish after a single-server
// mutation allocates the new view plus one chunk header and one
// re-materialized chunk per column — a count that depends on how many
// chunks were dirtied, not on how many servers the fleet has. The same
// mutation against a 10× larger fleet must allocate exactly as much.
func TestPublishAllocsBoundedByDirtyChunks(t *testing.T) {
	counts := map[int]float64{}
	for _, n := range []int{2048, 20480} {
		cfg := dcsim.DefaultConfig()
		cfg.Servers = n
		cfg.Events = []vm.Event{}
		d, err := New(cfg, ModeStepped, telemetry.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		// The mutation is driven below the API layer with a prebuilt VM
		// so the measurement isolates the publish path from request
		// decoding and VM construction.
		v := &vm.VM{
			ID:      1 << 30,
			Type:    vm.Type{Name: "v8", VCores: 8, MemoryGB: 32},
			AvgUtil: 0.6,
		}
		cycle := func() {
			d.mu.Lock()
			if _, err := d.sim.Place(v); err != nil {
				d.mu.Unlock()
				t.Fatal(err)
			}
			d.publishLocked()
			d.sim.Remove(v)
			d.publishLocked()
			d.mu.Unlock()
		}
		cycle() // warm the destination chain
		counts[n] = testing.AllocsPerRun(20, cycle)
	}
	if counts[2048] != counts[20480] {
		t.Fatalf("publish allocations scale with fleet size: %v at 2048 servers vs %v at 20480",
			counts[2048], counts[20480])
	}
	// Two publishes per cycle; each is one view plus (header + chunk)
	// per flat column. Leave headroom for a column or two more, but a
	// fleet-proportional count must fail.
	if counts[2048] > 40 {
		t.Fatalf("publish cycle allocates %v times, want ≤ 40 (view + per-dirty-chunk only)", counts[2048])
	}
}

// groupCommitDaemon builds a stepped daemon with its Handler and a
// place helper issuing single-VM placements through the real HTTP
// write path.
func groupCommitDaemon(t *testing.T, window time.Duration) (*Daemon, func(id int)) {
	t.Helper()
	d, err := New(testFleet(), ModeStepped, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	d.SetPublishMaxLatency(window)
	h := d.Handler()
	place := func(id int) {
		t.Helper()
		rec := hit(h, http.MethodPost, "/v1/place",
			fmt.Sprintf(`{"vm":{"id":%d,"vcores":2,"memory_gb":8,"avg_util":0.5}}`, id))
		if rec.Code != http.StatusOK {
			t.Fatalf("place %d: HTTP %d %s", id, rec.Code, rec.Body.String())
		}
	}
	return d, place
}

// TestGroupCommitCoalesces drives the group-commit state machine
// deterministically with an hour-long window: the leading edge
// publishes immediately, a burst inside the window coalesces into a
// pending view with one armed flush, the (manually fired) trailing
// flush publishes the latest coalesced state, and a step absorbs any
// pending write into its unconditional publish.
func TestGroupCommitCoalesces(t *testing.T) {
	d, place := groupCommitDaemon(t, time.Hour)

	// Backdate the last publish so the first write lands outside the
	// window.
	d.mu.Lock()
	d.lastPublish = time.Now().Add(-2 * time.Hour)
	d.mu.Unlock()

	v0 := d.snap.Load()
	place(1)
	v1 := d.snap.Load()
	if v1 == v0 || v1.placedVMs != 1 {
		t.Fatalf("leading-edge write did not publish immediately (placedVMs=%d)", v1.placedVMs)
	}

	place(2)
	place(3)
	if got := d.snap.Load(); got != v1 {
		t.Fatalf("burst writes inside the window published eagerly, want coalesced")
	}
	d.mu.Lock()
	pending, armed := d.pendingView, d.flushArmed
	d.mu.Unlock()
	if !pending || !armed {
		t.Fatalf("coalesced burst: pendingView=%v flushArmed=%v, want both true", pending, armed)
	}

	d.flushPending()
	v2 := d.snap.Load()
	if v2 == v1 || v2.placedVMs != 3 {
		t.Fatalf("trailing flush published placedVMs=%d, want 3", v2.placedVMs)
	}

	place(4)
	if d.snap.Load() != v2 {
		t.Fatalf("write after a flush should coalesce again")
	}
	rec := hit(d.Handler(), http.MethodPost, "/v1/step", `{"steps":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("step: HTTP %d %s", rec.Code, rec.Body.String())
	}
	v3 := d.snap.Load()
	if v3.placedVMs != 4 {
		t.Fatalf("step publish skipped the pending write: placedVMs=%d, want 4", v3.placedVMs)
	}
	d.mu.Lock()
	pending = d.pendingView
	d.mu.Unlock()
	if pending {
		t.Fatalf("step publish left pendingView set")
	}
}

// TestGroupCommitTrailingFlush checks the max-latency bound with a
// real timer: a coalesced write becomes visible within (roughly) one
// window without any further write or step arriving.
func TestGroupCommitTrailingFlush(t *testing.T) {
	d, place := groupCommitDaemon(t, 25*time.Millisecond)
	d.mu.Lock()
	d.lastPublish = time.Now().Add(-time.Second)
	d.mu.Unlock()

	place(1) // leading edge: published
	place(2) // inside the window: coalesced, flush armed
	deadline := time.Now().Add(5 * time.Second)
	for d.snap.Load().placedVMs != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("coalesced write still unpublished after 5s (placedVMs=%d)",
				d.snap.Load().placedVMs)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentWritersCoalescedPublish hammers a scaled-mode daemon —
// parallel placers/removers/overclockers, concurrent snapshot readers,
// RunScaled stepping and publishing underneath, all with a small
// publish window — and then requires the published view to converge on
// the exact final write state: coalescing may defer a write but must
// never lose one. Run under -race in CI's multicore leg.
func TestConcurrentWritersCoalescedPublish(t *testing.T) {
	cfg := testFleet()
	cfg.Servers = 48
	cfg.ServersPerTank = 8
	d, err := New(cfg, ModeScaled, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	d.SetPublishMaxLatency(2 * time.Millisecond)
	h := d.Handler()

	ctx, cancel := context.WithCancel(context.Background())
	var simWG sync.WaitGroup
	simWG.Add(1)
	go func() {
		defer simWG.Done()
		d.RunScaled(ctx, 120)
	}()

	readersDone := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-readersDone:
					return
				default:
				}
				hit(h, http.MethodGet, "/v1/status", "")
				hit(h, http.MethodPost, "/v1/filter",
					`{"vm":{"id":1,"vcores":4,"memory_gb":16,"avg_util":0.5}}`)
			}
		}()
	}

	var writerWG sync.WaitGroup
	for w := 0; w < 3; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			base := 1000 * (w + 1)
			for i := 0; i < 80; i++ {
				hit(h, http.MethodPost, "/v1/place",
					fmt.Sprintf(`{"vm":{"id":%d,"vcores":2,"memory_gb":8,"avg_util":0.4}}`, base+i))
				hit(h, http.MethodPost, "/v1/overclock",
					fmt.Sprintf(`{"server":%d}`, (w*16+i)%cfg.Servers))
				if i >= 10 {
					// Trail removals 10 behind so the fleet stays churning
					// but each worker leaves its last 10 placements live.
					hit(h, http.MethodPost, "/v1/remove",
						fmt.Sprintf(`{"id":%d}`, base+i-10))
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(readersDone)
	readerWG.Wait()
	cancel()
	simWG.Wait()

	// Quiesced: the only publisher left is the trailing flush timer.
	// The published view must converge on exactly the daemon's final
	// placed set.
	d.mu.Lock()
	want := len(d.vms)
	d.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for d.snap.Load().placedVMs != want {
		if time.Now().After(deadline) {
			t.Fatalf("published view stuck at placedVMs=%d, want %d: a coalesced publish lost the latest write",
				d.snap.Load().placedVMs, want)
		}
		time.Sleep(time.Millisecond)
	}
}
