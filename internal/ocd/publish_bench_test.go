package ocd

// Publish-path benchmarks: the cost of making one write (or one step
// batch) visible to the read plane. Each benchmark has two arms. The
// plain arm is the shipped path: views chain through the snapshot's
// chunked copy-on-write columns, so a publish re-materializes only the
// chunks that mutations dirtied. The FullCopy arm flips
// SetFullCopyPublish, breaking the chain so every publish rebuilds
// every column — the pre-COW publication cost, kept live so the A/B
// never goes stale. bench_baseline.json carries the FullCopy arm's
// numbers as the plain arm's baseline, so `make bench` reports the COW
// speedup directly.
//
// The gate: at 100k servers a single-placement publish must be ≥20×
// cheaper chained than fully copied.

import (
	"fmt"
	"testing"

	"immersionoc/internal/api"
	"immersionoc/internal/dcsim"
	"immersionoc/internal/telemetry"
	"immersionoc/internal/vm"
)

// publishDaemon builds a stepped daemon over n servers, packed ~60%
// through the real place path, with one view published.
func publishDaemon(b *testing.B, n int, fullCopy bool) *Daemon {
	b.Helper()
	cfg := dcsim.DefaultConfig()
	cfg.Servers = n
	cfg.Events = []vm.Event{}
	d, err := New(cfg, ModeStepped, telemetry.NewRegistry())
	if err != nil {
		b.Fatal(err)
	}
	d.SetFullCopyPublish(fullCopy)
	d.mu.Lock()
	for i := 0; i < n*3/5; i++ {
		resp, err := d.place(api.PlaceRequest{VM: api.VMSpec{
			ID: i, VCores: 8, MemoryGB: 32, AvgUtil: 0.6,
		}})
		if err != nil || !resp.Placed {
			d.mu.Unlock()
			b.Fatalf("prefill place %d: %v %+v", i, err, resp)
		}
	}
	d.publishNowLocked()
	d.mu.Unlock()
	return d
}

// benchPublishPlace measures one write-plane cycle: a single placement
// (or its departure) plus the snapshot publication that makes it
// visible. In the chained arm only the mutated server's chunk
// re-materializes; in the full-copy arm the whole fleet does.
func benchPublishPlace(b *testing.B, n int, fullCopy bool) {
	d := publishDaemon(b, n, fullCopy)
	id := 1 << 30
	placed := false
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.mu.Lock()
		if placed {
			if _, err := d.remove(api.RemoveRequest{ID: id}); err != nil {
				d.mu.Unlock()
				b.Fatal(err)
			}
			id++
		} else {
			if _, err := d.place(api.PlaceRequest{VM: api.VMSpec{
				ID: id, VCores: 8, MemoryGB: 32, AvgUtil: 0.6,
			}}); err != nil {
				d.mu.Unlock()
				b.Fatal(err)
			}
		}
		placed = !placed
		d.publishLocked()
		d.mu.Unlock()
	}
}

// benchPublishStep isolates the republish that follows a simulation
// step: the step itself runs off the clock, the publication of its
// fleet-wide wear/thermal drift is what's timed. The chained arm still
// rebuilds both wear columns (a step dirties every server's wear) but
// shares the untouched placement columns; the full-copy arm rebuilds
// everything.
func benchPublishStep(b *testing.B, n int, fullCopy bool) {
	d := publishDaemon(b, n, fullCopy)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d.mu.Lock()
		d.sim.Step()
		b.StartTimer()
		d.publishNowLocked()
		d.mu.Unlock()
	}
}

func BenchmarkPublishPlace(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("servers=%d", n), func(b *testing.B) { benchPublishPlace(b, n, false) })
	}
}

func BenchmarkPublishPlaceFullCopy(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("servers=%d", n), func(b *testing.B) { benchPublishPlace(b, n, true) })
	}
}

func BenchmarkPublishStep(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("servers=%d", n), func(b *testing.B) { benchPublishStep(b, n, false) })
	}
}

func BenchmarkPublishStepFullCopy(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("servers=%d", n), func(b *testing.B) { benchPublishStep(b, n, true) })
	}
}
