package ocd

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"immersionoc/internal/api"
	"immersionoc/internal/dcsim"
	"immersionoc/internal/telemetry"
	"immersionoc/internal/vm"
)

// testFleet is a small open-loop fleet: 12 servers in 3 tanks, no
// feeder limit unless a test sets one.
func testFleet() dcsim.Config {
	cfg := dcsim.DefaultConfig()
	cfg.Servers = 12
	cfg.ServersPerTank = 4
	cfg.FeederBudgetW = 0
	cfg.Events = []vm.Event{}
	return cfg
}

func startDaemon(t *testing.T, cfg dcsim.Config, mode string) (*Daemon, *api.Client) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg.Tel = reg.Scope("dcsim")
	d, err := New(cfg, mode, reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(ts.Close)
	return d, api.NewClient(ts.URL)
}

// bigVM is a 16-core VM hot enough that two of them push a 48-core
// server past the Equation 1 threshold (2 × 16 × 0.9 = 28.8 > 24).
func bigVM(id int) api.VMSpec {
	return api.VMSpec{ID: id, VCores: 16, MemoryGB: 64, AvgUtil: 0.9, ScalableFraction: 0.5}
}

func TestDaemonLifecycle(t *testing.T) {
	_, c := startDaemon(t, testFleet(), ModeStepped)
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Servers != 12 || st.Tanks != 3 || st.Mode != ModeStepped || st.SimTimeS != 0 {
		t.Fatalf("initial status = %+v", st)
	}

	// Filter: an empty fleet takes anything.
	fr, err := c.Filter(ctx, api.FilterRequest{VM: bigVM(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Eligible) != 12 || len(fr.Failed) != 0 {
		t.Fatalf("filter on empty fleet: %d eligible, %d failed", len(fr.Eligible), len(fr.Failed))
	}

	// Prioritize: scores sorted descending, all in [0, 100].
	pr, err := c.Prioritize(ctx, api.PrioritizeRequest{VM: bigVM(1), Servers: []int{0, 5, 11}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Scores) != 3 {
		t.Fatalf("prioritize returned %d scores", len(pr.Scores))
	}
	for i, s := range pr.Scores {
		if s.Score < 0 || s.Score > 100 {
			t.Errorf("score %d out of range: %v", i, s.Score)
		}
		if i > 0 && s.Score > pr.Scores[i-1].Score {
			t.Errorf("scores not descending at %d", i)
		}
	}

	// Place two hot VMs; best-fit consolidates them on one server.
	p1, err := c.Place(ctx, api.PlaceRequest{VM: bigVM(1)})
	if err != nil || !p1.Placed {
		t.Fatalf("place 1: %+v, %v", p1, err)
	}
	p2, err := c.Place(ctx, api.PlaceRequest{VM: bigVM(2)})
	if err != nil || !p2.Placed {
		t.Fatalf("place 2: %+v, %v", p2, err)
	}
	if p1.Server.Index != p2.Server.Index {
		t.Fatalf("best-fit spread the VMs: %d vs %d", p1.Server.Index, p2.Server.Index)
	}
	if _, err := c.Place(ctx, api.PlaceRequest{VM: bigVM(1)}); err == nil {
		t.Fatal("duplicate VM ID accepted")
	}

	// Overclock the hot server: the governor grants.
	hot := p1.Server.Index
	od, err := c.Overclock(ctx, api.OverclockGrantRequest{Server: hot})
	if err != nil {
		t.Fatal(err)
	}
	if !od.Granted || od.Reason != "granted" {
		t.Fatalf("hot server denied: %+v", od)
	}
	// An idle server is denied with the Equation 1 reason.
	idle := (hot + 1) % 12
	od, err = c.Overclock(ctx, api.OverclockGrantRequest{Server: idle})
	if err != nil {
		t.Fatal(err)
	}
	if od.Granted || od.Reason != "eq1_threshold" {
		t.Fatalf("idle server: %+v, want eq1_threshold denial", od)
	}
	// Cancel is unconditional.
	od, err = c.Overclock(ctx, api.OverclockGrantRequest{Server: hot, Cancel: true})
	if err != nil || od.Granted || od.Reason != "cancelled" {
		t.Fatalf("cancel: %+v, %v", od, err)
	}

	// Step: deterministic time advance; the step re-decides the fleet,
	// so the hot server's grant comes back and counts.
	sr, err := c.Step(ctx, api.StepRequest{Steps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sr.StepsRun != 3 || sr.SimTimeS != 900 {
		t.Fatalf("step = %+v, want 3 steps to t=900", sr)
	}
	st, err = c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Grants != 3 || st.Overclocked != 1 || st.PlacedVMs != 2 {
		t.Fatalf("post-step status = %+v, want 3 cumulative grants, 1 OC, 2 VMs", st)
	}
	if st.RowPowerW <= 0 || st.MaxBathC <= 0 {
		t.Fatalf("status thermals empty: %+v", st)
	}

	// Remove: placed → true, unknown → false (trace-replay no-op).
	rr, err := c.Remove(ctx, api.RemoveRequest{ID: 1})
	if err != nil || !rr.Removed {
		t.Fatalf("remove placed: %+v, %v", rr, err)
	}
	rr, err = c.Remove(ctx, api.RemoveRequest{ID: 999})
	if err != nil || rr.Removed {
		t.Fatalf("remove unknown: %+v, %v", rr, err)
	}
}

func TestDaemonMetricsExposition(t *testing.T) {
	_, c := startDaemon(t, testFleet(), ModeStepped)
	ctx := context.Background()

	for i := 1; i <= 2; i++ {
		if _, err := c.Place(ctx, api.PlaceRequest{VM: bigVM(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Overclock(ctx, api.OverclockGrantRequest{Server: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Overclock(ctx, api.OverclockGrantRequest{Server: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(ctx, api.StepRequest{}); err != nil {
		t.Fatal(err)
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance surface: dcsim gauges (row power, bath, Tj peaks)
	// and the daemon's grant/deny counters, in Prometheus text form.
	for _, want := range []string{
		`ocd_row_power_w{scope="dcsim"}`,
		`ocd_bath_c{scope="dcsim"}`,
		`ocd_peak_tj_c{scope="dcsim"}`,
		`ocd_steps_total{scope="dcsim"} 1`,
		`ocd_overclock_grants_total{scope="ocd"} 1`,
		`ocd_overclock_denies_total{scope="ocd"} 1`,
		"# TYPE ocd_row_power_w gauge",
		"# TYPE ocd_overclock_grants_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestDaemonScaledMode(t *testing.T) {
	d, c := startDaemon(t, testFleet(), ModeScaled)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Stepped-time control is rejected in scaled mode.
	if _, err := c.Step(ctx, api.StepRequest{}); err == nil {
		t.Fatal("step accepted in scaled mode")
	}

	// Wall clock drives the simulation: 300 sim-seconds per
	// millisecond makes progress visible within a few ticks.
	go d.RunScaled(ctx, 300_000)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.SimTimeS > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scaled mode made no progress in 5s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDaemonRequestValidation(t *testing.T) {
	_, c := startDaemon(t, testFleet(), ModeStepped)
	ctx := context.Background()

	// Unsupported wire version.
	body, _ := json.Marshal(api.FilterRequest{Vers: "v999", VM: bigVM(1)})
	resp, err := http.Post(c.BaseURL+"/v1/filter", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(msg), "unsupported version") {
		t.Fatalf("v999 request: HTTP %d %s", resp.StatusCode, msg)
	}

	// Unknown VM class.
	bad := bigVM(1)
	bad.Class = "turbo"
	if _, err := c.Filter(ctx, api.FilterRequest{VM: bad}); err == nil {
		t.Fatal("unknown class accepted")
	}
	// Out-of-range server index.
	if _, err := c.Overclock(ctx, api.OverclockGrantRequest{Server: 99}); err == nil {
		t.Fatal("out-of-range server accepted")
	}
	if _, err := c.Prioritize(ctx, api.PrioritizeRequest{VM: bigVM(1), Servers: []int{-1}}); err == nil {
		t.Fatal("negative server index accepted")
	}
	// Oversized step batch.
	if _, err := c.Step(ctx, api.StepRequest{Steps: maxStepsPerCall + 1}); err == nil {
		t.Fatal("oversized step batch accepted")
	}
}
