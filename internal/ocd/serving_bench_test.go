package ocd

// Serving-path benchmarks. The per-endpoint benchmarks drive the
// snapshot handlers directly (no mux, no network) against a
// 1000-server fleet so the number measured is the daemon's own work;
// BenchmarkServingFilter and BenchmarkServingStatus are the PR's
// 0 allocs/op gates. BenchmarkServingMixedReadWhileStepping is the
// headline A/B: parallel readers against a stepper that holds the
// write lock, once with lockedReads (the old serving path) and once
// with snapshot reads.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"immersionoc/internal/dcsim"
	"immersionoc/internal/telemetry"
	"immersionoc/internal/vm"
)

// benchRW is an allocation-free ResponseWriter: one preallocated
// header map, discarding writes.
type benchRW struct {
	hdr  http.Header
	code int
	n    int
}

func newBenchRW() *benchRW                     { return &benchRW{hdr: make(http.Header, 4)} }
func (w *benchRW) Header() http.Header         { return w.hdr }
func (w *benchRW) Write(b []byte) (int, error) { w.n += len(b); return len(b), nil }
func (w *benchRW) WriteHeader(c int)           { w.code = c }

// benchBody is a resettable request body over a fixed payload.
type benchBody struct{ r bytes.Reader }

func (b *benchBody) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *benchBody) Close() error               { return nil }

// benchDaemon builds a fleet and packs it ~60% full so filter answers
// carry both eligible and failed entries — the realistic, worst-case
// response shape. The per-endpoint benchmarks use 1000 servers (the
// 0 allocs/op gate size); the mixed benchmark scales up to fleet size,
// where the O(fleet) cost of locked reads is the story.
func benchDaemon(b *testing.B, servers int, locked bool) *Daemon {
	b.Helper()
	cfg := dcsim.DefaultConfig()
	cfg.Servers = servers
	cfg.Events = []vm.Event{}
	d, err := New(cfg, ModeStepped, telemetry.NewRegistry())
	if err != nil {
		b.Fatal(err)
	}
	d.lockedReads = locked
	h := d.Handler()
	for i := 0; i < servers*3/5; i++ {
		body := `{"vm":{"id":` + strconv.Itoa(i) + `,"vcores":8,"memory_gb":32,"avg_util":0.6}}`
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/place", bytes.NewReader([]byte(body))))
		if rec.Code != http.StatusOK {
			b.Fatalf("prefill place %d: HTTP %d %s", i, rec.Code, rec.Body.String())
		}
	}
	if !locked {
		d.mu.Lock()
		d.publishLocked()
		d.mu.Unlock()
	}
	return d
}

var (
	benchFilterBody     = []byte(`{"vm":{"id":1,"vcores":16,"memory_gb":64,"avg_util":0.9}}`)
	benchPrioritizeBody = func() []byte {
		var buf bytes.Buffer
		buf.WriteString(`{"vm":{"id":1,"vcores":8,"memory_gb":32,"avg_util":0.5},"servers":[`)
		for i := 0; i < 64; i++ {
			if i > 0 {
				buf.WriteByte(',')
			}
			buf.WriteString(strconv.Itoa(i))
		}
		buf.WriteString(`]}`)
		return buf.Bytes()
	}()
	benchStepBody = []byte(`{"steps":10}`)
)

// benchServe measures one snapshot endpoint called directly, with the
// request body and writer recycled every iteration.
func benchServe(b *testing.B, method, path string, payload []byte, fn func(*Daemon, http.ResponseWriter, *http.Request)) {
	d := benchDaemon(b, 1000, false)
	req := httptest.NewRequest(method, path, nil)
	var body *benchBody
	if payload != nil {
		body = &benchBody{}
		req.Body = body
	}
	w := newBenchRW()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if body != nil {
			body.r.Reset(payload)
		}
		w.code = 0
		fn(d, w, req)
		if w.code != 0 && w.code != http.StatusOK {
			b.Fatalf("%s: HTTP %d", path, w.code)
		}
	}
}

func BenchmarkServingFilter(b *testing.B) {
	benchServe(b, http.MethodPost, "/v1/filter", benchFilterBody, (*Daemon).serveFilter)
}

func BenchmarkServingPrioritize(b *testing.B) {
	benchServe(b, http.MethodPost, "/v1/prioritize", benchPrioritizeBody, (*Daemon).servePrioritize)
}

func BenchmarkServingStatus(b *testing.B) {
	benchServe(b, http.MethodGet, "/v1/status", nil, (*Daemon).serveStatus)
}

func BenchmarkServingMetrics(b *testing.B) {
	benchServe(b, http.MethodGet, "/metrics", nil, (*Daemon).serveMetrics)
}

// BenchmarkServingMixedReadWhileStepping measures read throughput
// while a background stepper drives paced /v1/step batches — the
// contended regime the snapshot split exists for. The stepper mimics
// the scaled-mode control loop: a burst of steps, then an idle gap.
// Each op is one read served through the full Handler, in the
// poll-dominant mix a monitored fleet sees: status polls and
// Prometheus scrapes outnumbering placement-path queries (one filter
// and one prioritize per 256 reads — placements are events, polls are
// a cadence). Run both arms interleaved (-count=N) and compare
// medians.
func BenchmarkServingMixedReadWhileStepping(b *testing.B) {
	b.Run("locked", func(b *testing.B) { benchMixed(b, true) })
	b.Run("snapshot", func(b *testing.B) { benchMixed(b, false) })
}

func benchMixed(b *testing.B, locked bool) {
	d := benchDaemon(b, 4000, locked)
	h := d.Handler()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest(http.MethodPost, "/v1/step", nil)
		body := &benchBody{}
		req.Body = body
		w := newBenchRW()
		for {
			select {
			case <-stop:
				return
			default:
			}
			body.r.Reset(benchStepBody)
			w.code = 0
			h.ServeHTTP(w, req)
			if w.code != 0 && w.code != http.StatusOK {
				panic("step batch failed in benchmark")
			}
			time.Sleep(4 * time.Millisecond)
		}
	}()

	b.ReportAllocs()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		freq := httptest.NewRequest(http.MethodPost, "/v1/filter", nil)
		fbody := &benchBody{}
		freq.Body = fbody
		preq := httptest.NewRequest(http.MethodPost, "/v1/prioritize", nil)
		pbody := &benchBody{}
		preq.Body = pbody
		sreq := httptest.NewRequest(http.MethodGet, "/v1/status", nil)
		mreq := httptest.NewRequest(http.MethodGet, "/metrics", nil)
		w := newBenchRW()
		i := 0
		for pb.Next() {
			w.code = 0
			switch {
			case i&255 == 0:
				fbody.r.Reset(benchFilterBody)
				h.ServeHTTP(w, freq)
			case i&255 == 128:
				pbody.r.Reset(benchPrioritizeBody)
				h.ServeHTTP(w, preq)
			case i&3 == 1:
				h.ServeHTTP(w, mreq)
			default:
				h.ServeHTTP(w, sreq)
			}
			if w.code != 0 && w.code != http.StatusOK {
				b.Fatalf("read failed: HTTP %d", w.code)
			}
			i++
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}
