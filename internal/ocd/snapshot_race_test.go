package ocd

// TestSnapshotReadersNeverBlockStep is the read-plane liveness and
// consistency net, run under -race in CI's multicore leg: parallel
// readers hammer the snapshot endpoints through the Handler while
// /v1/step advances the simulation 10,000 steps, and every response a
// reader sees must be internally consistent — a whole snapshot, never
// a torn mix of two. Reader progress is also asserted: lock-free reads
// must keep landing while step batches hold the daemon lock.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"immersionoc/internal/api"
)

func TestSnapshotReadersNeverBlockStep(t *testing.T) {
	cfg := testFleet()
	d, _ := startDaemon(t, cfg, ModeStepped)
	h := d.Handler()

	// Seed a mixed population so filter/prioritize have real state.
	for i := 0; i < 8; i++ {
		body := `{"vm":{"id":` + itoa(2000+i) + `,"vcores":4,"memory_gb":16,"avg_util":0.5}}`
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/place", strings.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("seed place %d: HTTP %d %s", i, rec.Code, rec.Body.String())
		}
	}

	const totalSteps = 10_000
	var stepsDone atomic.Bool
	var readsWhileStepping atomic.Int64

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	fail := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	// Stepper: 100 batches of 100 steps through the HTTP handler.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stepsDone.Store(true)
		for i := 0; i < 100; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/step", strings.NewReader(`{"steps":100}`)))
			if rec.Code != http.StatusOK {
				fail(errStr("step batch: " + rec.Body.String()))
				return
			}
		}
	}()

	// Mutator: place/remove churn contending for the write lock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stepsDone.Load(); i++ {
			id := 3000 + i%16
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/place",
				strings.NewReader(`{"vm":{"id":`+itoa(id)+`,"vcores":2,"memory_gb":8,"avg_util":0.3}}`)))
			if rec.Code != http.StatusOK {
				fail(errStr("churn place: " + rec.Body.String()))
				return
			}
			rec = httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/remove",
				strings.NewReader(`{"id":`+itoa(id)+`}`)))
			if rec.Code != http.StatusOK {
				fail(errStr("churn remove: " + rec.Body.String()))
				return
			}
		}
	}()

	// Readers: status consistency, filter completeness, metrics
	// render — all against the lock-free plane.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastT := -1.0
			for !stepsDone.Load() {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/status", nil))
				var st api.FleetStatus
				if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
					fail(err)
					return
				}
				// Shape fields are immutable; a torn snapshot would mix
				// them up. Time must never run backwards for one reader.
				if st.Servers != 12 || st.Tanks != 3 || st.StepS != cfg.StepS {
					fail(errStr("inconsistent status: " + rec.Body.String()))
					return
				}
				if st.SimTimeS < lastT {
					fail(errStr("sim time ran backwards: " + rec.Body.String()))
					return
				}
				lastT = st.SimTimeS

				rec = httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/filter",
					strings.NewReader(`{"vm":{"id":1,"vcores":4,"memory_gb":16,"avg_util":0.5}}`)))
				var fr api.FilterResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &fr); err != nil {
					fail(err)
					return
				}
				if len(fr.Eligible)+len(fr.Failed) != 12 {
					fail(errStr("filter lost servers: " + rec.Body.String()))
					return
				}

				rec = httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
				if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ocd_http_requests_total") {
					fail(errStr("metrics render: " + rec.Body.String()))
					return
				}
				readsWhileStepping.Add(1)
			}
		}()
	}

	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if readsWhileStepping.Load() == 0 {
		t.Fatal("no reader completed while the step batches ran; the read plane blocked")
	}

	// The fleet must have actually advanced the full 10k steps.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/status", nil))
	var st api.FleetStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if want := float64(totalSteps) * cfg.StepS; st.SimTimeS != want {
		t.Fatalf("sim time %v after the run, want %v", st.SimTimeS, want)
	}
}

type errStr string

func (e errStr) Error() string { return string(e) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
