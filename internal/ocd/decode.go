package ocd

// Request decoding for the snapshot read plane.
//
// encoding/json cannot decode into a struct without allocating, so the
// hot path uses a hand-rolled parser for the two read-request shapes
// (FilterRequest, PrioritizeRequest). The parser is deliberately
// narrow: it accepts only the common wire form — a JSON object with
// known keys, raw ASCII strings, numbers — and DECLINES everything
// else by returning false, routing the body through strictDecode,
// which replays the reference json.Decoder pipeline over the same
// bytes. Declining is always safe: the fallback produces the exact
// response (success or error, byte for byte) the locked path would,
// so the fast parser only ever has to be right about inputs it
// accepts, never about how to reject inputs it does not understand.
//
// Where the fast path does accept, it must agree with encoding/json
// exactly:
//   - duplicate keys: later values win field-by-field (the parser
//     writes into the same struct without resetting, so a repeated
//     "vm" object merges per-field just as json.Unmarshal does);
//   - numbers: validated against the JSON grammar (no leading zeros,
//     no bare '-', digits after '.' and 'e'), then converted with the
//     same strconv calls encoding/json uses, so float values are
//     bit-identical; int-typed fields with a fraction or exponent are
//     declined so the fallback can produce json's own type error;
//   - strings: only raw ASCII without escapes is accepted (anything
//     else is declined), and the known values ("v1", class names) are
//     interned so decoding allocates nothing.
//
// TestDecodeFastMatchesStrict differentially pins the whole contract
// against encoding/json over valid and malformed corpora.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"unsafe"

	"immersionoc/internal/api"
)

// strictDecode replays post()'s reference decode pipeline over the
// buffered body: the fallback for any input the fast parser declines,
// and the single source of truth for decode error responses. Returns
// false with the error response written.
func strictDecode[Req any](w http.ResponseWriter, body []byte, req *Req) bool {
	dec := json.NewDecoder(bytes.NewReader(body))
	if err := dec.Decode(req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		writeError(w, http.StatusBadRequest, "trailing data after JSON document")
		return false
	}
	return true
}

// bstr views b as a string without copying. Safe here: the string is
// only passed to strconv parse functions, which do not retain their
// argument (they clone it into any error they build), and b outlives
// every call.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// internVersion maps the version bytes to an interned string; unknown
// versions allocate, but they are about to become an error response.
func internVersion(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if string(b) == api.Version {
		return api.Version
	}
	return string(b)
}

// internClass maps the class bytes to an interned string; unknown
// classes allocate on their way into an "unknown class" error.
func internClass(b []byte) string {
	switch {
	case len(b) == 0:
		return ""
	case string(b) == "regular":
		return "regular"
	case string(b) == "high-perf":
		return "high-perf"
	case string(b) == "harvest":
		return "harvest"
	}
	return string(b)
}

var (
	keyVersion  = []byte("version")
	keyVM       = []byte("vm")
	keyServers  = []byte("servers")
	keyID       = []byte("id")
	keyVCores   = []byte("vcores")
	keyMemoryGB = []byte("memory_gb")
	keyClass    = []byte("class")
	keyAvgUtil  = []byte("avg_util")
	keyScalable = []byte("scalable_fraction")
)

// jsParser is a cursor over one buffered request body. Every method
// reports ok=false on anything outside the accepted subset; callers
// propagate that straight to the strict fallback.
type jsParser struct {
	b   []byte
	pos int
}

func (p *jsParser) ws() {
	for p.pos < len(p.b) {
		switch p.b[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *jsParser) eat(c byte) bool {
	if p.pos < len(p.b) && p.b[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

// rawString accepts only printable-ASCII strings with no escapes, so
// the bytes between the quotes ARE the value.
func (p *jsParser) rawString() ([]byte, bool) {
	if !p.eat('"') {
		return nil, false
	}
	start := p.pos
	for p.pos < len(p.b) {
		c := p.b[p.pos]
		if c == '"' {
			s := p.b[start:p.pos]
			p.pos++
			return s, true
		}
		if c == '\\' || c < 0x20 || c >= 0x80 {
			return nil, false
		}
		p.pos++
	}
	return nil, false
}

// number scans one token of the JSON number grammar (RFC 8259: no
// leading zeros, no bare '-', at least one digit after '.' or an
// exponent marker), reporting whether it stayed integral.
func (p *jsParser) number() (tok []byte, isInt, ok bool) {
	start := p.pos
	p.eat('-')
	if p.pos >= len(p.b) || p.b[p.pos] < '0' || p.b[p.pos] > '9' {
		return nil, false, false
	}
	if p.b[p.pos] == '0' {
		p.pos++
	} else {
		for p.pos < len(p.b) && p.b[p.pos] >= '0' && p.b[p.pos] <= '9' {
			p.pos++
		}
	}
	isInt = true
	if p.pos < len(p.b) && p.b[p.pos] == '.' {
		isInt = false
		p.pos++
		n := 0
		for p.pos < len(p.b) && p.b[p.pos] >= '0' && p.b[p.pos] <= '9' {
			p.pos++
			n++
		}
		if n == 0 {
			return nil, false, false
		}
	}
	if p.pos < len(p.b) && (p.b[p.pos] == 'e' || p.b[p.pos] == 'E') {
		isInt = false
		p.pos++
		if p.pos < len(p.b) && (p.b[p.pos] == '+' || p.b[p.pos] == '-') {
			p.pos++
		}
		n := 0
		for p.pos < len(p.b) && p.b[p.pos] >= '0' && p.b[p.pos] <= '9' {
			p.pos++
			n++
		}
		if n == 0 {
			return nil, false, false
		}
	}
	return p.b[start:p.pos], isInt, true
}

// intVal parses an int-typed field. A fraction or exponent is
// declined — encoding/json rejects those with a type error the strict
// fallback must produce.
func (p *jsParser) intVal() (int, bool) {
	tok, isInt, ok := p.number()
	if !ok || !isInt {
		return 0, false
	}
	n, err := strconv.Atoi(bstr(tok))
	if err != nil {
		return 0, false
	}
	return n, true
}

// floatVal parses a float64-typed field with the same strconv call
// encoding/json's literalStore uses, so values are bit-identical.
func (p *jsParser) floatVal() (float64, bool) {
	tok, _, ok := p.number()
	if !ok {
		return 0, false
	}
	f, err := strconv.ParseFloat(bstr(tok), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// vmSpec parses a VMSpec object in place (no reset: duplicate "vm"
// keys merge field-by-field, as encoding/json does). Unknown keys,
// null, and escaped strings are declined.
func (p *jsParser) vmSpec(v *api.VMSpec) bool {
	if !p.eat('{') {
		return false
	}
	p.ws()
	if p.eat('}') {
		return true
	}
	for {
		key, ok := p.rawString()
		if !ok {
			return false
		}
		p.ws()
		if !p.eat(':') {
			return false
		}
		p.ws()
		switch {
		case bytes.Equal(key, keyID):
			n, ok := p.intVal()
			if !ok {
				return false
			}
			v.ID = n
		case bytes.Equal(key, keyVCores):
			n, ok := p.intVal()
			if !ok {
				return false
			}
			v.VCores = n
		case bytes.Equal(key, keyMemoryGB):
			f, ok := p.floatVal()
			if !ok {
				return false
			}
			v.MemoryGB = f
		case bytes.Equal(key, keyClass):
			s, ok := p.rawString()
			if !ok {
				return false
			}
			v.Class = internClass(s)
		case bytes.Equal(key, keyAvgUtil):
			f, ok := p.floatVal()
			if !ok {
				return false
			}
			v.AvgUtil = f
		case bytes.Equal(key, keyScalable):
			f, ok := p.floatVal()
			if !ok {
				return false
			}
			v.ScalableFraction = f
		default:
			return false
		}
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		return p.eat('}')
	}
}

// end requires only trailing whitespace past the document, matching
// the strict pipeline's trailing-data check.
func (p *jsParser) end() bool {
	p.ws()
	return p.pos == len(p.b)
}

// parseFilterRequest is the allocation-free decode of a FilterRequest.
// It returns false — leaving req in an undefined partial state — for
// any input outside the accepted subset; the caller resets req and
// falls back to strictDecode.
func parseFilterRequest(body []byte, req *api.FilterRequest) bool {
	p := jsParser{b: body}
	p.ws()
	if !p.eat('{') {
		return false
	}
	p.ws()
	if p.eat('}') {
		return p.end()
	}
	for {
		key, ok := p.rawString()
		if !ok {
			return false
		}
		p.ws()
		if !p.eat(':') {
			return false
		}
		p.ws()
		switch {
		case bytes.Equal(key, keyVersion):
			s, ok := p.rawString()
			if !ok {
				return false
			}
			req.Vers = internVersion(s)
		case bytes.Equal(key, keyVM):
			if !p.vmSpec(&req.VM) {
				return false
			}
		default:
			return false
		}
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		if !p.eat('}') {
			return false
		}
		return p.end()
	}
}

// parsePrioritizeRequest is the allocation-free decode of a
// PrioritizeRequest, appending server indices into the request's
// reused Servers slice. Same decline-to-fallback contract as
// parseFilterRequest.
func parsePrioritizeRequest(body []byte, req *api.PrioritizeRequest) bool {
	p := jsParser{b: body}
	p.ws()
	if !p.eat('{') {
		return false
	}
	p.ws()
	if p.eat('}') {
		return p.end()
	}
	for {
		key, ok := p.rawString()
		if !ok {
			return false
		}
		p.ws()
		if !p.eat(':') {
			return false
		}
		p.ws()
		switch {
		case bytes.Equal(key, keyVersion):
			s, ok := p.rawString()
			if !ok {
				return false
			}
			req.Vers = internVersion(s)
		case bytes.Equal(key, keyVM):
			if !p.vmSpec(&req.VM) {
				return false
			}
		case bytes.Equal(key, keyServers):
			if !p.eat('[') {
				return false
			}
			// A repeated "servers" key replaces the previous contents,
			// matching json.Unmarshal's decode-into-slice semantics.
			req.Servers = req.Servers[:0]
			p.ws()
			if p.eat(']') {
				break
			}
			for {
				n, ok := p.intVal()
				if !ok {
					return false
				}
				req.Servers = append(req.Servers, n)
				p.ws()
				if p.eat(',') {
					p.ws()
					continue
				}
				if !p.eat(']') {
					return false
				}
				break
			}
		default:
			return false
		}
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		if !p.eat('}') {
			return false
		}
		return p.end()
	}
}
