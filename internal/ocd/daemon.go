// Package ocd is the overclocking control-plane daemon behind the
// `ocd` command: a stepwise dcsim.Sim served over the typed v1 API.
//
// The daemon is split into two planes:
//
//   - The WRITE plane — /v1/place, /v1/remove, /v1/overclock,
//     /v1/step, and scaled-time stepping — serializes behind one
//     mutex. The Sim is engineered for a single control loop, and a
//     mutating handler is just another entrant into that loop.
//     Decisions go through the Sim's placement.Decider, so an answer
//     served here is the same answer the batch evaluation would
//     compute.
//
//   - The READ plane — /v1/filter, /v1/prioritize, /v1/status,
//     /healthz, /metrics — never touches the mutex. After every
//     mutation (and after every step chunk) the write plane publishes
//     an immutable fleetView through an atomic pointer; readers load
//     the current view and answer entirely from it. Reads never
//     contend with stepping or with each other, and the read handlers
//     are allocation-free in steady state (see view.go).
//
// See DESIGN.md "Serving performance" for the snapshot lifecycle and
// the recycling contracts.
package ocd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"immersionoc/internal/api"
	"immersionoc/internal/dcsim"
	"immersionoc/internal/placement"
	"immersionoc/internal/telemetry"
	"immersionoc/internal/vm"
)

// Time modes: stepped (time advances only via POST /v1/step) or
// scaled (wall clock drives steps continuously).
const (
	ModeStepped = "stepped"
	ModeScaled  = "scaled"
)

// maxStepsPerCall bounds one /v1/step request so a typo cannot hold
// the simulation busy for minutes.
const maxStepsPerCall = 100000

// stepChunk is how many simulation steps run per lock acquisition: a
// large /v1/step batch (and scaled-mode catch-up) releases the daemon
// lock every chunk so mutating API calls interleave instead of
// starving for the whole batch, and republishes the read snapshot so
// the read plane observes the batch's progress.
const stepChunk = 64

// maxBodyBytes caps a request body. The largest legitimate v1 request
// is a prioritize call naming every server; a multi-gigabyte body is
// an attack, not a request.
const maxBodyBytes = 1 << 20

// Daemon serves one simulated fleet. Create with New, wire with
// Handler, and in scaled mode drive time with RunScaled.
type Daemon struct {
	mu   sync.Mutex
	sim  *dcsim.Sim
	vms  map[int]*vm.VM // placed VMs by ID, for Remove
	mode string
	reg  *telemetry.Registry

	// snap is the published read model: an immutable view readers load
	// without locking. Replaced (never mutated) under mu. Each view
	// chains off its predecessor through the snapshot's chunked COW
	// columns, so a publish costs O(what changed), not O(fleet).
	snap atomic.Pointer[fleetView]
	// lockedReads routes the read endpoints through mu and the live
	// Sim instead of the snapshot — the pre-snapshot serving path,
	// kept as the differential-test oracle and the benchmark baseline.
	lockedReads bool
	// fullCopyPublish breaks the view chain so every publish
	// re-materializes the whole fleet — the pre-COW publication path,
	// kept live as the publish benchmarks' baseline arm.
	fullCopyPublish bool

	// Group commit (write-plane publish coalescing). publishWindow = 0
	// (the default) publishes after every write. With a positive
	// window, a write more than one window after the last publish
	// publishes immediately (a lone write is never delayed), while
	// writes arriving inside the window mark the view pending and arm
	// one trailing-edge flush timer — a burst of B writes costs one
	// leading publish plus one trailing publish instead of B, and no
	// write waits longer than the window to become visible. All fields
	// are guarded by mu; the timer callback re-acquires it.
	publishWindow time.Duration
	lastPublish   time.Time
	pendingView   bool
	flushArmed    bool

	// scratch pools the per-request read-plane state (decode buffer,
	// response slices, pooled encoder); renderers pools the /metrics
	// exposition plans. Both recycle via sync.Pool so concurrent
	// readers never share state.
	scratch   sync.Pool
	renderers sync.Pool

	grants, denies *telemetry.Counter
	requests       *telemetry.Counter
}

// New builds a daemon around a fresh simulation and publishes the
// initial read snapshot. mode is ModeStepped or ModeScaled.
func New(cfg dcsim.Config, mode string, reg *telemetry.Registry) (*Daemon, error) {
	sim, err := dcsim.New(cfg)
	if err != nil {
		return nil, err
	}
	ocd := reg.Scope("ocd")
	d := &Daemon{
		sim:      sim,
		vms:      make(map[int]*vm.VM),
		mode:     mode,
		reg:      reg,
		grants:   ocd.Counter("overclock_grants"),
		denies:   ocd.Counter("overclock_denies"),
		requests: ocd.Counter("http_requests"),
	}
	d.scratch.New = func() any { return newServScratch() }
	d.renderers.New = func() any { return telemetry.NewPromRenderer(reg, "ocd") }
	d.publishLocked()
	d.lastPublish = time.Now()
	return d, nil
}

// SetPublishMaxLatency sets the group-commit window: the longest a
// write may stay unpublished while later writes coalesce into one
// snapshot publication. Zero (the default) publishes after every
// write. Call before the daemon starts serving.
func (d *Daemon) SetPublishMaxLatency(w time.Duration) {
	if w < 0 {
		w = 0
	}
	d.publishWindow = w
}

// SetFullCopyPublish toggles full re-materialization on every publish
// — the pre-COW publication cost, kept callable as the live baseline
// for the publish benchmarks and A/B load tests. Call before the
// daemon starts serving.
func (d *Daemon) SetFullCopyPublish(on bool) { d.fullCopyPublish = on }

// publishNowLocked publishes unconditionally, absorbing any pending
// coalesced write. Caller must hold d.mu.
func (d *Daemon) publishNowLocked() {
	d.pendingView = false
	d.lastPublish = time.Now()
	d.publishLocked()
}

// publishAfterWriteLocked is the group-commit gate every mutating
// entrant publishes through. Caller must hold d.mu.
func (d *Daemon) publishAfterWriteLocked() {
	if d.publishWindow <= 0 {
		d.publishLocked()
		return
	}
	now := time.Now()
	if now.Sub(d.lastPublish) >= d.publishWindow {
		// Leading edge: first write after an idle stretch publishes
		// immediately.
		d.pendingView = false
		d.lastPublish = now
		d.publishLocked()
		return
	}
	// Inside the window: coalesce, and make sure exactly one
	// trailing-edge flush is armed so the latest write is published
	// within the max-latency bound even if no further write arrives.
	d.pendingView = true
	if !d.flushArmed {
		d.flushArmed = true
		delay := d.publishWindow - now.Sub(d.lastPublish)
		time.AfterFunc(delay, d.flushPending)
	}
}

// flushPending is the trailing-edge timer callback: publish the
// coalesced writes, if a step or later leading-edge publish has not
// already absorbed them.
func (d *Daemon) flushPending() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.flushArmed = false
	if d.pendingView {
		d.publishNowLocked()
	}
}

// RunScaled drives the control loop from the wall clock. The target
// simulated time is elapsed-wall-time × scale measured from the loop's
// start; each pass steps the simulation until it catches up to the
// target, in stepChunk batches so API requests interleave. Stepping
// against the measured elapsed time — rather than counting ticker
// ticks — means a step that outruns the interval, a scheduler stall,
// or the truncation in the interval arithmetic can delay simulated
// time but never silently lose it: the next pass sees the larger
// elapsed time and catches up. The remaining gap is exported as the
// ocd.sim_time_drift_s gauge (bounded by one step period when the
// host keeps up).
func (d *Daemon) RunScaled(ctx context.Context, scale float64) {
	stepS := d.sim.StepS()
	drift := d.reg.Scope("ocd").Gauge("sim_time_drift_s")
	start := time.Now()
	d.mu.Lock()
	base := d.sim.Now()
	d.mu.Unlock()
	for ctx.Err() == nil {
		target := base + time.Since(start).Seconds()*scale
		d.mu.Lock()
		steps := 0
		for d.sim.Now()+stepS <= target && steps < stepChunk {
			d.sim.Step()
			steps++
		}
		now := d.sim.Now()
		if steps > 0 {
			d.publishNowLocked()
		}
		d.mu.Unlock()
		drift.Set(base + time.Since(start).Seconds()*scale - now)
		if steps == stepChunk {
			// Still behind: yield the lock briefly, then keep catching
			// up against a freshly measured target.
			continue
		}
		// Caught up. Sleep until the next step is due, bounded so
		// cancellation stays prompt even at extreme scales.
		wait := time.Duration((now + stepS - target) / scale * float64(time.Second))
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		if wait > 250*time.Millisecond {
			wait = 250 * time.Millisecond
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
	}
}

// apiError carries an HTTP status with a message for ErrorResponse.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func errf(code int, format string, a ...any) error {
	return &apiError{code: code, msg: fmt.Sprintf(format, a...)}
}

// post wires a typed request handler: cap and decode the JSON body
// (rejecting oversized payloads and trailing garbage), check the
// version tag, run fn with the request context, and encode the
// response (or an ErrorResponse with the apiError's status). fn owns
// its locking — most handlers are wrapped by locked, while /v1/step
// chunks the lock itself.
func post[Req any, Resp any](d *Daemon, vers func(Req) string, fn func(context.Context, Req) (Resp, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		d.requests.Inc()
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
		dec := json.NewDecoder(body)
		var req Req
		if err := dec.Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
				return
			}
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		// Exactly one JSON document per request: trailing garbage means
		// a malformed client (or two concatenated requests) and is
		// rejected rather than silently ignored.
		if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
			writeError(w, http.StatusBadRequest, "trailing data after JSON document")
			return
		}
		if v := vers(req); v != "" && v != api.Version {
			writeError(w, http.StatusBadRequest, "unsupported version "+v)
			return
		}
		resp, err := fn(r.Context(), req)
		if err != nil {
			code := http.StatusInternalServerError
			if ae, ok := err.(*apiError); ok {
				code = ae.code
			}
			writeError(w, code, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// locked adapts a handler that needs the whole daemon lock for its
// duration, republishing the read snapshot before releasing it — even
// a denied overclock refreshes power caches as a side effect, so every
// locked entrant republishes (through the group-commit gate: with a
// publish window set, bursts coalesce into one publication per
// window).
func locked[Req any, Resp any](d *Daemon, fn func(Req) (Resp, error)) func(context.Context, Req) (Resp, error) {
	return func(_ context.Context, req Req) (Resp, error) {
		d.mu.Lock()
		defer d.mu.Unlock()
		resp, err := fn(req)
		d.publishAfterWriteLocked()
		return resp, err
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, api.ErrorResponse{Vers: api.Version, Error: msg})
}

// classFromSpec resolves a VMSpec's class tag, sharing the validation
// (and its exact error messages) between the locked write path and the
// snapshot read path.
func classFromSpec(s *api.VMSpec) (vm.Class, error) {
	if s.VCores <= 0 || s.MemoryGB <= 0 {
		return 0, errf(http.StatusBadRequest, "vm %d: need positive vcores and memory", s.ID)
	}
	switch s.Class {
	case "", "regular":
		return vm.Regular, nil
	case "high-perf":
		return vm.HighPerf, nil
	case "harvest":
		return vm.Harvest, nil
	default:
		return 0, errf(http.StatusBadRequest, "vm %d: unknown class %q", s.ID, s.Class)
	}
}

// vmFromSpec reconstructs the simulator's VM from its wire form. The
// placement models read only size, class and the utilization
// statistics, all of which survive the JSON round trip bit-exactly, so
// an API-driven arrival is indistinguishable from a trace-replayed one.
func vmFromSpec(s api.VMSpec) (*vm.VM, error) {
	class, err := classFromSpec(&s)
	if err != nil {
		return nil, err
	}
	return &vm.VM{
		ID:               s.ID,
		Type:             vm.Type{Name: fmt.Sprintf("v%d", s.VCores), VCores: s.VCores, MemoryGB: s.MemoryGB},
		Class:            class,
		AvgUtil:          s.AvgUtil,
		ScalableFraction: s.ScalableFraction,
	}, nil
}

func (d *Daemon) serverRef(i int) api.ServerRef {
	info := d.sim.Server(i)
	return api.ServerRef{Index: info.Index, ID: info.ID, Tank: info.Tank}
}

// filterLocked answers "which servers can take this VM" from the live
// simulation under the daemon lock — the read plane's oracle (see
// view.go for the snapshot path that normally serves /v1/filter).
func (d *Daemon) filterLocked(req api.FilterRequest) (api.FilterResponse, error) {
	v, err := vmFromSpec(req.VM)
	if err != nil {
		return api.FilterResponse{}, err
	}
	cl := d.sim.Cluster()
	servers := cl.Servers()
	resp := api.FilterResponse{Vers: api.Version}
	for i, srv := range servers {
		ref := d.serverRef(i)
		reason := cl.Explain(srv, v)
		if reason == "" && v.Class == vm.HighPerf &&
			d.sim.TankOverclocked(ref.Tank) >= d.sim.TankBudget(ref.Tank) {
			// A guaranteed-overclock VM needs condenser headroom in the
			// tank, not just core headroom on the server.
			reason = reasonThermal
		}
		if reason == "" {
			resp.Eligible = append(resp.Eligible, ref)
		} else {
			resp.Failed = append(resp.Failed, api.FilterFailure{Server: ref, Reason: reason})
		}
	}
	return resp, nil
}

// prioritizeLocked scores candidates 0–100 from the live simulation
// under the daemon lock: packing headroom after placement blended with
// remaining wear credit (a server with slack in both can absorb bursts
// by overclocking instead of degrading). The snapshot path in view.go
// replicates this arithmetic expression for expression.
func (d *Daemon) prioritizeLocked(req api.PrioritizeRequest) (api.PrioritizeResponse, error) {
	v, err := vmFromSpec(req.VM)
	if err != nil {
		return api.PrioritizeResponse{}, err
	}
	pol := d.sim.Cluster().Policy
	resp := api.PrioritizeResponse{Vers: api.Version}
	for _, i := range req.Servers {
		if i < 0 || i >= d.sim.ServerCount() {
			return api.PrioritizeResponse{}, errf(http.StatusBadRequest, "server %d out of range", i)
		}
		info := d.sim.Server(i)
		capV := float64(info.PCores)
		if pol.CPUOversubRatio > 0 && info.Overclockable {
			capV = math.Floor(capV * (1 + pol.CPUOversubRatio))
		}
		headroom := (capV - float64(info.VCoresUsed) - float64(v.Type.VCores)) / capV
		headroom = math.Max(0, math.Min(1, headroom))
		credit := 1.0
		if info.WearProRata > 0 {
			credit = math.Max(0, math.Min(1, 1-info.WearUsed/info.WearProRata))
		}
		resp.Scores = append(resp.Scores, api.HostScore{
			Server: api.ServerRef{Index: info.Index, ID: info.ID, Tank: info.Tank},
			Score:  100 * (0.6*headroom + 0.4*credit),
		})
	}
	sort.SliceStable(resp.Scores, func(a, b int) bool {
		if resp.Scores[a].Score != resp.Scores[b].Score {
			return resp.Scores[a].Score > resp.Scores[b].Score
		}
		return resp.Scores[a].Server.Index < resp.Scores[b].Server.Index
	})
	return resp, nil
}

// place binds a VM through the cluster packer with trace-identical
// rejection accounting.
func (d *Daemon) place(req api.PlaceRequest) (api.PlaceResponse, error) {
	v, err := vmFromSpec(req.VM)
	if err != nil {
		return api.PlaceResponse{}, err
	}
	if _, dup := d.vms[v.ID]; dup {
		return api.PlaceResponse{}, errf(http.StatusConflict, "vm %d already placed", v.ID)
	}
	srv, err := d.sim.Place(v)
	if err != nil {
		return api.PlaceResponse{Vers: api.Version, Placed: false, Error: err.Error()}, nil
	}
	d.vms[v.ID] = v
	ref := d.serverRef(srv.ID)
	return api.PlaceResponse{Vers: api.Version, Placed: true, Server: &ref}, nil
}

// remove releases a VM; departures of VMs that were rejected at
// arrival are no-ops, matching trace replay.
func (d *Daemon) remove(req api.RemoveRequest) (api.RemoveResponse, error) {
	v, ok := d.vms[req.ID]
	if !ok {
		return api.RemoveResponse{Vers: api.Version, Removed: false}, nil
	}
	host, hosted := d.sim.Cluster().Host(v.ID)
	d.sim.Remove(v)
	if hosted {
		// Fold the departure's power delta now, as place does for
		// arrivals via serverRef: every API mutation leaves the row sum
		// fully folded, so the published snapshot and a locked read
		// report the same draw.
		d.sim.RefreshServerPower(host.ID)
	}
	delete(d.vms, req.ID)
	return api.RemoveResponse{Vers: api.Version, Removed: true}, nil
}

// overclock evaluates a grant (or applies a cancel) through the Sim's
// decider, so an API grant obeys exactly the governor's admission
// rules: Equation 1 threshold, tank condenser budget, wear-risk
// budget, feeder cap.
func (d *Daemon) overclock(req api.OverclockGrantRequest) (api.OverclockDecision, error) {
	if req.Server < 0 || req.Server >= d.sim.ServerCount() {
		return api.OverclockDecision{}, errf(http.StatusBadRequest, "server %d out of range", req.Server)
	}
	if req.Cancel {
		d.sim.SetOverclock(req.Server, false)
		return api.OverclockDecision{
			Vers: api.Version, Granted: false, Reason: "cancelled",
			RowPowerW: d.sim.RowPowerW(),
		}, nil
	}
	info := d.sim.Server(req.Server)
	if info.Overclocked {
		return api.OverclockDecision{
			Vers: api.Version, Granted: true, Reason: string(placement.ReasonGranted),
			RowPowerW: d.sim.RowPowerW(),
		}, nil
	}
	dec := d.sim.Decider().Evaluate(placement.GrantQuery{
		Overclockable:   info.Overclockable,
		DemandCores:     info.DemandCores,
		PCores:          float64(info.PCores),
		TankOverclocked: d.sim.TankOverclocked(info.Tank),
		TankBudget:      d.sim.TankBudget(info.Tank),
		WearUsed:        info.WearUsed,
		WearProRata:     info.WearProRata,
		RowPowerW:       d.sim.RowPowerW(),
		OverclockDeltaW: info.PowerOCW - info.PowerNomW,
	})
	if dec.Allow {
		d.sim.SetOverclock(req.Server, true)
		d.grants.Inc()
	} else {
		d.denies.Inc()
	}
	return api.OverclockDecision{
		Vers: api.Version, Granted: dec.Allow, Reason: string(dec.Reason),
		RowPowerW: d.sim.RowPowerW(),
	}, nil
}

// step advances the simulation deterministically (stepped mode only).
// The batch runs in stepChunk slices, releasing the daemon lock and
// republishing the read snapshot between slices so the read plane
// observes progress while a 100,000-step batch is in flight, and
// checking the request context so a disconnected client stops burning
// simulation time.
func (d *Daemon) step(ctx context.Context, req api.StepRequest) (api.StepResponse, error) {
	if d.mode != ModeStepped {
		return api.StepResponse{}, errf(http.StatusConflict, "time is %s; POST /v1/step needs -mode stepped", d.mode)
	}
	n := req.Steps
	if n <= 0 {
		n = 1
	}
	if n > maxStepsPerCall {
		return api.StepResponse{}, errf(http.StatusBadRequest, "steps %d exceeds the per-call cap %d", n, maxStepsPerCall)
	}
	run := 0
	simT := 0.0
	for run < n {
		if err := ctx.Err(); err != nil {
			return api.StepResponse{}, errf(http.StatusRequestTimeout, "cancelled after %d of %d steps: %v", run, n, err)
		}
		chunk := n - run
		if chunk > stepChunk {
			chunk = stepChunk
		}
		d.mu.Lock()
		for i := 0; i < chunk; i++ {
			d.sim.Step()
		}
		simT = d.sim.Now()
		// Steps publish unconditionally (absorbing any pending
		// coalesced write): the chunked COW export makes the per-chunk
		// republish O(servers the chunk's steps touched + dirty
		// chunks), so progress visibility costs what changed.
		d.publishNowLocked()
		d.mu.Unlock()
		run += chunk
	}
	return api.StepResponse{Vers: api.Version, SimTimeS: simT, StepsRun: run}, nil
}

// statusLocked snapshots the fleet KPIs from the live simulation under
// the daemon lock (cumulative counts from the run's report plus live
// row/thermal state) — the oracle for the snapshot status path.
func (d *Daemon) statusLocked() api.FleetStatus {
	rep := d.sim.Report()
	oc := 0
	maxBath := 0.0
	for i := 0; i < d.sim.TankCount(); i++ {
		oc += d.sim.TankOverclocked(i)
		if b := d.sim.TankBathC(i); b > maxBath {
			maxBath = b
		}
	}
	return api.FleetStatus{
		Vers:                 api.Version,
		SimTimeS:             d.sim.Now(),
		StepS:                d.sim.StepS(),
		Mode:                 d.mode,
		Servers:              d.sim.ServerCount(),
		Tanks:                d.sim.TankCount(),
		PlacedVMs:            len(d.vms),
		Density:              d.sim.Cluster().Density(),
		Rejected:             rep.Rejected,
		RowPowerW:            d.sim.RowPowerW(),
		MaxBathC:             rep.MaxBathC,
		Overclocked:          oc,
		Grants:               rep.TotalGrants,
		Cancelled:            rep.CancelledOverclocks,
		CapEvents:            rep.CapEvents,
		OverclockServerHours: rep.OverclockServerHours,
		MeanWearUsed:         rep.MeanWearUsed,
	}
}

// FinalReport renders the closing fleet report for the shutdown log.
func (d *Daemon) FinalReport() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sim.Report().String()
}

// Handler builds the daemon's route table. The read endpoints serve
// from the published snapshot (view.go); with lockedReads set they
// fall back to the live-simulation-under-mutex path instead.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	if d.lockedReads {
		mux.HandleFunc("/v1/filter", post(d, func(r api.FilterRequest) string { return r.Vers },
			locked(d, d.filterLocked)))
		mux.HandleFunc("/v1/prioritize", post(d, func(r api.PrioritizeRequest) string { return r.Vers },
			locked(d, d.prioritizeLocked)))
		mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
			d.requests.Inc()
			if r.Method != http.MethodGet {
				writeError(w, http.StatusMethodNotAllowed, "GET only")
				return
			}
			d.mu.Lock()
			st := d.statusLocked()
			d.mu.Unlock()
			writeJSON(w, http.StatusOK, st)
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			d.requests.Inc()
			snap := d.reg.Snapshot()
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = snap.WritePrometheus(w, "ocd")
		})
	} else {
		mux.HandleFunc("/v1/filter", d.serveFilter)
		mux.HandleFunc("/v1/prioritize", d.servePrioritize)
		mux.HandleFunc("/v1/status", d.serveStatus)
		mux.HandleFunc("/healthz", d.serveHealthz)
		mux.HandleFunc("/metrics", d.serveMetrics)
	}
	mux.HandleFunc("/v1/place", post(d, func(r api.PlaceRequest) string { return r.Vers }, locked(d, d.place)))
	mux.HandleFunc("/v1/remove", post(d, func(r api.RemoveRequest) string { return r.Vers }, locked(d, d.remove)))
	mux.HandleFunc("/v1/overclock", post(d, func(r api.OverclockGrantRequest) string { return r.Vers }, locked(d, d.overclock)))
	mux.HandleFunc("/v1/step", post(d, func(r api.StepRequest) string { return r.Vers }, d.step))
	return mux
}
