package ocd

// Concurrency suite: hammer every API surface of a running scaled-mode
// daemon from parallel clients while the background stepper advances
// simulated time. Run under -race this is the regression net for the
// daemon's locking discipline — the chunked step loop, the locked
// handler adapter, and RunScaled all contend for d.mu here.

import (
	"context"
	"strings"
	"sync"
	"testing"

	"immersionoc/internal/api"
)

func TestDaemonConcurrentClients(t *testing.T) {
	d, c := startDaemon(t, testFleet(), ModeScaled)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.RunScaled(ctx, 300_000)

	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan error, 4*iters)
	run := func(name string, f func(i int) error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := f(i); err != nil {
					errs <- err
					return
				}
			}
		}()
		_ = name
	}

	// Placer: place then remove a VM, tolerating capacity rejections.
	run("place", func(i int) error {
		p, err := c.Place(ctx, api.PlaceRequest{VM: bigVM(1000 + i)})
		if err != nil {
			return err
		}
		if p.Placed {
			if _, err := c.Remove(ctx, api.RemoveRequest{ID: 1000 + i}); err != nil {
				return err
			}
		}
		return nil
	})
	// Stepper: /v1/step is rejected in scaled mode (409) but the
	// request still exercises the decode/dispatch path concurrently.
	run("step", func(int) error {
		_, err := c.Step(ctx, api.StepRequest{Steps: 10})
		if err == nil || !strings.Contains(err.Error(), "scaled") {
			return err
		}
		return nil
	})
	// Status + overclock: reads racing the background stepper.
	run("status", func(i int) error {
		if _, err := c.Status(ctx); err != nil {
			return err
		}
		_, err := c.Overclock(ctx, api.OverclockGrantRequest{Server: i % 12})
		return err
	})
	// Metrics: the Prometheus exposition walks the whole registry.
	run("metrics", func(int) error {
		_, err := c.Metrics(ctx)
		return err
	})

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.SimTimeS <= 0 {
		t.Fatalf("background stepper made no progress under client load: %+v", st)
	}
}
