package counters

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorScalableFraction(t *testing.T) {
	acc := NewAccumulator(3.4)
	prev := acc.Read()
	acc.Advance(10, 5, 3.4, 0.7)
	d := acc.Read().Sub(prev)
	if got := d.ScalableFraction(); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("ΔPperf/ΔAperf = %v, want 0.7", got)
	}
}

func TestAccumulatorUtilization(t *testing.T) {
	acc := NewAccumulator(3.4)
	prev := acc.Read()
	acc.Advance(10, 4, 3.4, 0.5) // 4 busy seconds over 10s on 1 core
	d := acc.Read().Sub(prev)
	if got := d.Utilization(1); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("utilization %v, want 0.4", got)
	}
	if got := d.Utilization(2); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("2-core utilization %v, want 0.2", got)
	}
}

func TestAccumulatorEffectiveFrequency(t *testing.T) {
	acc := NewAccumulator(3.4)
	prev := acc.Read()
	acc.Advance(5, 3, 4.1, 0.8)
	d := acc.Read().Sub(prev)
	if got := d.EffectiveGHz(3.4); math.Abs(got-4.1) > 1e-9 {
		t.Fatalf("effective frequency %v, want 4.1", got)
	}
}

func TestAccumulatorMixedFrequencies(t *testing.T) {
	acc := NewAccumulator(3.4)
	prev := acc.Read()
	acc.Advance(10, 5, 3.4, 1.0)
	acc.Advance(20, 5, 4.1, 1.0)
	d := acc.Read().Sub(prev)
	// Average effective frequency over equal busy time: (3.4+4.1)/2.
	if got := d.EffectiveGHz(3.4); math.Abs(got-3.75) > 1e-9 {
		t.Fatalf("mixed effective frequency %v, want 3.75", got)
	}
}

func TestAccumulatorBackwardsTimePanics(t *testing.T) {
	acc := NewAccumulator(3.4)
	acc.Advance(10, 1, 3.4, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	acc.Advance(5, 1, 3.4, 0.5)
}

func TestEquation1FixedPoints(t *testing.T) {
	// s=1 (fully scalable): utilization scales exactly with f0/f1.
	if got := PredictUtilization(0.6, 1.0, 3.4, 4.1); math.Abs(got-0.6*3.4/4.1) > 1e-12 {
		t.Fatalf("fully scalable prediction %v", got)
	}
	// s=0 (fully stalled): frequency change is useless.
	if got := PredictUtilization(0.6, 0, 3.4, 4.1); got != 0.6 {
		t.Fatalf("memory-bound prediction %v, want unchanged", got)
	}
	// No frequency change: identity.
	if got := PredictUtilization(0.6, 0.7, 3.4, 3.4); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("identity prediction %v", got)
	}
}

func TestEquation1Formula(t *testing.T) {
	// util' = util × (s·f0/f1 + (1−s)).
	util, s, f0, f1 := 0.5, 0.882, 3.4, 4.1
	want := util * (s*f0/f1 + (1 - s))
	if got := PredictUtilization(util, s, f0, f1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Eq1 = %v, want %v", got, want)
	}
}

func TestEquation1Properties(t *testing.T) {
	f := func(uRaw, sRaw uint8) bool {
		util := float64(uRaw%100) / 100
		s := float64(sRaw%101) / 100
		up := PredictUtilization(util, s, 3.4, 4.1)
		down := PredictUtilization(util, s, 3.4, 3.0)
		// Overclocking never raises predicted utilization;
		// underclocking never lowers it.
		return up <= util+1e-12 && down >= util-1e-12 && up >= 0 && down <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEquation1RoundTrip(t *testing.T) {
	// Predicting f0→f1 then f1→f0 returns the original utilization
	// (as long as no clamping occurs).
	f := func(uRaw, sRaw uint8) bool {
		util := 0.1 + float64(uRaw%60)/100
		s := float64(sRaw%101) / 100
		u1 := PredictUtilization(util, s, 3.4, 4.1)
		u2 := PredictUtilization(u1, s, 4.1, 3.4)
		// Not an exact inverse (the scalable fraction is measured at
		// f0), but within the model it must round-trip when s is the
		// same busy-cycle fraction: util·(s·r+(1−s))·(s/r+(1−s)).
		return u2 >= u1 && u2 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinFreqForUtil(t *testing.T) {
	candidates := []float64{3.5, 3.6, 3.7, 3.8, 3.9, 4.0, 4.1}
	// util 0.45, s=0.9: find min f with predicted ≤ 0.40.
	f, ok := MinFreqForUtil(0.45, 0.9, 3.4, 0.40, candidates)
	if !ok {
		t.Fatal("no candidate found")
	}
	if got := PredictUtilization(0.45, 0.9, 3.4, f); got > 0.40 {
		t.Fatalf("selected %v gives util %v > target", f, got)
	}
	// The step below must NOT satisfy the target (minimality).
	for _, c := range candidates {
		if c < f && PredictUtilization(0.45, 0.9, 3.4, c) <= 0.40 {
			t.Fatalf("smaller candidate %v also satisfies target; %v not minimal", c, f)
		}
	}
}

func TestMinFreqForUtilInfeasible(t *testing.T) {
	candidates := []float64{3.5, 4.1}
	// Even max frequency cannot bring 0.9 util under 0.4.
	f, ok := MinFreqForUtil(0.9, 0.9, 3.4, 0.4, candidates)
	if ok {
		t.Fatal("infeasible target reported ok")
	}
	if f != 4.1 {
		t.Fatalf("infeasible fallback %v, want max candidate", f)
	}
}

func TestMinFreqForUtilEmpty(t *testing.T) {
	f, ok := MinFreqForUtil(0.9, 0.9, 3.4, 0.4, nil)
	if ok || f != 3.4 {
		t.Fatalf("empty candidates: %v %v", f, ok)
	}
}

func TestMaxDownFreqForUtil(t *testing.T) {
	candidates := []float64{3.4, 3.5, 3.6, 3.7, 3.8, 3.9, 4.0, 4.1}
	// Running at 4.1 with low utilization: scale down as far as the
	// target allows.
	f := MaxDownFreqForUtil(0.15, 0.9, 4.1, 0.36, candidates)
	if got := PredictUtilization(0.15, 0.9, 4.1, f); got > 0.36 {
		t.Fatalf("scale-down choice %v gives util %v > target", f, got)
	}
	if f != 3.4 {
		t.Fatalf("low utilization should drop to the bottom rung, got %v", f)
	}
}

func TestDeltaEdgeCases(t *testing.T) {
	var d Delta
	if d.ScalableFraction() != 0 || d.Utilization(4) != 0 || d.EffectiveGHz(3.4) != 0 {
		t.Fatal("zero delta not zero-valued")
	}
	d = Delta{Seconds: 10, BusyS: 100, Aperf: 10, Pperf: 20}
	if got := d.Utilization(1); got != 1 {
		t.Fatalf("utilization not clamped: %v", got)
	}
	if got := d.ScalableFraction(); got != 1 {
		t.Fatalf("scalable fraction not clamped: %v", got)
	}
}

func TestAccumulatorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero base frequency did not panic")
		}
	}()
	NewAccumulator(0)
}
