// Package counters emulates the per-core architecture-independent
// hardware counters the paper's auto-scaler consumes — Aperf (cycles
// the core is active) and Pperf (active cycles that are not stalled on
// a dependency such as a memory access) — plus utilization sampling and
// the delta arithmetic of Equation 1.
//
// For a workload whose busy time splits into a frequency-scalable
// fraction s (compute) and a non-scalable fraction 1−s (stalls), the
// counters satisfy ΔPperf/ΔAperf = s over any sampling interval.
package counters

import (
	"fmt"
	"math"
)

// Sample is a point-in-time reading of one core's (or VM's aggregate)
// counters.
type Sample struct {
	// TimeS is the sampling timestamp in seconds.
	TimeS float64
	// Aperf is accumulated active cycles.
	Aperf float64
	// Pperf is accumulated non-stalled active cycles.
	Pperf float64
	// Mperf is accumulated reference cycles while active (constant
	// rate), giving effective frequency as Aperf/Mperf × base.
	Mperf float64
	// BusyS is accumulated busy seconds (for utilization).
	BusyS float64
}

// Delta holds counter differences between two samples.
type Delta struct {
	Seconds float64
	Aperf   float64
	Pperf   float64
	Mperf   float64
	BusyS   float64
}

// Sub returns the delta from prev to s.
func (s Sample) Sub(prev Sample) Delta {
	return Delta{
		Seconds: s.TimeS - prev.TimeS,
		Aperf:   s.Aperf - prev.Aperf,
		Pperf:   s.Pperf - prev.Pperf,
		Mperf:   s.Mperf - prev.Mperf,
		BusyS:   s.BusyS - prev.BusyS,
	}
}

// ScalableFraction returns ΔPperf/ΔAperf: the fraction of busy cycles
// that scale with frequency. Returns 0 for an empty interval.
func (d Delta) ScalableFraction() float64 {
	if d.Aperf <= 0 {
		return 0
	}
	f := d.Pperf / d.Aperf
	return math.Max(0, math.Min(1, f))
}

// Utilization returns busy-time utilization over the interval given
// the number of cores aggregated into the sample.
func (d Delta) Utilization(cores int) float64 {
	if d.Seconds <= 0 || cores <= 0 {
		return 0
	}
	u := d.BusyS / (d.Seconds * float64(cores))
	return math.Max(0, math.Min(1, u))
}

// EffectiveGHz returns the average effective frequency over the
// interval given the reference (base) frequency behind Mperf.
func (d Delta) EffectiveGHz(baseGHz float64) float64 {
	if d.Mperf <= 0 {
		return 0
	}
	return baseGHz * d.Aperf / d.Mperf
}

// Accumulator integrates simulated activity into counter readings. The
// workload model drives it with (busy seconds, scalable fraction,
// frequency) intervals.
type Accumulator struct {
	baseGHz float64
	cur     Sample
}

// NewAccumulator returns an accumulator with the given reference
// frequency in GHz.
func NewAccumulator(baseGHz float64) *Accumulator {
	if baseGHz <= 0 {
		panic("counters: non-positive base frequency")
	}
	return &Accumulator{baseGHz: baseGHz}
}

// Advance integrates an interval ending at time t during which the
// core was busy for busyS seconds at frequency fGHz, with scalable
// fraction sf of busy cycles doing non-stalled work.
func (a *Accumulator) Advance(t, busyS, fGHz, sf float64) {
	if t < a.cur.TimeS {
		panic(fmt.Sprintf("counters: time went backwards: %v < %v", t, a.cur.TimeS))
	}
	if busyS < 0 {
		panic("counters: negative busy time")
	}
	sf = math.Max(0, math.Min(1, sf))
	cycles := busyS * fGHz * 1e9
	a.cur.TimeS = t
	a.cur.Aperf += cycles
	a.cur.Pperf += cycles * sf
	a.cur.Mperf += busyS * a.baseGHz * 1e9
	a.cur.BusyS += busyS
}

// Read returns the current counter values.
func (a *Accumulator) Read() Sample { return a.cur }

// PredictUtilization implements Equation 1 of the paper: the expected
// utilization after changing frequency from f0 to f1, given the current
// utilization and the scalable fraction ΔPperf/ΔAperf observed over the
// recent interval:
//
//	util' = util × (s·f0/f1 + (1−s))
//
// Frequency-scalable busy time shrinks proportionally with the clock;
// stalled time does not.
func PredictUtilization(util, scalableFraction, f0, f1 float64) float64 {
	if f1 <= 0 || f0 <= 0 {
		return util
	}
	s := math.Max(0, math.Min(1, scalableFraction))
	u := util * (s*f0/f1 + (1 - s))
	return math.Max(0, math.Min(1, u))
}

// MinFreqForUtil returns the minimum frequency from the ascending
// candidate list that keeps predicted utilization at or below target,
// per Equation 1. If none suffices, the highest candidate is returned
// with ok=false.
func MinFreqForUtil(util, scalableFraction, f0, target float64, candidates []float64) (float64, bool) {
	for _, f := range candidates {
		if PredictUtilization(util, scalableFraction, f0, f) <= target {
			return f, true
		}
	}
	if len(candidates) == 0 {
		return f0, false
	}
	return candidates[len(candidates)-1], false
}

// MaxDownFreqForUtil returns the lowest frequency from the ascending
// candidate list whose predicted utilization stays at or below target.
// It is used when scaling down: pick the slowest clock that will not
// push utilization back above the threshold.
func MaxDownFreqForUtil(util, scalableFraction, f0, target float64, candidates []float64) float64 {
	for _, f := range candidates {
		if PredictUtilization(util, scalableFraction, f0, f) <= target {
			return f
		}
	}
	if len(candidates) == 0 {
		return f0
	}
	return candidates[len(candidates)-1]
}
