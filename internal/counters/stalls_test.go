package counters

import (
	"math"
	"testing"

	"immersionoc/internal/workload"
)

// driveProfile feeds a workload profile's ground-truth behaviour into a
// stall accumulator for `seconds` of wall time at frequency f.
func driveProfile(acc *StallAccumulator, p workload.Profile, seconds, fGHz float64) {
	// Busy time per wall second is 1−WFixed for a continuously
	// loaded core; of busy cycles, the core/LLC/mem split follows
	// the vector.
	busyShare := p.WCore + p.WLLC + p.WMem
	if busyShare <= 0 {
		acc.Advance(seconds, 0, fGHz, 0, 0, 0)
		return
	}
	step := 1.0
	for t := step; t <= seconds+1e-9; t += step {
		acc.Advance(t, busyShare*step, fGHz,
			p.WCore/busyShare, p.WLLC/busyShare, p.WMem/busyShare)
	}
}

func TestStallVectorRecoversProfile(t *testing.T) {
	for _, p := range workload.Figure9Apps() {
		acc := NewStallAccumulator(3.4, 1)
		driveProfile(acc, p, 60, 3.4)
		d := acc.Read().SubStalls(StallSample{})
		core, llc, mem, fixed := d.Vector()
		for name, got := range map[string]struct{ got, want float64 }{
			"core":  {core, p.WCore},
			"llc":   {llc, p.WLLC},
			"mem":   {mem, p.WMem},
			"fixed": {fixed, p.WFixed},
		} {
			if math.Abs(got.got-got.want) > 0.02 {
				t.Errorf("%s %s: estimated %v, truth %v", p.Name, name, got.got, got.want)
			}
		}
	}
}

func TestStallVectorWithNoise(t *testing.T) {
	// With 5% counter-multiplexing noise the estimate stays within a
	// few points of the truth — good enough for config selection.
	p := workload.SQL
	acc := NewStallAccumulator(3.4, 7)
	acc.NoiseFrac = 0.05
	driveProfile(acc, p, 120, 3.4)
	d := acc.Read().SubStalls(StallSample{})
	core, llc, mem, fixed := d.Vector()
	sum := core + llc + mem + fixed
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("vector sums to %v", sum)
	}
	if math.Abs(core-p.WCore) > 0.06 || math.Abs(mem-p.WMem) > 0.06 {
		t.Fatalf("noisy estimate too far: core %v (truth %v), mem %v (truth %v)",
			core, p.WCore, mem, p.WMem)
	}
}

func TestStallVectorEmptyDelta(t *testing.T) {
	var d StallDelta
	core, llc, mem, fixed := d.Vector()
	if core != 0 || llc != 0 || mem != 0 || fixed != 1 {
		t.Fatalf("empty delta vector %v %v %v %v", core, llc, mem, fixed)
	}
}

func TestStallAccumulatorNormalizesOverfullFractions(t *testing.T) {
	acc := NewStallAccumulator(3.4, 1)
	acc.Advance(1, 1, 3.4, 0.8, 0.8, 0.8) // sums to 2.4 → normalized
	d := acc.Read().SubStalls(StallSample{})
	if d.Pperf > d.Aperf+1e-6 {
		t.Fatal("Pperf exceeds Aperf after normalization")
	}
	if d.LLCStall+d.MemStall+d.Pperf > d.Aperf*1.001 {
		t.Fatal("attributed cycles exceed active cycles")
	}
}

func TestStallAccumulatorPanics(t *testing.T) {
	acc := NewStallAccumulator(3.4, 1)
	acc.Advance(5, 1, 3.4, 0.5, 0.2, 0.2)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	acc.Advance(1, 1, 3.4, 0.5, 0.2, 0.2)
}

func TestEstimatedVectorDrivesGovernorLikeDecisions(t *testing.T) {
	// The estimated vector must rank configurations the same way the
	// ground truth does (the decision, not the decimals, is what
	// matters).
	for _, p := range []workload.Profile{workload.SQL, workload.BI, workload.Training} {
		acc := NewStallAccumulator(3.4, 3)
		acc.NoiseFrac = 0.03
		driveProfile(acc, p, 60, 3.4)
		d := acc.Read().SubStalls(StallSample{})
		core, llc, mem, fixed := d.Vector()
		est := workload.Profile{Name: p.Name + "-est", Cores: p.Cores,
			WCore: core, WLLC: llc, WMem: mem, WFixed: fixed}
		trueBest, _ := p.BestConfig()
		estBest, _ := est.BestConfig()
		if trueBest.Name != estBest.Name {
			t.Errorf("%s: estimate picks %s, truth picks %s", p.Name, estBest.Name, trueBest.Name)
		}
	}
}
