package counters

import (
	"math"

	"immersionoc/internal/rng"
)

// StallSample extends the Aperf/Pperf pair with the per-domain stall
// breakdown modern cores expose (CYCLE_ACTIVITY.STALLS_L2_MISS-style
// events): of the cycles Pperf does NOT count, how many were spent
// waiting on the LLC versus memory. Together with Aperf/Pperf these
// counters let a provider estimate a workload's bottleneck vector
// without knowing anything about the VM's contents — the "counter-based
// models" §IV and §V call for.
type StallSample struct {
	Sample
	// LLCStall and MemStall are accumulated stalled cycles
	// attributed to LLC hits-in-flight and DRAM misses.
	LLCStall, MemStall float64
	// WallS is accumulated wall-clock seconds (busy + idle), from
	// which the fixed (non-CPU) fraction of the workload is
	// inferred.
	WallS float64
}

// StallDelta is the difference of two StallSamples.
type StallDelta struct {
	Delta
	LLCStall, MemStall, WallS float64
}

// SubStalls returns the delta from prev to s.
func (s StallSample) SubStalls(prev StallSample) StallDelta {
	return StallDelta{
		Delta:    s.Sample.Sub(prev.Sample),
		LLCStall: s.LLCStall - prev.LLCStall,
		MemStall: s.MemStall - prev.MemStall,
		WallS:    s.WallS - prev.WallS,
	}
}

// Vector estimates the bottleneck fractions (core, LLC, memory, fixed)
// from the counter deltas. Core time is the non-stalled busy fraction,
// LLC/memory split the stalled busy cycles, and fixed time is the
// wall-clock remainder (I/O, network, think time) for a continuously
// loaded workload.
func (d StallDelta) Vector() (core, llc, mem, fixed float64) {
	if d.WallS <= 0 || d.Aperf <= 0 {
		return 0, 0, 0, 1
	}
	busyFrac := d.BusyS / d.WallS
	if busyFrac > 1 {
		busyFrac = 1
	}
	scal := d.ScalableFraction()
	stall := d.LLCStall + d.MemStall
	llcShare, memShare := 0.5, 0.5
	if stall > 0 {
		llcShare = d.LLCStall / stall
		memShare = d.MemStall / stall
	}
	core = busyFrac * scal
	llc = busyFrac * (1 - scal) * llcShare
	mem = busyFrac * (1 - scal) * memShare
	fixed = 1 - core - llc - mem
	if fixed < 0 {
		fixed = 0
	}
	return core, llc, mem, fixed
}

// StallAccumulator integrates simulated activity with per-domain stall
// attribution and optional measurement noise — the emulated hardware a
// governor samples in this repository.
type StallAccumulator struct {
	baseGHz float64
	cur     StallSample
	noise   *rng.Source
	// NoiseFrac perturbs each recorded quantity by a uniform
	// ±NoiseFrac relative error (counter multiplexing error).
	NoiseFrac float64
}

// NewStallAccumulator returns an accumulator; seed selects the
// measurement-noise stream (noise off until NoiseFrac is set).
func NewStallAccumulator(baseGHz float64, seed uint64) *StallAccumulator {
	if baseGHz <= 0 {
		panic("counters: non-positive base frequency")
	}
	return &StallAccumulator{baseGHz: baseGHz, noise: rng.New(seed)}
}

func (a *StallAccumulator) perturb(v float64) float64 {
	if a.NoiseFrac <= 0 {
		return v
	}
	return v * (1 + a.NoiseFrac*(2*a.noise.Float64()-1))
}

// Advance integrates an interval ending at wall time t: busyS busy
// seconds at fGHz, of which coreFrac retired work, llcFrac stalled on
// the LLC and memFrac stalled on memory (fractions of busy time;
// remainder is attributed to memory).
func (a *StallAccumulator) Advance(t, busyS, fGHz, coreFrac, llcFrac, memFrac float64) {
	if t < a.cur.WallS {
		panic("counters: time went backwards")
	}
	if busyS < 0 {
		panic("counters: negative busy time")
	}
	coreFrac = clampFrac(coreFrac)
	llcFrac = clampFrac(llcFrac)
	memFrac = clampFrac(memFrac)
	if s := coreFrac + llcFrac + memFrac; s > 1 {
		coreFrac, llcFrac, memFrac = coreFrac/s, llcFrac/s, memFrac/s
	}
	cycles := busyS * fGHz * 1e9
	a.cur.TimeS = t
	a.cur.WallS = t
	a.cur.Aperf += a.perturb(cycles)
	a.cur.Pperf += a.perturb(cycles * coreFrac)
	a.cur.Mperf += a.perturb(busyS * a.baseGHz * 1e9)
	a.cur.BusyS += busyS
	a.cur.LLCStall += a.perturb(cycles * llcFrac)
	a.cur.MemStall += a.perturb(cycles * memFrac)
}

func clampFrac(f float64) float64 { return math.Max(0, math.Min(1, f)) }

// Read returns the current counters.
func (a *StallAccumulator) Read() StallSample { return a.cur }
