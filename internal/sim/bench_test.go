package sim

import "testing"

// BenchmarkKernel measures the three kernel primitives the queueing
// engine leans on — the schedule→fire cycle of a self-rescheduling
// event chain, in-place retiming of a pending event, and the legacy
// cancel+reschedule idiom retiming replaces — under both queue
// backends, so the wheel-vs-heap delta is a first-class benchmark row.
// allocs/op is the headline: schedule-fire and retime must be
// allocation-free in steady state on either backend.
//
// Note the sparse single-event chain is the wheel's antagonistic case:
// every fire promotes a fresh bucket holding one event, so the heap's
// sift over a tiny heap wins this microbenchmark. The wheel earns its
// keep on dense schedules (BenchmarkOversubscribed), where promotion
// cost amortizes over bucket contents and retimes hit the same-slot
// fast path.
func BenchmarkKernel(b *testing.B) {
	for _, k := range []struct {
		name string
		impl QueueImpl
	}{
		{"wheel", WheelQueue},
		{"heap", HeapQueue},
	} {
		b.Run(k.name, func(b *testing.B) {
			b.Run("schedule-fire", func(b *testing.B) {
				s := NewWith(k.impl)
				n := 0
				var tick func(*Simulation)
				tick = func(sm *Simulation) {
					n++
					if n < b.N {
						sm.After(1, tick)
					}
				}
				s.After(1, tick)
				b.ReportAllocs()
				b.ResetTimer()
				s.Run()
				if n != b.N {
					b.Fatalf("fired %d events, want %d", n, b.N)
				}
			})

			b.Run("retime", func(b *testing.B) {
				s := NewWith(k.impl)
				// A realistic backlog so the heap has levels to sift
				// through and the wheel has occupied buckets.
				for i := 0; i < 64; i++ {
					s.Schedule(Time(1e17+float64(i)), func(*Simulation) {})
				}
				e := s.Schedule(1e18, func(*Simulation) {})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Reschedule(e, Time(i))
				}
			})

			b.Run("cancel-reschedule", func(b *testing.B) {
				s := NewWith(k.impl)
				fn := func(*Simulation) {}
				e := s.Schedule(1e18, fn)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Cancel()
					e = s.Schedule(Time(i), fn)
				}
			})
		})
	}
}
