package sim

import "testing"

// BenchmarkKernel measures the three kernel primitives the queueing
// engine leans on: the schedule→fire cycle of a self-rescheduling
// event chain, in-place retiming of a pending event, and the legacy
// cancel+reschedule idiom retiming replaces. allocs/op is the headline:
// schedule-fire and retime must be allocation-free in steady state
// (the free-list recycles fired events; retiming reuses the queued
// struct), while cancel-reschedule pays one allocation per op and
// leaves a dead event behind in the heap.
func BenchmarkKernel(b *testing.B) {
	b.Run("schedule-fire", func(b *testing.B) {
		s := New()
		n := 0
		var tick func(*Simulation)
		tick = func(sm *Simulation) {
			n++
			if n < b.N {
				sm.After(1, tick)
			}
		}
		s.After(1, tick)
		b.ReportAllocs()
		b.ResetTimer()
		s.Run()
		if n != b.N {
			b.Fatalf("fired %d events, want %d", n, b.N)
		}
	})

	b.Run("retime", func(b *testing.B) {
		s := New()
		// A realistic backlog so heap.Fix has levels to sift through.
		for i := 0; i < 64; i++ {
			s.Schedule(Time(1e17+float64(i)), func(*Simulation) {})
		}
		e := s.Schedule(1e18, func(*Simulation) {})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Reschedule(e, Time(i))
		}
	})

	b.Run("cancel-reschedule", func(b *testing.B) {
		s := New()
		fn := func(*Simulation) {}
		e := s.Schedule(1e18, fn)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Cancel()
			e = s.Schedule(Time(i), fn)
		}
	})
}
