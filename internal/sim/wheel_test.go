package sim

import (
	"math"
	"testing"
	"testing/quick"
)

// traceOp is one step of a randomized kernel trace: schedule, cancel,
// retime, or advance the clock. The numeric fields are interpreted
// modulo the live state so every generated value is a legal trace.
type traceOp struct {
	Kind  uint8
	Which uint16
	Delta uint8
}

// traceDelta spreads deltas across the wheel's interesting scales:
// zero (same timestamp), sub-tick, exactly one tick, millisecond and
// second scale (level 0-1), minute scale (level 2+), beyond the wheel
// horizon (overflow list), and +Inf.
func traceDelta(b uint8) float64 {
	switch b % 8 {
	case 0:
		return 0
	case 1:
		return 1.0 / 4096
	case 2:
		return 1.0 / 1024
	case 3:
		return float64(b) / 997
	case 4:
		return float64(b) * 0.37
	case 5:
		return float64(b) * 65.0
	case 6:
		return 1e10 + float64(b)*7e9
	default:
		if b > 250 {
			return math.Inf(1)
		}
		return float64(b) * 1e5
	}
}

// runTrace drives one kernel through a trace and returns the exact
// firing log (event ids in firing order) plus final clock state.
func runTrace(impl QueueImpl, ops []traceOp) (log []int, now Time, fired uint64) {
	s := NewWith(impl)
	var evs []*Event
	var alive []bool
	schedule := func(at Time) {
		id := len(evs)
		evs = append(evs, nil)
		alive = append(alive, true)
		evs[id] = s.Schedule(at, func(*Simulation) {
			log = append(log, id)
			alive[id] = false
			evs[id] = nil
		})
	}
	schedule(0)
	for _, op := range ops {
		switch op.Kind % 5 {
		case 0, 1: // weight toward scheduling
			schedule(s.Now() + Time(traceDelta(op.Delta)))
		case 2:
			if i := int(op.Which) % len(evs); alive[i] && !evs[i].Cancelled() {
				evs[i].Cancel()
				alive[i] = false
			}
		case 3:
			if i := int(op.Which) % len(evs); alive[i] && !evs[i].Cancelled() {
				s.Reschedule(evs[i], s.Now()+Time(traceDelta(op.Delta)))
			}
		case 4:
			s.RunUntil(s.Now() + Time(traceDelta(op.Delta)))
		}
	}
	s.Run()
	return log, s.Now(), s.EventsFired()
}

// TestWheelMatchesHeap is the differential gate for the timing-wheel
// kernel: random schedule/cancel/retime/advance traces must produce a
// firing order bit-identical to the binary-heap reference, including
// seq tie-breaking at equal timestamps and events parked beyond the
// wheel horizon.
func TestWheelMatchesHeap(t *testing.T) {
	f := func(ops []traceOp) bool {
		wLog, wNow, wFired := runTrace(WheelQueue, ops)
		hLog, hNow, hFired := runTrace(HeapQueue, ops)
		if wNow != hNow || wFired != hFired || len(wLog) != len(hLog) {
			t.Logf("wheel now=%v fired=%d n=%d; heap now=%v fired=%d n=%d",
				wNow, wFired, len(wLog), hNow, hFired, len(hLog))
			return false
		}
		for i := range wLog {
			if wLog[i] != hLog[i] {
				t.Logf("firing order diverges at %d: wheel %d, heap %d", i, wLog[i], hLog[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestWheelCursorCarry pins the block-boundary case: promoting the
// last tick of a 64-tick block carries the cursor into the next block
// without cascading it, so an event already parked at level 1 for that
// block must still fire before later same-block events that land
// directly in level 0.
func TestWheelCursorCarry(t *testing.T) {
	const tick = 1.0 / tickHz
	s := New()
	var order []string
	s.Schedule(Time(64*tick), func(*Simulation) { order = append(order, "levelled") }) // level 1 while cursor is in block 0
	s.Schedule(Time(63*tick), func(sm *Simulation) {
		order = append(order, "last-of-block")
		// Scheduled after the carry to tick 64: lands in level 0.
		sm.Schedule(Time(65*tick), func(*Simulation) { order = append(order, "direct") })
	})
	s.Run()
	want := []string{"last-of-block", "levelled", "direct"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("firing order %v, want %v", order, want)
		}
	}
}

// TestWheelLateScheduleBehindCursor pins the drain-merge case: peeking
// past the run horizon promotes a bucket and advances the cursor, and
// an event then scheduled into the already-promoted tick must still
// fire in timestamp order.
func TestWheelLateScheduleBehindCursor(t *testing.T) {
	const tick = 1.0 / tickHz
	s := New()
	var order []string
	s.Schedule(Time(100.7*tick), func(*Simulation) { order = append(order, "promoted") })
	// Stops short of the event but forces its bucket into the drain.
	s.RunUntil(Time(100.2 * tick))
	s.Schedule(Time(100.4*tick), func(*Simulation) { order = append(order, "late") })
	s.Run()
	if len(order) != 2 || order[0] != "late" || order[1] != "promoted" {
		t.Fatalf("firing order %v, want [late promoted]", order)
	}
}

// TestWheelOverflowRebase exercises the overflow list: events beyond
// the ~136-year wheel horizon park unordered, rebase onto the earliest
// when the wheel drains, and retimes can pull them back in.
func TestWheelOverflowRebase(t *testing.T) {
	s := New()
	var order []string
	s.Schedule(3e10, func(*Simulation) { order = append(order, "far-b") })
	s.Schedule(2e10, func(*Simulation) { order = append(order, "far-a") })
	e := s.Schedule(4e10, func(*Simulation) { order = append(order, "retimed") })
	s.Schedule(5, func(*Simulation) { order = append(order, "near") })
	s.RunUntil(10)
	s.Reschedule(e, 2e10) // overflow -> overflow, ties by fresh seq
	s.Run()
	want := []string{"near", "far-a", "retimed", "far-b"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("firing order %v, want %v", order, want)
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after run, want 0", s.Pending())
	}
}

// TestWheelInfiniteTimestamp: events at +Inf never fire under a finite
// horizon but do fire, in seq order, under Run().
func TestWheelInfiniteTimestamp(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(Time(math.Inf(1)), func(*Simulation) { order = append(order, 1) })
	s.Schedule(Time(math.Inf(1)), func(*Simulation) { order = append(order, 2) })
	s.RunUntil(1e12)
	if len(order) != 0 {
		t.Fatalf("infinite events fired under a finite horizon: %v", order)
	}
	s.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("firing order %v, want [1 2]", order)
	}
}

// TestWheelForeignEventPanics: rescheduling an event owned by the heap
// kernel on a wheel kernel (and vice versa) must panic, same as any
// other foreign event.
func TestWheelForeignEventPanics(t *testing.T) {
	for _, tc := range []struct {
		name       string
		mine, them QueueImpl
	}{
		{"heap event on wheel", WheelQueue, HeapQueue},
		{"wheel event on heap", HeapQueue, WheelQueue},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := NewWith(tc.mine)
			other := NewWith(tc.them)
			e := other.Schedule(1, func(*Simulation) {})
			s.Schedule(1, func(*Simulation) {})
			defer func() {
				if recover() == nil {
					t.Fatal("foreign reschedule did not panic")
				}
			}()
			s.Reschedule(e, 2)
		})
	}
}
