package sim

import (
	"context"
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleRunsInOrder(t *testing.T) {
	s := New()
	var got []float64
	for _, at := range []float64{3, 1, 2, 5, 4} {
		at := at
		s.Schedule(Time(at), func(sm *Simulation) {
			got = append(got, float64(sm.Now()))
		})
	}
	s.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestTieBreakByInsertionOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(7, func(*Simulation) { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken at %d: %v", i, got)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.Schedule(5, func(*Simulation) {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.Schedule(1, func(*Simulation) {})
}

func TestScheduleNaNPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("NaN time did not panic")
		}
	}()
	s.Schedule(Time(math.NaN()), func(*Simulation) {})
}

func TestAfter(t *testing.T) {
	s := New()
	var at Time
	s.Schedule(10, func(sm *Simulation) {
		sm.After(5, func(sm2 *Simulation) { at = sm2.Now() })
	})
	s.Run()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(1, func(*Simulation) { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New()
	s.Schedule(3, func(*Simulation) {})
	n := s.RunUntil(10)
	if n != 1 {
		t.Fatalf("fired %d, want 1", n)
	}
	if s.Now() != 10 {
		t.Fatalf("clock at %v, want 10", s.Now())
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	s := New()
	fired := 0
	s.Schedule(3, func(*Simulation) { fired++ })
	s.Schedule(30, func(*Simulation) { fired++ })
	s.RunUntil(10)
	if fired != 1 {
		t.Fatalf("fired %d before deadline, want 1", fired)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d, want 1", s.Pending())
	}
	s.Run()
	if fired != 2 {
		t.Fatalf("fired %d after Run, want 2", fired)
	}
}

func TestStop(t *testing.T) {
	s := New()
	fired := 0
	s.Schedule(1, func(sm *Simulation) { fired++; sm.Stop() })
	s.Schedule(2, func(*Simulation) { fired++ })
	s.Run()
	if fired != 1 {
		t.Fatalf("Stop did not halt the loop: fired %d", fired)
	}
}

func TestStep(t *testing.T) {
	s := New()
	s.Schedule(1, func(*Simulation) {})
	s.Schedule(2, func(*Simulation) {})
	if !s.Step() || s.Now() != 1 {
		t.Fatalf("first step: now=%v", s.Now())
	}
	if !s.Step() || s.Now() != 2 {
		t.Fatalf("second step: now=%v", s.Now())
	}
	if s.Step() {
		t.Fatal("step on empty queue returned true")
	}
}

func TestTicker(t *testing.T) {
	s := New()
	var ticks []float64
	var tk *Ticker
	tk = s.NewTicker(0, 10, func(sm *Simulation, at Time) {
		ticks = append(ticks, float64(at))
		if len(ticks) == 4 {
			tk.Stop()
		}
	})
	s.RunUntil(100)
	want := []float64{0, 10, 20, 30}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("zero period did not panic")
		}
	}()
	s.NewTicker(0, 0, func(*Simulation, Time) {})
}

func TestEventsFired(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.Schedule(Time(i), func(*Simulation) {})
	}
	s.Run()
	if s.EventsFired() != 7 {
		t.Fatalf("EventsFired %d, want 7", s.EventsFired())
	}
}

// Property: any multiset of timestamps executes in sorted order.
func TestPropertyOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New()
		var got []float64
		for _, r := range raw {
			at := Time(r)
			s.Schedule(at, func(sm *Simulation) { got = append(got, float64(sm.Now())) })
		}
		s.Run()
		return sort.Float64sAreSorted(got) && len(got) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: nested scheduling from callbacks never executes before its
// scheduling parent.
func TestPropertyCausality(t *testing.T) {
	f := func(delays []uint8) bool {
		s := New()
		ok := true
		for _, d := range delays {
			d := Duration(d)
			s.Schedule(1, func(sm *Simulation) {
				parent := sm.Now()
				sm.After(d, func(sm2 *Simulation) {
					if sm2.Now() < parent {
						ok = false
					}
				})
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilCtxCompletesWithNil(t *testing.T) {
	s := New()
	fired := 0
	s.Schedule(1, func(*Simulation) { fired++ })
	s.Schedule(2, func(*Simulation) { fired++ })
	if err := s.RunUntilCtx(context.Background(), 10); err != nil {
		t.Fatalf("RunUntilCtx = %v", err)
	}
	if fired != 2 || s.Now() != 10 {
		t.Fatalf("fired %d events, now %v", fired, s.Now())
	}
}

// TestRunUntilCtxStopsWithinBatch drives a self-rescheduling event
// stream that would otherwise fire a billion events and cancels after
// ten; the kernel must stop within one ctx-check batch instead of
// draining the simulation.
func TestRunUntilCtxStopsWithinBatch(t *testing.T) {
	s := New()
	ctx, cancel := context.WithCancel(context.Background())
	fired := 0
	var tick func(sm *Simulation)
	tick = func(sm *Simulation) {
		fired++
		if fired == 10 {
			cancel()
		}
		sm.After(1, tick)
	}
	s.After(1, tick)
	err := s.RunUntilCtx(ctx, Time(1e9))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunUntilCtx = %v, want context.Canceled", err)
	}
	if fired > 10+ctxCheckEvery {
		t.Fatalf("%d events fired after cancellation (batch is %d)", fired-10, ctxCheckEvery)
	}
}

// TestOnFlush pins the contract engines batching telemetry rely on:
// registered flushers run every time the run loop returns, on normal
// completion and on cancellation alike.
func TestOnFlush(t *testing.T) {
	s := New()
	flushes := 0
	s.OnFlush(func() { flushes++ })

	s.Schedule(1, func(*Simulation) {})
	s.Run()
	if flushes != 1 {
		t.Fatalf("flushes = %d after Run, want 1", flushes)
	}

	s.Schedule(2, func(*Simulation) {})
	if err := s.RunUntilCtx(context.Background(), 10); err != nil {
		t.Fatalf("RunUntilCtx = %v", err)
	}
	if flushes != 2 {
		t.Fatalf("flushes = %d after RunUntilCtx, want 2", flushes)
	}

	// Cancelled mid-run: the flush must still happen so partial
	// telemetry batches are published before the early return.
	ctx, cancel := context.WithCancel(context.Background())
	var tick func(sm *Simulation)
	tick = func(sm *Simulation) {
		cancel()
		sm.After(1, tick)
	}
	s.After(1, tick)
	if err := s.RunUntilCtx(ctx, Time(1e9)); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunUntilCtx = %v, want context.Canceled", err)
	}
	if flushes != 3 {
		t.Fatalf("flushes = %d after cancelled run, want 3", flushes)
	}
}
