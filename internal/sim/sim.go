// Package sim provides a deterministic discrete-event simulation kernel.
//
// A Simulation owns a virtual clock and a priority queue of pending
// events. Events are functions scheduled to run at a virtual time; ties
// are broken by insertion order so runs are fully deterministic. All of
// the experiment harnesses in this repository (queueing, auto-scaling,
// cluster failover) are built on this kernel.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"time"

	"immersionoc/internal/telemetry"
)

// Time is a virtual timestamp measured in seconds from simulation start.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// Seconds converts a time.Duration into simulation seconds.
func Seconds(d time.Duration) Duration { return d.Seconds() }

// Event is a scheduled callback. The callback receives the simulation so
// it can schedule follow-up events.
//
// Recycling contract: once an event has fired (or a cancelled event has
// been drained from the queue) the kernel recycles the struct through a
// free-list, and a later Schedule call may hand the same pointer out
// again for an unrelated event. A holder must therefore drop its
// reference when the event fires or after cancelling it; calling Cancel
// through a pointer retained past that moment could cancel whatever
// event the struct was reused for.
type Event struct {
	at  Time
	seq uint64
	fn  func(*Simulation)
	// idx is the event's slot in whichever queue container holds it
	// (heap index, wheel bucket slot, drain or overflow position);
	// -1 when not queued.
	idx  int
	loc  int32 // container code, see locNone and friends in wheel.go
	dead bool
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents a pending event from firing. The dead event stays in
// the queue until the run loop drains past it (lazy deletion), at which
// point the struct is recycled. Cancelling an event that already fired
// is safe only while the pointer is still current — see the recycling
// contract on Event.
func (e *Event) Cancel() { e.dead = true }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.dead }

// Queued reports whether the event is still in the pending queue
// (i.e. it has neither fired nor been drained after cancellation).
func (e *Event) Queued() bool { return e.idx >= 0 }

// queueImpl is the event-queue backend contract. Both implementations
// deliver events in strictly increasing (at, seq) order; Cancel stays
// lazy (tombstones are drained by the run loop), so len counts dead
// events until they pass the pop point.
type queueImpl interface {
	push(e *Event)
	// fix re-positions e after its (at, seq) changed in place.
	fix(e *Event)
	// queued reports whether e is currently held by this queue.
	queued(e *Event) bool
	peek() *Event
	pop() *Event
	len() int
}

// QueueImpl selects the event-queue backend for a Simulation.
type QueueImpl int

const (
	// WheelQueue is the default O(1) hierarchical timing wheel
	// (see wheel.go).
	WheelQueue QueueImpl = iota
	// HeapQueue is the O(log n) binary-heap reference kernel, kept
	// for differential testing against the wheel.
	HeapQueue
)

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}

// heapQueue adapts the container/heap eventQueue to queueImpl.
type heapQueue struct{ q eventQueue }

func (h *heapQueue) push(e *Event) {
	e.loc = locHeap
	heap.Push(&h.q, e)
}

func (h *heapQueue) fix(e *Event) { heap.Fix(&h.q, e.idx) }

func (h *heapQueue) queued(e *Event) bool {
	return e.idx >= 0 && e.idx < len(h.q) && h.q[e.idx] == e
}

func (h *heapQueue) peek() *Event {
	if len(h.q) == 0 {
		return nil
	}
	return h.q[0]
}

func (h *heapQueue) pop() *Event {
	if len(h.q) == 0 {
		return nil
	}
	e := heap.Pop(&h.q).(*Event)
	e.loc = locNone
	return e
}

func (h *heapQueue) len() int { return len(h.q) }

// Simulation is a discrete-event simulator instance. The zero value is
// not usable; construct with New.
type Simulation struct {
	now     Time
	queue   queueImpl
	seq     uint64
	stopped bool
	fired   uint64
	// events is the telemetry counter RunUntil flushes fired-event
	// batches into (nil = telemetry off).
	events *telemetry.Counter
	// flushers run whenever a RunUntil/RunUntilCtx call returns,
	// including on cancellation (see OnFlush).
	flushers []func()
	// free recycles fired and drained-cancelled Event structs. The
	// kernel is single-goroutine, so a plain slice stack suffices; its
	// high-water mark is the peak number of simultaneously queued
	// events, not the event count of the run.
	free []*Event
}

// alloc returns an Event from the free-list, or a fresh one.
func (s *Simulation) alloc(at Time, fn func(*Simulation)) *Event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.at, e.seq, e.fn, e.idx, e.loc, e.dead = at, s.seq, fn, -1, locNone, false
		return e
	}
	return &Event{at: at, seq: s.seq, fn: fn, idx: -1, loc: locNone}
}

// release recycles an event that left the queue. The callback reference
// is dropped immediately so captured state can be collected; dead is
// deliberately kept so Cancelled() stays truthful on a drained event
// until the struct is reused (alloc resets it).
func (s *Simulation) release(e *Event) {
	e.fn = nil
	s.free = append(s.free, e)
}

// OnFlush registers fn to run every time a RunUntil/RunUntilCtx call
// returns — normal completion, Stop, and cancellation alike. Engines
// that batch telemetry in goroutine-local accumulators (see
// telemetry.HistAccum) register their flush here so shared metrics
// are complete whenever the kernel hands control back.
func (s *Simulation) OnFlush(fn func()) {
	s.flushers = append(s.flushers, fn)
}

// SetTelemetry points the kernel's event counter at scope's "events"
// counter. RunUntil flushes in batches of ctxCheckEvery so the hot
// loop stays one local increment per event. A nil scope detaches.
func (s *Simulation) SetTelemetry(scope *telemetry.Scope) {
	s.events = scope.Counter("events")
}

// New returns an empty simulation with the clock at zero, backed by
// the timing-wheel event queue.
func New() *Simulation {
	return NewWith(WheelQueue)
}

// NewWith returns an empty simulation backed by the chosen event-queue
// implementation. Both backends fire events in the exact same order;
// HeapQueue exists so differential tests can compare the wheel against
// the reference kernel.
func NewWith(impl QueueImpl) *Simulation {
	switch impl {
	case HeapQueue:
		return &Simulation{queue: &heapQueue{}}
	default:
		return &Simulation{queue: newWheelQueue()}
	}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// EventsFired returns the number of events executed so far.
func (s *Simulation) EventsFired() uint64 { return s.fired }

// Pending returns the number of events still queued (cancelled events
// count until the run loop drains past them).
func (s *Simulation) Pending() int { return s.queue.len() }

// Schedule queues fn to run at absolute virtual time at. Scheduling in
// the past (before Now) panics: it indicates a logic error in the model.
func (s *Simulation) Schedule(at Time, fn func(*Simulation)) *Event {
	if math.IsNaN(float64(at)) {
		panic("sim: schedule at NaN time")
	}
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	e := s.alloc(at, fn)
	s.seq++
	s.queue.push(e)
	return e
}

// Reschedule moves a pending event to a new time in place: the queued
// struct is retimed and sift-fixed at its tracked heap index, with no
// allocation and no dead tombstone left behind. The event's insertion
// sequence is bumped exactly as if it had been cancelled and scheduled
// anew, so tie-breaking against other events at the same timestamp is
// byte-for-byte identical to the cancel-then-reschedule idiom it
// replaces. Retiming an event that is not currently queued (it fired,
// was drained, or belongs to another simulation) or that has been
// cancelled indicates a logic error in the model and panics.
func (s *Simulation) Reschedule(e *Event, at Time) {
	if math.IsNaN(float64(at)) {
		panic("sim: reschedule at NaN time")
	}
	if at < s.now {
		panic(fmt.Sprintf("sim: reschedule at %v before now %v", at, s.now))
	}
	if !s.queue.queued(e) {
		panic("sim: reschedule of an event that is not queued")
	}
	if e.dead {
		panic("sim: reschedule of a cancelled event")
	}
	e.at = at
	e.seq = s.seq
	s.seq++
	s.queue.fix(e)
}

// After queues fn to run d seconds after the current time.
func (s *Simulation) After(d Duration, fn func(*Simulation)) *Event {
	return s.Schedule(s.now+Time(d), fn)
}

// Stop halts the run loop after the current event completes.
func (s *Simulation) Stop() { s.stopped = true }

// Run executes events until the queue drains or Stop is called.
func (s *Simulation) Run() {
	s.RunUntil(Time(math.Inf(1)))
}

// ctxCheckEvery is how many fired events pass between context checks
// in RunUntilCtx — frequent enough that cancellation lands within
// microseconds of wall time, rare enough that the check (one atomic
// load inside ctx.Err) is invisible in profiles. It doubles as the
// telemetry flush batch size.
const ctxCheckEvery = 256

// RunUntil executes events with timestamps <= end, then sets the clock
// to end (if end is finite and beyond the last event). Returns the
// number of events fired during this call.
func (s *Simulation) RunUntil(end Time) uint64 {
	n, _ := s.runUntil(nil, end)
	return n
}

// RunUntilCtx executes like RunUntil but polls ctx every ctxCheckEvery
// events and stops the loop as soon as cancellation is observed,
// returning the context error. This is the cancellation checkpoint
// every simulation-backed experiment harness runs through: a cancelled
// run stops mid-simulation instead of burning CPU to completion.
func (s *Simulation) RunUntilCtx(ctx context.Context, end Time) error {
	_, err := s.runUntil(ctx, end)
	return err
}

func (s *Simulation) runUntil(ctx context.Context, end Time) (uint64, error) {
	start := s.fired
	s.stopped = false
	var batch uint64
	flush := func() {
		s.events.Add(batch)
		batch = 0
		for _, fn := range s.flushers {
			fn()
		}
	}
	for !s.stopped {
		if batch >= ctxCheckEvery {
			s.events.Add(batch)
			batch = 0
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					flush()
					return s.fired - start, err
				}
			}
		}
		next := s.queue.peek()
		if next == nil || next.at > end {
			break
		}
		s.queue.pop()
		if next.dead {
			s.release(next)
			continue
		}
		s.now = next.at
		s.fired++
		batch++
		next.fn(s)
		s.release(next)
	}
	flush()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return s.fired - start, err
		}
	}
	if !math.IsInf(float64(end), 1) && end > s.now {
		s.now = end
	}
	return s.fired - start, nil
}

// Step executes exactly one pending event (skipping cancelled ones) and
// reports whether an event was executed.
func (s *Simulation) Step() bool {
	for {
		e := s.queue.pop()
		if e == nil {
			return false
		}
		if e.dead {
			s.release(e)
			continue
		}
		s.now = e.at
		s.fired++
		e.fn(s)
		s.release(e)
		return true
	}
}

// Ticker invokes fn every period seconds starting at start, until the
// returned stop function is called or the simulation ends.
type Ticker struct {
	period Duration
	fn     func(*Simulation, Time)
	ev     *Event
	done   bool
}

// NewTicker schedules a periodic callback. period must be positive.
func (s *Simulation) NewTicker(start Time, period Duration, fn func(*Simulation, Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{period: period, fn: fn}
	var tick func(*Simulation)
	tick = func(sm *Simulation) {
		if t.done {
			return
		}
		t.fn(sm, sm.Now())
		if !t.done {
			t.ev = sm.After(t.period, tick)
		} else {
			// The just-fired event is about to be recycled; drop the
			// reference so a late Stop cannot cancel its successor.
			t.ev = nil
		}
	}
	t.ev = s.Schedule(start, tick)
	return t
}

// Stop cancels future ticks. Safe to call more than once.
func (t *Ticker) Stop() {
	t.done = true
	if t.ev != nil {
		t.ev.Cancel()
		t.ev = nil
	}
}
