package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRescheduleMovesEvent(t *testing.T) {
	s := New()
	var at Time
	e := s.Schedule(10, func(sm *Simulation) { at = sm.Now() })
	s.Reschedule(e, 5)
	if e.At() != 5 {
		t.Fatalf("At() = %v after reschedule, want 5", e.At())
	}
	s.Run()
	if at != 5 {
		t.Fatalf("rescheduled event fired at %v, want 5", at)
	}
	if s.EventsFired() != 1 {
		t.Fatalf("EventsFired = %d, want 1", s.EventsFired())
	}
}

// TestRescheduleTieBreak pins the sequence-bump rule: a retimed event
// loses its original insertion rank and ties like a freshly scheduled
// one, exactly as cancel-then-reschedule behaved.
func TestRescheduleTieBreak(t *testing.T) {
	s := New()
	var got []string
	b := s.Schedule(3, func(*Simulation) { got = append(got, "b") }) // seq 0
	s.Schedule(5, func(*Simulation) { got = append(got, "a") })     // seq 1
	s.Reschedule(b, 5)                                              // b now ties with a but with a later seq
	s.Run()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("tie order %v, want [a b]", got)
	}
}

// TestRetimeMatchesCancelReschedule drives the same random scenario
// through in-place retiming and through the legacy cancel+reschedule
// idiom and requires the exact same firing order — the equivalence the
// queueing engine's byte-identical outputs rest on.
func TestRetimeMatchesCancelReschedule(t *testing.T) {
	type op struct {
		Idx   uint8 // which event to move
		To    uint8 // new timestamp
		After uint8 // extra noise event scheduled alongside
	}
	f := func(times []uint8, ops []op) bool {
		if len(times) == 0 {
			return true
		}
		run := func(retime bool) []int {
			s := New()
			var order []int
			evs := make([]*Event, len(times))
			record := func(i int) func(*Simulation) {
				return func(*Simulation) { order = append(order, i) }
			}
			for i, at := range times {
				evs[i] = s.Schedule(Time(at), record(i))
			}
			for _, o := range ops {
				i := int(o.Idx) % len(evs)
				if retime {
					s.Reschedule(evs[i], Time(o.To))
				} else {
					evs[i].Cancel()
					evs[i] = s.Schedule(Time(o.To), record(i))
				}
				s.Schedule(Time(o.After), record(1000+int(o.After)))
			}
			s.Run()
			return order
		}
		a, b := run(true), run(false)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFreelistReuseDoesNotResurrectCancellation checks that a recycled
// Event struct sheds its previous life: a new event built from a
// cancelled-and-drained struct must fire, and must not report the old
// cancellation.
func TestFreelistReuseDoesNotResurrectCancellation(t *testing.T) {
	s := New()
	e1 := s.Schedule(1, func(*Simulation) { t.Fatal("cancelled event fired") })
	e1.Cancel()
	s.RunUntil(2) // drains the tombstone into the free-list
	if e1.Queued() {
		t.Fatal("drained event still reports queued")
	}
	fired := false
	e2 := s.Schedule(3, func(*Simulation) { fired = true })
	if e2 != e1 {
		t.Fatalf("free-list did not recycle the drained struct (got %p, want %p)", e2, e1)
	}
	if e2.Cancelled() {
		t.Fatal("recycled event born cancelled")
	}
	s.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

// TestAccountingAfterRetime pins Pending/EventsFired semantics:
// retiming neither fires an event nor leaves a tombstone, while the
// legacy idiom inflates Pending with a dead event until the queue
// drains past it.
func TestAccountingAfterRetime(t *testing.T) {
	s := New()
	var evs []*Event
	for i := 0; i < 3; i++ {
		evs = append(evs, s.Schedule(Time(i+1), func(*Simulation) {}))
	}
	s.Reschedule(evs[0], 7)
	s.Reschedule(evs[0], 4)
	if s.Pending() != 3 {
		t.Fatalf("Pending = %d after retimes, want 3", s.Pending())
	}
	if s.EventsFired() != 0 {
		t.Fatalf("EventsFired = %d before run, want 0", s.EventsFired())
	}
	// Legacy idiom for contrast: tombstone visible until drained.
	evs[1].Cancel()
	s.Schedule(5, func(*Simulation) {})
	if s.Pending() != 4 {
		t.Fatalf("Pending = %d with tombstone, want 4", s.Pending())
	}
	s.Run()
	if s.EventsFired() != 3 {
		t.Fatalf("EventsFired = %d after run, want 3", s.EventsFired())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after run, want 0", s.Pending())
	}
}

func TestReschedulePanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(s *Simulation)
	}{
		{"fired event", func(s *Simulation) {
			e := s.Schedule(1, func(*Simulation) {})
			s.Run()
			s.Reschedule(e, 2)
		}},
		{"cancelled event", func(s *Simulation) {
			e := s.Schedule(1, func(*Simulation) {})
			e.Cancel()
			s.Reschedule(e, 2)
		}},
		{"past time", func(s *Simulation) {
			s.Schedule(1, func(*Simulation) {})
			e := s.Schedule(10, func(*Simulation) {})
			s.RunUntil(5)
			s.Reschedule(e, 2)
		}},
		{"NaN time", func(s *Simulation) {
			e := s.Schedule(1, func(*Simulation) {})
			s.Reschedule(e, Time(math.NaN()))
		}},
		{"foreign event", func(s *Simulation) {
			other := New()
			e := other.Schedule(1, func(*Simulation) {})
			s.Schedule(1, func(*Simulation) {})
			s.Reschedule(e, 2)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.f(New())
		})
	}
}

// TestKernelSteadyStateAllocFree pins the free-list guarantee: once
// warm, a self-rescheduling event stream allocates nothing at all.
func TestKernelSteadyStateAllocFree(t *testing.T) {
	s := New()
	var tick func(*Simulation)
	tick = func(sm *Simulation) { sm.After(1, tick) }
	s.After(1, tick)
	s.RunUntil(100) // warm the free-list
	avg := testing.AllocsPerRun(100, func() {
		s.RunUntil(s.Now() + 50)
	})
	if avg != 0 {
		t.Fatalf("steady-state kernel allocates %.2f allocs per 50-event batch, want 0", avg)
	}
}

// TestTickerStopSafeAfterRecycle guards the recycling contract at the
// one call site that retains fired events: a second Stop after the
// ticker's event struct was recycled must not cancel the new owner.
func TestTickerStopSafeAfterRecycle(t *testing.T) {
	s := New()
	var tk *Ticker
	tk = s.NewTicker(0, 1, func(*Simulation, Time) { tk.Stop() })
	s.RunUntil(5)
	fired := false
	s.Schedule(10, func(*Simulation) { fired = true }) // likely reuses the recycled struct
	tk.Stop()                                          // must be a no-op
	s.Run()
	if !fired {
		t.Fatal("late Ticker.Stop cancelled an unrelated recycled event")
	}
}
