package sim

import (
	"math"
	"math/bits"
	"sort"
)

// eventBefore is the kernel's total order: (at, seq) ascending. seq is
// unique, so there are no ties and any comparison sort produces the
// same sequence.
func eventBefore(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// sortEvents sorts in place by (at, seq) without allocating
// (sort.Slice would heap-allocate its closure on every bucket
// promotion). Insertion sort covers the common handful-sized bucket;
// larger runs take median-of-three quicksort with the same base case.
func sortEvents(s []*Event) {
	if len(s) <= 24 {
		insertionSortEvents(s)
		return
	}
	// Median-of-three pivot guards against presorted runs.
	m := len(s) / 2
	lo, hi := 0, len(s)-1
	if eventBefore(s[m], s[lo]) {
		s[m], s[lo] = s[lo], s[m]
	}
	if eventBefore(s[hi], s[m]) {
		s[m], s[hi] = s[hi], s[m]
		if eventBefore(s[m], s[lo]) {
			s[m], s[lo] = s[lo], s[m]
		}
	}
	pivot := s[m]
	i, j := lo, hi
	for i <= j {
		for eventBefore(s[i], pivot) {
			i++
		}
		for eventBefore(pivot, s[j]) {
			j--
		}
		if i <= j {
			s[i], s[j] = s[j], s[i]
			i++
			j--
		}
	}
	sortEvents(s[:j+1])
	sortEvents(s[i:])
}

func insertionSortEvents(s []*Event) {
	for i := 1; i < len(s); i++ {
		e := s[i]
		j := i - 1
		for j >= 0 && eventBefore(e, s[j]) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = e
	}
}

// The timing wheel quantizes virtual time into ticks of 1/tickHz
// seconds. tickHz is a power of two so `at * tickHz` is exact float64
// arithmetic (a pure exponent shift): the tick of a timestamp is a
// deterministic function of the timestamp alone, never of accumulated
// rounding. At 4096 ticks/second one bucket spans ~0.24 ms, a shade
// under the inter-event gap in the queueing harnesses, so level-0
// buckets hold a couple of events each and the per-promotion sort
// stays in insertion sort's cheapest regime (finer ticks buy nothing:
// promotions start outnumbering events).
const (
	wheelBits   = 6
	wheelSize   = 1 << wheelBits // buckets per level
	wheelLevels = 7
	tickHz      = 4096.0
	// wheelSpanTicks is the horizon of the top level: 64^7 ticks
	// (~2^30 virtual seconds, ≈34 years). Events beyond it park in
	// the overflow list until the wheel rebases.
	wheelSpanTicks = float64(1) * wheelSize * wheelSize * wheelSize *
		wheelSize * wheelSize * wheelSize * wheelSize
)

// Event location codes (Event.loc). A queued event records which
// container holds it so Reschedule can detach it in O(1) and so
// foreign events (owned by a different Simulation) are detected.
const (
	locNone     = -1 // not queued
	locHeap     = -2 // owned by the heap kernel (slot in Event.idx)
	locDrain    = -3 // wheelQueue.drain (slot in Event.idx)
	locOverflow = -4 // wheelQueue.overflow (slot in Event.idx)
	// loc >= 0: wheel bucket level*wheelSize + bucket (slot in Event.idx)
)

// wheelLevel is one wheel of 64 buckets. Bucket j at level l holds
// events whose tick agrees with the cursor on every base-64 digit
// above l and whose digit l equals j. wheelQueue.occ mirrors bucket
// non-emptiness so the next event is found with one TrailingZeros64
// per level instead of a bucket scan.
type wheelLevel struct {
	buckets [wheelSize][]*Event
}

// wheelQueue is a hierarchical timing wheel with the same observable
// ordering as the binary heap: events fire in strictly increasing
// (at, seq) order.
//
// Determinism argument: cursor partitions tick space. Every queued
// event with tick < cursor sits in drain, which is kept sorted by
// (at, seq); every event with tick >= cursor sits in a wheel bucket
// (or overflow), and all of those order after everything in drain
// because a bucket holds exactly one tick value and ticks are
// monotone in time. Buckets are promoted into drain in increasing
// tick order and sorted by (at, seq) at promotion, and cascades only
// move events between levels without reordering the tick partition.
// Within a tick, (at, seq) is a total order (seq is unique), so the
// sort result is independent of insertion order. The global firing
// sequence is therefore exactly the (at, seq) ascending order the
// heap produces — bit-identical, which TestWheelMatchesHeap pins.
type wheelQueue struct {
	origin float64 // virtual time of tick 0 (changes only on rebase)
	// cursor is the smallest tick not yet promoted into drain.
	cursor uint64
	// drain holds the events currently being fired plus any late
	// arrivals whose tick already passed the cursor, sorted by
	// (at, seq). head indexes the next entry to pop.
	drain []*Event
	head  int
	// levels[0] is the finest wheel (1 tick per bucket); level l
	// buckets span 64^l ticks. occ packs the per-level occupancy
	// bitmaps into one cache line so promote's scans stay off the
	// ~10 KiB bucket array until a bucket is actually touched.
	levels [wheelLevels]wheelLevel
	occ    [wheelLevels]uint64
	// overflow parks events beyond the top-level horizon, unordered.
	// When every level is empty the wheel rebases its origin onto the
	// earliest overflow event and redistributes.
	overflow []*Event
	count    int
	// carry is set when a level-0 promotion carries the cursor into a
	// higher digit. Only then can a bucket at one of the cursor's own
	// digits be occupied (place always files at a digit strictly above
	// the cursor's), so promote's own-digit cascade pass is gated on it.
	carry bool
}

func newWheelQueue() *wheelQueue {
	w := &wheelQueue{}
	// Pre-carve a few slots for every bucket out of one backing array.
	// Buckets are first touched only when virtual time crosses their
	// block boundary, so growing them lazily would dribble allocations
	// through the whole run (and through the steady-state zero-alloc
	// tests); one up-front ~14 KiB array pays for all of them. Buckets
	// that outgrow their carve re-slice via append and keep the larger
	// storage from then on.
	const perBucket = 4
	backing := make([]*Event, wheelLevels*wheelSize*perBucket)
	for l := range w.levels {
		for b := range w.levels[l].buckets {
			o := (l*wheelSize + b) * perBucket
			w.levels[l].buckets[b] = backing[o:o : o+perBucket]
		}
	}
	return w
}

// tickOf maps a timestamp to a tick, or reports overflow. rel is
// clamped at zero: after a rebase the origin can sit ahead of Now, and
// anything scheduled before the origin belongs with the earliest tick.
func (w *wheelQueue) tickOf(at Time) (tick uint64, overflow bool) {
	rel := (float64(at) - w.origin) * tickHz
	if rel < 0 {
		return 0, false
	}
	// rel >= span also catches +Inf; NaN is rejected by Schedule.
	if rel >= wheelSpanTicks {
		return 0, true
	}
	return uint64(rel), false
}

func (w *wheelQueue) len() int { return w.count }

func (w *wheelQueue) push(e *Event) {
	w.count++
	w.place(e)
}

// place files an event into drain, a wheel bucket, or overflow
// according to its tick. Does not touch count (rebase reuses it).
func (w *wheelQueue) place(e *Event) {
	t, over := w.tickOf(e.at)
	w.placeAt(e, t, over)
}

// placeAt is place with the tick already computed (fix shares the
// computation with its same-slot check).
func (w *wheelQueue) placeAt(e *Event, t uint64, over bool) {
	if over {
		e.loc = locOverflow
		e.idx = len(w.overflow)
		w.overflow = append(w.overflow, e)
		return
	}
	if t < w.cursor {
		w.drainInsert(e)
		return
	}
	// Highest base-64 digit where the tick differs from the cursor
	// picks the level; the tick's digit at that level picks the
	// bucket. diff == 0 (tick == cursor, not yet promoted) lands in
	// level 0 like any other same-block tick.
	diff := t ^ w.cursor
	lvl := 0
	if diff != 0 {
		lvl = (bits.Len64(diff) - 1) / wheelBits
	}
	b := (t >> (lvl * wheelBits)) & (wheelSize - 1)
	wl := &w.levels[lvl]
	e.loc = int32(lvl*wheelSize + int(b))
	e.idx = len(wl.buckets[b])
	wl.buckets[b] = append(wl.buckets[b], e)
	w.occ[lvl] |= 1 << b
}

// drainInsert places a late event (tick already behind the cursor)
// into the sorted drain at its (at, seq) position.
func (w *wheelQueue) drainInsert(e *Event) {
	live := w.drain[w.head:]
	i := sort.Search(len(live), func(i int) bool {
		o := live[i]
		if o.at != e.at {
			return o.at > e.at
		}
		return o.seq > e.seq
	})
	w.drain = append(w.drain, nil)
	live = w.drain[w.head:]
	copy(live[i+1:], live[i:])
	live[i] = e
	e.loc = locDrain
	for k := i; k < len(live); k++ {
		live[k].idx = w.head + k
	}
}

// remove detaches a queued event from whichever container holds it.
func (w *wheelQueue) remove(e *Event) {
	switch {
	case e.loc == locDrain:
		live := w.drain[w.head:]
		i := e.idx - w.head
		copy(live[i:], live[i+1:])
		w.drain = w.drain[:len(w.drain)-1]
		live = w.drain[w.head:]
		for k := i; k < len(live); k++ {
			live[k].idx = w.head + k
		}
	case e.loc == locOverflow:
		// Swap-remove; the truncated tail slot keeps a stale pointer
		// (events are free-listed, nil-ing it would only add a write
		// barrier on the Reschedule hot path).
		last := len(w.overflow) - 1
		w.overflow[e.idx] = w.overflow[last]
		w.overflow[e.idx].idx = e.idx
		w.overflow = w.overflow[:last]
	default:
		lvl := int(e.loc) / wheelSize
		b := int(e.loc) % wheelSize
		wl := &w.levels[lvl]
		bk := wl.buckets[b]
		last := len(bk) - 1
		bk[e.idx] = bk[last]
		bk[e.idx].idx = e.idx
		wl.buckets[b] = bk[:last]
		if last == 0 {
			w.occ[lvl] &^= 1 << b
		}
	}
	e.loc = locNone
	e.idx = -1
}

// fix re-files an event after Reschedule updated its (at, seq).
// Buckets and the overflow list are unordered, so a retime that maps
// to the event's current slot — common for the host-wide completion
// retiming that processor sharing does on every share change — is a
// no-op instead of a remove/re-append pair.
func (w *wheelQueue) fix(e *Event) {
	t, over := w.tickOf(e.at)
	if e.loc >= 0 {
		if !over && t >= w.cursor {
			diff := t ^ w.cursor
			lvl := 0
			if diff != 0 {
				lvl = (bits.Len64(diff) - 1) / wheelBits
			}
			b := (t >> (lvl * wheelBits)) & (wheelSize - 1)
			if int32(lvl*wheelSize+int(b)) == e.loc {
				return
			}
		}
	} else if e.loc == locOverflow && over {
		return
	}
	w.remove(e)
	w.placeAt(e, t, over)
}

// queued reports whether e is currently held by this queue; used by
// Reschedule to reject fired, drained, and foreign events.
func (w *wheelQueue) queued(e *Event) bool {
	switch {
	case e.idx < 0:
		return false
	case e.loc == locDrain:
		return e.idx < len(w.drain) && w.drain[e.idx] == e
	case e.loc == locOverflow:
		return e.idx < len(w.overflow) && w.overflow[e.idx] == e
	case e.loc >= 0 && int(e.loc) < wheelLevels*wheelSize:
		bk := w.levels[int(e.loc)/wheelSize].buckets[int(e.loc)%wheelSize]
		return e.idx < len(bk) && bk[e.idx] == e
	}
	return false
}

// peek returns the earliest queued event without removing it,
// promoting wheel buckets into drain as needed. Promotion is
// order-safe before the event actually fires: late schedules that
// land behind the cursor are merge-inserted into drain, so the head
// of drain is always the global (at, seq) minimum — every wheel or
// drain event precedes origin+span, every finite overflow event is at
// or past it, and +Inf events come last of all.
func (w *wheelQueue) peek() *Event {
	for {
		if w.head < len(w.drain) {
			return w.drain[w.head]
		}
		if w.count > len(w.overflow) {
			// Drain is dry but the wheel levels are not.
			w.promote()
			return w.drain[w.head]
		}
		if len(w.overflow) == 0 {
			return nil
		}
		// Only overflow remains. Rebase onto the earliest finite
		// event; if none is left, hand out the +Inf events directly
		// in (at, seq) order — they must never enter the drain, or a
		// later-scheduled finite event would order after them.
		min := math.Inf(1)
		for _, e := range w.overflow {
			if float64(e.at) < min {
				min = float64(e.at)
			}
		}
		if math.IsInf(min, 1) {
			first := w.overflow[0]
			for _, e := range w.overflow[1:] {
				if eventBefore(e, first) {
					first = e
				}
			}
			return first
		}
		w.rebase(min)
	}
}

func (w *wheelQueue) pop() *Event {
	e := w.peek()
	if e == nil {
		return nil
	}
	if e.loc == locOverflow {
		w.remove(e)
	} else {
		// The fired slot is left as a stale pointer rather than
		// nil-ed: entries before head are never read, the next
		// promotion truncates them, and events are free-listed by the
		// kernel anyway — skipping the store saves a write barrier
		// per event.
		w.head++
		e.loc = locNone
		e.idx = -1
	}
	w.count--
	return e
}

// promote advances the cursor to the next occupied bucket, cascading
// higher-level buckets down until a level-0 bucket is reached, then
// sorts that bucket into the (empty) drain. Precondition: at least
// one event is queued in the wheel levels.
func (w *wheelQueue) promote() {
	for {
		// A cursor advance that carried into a higher digit can leave
		// that level's bucket at the cursor's own digit holding ticks
		// inside the current block — ticks that may precede anything
		// at lower levels. Cascade those first, highest level down
		// (redistribution lands strictly below the cascaded level and
		// never back on a cursor digit, so one pass per carry suffices).
		if w.carry {
			w.carry = false
			for l := wheelLevels - 1; l >= 1; l-- {
				d := (w.cursor >> (l * wheelBits)) & (wheelSize - 1)
				if w.occ[l]&(1<<d) != 0 {
					w.cascade(l, d)
				}
			}
		}
		lvl := -1
		var j uint64
		for l := 0; l < wheelLevels; l++ {
			d := (w.cursor >> (l * wheelBits)) & (wheelSize - 1)
			// Buckets at index >= the cursor's digit hold ticks at or
			// after the cursor (higher digits agree with the cursor).
			if m := w.occ[l] >> d << d; m != 0 {
				lvl, j = l, uint64(bits.TrailingZeros64(m))
				break
			}
		}
		if lvl < 0 {
			panic("sim: timing wheel promote on empty wheel")
		}
		if lvl == 0 {
			// One tick's worth of events: advance the cursor past it
			// and sort them into the drain. The slices swap storage —
			// copying the pointers out and nil-ing the bucket would
			// cost two write barriers per event on the hottest path.
			wl := &w.levels[0]
			wl.buckets[j], w.drain = w.drain[:0], wl.buckets[j]
			w.occ[0] &^= 1 << j
			w.cursor = (w.cursor&^(wheelSize-1) | j) + 1
			if w.cursor&(wheelSize-1) == 0 {
				// The increment wrapped the low digit: the cursor
				// carried into one or more higher digits, which may now
				// coincide with occupied buckets.
				w.carry = true
			}
			w.head = 0
			sortEvents(w.drain)
			for i, e := range w.drain {
				e.loc = locDrain
				e.idx = i
			}
			return
		}
		// The next occupied bucket is in a later level-lvl block:
		// jump the cursor to that block's start (every tick between
		// is provably unoccupied) and cascade the bucket down.
		shift := uint((lvl + 1) * wheelBits)
		w.cursor = w.cursor>>shift<<shift | j<<(uint(lvl)*wheelBits)
		w.cascade(lvl, j)
	}
}

// cascade empties bucket (lvl, j) — whose ticks now share the
// cursor's digit at lvl — redistributing its events into lower
// levels. The cursor is not moved; callers position it first.
func (w *wheelQueue) cascade(lvl int, j uint64) {
	wl := &w.levels[lvl]
	bk := wl.buckets[j]
	wl.buckets[j] = bk[:0]
	w.occ[lvl] &^= 1 << j
	// Redistribution lands strictly below lvl (the ticks share the
	// cursor's digit here), so bk's storage is never appended to
	// while iterating, and the stale tail needs no nil-ing.
	for _, e := range bk {
		w.place(e)
	}
}

// rebase re-anchors the wheel origin on min — the earliest (finite)
// overflow timestamp — and redistributes the overflow list. Only
// called when the wheel levels and drain are empty, so no queued tick
// references the old origin. Events still beyond the new horizon
// (including +Inf) fall back into overflow via place.
func (w *wheelQueue) rebase(min float64) {
	pending := w.overflow
	w.overflow = nil
	w.drain = w.drain[:0]
	w.head = 0
	w.cursor = 0
	w.carry = false
	w.origin = min
	for _, e := range pending {
		w.place(e)
	}
}
