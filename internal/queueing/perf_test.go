package queueing

import (
	"testing"

	"immersionoc/internal/sim"
)

// TestRemoveVMPrunesAfterDrain pins the fix for the dead-VM leak: a VM
// removed while busy stays scheduled until its in-flight work drains,
// then disappears from the host's VM list so load balancers stop
// scanning it.
func TestRemoveVMPrunesAfterDrain(t *testing.T) {
	eng := NewEngine(1.0)
	host := eng.NewHost(4)
	keep := host.NewVM("keep", 1, 1.0)
	vm := host.NewVM("gone", 1, 1.0)
	req := vm.Submit(1)
	vm.Submit(1) // queued behind it — the VM must drain both
	firstDone := -1.0
	eng.OnComplete = func(r *Request, _ *VM) {
		if r == req {
			firstDone = r.DoneS // snapshot before the struct is recycled
		}
	}
	host.RemoveVM(vm)
	if len(host.VMs()) != 2 {
		t.Fatalf("busy VM pruned early: %d VMs", len(host.VMs()))
	}
	eng.Sim.Run()
	if firstDone != 1 {
		t.Fatalf("in-flight work lost on removal: done at %v", firstDone)
	}
	if eng.Completed != 2 {
		t.Fatalf("completed %d, want 2 (queued work must drain too)", eng.Completed)
	}
	if len(host.VMs()) != 1 || host.VMs()[0] != keep {
		t.Fatalf("drained VM not pruned: %v", host.VMs())
	}
	lb := NewLoadBalancer(host)
	if got := lb.Pick(); got != keep {
		t.Fatalf("balancer picked %v, want the surviving VM", got)
	}
}

func TestRemoveVMIdlePrunesImmediately(t *testing.T) {
	eng := NewEngine(1.0)
	host := eng.NewHost(4)
	vm := host.NewVM("v", 1, 1.0)
	host.RemoveVM(vm)
	if len(host.VMs()) != 0 {
		t.Fatalf("idle VM not pruned immediately: %d VMs", len(host.VMs()))
	}
	host.RemoveVM(vm) // double removal is a no-op
	if len(host.VMs()) != 0 {
		t.Fatal("double RemoveVM corrupted the VM list")
	}
}

// TestSteadyStateRequestPathAllocs pins the allocation budget of the
// warm request path at zero: Request structs, events, jobs, completion
// closures and the FIFO ring are all recycled, and warmed digests
// retain their capacity across Reset.
func TestSteadyStateRequestPathAllocs(t *testing.T) {
	eng := NewEngine(1.0)
	host := eng.NewHost(3)
	a := host.NewVM("a", 2, 1.0)
	b := host.NewVM("b", 2, 1.3)
	const perRun = 100
	run := func() {
		for i := 0; i < perRun/2; i++ {
			a.Submit(0.01)
			b.Submit(0.013)
		}
		eng.Sim.Run()
		a.Latency.Reset()
		b.Latency.Reset()
		eng.AllLatency.Reset()
	}
	// Warm the free-lists, ring buffers, digest capacity, and the
	// timing wheel's bucket slices (level-1+ buckets are first touched
	// as virtual time crosses their block boundaries).
	for i := 0; i < 60; i++ {
		run()
	}
	if avg := testing.AllocsPerRun(50, run); avg != 0 {
		t.Fatalf("steady-state request path: %.1f allocs per %d requests, want 0",
			avg, perRun)
	}
}

// TestSteadyStateLifecycleWithRetimesAllocFree covers the full request
// lifecycle — arrival, dispatch, mid-flight SetSpeed retimes,
// completion — and requires the warm path to stay allocation-free.
func TestSteadyStateLifecycleWithRetimesAllocFree(t *testing.T) {
	eng := NewEngine(0.9)
	host := eng.NewHost(2)
	vm := host.NewVM("v", 2, 1.0)
	// Closures are hoisted so the measured path allocates nothing of
	// its own; SetSpeed retimes every in-flight completion event.
	spFns := make([]func(*sim.Simulation), 4)
	for i := range spFns {
		sp := 0.8 + float64(i+1)*0.1
		spFns[i] = func(*sim.Simulation) { vm.SetSpeed(sp) }
	}
	run := func() {
		for i := 0; i < 40; i++ {
			vm.Submit(0.02)
		}
		for i, fn := range spFns {
			eng.Sim.After(sim.Duration(float64(i+1)*0.05), fn)
		}
		eng.Sim.Run()
		vm.Latency.Reset()
		eng.AllLatency.Reset()
	}
	for i := 0; i < 60; i++ {
		run() // warm pools and wheel buckets
	}
	if avg := testing.AllocsPerRun(30, run); avg != 0 {
		t.Fatalf("lifecycle with retimes: %.1f allocs per run, want 0", avg)
	}
}

// TestRequestFreelistRecycles pins the free-list mechanics: a completed
// Request's struct is handed back out by a later Submit with fully
// reset fields, and recycling never double-counts completions.
func TestRequestFreelistRecycles(t *testing.T) {
	eng := NewEngine(1.0)
	host := eng.NewHost(1)
	vm := host.NewVM("v", 1, 1.0)
	var completed []*Request
	eng.OnComplete = func(r *Request, _ *VM) { completed = append(completed, r) }
	first := vm.Submit(1)
	eng.Sim.Run()
	if len(completed) != 1 || completed[0] != first {
		t.Fatalf("first completion = %v, want %p", completed, first)
	}
	second := vm.Submit(2)
	if second != first {
		t.Fatalf("Submit after completion allocated a fresh struct; want the recycled one")
	}
	if second.DemandS != 2 || second.ArrivalS != 1 || second.DoneS != -1 {
		t.Fatalf("recycled Request not reset: %+v", *second)
	}
	eng.Sim.Run()
	if eng.Completed != 2 || len(completed) != 2 {
		t.Fatalf("Completed = %d, observer saw %d; want 2 each", eng.Completed, len(completed))
	}
	if second.DoneS != 3 {
		t.Fatalf("recycled request DoneS = %v, want 3", second.DoneS)
	}
}

// TestRequestFreelistNoResurrection: recycling a completed Request must
// never resurrect it into a live queue — a reused struct completes
// exactly once per issue, with per-issue timings, even when earlier
// completions interleave with later submissions on the same VM.
func TestRequestFreelistNoResurrection(t *testing.T) {
	eng := NewEngine(1.0)
	host := eng.NewHost(1)
	vm := host.NewVM("v", 1, 1.0)
	live := make(map[*Request]bool)
	completions := 0
	eng.OnComplete = func(r *Request, _ *VM) {
		if !live[r] {
			t.Fatalf("completion for a request that is not live: %+v", *r)
		}
		delete(live, r)
		completions++
		if r.DoneS-r.ArrivalS < r.DemandS-1e-9 {
			t.Fatalf("sojourn %v shorter than demand %v", r.DoneS-r.ArrivalS, r.DemandS)
		}
	}
	const waves, perWave = 5, 8
	for w := 0; w < waves; w++ {
		at := float64(w) * 0.5
		eng.Sim.Schedule(sim.Time(at), func(*sim.Simulation) {
			for i := 0; i < perWave; i++ {
				live[vm.Submit(0.01)] = true
			}
		})
	}
	eng.Sim.Run()
	if completions != waves*perWave {
		t.Fatalf("completions = %d, want %d", completions, waves*perWave)
	}
	if len(live) != 0 {
		t.Fatalf("%d requests never completed", len(live))
	}
}

// TestSetSpeedChurnDeterminism reruns an oversubscribed scenario with
// heavy retiming churn and requires bit-identical aggregates — the
// in-place retime path must preserve the kernel's determinism.
func TestSetSpeedChurnDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		eng := runOversubscribed(5)
		return eng.Completed, eng.AllLatency.Sum()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("churn scenario not deterministic: (%d, %v) vs (%d, %v)", c1, s1, c2, s2)
	}
	if c1 == 0 {
		t.Fatal("scenario completed no requests")
	}
}

// TestQPSAtCursor exercises the incremental phase cursor: monotone
// queries, exact boundaries, zero-duration phases, and backward jumps
// (binary-search fallback).
func TestQPSAtCursor(t *testing.T) {
	eng := NewEngine(1.0)
	host := eng.NewHost(4)
	host.NewVM("v", 1, 1.0)
	lb := NewLoadBalancer(host)
	gen := NewGenerator(eng, lb, 1, DeterministicService(0.001), []LoadPhase{
		{QPS: 100, DurationS: 10},
		{QPS: 300, DurationS: 0}, // zero-duration phase is skipped
		{QPS: 200, DurationS: 10},
	})
	cases := []struct {
		t    float64
		want float64
	}{
		{0, 100}, {5, 100}, {9.999, 100},
		{10, 200}, // boundary belongs to the next phase
		{15, 200}, {19.999, 200},
		{20, 0}, {35, 0}, // past the schedule
		{5, 100},  // backward jump
		{-1, 100}, // before the schedule start behaves like phase 0
		{12, 200},
	}
	for _, c := range cases {
		if got := gen.QPSAt(c.t); got != c.want {
			t.Fatalf("QPSAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if gen.TotalDuration() != 20 {
		t.Fatalf("TotalDuration = %v, want 20", gen.TotalDuration())
	}
}

// TestGeneratorManyPhasesMatchesScan cross-checks the cursor against a
// reference linear scan over a long random-ish schedule.
func TestGeneratorManyPhasesMatchesScan(t *testing.T) {
	eng := NewEngine(1.0)
	host := eng.NewHost(4)
	host.NewVM("v", 1, 1.0)
	lb := NewLoadBalancer(host)
	var phases []LoadPhase
	for i := 0; i < 500; i++ {
		phases = append(phases, LoadPhase{QPS: float64(i % 7), DurationS: 0.1 + float64(i%5)*0.3})
	}
	gen := NewGenerator(eng, lb, 1, DeterministicService(0.001), phases)
	scan := func(t float64) float64 {
		var off float64
		for _, p := range phases {
			if t < off+p.DurationS {
				return p.QPS
			}
			off += p.DurationS
		}
		return 0
	}
	for i := 0; i < 4000; i++ {
		q := float64(i) * 0.11
		if got, want := gen.QPSAt(q), scan(q); got != want {
			t.Fatalf("QPSAt(%v) = %v, scan says %v", q, got, want)
		}
	}
}
