package queueing

import (
	"testing"

	"immersionoc/internal/rng"
	"immersionoc/internal/sim"
)

// runOversubscribed simulates a Figure 12-shaped host: four SQL-like
// VMs of four vcores whose 16 runnable vcores share 12 physical cores,
// driven by correlated on-off bursts, with periodic frequency changes
// like the auto-scaler issues. Both the processor-sharing transitions
// (runnable count crossing PCores) and the SetSpeed churn retime every
// in-flight job, so this is the worst case for the dispatch/reschedule
// hot path.
func runOversubscribed(durationS float64) *Engine {
	eng := NewEngine(0.85)
	host := eng.NewHost(12)
	r := rng.New(17)
	service := LogNormalService(0.008, 1.2)
	for i := 0; i < 4; i++ {
		vm := host.NewVM("sql", 4, 1.0)
		var arrive func(*sim.Simulation)
		arrive = func(s *sim.Simulation) {
			now := float64(s.Now())
			if now >= durationS {
				return
			}
			// Correlated bursts: 3 s at 410 QPS, 3 s at 40 QPS.
			qps := 410.0
			if int(now/3)%2 == 1 {
				qps = 40
			}
			vm.Submit(service(r))
			s.After(r.Exp(qps), arrive)
		}
		eng.Sim.After(r.Exp(100), arrive)
	}
	// Frequency churn: flip every VM between B2 and OC-like speed twice
	// a second, forcing a host-wide retiming of all in-flight jobs.
	eng.Sim.NewTicker(0.25, 0.5, func(s *sim.Simulation, t sim.Time) {
		if float64(t) >= durationS {
			return
		}
		sp := 1.0
		if int(float64(t)*2)%2 == 0 {
			sp = 1.22
		}
		for _, v := range host.VMs() {
			v.SetSpeed(sp)
		}
	})
	eng.Sim.RunUntil(sim.Time(durationS * 1.2)) // run past the end to drain
	return eng
}

// BenchmarkOversubscribed measures one full oversubscribed scenario
// (~18k requests) per op. allocs/op is the acceptance metric for the
// allocation-free hot path: the request path must not allocate events,
// jobs or closures in steady state.
func BenchmarkOversubscribed(b *testing.B) {
	b.ReportAllocs()
	var completed uint64
	for i := 0; i < b.N; i++ {
		eng := runOversubscribed(20)
		completed = eng.Completed
		if completed == 0 {
			b.Fatal("benchmark scenario completed no requests")
		}
		// End-of-experiment digest release, as the harnesses do —
		// without it every op re-allocates its chunk storage and the
		// benchmark measures the allocator, not the request path.
		eng.ReleaseStats()
	}
	b.ReportMetric(float64(completed), "requests/op")
}
