package queueing

import (
	"math"
	"testing"

	"immersionoc/internal/rng"
	"immersionoc/internal/sim"
	"immersionoc/internal/telemetry"
)

// runMM1 simulates an M/M/1 queue and returns the mean sojourn time.
func runMM1(t *testing.T, lambda, mu float64, duration float64) float64 {
	t.Helper()
	eng := NewEngine(1.0)
	host := eng.NewHost(1)
	vm := host.NewVM("srv", 1, 1.0)
	r := rng.New(42)
	var arrive func(s *sim.Simulation)
	arrive = func(s *sim.Simulation) {
		if float64(s.Now()) >= duration {
			return
		}
		vm.Submit(r.Exp(mu))
		s.After(r.Exp(lambda), arrive)
	}
	eng.Sim.Schedule(0, arrive)
	eng.Sim.RunUntil(sim.Time(duration * 1.5))
	return eng.AllLatency.Mean()
}

func TestMM1MeanSojourn(t *testing.T) {
	// M/M/1: E[T] = 1/(μ−λ).
	lambda, mu := 60.0, 100.0
	got := runMM1(t, lambda, mu, 2000)
	want := 1 / (mu - lambda)
	if math.Abs(got-want)/want > 0.08 {
		t.Fatalf("M/M/1 mean sojourn %v, want %v ±8%%", got, want)
	}
}

func TestMM1LowLoadIsServiceTime(t *testing.T) {
	got := runMM1(t, 5, 100, 2000)
	if math.Abs(got-1.0/100)/0.01 > 0.25 {
		t.Fatalf("low-load sojourn %v, want ≈ service 0.01", got)
	}
}

func TestSpeedScalesServiceTime(t *testing.T) {
	// Deterministic demand on an idle VM: sojourn = demand/speed.
	eng := NewEngine(1.0)
	host := eng.NewHost(4)
	vm := host.NewVM("v", 2, 2.0)
	req := vm.Submit(1.0)
	eng.Sim.Run()
	if math.Abs(req.Sojourn()-0.5) > 1e-9 {
		t.Fatalf("sojourn %v, want 0.5 at speed 2", req.Sojourn())
	}
}

func TestSetSpeedMidFlight(t *testing.T) {
	// Speed change applies to remaining work: 1s of demand, first
	// 0.5s at speed 1, then speed 2 → finishes at 0.75s.
	eng := NewEngine(1.0)
	host := eng.NewHost(4)
	vm := host.NewVM("v", 1, 1.0)
	req := vm.Submit(1.0)
	eng.Sim.Schedule(0.5, func(*sim.Simulation) { vm.SetSpeed(2.0) })
	eng.Sim.Run()
	if math.Abs(req.Sojourn()-0.75) > 1e-9 {
		t.Fatalf("sojourn %v, want 0.75", req.Sojourn())
	}
}

func TestVCoreConcurrencyLimit(t *testing.T) {
	// 2 vcores, 3 unit jobs: two run immediately, the third waits.
	eng := NewEngine(1.0)
	host := eng.NewHost(8)
	vm := host.NewVM("v", 2, 1.0)
	r1 := vm.Submit(1)
	r2 := vm.Submit(1)
	r3 := vm.Submit(1)
	eng.Sim.Run()
	if r1.DoneS != 1 || r2.DoneS != 1 {
		t.Fatalf("first two done at %v/%v, want 1", r1.DoneS, r2.DoneS)
	}
	if r3.DoneS != 2 {
		t.Fatalf("queued job done at %v, want 2", r3.DoneS)
	}
	if r3.StartS != 1 {
		t.Fatalf("queued job started at %v, want 1", r3.StartS)
	}
}

func TestWorkerPoolLimit(t *testing.T) {
	// 4 vcores but 2 workers: same as the 2-vcore case.
	eng := NewEngine(1.0)
	host := eng.NewHost(8)
	vm := host.NewVM("v", 4, 1.0)
	vm.Workers = 2
	vm.Submit(1)
	vm.Submit(1)
	r3 := vm.Submit(1)
	eng.Sim.Run()
	if r3.DoneS != 2 {
		t.Fatalf("worker-limited job done at %v, want 2", r3.DoneS)
	}
	if vm.Concurrency() != 2 {
		t.Fatalf("concurrency %d, want 2", vm.Concurrency())
	}
}

func TestProcessorSharingContention(t *testing.T) {
	// 2 pcores, two VMs with 2 runnable vcores each → 4 runnable on
	// 2 pcores → everything at half speed.
	eng := NewEngine(1.0)
	host := eng.NewHost(2)
	a := host.NewVM("a", 2, 1.0)
	b := host.NewVM("b", 2, 1.0)
	r1 := a.Submit(1)
	a.Submit(1)
	b.Submit(1)
	b.Submit(1)
	eng.Sim.Run()
	if math.Abs(r1.Sojourn()-2.0) > 1e-9 {
		t.Fatalf("contended sojourn %v, want 2 (half speed)", r1.Sojourn())
	}
}

func TestContentionReliefOnCompletion(t *testing.T) {
	// 1 pcore, two 1-vcore VMs: jobs of 1s each share the core, the
	// survivor speeds up after the shorter one finishes.
	eng := NewEngine(1.0)
	host := eng.NewHost(1)
	a := host.NewVM("a", 1, 1.0)
	b := host.NewVM("b", 1, 1.0)
	ra := a.Submit(0.5)
	rb := b.Submit(1.0)
	eng.Sim.Run()
	// Shared until a finishes at t=1 (0.5 work at rate 0.5); b then
	// has 0.5 left at full rate → done at 1.5.
	if math.Abs(ra.DoneS-1.0) > 1e-9 {
		t.Fatalf("a done at %v, want 1.0", ra.DoneS)
	}
	if math.Abs(rb.DoneS-1.5) > 1e-9 {
		t.Fatalf("b done at %v, want 1.5", rb.DoneS)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	eng := NewEngine(0.8)
	host := eng.NewHost(4)
	vm := host.NewVM("v", 2, 1.0)
	vm.Submit(1) // busy [0,1] on one vcore
	eng.Sim.Run()
	eng.Sim.RunUntil(2) // idle [1,2]
	// Busy integral: 1 vcore-second over 2 seconds on 2 vcores = 0.25.
	if got := vm.UtilizationSince(0, 0, 2); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("utilization %v, want 0.25", got)
	}
}

func TestUtilQueueWeight(t *testing.T) {
	eng := NewEngine(1.0)
	host := eng.NewHost(4)
	vm := host.NewVM("v", 4, 1.0)
	vm.Workers = 1
	vm.UtilQueueWeight = 0.5
	vm.Submit(1)
	vm.Submit(1) // queued for [0,1]
	eng.Sim.Run()
	// [0,1]: 1 running + 0.5·1 queued = 1.5; [1,2]: 1 running.
	// Integral = 2.5 over 2s × 4 vcores → 0.3125.
	if got := vm.UtilizationSince(0, 0, 2); math.Abs(got-0.3125) > 1e-9 {
		t.Fatalf("queue-weighted utilization %v, want 0.3125", got)
	}
}

func TestLoadBalancerRoundRobin(t *testing.T) {
	eng := NewEngine(1.0)
	host := eng.NewHost(8)
	a := host.NewVM("a", 1, 1)
	b := host.NewVM("b", 1, 1)
	c := host.NewVM("c", 1, 1)
	lb := NewLoadBalancer(host)
	got := []*VM{lb.Pick(), lb.Pick(), lb.Pick(), lb.Pick()}
	want := []*VM{a, b, c, a}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pick %d = %v, want %v", i, got[i].Name, want[i].Name)
		}
	}
}

func TestLoadBalancerSkipsNonAccepting(t *testing.T) {
	eng := NewEngine(1.0)
	host := eng.NewHost(8)
	a := host.NewVM("a", 1, 1)
	b := host.NewVM("b", 1, 1)
	a.SetAccepting(false)
	lb := NewLoadBalancer(host)
	if lb.Pick() != b || lb.Pick() != b {
		t.Fatal("balancer did not skip non-accepting VM")
	}
	b.SetAccepting(false)
	if lb.Pick() != nil {
		t.Fatal("balancer returned a non-accepting VM")
	}
}

func TestPickLeastLoaded(t *testing.T) {
	eng := NewEngine(1.0)
	host := eng.NewHost(8)
	a := host.NewVM("a", 4, 1)
	b := host.NewVM("b", 4, 1)
	a.Submit(10)
	a.Submit(10)
	b.Submit(10)
	lb := NewLoadBalancer(host)
	if got := lb.PickLeastLoaded(); got != b {
		t.Fatalf("least loaded = %v, want b", got.Name)
	}
}

func TestRemoveVMDrains(t *testing.T) {
	eng := NewEngine(1.0)
	host := eng.NewHost(4)
	vm := host.NewVM("v", 1, 1.0)
	req := vm.Submit(1)
	host.RemoveVM(vm)
	if vm.Accepting() {
		t.Fatal("removed VM still accepting")
	}
	eng.Sim.Run()
	if req.DoneS != 1 {
		t.Fatalf("in-flight work lost on removal: done at %v", req.DoneS)
	}
}

func TestGeneratorPhases(t *testing.T) {
	eng := NewEngine(1.0)
	host := eng.NewHost(16)
	host.NewVM("v", 8, 1.0)
	lb := NewLoadBalancer(host)
	gen := NewGenerator(eng, lb, 7, DeterministicService(0.001), []LoadPhase{
		{QPS: 100, DurationS: 10},
		{QPS: 0, DurationS: 10},
		{QPS: 200, DurationS: 10},
	})
	if gen.TotalDuration() != 30 {
		t.Fatalf("total duration %v", gen.TotalDuration())
	}
	if gen.QPSAt(5) != 100 || gen.QPSAt(15) != 0 || gen.QPSAt(25) != 200 || gen.QPSAt(35) != 0 {
		t.Fatal("QPSAt schedule wrong")
	}
	gen.Start()
	eng.Sim.RunUntil(30)
	// ~100·10 + 0 + 200·10 = 3000 expected arrivals.
	if eng.Completed < 2400 || eng.Completed > 3600 {
		t.Fatalf("completed %d, want ≈3000", eng.Completed)
	}
	if gen.Dropped != 0 {
		t.Fatalf("dropped %d requests with an accepting VM", gen.Dropped)
	}
}

func TestGeneratorDropsWithoutVMs(t *testing.T) {
	eng := NewEngine(1.0)
	host := eng.NewHost(4)
	v := host.NewVM("v", 1, 1.0)
	v.SetAccepting(false)
	lb := NewLoadBalancer(host)
	gen := NewGenerator(eng, lb, 7, DeterministicService(0.001), []LoadPhase{{QPS: 50, DurationS: 5}})
	gen.Start()
	eng.Sim.RunUntil(5)
	if gen.Dropped == 0 {
		t.Fatal("no drops with zero accepting VMs")
	}
}

func TestWorkConservation(t *testing.T) {
	// Total completed work equals total submitted demand once the
	// queue drains, regardless of contention pattern.
	eng := NewEngine(1.0)
	host := eng.NewHost(3)
	vms := []*VM{host.NewVM("a", 2, 1), host.NewVM("b", 2, 1.5), host.NewVM("c", 2, 0.5)}
	r := rng.New(5)
	total := 0.0
	for i := 0; i < 50; i++ {
		d := r.Exp(2)
		total += d
		vms[i%3].Submit(d)
	}
	eng.Sim.Run()
	if eng.Completed != 50 {
		t.Fatalf("completed %d, want 50", eng.Completed)
	}
	// Each request's sojourn is at least demand/speed.
	if eng.AllLatency.Min() <= 0 {
		t.Fatal("non-positive sojourn recorded")
	}
	_ = total
}

func TestEngineScalableFractionInAccounting(t *testing.T) {
	eng := NewEngine(0.6)
	host := eng.NewHost(2)
	vm := host.NewVM("v", 1, 1)
	vm.Submit(1)
	eng.Sim.Run()
	integ := vm.BusyIntegral(1)
	if math.Abs(integ-1) > 1e-9 {
		t.Fatalf("busy integral %v, want 1", integ)
	}
}

func TestTelemetryFlushedAtRunExit(t *testing.T) {
	// The per-request tallies batch locally and must land in the scope
	// exactly once the kernel's run loop returns — this is the contract
	// the runner's end-of-run snapshot depends on.
	eng := NewEngine(1.0)
	reg := telemetry.NewRegistry()
	scope := reg.Scope("mm1")
	eng.SetTelemetry(scope)
	host := eng.NewHost(1)
	vm := host.NewVM("srv", 1, 1.0)
	r := rng.New(7)
	submitted := 0
	var arrive func(s *sim.Simulation)
	arrive = func(s *sim.Simulation) {
		if float64(s.Now()) >= 50 {
			return
		}
		vm.Submit(r.Exp(100))
		submitted++
		s.After(r.Exp(60), arrive)
	}
	eng.Sim.Schedule(0, arrive)
	eng.Sim.Run()

	if got := scope.Counter("requests").Value(); got != uint64(submitted) {
		t.Fatalf("requests counter = %d, want %d", got, submitted)
	}
	if got := scope.Counter("completed").Value(); got != eng.Completed {
		t.Fatalf("completed counter = %d, want %d", got, eng.Completed)
	}
	h := scope.Histogram("sojourn_s", telemetry.LatencyBuckets)
	if h.Count() != eng.Completed {
		t.Fatalf("sojourn count = %d, want %d", h.Count(), eng.Completed)
	}
	if math.Abs(h.Sum()-eng.AllLatency.Sum()) > 1e-9 {
		t.Fatalf("sojourn sum = %v, digest sum = %v", h.Sum(), eng.AllLatency.Sum())
	}
	if got := scope.Gauge("util.srv").Value(); got < 0 || got > 1 {
		t.Fatalf("util gauge = %v, want within [0,1]", got)
	}
}

func TestValidationPanics(t *testing.T) {
	eng := NewEngine(1.0)
	mustPanic(t, "zero pcores", func() { eng.NewHost(0) })
	host := eng.NewHost(1)
	mustPanic(t, "zero vcores", func() { host.NewVM("v", 0, 1) })
	mustPanic(t, "zero speed", func() { host.NewVM("v", 1, 0) })
	vm := host.NewVM("v", 1, 1)
	mustPanic(t, "negative speed", func() { vm.SetSpeed(-1) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	f()
}
