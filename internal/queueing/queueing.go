// Package queueing implements the discrete-event M/G/k client-server
// simulation the paper's evaluation is built on: open-loop Markovian
// (Poisson) arrivals, generally distributed service times, k server
// VMs behind a load balancer, and processor-sharing contention when
// virtual cores are oversubscribed onto fewer physical cores.
//
// The same engine drives three experiments:
//   - Figure 12/13: several VMs' vcores share a limited physical core
//     pool (oversubscription), with and without overclocking;
//   - Figure 15/16 and Table XI: the auto-scaler adds/removes VMs and
//     changes their frequency while a load generator sweeps QPS levels.
package queueing

import (
	"fmt"
	"math"
	"sort"

	"immersionoc/internal/rng"
	"immersionoc/internal/sim"
	"immersionoc/internal/stats"
	"immersionoc/internal/telemetry"
)

// Request is one client request flowing through the system.
//
// Recycling contract (mirroring sim.Event's): once a request has
// completed — its fields are final and any Engine.OnComplete observer
// has returned — the engine recycles the struct through a free-list,
// and a later Submit may hand the same pointer out for an unrelated
// request. Holders that need a completed request's timings past that
// moment (tests, custom observers) must copy the values out inside
// OnComplete or before the completion fires; reading through a
// retained pointer later may observe a different request's life.
type Request struct {
	// ArrivalS is the virtual arrival time.
	ArrivalS float64
	// DemandS is the service demand in seconds of a dedicated
	// reference-speed core.
	DemandS float64
	// StartS is when service began (-1 while queued).
	StartS float64
	// DoneS is when service completed (-1 while in flight).
	DoneS float64
}

// Sojourn returns the end-to-end latency.
func (r *Request) Sojourn() float64 { return r.DoneS - r.ArrivalS }

// job is an in-service request on a vcore. Job structs are pooled on
// the engine (see Engine.newJob): a completed job is recycled for the
// next dispatch, and its completion closure is bound to the struct
// exactly once, surviving recycling, so the steady-state request path
// allocates neither jobs nor closures.
type job struct {
	req       *Request
	vm        *VM
	remaining float64 // reference-speed seconds of work left
	rate      float64 // current execution rate (reference-speed seconds per second)
	updated   float64 // virtual time remaining was last advanced
	done      *sim.Event
	// fire is the bound completion callback passed to the kernel; it
	// routes through vm, so a recycled job migrates hosts correctly.
	fire func(*sim.Simulation)
	// idx is the job's position in host.jobs (swap-removal index).
	idx int
}

// reqRing is a FIFO of queued requests backed by a growable circular
// buffer, so steady-state push/pop never allocates. (The previous
// queue = queue[1:] idiom kept the consumed prefix live and forced a
// fresh backing array every time append outran the leaked capacity.)
type reqRing struct {
	buf  []*Request
	head int
	n    int
}

func (q *reqRing) len() int { return q.n }

func (q *reqRing) push(r *Request) {
	if q.n == len(q.buf) {
		buf := make([]*Request, max(4, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			buf[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = buf, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = r
	q.n++
}

func (q *reqRing) pop() *Request {
	r := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return r
}

// Host is a physical server whose PCores are shared by the vcores of
// its VMs. When the number of runnable vcores exceeds PCores, each
// runnable vcore receives an equal processor-sharing slice.
type Host struct {
	// PCores is the number of physical cores available to VMs.
	PCores int
	vms    []*VM
	// jobs holds the in-service vcores in dispatch order (swap-removed
	// on completion). A slice instead of a map keeps reschedule's
	// iteration — and therefore event sequence assignment — fully
	// deterministic run-to-run.
	jobs []*job
	eng  *Engine
	// curShare caches the processor-sharing slice so uncontended
	// transitions avoid a global reschedule.
	curShare float64
}

// VM is a virtual machine with a fixed number of vcores, a FIFO queue,
// and a speed factor representing its current frequency configuration.
type VM struct {
	// Name identifies the VM in traces.
	Name string
	// VCores is the number of virtual cores.
	VCores int
	// Workers is the service concurrency: the application's worker
	// pool size. At most Workers requests are in service at once
	// even when more vcores exist, so CPU utilization
	// (busy/VCores) can look moderate while the worker pool is
	// saturated — the regime where overclocking pays off most.
	// Zero means Workers == VCores.
	Workers int
	// UtilQueueWeight adds a per-queued-request contribution to the
	// measured CPU utilization (kernel, network stack and context
	// switching overhead of a backlog). It affects telemetry only,
	// not service capacity.
	UtilQueueWeight float64
	host            *Host
	// speed is the execution rate multiplier relative to reference
	// (e.g. 1.0 at B2, 1/serviceTimeRatio(OC1) when overclocked).
	speed float64
	// accepting reports whether the load balancer may route new
	// requests here.
	accepting bool
	// removed marks a VM detached via RemoveVM; it is pruned from the
	// host's VM list as soon as its in-flight work drains.
	removed bool

	queue   reqRing
	running int // in-service request count

	// busyIntegral accumulates Σ(runnable vcores)·dt for utilization.
	busyIntegral float64
	// scaledBusyIntegral accumulates busy time weighted by the
	// frequency-scalable fraction (for Aperf/Pperf emulation).
	scaledBusyIntegral float64
	lastAccount        float64

	// Latency collects per-request sojourn times for completed
	// requests routed to this VM.
	Latency *stats.Digest

	// util is the per-VM utilization snapshot gauge (nil = telemetry
	// off); account refreshes it as a side effect of its existing
	// busy-fraction computation.
	util *telemetry.Gauge
}

// Engine owns the simulation and all hosts/VMs.
type Engine struct {
	Sim *sim.Simulation
	// ScalableFraction is the workload's ΔPperf/ΔAperf (fraction of
	// busy cycles that scale with core frequency).
	ScalableFraction float64
	hosts            []*Host
	// Completed counts finished requests.
	Completed uint64
	// AllLatency aggregates sojourn times across all VMs.
	AllLatency *stats.Digest
	// OnComplete, when non-nil, observes each completed request.
	OnComplete func(*Request, *VM)

	// Telemetry. The per-request signals (arrivals, completions,
	// sojourn) accumulate in goroutine-local tallies — the engine runs
	// entirely on the kernel goroutine — and flush to the shared scope
	// at the kernel's batch boundaries, so the per-request cost is a
	// plain increment, not an atomic op. The shared handles are nil
	// no-ops when telemetry is off.
	tel          *telemetry.Scope
	mArrivals    *telemetry.Counter
	mCompleted   *telemetry.Counter
	locArrivals  uint64
	locCompleted uint64
	sojourn      *telemetry.HistAccum
	flusherSet   bool

	// freeJobs recycles completed job structs (see job).
	freeJobs []*job
	// freeReqs recycles completed Request structs (see the Request
	// recycling contract). Like the kernel's event free-list, its
	// high-water mark is the peak number of in-flight requests, so the
	// steady-state request path allocates nothing at all.
	freeReqs []*Request
}

// newReq returns a pooled Request initialised for arrival at now.
func (e *Engine) newReq(now, demand float64) *Request {
	if n := len(e.freeReqs); n > 0 {
		r := e.freeReqs[n-1]
		e.freeReqs[n-1] = nil
		e.freeReqs = e.freeReqs[:n-1]
		*r = Request{ArrivalS: now, DemandS: demand, StartS: -1, DoneS: -1}
		return r
	}
	return &Request{ArrivalS: now, DemandS: demand, StartS: -1, DoneS: -1}
}

// freeReq recycles a completed request struct per the recycling
// contract: callers must not touch it through old pointers afterwards.
func (e *Engine) freeReq(r *Request) {
	e.freeReqs = append(e.freeReqs, r)
}

// newJob returns a pooled job, allocating the struct and its bound
// completion closure only on first use.
func (e *Engine) newJob() *job {
	if n := len(e.freeJobs); n > 0 {
		j := e.freeJobs[n-1]
		e.freeJobs[n-1] = nil
		e.freeJobs = e.freeJobs[:n-1]
		return j
	}
	j := &job{}
	j.fire = func(*sim.Simulation) { j.vm.host.complete(j) }
	return j
}

// freeJob recycles a completed job. Only done is dropped — retime
// branches on it to pick Schedule vs Reschedule. req and vm are left
// stale (both are engine-pooled or engine-owned, so nothing leaks) and
// overwritten at the next dispatch; nil-ing them here would cost two
// write barriers per completion.
func (e *Engine) freeJob(j *job) {
	j.done = nil
	j.idx = -1
	e.freeJobs = append(e.freeJobs, j)
}

// SetTelemetry publishes the engine's signals into scope: a "requests"
// arrival counter, a "completed" counter, a "sojourn_s" latency
// histogram, per-VM "util.<name>" utilization snapshot gauges and the
// kernel's "events" counter. A nil scope (telemetry off) detaches.
// Call it before the run; VMs created afterwards join automatically.
// The per-request metrics are batched and become visible in the scope
// when the kernel's run loop returns control (RunUntil/RunUntilCtx).
func (e *Engine) SetTelemetry(scope *telemetry.Scope) {
	e.flushTelemetry() // drain pending tallies into the old scope
	e.tel = scope
	e.mArrivals = scope.Counter("requests")
	e.mCompleted = scope.Counter("completed")
	e.sojourn = scope.Histogram("sojourn_s", telemetry.LatencyBuckets).Accum()
	e.Sim.SetTelemetry(scope)
	if !e.flusherSet {
		e.flusherSet = true
		e.Sim.OnFlush(e.flushTelemetry)
	}
	for _, h := range e.hosts {
		for _, v := range h.vms {
			v.util = scope.Gauge("util." + v.Name)
		}
	}
}

// ReleaseStats returns the storage behind the engine's latency
// digests (AllLatency plus every live VM's Latency) to the shared
// chunk pool. Harnesses call it once a run has been reduced to
// scalars, just before discarding the engine, so the next
// replication's digests reuse the blocks instead of allocating
// million-sample buffers afresh. The digests remain usable and simply
// start empty.
func (e *Engine) ReleaseStats() {
	e.AllLatency.Release()
	for _, h := range e.hosts {
		for _, v := range h.vms {
			v.Latency.Release()
		}
	}
}

// flushTelemetry publishes the local per-request tallies. Runs at the
// kernel's flush boundaries; with telemetry off the handles are nil
// no-ops and the tallies are simply discarded.
func (e *Engine) flushTelemetry() {
	if e.locArrivals > 0 {
		e.mArrivals.Add(e.locArrivals)
		e.locArrivals = 0
	}
	if e.locCompleted > 0 {
		e.mCompleted.Add(e.locCompleted)
		e.locCompleted = 0
	}
	e.sojourn.Flush()
}

// NewEngine creates an engine on a fresh simulation.
func NewEngine(scalableFraction float64) *Engine {
	return &Engine{
		Sim:              sim.New(),
		ScalableFraction: scalableFraction,
		AllLatency:       stats.NewDigest(),
	}
}

// NewHost adds a host with the given physical core count.
func (e *Engine) NewHost(pcores int) *Host {
	if pcores <= 0 {
		panic("queueing: host needs at least one pcore")
	}
	h := &Host{PCores: pcores, eng: e, curShare: 1}
	e.hosts = append(e.hosts, h)
	return h
}

// NewVM adds a VM to the host. Speed is the initial execution-rate
// multiplier (1.0 = reference configuration).
func (h *Host) NewVM(name string, vcores int, speed float64) *VM {
	if vcores <= 0 {
		panic("queueing: VM needs at least one vcore")
	}
	if speed <= 0 {
		panic("queueing: VM speed must be positive")
	}
	vm := &VM{
		Name:      name,
		VCores:    vcores,
		host:      h,
		speed:     speed,
		accepting: true,
		Latency:   stats.NewDigest(),
	}
	vm.lastAccount = float64(h.eng.Sim.Now())
	if h.eng.tel != nil {
		vm.util = h.eng.tel.Gauge("util." + vm.Name)
	}
	h.vms = append(h.vms, vm)
	return vm
}

// VMs returns the host's VMs (including non-accepting ones).
func (h *Host) VMs() []*VM { return h.vms }

// RemoveVM detaches a VM from the host's scheduling (it finishes its
// in-flight work first; new arrivals must not be routed to it). An
// idle VM is pruned from the host's VM list immediately; a busy one is
// pruned as soon as its last in-flight request drains, so long
// auto-scaling runs do not leave load balancers scanning dead VMs.
func (h *Host) RemoveVM(vm *VM) {
	vm.accepting = false
	vm.removed = true
	if vm.running == 0 && vm.queue.len() == 0 {
		h.pruneVM(vm)
	}
}

// pruneVM drops vm from the host's VM list (no-op if already gone).
func (h *Host) pruneVM(vm *VM) {
	for i, v := range h.vms {
		if v == vm {
			h.vms = append(h.vms[:i], h.vms[i+1:]...)
			return
		}
	}
}

// Speed returns the VM's current execution-rate multiplier.
func (v *VM) Speed() float64 { return v.speed }

// SetSpeed changes the VM's execution rate (frequency change). The
// change takes effect immediately for queued and in-flight work —
// frequency transitions take tens of microseconds, far below the
// engine's resolution.
func (v *VM) SetSpeed(speed float64) {
	if speed <= 0 {
		panic("queueing: VM speed must be positive")
	}
	if speed == v.speed {
		return
	}
	v.speed = speed
	v.host.reschedule()
}

// Accepting reports whether the load balancer may route requests here.
func (v *VM) Accepting() bool { return v.accepting }

// SetAccepting toggles request routing to this VM.
func (v *VM) SetAccepting(ok bool) { v.accepting = ok }

// Concurrency returns the effective service concurrency.
func (v *VM) Concurrency() int {
	if v.Workers > 0 && v.Workers < v.VCores {
		return v.Workers
	}
	return v.VCores
}

// QueueLen returns the number of waiting (not yet served) requests.
func (v *VM) QueueLen() int { return v.queue.len() }

// InService returns the number of requests currently being served.
func (v *VM) InService() int { return v.running }

// account integrates busy-vcore time up to now.
func (v *VM) account(now float64) {
	dt := now - v.lastAccount
	if dt > 0 {
		busy := float64(v.running) + v.UtilQueueWeight*float64(v.queue.len())
		if busy > float64(v.VCores) {
			busy = float64(v.VCores)
		}
		v.busyIntegral += busy * dt
		v.scaledBusyIntegral += busy * dt * v.host.eng.ScalableFraction
		// Per-VM utilization snapshot: one atomic store, already on the
		// accounting path (no-op when telemetry is off).
		v.util.Set(busy / float64(v.VCores))
	}
	v.lastAccount = now
}

// UtilizationSince returns mean vcore utilization over (since, now]
// given the recorded busy integral at `since` (see BusyIntegral).
func (v *VM) UtilizationSince(sinceIntegral, sinceTime, now float64) float64 {
	v.account(now)
	span := now - sinceTime
	if span <= 0 || v.VCores == 0 {
		return 0
	}
	u := (v.busyIntegral - sinceIntegral) / (span * float64(v.VCores))
	return math.Max(0, math.Min(1, u))
}

// BusyIntegral returns the accumulated busy vcore-seconds up to now.
func (v *VM) BusyIntegral(now float64) float64 {
	v.account(now)
	return v.busyIntegral
}

// Submit routes a request with the given service demand (reference
// seconds) to the VM at the current simulation time.
func (v *VM) Submit(demand float64) *Request {
	now := float64(v.host.eng.Sim.Now())
	r := v.host.eng.newReq(now, demand)
	v.host.eng.locArrivals++
	v.queue.push(r)
	v.host.dispatch(v)
	return r
}

// dispatch starts queued requests on free vcores of vm. The clock and
// concurrency limit are loaded once for the whole batch; started jobs
// occupy the tail of h.jobs, so no per-dispatch scratch slice is
// needed.
func (h *Host) dispatch(vm *VM) {
	conc := vm.Concurrency()
	if vm.queue.len() == 0 || vm.running >= conc {
		return
	}
	now := float64(h.eng.Sim.Now())
	nBefore := len(h.jobs)
	for vm.queue.len() > 0 && vm.running < conc {
		req := vm.queue.pop()
		if len(h.jobs) == nBefore {
			// Integrate utilization after the first pop — the exact
			// point the pre-pooling engine accounted at, which matters
			// for queue-weighted busy time (UtilQueueWeight).
			vm.account(now)
		}
		req.StartS = now
		j := h.eng.newJob()
		j.req, j.vm, j.remaining, j.rate, j.updated = req, vm, req.DemandS, 0, now
		j.idx = len(h.jobs)
		h.jobs = append(h.jobs, j)
		vm.running++
	}
	if h.share() != h.curShare {
		// Adding runnable vcores changed everyone's slice.
		h.reschedule()
		return
	}
	for _, j := range h.jobs[nBefore:] {
		h.retime(j, now)
	}
}

// runnable returns the number of in-service vcores on the host.
func (h *Host) runnable() int { return len(h.jobs) }

// removeJob swap-removes j from the host's in-service list. The
// truncated tail slot keeps a stale pointer (jobs are pooled for the
// engine's lifetime; a nil store is a write barrier per completion).
func (h *Host) removeJob(j *job) {
	last := len(h.jobs) - 1
	moved := h.jobs[last]
	h.jobs[j.idx] = moved
	moved.idx = j.idx
	h.jobs = h.jobs[:last]
}

// share returns the processor-sharing slice each runnable vcore gets.
func (h *Host) share() float64 {
	n := h.runnable()
	if n <= h.PCores {
		return 1
	}
	return float64(h.PCores) / float64(n)
}

// retime sets a job's rate from the current share and (re)schedules
// its completion. A pending completion event is retimed in place
// (heap sift via its tracked index, sequence bumped), which is
// ordering-equivalent to the cancel-then-reschedule it replaces but
// allocation-free and tombstone-free.
func (h *Host) retime(j *job, now float64) {
	j.rate = j.vm.speed * h.curShare
	if j.rate <= 0 {
		if j.done != nil {
			j.done.Cancel()
			j.done = nil
		}
		return
	}
	at := sim.Time(now) + sim.Time(j.remaining/j.rate)
	if j.done != nil {
		h.eng.Sim.Reschedule(j.done, at)
	} else {
		j.done = h.eng.Sim.Schedule(at, j.fire)
	}
}

// reschedule advances all jobs to now at their old rates, recomputes
// the share, and retimes every completion event in place. Needed only
// when the processor-sharing slice or a VM speed changes.
func (h *Host) reschedule() {
	now := float64(h.eng.Sim.Now())
	h.curShare = h.share()
	for _, j := range h.jobs {
		if dt := now - j.updated; dt > 0 {
			j.remaining -= dt * j.rate
			if j.remaining < 0 {
				j.remaining = 0
			}
		}
		j.updated = now
		h.retime(j, now)
	}
}

// complete finishes a job, records latency, recycles the job struct,
// and dispatches queued work.
func (h *Host) complete(j *job) {
	now := float64(h.eng.Sim.Now())
	vm, req := j.vm, j.req
	vm.account(now)
	h.removeJob(j)
	vm.running--
	// The completion event that invoked us has fired; the kernel
	// recycles it, so drop the handle before pooling the job.
	h.eng.freeJob(j)
	req.DoneS = now
	vm.Latency.Add(req.Sojourn())
	h.eng.AllLatency.Add(req.Sojourn())
	h.eng.sojourn.Observe(req.Sojourn())
	h.eng.locCompleted++
	h.eng.Completed++
	if h.eng.OnComplete != nil {
		h.eng.OnComplete(req, vm)
	}
	// Observers have returned; the struct may now live a new life.
	h.eng.freeReq(req)
	if vm.removed && vm.running == 0 && vm.queue.len() == 0 {
		h.pruneVM(vm)
	}
	h.dispatch(vm)
	if h.share() != h.curShare {
		h.reschedule()
	}
}

// LoadBalancer routes arrivals across accepting VMs. The paper's
// architecture (Figure 14) places one in front of the server VMs.
type LoadBalancer struct {
	host *Host
	next int
}

// NewLoadBalancer returns a round-robin balancer over the host's VMs.
func NewLoadBalancer(h *Host) *LoadBalancer {
	return &LoadBalancer{host: h}
}

// Pick returns the next accepting VM (round robin), or nil if none.
func (lb *LoadBalancer) Pick() *VM {
	vms := lb.host.vms
	n := len(vms)
	for i := 0; i < n; i++ {
		vm := vms[(lb.next+i)%n]
		if vm.accepting {
			lb.next = (lb.next + i + 1) % n
			return vm
		}
	}
	return nil
}

// PickLeastLoaded returns the accepting VM with the fewest outstanding
// requests, breaking ties round-robin.
func (lb *LoadBalancer) PickLeastLoaded() *VM {
	var best *VM
	bestLoad := math.MaxInt
	vms := lb.host.vms
	n := len(vms)
	for i := 0; i < n; i++ {
		vm := vms[(lb.next+i)%n]
		if !vm.accepting {
			continue
		}
		load := vm.QueueLen() + vm.InService()
		if load < bestLoad {
			best, bestLoad = vm, load
		}
	}
	if best != nil {
		lb.next = (lb.next + 1) % n
	}
	return best
}

// ServiceSampler produces per-request demands in reference seconds.
type ServiceSampler func(*rng.Source) float64

// LogNormalService returns a sampler with the given mean (seconds) and
// coefficient of variation — the paper's "General" service-time
// distribution.
func LogNormalService(meanS, cv float64) ServiceSampler {
	// The (mean, cv) → (mu, sigma) conversion costs two logs and a
	// sqrt; hoisting it out of the per-request path draws the exact
	// same variates.
	mu, sigma, ok := rng.LogNormalParams(meanS, cv)
	if !ok {
		return func(*rng.Source) float64 { return meanS }
	}
	return func(r *rng.Source) float64 { return r.LogNormalMuSigma(mu, sigma) }
}

// DeterministicService returns a constant-demand sampler.
func DeterministicService(meanS float64) ServiceSampler {
	return func(r *rng.Source) float64 { return meanS }
}

// LoadPhase is one constant-rate segment of a load schedule.
type LoadPhase struct {
	// QPS is the Poisson arrival rate.
	QPS float64
	// DurationS is how long the phase lasts.
	DurationS float64
}

// Generator drives open-loop Poisson arrivals through a balancer.
type Generator struct {
	eng     *Engine
	lb      *LoadBalancer
	rand    *rng.Source
	service ServiceSampler
	phases  []LoadPhase
	// bounds[i] is the cumulative end time of phases[i], precomputed
	// so phase lookup is an incremental cursor instead of an
	// O(phases) scan per arrival.
	bounds []float64
	// cursor indexes the phase the last queried time fell in.
	cursor int
	// Dropped counts arrivals with no accepting VM.
	Dropped uint64
	// LeastLoaded selects balancer policy.
	LeastLoaded bool
}

// NewGenerator creates a load generator.
func NewGenerator(e *Engine, lb *LoadBalancer, seed uint64, service ServiceSampler, phases []LoadPhase) *Generator {
	bounds := make([]float64, len(phases))
	var off float64
	for i, p := range phases {
		off += p.DurationS
		bounds[i] = off
	}
	return &Generator{eng: e, lb: lb, rand: rng.New(seed), service: service, phases: phases, bounds: bounds}
}

// TotalDuration returns the summed phase durations.
func (g *Generator) TotalDuration() float64 {
	if len(g.bounds) == 0 {
		return 0
	}
	return g.bounds[len(g.bounds)-1]
}

// seek positions the cursor on the first phase whose end boundary
// exceeds t. The generator's arrival process queries monotonically
// increasing times, so the common case is zero or one cursor step;
// a backwards query (e.g. a forecaster probing the past) falls back
// to binary search.
func (g *Generator) seek(t float64) {
	if g.cursor > 0 && t < g.bounds[g.cursor-1] {
		g.cursor = sort.Search(len(g.bounds), func(i int) bool { return g.bounds[i] > t })
		return
	}
	for g.cursor < len(g.bounds) && t >= g.bounds[g.cursor] {
		g.cursor++
	}
}

// QPSAt returns the scheduled arrival rate at time t. Lookup is
// amortized O(1) for non-decreasing t and O(log phases) otherwise.
func (g *Generator) QPSAt(t float64) float64 {
	g.seek(t)
	if g.cursor >= len(g.phases) {
		return 0
	}
	return g.phases[g.cursor].QPS
}

// Start schedules the arrival process beginning at the current
// simulation time.
func (g *Generator) Start() {
	start := float64(g.eng.Sim.Now())
	var arrive func(s *sim.Simulation)
	arrive = func(s *sim.Simulation) {
		t := float64(s.Now()) - start
		qps := g.QPSAt(t)
		if qps <= 0 {
			// Schedule a probe at the next phase boundary, if any
			// (QPSAt left the cursor on the phase containing t).
			if g.cursor < len(g.bounds) {
				s.Schedule(sim.Time(start+g.bounds[g.cursor]), arrive)
			}
			return
		}
		var vm *VM
		if g.LeastLoaded {
			vm = g.lb.PickLeastLoaded()
		} else {
			vm = g.lb.Pick()
		}
		if vm != nil {
			vm.Submit(g.service(g.rand))
		} else {
			g.Dropped++
		}
		s.After(g.rand.Exp(qps), arrive)
	}
	g.eng.Sim.Schedule(sim.Time(start), arrive)
}

// String implements fmt.Stringer for diagnostics.
func (v *VM) String() string {
	return fmt.Sprintf("vm %s (%d vcores, speed %.3f, q=%d run=%d)", v.Name, v.VCores, v.speed, v.queue.len(), v.running)
}
