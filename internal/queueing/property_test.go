package queueing

import (
	"math"
	"testing"
	"testing/quick"

	"immersionoc/internal/rng"
	"immersionoc/internal/sim"
)

// TestPropertyWorkConservation drives random workloads through random
// host/VM topologies and checks the fundamental invariants: every
// request completes, sojourn ≥ demand/speed, completion order respects
// FIFO within a VM at equal concurrency, and busy integrals never
// exceed capacity.
func TestPropertyWorkConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		eng := NewEngine(0.8)
		pcores := 1 + r.Intn(6)
		host := eng.NewHost(pcores)
		nVMs := 1 + r.Intn(4)
		vms := make([]*VM, nVMs)
		for i := range vms {
			speed := 0.5 + r.Float64()*1.5
			vms[i] = host.NewVM("v", 1+r.Intn(4), speed)
			if r.Bernoulli(0.3) {
				vms[i].Workers = 1 + r.Intn(vms[i].VCores)
			}
		}
		// Completed requests are recycled by the engine, so timings
		// are snapshotted inside OnComplete per the Request recycling
		// contract instead of read through retained pointers.
		type issued struct {
			vm     *VM
			demand float64
		}
		type snap struct {
			arrival, start, done float64
			completed            bool
		}
		var reqs []issued
		n := 5 + r.Intn(40)
		snaps := make([]snap, n)
		byPtr := make(map[*Request]int, n)
		eng.OnComplete = func(req *Request, _ *VM) {
			idx, ok := byPtr[req]
			if !ok {
				t.Fatal("completion for an unknown request pointer")
			}
			delete(byPtr, req) // the pointer may be handed out again
			snaps[idx] = snap{req.ArrivalS, req.StartS, req.DoneS, true}
		}
		end := 0.0
		for i := 0; i < n; i++ {
			at := r.Float64() * 10
			if at > end {
				end = at
			}
			vm := vms[r.Intn(nVMs)]
			demand := 0.01 + r.Exp(2)
			idx := len(reqs)
			reqs = append(reqs, issued{vm: vm, demand: demand})
			eng.Sim.Schedule(sim.Time(at), func(*sim.Simulation) {
				byPtr[vm.Submit(demand)] = idx
			})
		}
		eng.Sim.Run()

		if int(eng.Completed) != n {
			return false
		}
		for i, ii := range reqs {
			sn := snaps[i]
			if !sn.completed || sn.done < 0 {
				return false
			}
			minSojourn := ii.demand / ii.vm.Speed()
			if sn.done-sn.arrival < minSojourn-1e-9 {
				return false
			}
			if sn.start < sn.arrival-1e-9 || sn.done < sn.start {
				return false
			}
		}
		// Busy integral cannot exceed vcores × elapsed for any VM.
		now := float64(eng.Sim.Now())
		for _, vm := range vms {
			if vm.BusyIntegral(now) > float64(vm.VCores)*now+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPSNeverExceedsCapacity checks that under contention the
// aggregate service rate never exceeds the host's physical cores:
// total work completed ≤ pcores × makespan.
func TestPropertyPSNeverExceedsCapacity(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		eng := NewEngine(1.0)
		pcores := 1 + r.Intn(3)
		host := eng.NewHost(pcores)
		var totalWork float64
		n := 3 + r.Intn(20)
		for i := 0; i < n; i++ {
			vm := host.NewVM("v", 1+r.Intn(3), 1.0)
			d := 0.1 + r.Float64()
			totalWork += d
			vm.Submit(d)
		}
		eng.Sim.Run()
		makespan := float64(eng.Sim.Now())
		return totalWork <= float64(pcores)*makespan+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySpeedChangesPreserveWork randomly changes VM speeds
// mid-flight and checks requests still complete with sane sojourns.
func TestPropertySpeedChangesPreserveWork(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		eng := NewEngine(0.9)
		host := eng.NewHost(2)
		vm := host.NewVM("v", 2, 1.0)
		n := 3 + r.Intn(15)
		for i := 0; i < n; i++ {
			vm.Submit(0.05 + r.Exp(4))
		}
		// Random speed changes while work drains.
		for i := 0; i < 5; i++ {
			at := r.Float64() * 2
			sp := 0.5 + r.Float64()*1.5
			eng.Sim.Schedule(sim.Time(at), func(*sim.Simulation) { vm.SetSpeed(sp) })
		}
		eng.Sim.Run()
		if int(eng.Completed) != n {
			return false
		}
		return !math.IsNaN(eng.AllLatency.Mean()) && eng.AllLatency.Min() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDeterminism re-runs an identical random scenario and
// compares outcomes exactly.
func TestPropertyDeterminism(t *testing.T) {
	run := func(seed uint64) (uint64, float64) {
		r := rng.New(seed)
		eng := NewEngine(0.7)
		host := eng.NewHost(2)
		a := host.NewVM("a", 2, 1.2)
		b := host.NewVM("b", 1, 0.8)
		for i := 0; i < 30; i++ {
			vm := a
			if r.Bernoulli(0.5) {
				vm = b
			}
			at := r.Float64() * 5
			d := 0.05 + r.Exp(3)
			eng.Sim.Schedule(sim.Time(at), func(*sim.Simulation) { vm.Submit(d) })
		}
		eng.Sim.Run()
		return eng.Completed, eng.AllLatency.Sum()
	}
	f := func(seed uint64) bool {
		c1, s1 := run(seed)
		c2, s2 := run(seed)
		return c1 == c2 && s1 == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
