package plot

import (
	"strings"
	"testing"

	"immersionoc/internal/stats"
)

func mkSeries(name string, pts ...float64) *stats.Series {
	s := stats.NewSeries(name)
	for i, v := range pts {
		s.Add(float64(i), v)
	}
	return s
}

func TestLinesBasic(t *testing.T) {
	s := mkSeries("util", 0, 1, 2, 3, 4)
	out := Lines("test", 20, 5, s)
	if !strings.Contains(out, "test") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "util") {
		t.Fatal("missing legend")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("missing data marks")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + labels + legend.
	if len(lines) != 1+5+1+1+1 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestLinesRisingSlope(t *testing.T) {
	s := mkSeries("x", 0, 10)
	out := Lines("", 10, 5, s)
	rows := strings.Split(out, "\n")
	// The max (10) appears top-right, the min (0) bottom-left.
	top, bottom := rows[0], rows[4]
	if !strings.Contains(top, "*") || !strings.Contains(bottom, "*") {
		t.Fatalf("slope not rendered:\n%s", out)
	}
	if strings.Index(top, "*") < strings.Index(bottom, "*") {
		t.Fatalf("rising series rendered falling:\n%s", out)
	}
}

func TestLinesMultipleSeries(t *testing.T) {
	a := mkSeries("a", 1, 1, 1)
	b := mkSeries("b", 2, 2, 2)
	out := Lines("", 15, 6, a, b)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestLinesEmpty(t *testing.T) {
	out := Lines("t", 20, 5)
	if !strings.Contains(out, "no data") {
		t.Fatal("empty chart not handled")
	}
	out = Lines("t", 20, 5, stats.NewSeries("empty"))
	if !strings.Contains(out, "no data") {
		t.Fatal("empty series not handled")
	}
}

func TestLinesConstantSeries(t *testing.T) {
	s := mkSeries("c", 5, 5, 5)
	out := Lines("", 10, 4, s)
	if !strings.Contains(out, "*") {
		t.Fatalf("constant series not rendered:\n%s", out)
	}
}

func TestLinesDeterministic(t *testing.T) {
	s := mkSeries("d", 3, 1, 4, 1, 5, 9, 2, 6)
	if Lines("t", 30, 8, s) != Lines("t", 30, 8, s) {
		t.Fatal("non-deterministic rendering")
	}
}

func TestBars(t *testing.T) {
	out := Bars("latency", 20, []string{"base", "oc"}, []float64{10, 5})
	if !strings.Contains(out, "latency") || !strings.Contains(out, "base") {
		t.Fatal("labels missing")
	}
	baseRow, ocRow := "", ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "base") {
			baseRow = l
		}
		if strings.HasPrefix(l, "oc") {
			ocRow = l
		}
	}
	if strings.Count(baseRow, "█") <= strings.Count(ocRow, "█") {
		t.Fatalf("bar lengths not proportional:\n%s", out)
	}
}

func TestBarsMismatch(t *testing.T) {
	out := Bars("x", 20, []string{"a"}, []float64{1, 2})
	if !strings.Contains(out, "mismatch") {
		t.Fatal("mismatch not reported")
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars("x", 20, []string{"a", "b"}, []float64{0, 0})
	if !strings.Contains(out, "a") {
		t.Fatal("zero bars not rendered")
	}
}
