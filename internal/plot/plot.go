// Package plot renders time series and bar charts as ASCII — enough to
// eyeball the reproduced figures (utilization traces, frequency
// ladders, latency bars) straight from the terminal, the way the
// paper's figures read.
package plot

import (
	"fmt"
	"math"
	"strings"

	"immersionoc/internal/stats"
)

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Lines renders one or more series as an ASCII line chart of the given
// plot-area size (axes and labels add a few rows/columns). Series are
// sampled as step functions on a common time grid.
func Lines(title string, width, height int, series ...*stats.Series) string {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	var tMin, tMax = math.Inf(1), math.Inf(-1)
	var vMin, vMax = math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		if s == nil || s.Len() == 0 {
			continue
		}
		any = true
		if s.Times[0] < tMin {
			tMin = s.Times[0]
		}
		if s.Times[s.Len()-1] > tMax {
			tMax = s.Times[s.Len()-1]
		}
		for _, v := range s.Values {
			if v < vMin {
				vMin = v
			}
			if v > vMax {
				vMax = v
			}
		}
	}
	if !any {
		return title + "\n(no data)\n"
	}
	if vMax == vMin {
		vMax = vMin + 1
	}
	if tMax == tMin {
		tMax = tMin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		if s == nil || s.Len() == 0 {
			continue
		}
		mark := markers[si%len(markers)]
		for col := 0; col < width; col++ {
			t := tMin + (tMax-tMin)*float64(col)/float64(width-1)
			v := s.At(t)
			row := int(math.Round((vMax - v) / (vMax - vMin) * float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.3g ", vMax)
		case height - 1:
			label = fmt.Sprintf("%7.3g ", vMin)
		case (height - 1) / 2:
			label = fmt.Sprintf("%7.3g ", (vMax+vMin)/2)
		}
		fmt.Fprintf(&b, "%s|%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "        %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(&b, "        %-*.4g%*.4g\n", width/2, tMin, width/2+2, tMax)
	// Legend.
	var legend []string
	for si, s := range series {
		if s == nil {
			continue
		}
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "        %s\n", strings.Join(legend, "   "))
	}
	return b.String()
}

// Bars renders a horizontal bar chart. Values must be non-negative;
// each bar is scaled to the maximum.
func Bars(title string, width int, labels []string, values []float64) string {
	if len(labels) != len(values) {
		return title + "\n(label/value mismatch)\n"
	}
	if width < 10 {
		width = 10
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(math.Round(v / maxV * float64(width)))
		}
		if v > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%-*s |%s %.4g\n", maxL, labels[i], strings.Repeat("█", n), v)
	}
	return b.String()
}
