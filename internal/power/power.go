// Package power models processor and server power draw: the measured
// voltage-frequency curve of the overclockable Xeon W-3175X (205 W @
// 0.90 V to 305 W @ 0.98 V for +23% frequency), temperature-dependent
// leakage (the source of the 11 W/socket static saving in 2PIC),
// component and server power budgets for the Open Compute blade, the
// tank #1 server model used by the Figure 9/12 experiments, RAPL-style
// power capping, and the datacenter power-delivery constraints that
// make indiscriminate overclocking unsafe.
package power

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"immersionoc/internal/freq"
	"immersionoc/internal/thermal"
)

// VFPoint is one point of a voltage-frequency curve.
type VFPoint struct {
	GHz freq.GHz
	V   float64
}

// VFCurve maps core frequency to required core voltage by linear
// interpolation between measured points (extrapolating at the ends).
type VFCurve struct {
	points []VFPoint
}

// NewVFCurve builds a curve from measured points. At least two points
// are required; they are sorted by frequency.
func NewVFCurve(points ...VFPoint) (*VFCurve, error) {
	if len(points) < 2 {
		return nil, errors.New("power: VF curve needs at least two points")
	}
	ps := make([]VFPoint, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].GHz < ps[j].GHz })
	for i := 1; i < len(ps); i++ {
		if ps[i].GHz == ps[i-1].GHz {
			return nil, fmt.Errorf("power: duplicate VF point at %.2f GHz", ps[i].GHz)
		}
	}
	return &VFCurve{points: ps}, nil
}

// Voltage returns the interpolated voltage at frequency f.
func (c *VFCurve) Voltage(f freq.GHz) float64 {
	ps := c.points
	if f <= ps[0].GHz {
		return lerp(ps[0], ps[1], f)
	}
	for i := 1; i < len(ps); i++ {
		if f <= ps[i].GHz {
			return lerp(ps[i-1], ps[i], f)
		}
	}
	return lerp(ps[len(ps)-2], ps[len(ps)-1], f)
}

func lerp(a, b VFPoint, f freq.GHz) float64 {
	t := float64((f - a.GHz) / (b.GHz - a.GHz))
	return a.V + t*(b.V-a.V)
}

// XeonW3175XCurve is the experimental voltage curve from small tank #1:
// 0.90 V at the 3.4 GHz all-core turbo rising to 0.98 V at the +23%
// overclock (~4.18 GHz).
var XeonW3175XCurve = mustCurve(
	VFPoint{GHz: 2.4, V: 0.82},
	VFPoint{GHz: 3.1, V: 0.87},
	VFPoint{GHz: 3.4, V: 0.90},
	VFPoint{GHz: 4.18, V: 0.98},
)

func mustCurve(points ...VFPoint) *VFCurve {
	c, err := NewVFCurve(points...)
	if err != nil {
		panic(err)
	}
	return c
}

// The paper's measured overclocking endpoints on the Xeon voltage
// curve: 205 W at 0.90 V nominal (all-core turbo) rising to 305 W at
// 0.98 V for +23% frequency.
const (
	NominalSocketW     = 205.0
	NominalVoltage     = 0.90
	OverclockedSocketW = 305.0
	OverclockedVoltage = 0.98
	// OCFrequencyGain is the frequency headroom the 205→305 W
	// voltage/power increase buys, relative to all-core turbo.
	OCFrequencyGain = 0.23
)

// SocketModel computes per-socket CPU power as temperature-dependent
// leakage plus activity-dependent dynamic power.
//
// Leakage: P_leak = LeakRefW · (V/LeakRefV)^VoltExp · exp((Tj-LeakRefTempC)/LeakThetaC).
// Dynamic: P_dyn = CeffWPerGHzV2 · f · V² · util.
//
// Calibrated so that (a) at 3.4 GHz / 0.90 V fully utilized in
// HFE-7000 (Tj 51 °C) the socket draws the paper's 205 W, (b) at the
// +23% overclock / 0.98 V (Tj 60 °C) it draws ~305 W, and (c) cooling a
// 92 °C air-cooled socket to 75 °C in FC-3284 saves ~11 W of static
// power (§IV "Power consumption").
type SocketModel struct {
	LeakRefW     float64
	LeakRefV     float64
	LeakRefTempC float64
	LeakThetaC   float64
	VoltExp      float64
	// CeffWPerGHzV2 is the effective switched capacitance of the
	// whole socket in W/(GHz·V²) at full utilization.
	CeffWPerGHzV2 float64
	// TDPW is the rated thermal design power.
	TDPW float64
}

// XeonSocket is the calibrated Table V / W-3175X-derived socket model.
var XeonSocket = SocketModel{
	LeakRefW:      24,
	LeakRefV:      0.90,
	LeakRefTempC:  92,
	LeakThetaC:    25,
	VoltExp:       3,
	CeffWPerGHzV2: 72.75,
	TDPW:          205,
}

// Leakage returns static power at the given voltage and junction
// temperature.
func (m SocketModel) Leakage(v, tjC float64) float64 {
	return m.LeakRefW * math.Pow(v/m.LeakRefV, m.VoltExp) * math.Exp((tjC-m.LeakRefTempC)/m.LeakThetaC)
}

// Dynamic returns switching power at frequency f, voltage v and
// utilization util in [0,1].
func (m SocketModel) Dynamic(f freq.GHz, v, util float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	return m.CeffWPerGHzV2 * float64(f) * v * v * util
}

// Power returns total socket power.
func (m SocketModel) Power(f freq.GHz, v, tjC, util float64) float64 {
	return m.Leakage(v, tjC) + m.Dynamic(f, v, util)
}

// OperatingPoint is a self-consistent (power, junction temperature)
// solution for a socket under a thermal model.
type OperatingPoint struct {
	PowerW    float64
	JunctionC float64
	VoltageV  float64
	FreqGHz   freq.GHz
}

// Solve finds the steady-state operating point of the socket at
// frequency f and utilization util under thermal model tm: power
// depends on junction temperature through leakage and vice versa, so
// the fixed point is found iteratively.
func (m SocketModel) Solve(tm thermal.Model, curve *VFCurve, f freq.GHz, offsetMV, util float64) (OperatingPoint, error) {
	v := curve.Voltage(f) + offsetMV/1000
	tj := tm.IdleTemp()
	var p float64
	for i := 0; i < 100; i++ {
		p = m.Power(f, v, tj, util)
		t, err := tm.JunctionTemp(p)
		if err != nil {
			return OperatingPoint{}, err
		}
		if math.Abs(t-tj) < 1e-6 {
			tj = t
			break
		}
		tj = t
	}
	return OperatingPoint{PowerW: p, JunctionC: tj, VoltageV: v, FreqGHz: f}, nil
}

// StaticSavings returns the leakage reduction per socket from cooling
// the junction from tAir to tImm at voltage v (§IV reports ~11 W for a
// 17–22 °C reduction).
func (m SocketModel) StaticSavings(v, tAirC, tImmC float64) float64 {
	return m.Leakage(v, tAirC) - m.Leakage(v, tImmC)
}

// ServerBudget is the component power budget of the large-tank Open
// Compute 2-socket blade (§III): 700 W total.
type ServerBudget struct {
	SocketsW     float64 // 410 (2 × 205)
	MemoryW      float64 // 120 (24 DDR4 DIMMs × 5 W)
	MotherboardW float64 // 26
	FPGAW        float64 // 30
	StorageW     float64 // 72 (6 flash drives × 12 W)
	FansW        float64 // 42
}

// OpenComputeBlade is the paper's 700 W server budget.
var OpenComputeBlade = ServerBudget{
	SocketsW:     410,
	MemoryW:      120,
	MotherboardW: 26,
	FPGAW:        30,
	StorageW:     72,
	FansW:        42,
}

// Total returns the summed budget.
func (b ServerBudget) Total() float64 {
	return b.SocketsW + b.MemoryW + b.MotherboardW + b.FPGAW + b.StorageW + b.FansW
}

// Immersed returns the budget with fans removed (immersion disables
// and removes all fans).
func (b ServerBudget) Immersed() ServerBudget {
	c := b
	c.FansW = 0
	return c
}

// SavingsBreakdown decomposes the per-server power saving of moving an
// air-cooled server into 2PIC (§IV): reduced static power per socket,
// eliminated fans, and the datacenter-level PUE reduction expressed as
// per-server watts.
type SavingsBreakdown struct {
	StaticPerSocketW float64
	Sockets          int
	FansW            float64
	PUEW             float64
}

// Total returns the summed savings (≈182 W for the paper's server).
func (s SavingsBreakdown) Total() float64 {
	return s.StaticPerSocketW*float64(s.Sockets) + s.FansW + s.PUEW
}

// ComputeSavings evaluates the §IV decomposition for a server budget
// moving from an air technology to 2PIC. The PUE term follows the
// paper's accounting: serverPower × peakPUE(air) × fractional peak-PUE
// reduction.
func ComputeSavings(m SocketModel, b ServerBudget, airTech thermal.Technology, vNominal, tAirC, tImmC float64) (SavingsBreakdown, error) {
	air, err := thermal.Lookup(airTech)
	if err != nil {
		return SavingsBreakdown{}, err
	}
	twoP, err := thermal.Lookup(thermal.TwoPhaseImmersion)
	if err != nil {
		return SavingsBreakdown{}, err
	}
	reduction := (air.PeakPUE - twoP.PeakPUE) / air.PeakPUE
	return SavingsBreakdown{
		StaticPerSocketW: m.StaticSavings(vNominal, tAirC, tImmC),
		Sockets:          2,
		FansW:            b.FansW,
		PUEW:             b.Total() * air.PeakPUE * reduction,
	}, nil
}

// ServerModel computes total power for the tank #1 experimental server
// (Xeon W-3175X, 128 GB) as a function of the active frequency
// configuration and core activity. It decomposes into platform
// (storage, NIC, VRM), uncore, memory, and per-core terms so that
// uncore/memory overclocking raise power even when cores are idle —
// the effect Figure 9 highlights for BI under OC2/OC3.
type ServerModel struct {
	PlatformW float64
	// UncoreRefW is uncore power at 2.4 GHz / 0.90 V.
	UncoreRefW float64
	// MemRefW is memory subsystem power at 2.4 GHz / 1.2 V DIMMs.
	MemRefW float64
	// CorePerGHzV2 is per-core dynamic power in W/(GHz·V²).
	CorePerGHzV2 float64
	// CoreActiveW is the overhead of an un-parked core independent
	// of utilization.
	CoreActiveW float64
	// CoreParkedW is the power of a parked (deep-idle) core.
	CoreParkedW float64
	// TotalCores is the socket core count (28 for the W-3175X).
	TotalCores int
	// Curve supplies core voltage.
	Curve *VFCurve
}

// Tank1Server is the calibrated model for small tank #1, matching the
// Figure 12 power observations (B2: 120/130 W at 12/16 pcores; OC3:
// 160/173 W) to within a few percent.
var Tank1Server = ServerModel{
	PlatformW:    36,
	UncoreRefW:   22,
	MemRefW:      22,
	CorePerGHzV2: 1.75,
	CoreActiveW:  0.9,
	CoreParkedW:  0.25,
	TotalCores:   28,
	Curve:        XeonW3175XCurve,
}

// uncoreVoltage returns the uncore rail voltage for an uncore clock.
func uncoreVoltage(f freq.GHz) float64 {
	// 0.90 V at 2.4 GHz, +50 mV at the 2.8 GHz overclock.
	return 0.90 + 0.05*float64(f-2.4)/0.4
}

// memVoltage returns DIMM voltage for a memory clock (DDR4: 1.2 V at
// 2400, 1.35 V at the 3000 overclock).
func memVoltage(f freq.GHz) float64 {
	return 1.2 + 0.15*float64(f-2.4)/0.6
}

// UncoreW returns uncore power under cfg.
func (m ServerModel) UncoreW(cfg freq.Config) float64 {
	v := uncoreVoltage(cfg.UncoreGHz)
	return m.UncoreRefW * float64(cfg.UncoreGHz/2.4) * (v / 0.90) * (v / 0.90)
}

// MemoryW returns memory subsystem power under cfg.
func (m ServerModel) MemoryW(cfg freq.Config) float64 {
	v := memVoltage(cfg.MemoryGHz)
	return m.MemRefW * float64(cfg.MemoryGHz/2.4) * (v / 1.2) * (v / 1.2)
}

// CoreW returns the power of one fully-busy core under cfg. The
// curve's voltage already includes the stability offset recorded in
// cfg.VoltageOffsetMV (Table VII documents the offset over stock VID,
// and the measured curve was taken with it applied).
func (m ServerModel) CoreW(cfg freq.Config) float64 {
	v := m.Curve.Voltage(cfg.CoreGHz)
	return m.CorePerGHzV2 * float64(cfg.CoreGHz) * v * v
}

// Power returns total server power with the given summed core
// utilization (in core-equivalents) spread over activeCores un-parked
// cores.
func (m ServerModel) Power(cfg freq.Config, utilSum float64, activeCores int) float64 {
	if activeCores < 0 {
		activeCores = 0
	}
	if activeCores > m.TotalCores {
		activeCores = m.TotalCores
	}
	if utilSum < 0 {
		utilSum = 0
	}
	if utilSum > float64(activeCores) {
		utilSum = float64(activeCores)
	}
	parked := m.TotalCores - activeCores
	return m.PlatformW +
		m.UncoreW(cfg) +
		m.MemoryW(cfg) +
		utilSum*m.CoreW(cfg) +
		float64(activeCores)*m.CoreActiveW +
		float64(parked)*m.CoreParkedW
}

// Capper implements RAPL-style power capping: given a power cap and a
// frequency ladder, it returns the highest frequency whose worst-case
// power stays under the cap.
type Capper struct {
	Model  ServerModel
	CapW   float64
	Ladder *freq.Ladder
}

// MaxFreq returns the highest ladder frequency that keeps server power
// at or under the cap with the given activity, together with whether
// capping had to reduce below the requested frequency.
func (c Capper) MaxFreq(requested freq.GHz, cfg freq.Config, utilSum float64, activeCores int) (freq.GHz, bool) {
	steps := c.Ladder.Steps()
	best := steps[0]
	for _, s := range steps {
		if s > requested+1e-9 {
			break
		}
		trial := cfg
		trial.CoreGHz = s
		if c.Model.Power(trial, utilSum, activeCores) <= c.CapW {
			best = s
		}
	}
	return best, best < requested-1e-9
}

// Feeder models a datacenter power-delivery element (PDU, breaker row)
// with a rated limit and a provisioned (possibly oversubscribed) load.
type Feeder struct {
	RatedW float64
	loadW  float64
	// CapEvents counts times the feeder had to engage capping.
	CapEvents int
}

// NewFeeder returns a feeder with the given rating.
func NewFeeder(ratedW float64) *Feeder {
	return &Feeder{RatedW: ratedW}
}

// Offer adds load to the feeder and reports whether the addition fits
// without exceeding the rating. Load above the rating is recorded as a
// cap event and clamped.
func (f *Feeder) Offer(w float64) bool {
	f.loadW += w
	if f.loadW > f.RatedW {
		f.CapEvents++
		f.loadW = f.RatedW
		return false
	}
	return true
}

// Release removes load.
func (f *Feeder) Release(w float64) {
	f.loadW -= w
	if f.loadW < 0 {
		f.loadW = 0
	}
}

// Load returns current load in watts.
func (f *Feeder) Load() float64 { return f.loadW }

// Headroom returns remaining watts before the rating.
func (f *Feeder) Headroom() float64 { return f.RatedW - f.loadW }
