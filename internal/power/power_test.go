package power

import (
	"math"
	"testing"
	"testing/quick"

	"immersionoc/internal/freq"
	"immersionoc/internal/thermal"
)

func TestVFCurveInterpolation(t *testing.T) {
	c, err := NewVFCurve(VFPoint{GHz: 2, V: 0.8}, VFPoint{GHz: 4, V: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Voltage(3); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("V(3) = %v, want 0.9", got)
	}
	// Extrapolation at the ends.
	if got := c.Voltage(5); math.Abs(got-1.1) > 1e-12 {
		t.Fatalf("V(5) = %v, want 1.1", got)
	}
	if got := c.Voltage(1); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("V(1) = %v, want 0.7", got)
	}
}

func TestVFCurveValidation(t *testing.T) {
	if _, err := NewVFCurve(VFPoint{GHz: 2, V: 0.8}); err == nil {
		t.Fatal("single-point curve accepted")
	}
	if _, err := NewVFCurve(VFPoint{GHz: 2, V: 0.8}, VFPoint{GHz: 2, V: 0.9}); err == nil {
		t.Fatal("duplicate frequency accepted")
	}
}

func TestXeonCurveAnchors(t *testing.T) {
	// The measured points from the paper: 0.90 V at all-core turbo,
	// 0.98 V at the +23% overclock.
	if got := XeonW3175XCurve.Voltage(3.4); math.Abs(got-0.90) > 1e-9 {
		t.Fatalf("V(3.4) = %v, want 0.90", got)
	}
	if got := XeonW3175XCurve.Voltage(4.18); math.Abs(got-0.98) > 1e-9 {
		t.Fatalf("V(4.18) = %v, want 0.98", got)
	}
}

func TestVFCurveMonotonic(t *testing.T) {
	f := func(raw uint8) bool {
		f1 := 2.0 + float64(raw)/100
		return XeonW3175XCurve.Voltage(freq.GHz(f1+0.1)) > XeonW3175XCurve.Voltage(freq.GHz(f1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStaticSavingsAbout11W(t *testing.T) {
	// §IV: cooling from ~92 °C (air) to ~75 °C (FC-3284) saves ~11 W
	// of static power per socket.
	got := XeonSocket.StaticSavings(NominalVoltage, 92, 75)
	if math.Abs(got-11) > 1.5 {
		t.Fatalf("static savings %v W, want ~11 W", got)
	}
}

func TestLeakageIncreasesWithTemperature(t *testing.T) {
	f := func(raw uint8) bool {
		tj := 30 + float64(raw)/2
		return XeonSocket.Leakage(0.9, tj+5) > XeonSocket.Leakage(0.9, tj)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLeakageIncreasesWithVoltage(t *testing.T) {
	if XeonSocket.Leakage(0.98, 70) <= XeonSocket.Leakage(0.90, 70) {
		t.Fatal("leakage not increasing in voltage")
	}
}

func TestSocketCalibration205W(t *testing.T) {
	// Fully utilized at all-core turbo in HFE-7000, the socket draws
	// its 205 W TDP.
	op, err := XeonSocket.Solve(thermal.XeonTableVHFE.Immersion, XeonW3175XCurve, 3.4, 0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.PowerW-205) > 5 {
		t.Fatalf("nominal socket power %v, want ~205 W", op.PowerW)
	}
	if math.Abs(op.JunctionC-51) > 2 {
		t.Fatalf("nominal Tj %v, want ~51 °C", op.JunctionC)
	}
}

func TestSocketCalibration305W(t *testing.T) {
	// At the +23% overclock (0.98 V) the socket draws ~305 W.
	op, err := XeonSocket.Solve(thermal.XeonTableVHFE.Immersion, XeonW3175XCurve, 4.18, 0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.VoltageV-0.98) > 1e-9 {
		t.Fatalf("OC voltage %v, want 0.98", op.VoltageV)
	}
	if math.Abs(op.PowerW-305) > 10 {
		t.Fatalf("OC socket power %v, want ~305 W", op.PowerW)
	}
}

func TestServerBudget700W(t *testing.T) {
	if got := OpenComputeBlade.Total(); got != 700 {
		t.Fatalf("blade budget %v, want 700 W", got)
	}
	imm := OpenComputeBlade.Immersed()
	if imm.FansW != 0 || imm.Total() != 658 {
		t.Fatalf("immersed budget %v (fans %v), want 658/0", imm.Total(), imm.FansW)
	}
}

func TestSavingsBreakdown182W(t *testing.T) {
	sb, err := ComputeSavings(XeonSocket, OpenComputeBlade, thermal.DirectEvaporative, NominalVoltage, 92, 75)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sb.FansW-42) > 1e-9 {
		t.Fatalf("fan savings %v, want 42", sb.FansW)
	}
	if math.Abs(sb.PUEW-118) > 3 {
		t.Fatalf("PUE savings %v, want ~118", sb.PUEW)
	}
	if math.Abs(sb.Total()-182) > 8 {
		t.Fatalf("total savings %v, want ~182 W", sb.Total())
	}
}

func TestServerModelFig12Power(t *testing.T) {
	// Figure 12's measured server powers: B2 ~120/130 W at 12/16
	// active pcores; OC3 ~160/173 W. Accept ±10%.
	cases := []struct {
		cfg     freq.Config
		utilSum float64
		active  int
		want    float64
	}{
		{freq.B2, 7.2, 12, 120},
		{freq.B2, 7.2, 16, 130},
		{freq.OC3, 6.1, 12, 160},
		{freq.OC3, 6.1, 16, 173},
	}
	for _, c := range cases {
		got := Tank1Server.Power(c.cfg, c.utilSum, c.active)
		if math.Abs(got-c.want)/c.want > 0.10 {
			t.Errorf("power(%s, %v, %d) = %.1f W, want %v±10%%", c.cfg.Name, c.utilSum, c.active, got, c.want)
		}
	}
}

func TestServerModelMonotonicInUtil(t *testing.T) {
	p1 := Tank1Server.Power(freq.B2, 4, 16)
	p2 := Tank1Server.Power(freq.B2, 8, 16)
	if p2 <= p1 {
		t.Fatal("power not increasing in utilization")
	}
}

func TestServerModelOC3IncreasesBasePower(t *testing.T) {
	// Memory/uncore overclocking raises power even with idle cores —
	// the Figure 9 BI observation.
	b2 := Tank1Server.Power(freq.B2, 0, 4)
	oc3 := Tank1Server.Power(freq.OC3, 0, 4)
	if oc3 <= b2 {
		t.Fatal("OC3 idle power not above B2")
	}
	if (oc3-b2)/b2 < 0.10 {
		t.Fatalf("OC3 idle power increase only %.1f%%", (oc3-b2)/b2*100)
	}
}

func TestServerModelClamps(t *testing.T) {
	// Clamps: negative and oversized inputs do not panic or go wild.
	p := Tank1Server.Power(freq.B2, -5, -1)
	if p <= 0 {
		t.Fatalf("clamped power non-positive: %v", p)
	}
	pAll := Tank1Server.Power(freq.B2, 999, 999)
	pFull := Tank1Server.Power(freq.B2, 28, 28)
	if pAll != pFull {
		t.Fatalf("oversized inputs not clamped: %v vs %v", pAll, pFull)
	}
}

func TestCapperReducesFrequency(t *testing.T) {
	ladder, err := freq.NewLadder(3.4, 4.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	full := Tank1Server.Power(withCore(freq.B2, 4.1), 20, 28)
	capper := Capper{Model: Tank1Server, CapW: full - 20, Ladder: ladder}
	got, capped := capper.MaxFreq(4.1, freq.B2, 20, 28)
	if !capped {
		t.Fatal("capper did not engage under the cap")
	}
	if got >= 4.1 {
		t.Fatalf("capped frequency %v not below request", got)
	}
	trial := withCore(freq.B2, got)
	if Tank1Server.Power(trial, 20, 28) > capper.CapW {
		t.Fatal("capped frequency still exceeds cap")
	}
}

func TestCapperNoCapNeeded(t *testing.T) {
	ladder, _ := freq.NewLadder(3.4, 4.1, 8)
	capper := Capper{Model: Tank1Server, CapW: 10000, Ladder: ladder}
	got, capped := capper.MaxFreq(4.1, freq.B2, 20, 28)
	if capped || got != 4.1 {
		t.Fatalf("capper engaged unnecessarily: %v %v", got, capped)
	}
}

func withCore(cfg freq.Config, f freq.GHz) freq.Config {
	cfg.CoreGHz = f
	return cfg
}

func TestFeeder(t *testing.T) {
	f := NewFeeder(100)
	if !f.Offer(60) {
		t.Fatal("offer under rating rejected")
	}
	if f.Headroom() != 40 {
		t.Fatalf("headroom %v, want 40", f.Headroom())
	}
	if f.Offer(50) {
		t.Fatal("offer over rating accepted")
	}
	if f.CapEvents != 1 {
		t.Fatalf("cap events %d, want 1", f.CapEvents)
	}
	if f.Load() != 100 {
		t.Fatalf("load %v, want clamped to 100", f.Load())
	}
	f.Release(150)
	if f.Load() != 0 {
		t.Fatalf("release did not clamp at zero: %v", f.Load())
	}
}

func TestOCFrequencyGainConstant(t *testing.T) {
	if OCFrequencyGain != 0.23 {
		t.Fatalf("OC frequency gain %v, want 0.23 (paper)", OCFrequencyGain)
	}
	ratio := OverclockedSocketW / NominalSocketW
	// P2/P1 ≈ (f2/f1)·(V2/V1)² per the classic scaling.
	approx := (1 + OCFrequencyGain) * math.Pow(OverclockedVoltage/NominalVoltage, 2)
	if math.Abs(ratio-approx)/ratio > 0.03 {
		t.Fatalf("published endpoints inconsistent: measured ratio %v vs f·V² %v", ratio, approx)
	}
}
