// Package vm defines virtual machine types, requests, and synthetic
// arrival traces for the cluster packing, buffer-reduction, and
// capacity-crisis experiments. The type mix and lifetime distribution
// are modelled after the published Azure characterization the paper
// cites (Resource Central, SOSP'17): most VMs are small, lifetimes are
// heavy-tailed, and a large fraction of VMs live long — which is
// exactly why oversubscription needs overclocking as a mitigation
// rather than relying on VMs leaving.
package vm

import (
	"fmt"
	"math"
	"sort"

	"immersionoc/internal/rng"
)

// Class labels a VM's performance tier.
type Class int

const (
	// Regular VMs run at the base frequency band.
	Regular Class = iota
	// HighPerf VMs are sold with guaranteed overclocked frequency
	// (the paper's high-performance VM offering, Figure 5c).
	HighPerf
	// Harvest VMs are evictable filler (not in the paper's
	// offerings; used by capacity experiments as the lowest
	// priority tier).
	Harvest
)

func (c Class) String() string {
	switch c {
	case Regular:
		return "regular"
	case HighPerf:
		return "high-perf"
	case Harvest:
		return "harvest"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Type is a sellable VM size.
type Type struct {
	Name     string
	VCores   int
	MemoryGB float64
}

// Standard Azure-like VM sizes used by the packing experiments.
var (
	Size2  = Type{Name: "v2", VCores: 2, MemoryGB: 8}
	Size4  = Type{Name: "v4", VCores: 4, MemoryGB: 16}
	Size8  = Type{Name: "v8", VCores: 8, MemoryGB: 32}
	Size16 = Type{Name: "v16", VCores: 16, MemoryGB: 64}
)

// Types returns the size catalog.
func Types() []Type { return []Type{Size2, Size4, Size8, Size16} }

// VM is one virtual machine instance.
type VM struct {
	ID    int
	Type  Type
	Class Class
	// ArrivalS and LifetimeS place the VM in a trace.
	ArrivalS, LifetimeS float64
	// AvgUtil is the VM's average CPU utilization, used to estimate
	// the probability that co-located VMs need the same cores at
	// the same time.
	AvgUtil float64
	// ScalableFraction is the workload's ΔPperf/ΔAperf.
	ScalableFraction float64
}

// EndS returns the VM's departure time.
func (v *VM) EndS() float64 { return v.ArrivalS + v.LifetimeS }

// TraceConfig parameterizes synthetic VM arrival traces.
type TraceConfig struct {
	// Seed makes the trace reproducible.
	Seed uint64
	// ArrivalRatePerS is the mean VM arrival rate.
	ArrivalRatePerS float64
	// DurationS is the trace horizon.
	DurationS float64
	// MeanLifetimeS is the mean VM lifetime; lifetimes are
	// heavy-tailed (bounded Pareto) so a large fraction of VMs are
	// long-lived, matching the cloud characterization.
	MeanLifetimeS float64
	// HighPerfFraction is the share of arrivals requesting
	// high-performance (overclocked) VMs.
	HighPerfFraction float64
}

// DefaultTrace is a moderately sized reproducible trace.
var DefaultTrace = TraceConfig{
	Seed:             42,
	ArrivalRatePerS:  0.02,
	DurationS:        4 * 24 * 3600,
	MeanLifetimeS:    12 * 3600,
	HighPerfFraction: 0.1,
}

// sizeWeights reflects the small-VM-dominated mix of public clouds.
var sizeWeights = []float64{0.45, 0.30, 0.18, 0.07}

// Generate produces a reproducible VM arrival trace.
func Generate(cfg TraceConfig) []*VM {
	return generate(cfg, nil)
}

// DiurnalConfig modulates a trace's Poisson arrival rate over a
// raised-cosine day: ArrivalRatePerS is the daily peak, the trough is
// TroughFraction of it.
type DiurnalConfig struct {
	TraceConfig
	// TroughFraction is the trough rate as a fraction of the peak
	// ArrivalRatePerS, in [0, 1]. 1 disables the modulation.
	TroughFraction float64
	// PeriodS is the modulation period (0 = 24 h). The peak sits at
	// half the period, so a trace starting at t=0 starts in the trough.
	PeriodS float64
}

// Factor returns the rate multiplier at time t: a raised cosine
// between TroughFraction (at t = 0 mod PeriodS) and 1 (at half the
// period).
func (d DiurnalConfig) Factor(t float64) float64 {
	period := d.PeriodS
	if period <= 0 {
		period = 24 * 3600
	}
	shape := (1 - math.Cos(2*math.Pi*t/period)) / 2 // 0 at trough, 1 at peak
	return d.TroughFraction + (1-d.TroughFraction)*shape
}

// GenerateDiurnal produces a reproducible arrival trace whose rate
// follows the diurnal day, by thinning: candidate arrivals are drawn
// at the peak rate and kept with probability Factor(t) (the standard
// construction for a non-homogeneous Poisson process). The per-VM
// sampling matches Generate, so the workload mix is identical and only
// the arrival intensity breathes.
func GenerateDiurnal(cfg DiurnalConfig) []*VM {
	return generate(cfg.TraceConfig, cfg.Factor)
}

func generate(cfg TraceConfig, keep func(t float64) float64) []*VM {
	r := rng.New(cfg.Seed)
	var out []*VM
	t := 0.0
	id := 0
	types := Types()
	for {
		t += r.Exp(cfg.ArrivalRatePerS)
		if t >= cfg.DurationS {
			break
		}
		if keep != nil && !r.Bernoulli(keep(t)) {
			continue
		}
		id++
		// Bounded Pareto lifetimes with alpha 1.2: heavy tail,
		// mean adjusted to MeanLifetimeS via the xmin choice.
		// mean of Pareto(xmin, a) = xmin·a/(a-1) for a>1.
		alpha := 1.2
		xmin := cfg.MeanLifetimeS * (alpha - 1) / alpha
		life := r.Pareto(xmin, alpha)
		if life > 30*24*3600 {
			life = 30 * 24 * 3600
		}
		class := Regular
		if r.Bernoulli(cfg.HighPerfFraction) {
			class = HighPerf
		}
		out = append(out, &VM{
			ID:               id,
			Type:             types[r.Empirical(sizeWeights)],
			Class:            class,
			ArrivalS:         t,
			LifetimeS:        life,
			AvgUtil:          0.15 + 0.5*r.Float64(),
			ScalableFraction: 0.4 + 0.5*r.Float64(),
		})
	}
	return out
}

// Event is an arrival or departure in time order.
type Event struct {
	TimeS   float64
	VM      *VM
	Arrival bool
}

// Events expands a trace into a time-ordered arrival/departure stream.
func Events(trace []*VM) []Event {
	evs := make([]Event, 0, 2*len(trace))
	for _, v := range trace {
		evs = append(evs, Event{TimeS: v.ArrivalS, VM: v, Arrival: true})
		evs = append(evs, Event{TimeS: v.EndS(), VM: v, Arrival: false})
	}
	// Total order: time, then departures before arrivals (free
	// capacity before consuming it), then VM ID.
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.TimeS != b.TimeS {
			return a.TimeS < b.TimeS
		}
		if a.Arrival != b.Arrival {
			return !a.Arrival
		}
		return a.VM.ID < b.VM.ID
	})
	return evs
}

// CreationLatencyS is the time to deploy a new VM, emulating the
// paper's auto-scaling experiments ("we make scaling-out in our system
// take 60 seconds").
const CreationLatencyS = 60.0
