package vm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultTrace)
	b := Generate(DefaultTrace)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("trace diverges at VM %d", i)
		}
	}
}

func TestGenerateSeedChangesTrace(t *testing.T) {
	cfg := DefaultTrace
	cfg.Seed = 43
	a := Generate(DefaultTrace)
	b := Generate(cfg)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i].ArrivalS != b[i].ArrivalS {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestTraceShape(t *testing.T) {
	trace := Generate(DefaultTrace)
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	expected := DefaultTrace.ArrivalRatePerS * DefaultTrace.DurationS
	if math.Abs(float64(len(trace))-expected)/expected > 0.15 {
		t.Fatalf("trace size %d, expected ≈%v", len(trace), expected)
	}
	var lifeSum float64
	highPerf := 0
	for _, v := range trace {
		if v.ArrivalS < 0 || v.ArrivalS >= DefaultTrace.DurationS {
			t.Fatalf("arrival %v outside trace horizon", v.ArrivalS)
		}
		if v.LifetimeS <= 0 {
			t.Fatalf("non-positive lifetime")
		}
		if v.AvgUtil < 0.15 || v.AvgUtil > 0.65 {
			t.Fatalf("avg util %v out of range", v.AvgUtil)
		}
		if v.ScalableFraction < 0.4 || v.ScalableFraction > 0.9 {
			t.Fatalf("scalable fraction %v out of range", v.ScalableFraction)
		}
		lifeSum += v.LifetimeS
		if v.Class == HighPerf {
			highPerf++
		}
	}
	meanLife := lifeSum / float64(len(trace))
	// Pareto lifetimes with truncation: mean lands near configured.
	if meanLife < DefaultTrace.MeanLifetimeS*0.5 || meanLife > DefaultTrace.MeanLifetimeS*1.8 {
		t.Fatalf("mean lifetime %v, configured %v", meanLife, DefaultTrace.MeanLifetimeS)
	}
	frac := float64(highPerf) / float64(len(trace))
	if math.Abs(frac-DefaultTrace.HighPerfFraction) > 0.04 {
		t.Fatalf("high-perf fraction %v, want ~%v", frac, DefaultTrace.HighPerfFraction)
	}
}

func TestEventsOrderedAndPaired(t *testing.T) {
	trace := Generate(DefaultTrace)
	evs := Events(trace)
	if len(evs) != 2*len(trace) {
		t.Fatalf("%d events for %d VMs", len(evs), len(trace))
	}
	live := make(map[int]bool)
	prev := -1.0
	for _, e := range evs {
		if e.TimeS < prev {
			t.Fatal("events out of time order")
		}
		prev = e.TimeS
		if e.Arrival {
			if live[e.VM.ID] {
				t.Fatalf("VM %d arrived twice", e.VM.ID)
			}
			live[e.VM.ID] = true
		} else {
			if !live[e.VM.ID] {
				t.Fatalf("VM %d departed before arriving", e.VM.ID)
			}
			delete(live, e.VM.ID)
		}
	}
	if len(live) != 0 {
		t.Fatalf("%d VMs never departed", len(live))
	}
}

func TestEventsDepartureBeforeArrivalOnTie(t *testing.T) {
	a := &VM{ID: 1, ArrivalS: 0, LifetimeS: 10}
	b := &VM{ID: 2, ArrivalS: 10, LifetimeS: 5}
	evs := Events([]*VM{a, b})
	// At t=10: a departs, then b arrives.
	if evs[1].Arrival || evs[1].VM.ID != 1 {
		t.Fatalf("tie order: %+v", evs[1])
	}
	if !evs[2].Arrival || evs[2].VM.ID != 2 {
		t.Fatalf("tie order: %+v", evs[2])
	}
}

func TestTypesCatalog(t *testing.T) {
	ts := Types()
	if len(ts) != 4 {
		t.Fatalf("%d types", len(ts))
	}
	for _, ty := range ts {
		if ty.VCores <= 0 || ty.MemoryGB <= 0 {
			t.Fatalf("bad type %+v", ty)
		}
		if ty.MemoryGB/float64(ty.VCores) != 4 {
			t.Fatalf("%s: memory-to-vcore ratio %v, want 4", ty.Name, ty.MemoryGB/float64(ty.VCores))
		}
	}
}

func TestEndS(t *testing.T) {
	v := &VM{ArrivalS: 5, LifetimeS: 7}
	if v.EndS() != 12 {
		t.Fatalf("EndS %v", v.EndS())
	}
}

func TestClassStrings(t *testing.T) {
	if Regular.String() != "regular" || HighPerf.String() != "high-perf" || Harvest.String() != "harvest" {
		t.Fatal("class strings wrong")
	}
}

func TestCreationLatencyMatchesPaper(t *testing.T) {
	if CreationLatencyS != 60 {
		t.Fatalf("creation latency %v, want 60 s (paper)", CreationLatencyS)
	}
}

// Property: traces are valid for arbitrary seeds and moderate rates.
func TestGeneratePropertyValid(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := TraceConfig{Seed: seed, ArrivalRatePerS: 0.01, DurationS: 3600, MeanLifetimeS: 1800, HighPerfFraction: 0.2}
		for _, v := range Generate(cfg) {
			if v.ArrivalS >= cfg.DurationS || v.LifetimeS <= 0 || v.Type.VCores == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
