package vm

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	cfg := DefaultTrace
	cfg.DurationS = 6 * 3600
	trace := Generate(cfg)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, trace); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(trace) {
		t.Fatalf("round trip %d of %d VMs", len(back), len(trace))
	}
	for i := range trace {
		a, b := trace[i], back[i]
		if a.ID != b.ID || a.Type.VCores != b.Type.VCores || a.Type.MemoryGB != b.Type.MemoryGB {
			t.Fatalf("vm %d shape mismatch: %+v vs %+v", i, a, b)
		}
		if a.Class != b.Class || a.ArrivalS != b.ArrivalS || a.LifetimeS != b.LifetimeS {
			t.Fatalf("vm %d timing mismatch", i)
		}
		if a.AvgUtil != b.AvgUtil || a.ScalableFraction != b.ScalableFraction {
			t.Fatalf("vm %d profile mismatch", i)
		}
	}
}

func TestReadCSVWithoutHeader(t *testing.T) {
	in := "1,4,16,regular,0,100,0.5,0.7\n2,8,32,high-perf,10,200,0.3,0.8\n"
	vms, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(vms) != 2 {
		t.Fatalf("%d VMs", len(vms))
	}
	if vms[1].Class != HighPerf {
		t.Fatalf("class %v", vms[1].Class)
	}
}

func TestReadCSVValidation(t *testing.T) {
	cases := []struct {
		name string
		row  string
	}{
		{"bad id", "x,4,16,regular,0,100,0.5,0.7"},
		{"zero vcores", "1,0,16,regular,0,100,0.5,0.7"},
		{"negative memory", "1,4,-1,regular,0,100,0.5,0.7"},
		{"bad class", "1,4,16,gold,0,100,0.5,0.7"},
		{"negative arrival", "1,4,16,regular,-5,100,0.5,0.7"},
		{"zero lifetime", "1,4,16,regular,0,0,0.5,0.7"},
		{"util out of range", "1,4,16,regular,0,100,1.5,0.7"},
		{"sf out of range", "1,4,16,regular,0,100,0.5,-0.1"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.row + "\n")); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestReadCSVWrongArity(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1,2,3\n")); err == nil {
		t.Fatal("short record accepted")
	}
}

func TestReadCSVEmpty(t *testing.T) {
	vms, err := ReadCSV(strings.NewReader(""))
	if err != nil || len(vms) != 0 {
		t.Fatalf("empty input: %v %v", vms, err)
	}
}
