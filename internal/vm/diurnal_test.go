package vm

import (
	"math"
	"testing"
)

func diurnalBase() DiurnalConfig {
	return DiurnalConfig{
		TraceConfig: TraceConfig{
			Seed:             7,
			ArrivalRatePerS:  0.05,
			DurationS:        24 * 3600,
			MeanLifetimeS:    2 * 3600,
			HighPerfFraction: 0.1,
		},
		TroughFraction: 0.2,
	}
}

func TestDiurnalFactorShape(t *testing.T) {
	cfg := diurnalBase()
	period := 24 * 3600.0
	// Trough at t=0 and t=period, crest at half period.
	if got := cfg.Factor(0); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Factor(0) = %v, want trough 0.2", got)
	}
	if got := cfg.Factor(period); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Factor(period) = %v, want trough 0.2", got)
	}
	if got := cfg.Factor(period / 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("Factor(period/2) = %v, want crest 1", got)
	}
	// Bounded on [trough, 1] everywhere.
	for ts := 0.0; ts <= period; ts += 613 {
		f := cfg.Factor(ts)
		if f < 0.2-1e-12 || f > 1+1e-12 {
			t.Fatalf("Factor(%v) = %v out of [0.2, 1]", ts, f)
		}
	}
	// PeriodS = 0 defaults to a 24-hour day.
	explicit := cfg
	explicit.PeriodS = 24 * 3600
	for _, ts := range []float64{0, 3500, 40_000, 86_000} {
		if cfg.Factor(ts) != explicit.Factor(ts) {
			t.Fatalf("zero PeriodS != 24h default at t=%v", ts)
		}
	}
}

func TestGenerateDiurnalDeterministic(t *testing.T) {
	cfg := diurnalBase()
	a := GenerateDiurnal(cfg)
	b := GenerateDiurnal(cfg)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("trace diverges at VM %d", i)
		}
	}
}

func TestGenerateDiurnalThinsTrace(t *testing.T) {
	cfg := diurnalBase()
	flat := Generate(cfg.TraceConfig)
	diurnal := GenerateDiurnal(cfg)
	if len(diurnal) == 0 {
		t.Fatal("empty diurnal trace")
	}
	// Thinning strictly reduces volume: the raised cosine with a 0.2
	// trough keeps 60% of arrivals in expectation.
	if len(diurnal) >= len(flat) {
		t.Fatalf("thinning did not reduce the trace: %d diurnal vs %d flat", len(diurnal), len(flat))
	}
	ratio := float64(len(diurnal)) / float64(len(flat))
	if ratio < 0.5 || ratio > 0.7 {
		t.Errorf("kept fraction %.3f, want ≈ 0.6 (trough 0.2 raised cosine)", ratio)
	}
	// IDs stay dense (1..n) so dcsim trace replay indexes cleanly.
	for i, v := range diurnal {
		if v.ID != i+1 {
			t.Fatalf("VM %d has ID %d, want dense IDs", i, v.ID)
		}
	}
}

func TestGenerateDiurnalConcentratesAtCrest(t *testing.T) {
	cfg := diurnalBase()
	trace := GenerateDiurnal(cfg)
	period := cfg.TraceConfig.DurationS
	// Compare the middle half-day (around the crest) against the two
	// outer quarters (around the troughs): the crest must dominate.
	var crest, trough int
	for _, v := range trace {
		if v.ArrivalS > period/4 && v.ArrivalS < 3*period/4 {
			crest++
		} else {
			trough++
		}
	}
	if crest <= trough {
		t.Fatalf("no diurnal shape: %d arrivals at crest half vs %d at trough quarters", crest, trough)
	}
}
