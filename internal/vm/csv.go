package vm

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// The CSV trace format lets downstream users replace the synthetic
// generator with real VM traces (e.g. derived from the public Azure
// dataset the paper's characterization references). Columns:
//
//	id,vcores,memory_gb,class,arrival_s,lifetime_s,avg_util,scalable_fraction
//
// A header row is written on export and tolerated on import.

var csvHeader = []string{"id", "vcores", "memory_gb", "class", "arrival_s", "lifetime_s", "avg_util", "scalable_fraction"}

// WriteCSV exports a trace.
func WriteCSV(w io.Writer, trace []*VM) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, v := range trace {
		rec := []string{
			strconv.Itoa(v.ID),
			strconv.Itoa(v.Type.VCores),
			strconv.FormatFloat(v.Type.MemoryGB, 'g', -1, 64),
			v.Class.String(),
			strconv.FormatFloat(v.ArrivalS, 'g', -1, 64),
			strconv.FormatFloat(v.LifetimeS, 'g', -1, 64),
			strconv.FormatFloat(v.AvgUtil, 'g', -1, 64),
			strconv.FormatFloat(v.ScalableFraction, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// classFromString parses a Class name.
func classFromString(s string) (Class, error) {
	switch s {
	case "regular":
		return Regular, nil
	case "high-perf":
		return HighPerf, nil
	case "harvest":
		return Harvest, nil
	default:
		return Regular, fmt.Errorf("vm: unknown class %q", s)
	}
}

// ReadCSV imports a trace, validating every record.
func ReadCSV(r io.Reader) ([]*VM, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	var out []*VM
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		line++
		if line == 1 && rec[0] == "id" {
			continue // header
		}
		v, err := parseRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("vm: record %d: %w", line, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseRecord(rec []string) (*VM, error) {
	id, err := strconv.Atoi(rec[0])
	if err != nil {
		return nil, fmt.Errorf("id: %w", err)
	}
	vcores, err := strconv.Atoi(rec[1])
	if err != nil {
		return nil, fmt.Errorf("vcores: %w", err)
	}
	if vcores <= 0 {
		return nil, fmt.Errorf("vcores %d must be positive", vcores)
	}
	mem, err := strconv.ParseFloat(rec[2], 64)
	if err != nil {
		return nil, fmt.Errorf("memory_gb: %w", err)
	}
	if mem <= 0 {
		return nil, fmt.Errorf("memory %v must be positive", mem)
	}
	class, err := classFromString(rec[3])
	if err != nil {
		return nil, err
	}
	arrival, err := strconv.ParseFloat(rec[4], 64)
	if err != nil {
		return nil, fmt.Errorf("arrival_s: %w", err)
	}
	if arrival < 0 {
		return nil, fmt.Errorf("arrival %v must be non-negative", arrival)
	}
	life, err := strconv.ParseFloat(rec[5], 64)
	if err != nil {
		return nil, fmt.Errorf("lifetime_s: %w", err)
	}
	if life <= 0 {
		return nil, fmt.Errorf("lifetime %v must be positive", life)
	}
	util, err := strconv.ParseFloat(rec[6], 64)
	if err != nil {
		return nil, fmt.Errorf("avg_util: %w", err)
	}
	if util < 0 || util > 1 {
		return nil, fmt.Errorf("avg_util %v outside [0,1]", util)
	}
	sf, err := strconv.ParseFloat(rec[7], 64)
	if err != nil {
		return nil, fmt.Errorf("scalable_fraction: %w", err)
	}
	if sf < 0 || sf > 1 {
		return nil, fmt.Errorf("scalable_fraction %v outside [0,1]", sf)
	}
	return &VM{
		ID:               id,
		Type:             Type{Name: fmt.Sprintf("v%d", vcores), VCores: vcores, MemoryGB: mem},
		Class:            class,
		ArrivalS:         arrival,
		LifetimeS:        life,
		AvgUtil:          util,
		ScalableFraction: sf,
	}, nil
}
