package capping

import (
	"errors"
	"math"
	"testing"

	"immersionoc/internal/freq"
	"immersionoc/internal/power"
)

func ladder(t *testing.T) *freq.Ladder {
	t.Helper()
	l, err := freq.NewLadder(3.4, 4.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func group(t *testing.T, name string, prio Priority, servers int) *Group {
	t.Helper()
	return &Group{
		Name:             name,
		Priority:         prio,
		Servers:          servers,
		UtilSum:          20,
		ActiveCores:      24,
		Model:            power.Tank1Server,
		Ladder:           ladder(t),
		Config:           freq.OC1,
		ScalableFraction: 0.8,
	}
}

func controller(t *testing.T, budget float64, groups ...*Group) *Controller {
	t.Helper()
	c, err := NewController(budget, 20, groups...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStartsAtTopOfLadder(t *testing.T) {
	g := group(t, "a", Batch, 4)
	controller(t, 1e6, g)
	if g.FreqGHz() != 4.1 {
		t.Fatalf("initial frequency %v", g.FreqGHz())
	}
	if g.PerfImpact() != 0 {
		t.Fatalf("impact at top of ladder %v", g.PerfImpact())
	}
}

func TestNoActionUnderBudget(t *testing.T) {
	c := controller(t, 1e6, group(t, "a", Batch, 4))
	acts, err := c.Enforce()
	if err != nil || len(acts) != 0 {
		t.Fatalf("enforce under budget: %v %v", acts, err)
	}
	if c.CapEvents != 0 {
		t.Fatal("cap event counted without shedding")
	}
}

func TestPrioritySheddingOrder(t *testing.T) {
	crit := group(t, "critical", Critical, 4)
	batch := group(t, "batch", Batch, 4)
	harvest := group(t, "harvest", Harvest, 4)
	c := controller(t, 1e9, crit, batch, harvest)
	// Budget that forces some shedding: 97% of current draw.
	c.BudgetW = c.TotalPowerW() * 0.97
	acts, err := c.Enforce()
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) == 0 {
		t.Fatal("no shedding")
	}
	// Harvest must shed before batch, batch before critical.
	seenBatch := false
	for _, a := range acts {
		switch a.Group {
		case "critical":
			t.Fatal("critical group capped while lower priorities had headroom")
		case "batch":
			seenBatch = true
		case "harvest":
			if seenBatch && harvest.FreqGHz() > harvest.Ladder.Min() {
				t.Fatal("batch shed before harvest exhausted")
			}
		}
	}
	if crit.FreqGHz() != 4.1 {
		t.Fatalf("critical frequency %v, want untouched", crit.FreqGHz())
	}
	if c.TotalPowerW() > c.BudgetW {
		t.Fatal("budget still exceeded after enforce")
	}
}

func TestCriticalShedsLastButEventually(t *testing.T) {
	crit := group(t, "critical", Critical, 4)
	harvest := group(t, "harvest", Harvest, 4)
	c := controller(t, 1e9, crit, harvest)
	// Harsh budget: even after harvest bottoms out, critical must
	// shed some.
	harvestFloor := harvest.powerAt(harvest.Ladder.Min())
	c.BudgetW = harvestFloor + crit.PowerW()*0.98
	if _, err := c.Enforce(); err != nil {
		t.Fatal(err)
	}
	if harvest.FreqGHz() != harvest.Ladder.Min() {
		t.Fatal("harvest not fully shed before touching critical")
	}
	if crit.FreqGHz() >= 4.1 {
		t.Fatal("critical untouched under a budget that requires it")
	}
}

func TestInfeasibleBudget(t *testing.T) {
	c := controller(t, 1, group(t, "a", Batch, 4))
	_, err := c.Enforce()
	if !errors.Is(err, ErrBudgetInfeasible) {
		t.Fatalf("got %v, want ErrBudgetInfeasible", err)
	}
}

func TestRestoreHighestPriorityFirst(t *testing.T) {
	crit := group(t, "critical", Critical, 4)
	batch := group(t, "batch", Batch, 4)
	c := controller(t, 1e9, crit, batch)
	c.BudgetW = c.TotalPowerW() * 0.90
	if _, err := c.Enforce(); err != nil {
		t.Fatal(err)
	}
	// Raise the budget back; critical (if it was capped) restores
	// before batch.
	c.BudgetW = c.TotalPowerW() * 1.3
	acts := c.Restore()
	if len(acts) == 0 {
		t.Fatal("nothing restored with ample headroom")
	}
	// After restore, batch must not out-rank critical.
	if crit.FreqGHz() < batch.FreqGHz() {
		t.Fatalf("critical at %v below batch at %v after restore", crit.FreqGHz(), batch.FreqGHz())
	}
	if c.TotalPowerW() > c.BudgetW-c.RestoreMarginW {
		t.Fatal("restore violated the hysteresis margin")
	}
}

func TestRestoreRespectsMargin(t *testing.T) {
	g := group(t, "a", Batch, 4)
	c := controller(t, 1e9, g)
	c.BudgetW = c.TotalPowerW() * 0.95
	c.Enforce()
	// Budget exactly at current power: no restore is possible
	// within the margin.
	c.BudgetW = c.TotalPowerW() + c.RestoreMarginW/2
	if acts := c.Restore(); len(acts) != 0 {
		t.Fatalf("restored %d rungs inside the margin", len(acts))
	}
}

func TestUniformCapsCriticalToo(t *testing.T) {
	mk := func() (*Controller, *Group, *Group) {
		crit := group(t, "critical", Critical, 4)
		harvest := group(t, "harvest", Harvest, 4)
		c := controller(t, 1e9, crit, harvest)
		c.BudgetW = c.TotalPowerW() * 0.97
		return c, crit, harvest
	}
	cp, crit, _ := mk()
	if _, err := cp.Enforce(); err != nil {
		t.Fatal(err)
	}
	critPrio := crit.FreqGHz()

	cu, critU, _ := mk()
	if _, err := cu.UniformEnforce(); err != nil {
		t.Fatal(err)
	}
	if critU.FreqGHz() >= 4.1 {
		t.Fatal("uniform capper spared the critical group")
	}
	if critPrio <= critU.FreqGHz() {
		t.Fatalf("priority capper kept critical at %v, uniform at %v — priority must preserve more",
			critPrio, critU.FreqGHz())
	}
}

func TestPerfImpactMonotone(t *testing.T) {
	g := group(t, "a", Batch, 1)
	c := controller(t, 1e9, g)
	c.BudgetW = 1
	c.Enforce() // drives to the floor (infeasible, but sheds fully)
	if g.FreqGHz() != g.Ladder.Min() {
		t.Fatalf("not at floor: %v", g.FreqGHz())
	}
	impact := g.PerfImpact()
	// 0.8 scalable at 3.4 vs 4.1: 1 − 1/(0.8·4.1/3.4 + 0.2) ≈ 0.14.
	if impact < 0.10 || impact > 0.18 {
		t.Fatalf("floor impact %v, want ~0.14", impact)
	}
}

func TestActionsAccounting(t *testing.T) {
	g := group(t, "a", Batch, 4)
	c := controller(t, 1e9, g)
	before := c.TotalPowerW()
	c.BudgetW = before * 0.95
	acts, err := c.Enforce()
	if err != nil {
		t.Fatal(err)
	}
	var shed float64
	for _, a := range acts {
		if a.Shed <= 0 {
			t.Fatalf("non-positive shed in %+v", a)
		}
		if a.ToGHz >= a.FromGHz {
			t.Fatalf("action did not reduce frequency: %+v", a)
		}
		shed += a.Shed
	}
	if math.Abs((before-c.TotalPowerW())-shed) > 1e-6 {
		t.Fatalf("shed accounting %v vs actual %v", shed, before-c.TotalPowerW())
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewController(0, 0, group(t, "a", Batch, 1)); err == nil {
		t.Fatal("zero budget accepted")
	}
	bad := group(t, "b", Batch, 0)
	if _, err := NewController(100, 0, bad); err == nil {
		t.Fatal("zero servers accepted")
	}
}
