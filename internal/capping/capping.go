// Package capping implements workload-priority-based power capping for
// overclocked fleets. §IV of the paper warns that "overclocking in
// oversubscribed datacenters increases the chance of hitting limits and
// triggering power capping mechanisms" and prescribes the remedy:
// "use workload-priority-based capping to minimize the impact on
// critical/overclocked workloads when power limits are breached" (in
// the style of Dynamo and the medium-voltage priority cappers it
// cites).
//
// A Controller owns a power budget (a feeder, PDU or row) and a set of
// server groups with priorities. When aggregate power exceeds the
// budget it sheds frequency from the lowest-priority groups first, one
// ladder rung at a time; when headroom returns it restores frequency
// highest-priority first. A uniform capper (everyone steps down
// together, RAPL-style) is provided as the baseline the paper's
// recommendation is measured against.
package capping

import (
	"errors"
	"fmt"
	"sort"

	"immersionoc/internal/freq"
	"immersionoc/internal/power"
)

// Priority orders workload classes; higher values shed power later.
type Priority int

const (
	// Harvest is evictable filler capacity.
	Harvest Priority = iota
	// Batch is throughput work with loose deadlines.
	Batch
	// Production is standard customer workloads.
	Production
	// Critical is latency-sensitive or overclocking-dependent work
	// (e.g. VMs whose oversubscription is being hidden by
	// overclocking — capping those recreates the interference).
	Critical
)

func (p Priority) String() string {
	switch p {
	case Harvest:
		return "harvest"
	case Batch:
		return "batch"
	case Production:
		return "production"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// Group is a homogeneous set of servers sharing a priority and a
// frequency setting.
type Group struct {
	Name     string
	Priority Priority
	// Servers is the number of servers in the group.
	Servers int
	// UtilSum and ActiveCores describe per-server load.
	UtilSum     float64
	ActiveCores int
	// Model computes per-server power.
	Model power.ServerModel
	// Ladder is the frequency range the capper may move within.
	Ladder *freq.Ladder
	// Config is the group's frequency configuration template; the
	// capper adjusts its core clock.
	Config freq.Config
	// ScalableFraction converts a frequency reduction into a
	// performance impact estimate.
	ScalableFraction float64

	curGHz freq.GHz
}

// Validate checks the group definition.
func (g *Group) Validate() error {
	if g.Servers <= 0 {
		return fmt.Errorf("capping: group %s has no servers", g.Name)
	}
	if g.Ladder == nil {
		return fmt.Errorf("capping: group %s has no ladder", g.Name)
	}
	if g.ScalableFraction < 0 || g.ScalableFraction > 1 {
		return fmt.Errorf("capping: group %s scalable fraction %v", g.Name, g.ScalableFraction)
	}
	return nil
}

// FreqGHz returns the group's current core clock.
func (g *Group) FreqGHz() freq.GHz { return g.curGHz }

// config returns the group's configuration at its current clock.
func (g *Group) config() freq.Config {
	c := g.Config
	c.CoreGHz = g.curGHz
	return c
}

// PowerW returns the group's aggregate power at its current clock.
func (g *Group) PowerW() float64 {
	return float64(g.Servers) * g.Model.Power(g.config(), g.UtilSum, g.ActiveCores)
}

// powerAt returns aggregate power at a hypothetical clock.
func (g *Group) powerAt(f freq.GHz) float64 {
	c := g.Config
	c.CoreGHz = f
	return float64(g.Servers) * g.Model.Power(c, g.UtilSum, g.ActiveCores)
}

// PerfImpact returns the estimated throughput loss versus the group's
// target (top-of-ladder) frequency: the frequency-scalable fraction of
// work slows with the clock.
func (g *Group) PerfImpact() float64 {
	top := g.Ladder.Max()
	if g.curGHz >= top {
		return 0
	}
	ratio := g.ScalableFraction*float64(top/g.curGHz) + (1 - g.ScalableFraction)
	return 1 - 1/ratio
}

// Action records one capping step.
type Action struct {
	Group   string
	FromGHz freq.GHz
	ToGHz   freq.GHz
	// Shed is the power released (positive) or reclaimed (negative
	// for restores).
	Shed float64
}

// Controller enforces a power budget across groups.
type Controller struct {
	// BudgetW is the delivery limit.
	BudgetW float64
	// RestoreMarginW is the headroom required before restoring
	// frequency (hysteresis against oscillation).
	RestoreMarginW float64
	groups         []*Group
	// CapEvents counts Enforce invocations that had to shed.
	CapEvents int
}

// NewController builds a controller over the groups; every group
// starts at the top of its ladder.
func NewController(budgetW, restoreMarginW float64, groups ...*Group) (*Controller, error) {
	if budgetW <= 0 {
		return nil, errors.New("capping: non-positive budget")
	}
	for _, g := range groups {
		if err := g.Validate(); err != nil {
			return nil, err
		}
		g.curGHz = g.Ladder.Max()
	}
	c := &Controller{BudgetW: budgetW, RestoreMarginW: restoreMarginW, groups: groups}
	return c, nil
}

// Groups returns the managed groups.
func (c *Controller) Groups() []*Group { return c.groups }

// TotalPowerW returns the fleet's aggregate power.
func (c *Controller) TotalPowerW() float64 {
	var t float64
	for _, g := range c.groups {
		t += g.PowerW()
	}
	return t
}

// sortedByPriority returns groups lowest-priority first (the shedding
// order), with deterministic tie-breaking by name.
func (c *Controller) sortedByPriority() []*Group {
	gs := append([]*Group(nil), c.groups...)
	sort.Slice(gs, func(i, j int) bool {
		if gs[i].Priority != gs[j].Priority {
			return gs[i].Priority < gs[j].Priority
		}
		return gs[i].Name < gs[j].Name
	})
	return gs
}

// Enforce sheds frequency until aggregate power fits the budget,
// lowest priority first, one ladder rung at a time. Within a priority
// level the group with the largest power release per rung sheds first.
// Returns the actions taken; an empty slice means the budget already
// held. If every group reaches its floor and power still exceeds the
// budget, ErrBudgetInfeasible is returned along with the actions.
func (c *Controller) Enforce() ([]Action, error) {
	var actions []Action
	if c.TotalPowerW() <= c.BudgetW {
		return actions, nil
	}
	c.CapEvents++
	for prio := Harvest; prio <= Critical; prio++ {
		for {
			if c.TotalPowerW() <= c.BudgetW {
				return actions, nil
			}
			// Candidates at this priority that can still step down.
			var best *Group
			var bestShed float64
			for _, g := range c.sortedByPriority() {
				if g.Priority != prio || g.curGHz <= g.Ladder.Min() {
					continue
				}
				shed := g.PowerW() - g.powerAt(g.Ladder.Down(g.curGHz))
				if shed > bestShed {
					best, bestShed = g, shed
				}
			}
			if best == nil {
				break // this priority exhausted; move up
			}
			from := best.curGHz
			best.curGHz = best.Ladder.Down(best.curGHz)
			actions = append(actions, Action{Group: best.Name, FromGHz: from, ToGHz: best.curGHz, Shed: bestShed})
		}
	}
	if c.TotalPowerW() > c.BudgetW {
		return actions, fmt.Errorf("%w: %.0fW demand against %.0fW budget at minimum frequencies",
			ErrBudgetInfeasible, c.TotalPowerW(), c.BudgetW)
	}
	return actions, nil
}

// ErrBudgetInfeasible is returned when even minimum frequencies exceed
// the budget (load must be shed by other means — migration, eviction).
var ErrBudgetInfeasible = errors.New("capping: budget infeasible")

// Restore raises frequencies while headroom (budget − margin) permits,
// highest priority first, one rung at a time. Returns the actions (with
// negative Shed values).
func (c *Controller) Restore() []Action {
	var actions []Action
	for {
		raised := false
		gs := c.sortedByPriority()
		// Highest priority first.
		for i := len(gs) - 1; i >= 0; i-- {
			g := gs[i]
			if g.curGHz >= g.Ladder.Max() {
				continue
			}
			next := g.Ladder.Up(g.curGHz)
			delta := g.powerAt(next) - g.PowerW()
			if c.TotalPowerW()+delta <= c.BudgetW-c.RestoreMarginW {
				from := g.curGHz
				g.curGHz = next
				actions = append(actions, Action{Group: g.Name, FromGHz: from, ToGHz: next, Shed: -delta})
				raised = true
				break
			}
		}
		if !raised {
			return actions
		}
	}
}

// UniformEnforce is the RAPL-style baseline: all groups step down in
// lockstep (one rung each per round, regardless of priority) until the
// budget holds. It mutates the same group state as Enforce.
func (c *Controller) UniformEnforce() ([]Action, error) {
	var actions []Action
	if c.TotalPowerW() <= c.BudgetW {
		return actions, nil
	}
	c.CapEvents++
	for {
		if c.TotalPowerW() <= c.BudgetW {
			return actions, nil
		}
		stepped := false
		for _, g := range c.sortedByPriority() {
			if g.curGHz <= g.Ladder.Min() {
				continue
			}
			from := g.curGHz
			shed := g.PowerW() - g.powerAt(g.Ladder.Down(g.curGHz))
			g.curGHz = g.Ladder.Down(g.curGHz)
			actions = append(actions, Action{Group: g.Name, FromGHz: from, ToGHz: g.curGHz, Shed: shed})
			stepped = true
			if c.TotalPowerW() <= c.BudgetW {
				return actions, nil
			}
		}
		if !stepped {
			return actions, fmt.Errorf("%w: %.0fW demand against %.0fW budget at minimum frequencies",
				ErrBudgetInfeasible, c.TotalPowerW(), c.BudgetW)
		}
	}
}

// SetLoad updates a group's per-server load (demand spikes between
// Enforce calls).
func (g *Group) SetLoad(utilSum float64, activeCores int) {
	g.UtilSum = utilSum
	g.ActiveCores = activeCores
}
