package freq

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBandsClassify(t *testing.T) {
	b := XeonW3175XBands
	cases := []struct {
		f    GHz
		want Band
	}{
		{1.5, Guaranteed},
		{3.1, Guaranteed},
		{3.2, Turbo},
		{3.4, Turbo},
		{3.5, Overclocked},
		{4.1, Overclocked},
		{4.3, Overclocked},
		{4.4, NonOperating},
	}
	for _, c := range cases {
		if got := b.Classify(c.f); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestBandsValidate(t *testing.T) {
	if err := XeonW3175XBands.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Bands{Min: 1, Base: 3, MaxTurbo: 2, MaxSafeOC: 4, MaxOC: 5}
	if bad.Validate() == nil {
		t.Fatal("out-of-order bands validated")
	}
}

func TestSafeHeadroomAbout20Percent(t *testing.T) {
	// 4.1/3.4 − 1 ≈ 20.6%, within the paper's +23% envelope.
	got := XeonW3175XBands.SafeHeadroom()
	if math.Abs(got-0.206) > 0.005 {
		t.Fatalf("safe headroom %v, want ~0.206", got)
	}
}

func TestTableVIIConfigs(t *testing.T) {
	cfgs := TableVII()
	if len(cfgs) != 7 {
		t.Fatalf("Table VII has %d configs, want 7", len(cfgs))
	}
	// Spot check against the paper's table.
	if B1.CoreGHz != 3.1 || B1.TurboEnabled || B1.UncoreGHz != 2.4 || B1.MemoryGHz != 2.4 {
		t.Fatalf("B1 = %+v", B1)
	}
	if !B2.TurboEnabled || B2.CoreGHz != 3.4 {
		t.Fatalf("B2 = %+v", B2)
	}
	if B3.UncoreGHz != 2.8 || B3.MemoryGHz != 2.4 {
		t.Fatalf("B3 = %+v", B3)
	}
	if B4.UncoreGHz != 2.8 || B4.MemoryGHz != 3.0 {
		t.Fatalf("B4 = %+v", B4)
	}
	for _, oc := range []Config{OC1, OC2, OC3} {
		if oc.CoreGHz != 4.1 || oc.VoltageOffsetMV != 50 || !oc.Overclocked {
			t.Fatalf("%s = %+v", oc.Name, oc)
		}
	}
	if OC2.UncoreGHz != 2.8 || OC3.MemoryGHz != 3.0 {
		t.Fatal("OC2/OC3 secondary domains wrong")
	}
}

func TestConfigByName(t *testing.T) {
	c, err := ConfigByName("OC3")
	if err != nil || c.Name != "OC3" {
		t.Fatalf("ConfigByName: %v %v", c, err)
	}
	if _, err := ConfigByName("nope"); err == nil {
		t.Fatal("unknown config did not error")
	}
}

func TestConfigFreqDomains(t *testing.T) {
	if OC3.Freq(Core) != 4.1 || OC3.Freq(Uncore) != 2.8 || OC3.Freq(Memory) != 3.0 {
		t.Fatal("Freq accessor wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GPU domain on CPU config did not panic")
		}
	}()
	OC3.Freq(GPUCore)
}

func TestTableVIIIConfigs(t *testing.T) {
	cfgs := TableVIII()
	if len(cfgs) != 4 {
		t.Fatalf("Table VIII has %d configs, want 4", len(cfgs))
	}
	if GPUBase.PowerLimitW != 250 || GPUBase.BaseGHz != 1.35 || GPUBase.TurboGHz != 1.95 || GPUBase.MemoryGHz != 6.8 {
		t.Fatalf("GPU base = %+v", GPUBase)
	}
	if OCG2.PowerLimitW != 300 || OCG2.MemoryGHz != 8.1 || OCG2.VoltageOffsetMV != 100 {
		t.Fatalf("OCG2 = %+v", OCG2)
	}
	if OCG3.MemoryGHz != 8.3 {
		t.Fatalf("OCG3 = %+v", OCG3)
	}
}

func TestGPUSustainedClocks(t *testing.T) {
	// Raising the power limit lets the board hold max turbo; the
	// stock board settles below it.
	if GPUBase.SustainedGHz() >= GPUBase.TurboGHz {
		t.Fatal("stock board sustains full turbo at 250 W")
	}
	if OCG1.SustainedGHz() <= GPUBase.SustainedGHz() {
		t.Fatal("OCG1 not faster than stock")
	}
	if OCG2.SustainedGHz() != OCG2.TurboGHz {
		t.Fatal("300 W board does not hold turbo")
	}
}

func TestGPUConfigByName(t *testing.T) {
	c, err := GPUConfigByName("OCG1")
	if err != nil || c.Name != "OCG1" {
		t.Fatalf("GPUConfigByName: %v %v", c, err)
	}
	if _, err := GPUConfigByName("x"); err == nil {
		t.Fatal("unknown GPU config did not error")
	}
}

func TestTransitionLatencyTensOfMicroseconds(t *testing.T) {
	if TransitionLatencySeconds < 10e-6 || TransitionLatencySeconds > 100e-6 {
		t.Fatalf("transition latency %v, want tens of µs", TransitionLatencySeconds)
	}
}

func TestLadderConstruction(t *testing.T) {
	l, err := NewLadder(3.4, 4.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	steps := l.Steps()
	if len(steps) != 9 {
		t.Fatalf("8 bins → %d rungs, want 9", len(steps))
	}
	if l.Min() != 3.4 || l.Max() != 4.1 {
		t.Fatalf("bounds %v–%v", l.Min(), l.Max())
	}
	if _, err := NewLadder(4.1, 3.4, 8); err == nil {
		t.Fatal("inverted ladder accepted")
	}
	if _, err := NewLadder(3.4, 4.1, 0); err == nil {
		t.Fatal("zero-bin ladder accepted")
	}
}

func TestLadderUpDown(t *testing.T) {
	l, _ := NewLadder(3.4, 4.1, 8)
	if got := l.Up(3.4); math.Abs(float64(got-3.4875)) > 1e-9 {
		t.Fatalf("Up(3.4) = %v", got)
	}
	if got := l.Up(4.1); got != 4.1 {
		t.Fatalf("Up(max) = %v, want clamp at max", got)
	}
	if got := l.Down(4.1); math.Abs(float64(got-4.0125)) > 1e-9 {
		t.Fatalf("Down(4.1) = %v", got)
	}
	if got := l.Down(3.4); got != 3.4 {
		t.Fatalf("Down(min) = %v, want clamp at min", got)
	}
}

func TestLadderUpDownInverse(t *testing.T) {
	l, _ := NewLadder(3.4, 4.1, 8)
	f := func(raw uint8) bool {
		idx := int(raw) % 7 // interior rungs
		s := l.Steps()[idx+1]
		return l.Up(l.Down(s)) == s && l.Down(l.Up(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLadderClamp(t *testing.T) {
	l, _ := NewLadder(3.4, 4.1, 8)
	if got := l.Clamp(3.5); float64(got) < 3.5 {
		t.Fatalf("Clamp(3.5) = %v below request", got)
	}
	if got := l.Clamp(9); got != 4.1 {
		t.Fatalf("Clamp(9) = %v, want max", got)
	}
}

func TestLadderFraction(t *testing.T) {
	l, _ := NewLadder(3.4, 4.1, 8)
	if got := l.Fraction(3.4); got != 0 {
		t.Fatalf("Fraction(min) = %v", got)
	}
	if got := l.Fraction(4.1); got != 1 {
		t.Fatalf("Fraction(max) = %v", got)
	}
	if got := l.Fraction(3.75); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Fraction(mid) = %v", got)
	}
	if got := l.Fraction(99); got != 1 {
		t.Fatalf("Fraction clamping failed: %v", got)
	}
}

func TestLadderIndex(t *testing.T) {
	l, _ := NewLadder(3.4, 4.1, 8)
	if got := l.Index(3.41); got != 0 {
		t.Fatalf("Index near min = %d", got)
	}
	if got := l.Index(4.09); got != 8 {
		t.Fatalf("Index near max = %d", got)
	}
}

func TestDomainAndBandStrings(t *testing.T) {
	if Core.String() != "core" || Uncore.String() != "uncore" || Memory.String() != "memory" {
		t.Fatal("domain strings wrong")
	}
	if Guaranteed.String() != "guaranteed" || Overclocked.String() != "overclocked" {
		t.Fatal("band strings wrong")
	}
}
