// Package freq models processor and GPU frequency domains: the
// operating bands from Figure 4 (guaranteed, turbo, overclocking,
// non-operating), the experimental CPU configurations of Table VII
// (B1–B4, OC1–OC3), the GPU configurations of Table VIII, and the cost
// of switching frequencies (tens of microseconds, which is what makes
// scale-up so much cheaper than scale-out).
package freq

import (
	"fmt"
	"math"
)

// GHz is a frequency in gigahertz.
type GHz float64

// Domain identifies an independently clocked component.
type Domain int

const (
	// Core is the CPU core clock domain.
	Core Domain = iota
	// Uncore is the uncore / last-level-cache clock domain.
	Uncore
	// Memory is the system memory (DRAM) clock domain.
	Memory
	// GPUCore is the GPU SM clock domain.
	GPUCore
	// GPUMemory is the GPU memory clock domain.
	GPUMemory
)

var domainNames = map[Domain]string{
	Core:      "core",
	Uncore:    "uncore",
	Memory:    "memory",
	GPUCore:   "gpu-core",
	GPUMemory: "gpu-memory",
}

func (d Domain) String() string {
	if s, ok := domainNames[d]; ok {
		return s
	}
	return fmt.Sprintf("domain(%d)", int(d))
}

// Band identifies an operating region from Figure 4.
type Band int

const (
	// Guaranteed is the always-available region between the minimum
	// and base frequency.
	Guaranteed Band = iota
	// Turbo is the opportunistic region between base and max turbo,
	// available when thermal and power budgets permit.
	Turbo
	// Overclocked is the region beyond max turbo, beyond the
	// manufacturer's design limits. With 2PIC this region is
	// sustainable indefinitely (green band); part of it trades off
	// component lifetime (red band).
	Overclocked
	// NonOperating is beyond the maximum stable frequency.
	NonOperating
)

func (b Band) String() string {
	switch b {
	case Guaranteed:
		return "guaranteed"
	case Turbo:
		return "turbo"
	case Overclocked:
		return "overclocked"
	default:
		return "non-operating"
	}
}

// Bands describes the operating regions of one clock domain (Figure 4).
type Bands struct {
	Min GHz // minimum operating frequency
	// Base is the nominal (guaranteed) frequency.
	Base GHz
	// MaxTurbo is the highest opportunistic frequency under the
	// manufacturer's thermal/power limits (all-core).
	MaxTurbo GHz
	// MaxSafeOC is the highest overclock with no lifetime impact
	// under 2PIC cooling (top of the green band; the paper measured
	// +23% over all-core turbo for the Xeon in HFE-7000).
	MaxSafeOC GHz
	// MaxOC is the highest frequency before computational
	// instability (top of the red band).
	MaxOC GHz
}

// Classify returns the band containing frequency f.
func (b Bands) Classify(f GHz) Band {
	switch {
	case f <= b.MaxTurbo:
		if f <= b.Base {
			return Guaranteed
		}
		return Turbo
	case f <= b.MaxOC:
		return Overclocked
	default:
		return NonOperating
	}
}

// SafeHeadroom returns the fraction of additional frequency available
// above all-core turbo with no lifetime impact (e.g. 0.23 for +23%).
func (b Bands) SafeHeadroom() float64 {
	if b.MaxTurbo <= 0 {
		return 0
	}
	return float64(b.MaxSafeOC/b.MaxTurbo) - 1
}

// Validate checks band ordering.
func (b Bands) Validate() error {
	if !(b.Min <= b.Base && b.Base <= b.MaxTurbo && b.MaxTurbo <= b.MaxSafeOC && b.MaxSafeOC <= b.MaxOC) {
		return fmt.Errorf("freq: bands out of order: %+v", b)
	}
	if b.Min <= 0 {
		return fmt.Errorf("freq: non-positive minimum frequency: %+v", b)
	}
	return nil
}

// XeonW3175XBands are the core-domain bands for the overclockable Xeon
// W-3175X in small tank #1: base 3.1 GHz, all-core turbo 3.4 GHz, safe
// overclock 4.1 GHz (+20.6%, within the +23% envelope the voltage curve
// supports), instability observed well past that.
var XeonW3175XBands = Bands{
	Min:       1.2,
	Base:      3.1,
	MaxTurbo:  3.4,
	MaxSafeOC: 4.1,
	MaxOC:     4.3,
}

// Config is one experimental frequency configuration for the CPU system
// (Table VII): a core frequency, uncore/LLC frequency, memory frequency
// and core voltage offset.
type Config struct {
	Name string
	// CoreGHz is the sustained core clock (all-core).
	CoreGHz GHz
	// VoltageOffsetMV is the added core voltage in millivolts.
	VoltageOffsetMV float64
	// TurboEnabled reports whether opportunistic turbo is on. For
	// overclocked configs turbo is superseded (N/A in the paper).
	TurboEnabled bool
	// UncoreGHz is the uncore/LLC clock.
	UncoreGHz GHz
	// MemoryGHz is the memory clock.
	MemoryGHz GHz
	// Overclocked reports whether any domain is beyond its
	// manufacturer limit.
	Overclocked bool
}

// Freq returns the configured frequency of a CPU-side domain.
func (c Config) Freq(d Domain) GHz {
	switch d {
	case Core:
		return c.CoreGHz
	case Uncore:
		return c.UncoreGHz
	case Memory:
		return c.MemoryGHz
	default:
		panic(fmt.Sprintf("freq: config has no domain %v", d))
	}
}

// Table VII configurations for small tank #1 (Xeon W-3175X).
var (
	B1  = Config{Name: "B1", CoreGHz: 3.1, TurboEnabled: false, UncoreGHz: 2.4, MemoryGHz: 2.4}
	B2  = Config{Name: "B2", CoreGHz: 3.4, TurboEnabled: true, UncoreGHz: 2.4, MemoryGHz: 2.4}
	B3  = Config{Name: "B3", CoreGHz: 3.4, TurboEnabled: true, UncoreGHz: 2.8, MemoryGHz: 2.4}
	B4  = Config{Name: "B4", CoreGHz: 3.4, TurboEnabled: true, UncoreGHz: 2.8, MemoryGHz: 3.0}
	OC1 = Config{Name: "OC1", CoreGHz: 4.1, VoltageOffsetMV: 50, UncoreGHz: 2.4, MemoryGHz: 2.4, Overclocked: true}
	OC2 = Config{Name: "OC2", CoreGHz: 4.1, VoltageOffsetMV: 50, UncoreGHz: 2.8, MemoryGHz: 2.4, Overclocked: true}
	OC3 = Config{Name: "OC3", CoreGHz: 4.1, VoltageOffsetMV: 50, UncoreGHz: 2.8, MemoryGHz: 3.0, Overclocked: true}
)

// TableVII returns the seven CPU configurations in paper order.
func TableVII() []Config {
	return []Config{B1, B2, B3, B4, OC1, OC2, OC3}
}

// ConfigByName looks up a Table VII configuration.
func ConfigByName(name string) (Config, error) {
	for _, c := range TableVII() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("freq: unknown config %q", name)
}

// GPUConfig is one experimental GPU configuration (Table VIII) for the
// RTX 2080ti in small tank #2.
type GPUConfig struct {
	Name string
	// PowerLimitW is the board power limit.
	PowerLimitW float64
	// BaseGHz and TurboGHz are the SM clock range.
	BaseGHz, TurboGHz GHz
	// MemoryGHz is the GDDR6 effective clock.
	MemoryGHz GHz
	// VoltageOffsetMV is the added core voltage.
	VoltageOffsetMV float64
	// Overclocked reports whether any knob is beyond stock.
	Overclocked bool
}

// SustainedGHz estimates the SM clock the board sustains during a long
// training run: turbo if the power limit allows, otherwise the
// power-capped clock. The 250 W stock limit keeps the stock board below
// its turbo bin; raising the limit to 300 W (OCG2/OCG3) lets the board
// hold max turbo.
func (g GPUConfig) SustainedGHz() GHz {
	// Empirical sustained clocks for the 2080ti model used in the
	// paper's tank #2 runs: the stock board at 250 W settles ~8%
	// below max turbo; the overclocked 250 W config gives back about
	// half of that; at 300 W the board holds its turbo clock.
	switch {
	case g.PowerLimitW >= 300:
		return g.TurboGHz
	case g.Overclocked:
		return g.TurboGHz * 0.959
	default:
		return g.TurboGHz * 0.923
	}
}

// Table VIII configurations.
var (
	GPUBase = GPUConfig{Name: "Base", PowerLimitW: 250, BaseGHz: 1.35, TurboGHz: 1.950, MemoryGHz: 6.8}
	OCG1    = GPUConfig{Name: "OCG1", PowerLimitW: 250, BaseGHz: 1.55, TurboGHz: 2.085, MemoryGHz: 6.8, Overclocked: true}
	OCG2    = GPUConfig{Name: "OCG2", PowerLimitW: 300, BaseGHz: 1.55, TurboGHz: 2.085, MemoryGHz: 8.1, VoltageOffsetMV: 100, Overclocked: true}
	OCG3    = GPUConfig{Name: "OCG3", PowerLimitW: 300, BaseGHz: 1.55, TurboGHz: 2.085, MemoryGHz: 8.3, VoltageOffsetMV: 100, Overclocked: true}
)

// TableVIII returns the four GPU configurations in paper order.
func TableVIII() []GPUConfig {
	return []GPUConfig{GPUBase, OCG1, OCG2, OCG3}
}

// GPUConfigByName looks up a Table VIII configuration.
func GPUConfigByName(name string) (GPUConfig, error) {
	for _, c := range TableVIII() {
		if c.Name == name {
			return c, nil
		}
	}
	return GPUConfig{}, fmt.Errorf("freq: unknown GPU config %q", name)
}

// TransitionLatencySeconds is the time to change a core frequency
// (tens of microseconds per Mazouz et al., cited by the paper). This is
// the number that makes scale-up ~10^6 times faster than scale-out.
const TransitionLatencySeconds = 50e-6

// Ladder is a discrete set of frequency steps between a low and high
// bound, as used by the auto-scaler ("3.4 GHz (B2) to 4.1 GHz (OC1),
// divided into 8 frequency bins").
type Ladder struct {
	steps []GHz
}

// NewLadder builds a ladder of n bins from lo to hi inclusive. n is the
// number of bins (intervals); the ladder has n+1 rungs.
func NewLadder(lo, hi GHz, n int) (*Ladder, error) {
	if n < 1 {
		return nil, fmt.Errorf("freq: ladder needs at least 1 bin, got %d", n)
	}
	if hi <= lo {
		return nil, fmt.Errorf("freq: ladder bounds inverted: lo=%v hi=%v", lo, hi)
	}
	steps := make([]GHz, n+1)
	for i := 0; i <= n; i++ {
		steps[i] = lo + (hi-lo)*GHz(i)/GHz(n)
	}
	return &Ladder{steps: steps}, nil
}

// Steps returns the rung frequencies in ascending order.
func (l *Ladder) Steps() []GHz {
	out := make([]GHz, len(l.steps))
	copy(out, l.steps)
	return out
}

// StepsFloat returns the rungs as float64 values in ascending order.
func (l *Ladder) StepsFloat() []float64 {
	out := make([]float64, len(l.steps))
	for i, s := range l.steps {
		out[i] = float64(s)
	}
	return out
}

// Min returns the lowest rung.
func (l *Ladder) Min() GHz { return l.steps[0] }

// Max returns the highest rung.
func (l *Ladder) Max() GHz { return l.steps[len(l.steps)-1] }

// Clamp returns the nearest rung at or above f (or the top rung).
func (l *Ladder) Clamp(f GHz) GHz {
	for _, s := range l.steps {
		if s >= f-1e-12 {
			return s
		}
	}
	return l.Max()
}

// Up returns the rung one step above f (or the top rung).
func (l *Ladder) Up(f GHz) GHz {
	for _, s := range l.steps {
		if s > f+1e-9 {
			return s
		}
	}
	return l.Max()
}

// Down returns the rung one step below f (or the bottom rung).
func (l *Ladder) Down(f GHz) GHz {
	for i := len(l.steps) - 1; i >= 0; i-- {
		if l.steps[i] < f-1e-9 {
			return l.steps[i]
		}
	}
	return l.Min()
}

// Index returns the index of the rung nearest to f.
func (l *Ladder) Index(f GHz) int {
	best, bestD := 0, math.Inf(1)
	for i, s := range l.steps {
		d := math.Abs(float64(s - f))
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Fraction returns f's position within the ladder range as a value in
// [0, 1] (the secondary axis of Figure 15).
func (l *Ladder) Fraction(f GHz) float64 {
	span := l.Max() - l.Min()
	if span <= 0 {
		return 0
	}
	v := float64((f - l.Min()) / span)
	return math.Max(0, math.Min(1, v))
}
