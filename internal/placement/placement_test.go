package placement

import (
	"sort"
	"testing"
	"testing/quick"
)

// fakeActuator records toggles and models row power as base + 100 W
// per overclocked server.
type fakeActuator struct {
	oc      []bool
	baseW   float64
	perOCW  float64
	toggles []int
}

func newFakeActuator(n int, baseW float64) *fakeActuator {
	return &fakeActuator{oc: make([]bool, n), baseW: baseW, perOCW: 100}
}

func (a *fakeActuator) SetOverclock(i int, oc bool) {
	a.oc[i] = oc
	a.toggles = append(a.toggles, i)
}

func (a *fakeActuator) RowPowerW() float64 {
	w := a.baseW
	for _, oc := range a.oc {
		if oc {
			w += a.perOCW
		}
	}
	return w
}

func gov(thresh float64, tankBudget []int, feederW float64) *Governor {
	return &Governor{Thresh: thresh, TankBudget: tankBudget, FeederBudgetW: feederW}
}

func TestOfferAppliesThreshold(t *testing.T) {
	g := gov(0.5, []int{4}, 0)
	g.Begin(1)
	if g.Offer(Candidate{Index: 0, ID: 0, DemandCores: 20, PCores: 48}) {
		t.Fatal("below-threshold server offered a grant candidacy")
	}
	if !g.Offer(Candidate{Index: 1, ID: 1, DemandCores: 30, PCores: 48}) {
		t.Fatal("above-threshold server not registered")
	}
	// The boundary is strict: demand exactly at thresh×pcores stays
	// nominal (matches the original `d > thrDemand` comparison).
	if g.Offer(Candidate{Index: 2, ID: 2, DemandCores: 24, PCores: 48}) {
		t.Fatal("demand exactly at threshold must not request an overclock")
	}
}

func TestDecideGrantsMostPressuredWithinTankBudget(t *testing.T) {
	g := gov(0.5, []int{2}, 0)
	g.Begin(1)
	act := newFakeActuator(4, 0)
	// Pressure order: 2 (0.9), 0 (0.8), 3 (0.7), 1 (0.6); budget 2.
	demands := []float64{0.8 * 48, 0.6 * 48, 0.9 * 48, 0.7 * 48}
	for i, d := range demands {
		g.Offer(Candidate{Index: i, ID: i, Tank: 0, DemandCores: d, PCores: 48})
	}
	out := g.Decide(act)
	if out.Granted != 2 || out.Cancelled != 0 || out.Capped {
		t.Fatalf("outcome = %+v, want 2 grants uncapped", out)
	}
	if !act.oc[2] || !act.oc[0] || act.oc[1] || act.oc[3] {
		t.Fatalf("granted the wrong servers: %v", act.oc)
	}
}

func TestDecideHonoursPerTankBudgets(t *testing.T) {
	g := gov(0.5, []int{1, 2}, 0)
	g.Begin(2)
	act := newFakeActuator(4, 0)
	cands := []Candidate{
		{Index: 0, ID: 0, Tank: 0, DemandCores: 0.95 * 48, PCores: 48},
		{Index: 1, ID: 1, Tank: 0, DemandCores: 0.90 * 48, PCores: 48},
		{Index: 2, ID: 2, Tank: 1, DemandCores: 0.70 * 48, PCores: 48},
		{Index: 3, ID: 3, Tank: 1, DemandCores: 0.65 * 48, PCores: 48},
	}
	for _, c := range cands {
		g.Offer(c)
	}
	out := g.Decide(act)
	if out.Granted != 3 {
		t.Fatalf("granted %d, want 3 (tank0 capped at 1)", out.Granted)
	}
	if !act.oc[0] || act.oc[1] || !act.oc[2] || !act.oc[3] {
		t.Fatalf("grants = %v, want tank0's most-pressured + both of tank1", act.oc)
	}
}

func TestDecideFeederCancelsLeastPressured(t *testing.T) {
	// Base 350 W + 100 W per OC; feeder 600 W fits 2 overclocks.
	g := gov(0.5, []int{4}, 600)
	g.Begin(1)
	act := newFakeActuator(4, 350)
	for i, d := range []float64{0.9, 0.8, 0.7, 0.6} {
		g.Offer(Candidate{Index: i, ID: i, Tank: 0, DemandCores: d * 48, PCores: 48})
	}
	out := g.Decide(act)
	if !out.Capped || out.Cancelled != 2 || out.Granted != 2 {
		t.Fatalf("outcome = %+v, want capped with 2 of 4 grants cancelled", out)
	}
	// The least-pressured grants (indices 3, 2) go first.
	if !act.oc[0] || !act.oc[1] || act.oc[2] || act.oc[3] {
		t.Fatalf("cancelled the wrong grants: %v", act.oc)
	}
}

func TestDecideCapEventWithoutCancellableGrants(t *testing.T) {
	// The row is over budget from nominal power alone: a cap event is
	// recorded even though revoking every grant cannot fix it.
	g := gov(0.5, []int{1}, 100)
	g.Begin(1)
	act := newFakeActuator(1, 350)
	g.Offer(Candidate{Index: 0, ID: 0, Tank: 0, DemandCores: 40, PCores: 48})
	out := g.Decide(act)
	if !out.Capped || out.Granted != 0 || out.Cancelled != 1 {
		t.Fatalf("outcome = %+v, want capped with the lone grant revoked", out)
	}
}

func TestDecideTieBreaksByID(t *testing.T) {
	g := gov(0.5, []int{1}, 0)
	g.Begin(1)
	act := newFakeActuator(2, 0)
	// Identical pressure: the lower ID wins the single slot.
	g.Offer(Candidate{Index: 0, ID: 7, Tank: 0, DemandCores: 30, PCores: 48})
	g.Offer(Candidate{Index: 1, ID: 3, Tank: 0, DemandCores: 30, PCores: 48})
	out := g.Decide(act)
	if out.Granted != 1 || act.oc[0] || !act.oc[1] {
		t.Fatalf("tie not broken by server ID: %+v %v", out, act.oc)
	}
}

func TestBeginResetsScratch(t *testing.T) {
	g := gov(0.5, []int{1}, 0)
	for step := 0; step < 3; step++ {
		g.Begin(1)
		act := newFakeActuator(2, 0)
		g.Offer(Candidate{Index: 0, ID: 0, Tank: 0, DemandCores: 30, PCores: 48})
		out := g.Decide(act)
		if out.Granted != 1 {
			t.Fatalf("step %d granted %d, want 1 (scratch leaked across steps)", step, out.Granted)
		}
	}
}

func TestEvaluateReasonOrder(t *testing.T) {
	g := gov(0.5, []int{2}, 1000)
	g.RiskBudget = 1.0
	base := GrantQuery{
		Overclockable:   true,
		DemandCores:     30,
		PCores:          48,
		TankOverclocked: 0,
		TankBudget:      2,
		WearUsed:        0.1,
		WearProRata:     0.2,
		RowPowerW:       800,
		OverclockDeltaW: 100,
	}
	cases := []struct {
		name   string
		mutate func(*GrantQuery)
		want   Reason
		allow  bool
	}{
		{"granted", func(q *GrantQuery) {}, ReasonGranted, true},
		{"not-overclockable", func(q *GrantQuery) { q.Overclockable = false }, ReasonNotOverclockable, false},
		{"eq1", func(q *GrantQuery) { q.DemandCores = 20 }, ReasonEq1Threshold, false},
		{"tank", func(q *GrantQuery) { q.TankOverclocked = 2 }, ReasonTankBudget, false},
		{"risk", func(q *GrantQuery) { q.WearUsed = 0.5 }, ReasonRiskBudget, false},
		{"feeder", func(q *GrantQuery) { q.OverclockDeltaW = 300 }, ReasonFeederCap, false},
	}
	for _, tc := range cases {
		q := base
		tc.mutate(&q)
		d := g.Evaluate(q)
		if d.Reason != tc.want || d.Allow != tc.allow {
			t.Errorf("%s: Evaluate = %+v, want allow=%v reason=%s", tc.name, d, tc.allow, tc.want)
		}
	}
}

func TestEvaluateRiskBudgetDisabledByDefault(t *testing.T) {
	g := gov(0.5, []int{2}, 0)
	d := g.Evaluate(GrantQuery{
		Overclockable: true, DemandCores: 30, PCores: 48,
		TankBudget: 2, WearUsed: 5, WearProRata: 0.01,
	})
	if !d.Allow {
		t.Fatalf("zero RiskBudget must not gate on wear: %+v", d)
	}
}

// TestDecideMatchesNaiveReference drives random candidate sets through
// the governor and checks grants against a straightforward
// sort-grant-cap reimplementation.
func TestDecideMatchesNaiveReference(t *testing.T) {
	f := func(seeds []uint16) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 24 {
			seeds = seeds[:24]
		}
		nTanks := 3
		budgets := []int{1, 2, 3}
		const baseW, perOC, feeder = 300.0, 100.0, 650.0

		g := gov(0.5, budgets, feeder)
		g.Begin(nTanks)
		act := newFakeActuator(len(seeds), baseW)
		type cand struct {
			c    Candidate
			need float64
		}
		var offered []cand
		for i, s := range seeds {
			c := Candidate{
				Index:       i,
				ID:          i,
				Tank:        i % nTanks,
				DemandCores: float64(s%97) / 96 * 48,
				PCores:      48,
			}
			if g.Offer(c) {
				offered = append(offered, cand{c, c.DemandCores / c.PCores})
			}
		}
		out := g.Decide(act)

		// Naive reference: sort, admit per tank, cap from the tail.
		sort.Slice(offered, func(i, j int) bool {
			if offered[i].need != offered[j].need {
				return offered[i].need > offered[j].need
			}
			return offered[i].c.ID < offered[j].c.ID
		})
		oc := make([]bool, len(seeds))
		perTank := make([]int, nTanks)
		granted := 0
		for _, o := range offered {
			if perTank[o.c.Tank] < budgets[o.c.Tank] {
				oc[o.c.Index] = true
				perTank[o.c.Tank]++
				granted++
			}
		}
		rowW := func() float64 {
			w := baseW
			for _, b := range oc {
				if b {
					w += perOC
				}
			}
			return w
		}
		cancelled := 0
		if rowW() > feeder {
			for i := len(offered) - 1; i >= 0 && rowW() > feeder; i-- {
				if oc[offered[i].c.Index] {
					oc[offered[i].c.Index] = false
					granted--
					cancelled++
				}
			}
		}

		if out.Granted != granted || out.Cancelled != cancelled {
			t.Logf("outcome %+v vs naive granted=%d cancelled=%d", out, granted, cancelled)
			return false
		}
		for i := range oc {
			if act.oc[i] != oc[i] {
				t.Logf("server %d: governor %v, naive %v", i, act.oc[i], oc[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
