// Package placement is the single home of the overclock-grant policy:
// which servers may run hot, in what order contended servers are
// granted their overclock, and which grants are revoked when the
// tank's condenser or the row's feeder runs out of budget.
//
// The policy used to live inline in the dcsim control loop. Extracting
// it behind the Decider interface lets two very different callers share
// one implementation with zero forked logic: the batch fleet simulator
// (internal/dcsim) drives it once per control step over the whole
// fleet, and the ocd control-plane daemon drives the same code both per
// step and per API request — a grant decision served over HTTP is
// computed by exactly the machinery that decides grants in the paper's
// offline evaluation, so the daemon's answers and the batch KPIs cannot
// drift apart.
//
// The per-step protocol is Begin → Offer(candidate)* → Decide:
//
//   - Begin resets the step's scratch (no allocation after the first
//     step — the fleet control loop stays O(changed state));
//   - Offer applies the paper's Equation 1 demand threshold and
//     registers servers that want an overclock;
//   - Decide sorts candidates most-pressured first, grants within each
//     tank's condenser budget, then revokes the least-pressured grants
//     until the row fits its feeder budget, actuating through the
//     caller's Actuator so the caller's power accounting stays
//     incremental.
//
// Evaluate answers a single "may this server overclock right now?"
// query with a machine-readable reason (the control-plane API's
// grant/deny contract): Equation 1 threshold, tank condenser budget,
// wear-risk budget, or feeder cap.
package placement

import "sort"

// Candidate is one server's per-step overclock request: the stable
// index the Actuator understands, the server ID used for deterministic
// tie-breaking, its tank, and the demand/capacity pair the threshold
// and ordering are computed from.
type Candidate struct {
	// Index is the caller's dense server index, echoed back through
	// Actuator.SetOverclock.
	Index int
	// ID is the server's fleet ID (orders ties deterministically).
	ID int
	// Tank is the server's immersion tank index.
	Tank int
	// DemandCores is the server's expected concurrent core demand
	// (Σ vcores·AvgUtil of its placed VMs).
	DemandCores float64
	// PCores is the server's physical core count.
	PCores float64
}

// need is the candidate's pressure: expected demand per physical core.
// Most-pressured servers are granted their overclock first.
func (c Candidate) need() float64 { return c.DemandCores / c.PCores }

// Actuator is how a Decider effects grants on the caller's state. The
// caller keeps ownership of power accounting: SetOverclock must fold
// the clock change into whatever incremental sums it maintains, and
// RowPowerW must reflect every toggle made so far, so the feeder
// capping loop reads the running sum instead of recomputing the fleet.
type Actuator interface {
	// SetOverclock switches the server at the candidate index to the
	// overclocked (true) or nominal (false) configuration.
	SetOverclock(index int, oc bool)
	// RowPowerW returns the row's current total power draw.
	RowPowerW() float64
}

// Outcome summarizes one step's decisions.
type Outcome struct {
	// Granted is the number of servers left overclocked after capping.
	Granted int
	// Cancelled counts grants revoked by the feeder budget this step.
	Cancelled int
	// Capped reports whether the feeder budget forced any revocation
	// pass (a "cap event" even if zero grants were revocable).
	Capped bool
}

// Reason is the machine-readable explanation attached to a grant
// decision. The string values are the wire contract of the control
// plane's overclock API.
type Reason string

const (
	// ReasonGranted: the server may overclock.
	ReasonGranted Reason = "granted"
	// ReasonEq1Threshold: expected demand is below the Equation 1
	// contention threshold — oversubscription needs no absorbing, so
	// the grant would spend wear for nothing.
	ReasonEq1Threshold Reason = "eq1_threshold"
	// ReasonTankBudget: the tank's condenser cannot reject the heat of
	// another overclocked server.
	ReasonTankBudget Reason = "tank_budget"
	// ReasonRiskBudget: the server has consumed wear faster than its
	// pro-rata service-life schedule allows.
	ReasonRiskBudget Reason = "risk_budget"
	// ReasonFeederCap: the row feeder has no power headroom for the
	// overclocked configuration.
	ReasonFeederCap Reason = "feeder_cap"
	// ReasonNotOverclockable: the server hardware cannot enter the
	// overclocking bands (air-cooled fleet).
	ReasonNotOverclockable Reason = "not_overclockable"
)

// Decision is the answer to a single grant query.
type Decision struct {
	// Allow reports whether the overclock may proceed.
	Allow bool
	// Reason explains the decision (ReasonGranted when allowed).
	Reason Reason
}

// GrantQuery carries the state a single-server grant decision needs.
// The caller (the daemon's API layer) snapshots these from the live
// simulation; Evaluate applies the same checks the per-step path
// applies, in the same order, plus the wear-risk budget the batch path
// accrues but never gates on.
type GrantQuery struct {
	// Overclockable reports whether the hardware supports overclocking.
	Overclockable bool
	// DemandCores and PCores feed the Equation 1 threshold check.
	DemandCores, PCores float64
	// TankOverclocked is the number of servers currently overclocked
	// in the target server's tank; TankBudget is that tank's condenser
	// budget.
	TankOverclocked, TankBudget int
	// WearUsed is the fraction of the server's lifetime wear budget
	// consumed; WearProRata is the fraction a server wearing exactly on
	// the service-life schedule would have consumed by now.
	WearUsed, WearProRata float64
	// RowPowerW is the row's current draw and OverclockDeltaW the
	// increase granting would cause.
	RowPowerW, OverclockDeltaW float64
}

// Decider is the placement/overclock policy shared by the batch fleet
// simulator and the control-plane daemon. Implementations must be
// deterministic: identical Offer sequences and Actuator state produce
// identical decisions.
type Decider interface {
	// Begin starts a control step over a fleet with nTanks tanks,
	// resetting per-step scratch.
	Begin(nTanks int)
	// Offer registers one server's state for the step and reports
	// whether the server wants (and may compete for) an overclock.
	Offer(c Candidate) bool
	// Decide grants and caps the step's offered candidates through act.
	// Every offered candidate's server must currently run nominal; the
	// decider toggles grants via act.SetOverclock.
	Decide(act Actuator) Outcome
	// Evaluate answers a single grant query with a typed decision.
	Evaluate(q GrantQuery) Decision
}

// Governor is the paper's policy (§IV–V): servers whose expected
// demand crosses the Equation 1 contention threshold request an
// overclock; most-pressured servers are granted first, each tank
// admits at most its condenser budget, and the row feeder revokes the
// least-pressured grants until the row's power fits. The zero value is
// unusable — fill Thresh, TankBudget and FeederBudgetW.
type Governor struct {
	// Thresh is the Equation 1 threshold: a server requests an
	// overclock when expected demand exceeds Thresh × pcores (bursts
	// run ~2× the long-run mean, so a mean above half the cores means
	// contention during bursts — the regime overclocking absorbs).
	Thresh float64
	// TankBudget is the per-tank condenser overclock budget.
	TankBudget []int
	// FeederBudgetW is the row's power-delivery limit (0 = uncapped).
	FeederBudgetW float64
	// RiskBudget is the wear-rate multiple of the pro-rata schedule
	// above which Evaluate denies grants (0 disables the check; the
	// per-step batch path never applies it, matching the paper's
	// governor, which spends lifetime credit rather than gating on it).
	RiskBudget float64

	reqs      []offered
	granted   []bool
	ocPerTank []int
}

// offered is a registered candidate with its sort key cached.
type offered struct {
	Candidate
	need float64
}

var _ Decider = (*Governor)(nil)

// Begin resets the per-step scratch, growing it only on the first step
// (or a fleet reshape).
func (g *Governor) Begin(nTanks int) {
	g.reqs = g.reqs[:0]
	if cap(g.ocPerTank) < nTanks {
		g.ocPerTank = make([]int, nTanks)
	}
	g.ocPerTank = g.ocPerTank[:nTanks]
	for i := range g.ocPerTank {
		g.ocPerTank[i] = 0
	}
}

// Offer applies the Equation 1 threshold and registers the candidate
// when it crosses it.
func (g *Governor) Offer(c Candidate) bool {
	if c.DemandCores <= g.Thresh*c.PCores {
		return false
	}
	g.reqs = append(g.reqs, offered{Candidate: c, need: c.need()})
	return true
}

// Len, Swap and Less order the offered candidates most-pressured first
// (ties by server ID). Governor implements sort.Interface directly so
// the per-step sort needs no interface conversion or allocation.
func (g *Governor) Len() int      { return len(g.reqs) }
func (g *Governor) Swap(i, j int) { g.reqs[i], g.reqs[j] = g.reqs[j], g.reqs[i] }
func (g *Governor) Less(i, j int) bool {
	if g.reqs[i].need != g.reqs[j].need {
		return g.reqs[i].need > g.reqs[j].need
	}
	return g.reqs[i].ID < g.reqs[j].ID
}

// Decide grants within tank budgets, then caps against the feeder.
func (g *Governor) Decide(act Actuator) Outcome {
	sort.Sort(g)

	if cap(g.granted) < len(g.reqs) {
		g.granted = make([]bool, len(g.reqs))
	}
	g.granted = g.granted[:len(g.reqs)]

	var out Outcome
	for i, r := range g.reqs {
		g.granted[i] = g.ocPerTank[r.Tank] < g.TankBudget[r.Tank]
		if g.granted[i] {
			act.SetOverclock(r.Index, true)
			g.ocPerTank[r.Tank]++
			out.Granted++
		}
	}

	// Feeder budget: cancel the least-pressured overclocks until the
	// row fits (priority capping at the granularity of whole grants).
	// RowPowerW is the caller's running sum, so the loop costs
	// O(cancellations), not a fleet recompute per iteration.
	if g.FeederBudgetW > 0 && act.RowPowerW() > g.FeederBudgetW {
		out.Capped = true
		for i := len(g.reqs) - 1; i >= 0 && act.RowPowerW() > g.FeederBudgetW; i-- {
			if g.granted[i] {
				g.granted[i] = false
				act.SetOverclock(g.reqs[i].Index, false)
				out.Granted--
				out.Cancelled++
			}
		}
	}
	return out
}

// Evaluate applies the policy to one grant query: hardware capability,
// Equation 1 threshold, tank condenser budget, wear-risk budget, then
// feeder headroom — the first failing check names the decision.
func (g *Governor) Evaluate(q GrantQuery) Decision {
	if !q.Overclockable {
		return Decision{Reason: ReasonNotOverclockable}
	}
	if q.DemandCores <= g.Thresh*q.PCores {
		return Decision{Reason: ReasonEq1Threshold}
	}
	if q.TankOverclocked >= q.TankBudget {
		return Decision{Reason: ReasonTankBudget}
	}
	if g.RiskBudget > 0 && q.WearProRata > 0 && q.WearUsed > g.RiskBudget*q.WearProRata {
		return Decision{Reason: ReasonRiskBudget}
	}
	if g.FeederBudgetW > 0 && q.RowPowerW+q.OverclockDeltaW > g.FeederBudgetW {
		return Decision{Reason: ReasonFeederCap}
	}
	return Decision{Allow: true, Reason: ReasonGranted}
}
