package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"immersionoc/internal/telemetry"
)

// TestMapOrdering: results land by cell index regardless of worker
// count or completion order (later cells finish first here).
func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		got, err := Map(context.Background(), 32, Options{Workers: workers, Budget: NewBudget(16)},
			func(ctx context.Context, i int) (int, error) {
				time.Sleep(time.Duration(32-i) * 100 * time.Microsecond)
				return i * i, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapSerialParallelIdentical: a deterministic grid produces the
// same results at every worker count.
func TestMapSerialParallelIdentical(t *testing.T) {
	run := func(workers int) []uint64 {
		out, err := Map(context.Background(), 20, Options{Workers: workers, Budget: NewBudget(8)},
			func(ctx context.Context, i int) (uint64, error) {
				return CellSeed(42, i), nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	serial := run(1)
	for _, w := range []int{2, 8} {
		par := run(w)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d diverges at cell %d", w, i)
			}
		}
	}
}

// TestBudgetNeverExceeded: concurrent cells never exceed the budget
// capacity, including when sweeps nest (the outer cell lends its token
// to its inner grid).
func TestBudgetNeverExceeded(t *testing.T) {
	const cap = 3
	b := NewBudget(cap)
	var running, peak atomic.Int64
	enter := func() {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
	}
	_, err := Map(context.Background(), 6, Options{Workers: 6, Budget: b},
		func(ctx context.Context, i int) (int, error) {
			enter()
			time.Sleep(2 * time.Millisecond)
			running.Add(-1)
			// Nested sweep: this cell's token is lent to its inner cells.
			_, err := Map(ctx, 4, Options{Workers: 4, Budget: b},
				func(ctx context.Context, j int) (int, error) {
					enter()
					time.Sleep(time.Millisecond)
					running.Add(-1)
					return j, nil
				})
			return i, err
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > cap {
		t.Fatalf("peak concurrency %d exceeds budget cap %d", p, cap)
	}
	if u := b.Used(); u != 0 {
		t.Fatalf("budget leaks %d tokens after Map", u)
	}
}

// TestLeaseLending: a caller holding the budget's only token can still
// fan out — Map lends the caller's slot to the cells and takes it back
// afterwards. Without lending this deadlocks.
func TestLeaseLending(t *testing.T) {
	b := NewBudget(1)
	lease, err := b.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(Attach(context.Background(), lease), 10*time.Second)
	defer cancel()
	out, err := Map(ctx, 4, Options{Workers: 4},
		func(ctx context.Context, i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if u := b.Used(); u != 1 {
		t.Fatalf("caller's token not reacquired: used = %d, want 1", u)
	}
	lease.Release()
	if u := b.Used(); u != 0 {
		t.Fatalf("used = %d after release, want 0", u)
	}
}

// TestPanicIsolation: a panicking cell becomes an error with its stack
// instead of killing the process, siblings share one telemetry scope
// (exercised under -race), and the sweep's counters record the panic.
func TestPanicIsolation(t *testing.T) {
	reg := telemetry.NewRegistry()
	scope := reg.Scope("sweep-test")
	_, err := Map(context.Background(), 8, Options{Workers: 4, Budget: NewBudget(4), Tel: scope},
		func(ctx context.Context, i int) (int, error) {
			scope.Counter("cell_work").Inc() // shared scope across cells
			if i == 3 {
				panic("boom")
			}
			return i, nil
		})
	if err == nil || !strings.Contains(err.Error(), "cell 3 panicked: boom") {
		t.Fatalf("err = %v, want cell 3 panic", err)
	}
	if got := scope.Counter("cell_panics").Value(); got != 1 {
		t.Fatalf("cell_panics = %d, want 1", got)
	}
	if got := scope.Counter("cells").Value(); got == 0 {
		t.Fatal("cells counter not published")
	}
}

// TestMapError: the lowest-indexed genuine error wins even though the
// failure cancels lower-indexed cells still in flight.
func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	started := make(chan struct{})
	_, err := Map(context.Background(), 4, Options{Workers: 2, Budget: NewBudget(2)},
		func(ctx context.Context, i int) (int, error) {
			switch i {
			case 0:
				close(started)
				<-ctx.Done() // cancelled by cell 1's failure
				return 0, ctx.Err()
			case 1:
				<-started
				return 0, fmt.Errorf("cell 1: %w", boom)
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the genuine cell error, not context.Canceled", err)
	}
}

// TestMapCancellation: cancelling the sweep's context stops it and
// surfaces the context error.
func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := Map(ctx, 64, Options{Workers: 2, Budget: NewBudget(2)},
		func(ctx context.Context, i int) (int, error) {
			if ran.Add(1) == 2 {
				cancel()
			}
			<-ctx.Done()
			return 0, ctx.Err()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 64 {
		t.Fatalf("all %d cells ran despite cancellation", n)
	}
}

// TestMapSerialStopsOnError: the serial fast path stops at the first
// failing cell like the loops it replaced.
func TestMapSerialStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var ran int
	_, err := Map(context.Background(), 8, Options{},
		func(ctx context.Context, i int) (int, error) {
			ran++
			if i == 2 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran != 3 {
		t.Fatalf("ran %d cells, want 3", ran)
	}
}

// TestBudgetGrow: growing the budget wakes queued waiters, and
// capacity never shrinks.
func TestBudgetGrow(t *testing.T) {
	b := NewBudget(1)
	l1, err := b.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan *Lease)
	go func() {
		l, err := b.Acquire(context.Background())
		if err != nil {
			t.Error(err)
		}
		acquired <- l
	}()
	select {
	case <-acquired:
		t.Fatal("second Acquire succeeded at cap 1")
	case <-time.After(10 * time.Millisecond):
	}
	b.Grow(2)
	var l2 *Lease
	select {
	case l2 = <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("Grow did not wake the waiter")
	}
	b.Grow(1) // never shrinks
	if c := b.Cap(); c != 2 {
		t.Fatalf("cap = %d after Grow(1), want 2", c)
	}
	l1.Release()
	l2.Release()
	if u := b.Used(); u != 0 {
		t.Fatalf("used = %d, want 0", u)
	}
}

// TestAcquireCancelled: an Acquire abandoned by cancellation while the
// token was being granted passes the token on instead of leaking it.
func TestAcquireCancelled(t *testing.T) {
	b := NewBudget(1)
	l, err := b.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.Acquire(ctx)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the goroutine enqueue
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	l.Release()
	// The budget must still have its token available.
	l2, err := b.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	l2.Release()
	if u := b.Used(); u != 0 {
		t.Fatalf("used = %d, want 0", u)
	}
}

// TestLeaseReleaseIdempotent: double-release and nil lease are no-ops.
func TestLeaseReleaseIdempotent(t *testing.T) {
	b := NewBudget(2)
	l, err := b.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	l.Release()
	l.Release()
	if u := b.Used(); u != 0 {
		t.Fatalf("used = %d after double release", u)
	}
	var nilLease *Lease
	nilLease.Release()
	if err := nilLease.Reacquire(context.Background()); err != nil {
		t.Fatalf("nil Reacquire: %v", err)
	}
}

// TestCellSeed: deterministic and decorrelated across neighbors.
func TestCellSeed(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := CellSeed(7, i)
		if s != CellSeed(7, i) {
			t.Fatal("CellSeed not deterministic")
		}
		if seen[s] {
			t.Fatalf("CellSeed collision at i=%d", i)
		}
		seen[s] = true
	}
	if CellSeed(7, 0) == CellSeed(8, 0) {
		t.Fatal("CellSeed ignores base seed")
	}
}

// TestMapManyCellsFewWorkers: more cells than workers drains the whole
// grid without leaking tokens or goroutines.
func TestMapManyCellsFewWorkers(t *testing.T) {
	b := NewBudget(2)
	out, err := Map(context.Background(), 100, Options{Workers: 2, Budget: b},
		func(ctx context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 || out[99] != 99 {
		t.Fatalf("bad results: len=%d", len(out))
	}
	if u := b.Used(); u != 0 {
		t.Fatalf("budget leaks %d tokens", u)
	}
}
