// Package sweep fans grids of independent simulation cells out across
// a process-wide worker budget. It is the intra-experiment counterpart
// of internal/runner: the runner parallelizes across experiments, sweep
// parallelizes the grid loops inside one experiment (configurations ×
// core counts, scenarios × runs, policies, cooling technologies), and
// both draw workers from the same weighted budget so nested
// parallelism — N experiments each sweeping M cells — never runs more
// hot goroutines than the budget's capacity.
//
// The engine's contract:
//
//   - Determinism. Results land in the output slice by cell index,
//     never by completion order, so a sweep's output is byte-for-byte
//     identical at any worker count. Cells must be independent: each
//     derives its randomness from its own seed (see CellSeed), and any
//     state shared between cells — load schedules, traces, calibrated
//     tables — is generated once before the fan-out and read
//     immutably afterwards.
//   - Budget sharing. Workers are tokens in a Budget (the package
//     Shared budget by default, sized GOMAXPROCS and grown to octl's
//     -j). A runner worker holds a token while experiment code runs;
//     when that code blocks inside Map waiting for its cells, Map
//     releases the caller's token back to the budget — the cells
//     borrow the very slot their parent freed — and re-acquires it
//     before returning. Tokens are therefore only ever held by code
//     that is actually running, and total concurrency stays at the
//     budget's capacity no matter how deeply sweeps nest.
//   - Cancellation. A cancelled context stops the sweep promptly:
//     running cells see the cancellation through their cell context
//     (the simulation kernels poll it at their event batches),
//     unstarted cells are marked with the context error without
//     running.
//   - Panic isolation. A panicking cell is converted into an error
//     carrying its stack instead of killing the process; the
//     remaining cells are cancelled and Map returns the
//     lowest-indexed cell error.
//   - Telemetry. Map publishes its own counters (cells, cell_errors,
//     cell_panics) and a per-cell wall-time histogram into
//     Options.Tel; harnesses give each cell its own child scope
//     (telemetry.Scope.Child) so gauge-valued engine metrics stay
//     deterministic instead of racing on last-write.
//
// With Workers ≤ 1 Map degenerates to the plain serial loop it
// replaced — no goroutines, no budget traffic — so a serial sweep
// costs what the original loop cost.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"immersionoc/internal/telemetry"
)

// Budget is a weighted worker semaphore: a fixed number of tokens,
// FIFO-granted to acquirers. The process shares one (Shared) between
// the experiment runner and every sweep, which is what keeps nested
// parallelism bounded. The zero value is unusable; use NewBudget.
type Budget struct {
	mu      sync.Mutex
	cap     int
	used    int
	waiters []chan struct{}
}

// NewBudget returns a budget with n tokens (minimum 1).
func NewBudget(n int) *Budget {
	if n < 1 {
		n = 1
	}
	return &Budget{cap: n}
}

// Shared is the process-wide budget, sized GOMAXPROCS at startup. The
// runner grows it to the requested -j before a run.
var Shared = NewBudget(runtime.GOMAXPROCS(0))

// Cap returns the current token capacity.
func (b *Budget) Cap() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cap
}

// Used returns the tokens currently held.
func (b *Budget) Used() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Grow raises the capacity to at least n and hands the new tokens to
// queued waiters. Capacity never shrinks: concurrent runs may have
// sized it, and tokens already granted cannot be recalled.
func (b *Budget) Grow(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n > b.cap {
		b.cap = n
	}
	for b.used < b.cap && len(b.waiters) > 0 {
		ch := b.waiters[0]
		b.waiters = b.waiters[1:]
		b.used++
		close(ch)
	}
}

// Acquire blocks until a token is free (or ctx is done) and returns
// the held Lease.
func (b *Budget) Acquire(ctx context.Context) (*Lease, error) {
	if err := b.acquire(ctx); err != nil {
		return nil, err
	}
	return &Lease{b: b, held: true}, nil
}

func (b *Budget) acquire(ctx context.Context) error {
	b.mu.Lock()
	if len(b.waiters) == 0 && b.used < b.cap {
		b.used++
		b.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	b.waiters = append(b.waiters, ch)
	b.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		b.mu.Lock()
		granted := true
		for i, w := range b.waiters {
			if w == ch {
				b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
				granted = false
				break
			}
		}
		if granted {
			// The token arrived while we were giving up: pass it on.
			b.releaseLocked()
		}
		b.mu.Unlock()
		return ctx.Err()
	}
}

func (b *Budget) release() {
	b.mu.Lock()
	b.releaseLocked()
	b.mu.Unlock()
}

func (b *Budget) releaseLocked() {
	if len(b.waiters) > 0 {
		ch := b.waiters[0]
		b.waiters = b.waiters[1:]
		close(ch) // token transferred; used is unchanged
		return
	}
	b.used--
	if b.used < 0 {
		panic("sweep: Release without Acquire")
	}
}

// Lease is one held budget token. The runner attaches its worker's
// lease to the experiment context; Map lends it out while the caller
// blocks. Release is idempotent and a nil lease no-ops everywhere.
type Lease struct {
	b    *Budget
	mu   sync.Mutex
	held bool
}

// Release returns the token to the budget. Releasing an unheld or nil
// lease is a no-op, so cleanup paths need no state tracking.
func (l *Lease) Release() {
	if l == nil {
		return
	}
	l.mu.Lock()
	h := l.held
	l.held = false
	l.mu.Unlock()
	if h {
		l.b.release()
	}
}

// Reacquire blocks until the lease holds a token again (no-op when it
// already does, or for a nil lease).
func (l *Lease) Reacquire(ctx context.Context) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	held := l.held
	l.mu.Unlock()
	if held {
		return nil
	}
	if err := l.b.acquire(ctx); err != nil {
		return err
	}
	l.mu.Lock()
	l.held = true
	l.mu.Unlock()
	return nil
}

// budget returns the budget the lease draws from (nil-safe).
func (l *Lease) budget() *Budget {
	if l == nil {
		return nil
	}
	return l.b
}

type leaseKey struct{}

// Attach returns a context carrying the caller's held lease. Map uses
// it to lend the slot out while the caller blocks on the sweep.
func Attach(ctx context.Context, l *Lease) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, leaseKey{}, l)
}

// leaseFrom extracts the lease Attach stored, if any.
func leaseFrom(ctx context.Context) *Lease {
	l, _ := ctx.Value(leaseKey{}).(*Lease)
	return l
}

// CellSeed derives a per-cell RNG seed from a base seed and a cell
// index via a splitmix64 step, so neighboring cells get decorrelated
// streams. Harnesses converted from serial loops keep their original
// ad-hoc formulas (the published outputs depend on them); new sweeps
// should use this.
func CellSeed(base uint64, i int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Options tunes one Map call. The zero value runs the grid serially
// in the caller's goroutine — the calibrated default, matching the
// loops the sweeps replaced.
type Options struct {
	// Workers bounds the cells executing at once. ≤ 1 runs the grid
	// serially with no goroutines; the runner threads octl's -j here
	// through experiments.Options.
	Workers int
	// Budget is the token pool cells draw from. Nil uses the lease
	// attached to ctx (the runner's budget) and falls back to Shared,
	// so sweeps always share slots with the runner by default.
	Budget *Budget
	// Tel, when non-nil, receives the sweep's own metrics: cells,
	// cell_errors and cell_panics counters plus a cell_wall_s
	// histogram.
	Tel *telemetry.Scope
}

// Map runs cell(ctx, i) for every i in [0, n) and collects the
// results by index. With Workers > 1 the cells fan out across budget
// tokens; the caller's own token (if its context carries a lease) is
// lent to the pool while Map blocks. On error Map cancels the
// remaining cells and returns the lowest-indexed cell error alongside
// the results gathered so far; a panicking cell becomes an error
// carrying its stack. Cells must not share mutable state — anything
// shared is generated before the call and read immutably.
func Map[T any](ctx context.Context, n int, o Options, cell func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	m := sweepMetrics{
		cells:  o.Tel.Counter("cells"),
		errs:   o.Tel.Counter("cell_errors"),
		panics: o.Tel.Counter("cell_panics"),
		wall:   o.Tel.Histogram("cell_wall_s", telemetry.WallBuckets),
	}

	workers := o.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Serial fast path: the plain loop the sweep replaced. No
		// goroutines, no budget traffic, no lease lending.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			v, err := runCell(ctx, i, cell, m)
			if err != nil {
				return out, err
			}
			out[i] = v
		}
		return out, nil
	}

	budget := o.Budget
	parent := leaseFrom(ctx)
	if budget == nil {
		if budget = parent.budget(); budget == nil {
			budget = Shared
		}
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup

	// Lend the caller's slot to the cells for the duration of the
	// fan-out: this goroutine only waits from here on.
	parent.Release()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lease *Lease
			defer func() { lease.Release() }()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := cctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				if lease == nil {
					l, err := budget.Acquire(cctx)
					if err != nil {
						errs[i] = err
						continue
					}
					lease = l
				}
				out[i], errs[i] = runCell(Attach(cctx, lease), i, cell, m)
				if errs[i] != nil {
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	// Report the lowest-indexed genuine failure: a failing cell
	// cancels its siblings, and a lower-indexed sibling may record
	// that cancellation before the culprit's own error lands.
	var err, firstErr error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if firstErr == nil {
			firstErr = e
		}
		if !errors.Is(e, context.Canceled) {
			err = e
			break
		}
	}
	if err == nil {
		err = firstErr
	}
	// Take the caller's slot back before resuming its code. Use the
	// original ctx: cctx is cancelled on every exit from this
	// function, successful or not.
	if rerr := parent.Reacquire(ctx); err == nil {
		err = rerr
	}
	return out, err
}

// sweepMetrics holds the sweep's own telemetry handles (nil no-ops
// when collection is off).
type sweepMetrics struct {
	cells, errs, panics *telemetry.Counter
	wall                *telemetry.Histogram
}

// runCell executes one cell with panic isolation and wall-time
// accounting.
func runCell[T any](ctx context.Context, i int, cell func(ctx context.Context, i int) (T, error), m sweepMetrics) (v T, err error) {
	m.cells.Inc()
	start := time.Now()
	defer func() {
		m.wall.Observe(time.Since(start).Seconds())
		if p := recover(); p != nil {
			m.panics.Inc()
			err = fmt.Errorf("sweep: cell %d panicked: %v\n%s", i, p, debug.Stack())
		}
		if err != nil {
			m.errs.Inc()
		}
	}()
	return cell(ctx, i)
}
