package core

import (
	"testing"

	"immersionoc/internal/workload"
)

func TestDecideGPUMaxPerformance(t *testing.T) {
	m, err := workload.VGGByName("VGG11")
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecideGPU(m, MaxPerformance, workload.DefaultGPUPower)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Config.Overclocked {
		t.Fatalf("max performance picked %s", d.Config.Name)
	}
	if d.Improvement < 0.10 {
		t.Fatalf("improvement %v too small", d.Improvement)
	}
}

func TestDecideGPUStopsAtOCG2ForBatchOptimized(t *testing.T) {
	// VGG16B: OCG3's extra memory clock adds power for no gain; with
	// a performance tie the governor must take the cheaper config.
	m, err := workload.VGGByName("VGG16B")
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecideGPU(m, MaxPerformance, workload.DefaultGPUPower)
	if err != nil {
		t.Fatal(err)
	}
	if d.Config.Name == "OCG3" {
		t.Fatalf("governor chose OCG3 for VGG16B (power without performance)")
	}
}

func TestDecideGPUPerfPerWatt(t *testing.T) {
	// Perf/W lands on OCG1: it raises clocks within the stock power
	// limit — the cheapest gain on the table.
	m, _ := workload.VGGByName("VGG16")
	d, err := DecideGPU(m, PerfPerWatt, workload.DefaultGPUPower)
	if err != nil {
		t.Fatal(err)
	}
	if d.Config.Name != "OCG1" {
		t.Fatalf("perf/W chose %s, want OCG1", d.Config.Name)
	}
}

func TestDecideGPUValidation(t *testing.T) {
	bad := workload.VGGModel{Name: "bad", WSM: 0.5}
	if _, err := DecideGPU(bad, MaxPerformance, workload.DefaultGPUPower); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestDecideGPUAllModelsGetAConfig(t *testing.T) {
	for _, m := range workload.VGGModels() {
		d, err := DecideGPU(m, MaxPerformance, workload.DefaultGPUPower)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if d.Improvement <= 0 {
			t.Fatalf("%s: non-positive improvement", m.Name)
		}
	}
}
