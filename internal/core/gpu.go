package core

import (
	"immersionoc/internal/freq"
	"immersionoc/internal/workload"
)

// GPUDecision is the governor's answer for a GPU training workload
// (the tank #2 scenario: an overclockable RTX 2080ti under 2PIC).
type GPUDecision struct {
	Config freq.GPUConfig
	// Improvement is the predicted training-time reduction.
	Improvement float64
	// PowerDeltaW is the added P99 board power over stock.
	PowerDeltaW float64
}

// DecideGPU picks a Table VIII GPU configuration for a CNN training
// workload. The Figure 11 lesson is encoded directly: memory
// overclocking (OCG2→OCG3) is only granted when the model's
// memory-bound fraction justifies its power — for batch-optimized
// models like VGG16B the governor stops at the power-limit bump.
func DecideGPU(m workload.VGGModel, objective Objective, pm workload.GPUPowerModel) (GPUDecision, error) {
	if err := m.Validate(); err != nil {
		return GPUDecision{}, err
	}
	basePower := pm.P99(freq.GPUBase)

	var best GPUDecision
	found := false
	better := func(cand, cur GPUDecision) bool {
		switch objective {
		case PerfPerWatt:
			cw := cand.Improvement / max1(cand.PowerDeltaW)
			bw := cur.Improvement / max1(cur.PowerDeltaW)
			return cw > bw
		case MinPowerForTarget:
			return cand.PowerDeltaW < cur.PowerDeltaW
		default:
			// Gains below measurement noise (0.5%) are ties; a tie
			// goes to the cheaper config — the Figure 11 lesson that
			// OCG3's extra memory clock is waste for VGG16B.
			const noise = 0.005
			if cand.Improvement > cur.Improvement+noise {
				return true
			}
			if cand.Improvement < cur.Improvement-noise {
				return false
			}
			return cand.PowerDeltaW < cur.PowerDeltaW
		}
	}
	for _, cfg := range freq.TableVIII() {
		imp := m.Improvement(cfg)
		if cfg.Overclocked && imp < 0.02 {
			continue // overclocking that does not pay is waste
		}
		d := GPUDecision{
			Config:      cfg,
			Improvement: imp,
			PowerDeltaW: pm.P99(cfg) - basePower,
		}
		if !found || better(d, best) {
			best, found = d, true
		}
	}
	if !found {
		return GPUDecision{}, ErrNoAdmissibleConfig
	}
	return best, nil
}

func max1(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}
