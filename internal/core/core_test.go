package core

import (
	"errors"
	"math"
	"testing"

	"immersionoc/internal/freq"
	"immersionoc/internal/power"
	"immersionoc/internal/server"
	"immersionoc/internal/workload"
)

func immersedGovernor() *Governor {
	return NewGovernor(server.New(server.Tank1Spec()))
}

func TestVectorOfAndValidate(t *testing.T) {
	v := VectorOf(workload.SQL)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := BottleneckVector{Core: 0.5}
	if bad.Validate() == nil {
		t.Fatal("incomplete vector validated")
	}
	neg := BottleneckVector{Core: 1.5, Fixed: -0.5}
	if neg.Validate() == nil {
		t.Fatal("negative component validated")
	}
}

func TestDominantDomain(t *testing.T) {
	if d := (BottleneckVector{Core: 0.6, LLC: 0.2, Mem: 0.1, Fixed: 0.1}).Dominant(); d != freq.Core {
		t.Fatalf("dominant %v", d)
	}
	if d := (BottleneckVector{Core: 0.1, LLC: 0.5, Mem: 0.2, Fixed: 0.2}).Dominant(); d != freq.Uncore {
		t.Fatalf("dominant %v", d)
	}
	if d := (BottleneckVector{Core: 0.1, LLC: 0.2, Mem: 0.5, Fixed: 0.2}).Dominant(); d != freq.Memory {
		t.Fatalf("dominant %v", d)
	}
}

func TestServiceTimeRatioMatchesWorkload(t *testing.T) {
	for _, p := range workload.Figure9Apps() {
		v := VectorOf(p)
		for _, cfg := range freq.TableVII() {
			if math.Abs(v.ServiceTimeRatio(cfg)-p.ServiceTimeRatio(cfg)) > 1e-12 {
				t.Fatalf("%s under %s: vector ratio diverges from profile", p.Name, cfg.Name)
			}
		}
	}
}

func TestDecideMaxPerformance(t *testing.T) {
	g := immersedGovernor()
	d, err := g.Decide(Request{
		Vector:      VectorOf(workload.Training),
		Objective:   MaxPerformance,
		UtilSum:     14,
		ActiveCores: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Core-bound Training: every OC config helps; max performance
	// picks the largest improvement (OC3 by a hair over OC1).
	if !d.Config.Overclocked {
		t.Fatalf("chose %s, want an overclocked config", d.Config.Name)
	}
	if d.Improvement < 0.10 {
		t.Fatalf("improvement %v too small", d.Improvement)
	}
	if d.LifetimeYears < g.MinLifetimeYears {
		t.Fatalf("decision violates lifetime floor: %v", d.LifetimeYears)
	}
}

func TestDecidePerfPerWattPrefersOC1ForCoreBound(t *testing.T) {
	g := immersedGovernor()
	d, err := g.Decide(Request{
		Vector:      VectorOf(workload.BI),
		Objective:   PerfPerWatt,
		UtilSum:     4,
		ActiveCores: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// BI gains only from core overclocking; cache/memory add power
	// without performance — perf/W must land on OC1 (the Figure 9
	// takeaway).
	if d.Config.Name != "OC1" {
		t.Fatalf("perf/W chose %s for BI, want OC1", d.Config.Name)
	}
}

func TestDecideMinPowerForTarget(t *testing.T) {
	g := immersedGovernor()
	d, err := g.Decide(Request{
		Vector:            VectorOf(workload.Training),
		Objective:         MinPowerForTarget,
		TargetImprovement: 0.10,
		UtilSum:           4,
		ActiveCores:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Improvement < 0.10 {
		t.Fatalf("target not met: %v", d.Improvement)
	}
	// OC1 is the cheapest way to a 10% gain for a core-bound app.
	if d.Config.Name != "OC1" {
		t.Fatalf("chose %s, want OC1", d.Config.Name)
	}
}

func TestDecideRejectsUselessOverclock(t *testing.T) {
	g := immersedGovernor()
	// A fully I/O-bound workload gains nothing; the governor must
	// refuse to overclock (the paper's "wasteful" case).
	_, err := g.Decide(Request{
		Vector:      BottleneckVector{Fixed: 1.0},
		Objective:   MaxPerformance,
		UtilSum:     4,
		ActiveCores: 4,
	})
	if !errors.Is(err, ErrNoAdmissibleConfig) {
		t.Fatalf("io-bound workload got %v, want ErrNoAdmissibleConfig", err)
	}
}

func TestAirCooledGovernorRefusesOverclock(t *testing.T) {
	g := NewGovernor(server.New(server.AirSpec()))
	d, err := g.Decide(Request{
		Vector:      VectorOf(workload.Training),
		Objective:   MaxPerformance,
		UtilSum:     28,
		ActiveCores: 28,
	})
	// In air, overclocking drops lifetime below the service life
	// (Table V: <1 year); every OC candidate must be vetoed.
	if err == nil && d.Config.Overclocked {
		t.Fatalf("air-cooled governor approved %s (lifetime %v)", d.Config.Name, d.LifetimeYears)
	}
}

func TestAirCooledRedBandWithCredit(t *testing.T) {
	srv := server.New(server.AirSpec())
	// Accumulate credit with light, cool operation.
	srv.SetLoad(3, 28)
	if err := srv.Advance(2000); err != nil {
		t.Fatal(err)
	}
	g := NewGovernor(srv)
	g.AllowRedBand = true
	d, err := g.Decide(Request{
		Vector:      VectorOf(workload.Training),
		Objective:   MaxPerformance,
		UtilSum:     14,
		ActiveCores: 28,
	})
	if err != nil {
		t.Fatalf("red band with credit refused: %v", err)
	}
	if !d.Config.Overclocked {
		t.Fatal("red band decision not overclocked")
	}
}

func TestFeederHeadroomVeto(t *testing.T) {
	g := immersedGovernor()
	g.Feeder = power.NewFeeder(100)
	g.Feeder.Offer(99) // 1 W of headroom left
	_, err := g.Decide(Request{
		Vector:      VectorOf(workload.Training),
		Objective:   MaxPerformance,
		UtilSum:     20,
		ActiveCores: 24,
	})
	if !errors.Is(err, ErrNoAdmissibleConfig) {
		t.Fatalf("feeder without headroom got %v", err)
	}
}

func TestApplyAndRevert(t *testing.T) {
	g := immersedGovernor()
	g.Feeder = power.NewFeeder(500)
	d, err := g.Decide(Request{
		Vector:      VectorOf(workload.Training),
		Objective:   MaxPerformance,
		UtilSum:     14,
		ActiveCores: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Apply(d); err != nil {
		t.Fatal(err)
	}
	if g.Server.Config().Name != d.Config.Name {
		t.Fatal("apply did not set the configuration")
	}
	if g.Feeder.Load() != d.PowerDeltaW {
		t.Fatalf("feeder load %v, want %v", g.Feeder.Load(), d.PowerDeltaW)
	}
	if err := g.Revert(d); err != nil {
		t.Fatal(err)
	}
	if g.Server.Config().Name != "B2" {
		t.Fatal("revert did not restore B2")
	}
	if g.Feeder.Load() != 0 {
		t.Fatalf("feeder load %v after revert", g.Feeder.Load())
	}
}

func TestMitigationSpeedup(t *testing.T) {
	if MitigationSpeedup(10, 16) != 1 {
		t.Fatal("under-capacity demand needs speedup")
	}
	if got := MitigationSpeedup(20, 16); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("speedup %v, want 1.25", got)
	}
	if !math.IsInf(MitigationSpeedup(10, 0), 1) {
		t.Fatal("zero pcores not infinite")
	}
}

func TestConfigForSpeedup(t *testing.T) {
	coreBound := BottleneckVector{Core: 0.9, LLC: 0.03, Mem: 0.03, Fixed: 0.04}
	// No speedup needed → stay at B2.
	cfg, err := ConfigForSpeedup(1.0, coreBound)
	if err != nil || cfg.Name != "B2" {
		t.Fatalf("ConfigForSpeedup(1.0): %v %v", cfg.Name, err)
	}
	// Highly scalable workload: OC1 provides up to ~1.18×.
	cfg, err = ConfigForSpeedup(1.15, coreBound)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "OC1" {
		t.Fatalf("chose %s, want OC1", cfg.Name)
	}
	// SQL needs its memory bottleneck lifted: OC1 is not enough for
	// a 1.10× target but OC3 is.
	cfg, err = ConfigForSpeedup(1.10, VectorOf(workload.SQL))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name == "OC1" || cfg.Name == "B2" {
		t.Fatalf("chose %s for memory-heavy SQL, want OC2/OC3", cfg.Name)
	}
	// Unachievable speedup errors.
	if _, err := ConfigForSpeedup(1.5, coreBound); err == nil {
		t.Fatal("impossible speedup accepted")
	}
	// Fixed-time-bound workload can't be rescued by clocks at all.
	ioBound := BottleneckVector{Core: 0.2, Fixed: 0.8}
	if _, err := ConfigForSpeedup(1.2, ioBound); err == nil {
		t.Fatal("io-bound speedup accepted")
	}
}

func TestDecisionRationalePopulated(t *testing.T) {
	g := immersedGovernor()
	d, err := g.Decide(Request{Vector: VectorOf(workload.SQL), Objective: MaxPerformance, UtilSum: 4, ActiveCores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rationale == "" {
		t.Fatal("empty rationale")
	}
}
