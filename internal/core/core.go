// Package core implements the overclocking governor — the control
// plane the paper argues cloud providers need in order to "carefully
// manage overclocking to provide performance benefits, while managing
// the associated risks and costs" (§I, §V).
//
// The governor decides whether, which component, and how far to
// overclock:
//
//   - bottleneck analysis: hardware-counter-derived bottleneck vectors
//     say which domain (core, uncore/LLC, memory) actually limits the
//     workload, so frequency is only raised where it helps (the
//     Figure 9 lesson: overclock only the bounding resource);
//   - risk management: every candidate configuration is vetted against
//     the component lifetime model (wear budget / lifetime credit),
//     the computational-stability envelope, and the power-delivery
//     headroom of the feeder the server hangs off;
//   - use-cases: admission of high-performance VMs, oversubscription
//     mitigation (compute the speedup needed to hide contention),
//     virtual failover buffers, and capacity-crisis mitigation.
package core

import (
	"errors"
	"fmt"
	"math"

	"immersionoc/internal/freq"
	"immersionoc/internal/power"
	"immersionoc/internal/reliability"
	"immersionoc/internal/server"
	"immersionoc/internal/workload"
)

// BottleneckVector is the share of execution time attributable to each
// frequency domain, as derived from per-domain stall counters.
type BottleneckVector struct {
	Core, LLC, Mem, Fixed float64
}

// VectorOf extracts the bottleneck vector from a workload profile (in
// production this comes from counters; the profile is the simulated
// ground truth the counters would measure).
func VectorOf(p workload.Profile) BottleneckVector {
	return BottleneckVector{Core: p.WCore, LLC: p.WLLC, Mem: p.WMem, Fixed: p.WFixed}
}

// Validate checks the vector sums to ~1.
func (v BottleneckVector) Validate() error {
	sum := v.Core + v.LLC + v.Mem + v.Fixed
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("core: bottleneck vector sums to %.4f", sum)
	}
	if v.Core < 0 || v.LLC < 0 || v.Mem < 0 || v.Fixed < 0 {
		return errors.New("core: negative bottleneck component")
	}
	return nil
}

// ServiceTimeRatio returns execution time under cfg relative to the
// B2 reference for this vector.
func (v BottleneckVector) ServiceTimeRatio(cfg freq.Config) float64 {
	ref := workload.Reference
	return v.Core*float64(ref.CoreGHz/cfg.CoreGHz) +
		v.LLC*float64(ref.UncoreGHz/cfg.UncoreGHz) +
		v.Mem*float64(ref.MemoryGHz/cfg.MemoryGHz) +
		v.Fixed
}

// Dominant returns the domain with the largest scalable share.
func (v BottleneckVector) Dominant() freq.Domain {
	switch {
	case v.Core >= v.LLC && v.Core >= v.Mem:
		return freq.Core
	case v.LLC >= v.Mem:
		return freq.Uncore
	default:
		return freq.Memory
	}
}

// Objective selects what the governor optimizes.
type Objective int

const (
	// MaxPerformance picks the admissible config with the largest
	// improvement.
	MaxPerformance Objective = iota
	// PerfPerWatt picks the admissible config with the best
	// improvement per added watt (minimum improvement applies).
	PerfPerWatt
	// MinPowerForTarget picks the cheapest admissible config that
	// meets a target improvement.
	MinPowerForTarget
)

func (o Objective) String() string {
	switch o {
	case MaxPerformance:
		return "max-performance"
	case PerfPerWatt:
		return "perf-per-watt"
	case MinPowerForTarget:
		return "min-power-for-target"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Request is one overclocking decision request.
type Request struct {
	Vector    BottleneckVector
	Objective Objective
	// TargetImprovement applies to MinPowerForTarget (fraction).
	TargetImprovement float64
	// MinImprovement filters out configs whose gain is noise
	// (default 2%).
	MinImprovement float64
	// UtilSum and ActiveCores describe current load for power
	// estimation.
	UtilSum     float64
	ActiveCores int
}

// Decision is the governor's answer.
type Decision struct {
	Config freq.Config
	// Improvement is the predicted metric improvement vs B2.
	Improvement float64
	// PowerDeltaW is the predicted added server power vs B2.
	PowerDeltaW float64
	// LifetimeYears is the projected lifetime at the config.
	LifetimeYears float64
	// Rationale explains the choice.
	Rationale string
}

// Governor vets overclocking configurations for one server.
type Governor struct {
	Server *server.Server
	// Feeder, when non-nil, must have headroom for any power
	// increase.
	Feeder *power.Feeder
	// MinLifetimeYears is the lifetime floor (the service life, 5y,
	// unless wear credit justifies dipping below).
	MinLifetimeYears float64
	// AllowRedBand permits configurations that trade lifetime
	// (below MinLifetimeYears) when wear credit is available.
	AllowRedBand bool
	// Candidates are the configurations considered; defaults to
	// Table VII.
	Candidates []freq.Config
}

// NewGovernor returns a governor with the paper's defaults.
func NewGovernor(srv *server.Server) *Governor {
	return &Governor{
		Server:           srv,
		MinLifetimeYears: reliability.ServiceLifeYears,
		Candidates:       freq.TableVII(),
	}
}

// ErrNoAdmissibleConfig is returned when no configuration passes the
// risk checks with a useful improvement.
var ErrNoAdmissibleConfig = errors.New("core: no admissible overclocking configuration")

// admissible vets one configuration against stability, lifetime and
// power-delivery constraints; returns the projected lifetime.
func (g *Governor) admissible(cfg freq.Config, req Request) (lifetimeYears float64, powerDelta float64, ok bool) {
	spec := g.Server.Spec
	// Stability: never beyond the red band top, and never into the
	// crash region of the stability model.
	if cfg.CoreGHz > spec.Bands.MaxOC {
		return 0, 0, false
	}
	if spec.Stability.Unstable(float64(cfg.CoreGHz), float64(spec.Bands.MaxSafeOC)) {
		return 0, 0, false
	}

	// Lifetime at the candidate's operating point. Following the
	// paper's foundry model, lifetime is evaluated at worst-case
	// utilization — a VM mix can always fill the socket later.
	op, err := spec.Socket.Solve(spec.Thermal, spec.Curve, cfg.CoreGHz, 0, 1.0)
	if err != nil {
		return 0, 0, false
	}
	cond := reliability.Condition{VoltageV: op.VoltageV, TjMaxC: op.JunctionC, TjMinC: spec.Thermal.IdleTemp()}
	life, err := spec.Lifetime.Lifetime(cond)
	if err != nil {
		return 0, 0, false
	}
	if life < g.MinLifetimeYears {
		if !(g.AllowRedBand && g.Server.WearCredit() > 0) {
			return 0, 0, false
		}
	}

	// Power delivery headroom.
	base := spec.ServerPower.Power(freq.B2, req.UtilSum, req.ActiveCores)
	cand := spec.ServerPower.Power(cfg, req.UtilSum, req.ActiveCores)
	powerDelta = cand - base
	if g.Feeder != nil && powerDelta > 0 && g.Feeder.Headroom() < powerDelta {
		return 0, 0, false
	}
	return life, powerDelta, true
}

func clamp01(x float64) float64 { return math.Max(0, math.Min(1, x)) }

// Decide returns the best admissible configuration for the request.
func (g *Governor) Decide(req Request) (Decision, error) {
	if err := req.Vector.Validate(); err != nil {
		return Decision{}, err
	}
	if req.MinImprovement == 0 {
		req.MinImprovement = 0.02
	}
	candidates := g.Candidates
	if len(candidates) == 0 {
		candidates = freq.TableVII()
	}

	var best Decision
	found := false
	better := func(cand, cur Decision) bool {
		switch req.Objective {
		case PerfPerWatt:
			cw := cand.Improvement / math.Max(cand.PowerDeltaW, 1)
			bw := cur.Improvement / math.Max(cur.PowerDeltaW, 1)
			return cw > bw
		case MinPowerForTarget:
			return cand.PowerDeltaW < cur.PowerDeltaW
		default:
			return cand.Improvement > cur.Improvement
		}
	}

	for _, cfg := range candidates {
		imp := 1 - req.Vector.ServiceTimeRatio(cfg)
		if imp < req.MinImprovement {
			continue
		}
		if req.Objective == MinPowerForTarget && imp < req.TargetImprovement {
			continue
		}
		life, dp, ok := g.admissible(cfg, req)
		if !ok {
			continue
		}
		d := Decision{
			Config:        cfg,
			Improvement:   imp,
			PowerDeltaW:   dp,
			LifetimeYears: life,
			Rationale: fmt.Sprintf("%s: dominant bottleneck %v, +%.1f%% at +%.0fW, lifetime %.1fy",
				cfg.Name, req.Vector.Dominant(), imp*100, dp, life),
		}
		if !found || better(d, best) {
			best, found = d, true
		}
	}
	if !found {
		return Decision{}, ErrNoAdmissibleConfig
	}
	return best, nil
}

// Apply executes a decision on the managed server and reserves feeder
// headroom.
func (g *Governor) Apply(d Decision) error {
	if g.Feeder != nil && d.PowerDeltaW > 0 {
		if !g.Feeder.Offer(d.PowerDeltaW) {
			g.Feeder.Release(d.PowerDeltaW)
			return fmt.Errorf("core: feeder rejected %+.0fW", d.PowerDeltaW)
		}
	}
	return g.Server.SetConfig(d.Config)
}

// Revert returns the server to the B2 baseline and releases feeder
// headroom previously reserved by d.
func (g *Governor) Revert(d Decision) error {
	if g.Feeder != nil && d.PowerDeltaW > 0 {
		g.Feeder.Release(d.PowerDeltaW)
	}
	return g.Server.SetConfig(freq.B2)
}

// MitigationSpeedup returns the throughput speedup needed to absorb
// CPU oversubscription with the given expected concurrent demand (sum
// of per-VM utilizations in core-equivalents) on pcores physical
// cores: speedup = demand / pcores when demand exceeds capacity,
// else 1.
func MitigationSpeedup(demandCores, pcores float64) float64 {
	if pcores <= 0 {
		return math.Inf(1)
	}
	if demandCores <= pcores {
		return 1
	}
	return demandCores / pcores
}

// ConfigForSpeedup returns the cheapest Table VII overclocking
// configuration whose predicted speedup for the given bottleneck
// vector meets the required speedup, or an error if even OC3 falls
// short (the workload's scalable components are too small).
func ConfigForSpeedup(required float64, vec BottleneckVector) (freq.Config, error) {
	if err := vec.Validate(); err != nil {
		return freq.Config{}, err
	}
	if required <= 1 {
		return freq.B2, nil
	}
	for _, cfg := range []freq.Config{freq.OC1, freq.OC2, freq.OC3} {
		if 1/vec.ServiceTimeRatio(cfg) >= required {
			return cfg, nil
		}
	}
	return freq.Config{}, fmt.Errorf("core: no configuration provides %.2f× speedup for vector %+v", required, vec)
}
