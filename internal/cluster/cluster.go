// Package cluster simulates fleet-level VM placement: the
// multi-dimensional bin packing providers use (§V "Dense VM packing"),
// CPU oversubscription backed by overclocking, failover buffers
// (Figure 6), and capacity-crisis mitigation (Figure 7).
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"immersionoc/internal/cow"
	"immersionoc/internal/vm"
)

// ServerSpec describes the physical shape of fleet servers.
type ServerSpec struct {
	PCores   int
	MemoryGB float64
	// Overclockable reports whether the server can enter the
	// overclocking bands (2PIC fleet).
	Overclockable bool
	// OCSpeedup is the throughput gain available from overclocking
	// (e.g. 1.20 for the +20% core/uncore overclock of OC3); it
	// bounds how much CPU oversubscription overclocking can absorb.
	OCSpeedup float64
}

// TwoSocketBlade is the large-tank Open Compute shape: 2 × 24 cores.
var TwoSocketBlade = ServerSpec{PCores: 48, MemoryGB: 384, Overclockable: true, OCSpeedup: 1.20}

// AirBlade is the same shape without overclocking capability.
var AirBlade = ServerSpec{PCores: 48, MemoryGB: 384, Overclockable: false, OCSpeedup: 1.0}

// Server is one fleet server with its current allocations.
type Server struct {
	ID   int
	Spec ServerSpec
	// Reserved marks buffer servers that normal placement skips.
	Reserved bool
	// Failed marks servers lost to an infrastructure failure.
	Failed bool

	// vms holds the placed VMs sorted by ascending ID. A sorted slice
	// instead of a map keeps iteration order deterministic without a
	// per-read sort-and-copy, which is what lets fleet control loops
	// walk allocations allocation-free.
	vms       []*vm.VM
	vcoresUse int
	memUse    float64
	// expDemand is the expected concurrent core demand
	// Σ vcores·AvgUtil over the placed VMs, maintained incrementally
	// on placement changes so control planes read it as a field
	// instead of re-summing the allocation list every step.
	expDemand float64
}

// VCoresUsed returns allocated vcores.
func (s *Server) VCoresUsed() int { return s.vcoresUse }

// MemoryUsed returns allocated memory in GB.
func (s *Server) MemoryUsed() float64 { return s.memUse }

// VMs returns the number of VMs placed on the server.
func (s *Server) VMs() int { return len(s.vms) }

// Oversubscribed reports whether allocated vcores exceed pcores.
func (s *Server) Oversubscribed() bool { return s.vcoresUse > s.Spec.PCores }

// ExpectedDemand returns the server's expected concurrent core demand
// (Σ vcores·AvgUtil over its placed VMs). The value is maintained
// incrementally by Place/Remove/failure/migration paths, so reading it
// is O(1); drained servers reset it exactly to zero.
func (s *Server) ExpectedDemand() float64 { return s.expDemand }

// VMsList returns a copy of the server's placed VMs in ascending ID
// order. Hot loops that only need to walk the allocations should use
// ForEachVM, which does not allocate.
func (s *Server) VMsList() []*vm.VM {
	out := make([]*vm.VM, len(s.vms))
	copy(out, s.vms)
	return out
}

// ForEachVM calls f for each placed VM in ascending ID order without
// allocating. f must not place or remove VMs on this server.
func (s *Server) ForEachVM(f func(*vm.VM)) {
	for _, v := range s.vms {
		f(v)
	}
}

// attach inserts v keeping s.vms sorted by ID and updates the
// incremental resource accounting.
func (s *Server) attach(v *vm.VM) {
	i := sort.Search(len(s.vms), func(i int) bool { return s.vms[i].ID >= v.ID })
	s.vms = append(s.vms, nil)
	copy(s.vms[i+1:], s.vms[i:])
	s.vms[i] = v
	s.vcoresUse += v.Type.VCores
	s.memUse += v.Type.MemoryGB
	s.expDemand += float64(v.Type.VCores) * v.AvgUtil
}

// detach removes v (present by contract) and updates the incremental
// accounting. A fully drained server resets its expected demand to an
// exact zero so floating-point residue cannot accumulate across
// place/remove cycles.
func (s *Server) detach(v *vm.VM) {
	i := sort.Search(len(s.vms), func(i int) bool { return s.vms[i].ID >= v.ID })
	copy(s.vms[i:], s.vms[i+1:])
	s.vms[len(s.vms)-1] = nil
	s.vms = s.vms[:len(s.vms)-1]
	s.vcoresUse -= v.Type.VCores
	s.memUse -= v.Type.MemoryGB
	if len(s.vms) == 0 {
		s.expDemand = 0
	} else {
		s.expDemand -= float64(v.Type.VCores) * v.AvgUtil
	}
}

// Policy controls placement behaviour.
type Policy struct {
	// CPUOversubRatio allows allocated vcores up to
	// (1+ratio)·pcores on overclockable servers. Zero disables
	// oversubscription.
	CPUOversubRatio float64
	// BufferFraction reserves that fraction of servers for failover
	// (the static buffer of Figure 6). With overclocking-backed
	// virtual buffers this is zero.
	BufferFraction float64
}

// Cluster is a fleet of servers plus a placement policy.
type Cluster struct {
	Spec    ServerSpec
	Policy  Policy
	servers []*Server
	placed  map[int]*Server // VM ID → server
	// idx is the best-fit placement index: non-reserved live servers
	// bucketed by remaining vcore headroom. Maintained by every
	// mutation path (place/remove/fail/migrate/policy change).
	idx *placeIndex
	// track records which export chunks the mutation paths dirtied
	// since the last ExportFlat; server IDs double as fleet indices
	// (New assigns ID = i), so marking by ID marks the export row.
	track *cow.Tracker
	// placedCount / vcoresAlloc / pcoresLive are the Stats() packing
	// KPIs maintained incrementally (failed servers excluded), so
	// PlacedVMs and Density are O(1) reads instead of fleet scans.
	placedCount int
	vcoresAlloc int
	pcoresLive  int
	// Rejected counts placement failures.
	Rejected int
}

// New builds a cluster of n servers, reserving the policy's buffer
// fraction as failover capacity.
func New(spec ServerSpec, policy Policy, n int) *Cluster {
	c := &Cluster{Spec: spec, Policy: policy, placed: make(map[int]*Server)}
	reserve := int(float64(n) * policy.BufferFraction)
	for i := 0; i < n; i++ {
		s := &Server{ID: i, Spec: spec}
		if i >= n-reserve {
			s.Reserved = true
		}
		c.servers = append(c.servers, s)
		c.pcoresLive += spec.PCores
	}
	c.track = cow.NewTracker(n, 0)
	c.rebuildIndex()
	return c
}

// SetExportChunkShift re-chunks the flat export at 1<<shift servers
// per chunk (shift 0 restores the default). Test hook for exercising
// the COW machinery at small chunk sizes; call it before the first
// ExportFlat — it resets dirty tracking, and a Flat filled under the
// old geometry is fully re-materialized on its next export.
func (c *Cluster) SetExportChunkShift(shift uint) {
	c.track = cow.NewTracker(len(c.servers), shift)
}

// PlacedVMs returns the number of VMs placed on non-failed servers,
// maintained incrementally — the Stats().PlacedVMs value as an O(1)
// read.
func (c *Cluster) PlacedVMs() int { return c.placedCount }

// Density returns allocated vcores per available pcore, maintained
// incrementally — the Stats().Density value as an O(1) read (same
// integer division, so the float is bit-identical).
func (c *Cluster) Density() float64 {
	if c.pcoresLive > 0 {
		return float64(c.vcoresAlloc) / float64(c.pcoresLive)
	}
	return 0
}

// Servers returns the fleet.
func (c *Cluster) Servers() []*Server { return c.servers }

// SetOversubRatio changes the CPU oversubscription policy at runtime.
// The virtual-buffer use-case (Figure 6) runs the fleet 1:1 during
// normal operation and enables overclocking-backed oversubscription
// only to absorb failover.
func (c *Cluster) SetOversubRatio(r float64) {
	if r < 0 {
		r = 0
	}
	c.Policy.CPUOversubRatio = r
	// The vcore cap re-keys every server's headroom at once.
	c.rebuildIndex()
}

// vcoreCap returns the server's vcore allocation limit under the
// policy.
func (c *Cluster) vcoreCap(s *Server) int {
	capV := s.Spec.PCores
	if c.Policy.CPUOversubRatio > 0 && s.Spec.Overclockable {
		capV = int(float64(s.Spec.PCores) * (1 + c.Policy.CPUOversubRatio))
	}
	return capV
}

// fits reports whether v fits on s under the policy.
func (c *Cluster) fits(s *Server, v *vm.VM, useReserved bool) bool {
	return c.explain(s, v, useReserved) == ""
}

// Placement-failure reasons served by the control-plane filter API.
// The vocabulary is a small fixed set of interned constants so
// rejection-heavy filter responses reference them instead of
// allocating one string per server.
const (
	// ReasonFailed covers failed or reserved hardware.
	ReasonFailed = "failed"
	// ReasonMemory is a memory-capacity rejection.
	ReasonMemory = "memory"
	// ReasonCapacity is a vcore-cap rejection.
	ReasonCapacity = "capacity"
	// ReasonClass is a high-performance VM without guaranteed
	// overclock headroom.
	ReasonClass = "class"
)

// Explain reports why v cannot be placed on s under the policy, as the
// machine-readable reason the control-plane filter API serves (the
// Reason* constants). An empty reason means v fits.
func (c *Cluster) Explain(s *Server, v *vm.VM) string {
	return c.explain(s, v, false)
}

func (c *Cluster) explain(s *Server, v *vm.VM, useReserved bool) string {
	if s.Failed || (s.Reserved && !useReserved) {
		return ReasonFailed
	}
	if s.memUse+v.Type.MemoryGB > s.Spec.MemoryGB {
		return ReasonMemory
	}
	if s.vcoresUse+v.Type.VCores > c.vcoreCap(s) {
		return ReasonCapacity
	}
	// High-performance VMs need overclocking headroom guaranteed:
	// only non-oversubscribed overclockable servers qualify.
	if v.Class == vm.HighPerf {
		if !s.Spec.Overclockable {
			return ReasonClass
		}
		if s.vcoresUse+v.Type.VCores > s.Spec.PCores {
			return ReasonClass
		}
	}
	return ""
}

// Place assigns v to a server using best-fit on remaining vcores
// (ties broken by server ID), mirroring production packers that
// consolidate load to keep empty servers for large VMs. Returns the
// chosen server or an error when no server fits.
func (c *Cluster) Place(v *vm.VM) (*Server, error) {
	return c.place(v, false)
}

func (c *Cluster) place(v *vm.VM, useReserved bool) (*Server, error) {
	var best *Server
	if useReserved {
		// Reserved capacity lives outside the index; the recovery path
		// keeps the linear best-fit over the whole fleet.
		bestLeft := 1 << 30
		for _, s := range c.servers {
			if !c.fits(s, v, useReserved) {
				continue
			}
			left := c.vcoreCap(s) - s.vcoresUse - v.Type.VCores
			if left < bestLeft || (left == bestLeft && best != nil && s.ID < best.ID) {
				best, bestLeft = s, left
			}
		}
	} else {
		best = c.placeIndexed(v)
	}
	if best == nil {
		c.Rejected++
		return nil, fmt.Errorf("cluster: no server fits VM %d (%d vcores, %.0f GB)", v.ID, v.Type.VCores, v.Type.MemoryGB)
	}
	oldR := c.headroom(best)
	best.attach(v)
	c.placed[v.ID] = best
	c.placedCount++
	c.vcoresAlloc += v.Type.VCores
	c.track.Mark(best.ID)
	if c.indexed(best) {
		c.idx.move(best.ID, oldR, c.headroom(best))
	}
	return best, nil
}

// placeIndexed finds the best-fit server through the headroom index:
// buckets scanned in ascending remaining-vcore order (= ascending
// "left" for a fixed VM), bits within a bucket in ascending ID order,
// so the first candidate that passes explain() is exactly the server
// the linear scan would pick.
func (c *Cluster) placeIndexed(v *vm.VM) *Server {
	want := v.Type.VCores
	minR := want
	if v.Class == vm.HighPerf {
		if !c.Spec.Overclockable {
			// A uniform fleet without overclock headroom can never
			// host a high-performance VM.
			return nil
		}
		// The class constraint vcoresUse + want ≤ PCores rewritten in
		// headroom terms: r ≥ want + (capV − PCores). Buckets below
		// that would be rejected by explain one by one; skip them.
		if over := c.idx.capV - c.Spec.PCores; over > 0 {
			minR = want + over
		}
	}
	var best *Server
	c.idx.scan(minR, func(id int) bool {
		s := c.servers[id]
		if c.explain(s, v, false) != "" {
			return false
		}
		best = s
		return true
	})
	return best
}

// Host returns the server currently hosting VM id, if it is placed.
func (c *Cluster) Host(id int) (*Server, bool) {
	s, ok := c.placed[id]
	return s, ok
}

// Remove releases a VM's resources.
func (c *Cluster) Remove(v *vm.VM) error {
	s, ok := c.placed[v.ID]
	if !ok {
		return errors.New("cluster: VM not placed")
	}
	oldR := c.headroom(s)
	s.detach(v)
	delete(c.placed, v.ID)
	c.placedCount--
	c.vcoresAlloc -= v.Type.VCores
	c.track.Mark(s.ID)
	if c.indexed(s) {
		c.idx.move(s.ID, oldR, c.headroom(s))
	}
	return nil
}

// Stats summarizes fleet utilization.
type Stats struct {
	Servers, FailedServers, ReservedServers int
	PlacedVMs                               int
	VCoresAllocated, PCoresTotal            int
	// Density is allocated vcores per available pcore.
	Density float64
	// VMsPerActiveServer is mean VMs per non-empty server.
	VMsPerActiveServer float64
	OversubscribedSrv  int
}

// Stats computes current fleet statistics.
func (c *Cluster) Stats() Stats {
	st := Stats{Servers: len(c.servers)}
	active := 0
	for _, s := range c.servers {
		if s.Failed {
			st.FailedServers++
			continue
		}
		if s.Reserved {
			st.ReservedServers++
		}
		st.PCoresTotal += s.Spec.PCores
		st.VCoresAllocated += s.vcoresUse
		st.PlacedVMs += len(s.vms)
		if len(s.vms) > 0 {
			active++
		}
		if s.Oversubscribed() {
			st.OversubscribedSrv++
		}
	}
	if st.PCoresTotal > 0 {
		st.Density = float64(st.VCoresAllocated) / float64(st.PCoresTotal)
	}
	if active > 0 {
		st.VMsPerActiveServer = float64(st.PlacedVMs) / float64(active)
	}
	return st
}

// FailServers marks n servers (highest VM counts first, emulating a
// rack/row failure hitting loaded machines) as failed and returns the
// VMs that must be re-created.
func (c *Cluster) FailServers(n int) []*vm.VM {
	candidates := make([]*Server, 0, len(c.servers))
	for _, s := range c.servers {
		if !s.Failed && !s.Reserved {
			candidates = append(candidates, s)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if len(candidates[i].vms) != len(candidates[j].vms) {
			return len(candidates[i].vms) > len(candidates[j].vms)
		}
		return candidates[i].ID < candidates[j].ID
	})
	if n > len(candidates) {
		n = len(candidates)
	}
	var displaced []*vm.VM
	for _, s := range candidates[:n] {
		// Drop the server from the placement index while its headroom
		// is still well-defined; failed servers never come back.
		c.idx.remove(s.ID, c.headroom(s))
		s.Failed = true
		c.placedCount -= len(s.vms)
		c.vcoresAlloc -= s.vcoresUse
		c.pcoresLive -= s.Spec.PCores
		c.track.Mark(s.ID)
		for _, v := range s.vms {
			displaced = append(displaced, v)
			delete(c.placed, v.ID)
		}
		for i := range s.vms {
			s.vms[i] = nil
		}
		s.vms = s.vms[:0]
		s.vcoresUse = 0
		s.memUse = 0
		s.expDemand = 0
	}
	return displaced
}

// Recover re-places displaced VMs. With a static buffer, reserved
// servers open up; with an overclocking-backed virtual buffer, the
// surviving servers absorb the VMs through oversubscription + OC.
// Returns the number successfully re-created.
func (c *Cluster) Recover(displaced []*vm.VM) int {
	ok := 0
	for _, v := range displaced {
		if _, err := c.place(v, true); err == nil {
			ok++
		}
	}
	return ok
}

// PackTrace replays a VM arrival/departure trace through the cluster
// and returns the peak density plus the rejection count.
func (c *Cluster) PackTrace(trace []*vm.VM) (peakDensity float64, rejected int) {
	for _, ev := range vm.Events(trace) {
		if ev.Arrival {
			if _, err := c.Place(ev.VM); err != nil {
				rejected++
			}
			if d := c.Stats().Density; d > peakDensity {
				peakDensity = d
			}
		} else if _, placed := c.placed[ev.VM.ID]; placed {
			_ = c.Remove(ev.VM)
		}
	}
	return peakDensity, rejected
}

// Migration is one planned VM move.
type Migration struct {
	VM   *vm.VM
	From *Server
	To   *Server
}

// PlanMigrations builds a live-migration plan that relieves
// oversubscribed servers (§V: overclocking is "a stop-gap solution to
// performance loss until live VM migration ... can eliminate the
// problem completely"). Up to maxMoves VMs are moved from
// oversubscribed servers to servers with 1:1 headroom, smallest VMs
// first (live migration cost grows with VM memory). The plan is
// returned without being applied.
func (c *Cluster) PlanMigrations(maxMoves int) []Migration {
	var plan []Migration
	for _, s := range c.servers {
		if s.Failed || !s.Oversubscribed() {
			continue
		}
		over := s.vcoresUse - s.Spec.PCores
		vms := s.VMsList()
		// Smallest first: cheapest moves that still relieve pressure.
		sort.Slice(vms, func(i, j int) bool {
			if vms[i].Type.VCores != vms[j].Type.VCores {
				return vms[i].Type.VCores < vms[j].Type.VCores
			}
			return vms[i].ID < vms[j].ID
		})
		for _, v := range vms {
			if over <= 0 || len(plan) >= maxMoves {
				break
			}
			dst := c.findHeadroom(s, v)
			if dst == nil {
				continue
			}
			plan = append(plan, Migration{VM: v, From: s, To: dst})
			over -= v.Type.VCores
			// Reserve the destination capacity while planning.
			dst.vcoresUse += v.Type.VCores
			dst.memUse += v.Type.MemoryGB
		}
	}
	// Release the planning reservations; Apply re-places for real.
	for _, m := range plan {
		m.To.vcoresUse -= m.VM.Type.VCores
		m.To.memUse -= m.VM.Type.MemoryGB
	}
	return plan
}

// findHeadroom returns a destination with 1:1 headroom for v, best-fit,
// excluding src.
func (c *Cluster) findHeadroom(src *Server, v *vm.VM) *Server {
	var best *Server
	bestLeft := 1 << 30
	for _, s := range c.servers {
		if s == src || s.Failed || s.Reserved {
			continue
		}
		if s.vcoresUse+v.Type.VCores > s.Spec.PCores {
			continue
		}
		if s.memUse+v.Type.MemoryGB > s.Spec.MemoryGB {
			continue
		}
		left := s.Spec.PCores - s.vcoresUse - v.Type.VCores
		if left < bestLeft || (left == bestLeft && best != nil && s.ID < best.ID) {
			best, bestLeft = s, left
		}
	}
	return best
}

// ApplyMigrations executes a plan, returning how many moves succeeded
// (a destination may have filled since planning).
func (c *Cluster) ApplyMigrations(plan []Migration) int {
	done := 0
	for _, m := range plan {
		if m.To.vcoresUse+m.VM.Type.VCores > m.To.Spec.PCores ||
			m.To.memUse+m.VM.Type.MemoryGB > m.To.Spec.MemoryGB {
			continue
		}
		fromR, toR := c.headroom(m.From), c.headroom(m.To)
		m.From.detach(m.VM)
		m.To.attach(m.VM)
		c.placed[m.VM.ID] = m.To
		// Both endpoints are live, so the packing KPIs are unchanged;
		// only the export rows move.
		c.track.Mark(m.From.ID)
		c.track.Mark(m.To.ID)
		if c.indexed(m.From) {
			c.idx.move(m.From.ID, fromR, c.headroom(m.From))
		}
		if c.indexed(m.To) {
			c.idx.move(m.To.ID, toR, c.headroom(m.To))
		}
		done++
	}
	return done
}

// InterferenceRisk estimates, for each oversubscribed server, whether
// overclocking covers the expected concurrent demand: the sum of
// per-VM average utilizations must not exceed pcores × OCSpeedup.
// Returns the number of servers whose expected demand exceeds even the
// overclocked capacity.
func (c *Cluster) InterferenceRisk() int {
	atRisk := 0
	for _, s := range c.servers {
		if s.Failed || !s.Oversubscribed() {
			continue
		}
		demand := s.ExpectedDemand()
		capacity := float64(s.Spec.PCores)
		if s.Spec.Overclockable {
			capacity *= s.Spec.OCSpeedup
		}
		if demand > capacity {
			atRisk++
		}
	}
	return atRisk
}
