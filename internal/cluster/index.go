package cluster

import "math/bits"

// placeIndex accelerates best-fit placement from O(fleet) per VM to
// O(buckets + words) by bucketing servers on remaining vcore headroom.
//
// Every server in the fleet shares one ServerSpec and one policy, so
// the vcore cap is uniform: a server's placement headroom is fully
// described by r = vcoreCap − vcoresUse ∈ [0, capV]. buckets[r] is a
// bitmap over server IDs (ID == slice position in Cluster.servers)
// holding exactly the non-failed, non-reserved servers with that
// headroom; summaries[r] is a second-level bitmap with one bit per
// bitmap word, so "first candidate in ID order" is two
// TrailingZeros64 calls instead of a word scan.
//
// Best-fit (minimum left = r − want, ties to the lowest ID) is then:
// scan r ascending from the smallest feasible bucket and take the
// first set bit — identical, candidate for candidate, to the linear
// scan it replaces, because left grows monotonically with r and
// bit order within a bucket is ID order. Candidates still pass
// through explain(), so memory and class constraints keep their
// exact semantics.
//
// Reserved servers are never indexed: the reserved path (Recover)
// keeps the linear scan, which is both rare and required to see
// buffer capacity the index deliberately hides.
type placeIndex struct {
	capV      int
	words     int
	buckets   [][]uint64
	summaries [][]uint64
	counts    []int
}

func newPlaceIndex(capV, nServers int) *placeIndex {
	ix := &placeIndex{
		capV:      capV,
		words:     (nServers + 63) / 64,
		buckets:   make([][]uint64, capV+1),
		summaries: make([][]uint64, capV+1),
		counts:    make([]int, capV+1),
	}
	return ix
}

// add inserts server id into bucket r, allocating the bucket lazily so
// a fleet that only ever occupies a few headroom levels stays small.
func (ix *placeIndex) add(id, r int) {
	if ix.buckets[r] == nil {
		ix.buckets[r] = make([]uint64, ix.words)
		ix.summaries[r] = make([]uint64, (ix.words+63)/64)
	}
	w := id >> 6
	ix.buckets[r][w] |= 1 << (uint(id) & 63)
	ix.summaries[r][w>>6] |= 1 << (uint(w) & 63)
	ix.counts[r]++
}

// remove deletes server id from bucket r.
func (ix *placeIndex) remove(id, r int) {
	w := id >> 6
	ix.buckets[r][w] &^= 1 << (uint(id) & 63)
	if ix.buckets[r][w] == 0 {
		ix.summaries[r][w>>6] &^= 1 << (uint(w) & 63)
	}
	ix.counts[r]--
}

// move relocates server id between headroom buckets.
func (ix *placeIndex) move(id, from, to int) {
	if from == to {
		return
	}
	ix.remove(id, from)
	ix.add(id, to)
}

// scan calls visit with candidate server IDs in (headroom ascending,
// ID ascending) order, starting at bucket minR, until visit returns
// true (accepted) or the buckets are exhausted. The visit callback
// must not mutate the index.
func (ix *placeIndex) scan(minR int, visit func(id int) bool) bool {
	if minR < 0 {
		minR = 0
	}
	for r := minR; r <= ix.capV; r++ {
		if ix.counts[r] == 0 {
			continue
		}
		sum := ix.summaries[r]
		bm := ix.buckets[r]
		for sw, sv := range sum {
			for sv != 0 {
				w := sw<<6 + bits.TrailingZeros64(sv)
				sv &= sv - 1
				for word := bm[w]; word != 0; word &= word - 1 {
					id := w<<6 + bits.TrailingZeros64(word)
					if visit(id) {
						return true
					}
				}
			}
		}
	}
	return false
}

// headroom returns the server's current index key. Only meaningful for
// indexed (non-failed, non-reserved) servers.
func (c *Cluster) headroom(s *Server) int {
	r := c.vcoreCap(s) - s.vcoresUse
	if r < 0 {
		r = 0
	}
	return r
}

// indexed reports whether s participates in the placement index.
func (c *Cluster) indexed(s *Server) bool {
	return !s.Failed && !s.Reserved
}

// rebuildIndex reconstructs the placement index from scratch. Called
// at construction and whenever the vcore cap changes (runtime
// oversubscription policy flips), which re-keys every server at once.
func (c *Cluster) rebuildIndex() {
	capV := c.Spec.PCores
	if c.Policy.CPUOversubRatio > 0 && c.Spec.Overclockable {
		capV = int(float64(c.Spec.PCores) * (1 + c.Policy.CPUOversubRatio))
	}
	c.idx = newPlaceIndex(capV, len(c.servers))
	for _, s := range c.servers {
		if c.indexed(s) {
			c.idx.add(s.ID, c.headroom(s))
		}
	}
}
