package cluster

import (
	"testing"
	"testing/quick"

	"immersionoc/internal/vm"
)

func mkVM(id, vcores int, memGB float64) *vm.VM {
	return &vm.VM{ID: id, Type: vm.Type{Name: "t", VCores: vcores, MemoryGB: memGB}, AvgUtil: 0.4}
}

func TestPlaceAndRemove(t *testing.T) {
	c := New(TwoSocketBlade, Policy{}, 2)
	v := mkVM(1, 8, 32)
	s, err := c.Place(v)
	if err != nil {
		t.Fatal(err)
	}
	if s.VCoresUsed() != 8 || s.MemoryUsed() != 32 || s.VMs() != 1 {
		t.Fatalf("server state %d/%v/%d", s.VCoresUsed(), s.MemoryUsed(), s.VMs())
	}
	if err := c.Remove(v); err != nil {
		t.Fatal(err)
	}
	if s.VCoresUsed() != 0 || s.MemoryUsed() != 0 {
		t.Fatal("remove did not free resources")
	}
	if err := c.Remove(v); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestVCoreCapWithoutOversub(t *testing.T) {
	c := New(TwoSocketBlade, Policy{}, 1)
	if _, err := c.Place(mkVM(1, 48, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(mkVM(2, 2, 8)); err == nil {
		t.Fatal("placement beyond 1:1 vcore cap accepted")
	}
	if c.Rejected != 1 {
		t.Fatalf("rejected count %d", c.Rejected)
	}
}

func TestOversubscriptionCap(t *testing.T) {
	c := New(TwoSocketBlade, Policy{CPUOversubRatio: 0.25}, 1)
	if _, err := c.Place(mkVM(1, 48, 100)); err != nil {
		t.Fatal(err)
	}
	// 25% oversubscription allows 60 vcores total.
	if _, err := c.Place(mkVM(2, 12, 48)); err != nil {
		t.Fatalf("oversubscribed placement rejected: %v", err)
	}
	if _, err := c.Place(mkVM(3, 2, 8)); err == nil {
		t.Fatal("placement beyond oversubscription cap accepted")
	}
	st := c.Stats()
	if st.OversubscribedSrv != 1 {
		t.Fatalf("oversubscribed servers %d, want 1", st.OversubscribedSrv)
	}
}

func TestOversubRequiresOverclockable(t *testing.T) {
	c := New(AirBlade, Policy{CPUOversubRatio: 0.25}, 1)
	if _, err := c.Place(mkVM(1, 48, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(mkVM(2, 2, 8)); err == nil {
		t.Fatal("air-cooled server oversubscribed")
	}
}

func TestMemoryBound(t *testing.T) {
	c := New(TwoSocketBlade, Policy{}, 1)
	if _, err := c.Place(mkVM(1, 2, 384)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(mkVM(2, 2, 1)); err == nil {
		t.Fatal("placement beyond memory capacity accepted")
	}
}

func TestHighPerfNeedsHeadroom(t *testing.T) {
	c := New(TwoSocketBlade, Policy{CPUOversubRatio: 0.25}, 1)
	if _, err := c.Place(mkVM(1, 46, 100)); err != nil {
		t.Fatal(err)
	}
	hp := mkVM(2, 4, 16)
	hp.Class = vm.HighPerf
	// 46+4 = 50 > 48 pcores: a high-performance VM cannot share
	// oversubscribed cores.
	if _, err := c.Place(hp); err == nil {
		t.Fatal("high-perf VM placed into oversubscribed capacity")
	}
	reg := mkVM(3, 4, 16)
	if _, err := c.Place(reg); err != nil {
		t.Fatalf("regular VM should fit via oversubscription: %v", err)
	}
}

func TestHighPerfNeedsOverclockableServer(t *testing.T) {
	c := New(AirBlade, Policy{}, 1)
	hp := mkVM(1, 4, 16)
	hp.Class = vm.HighPerf
	if _, err := c.Place(hp); err == nil {
		t.Fatal("high-perf VM placed on non-overclockable server")
	}
}

func TestBestFitConsolidates(t *testing.T) {
	c := New(TwoSocketBlade, Policy{}, 3)
	c.Place(mkVM(1, 40, 100))
	c.Place(mkVM(2, 20, 60))
	// A 8-vcore VM fits on server 0 (40+8=48, exact) — best fit must
	// choose it over the emptier server 1.
	s, err := c.Place(mkVM(3, 8, 30))
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != 0 {
		t.Fatalf("best fit placed on server %d, want 0", s.ID)
	}
}

func TestReservedServersSkipped(t *testing.T) {
	c := New(TwoSocketBlade, Policy{BufferFraction: 0.5}, 2)
	st := c.Stats()
	if st.ReservedServers != 1 {
		t.Fatalf("reserved %d, want 1", st.ReservedServers)
	}
	if _, err := c.Place(mkVM(1, 48, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(mkVM(2, 48, 100)); err == nil {
		t.Fatal("normal placement used the reserved buffer")
	}
}

func TestFailAndRecoverWithBuffer(t *testing.T) {
	c := New(TwoSocketBlade, Policy{BufferFraction: 0.25}, 4)
	var placed []*vm.VM
	for i := 1; i <= 6; i++ {
		v := mkVM(i, 16, 64)
		if _, err := c.Place(v); err != nil {
			t.Fatal(err)
		}
		placed = append(placed, v)
	}
	displaced := c.FailServers(1)
	if len(displaced) == 0 {
		t.Fatal("failure displaced nothing")
	}
	recovered := c.Recover(displaced)
	if recovered != len(displaced) {
		t.Fatalf("recovered %d of %d with a reserved buffer", recovered, len(displaced))
	}
	st := c.Stats()
	if st.FailedServers != 1 {
		t.Fatalf("failed servers %d", st.FailedServers)
	}
}

func TestFailServersTargetsLoaded(t *testing.T) {
	c := New(TwoSocketBlade, Policy{}, 3)
	c.Place(mkVM(1, 16, 64))
	c.Place(mkVM(2, 16, 64))
	c.Place(mkVM(3, 16, 64)) // all consolidate onto server 0 (best fit)
	displaced := c.FailServers(1)
	if len(displaced) != 3 {
		t.Fatalf("displaced %d VMs, want 3 (most loaded server)", len(displaced))
	}
}

func TestSetOversubRatio(t *testing.T) {
	c := New(TwoSocketBlade, Policy{}, 1)
	c.Place(mkVM(1, 48, 100))
	if _, err := c.Place(mkVM(2, 4, 16)); err == nil {
		t.Fatal("1:1 fleet oversubscribed")
	}
	c.SetOversubRatio(0.25)
	if _, err := c.Place(mkVM(3, 4, 16)); err != nil {
		t.Fatalf("post-enable oversubscription rejected: %v", err)
	}
	c.SetOversubRatio(-1)
	if c.Policy.CPUOversubRatio != 0 {
		t.Fatal("negative ratio not clamped")
	}
}

func TestStatsDensity(t *testing.T) {
	c := New(TwoSocketBlade, Policy{CPUOversubRatio: 0.5}, 2)
	c.Place(mkVM(1, 48, 100))
	c.Place(mkVM(2, 24, 60))
	st := c.Stats()
	if st.PlacedVMs != 2 {
		t.Fatalf("placed %d", st.PlacedVMs)
	}
	want := 72.0 / 96.0
	if st.Density != want {
		t.Fatalf("density %v, want %v", st.Density, want)
	}
}

func TestInterferenceRisk(t *testing.T) {
	c := New(TwoSocketBlade, Policy{CPUOversubRatio: 0.5}, 1)
	hot := mkVM(1, 48, 100)
	hot.AvgUtil = 1.0
	c.Place(hot)
	hot2 := mkVM(2, 24, 60)
	hot2.AvgUtil = 1.0
	c.Place(hot2)
	// Demand 72 core-equivalents > 48 × 1.20 = 57.6 even overclocked.
	if got := c.InterferenceRisk(); got != 1 {
		t.Fatalf("interference risk %d, want 1", got)
	}
	// Low utilization: overclocking covers the oversubscription.
	c2 := New(TwoSocketBlade, Policy{CPUOversubRatio: 0.5}, 1)
	cold := mkVM(1, 48, 100)
	cold.AvgUtil = 0.3
	c2.Place(cold)
	cold2 := mkVM(2, 24, 60)
	cold2.AvgUtil = 0.3
	c2.Place(cold2)
	if got := c2.InterferenceRisk(); got != 0 {
		t.Fatalf("interference risk %d, want 0", got)
	}
}

func TestPackTraceConservesResources(t *testing.T) {
	f := func(seed uint64) bool {
		trace := vm.Generate(vm.TraceConfig{
			Seed: seed, ArrivalRatePerS: 0.02, DurationS: 6 * 3600,
			MeanLifetimeS: 3600, HighPerfFraction: 0.1,
		})
		c := New(TwoSocketBlade, Policy{CPUOversubRatio: 0.2}, 4)
		c.PackTrace(trace)
		for _, s := range c.Servers() {
			if s.VCoresUsed() < 0 || s.MemoryUsed() < -1e-9 {
				return false
			}
			if s.VCoresUsed() > int(float64(s.Spec.PCores)*1.2+0.5) {
				return false
			}
			if s.MemoryUsed() > s.Spec.MemoryGB+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPackTraceDeterministic(t *testing.T) {
	trace := vm.Generate(vm.TraceConfig{Seed: 5, ArrivalRatePerS: 0.02, DurationS: 6 * 3600, MeanLifetimeS: 3600})
	c1 := New(TwoSocketBlade, Policy{}, 4)
	d1, r1 := c1.PackTrace(trace)
	c2 := New(TwoSocketBlade, Policy{}, 4)
	d2, r2 := c2.PackTrace(trace)
	if d1 != d2 || r1 != r2 {
		t.Fatalf("pack trace not deterministic: %v/%d vs %v/%d", d1, r1, d2, r2)
	}
}

func TestPlanMigrationsRelievesOversubscription(t *testing.T) {
	c := New(TwoSocketBlade, Policy{CPUOversubRatio: 0.25}, 3)
	// Fill server 0 to 60/48 vcores (oversubscribed), leave 1 and 2
	// nearly empty.
	for i := 1; i <= 15; i++ {
		if _, err := c.Place(mkVM(i, 4, 16)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.OversubscribedSrv == 0 {
		t.Fatal("setup did not oversubscribe")
	}
	plan := c.PlanMigrations(10)
	if len(plan) == 0 {
		t.Fatal("no migrations planned")
	}
	moved := c.ApplyMigrations(plan)
	if moved != len(plan) {
		t.Fatalf("applied %d of %d", moved, len(plan))
	}
	if c.Stats().OversubscribedSrv != 0 {
		t.Fatal("oversubscription not cleared by migration")
	}
	// Resource conservation: total vcores unchanged.
	if got := c.Stats().VCoresAllocated; got != 60 {
		t.Fatalf("vcores after migration %d, want 60", got)
	}
}

func TestPlanMigrationsRespectsMaxMoves(t *testing.T) {
	c := New(TwoSocketBlade, Policy{CPUOversubRatio: 0.25}, 3)
	for i := 1; i <= 15; i++ {
		c.Place(mkVM(i, 4, 16))
	}
	plan := c.PlanMigrations(1)
	if len(plan) != 1 {
		t.Fatalf("plan size %d, want 1", len(plan))
	}
}

func TestPlanMigrationsNoDestination(t *testing.T) {
	c := New(TwoSocketBlade, Policy{CPUOversubRatio: 0.25}, 1)
	for i := 1; i <= 15; i++ {
		c.Place(mkVM(i, 4, 16))
	}
	if plan := c.PlanMigrations(10); len(plan) != 0 {
		t.Fatalf("planned %d moves with nowhere to go", len(plan))
	}
}

func TestPlanMigrationsIdempotentReservations(t *testing.T) {
	c := New(TwoSocketBlade, Policy{CPUOversubRatio: 0.25}, 3)
	for i := 1; i <= 15; i++ {
		c.Place(mkVM(i, 4, 16))
	}
	before := c.Stats().VCoresAllocated
	_ = c.PlanMigrations(10) // plan only, never applied
	if got := c.Stats().VCoresAllocated; got != before {
		t.Fatalf("planning leaked reservations: %d vs %d", got, before)
	}
}
