package cluster

import "immersionoc/internal/cow"

// Flat is a columnar, read-only export of per-server placement state:
// the fields the control-plane read path needs to answer
// filter/prioritize/status queries without touching the live Cluster.
// The ocd daemon publishes one Flat per mutation (inside a
// dcsim.FleetSnapshot) and serves reads from it lock-free.
//
// The per-server columns are chunked copy-on-write (internal/cow): an
// export chained off the previous published Flat re-materializes only
// the chunks whose servers changed since that publish and aliases the
// rest, so publishing after a one-VM placement costs O(dirty chunks),
// not O(fleet). Readers index columns through At(i); a published Flat
// and everything it references are immutable.
//
// Fleets are spec-uniform (New builds every server from one
// ServerSpec), so the spec and the policy-derived vcore cap are stored
// once instead of per server.
type Flat struct {
	// Servers is the fleet size (the length of every per-server column).
	Servers int
	// PlacedVMs and Density are the Stats() packing KPIs, read from the
	// cluster's incremental counters at export time.
	PlacedVMs int
	Density   float64

	// Spec is the (uniform) server hardware shape; OversubRatio the
	// policy's CPU oversubscription; VCoreCap the per-server vcore
	// allocation limit the two imply.
	Spec         ServerSpec
	OversubRatio float64
	VCoreCap     int

	// Per-server columns, indexed by dense fleet index via At(i).
	ID           cow.Col[int]
	VCoresUsed   cow.Col[int]
	VMs          cow.Col[int]
	MemoryUsedGB cow.Col[float64]
	DemandCores  cow.Col[float64]
	Failed       cow.Col[bool]
	Reserved     cow.Col[bool]
}

// vcoreCapSpec is vcoreCap for a bare spec (the per-server value is
// uniform across a fleet built by New).
func (c *Cluster) vcoreCapSpec(spec ServerSpec) int {
	capV := spec.PCores
	if c.Policy.CPUOversubRatio > 0 && spec.Overclockable {
		capV = int(float64(spec.PCores) * (1 + c.Policy.CPUOversubRatio))
	}
	return capV
}

// ExportFlat fills dst from the cluster's current state. When dst is
// the Flat produced by the previous export (the daemon chains each
// published view off its predecessor), only the chunks containing
// servers mutated since then are rebuilt; a fresh or foreign dst is
// materialized in full. The export is a pure read of placement state,
// so interleaving it with reads or between mutations cannot perturb a
// deterministic replay.
func (c *Cluster) ExportFlat(dst *Flat) {
	dst.Servers = len(c.servers)
	dst.Spec = c.Spec
	dst.OversubRatio = c.Policy.CPUOversubRatio
	dst.VCoreCap = c.vcoreCapSpec(c.Spec)
	dst.PlacedVMs = c.placedCount
	dst.Density = c.Density()

	srv := c.servers
	cow.Fill(c.track, &dst.ID, func(d []int, base int) {
		for j := range d {
			d[j] = srv[base+j].ID
		}
	})
	cow.Fill(c.track, &dst.VCoresUsed, func(d []int, base int) {
		for j := range d {
			d[j] = srv[base+j].vcoresUse
		}
	})
	cow.Fill(c.track, &dst.VMs, func(d []int, base int) {
		for j := range d {
			d[j] = len(srv[base+j].vms)
		}
	})
	cow.Fill(c.track, &dst.MemoryUsedGB, func(d []float64, base int) {
		for j := range d {
			d[j] = srv[base+j].memUse
		}
	})
	cow.Fill(c.track, &dst.DemandCores, func(d []float64, base int) {
		for j := range d {
			d[j] = srv[base+j].expDemand
		}
	})
	cow.Fill(c.track, &dst.Failed, func(d []bool, base int) {
		for j := range d {
			d[j] = srv[base+j].Failed
		}
	})
	cow.Fill(c.track, &dst.Reserved, func(d []bool, base int) {
		for j := range d {
			d[j] = srv[base+j].Reserved
		}
	})
	c.track.Advance()
}

// Explain mirrors Cluster.Explain over the flat export: the
// machine-readable reason server i cannot take a VM of the given
// shape, or "" when it fits. The returned strings are the same
// interned constants Explain returns, so callers building per-server
// failure lists never allocate a reason. Kept next to explain() so the
// two cannot drift; TestFlatExplainMatchesLive pins the equivalence.
func (f *Flat) Explain(i, vcores int, memoryGB float64, highPerf bool) string {
	if f.Failed.At(i) || f.Reserved.At(i) {
		return ReasonFailed
	}
	if f.MemoryUsedGB.At(i)+memoryGB > f.Spec.MemoryGB {
		return ReasonMemory
	}
	if f.VCoresUsed.At(i)+vcores > f.VCoreCap {
		return ReasonCapacity
	}
	if highPerf {
		if !f.Spec.Overclockable {
			return ReasonClass
		}
		if f.VCoresUsed.At(i)+vcores > f.Spec.PCores {
			return ReasonClass
		}
	}
	return ""
}
