package cluster

// Flat is a columnar, read-only export of per-server placement state:
// the slice of fields the control-plane read path needs to answer
// filter/prioritize/status queries without touching the live Cluster.
// The ocd daemon publishes one Flat per control step (inside a
// dcsim.FleetSnapshot) and serves reads from it lock-free, so the copy
// layout is flat slices — cheap to fill in one pass, cache-friendly to
// scan, and free of pointers back into mutable cluster state.
//
// Fleets are spec-uniform (New builds every server from one
// ServerSpec), so the spec and the policy-derived vcore cap are stored
// once instead of per server.
type Flat struct {
	// Servers is the fleet size (the length of every per-server slice).
	Servers int
	// PlacedVMs and Density are the Stats() packing KPIs, computed in
	// the same pass that fills the per-server columns.
	PlacedVMs int
	Density   float64

	// Spec is the (uniform) server hardware shape; OversubRatio the
	// policy's CPU oversubscription; VCoreCap the per-server vcore
	// allocation limit the two imply.
	Spec         ServerSpec
	OversubRatio float64
	VCoreCap     int

	// Per-server columns, indexed by dense fleet index.
	ID           []int
	VCoresUsed   []int
	VMs          []int
	MemoryUsedGB []float64
	DemandCores  []float64
	Failed       []bool
	Reserved     []bool
}

// vcoreCapSpec is vcoreCap for a bare spec (the per-server value is
// uniform across a fleet built by New).
func (c *Cluster) vcoreCapSpec(spec ServerSpec) int {
	capV := spec.PCores
	if c.Policy.CPUOversubRatio > 0 && spec.Overclockable {
		capV = int(float64(spec.PCores) * (1 + c.Policy.CPUOversubRatio))
	}
	return capV
}

// ExportFlat fills dst from the cluster's current state, reusing dst's
// slices when they are large enough. The export is a pure read: it
// does not touch placement state, so interleaving it with reads or
// between mutations cannot perturb a deterministic replay.
func (c *Cluster) ExportFlat(dst *Flat) {
	n := len(c.servers)
	dst.Servers = n
	dst.Spec = c.Spec
	dst.OversubRatio = c.Policy.CPUOversubRatio
	dst.VCoreCap = c.vcoreCapSpec(c.Spec)

	dst.ID = growInts(dst.ID, n)
	dst.VCoresUsed = growInts(dst.VCoresUsed, n)
	dst.VMs = growInts(dst.VMs, n)
	dst.MemoryUsedGB = growFloats(dst.MemoryUsedGB, n)
	dst.DemandCores = growFloats(dst.DemandCores, n)
	dst.Failed = growBools(dst.Failed, n)
	dst.Reserved = growBools(dst.Reserved, n)

	// One pass fills the columns and accumulates the Stats() packing
	// KPIs exactly as Stats computes them: failed servers contribute
	// nothing, density is allocated vcores per non-failed pcore.
	placed, vcores, pcores := 0, 0, 0
	for i, s := range c.servers {
		dst.ID[i] = s.ID
		dst.VCoresUsed[i] = s.vcoresUse
		dst.VMs[i] = len(s.vms)
		dst.MemoryUsedGB[i] = s.memUse
		dst.DemandCores[i] = s.expDemand
		dst.Failed[i] = s.Failed
		dst.Reserved[i] = s.Reserved
		if s.Failed {
			continue
		}
		pcores += s.Spec.PCores
		vcores += s.vcoresUse
		placed += len(s.vms)
	}
	dst.PlacedVMs = placed
	dst.Density = 0
	if pcores > 0 {
		dst.Density = float64(vcores) / float64(pcores)
	}
}

// Explain mirrors Cluster.Explain over the flat export: the
// machine-readable reason server i cannot take a VM of the given
// shape, or "" when it fits. The returned strings are the same
// interned constants Explain returns, so callers building per-server
// failure lists never allocate a reason. Kept next to explain() so the
// two cannot drift; TestFlatExplainMatchesLive pins the equivalence.
func (f *Flat) Explain(i, vcores int, memoryGB float64, highPerf bool) string {
	if f.Failed[i] || f.Reserved[i] {
		return ReasonFailed
	}
	if f.MemoryUsedGB[i]+memoryGB > f.Spec.MemoryGB {
		return ReasonMemory
	}
	if f.VCoresUsed[i]+vcores > f.VCoreCap {
		return ReasonCapacity
	}
	if highPerf {
		if !f.Spec.Overclockable {
			return ReasonClass
		}
		if f.VCoresUsed[i]+vcores > f.Spec.PCores {
			return ReasonClass
		}
	}
	return ""
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
