package cluster

// Randomized equivalence of the incrementally maintained per-server
// expected demand against a from-scratch recompute, plus the ordering
// invariants of the sorted VM storage the allocation-free iteration
// path relies on.

import (
	"math"
	"testing"
	"testing/quick"

	"immersionoc/internal/rng"
	"immersionoc/internal/vm"
)

// naiveDemand recomputes Σ vcores·AvgUtil from the VM list, the way
// the pre-optimization control loop derived demand every step.
func naiveDemand(s *Server) float64 {
	var d float64
	for _, v := range s.VMsList() {
		d += float64(v.Type.VCores) * v.AvgUtil
	}
	return d
}

func TestExpectedDemandMatchesRecompute(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := New(TwoSocketBlade, Policy{CPUOversubRatio: 0.5}, 6)
		var placed []*vm.VM
		nextID := 1
		for op := 0; op < 400; op++ {
			if r.Intn(3) > 0 || len(placed) == 0 { // bias toward placing
				v := &vm.VM{
					ID:      nextID,
					Type:    vm.Type{Name: "q", VCores: 1 + r.Intn(12), MemoryGB: 2},
					AvgUtil: 0.01 + 0.98*r.Float64(),
				}
				nextID++
				if _, err := c.Place(v); err == nil {
					placed = append(placed, v)
				}
			} else {
				i := r.Intn(len(placed))
				if err := c.Remove(placed[i]); err != nil {
					return false
				}
				placed[i] = placed[len(placed)-1]
				placed = placed[:len(placed)-1]
			}
			for _, s := range c.Servers() {
				want := naiveDemand(s)
				got := s.ExpectedDemand()
				if s.VMs() == 0 {
					// A drained server must reset exactly, not carry
					// accumulated floating-point residue.
					if got != 0 {
						t.Logf("seed %d: drained server %d demand %v", seed, s.ID, got)
						return false
					}
					continue
				}
				if math.Abs(got-want) > 1e-9*math.Max(1, want) {
					t.Logf("seed %d: server %d incremental %v vs recompute %v", seed, s.ID, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestVMOrderingInvariants checks that the sorted-slice VM storage
// keeps ID order under randomized churn and that the allocation-free
// ForEachVM walks the same sequence VMsList copies out.
func TestVMOrderingInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := New(TwoSocketBlade, Policy{CPUOversubRatio: 1.0}, 2)
		var placed []*vm.VM
		nextID := 1
		for op := 0; op < 200; op++ {
			if r.Intn(3) > 0 || len(placed) == 0 {
				v := &vm.VM{ID: nextID, Type: vm.Type{Name: "q", VCores: 1, MemoryGB: 1}, AvgUtil: 0.5}
				nextID++
				if _, err := c.Place(v); err == nil {
					placed = append(placed, v)
				}
			} else {
				i := r.Intn(len(placed))
				if err := c.Remove(placed[i]); err != nil {
					return false
				}
				placed[i] = placed[len(placed)-1]
				placed = placed[:len(placed)-1]
			}
		}
		for _, s := range c.Servers() {
			list := s.VMsList()
			for i := 1; i < len(list); i++ {
				if list[i-1].ID >= list[i].ID {
					return false
				}
			}
			i := 0
			ok := true
			s.ForEachVM(func(v *vm.VM) {
				if i >= len(list) || list[i] != v {
					ok = false
				}
				i++
			})
			if !ok || i != len(list) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
