package cluster

import (
	"math/rand"
	"testing"

	"immersionoc/internal/vm"
)

// TestFlatExplainMatchesLive pins Flat.Explain to Cluster.Explain over
// randomized placement churn: after every mutation batch the export is
// refreshed and every (server, probe-VM) pair must yield the same
// reason string — including the same interned constant, checked by
// value — plus the same Stats-derived packing KPIs.
func TestFlatExplainMatchesLive(t *testing.T) {
	c := New(TwoSocketBlade, Policy{CPUOversubRatio: 0.25, BufferFraction: 0.1}, 40)
	rng := rand.New(rand.NewSource(9))
	probes := []*vm.VM{
		{ID: -1, Type: vm.Size2, Class: vm.Regular},
		{ID: -2, Type: vm.Size8, Class: vm.HighPerf},
		{ID: -3, Type: vm.Size16, Class: vm.Regular},
		{ID: -4, Type: vm.Size16, Class: vm.HighPerf},
	}
	sizes := []vm.Type{vm.Size2, vm.Size4, vm.Size8, vm.Size16}

	var flat Flat
	var live []*vm.VM
	nextID := 0
	for round := 0; round < 30; round++ {
		for i := 0; i < 25; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				j := rng.Intn(len(live))
				if err := c.Remove(live[j]); err != nil {
					t.Fatalf("remove: %v", err)
				}
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			class := vm.Regular
			if rng.Intn(4) == 0 {
				class = vm.HighPerf
			}
			v := &vm.VM{ID: nextID, Type: sizes[rng.Intn(len(sizes))], Class: class, AvgUtil: 0.5}
			nextID++
			if _, err := c.Place(v); err == nil {
				live = append(live, v)
			}
		}
		if round == 15 {
			// A mid-test failure batch exercises the Failed column;
			// displaced VMs are gone from the cluster, so drop them
			// from the live set too.
			gone := map[int]bool{}
			for _, v := range c.FailServers(3) {
				gone[v.ID] = true
			}
			kept := live[:0]
			for _, v := range live {
				if !gone[v.ID] {
					kept = append(kept, v)
				}
			}
			live = kept
		}

		c.ExportFlat(&flat)
		if flat.Servers != len(c.Servers()) {
			t.Fatalf("round %d: Servers = %d, want %d", round, flat.Servers, len(c.Servers()))
		}
		st := c.Stats()
		if flat.PlacedVMs != st.PlacedVMs || flat.Density != st.Density {
			t.Fatalf("round %d: flat KPIs (%d, %v) != Stats (%d, %v)",
				round, flat.PlacedVMs, flat.Density, st.PlacedVMs, st.Density)
		}
		for i, s := range c.Servers() {
			if flat.ID.At(i) != s.ID || flat.VCoresUsed.At(i) != s.VCoresUsed() ||
				flat.VMs.At(i) != s.VMs() || flat.MemoryUsedGB.At(i) != s.MemoryUsed() ||
				flat.DemandCores.At(i) != s.ExpectedDemand() {
				t.Fatalf("round %d server %d: column mismatch", round, i)
			}
			for _, p := range probes {
				want := c.Explain(s, p)
				got := flat.Explain(i, p.Type.VCores, p.Type.MemoryGB, p.Class == vm.HighPerf)
				if got != want {
					t.Fatalf("round %d server %d probe %s: Explain %q, flat %q",
						round, i, p.Type.Name, want, got)
				}
			}
		}
	}
}

// TestFlatExportSharesCleanChunks checks the COW contract: a clean
// re-export into the chained destination allocates nothing and keeps
// every chunk shared; after one placement, only the dirty chunk is
// re-materialized while the rest stay aliased.
func TestFlatExportSharesCleanChunks(t *testing.T) {
	c := New(TwoSocketBlade, Policy{}, 5000)
	c.SetExportChunkShift(10) // 5 chunks of 1024, last short
	var flat Flat
	c.ExportFlat(&flat)
	before := make([][]int, flat.ID.NumChunks())
	for i := range before {
		before[i] = flat.ID.Chunk(i)
	}
	if n := testing.AllocsPerRun(50, func() { c.ExportFlat(&flat) }); n != 0 {
		t.Fatalf("clean re-export allocated %v times per run, want 0", n)
	}
	for i := range before {
		if &flat.ID.Chunk(i)[0] != &before[i][0] {
			t.Fatalf("clean re-export replaced chunk %d", i)
		}
	}

	// One placement on server 0 dirties chunk 0 of every column; the
	// other chunks stay shared with the previous view.
	v := &vm.VM{ID: 1, Type: vm.Size4, AvgUtil: 0.5}
	if _, err := c.Place(v); err != nil {
		t.Fatal(err)
	}
	prev := flat
	c.ExportFlat(&flat)
	if &flat.VCoresUsed.Chunk(0)[0] == &prev.VCoresUsed.Chunk(0)[0] {
		t.Fatalf("dirty chunk 0 was not re-materialized")
	}
	for i := 1; i < flat.VCoresUsed.NumChunks(); i++ {
		if &flat.VCoresUsed.Chunk(i)[0] != &prev.VCoresUsed.Chunk(i)[0] {
			t.Fatalf("clean chunk %d was re-materialized", i)
		}
	}
	if prev.VCoresUsed.At(0) != 0 || flat.VCoresUsed.At(0) != v.Type.VCores {
		t.Fatalf("published view mutated: prev %d, new %d", prev.VCoresUsed.At(0), flat.VCoresUsed.At(0))
	}
}

// TestIncrementalKPIsMatchStats is the incremental-vs-recompute
// differential for the packing KPIs: after randomized churn — places,
// removes, failures, migrations, policy flips — the O(1) PlacedVMs and
// Density reads must equal the Stats() fleet scan bit for bit.
func TestIncrementalKPIsMatchStats(t *testing.T) {
	c := New(TwoSocketBlade, Policy{CPUOversubRatio: 0.25, BufferFraction: 0.1}, 60)
	rng := rand.New(rand.NewSource(17))
	sizes := []vm.Type{vm.Size2, vm.Size4, vm.Size8, vm.Size16}
	var live []*vm.VM
	nextID := 0
	check := func(stage string) {
		t.Helper()
		st := c.Stats()
		if c.PlacedVMs() != st.PlacedVMs {
			t.Fatalf("%s: PlacedVMs %d != Stats %d", stage, c.PlacedVMs(), st.PlacedVMs)
		}
		if c.Density() != st.Density {
			t.Fatalf("%s: Density %v != Stats %v", stage, c.Density(), st.Density)
		}
	}
	check("fresh")
	for round := 0; round < 40; round++ {
		for i := 0; i < 20; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				j := rng.Intn(len(live))
				if err := c.Remove(live[j]); err != nil {
					t.Fatalf("remove: %v", err)
				}
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			v := &vm.VM{ID: nextID, Type: sizes[rng.Intn(len(sizes))], AvgUtil: 0.6}
			nextID++
			if _, err := c.Place(v); err == nil {
				live = append(live, v)
			}
		}
		switch round {
		case 10:
			gone := map[int]bool{}
			for _, v := range c.FailServers(4) {
				gone[v.ID] = true
			}
			kept := live[:0]
			for _, v := range live {
				if !gone[v.ID] {
					kept = append(kept, v)
				}
			}
			live = kept
		case 20:
			c.SetOversubRatio(0)
			c.ApplyMigrations(c.PlanMigrations(8))
		case 30:
			c.SetOversubRatio(0.25)
		}
		check("round")
	}
}
