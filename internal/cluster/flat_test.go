package cluster

import (
	"math/rand"
	"testing"

	"immersionoc/internal/vm"
)

// TestFlatExplainMatchesLive pins Flat.Explain to Cluster.Explain over
// randomized placement churn: after every mutation batch the export is
// refreshed and every (server, probe-VM) pair must yield the same
// reason string — including the same interned constant, checked by
// value — plus the same Stats-derived packing KPIs.
func TestFlatExplainMatchesLive(t *testing.T) {
	c := New(TwoSocketBlade, Policy{CPUOversubRatio: 0.25, BufferFraction: 0.1}, 40)
	rng := rand.New(rand.NewSource(9))
	probes := []*vm.VM{
		{ID: -1, Type: vm.Size2, Class: vm.Regular},
		{ID: -2, Type: vm.Size8, Class: vm.HighPerf},
		{ID: -3, Type: vm.Size16, Class: vm.Regular},
		{ID: -4, Type: vm.Size16, Class: vm.HighPerf},
	}
	sizes := []vm.Type{vm.Size2, vm.Size4, vm.Size8, vm.Size16}

	var flat Flat
	var live []*vm.VM
	nextID := 0
	for round := 0; round < 30; round++ {
		for i := 0; i < 25; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				j := rng.Intn(len(live))
				if err := c.Remove(live[j]); err != nil {
					t.Fatalf("remove: %v", err)
				}
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			class := vm.Regular
			if rng.Intn(4) == 0 {
				class = vm.HighPerf
			}
			v := &vm.VM{ID: nextID, Type: sizes[rng.Intn(len(sizes))], Class: class, AvgUtil: 0.5}
			nextID++
			if _, err := c.Place(v); err == nil {
				live = append(live, v)
			}
		}
		if round == 15 {
			// A mid-test failure batch exercises the Failed column;
			// displaced VMs are gone from the cluster, so drop them
			// from the live set too.
			gone := map[int]bool{}
			for _, v := range c.FailServers(3) {
				gone[v.ID] = true
			}
			kept := live[:0]
			for _, v := range live {
				if !gone[v.ID] {
					kept = append(kept, v)
				}
			}
			live = kept
		}

		c.ExportFlat(&flat)
		if flat.Servers != len(c.Servers()) {
			t.Fatalf("round %d: Servers = %d, want %d", round, flat.Servers, len(c.Servers()))
		}
		st := c.Stats()
		if flat.PlacedVMs != st.PlacedVMs || flat.Density != st.Density {
			t.Fatalf("round %d: flat KPIs (%d, %v) != Stats (%d, %v)",
				round, flat.PlacedVMs, flat.Density, st.PlacedVMs, st.Density)
		}
		for i, s := range c.Servers() {
			if flat.ID[i] != s.ID || flat.VCoresUsed[i] != s.VCoresUsed() ||
				flat.VMs[i] != s.VMs() || flat.MemoryUsedGB[i] != s.MemoryUsed() ||
				flat.DemandCores[i] != s.ExpectedDemand() {
				t.Fatalf("round %d server %d: column mismatch", round, i)
			}
			for _, p := range probes {
				want := c.Explain(s, p)
				got := flat.Explain(i, p.Type.VCores, p.Type.MemoryGB, p.Class == vm.HighPerf)
				if got != want {
					t.Fatalf("round %d server %d probe %s: Explain %q, flat %q",
						round, i, p.Type.Name, want, got)
				}
			}
		}
	}
}

// TestFlatExportReusesSlices checks the fill-in-place contract: a
// second export into the same destination must not reallocate the
// per-server columns.
func TestFlatExportReusesSlices(t *testing.T) {
	c := New(TwoSocketBlade, Policy{}, 16)
	var flat Flat
	c.ExportFlat(&flat)
	before := &flat.ID[0]
	if n := testing.AllocsPerRun(50, func() { c.ExportFlat(&flat) }); n != 0 {
		t.Fatalf("re-export allocated %v times per run, want 0", n)
	}
	if &flat.ID[0] != before {
		t.Fatalf("re-export replaced the ID column backing array")
	}
}
