package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"immersionoc/internal/vm"
)

// linearBestFit is the pre-index placement scan, kept verbatim as the
// reference implementation: best-fit on remaining vcores, ties to the
// lowest server ID.
func linearBestFit(c *Cluster, v *vm.VM) *Server {
	var best *Server
	bestLeft := 1 << 30
	for _, s := range c.servers {
		if !c.fits(s, v, false) {
			continue
		}
		left := c.vcoreCap(s) - s.vcoresUse - v.Type.VCores
		if left < bestLeft || (left == bestLeft && best != nil && s.ID < best.ID) {
			best, bestLeft = s, left
		}
	}
	return best
}

func randomVM(rng *rand.Rand, id int) *vm.VM {
	sizes := []int{2, 4, 8, 16}
	vc := sizes[rng.Intn(len(sizes))]
	class := vm.Regular
	if rng.Float64() < 0.1 {
		class = vm.HighPerf
	}
	return &vm.VM{
		ID:      id,
		Type:    vm.Type{VCores: vc, MemoryGB: float64(vc) * 4},
		Class:   class,
		AvgUtil: 0.2 + 0.6*rng.Float64(),
	}
}

// TestIndexedPlacementMatchesLinear drives a randomized
// place/remove/fail/oversub-flip sequence and checks, before every
// placement, that the index picks exactly the server the linear
// best-fit scan would.
func TestIndexedPlacementMatchesLinear(t *testing.T) {
	for _, spec := range []ServerSpec{TwoSocketBlade, AirBlade} {
		rng := rand.New(rand.NewSource(42))
		c := New(spec, Policy{CPUOversubRatio: 0.25}, 64)
		var live []*vm.VM
		nextID := 1
		for op := 0; op < 5000; op++ {
			switch p := rng.Float64(); {
			case p < 0.55 || len(live) == 0:
				v := randomVM(rng, nextID)
				nextID++
				want := linearBestFit(c, v)
				got, err := c.Place(v)
				if want == nil {
					if err == nil {
						t.Fatalf("op %d: index placed VM %d on %d, linear scan found no fit", op, v.ID, got.ID)
					}
					continue
				}
				if err != nil {
					t.Fatalf("op %d: linear scan fits VM %d on %d, index rejected: %v", op, v.ID, want.ID, err)
				}
				if got.ID != want.ID {
					t.Fatalf("op %d: VM %d placed on %d, linear best-fit is %d", op, v.ID, got.ID, want.ID)
				}
				live = append(live, v)
			case p < 0.90:
				i := rng.Intn(len(live))
				v := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				if err := c.Remove(v); err != nil {
					t.Fatalf("op %d: remove VM %d: %v", op, v.ID, err)
				}
			case p < 0.95:
				displaced := c.FailServers(1)
				for _, v := range displaced {
					for i, lv := range live {
						if lv.ID == v.ID {
							live[i] = live[len(live)-1]
							live = live[:len(live)-1]
							break
						}
					}
				}
			default:
				ratios := []float64{0, 0.20, 0.25, 0.5}
				c.SetOversubRatio(ratios[rng.Intn(len(ratios))])
			}
		}
		// The maintained index must equal a from-scratch rebuild.
		maintained := c.idx
		c.rebuildIndex()
		if maintained.capV != c.idx.capV || !reflect.DeepEqual(maintained.counts, c.idx.counts) {
			t.Fatalf("spec %+v: maintained index counts diverged from rebuild", spec)
		}
		for r := 0; r <= c.idx.capV; r++ {
			mb, rb := maintained.buckets[r], c.idx.buckets[r]
			for w := 0; w < c.idx.words; w++ {
				var mv, rv uint64
				if mb != nil {
					mv = mb[w]
				}
				if rb != nil {
					rv = rb[w]
				}
				if mv != rv {
					t.Fatalf("spec %+v: bucket %d word %d: maintained %x, rebuilt %x", spec, r, w, mv, rv)
				}
			}
		}
	}
}

// TestIndexSurvivesMigrations checks index maintenance through the
// plan/apply migration path, which moves VMs without going through
// Place/Remove.
func TestIndexSurvivesMigrations(t *testing.T) {
	c := New(TwoSocketBlade, Policy{CPUOversubRatio: 0.5}, 8)
	rng := rand.New(rand.NewSource(7))
	for id := 1; id <= 60; id++ {
		if _, err := c.Place(randomVM(rng, id)); err != nil {
			break
		}
	}
	c.SetOversubRatio(0.25)
	plan := c.PlanMigrations(16)
	if len(plan) == 0 {
		t.Fatal("expected a non-empty migration plan from an oversubscribed fleet")
	}
	c.ApplyMigrations(plan)
	maintained := c.idx
	c.rebuildIndex()
	if !reflect.DeepEqual(maintained.counts, c.idx.counts) {
		t.Fatalf("index counts diverged after migrations: %v vs %v", maintained.counts, c.idx.counts)
	}
}
