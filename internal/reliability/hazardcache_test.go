package reliability

// Accuracy contract of the quantized hazard cache: exact on grid
// nodes, within 1e-9 relative error between them, and wear accounting
// through a cached meter indistinguishable (at that tolerance) from
// the exact-model path.

import (
	"math"
	"testing"
	"testing/quick"
)

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// exactRates mirrors the split the cache serves: utilization-scaled
// hazard (oxide + electromigration) and cycling hazard.
func exactRates(m LifetimeModel, c Condition) (float64, float64) {
	return m.OxideHazardRate(c) + m.EMHazardRate(c), m.CyclingHazardRate(c)
}

func TestHazardCacheExactOnGridNodes(t *testing.T) {
	m := Composite5nm
	hc := NewHazardCache(m)
	// Any TjMax/TjMin that is an integer multiple of the grid step
	// (1/8192 °C — in particular every value with a short binary
	// fraction, like 41.25) must be served exactly, bit for bit.
	for _, c := range []Condition{
		{VoltageV: 0.90, TjMaxC: 66, TjMinC: 50},
		{VoltageV: 1.05, TjMaxC: 74, TjMinC: 50},
		{VoltageV: 0.95, TjMaxC: 85.5, TjMinC: 41.25},
		{VoltageV: 1.00, TjMaxC: 90 + 3.0/8192, TjMinC: 50 + 1.0/8192},
	} {
		us, cyc := hc.Rates(c)
		wantUS, wantCyc := exactRates(m, c)
		if us != wantUS || cyc != wantCyc {
			t.Errorf("condition %+v: cache (%v, %v) != exact (%v, %v)", c, us, cyc, wantUS, wantCyc)
		}
	}
}

func TestHazardCacheToleranceWithinBucket(t *testing.T) {
	m := Composite5nm
	hc := NewHazardCache(m)
	f := func(seed int64) bool {
		// Spread arbitrary conditions across the operating range,
		// deliberately off-grid.
		u := math.Abs(math.Sin(float64(seed)))
		v := 0.80 + 0.30*u
		tjMax := 35 + 75*math.Abs(math.Sin(float64(seed)*1.7))
		dt := 4 + 60*math.Abs(math.Sin(float64(seed)*2.3))
		c := Condition{VoltageV: v, TjMaxC: tjMax, TjMinC: tjMax - dt}
		us, cyc := hc.Rates(c)
		wantUS, wantCyc := exactRates(m, c)
		if relErr(us, wantUS) > 1e-9 {
			t.Logf("util-scaled hazard at %+v: rel err %v", c, relErr(us, wantUS))
			return false
		}
		if relErr(cyc, wantCyc) > 1e-9 {
			t.Logf("cycling hazard at %+v: rel err %v", c, relErr(cyc, wantCyc))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWearMeterCachedMatchesExact(t *testing.T) {
	m := Composite5nm
	cached := NewWearMeter(m, ServiceLifeYears)
	cached.SetHazardCache(NewHazardCache(m))
	exact := NewWearMeter(m, ServiceLifeYears)
	conds := []Condition{
		{VoltageV: 0.90, TjMaxC: 66.113, TjMinC: 50.004},
		{VoltageV: 1.05, TjMaxC: 74.77, TjMinC: 50.004},
		{VoltageV: 0.90, TjMaxC: 60.25, TjMinC: 48},
	}
	for i := 0; i < 3000; i++ {
		c := conds[i%len(conds)]
		u := float64(i%11) / 10
		cached.Accrue(c, 1.0/12, u)
		exact.Accrue(c, 1.0/12, u)
	}
	if relErr(cached.Used(), exact.Used()) > 1e-9 {
		t.Fatalf("cached wear %v vs exact %v (rel err %v)", cached.Used(), exact.Used(), relErr(cached.Used(), exact.Used()))
	}
	if cached.Hours() != exact.Hours() {
		t.Fatalf("hours diverged: %v vs %v", cached.Hours(), exact.Hours())
	}
}

func TestSetHazardCacheRejectsForeignModel(t *testing.T) {
	other := Composite5nm
	other.OxideHazard *= 2
	w := NewWearMeter(Composite5nm, ServiceLifeYears)
	defer func() {
		if recover() == nil {
			t.Fatal("attaching a cache built for a different model should panic")
		}
	}()
	w.SetHazardCache(NewHazardCache(other))
}
