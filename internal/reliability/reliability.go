// Package reliability models component lifetime and computational
// stability under overclocking.
//
// Lifetime follows the structure of the paper's 5nm composite foundry
// model (Table IV): three competing, time-dependent degradation
// processes —
//
//   - gate oxide breakdown, accelerated by voltage and temperature
//     (with the non-Arrhenius high-temperature acceleration reported by
//     DiMaria & Stathis),
//   - electromigration, accelerated by temperature (Black's equation),
//   - thermal cycling, accelerated by the temperature swing ΔTj
//     (Coffin–Manson),
//
// combined as a sum of hazards. The parameters are calibrated so the
// model reproduces all six (cooling, overclock) → lifetime points of
// Table V: air nominal 5 y, air overclocked < 1 y, FC-3284 nominal
// > 10 y / overclocked ≈ 4 y, HFE-7000 nominal > 10 y / overclocked
// ≈ 5 y.
//
// The package also provides wear accounting ("lifetime credit" for
// moderately utilized servers, §IV) and a correctable-error stability
// model reflecting the paper's six-month error logs.
package reliability

import (
	"errors"
	"fmt"
	"math"
)

// Condition describes a sustained operating condition of a processor.
type Condition struct {
	// VoltageV is the core supply voltage.
	VoltageV float64
	// TjMaxC is the peak junction temperature under load.
	TjMaxC float64
	// TjMinC is the low end of the junction temperature range (idle
	// temperature; room ambient for air, bath temperature for
	// immersion).
	TjMinC float64
}

// DeltaT returns the thermal cycling swing in °C.
func (c Condition) DeltaT() float64 { return c.TjMaxC - c.TjMinC }

// Validate checks the condition for physical plausibility.
func (c Condition) Validate() error {
	if c.VoltageV <= 0 {
		return errors.New("reliability: non-positive voltage")
	}
	if c.TjMaxC < c.TjMinC {
		return fmt.Errorf("reliability: TjMax %.1f below TjMin %.1f", c.TjMaxC, c.TjMinC)
	}
	return nil
}

// LifetimeModel is the composite degradation model. Hazards are
// expressed in 1/years relative to a reference condition; lifetime is
// the inverse of the summed hazard.
type LifetimeModel struct {
	// Reference condition at which the hazard shares below apply
	// (the paper's air-cooled nominal server: 0.90 V, Tj 85 °C,
	// cycling 20–85 °C, 5-year lifetime).
	RefVoltageV float64
	RefTjC      float64
	RefDeltaTC  float64

	// OxideHazard, EMHazard, CyclingHazard are the per-process
	// hazard rates (1/years) at the reference condition. Their sum
	// is 1/(reference lifetime).
	OxideHazard, EMHazard, CyclingHazard float64

	// GammaPerV is the exponential voltage acceleration of oxide
	// breakdown (1/V).
	GammaPerV float64
	// OxideEaOverKK is Ea/k for oxide breakdown in kelvin.
	OxideEaOverKK float64
	// OxideKneeC and OxideKneeSlope model the super-Arrhenius
	// acceleration above the knee temperature (DiMaria & Stathis):
	// the oxide hazard is multiplied by exp(slope·(Tj-knee)) for
	// Tj above the knee.
	OxideKneeC     float64
	OxideKneeSlope float64
	// EMEaOverKK is Ea/k for electromigration in kelvin.
	EMEaOverKK float64
	// CyclingExp is the Coffin–Manson exponent on ΔTj.
	CyclingExp float64
}

// Composite5nm is the calibrated model reproducing Table V.
var Composite5nm = LifetimeModel{
	RefVoltageV:    0.90,
	RefTjC:         85,
	RefDeltaTC:     65,
	OxideHazard:    0.10,
	EMHazard:       0.04,
	CyclingHazard:  0.06,
	GammaPerV:      12.8,
	OxideEaOverKK:  1841,  // Ea ≈ 0.16 eV effective in the operating range
	OxideKneeC:     85,    // super-Arrhenius acceleration past 85 °C
	OxideKneeSlope: 0.06,  // per °C above the knee
	EMEaOverKK:     10445, // Ea ≈ 0.90 eV
	CyclingExp:     2.5,
}

func kelvin(c float64) float64 { return c + 273.15 }

// OxideHazardRate returns the gate-oxide-breakdown hazard (1/years)
// under condition c.
func (m LifetimeModel) OxideHazardRate(c Condition) float64 {
	h := m.OxideHazard
	h *= math.Exp(m.GammaPerV * (c.VoltageV - m.RefVoltageV))
	h *= math.Exp(m.OxideEaOverKK * (1/kelvin(m.RefTjC) - 1/kelvin(c.TjMaxC)))
	if c.TjMaxC > m.OxideKneeC {
		h *= math.Exp(m.OxideKneeSlope * (c.TjMaxC - m.OxideKneeC))
	}
	return h
}

// EMHazardRate returns the electromigration hazard (1/years) under
// condition c.
func (m LifetimeModel) EMHazardRate(c Condition) float64 {
	return m.EMHazard * math.Exp(m.EMEaOverKK*(1/kelvin(m.RefTjC)-1/kelvin(c.TjMaxC)))
}

// CyclingHazardRate returns the thermal cycling hazard (1/years) under
// condition c.
func (m LifetimeModel) CyclingHazardRate(c Condition) float64 {
	dt := c.DeltaT()
	if dt <= 0 {
		return 0
	}
	return m.CyclingHazard * math.Pow(dt/m.RefDeltaTC, m.CyclingExp)
}

// TotalHazard returns the summed hazard (1/years) under condition c.
func (m LifetimeModel) TotalHazard(c Condition) float64 {
	return m.OxideHazardRate(c) + m.EMHazardRate(c) + m.CyclingHazardRate(c)
}

// Lifetime returns the projected lifetime in years under sustained
// worst-case utilization at condition c.
func (m LifetimeModel) Lifetime(c Condition) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	h := m.TotalHazard(c)
	if h <= 0 {
		return math.Inf(1), nil
	}
	return 1 / h, nil
}

// Breakdown reports the share of total wear attributable to each
// process under condition c.
type Breakdown struct {
	Oxide, Electromigration, Cycling float64
}

// HazardBreakdown returns per-process hazard shares (summing to 1).
func (m LifetimeModel) HazardBreakdown(c Condition) Breakdown {
	ox := m.OxideHazardRate(c)
	em := m.EMHazardRate(c)
	tc := m.CyclingHazardRate(c)
	total := ox + em + tc
	if total <= 0 {
		return Breakdown{}
	}
	return Breakdown{Oxide: ox / total, Electromigration: em / total, Cycling: tc / total}
}

// ServiceLifeYears is the useful server lifetime providers plan for
// before decommissioning (§IV: "~5 years").
const ServiceLifeYears = 5.0

// MeetsServiceLife reports whether condition c sustains at least the
// standard service life.
func (m LifetimeModel) MeetsServiceLife(c Condition) bool {
	l, err := m.Lifetime(c)
	return err == nil && l >= ServiceLifeYears-1e-9
}

// MaxVoltageForLifetime returns the highest voltage (searching between
// lo and hi) at which the lifetime under the given temperatures still
// meets targetYears. Returns an error when even lo fails.
func (m LifetimeModel) MaxVoltageForLifetime(targetYears, lo, hi, tjMaxC, tjMinC float64) (float64, error) {
	check := func(v float64) bool {
		l, err := m.Lifetime(Condition{VoltageV: v, TjMaxC: tjMaxC, TjMinC: tjMinC})
		return err == nil && l >= targetYears
	}
	if !check(lo) {
		return 0, fmt.Errorf("reliability: lifetime target %.1fy unreachable even at %.2fV", targetYears, lo)
	}
	if check(hi) {
		return hi, nil
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if check(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// DefaultHazardGridC is the HazardCache quantization step in °C. At
// 1/8192 °C the linear interpolation between grid nodes is within
// 1e-9 relative error of the exact hazard throughout the operating
// range (the steepest log-derivative of the cached curves is the
// electromigration Arrhenius term, ~0.08 / °C, and the Coffin–Manson
// curvature at small ΔTj), and exact on the nodes themselves.
const DefaultHazardGridC = 1.0 / 8192

// hazardNode keys the utilization-scaled hazard grid: supply voltage
// plus the quantized TjMax grid index.
type hazardNode struct {
	v float64
	i int64
}

// hazardMemo is one entry of the cache's exact-condition fast path.
type hazardMemo struct {
	cond        Condition
	ok          bool
	util, cycle float64
}

// HazardCache memoizes a LifetimeModel's hazard rates on a quantized
// temperature grid so fleet-scale wear accounting amortizes the
// Arrhenius / Coffin–Manson exponentials across components sharing
// operating conditions. Two curves are cached independently: the
// utilization-scaled hazard (gate oxide + electromigration, a function
// of voltage and TjMax) and the cycling hazard (a function of ΔTj
// alone). Queries linearly interpolate between adjacent grid nodes —
// exact when the temperature lands on a node, within ~1e-9 relative
// error elsewhere — and a two-entry exact-condition memo in front of
// the grid makes repeated fleet sweeps over a handful of distinct
// conditions (per-tank bath × nominal/overclocked) nearly free.
//
// A HazardCache is not safe for concurrent use.
type HazardCache struct {
	model   LifetimeModel
	invStep float64
	util    map[hazardNode]float64
	cycle   map[int64]float64
	memo    [2]hazardMemo
}

// NewHazardCache returns a cache over m with the default grid step.
func NewHazardCache(m LifetimeModel) *HazardCache {
	return &HazardCache{
		model:   m,
		invStep: 1 / DefaultHazardGridC,
		util:    make(map[hazardNode]float64),
		cycle:   make(map[int64]float64),
	}
}

// maxHazardEntries bounds the node maps; a sweep over wildly varying
// conditions resets them rather than growing without limit.
const maxHazardEntries = 1 << 20

// utilNode returns the utilization-scaled hazard at grid node i for
// voltage v, computing and caching it on first use.
func (hc *HazardCache) utilNode(v float64, i int64) float64 {
	key := hazardNode{v: v, i: i}
	if h, ok := hc.util[key]; ok {
		return h
	}
	c := Condition{VoltageV: v, TjMaxC: float64(i) / hc.invStep}
	h := hc.model.OxideHazardRate(c) + hc.model.EMHazardRate(c)
	if len(hc.util) >= maxHazardEntries {
		hc.util = make(map[hazardNode]float64)
	}
	hc.util[key] = h
	return h
}

// cycleNode returns the cycling hazard at ΔTj grid node i.
func (hc *HazardCache) cycleNode(i int64) float64 {
	if h, ok := hc.cycle[i]; ok {
		return h
	}
	dt := float64(i) / hc.invStep
	h := hc.model.CyclingHazard * math.Pow(dt/hc.model.RefDeltaTC, hc.model.CyclingExp)
	if len(hc.cycle) >= maxHazardEntries {
		hc.cycle = make(map[int64]float64)
	}
	hc.cycle[i] = h
	return h
}

// lerp interpolates a grid curve at scaled coordinate t (already
// multiplied by invStep), using node lookups from f. Node-exact when t
// is integral.
func lerp(t float64, f func(int64) float64) float64 {
	i := int64(math.Floor(t))
	lo := f(i)
	frac := t - float64(i)
	if frac == 0 {
		return lo
	}
	return lo + frac*(f(i+1)-lo)
}

// Rates returns the condition's utilization-scaled hazard (oxide +
// electromigration) and cycling hazard in 1/years, interpolated on the
// quantized grid.
func (hc *HazardCache) Rates(c Condition) (utilScaled, cycling float64) {
	if c == hc.memo[0].cond && hc.memo[0].ok {
		return hc.memo[0].util, hc.memo[0].cycle
	}
	if c == hc.memo[1].cond && hc.memo[1].ok {
		hc.memo[0], hc.memo[1] = hc.memo[1], hc.memo[0]
		return hc.memo[0].util, hc.memo[0].cycle
	}
	utilScaled = lerp(c.TjMaxC*hc.invStep, func(i int64) float64 {
		return hc.utilNode(c.VoltageV, i)
	})
	if dt := c.DeltaT(); dt > 0 {
		cycling = lerp(dt*hc.invStep, hc.cycleNode)
	}
	hc.memo[1] = hc.memo[0]
	hc.memo[0] = hazardMemo{cond: c, ok: true, util: utilScaled, cycle: cycling}
	return utilScaled, cycling
}

// WearMeter tracks accumulated wear of one component against its
// lifetime budget. Wear accrues as hazard × time; a component that has
// run cooler or at lower utilization than worst-case accumulates
// "lifetime credit" that can be spent on overclocking (§IV).
type WearMeter struct {
	model  LifetimeModel
	budget float64 // hazard-years allowed over the service life
	wear   float64 // hazard-years accumulated
	hours  float64 // wall hours accumulated
	// cache, when set, supplies quantized hazard rates shared across a
	// fleet of meters (see HazardCache).
	cache *HazardCache
}

// NewWearMeter returns a meter budgeted for serviceYears at the
// reference (worst-case air nominal) hazard.
func NewWearMeter(m LifetimeModel, serviceYears float64) *WearMeter {
	ref := Condition{VoltageV: m.RefVoltageV, TjMaxC: m.RefTjC, TjMinC: m.RefTjC - m.RefDeltaTC}
	return &WearMeter{
		model:  m,
		budget: m.TotalHazard(ref) * serviceYears,
	}
}

// SetHazardCache attaches a shared quantized hazard cache (nil
// detaches; Accrue then evaluates the model exactly). The cache must
// have been built over this meter's lifetime model.
func (w *WearMeter) SetHazardCache(hc *HazardCache) {
	if hc != nil && hc.model != w.model {
		panic("reliability: hazard cache built for a different lifetime model")
	}
	w.cache = hc
}

// Accrue records hours of operation at condition c scaled by
// utilization (idle time wears mostly through cycling; we scale the
// voltage/temperature processes by utilization and keep cycling whole).
// With a hazard cache attached the rates come from the quantized grid
// (≤ ~1e-9 relative error); otherwise they are evaluated exactly.
func (w *WearMeter) Accrue(c Condition, hours, utilization float64) {
	if hours < 0 {
		panic("reliability: negative hours")
	}
	u := math.Max(0, math.Min(1, utilization))
	years := hours / (24 * 365)
	var h float64
	if w.cache != nil {
		us, cyc := w.cache.Rates(c)
		h = us*u + cyc
	} else {
		h = (w.model.OxideHazardRate(c)+w.model.EMHazardRate(c))*u + w.model.CyclingHazardRate(c)
	}
	w.wear += h * years
	w.hours += hours
}

// Used returns the fraction of the wear budget consumed.
func (w *WearMeter) Used() float64 {
	if w.budget <= 0 {
		return 0
	}
	return w.wear / w.budget
}

// Credit returns the wear budget (in hazard-years) still unspent
// relative to pro-rata consumption: positive values mean the part has
// worn slower than its service-life schedule and can afford
// overclocking.
func (w *WearMeter) Credit(elapsedHours float64) float64 {
	proRata := w.budget * (elapsedHours / (ServiceLifeYears * 24 * 365))
	return proRata - w.wear
}

// Exhausted reports whether the budget is fully consumed.
func (w *WearMeter) Exhausted() bool { return w.wear >= w.budget }

// Hours returns total accrued hours.
func (w *WearMeter) Hours() float64 { return w.hours }

// MaxOCDutyCycle returns the largest fraction of time a component can
// spend at the overclocked condition — the rest at the nominal
// condition — while still meeting the service-life budget:
//
//	f·h_oc + (1−f)·h_nom ≤ 1/serviceYears
//
// This is the quantitative form of the paper's "lifetime credit":
// moderately utilized (or immersion-cooled) servers wear below the
// budgeted rate and can spend the difference on overclocking. Returns
// 0 when even full-time nominal operation exceeds the budget, 1 when
// full-time overclocking fits.
func (m LifetimeModel) MaxOCDutyCycle(nominal, oc Condition, serviceYears float64) (float64, error) {
	if err := nominal.Validate(); err != nil {
		return 0, err
	}
	if err := oc.Validate(); err != nil {
		return 0, err
	}
	if serviceYears <= 0 {
		return 0, errors.New("reliability: non-positive service life")
	}
	budget := 1 / serviceYears
	hNom := m.TotalHazard(nominal)
	hOC := m.TotalHazard(oc)
	if hNom >= budget {
		return 0, nil
	}
	if hOC <= budget {
		return 1, nil
	}
	f := (budget - hNom) / (hOC - hNom)
	return math.Max(0, math.Min(1, f)), nil
}

// StabilityModel captures computational stability vs overclocking
// aggressiveness: the rate of correctable errors grows exponentially
// once frequency exceeds the validated safe overclock, and crashes
// appear past the instability point. Calibrated to the paper's
// six-month logs: zero errors in tank #1 (Xeon at +20.6%), 56 CPU
// cache correctable errors in tank #2 (pushed harder), crashes only
// when voltage/frequency were pushed excessively.
type StabilityModel struct {
	// SafeRatio is frequency/maxSafeOC at or below which no errors
	// are expected.
	SafeRatio float64
	// ErrBaseRatePerDay is the correctable error rate just past the
	// safe point.
	ErrBaseRatePerDay float64
	// ErrGrowth is the exponential growth per 1% of frequency past
	// the safe point.
	ErrGrowth float64
	// CrashRatio is frequency/maxSafeOC beyond which ungraceful
	// crashes occur.
	CrashRatio float64
}

// DefaultStability is calibrated to the paper's observations.
var DefaultStability = StabilityModel{
	SafeRatio:         1.0,
	ErrBaseRatePerDay: 0.1,
	ErrGrowth:         0.32,
	CrashRatio:        1.05,
}

// CorrectableErrorRate returns expected correctable errors per day at
// the given frequency relative to the validated safe overclock.
func (s StabilityModel) CorrectableErrorRate(f, maxSafe float64) float64 {
	if maxSafe <= 0 {
		return 0
	}
	r := f / maxSafe
	if r <= s.SafeRatio {
		return 0
	}
	pctOver := (r - s.SafeRatio) * 100
	return s.ErrBaseRatePerDay * math.Exp(s.ErrGrowth*pctOver)
}

// ExpectedErrors returns expected correctable errors over a duration.
func (s StabilityModel) ExpectedErrors(f, maxSafe, days float64) float64 {
	return s.CorrectableErrorRate(f, maxSafe) * days
}

// Unstable reports whether operation at f risks crashes.
func (s StabilityModel) Unstable(f, maxSafe float64) bool {
	if maxSafe <= 0 {
		return false
	}
	return f/maxSafe > s.CrashRatio
}
