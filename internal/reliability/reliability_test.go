package reliability

import (
	"math"
	"testing"
	"testing/quick"
)

// tableVCondition builds the six Table V operating points.
func tableVConditions() []struct {
	name     string
	cond     Condition
	minYears float64
	maxYears float64
} {
	return []struct {
		name     string
		cond     Condition
		minYears float64
		maxYears float64
	}{
		{"air nominal", Condition{0.90, 85, 20}, 4.5, 5.5},
		{"air overclocked", Condition{0.98, 101, 20}, 0, 1.0},
		{"FC-3284 nominal", Condition{0.90, 66, 50}, 10, math.Inf(1)},
		{"FC-3284 overclocked", Condition{0.98, 74, 50}, 3.2, 4.8},
		{"HFE-7000 nominal", Condition{0.90, 51, 34}, 10, math.Inf(1)},
		{"HFE-7000 overclocked", Condition{0.98, 60, 34}, 4.3, 5.7},
	}
}

func TestTableVLifetimes(t *testing.T) {
	m := Composite5nm
	for _, c := range tableVConditions() {
		life, err := m.Lifetime(c.cond)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if life < c.minYears || life > c.maxYears {
			t.Errorf("%s: lifetime %.2f years, want [%v, %v]", c.name, life, c.minYears, c.maxYears)
		}
	}
}

func TestAirNominalIsExactlyServiceLife(t *testing.T) {
	m := Composite5nm
	life, err := m.Lifetime(Condition{VoltageV: 0.90, TjMaxC: 85, TjMinC: 20})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(life-ServiceLifeYears) > 0.01 {
		t.Fatalf("reference lifetime %v, want %v", life, ServiceLifeYears)
	}
	if !m.MeetsServiceLife(Condition{VoltageV: 0.90, TjMaxC: 85, TjMinC: 20}) {
		t.Fatal("reference condition fails MeetsServiceLife")
	}
}

func TestHazardMonotonicInVoltage(t *testing.T) {
	m := Composite5nm
	f := func(raw uint8) bool {
		v := 0.8 + float64(raw)/1000
		c1 := Condition{v, 70, 40}
		c2 := Condition{v + 0.02, 70, 40}
		return m.TotalHazard(c2) > m.TotalHazard(c1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHazardMonotonicInTemperature(t *testing.T) {
	m := Composite5nm
	f := func(raw uint8) bool {
		tj := 40 + float64(raw)/4
		c1 := Condition{0.9, tj, 30}
		c2 := Condition{0.9, tj + 3, 30}
		return m.TotalHazard(c2) > m.TotalHazard(c1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCyclingHazardMonotonicInDeltaT(t *testing.T) {
	m := Composite5nm
	h1 := m.CyclingHazardRate(Condition{0.9, 80, 60})
	h2 := m.CyclingHazardRate(Condition{0.9, 80, 20})
	if h2 <= h1 {
		t.Fatal("cycling hazard not increasing in ΔT")
	}
	if m.CyclingHazardRate(Condition{0.9, 60, 60}) != 0 {
		t.Fatal("zero ΔT has non-zero cycling hazard")
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	m := Composite5nm
	b := m.HazardBreakdown(Condition{0.95, 80, 40})
	sum := b.Oxide + b.Electromigration + b.Cycling
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("breakdown sums to %v", sum)
	}
}

func TestCyclingDominatesAirOverclock(t *testing.T) {
	// Air overclocking suffers from the large 20–101 °C swing; the
	// immersion conditions have small swings. Thermal cycling share
	// must be much larger in air.
	m := Composite5nm
	air := m.HazardBreakdown(Condition{0.98, 101, 20})
	imm := m.HazardBreakdown(Condition{0.98, 74, 50})
	if air.Cycling <= imm.Cycling {
		t.Fatalf("air cycling share %v not above immersion %v", air.Cycling, imm.Cycling)
	}
}

func TestInvalidConditions(t *testing.T) {
	m := Composite5nm
	if _, err := m.Lifetime(Condition{0, 80, 40}); err == nil {
		t.Fatal("zero voltage accepted")
	}
	if _, err := m.Lifetime(Condition{0.9, 40, 80}); err == nil {
		t.Fatal("TjMax < TjMin accepted")
	}
}

func TestMaxVoltageForLifetime(t *testing.T) {
	m := Composite5nm
	// At HFE-7000 overclocked temperatures, ~0.98 V sustains 5 years.
	v, err := m.MaxVoltageForLifetime(5, 0.85, 1.1, 60, 34)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.98) > 0.02 {
		t.Fatalf("max voltage %v, want ~0.98", v)
	}
	// Verify the returned voltage actually meets the target.
	life, err := m.Lifetime(Condition{v, 60, 34})
	if err != nil || life < 5 {
		t.Fatalf("returned voltage gives %v years", life)
	}
	if _, err := m.MaxVoltageForLifetime(100, 0.85, 1.1, 101, 20); err == nil {
		t.Fatal("unreachable target did not error")
	}
}

func TestWearMeterBudget(t *testing.T) {
	m := Composite5nm
	w := NewWearMeter(m, ServiceLifeYears)
	ref := Condition{VoltageV: 0.90, TjMaxC: 85, TjMinC: 20}
	// Running at the reference worst case for the full service life
	// exhausts the budget exactly.
	w.Accrue(ref, ServiceLifeYears*24*365, 1.0)
	if math.Abs(w.Used()-1) > 1e-9 {
		t.Fatalf("budget used %v, want 1", w.Used())
	}
	if !w.Exhausted() {
		t.Fatal("meter not exhausted after full service life at worst case")
	}
}

func TestWearMeterCredit(t *testing.T) {
	m := Composite5nm
	w := NewWearMeter(m, ServiceLifeYears)
	cool := Condition{VoltageV: 0.90, TjMaxC: 55, TjMinC: 40}
	w.Accrue(cool, 1000, 0.3)
	if w.Credit(1000) <= 0 {
		t.Fatal("cool, lightly-utilized server accumulated no credit")
	}
	hot := Condition{VoltageV: 1.0, TjMaxC: 100, TjMinC: 20}
	w2 := NewWearMeter(m, ServiceLifeYears)
	w2.Accrue(hot, 1000, 1)
	if w2.Credit(1000) >= 0 {
		t.Fatal("hot overclocked server has positive credit")
	}
}

func TestWearMeterNegativeHoursPanics(t *testing.T) {
	w := NewWearMeter(Composite5nm, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("negative hours did not panic")
		}
	}()
	w.Accrue(Condition{0.9, 80, 40}, -1, 1)
}

func TestStabilityNoErrorsAtSafeOC(t *testing.T) {
	s := DefaultStability
	// Tank #1 ran at the validated overclock for six months with
	// zero errors.
	if got := s.ExpectedErrors(4.1, 4.1, 180); got != 0 {
		t.Fatalf("errors at safe OC: %v", got)
	}
	if s.Unstable(4.1, 4.1) {
		t.Fatal("safe OC flagged unstable")
	}
}

func TestStabilityTank2Errors(t *testing.T) {
	// Tank #2 pushed past validation and logged 56 correctable
	// errors over six months.
	s := DefaultStability
	got := s.ExpectedErrors(1.035, 1.0, 180)
	if got < 25 || got > 110 {
		t.Fatalf("expected errors %v, want ~56 (paper)", got)
	}
}

func TestStabilityCrashRegion(t *testing.T) {
	s := DefaultStability
	if !s.Unstable(1.06, 1.0) {
		t.Fatal("excessive overclock not flagged unstable")
	}
	if s.Unstable(1.02, 1.0) {
		t.Fatal("mild overclock flagged unstable")
	}
}

func TestStabilityErrorRateMonotonic(t *testing.T) {
	s := DefaultStability
	prev := -1.0
	for r := 1.0; r < 1.1; r += 0.01 {
		got := s.CorrectableErrorRate(r, 1.0)
		if got < prev {
			t.Fatalf("error rate not monotone at ratio %v", r)
		}
		prev = got
	}
}

func TestMaxOCDutyCycle(t *testing.T) {
	m := Composite5nm
	nominal := Condition{VoltageV: 0.90, TjMaxC: 66, TjMinC: 50}
	oc := Condition{VoltageV: 0.98, TjMaxC: 74, TjMinC: 50}
	duty, err := m.MaxOCDutyCycle(nominal, oc, ServiceLifeYears)
	if err != nil {
		t.Fatal(err)
	}
	// FC-3284: nominal wears well below budget, OC above → a real
	// interior duty cycle.
	if duty <= 0.3 || duty >= 0.9 {
		t.Fatalf("FC-3284 duty cycle %v, want interior (~0.67)", duty)
	}
	// The mixture must consume the budget exactly.
	mixed := duty*m.TotalHazard(oc) + (1-duty)*m.TotalHazard(nominal)
	if math.Abs(mixed-1/ServiceLifeYears) > 1e-9 {
		t.Fatalf("mixed hazard %v, want %v", mixed, 1/ServiceLifeYears)
	}
}

func TestMaxOCDutyCycleExtremes(t *testing.T) {
	m := Composite5nm
	// HFE-7000: overclocked hazard already within budget → 100%.
	duty, err := m.MaxOCDutyCycle(
		Condition{VoltageV: 0.90, TjMaxC: 51, TjMinC: 34},
		Condition{VoltageV: 0.98, TjMaxC: 60, TjMinC: 34},
		ServiceLifeYears)
	if err != nil || duty != 1 {
		t.Fatalf("HFE duty %v err %v, want 1", duty, err)
	}
	// Air: nominal already consumes the budget → 0%.
	duty, err = m.MaxOCDutyCycle(
		Condition{VoltageV: 0.90, TjMaxC: 85, TjMinC: 20},
		Condition{VoltageV: 0.98, TjMaxC: 101, TjMinC: 20},
		ServiceLifeYears)
	if err != nil || duty != 0 {
		t.Fatalf("air duty %v err %v, want 0", duty, err)
	}
	if _, err := m.MaxOCDutyCycle(Condition{}, Condition{}, 5); err == nil {
		t.Fatal("invalid conditions accepted")
	}
}

func TestDutyCycleEmpiricalWearMeter(t *testing.T) {
	// Simulate 5 years alternating at the computed duty cycle: the
	// wear meter should land at ~100% of budget, not over.
	m := Composite5nm
	nominal := Condition{VoltageV: 0.90, TjMaxC: 66, TjMinC: 50}
	oc := Condition{VoltageV: 0.98, TjMaxC: 74, TjMinC: 50}
	duty, err := m.MaxOCDutyCycle(nominal, oc, ServiceLifeYears)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWearMeter(m, ServiceLifeYears)
	totalHours := ServiceLifeYears * 24 * 365
	w.Accrue(oc, totalHours*duty, 1.0)
	w.Accrue(nominal, totalHours*(1-duty), 1.0)
	if math.Abs(w.Used()-1) > 0.01 {
		t.Fatalf("wear after duty-cycled service life %v, want ~1.0", w.Used())
	}
}
