// Package server composes the substrate models — frequency domains,
// thermal, power, reliability — into a simulated overclockable server.
// It is the object the governor (internal/core) manages: set a
// frequency configuration, read junction temperature, power draw,
// accumulated wear, and correctable-error expectations.
package server

import (
	"errors"
	"fmt"

	"immersionoc/internal/freq"
	"immersionoc/internal/power"
	"immersionoc/internal/reliability"
	"immersionoc/internal/thermal"
)

// Spec describes the hardware of a simulated server.
type Spec struct {
	Name string
	// Cores is the physical core count.
	Cores int
	// MemoryGB is installed memory.
	MemoryGB float64
	// Bands are the core-domain operating bands.
	Bands freq.Bands
	// Curve is the core voltage-frequency curve.
	Curve *power.VFCurve
	// Socket is the socket power model.
	Socket power.SocketModel
	// ServerPower is the whole-server power model.
	ServerPower power.ServerModel
	// Thermal converts socket power to junction temperature.
	Thermal thermal.Model
	// Lifetime is the degradation model.
	Lifetime reliability.LifetimeModel
	// Stability is the correctable-error model.
	Stability reliability.StabilityModel
	// GPU, when non-nil, attaches an overclockable GPU (tank #2).
	GPU *GPUSpec
}

// Tank1Spec is small tank #1: the 28-core Xeon W-3175X immersed in
// HFE-7000.
func Tank1Spec() Spec {
	return Spec{
		Name:        "tank1-w3175x",
		Cores:       28,
		MemoryGB:    128,
		Bands:       freq.XeonW3175XBands,
		Curve:       power.XeonW3175XCurve,
		Socket:      power.XeonSocket,
		ServerPower: power.Tank1Server,
		Thermal:     thermal.XeonTableVHFE.Immersion,
		Lifetime:    reliability.Composite5nm,
		Stability:   reliability.DefaultStability,
	}
}

// AirSpec is the same server configured for air cooling in the 35 °C
// thermal chamber — the paper's baseline.
func AirSpec() Spec {
	s := Tank1Spec()
	s.Name = "air-w3175x"
	s.Thermal = thermal.XeonTableV.Air
	return s
}

// Server is a running simulated server.
type Server struct {
	Spec Spec
	cfg  freq.Config
	wear *reliability.WearMeter
	// utilSum is the currently offered load in core-equivalents.
	utilSum float64
	// activeCores is the number of un-parked cores.
	activeCores int
	// errorCount accumulates expected correctable errors.
	errorCount float64
	hours      float64
	gpuCfg     freq.GPUConfig
	gpuSet     bool
}

// New returns a server at the B2 baseline configuration, idle.
func New(spec Spec) *Server {
	return &Server{
		Spec: spec,
		cfg:  freq.B2,
		wear: reliability.NewWearMeter(spec.Lifetime, reliability.ServiceLifeYears),
	}
}

// Config returns the active frequency configuration.
func (s *Server) Config() freq.Config { return s.cfg }

// ErrUnstable is returned when a requested configuration exceeds the
// stability envelope.
var ErrUnstable = errors.New("server: configuration beyond stability envelope")

// SetConfig applies a frequency configuration. Configurations beyond
// the stability envelope (red band top) are rejected — the paper's
// experience is that excessive voltage/frequency crashes the machine.
func (s *Server) SetConfig(cfg freq.Config) error {
	if cfg.CoreGHz > s.Spec.Bands.MaxOC {
		return fmt.Errorf("%w: %.2f GHz > max %.2f GHz", ErrUnstable, cfg.CoreGHz, s.Spec.Bands.MaxOC)
	}
	s.cfg = cfg
	return nil
}

// Band returns the operating band of the current core frequency.
func (s *Server) Band() freq.Band { return s.Spec.Bands.Classify(s.cfg.CoreGHz) }

// SetLoad updates the offered load: utilSum core-equivalents across
// activeCores un-parked cores.
func (s *Server) SetLoad(utilSum float64, activeCores int) {
	if utilSum < 0 || activeCores < 0 || activeCores > s.Spec.Cores {
		panic("server: invalid load")
	}
	s.utilSum = utilSum
	s.activeCores = activeCores
}

// PowerW returns current server power.
func (s *Server) PowerW() float64 {
	return s.Spec.ServerPower.Power(s.cfg, s.utilSum, s.activeCores)
}

// Voltage returns the current core voltage. The measured V-f curve
// already includes the stability offset Table VII documents, so the
// configuration's offset is not added again.
func (s *Server) Voltage() float64 {
	return s.Spec.Curve.Voltage(s.cfg.CoreGHz)
}

// SocketUtil returns socket-level utilization in [0,1].
func (s *Server) SocketUtil() float64 {
	if s.Spec.Cores == 0 {
		return 0
	}
	u := s.utilSum / float64(s.Spec.Cores)
	if u > 1 {
		u = 1
	}
	return u
}

// OperatingPoint solves the socket's steady-state power and junction
// temperature at the current configuration and load.
func (s *Server) OperatingPoint() (power.OperatingPoint, error) {
	return s.Spec.Socket.Solve(s.Spec.Thermal, s.Spec.Curve, s.cfg.CoreGHz, 0, s.SocketUtil())
}

// Condition returns the current reliability condition (voltage, peak
// and idle junction temperatures).
func (s *Server) Condition() (reliability.Condition, error) {
	op, err := s.OperatingPoint()
	if err != nil {
		return reliability.Condition{}, err
	}
	return reliability.Condition{
		VoltageV: op.VoltageV,
		TjMaxC:   op.JunctionC,
		TjMinC:   s.Spec.Thermal.IdleTemp(),
	}, nil
}

// Advance accrues hours of operation at the current configuration and
// load: wear, error expectations, and uptime.
func (s *Server) Advance(hours float64) error {
	if hours < 0 {
		return errors.New("server: negative hours")
	}
	cond, err := s.Condition()
	if err != nil {
		return err
	}
	s.wear.Accrue(cond, hours, s.SocketUtil())
	s.errorCount += s.Spec.Stability.ExpectedErrors(float64(s.cfg.CoreGHz), float64(s.Spec.Bands.MaxSafeOC), hours/24)
	s.hours += hours
	return nil
}

// WearUsed returns the fraction of the lifetime budget consumed.
func (s *Server) WearUsed() float64 { return s.wear.Used() }

// WearCredit returns unspent lifetime budget relative to pro-rata
// consumption (positive = can afford overclocking).
func (s *Server) WearCredit() float64 { return s.wear.Credit(s.hours) }

// ExpectedErrors returns accumulated expected correctable errors.
func (s *Server) ExpectedErrors() float64 { return s.errorCount }

// Hours returns accumulated uptime.
func (s *Server) Hours() float64 { return s.hours }

// ProjectedLifetimeYears returns the lifetime if the server stayed at
// its current operating condition indefinitely.
func (s *Server) ProjectedLifetimeYears() (float64, error) {
	cond, err := s.Condition()
	if err != nil {
		return 0, err
	}
	return s.Spec.Lifetime.Lifetime(cond)
}
