package server

import (
	"errors"
	"math"
	"testing"

	"immersionoc/internal/freq"
	"immersionoc/internal/reliability"
)

func TestNewServerDefaults(t *testing.T) {
	s := New(Tank1Spec())
	if s.Config().Name != "B2" {
		t.Fatalf("initial config %s, want B2", s.Config().Name)
	}
	if s.Band() != freq.Turbo {
		t.Fatalf("initial band %v, want turbo", s.Band())
	}
	if s.Hours() != 0 || s.WearUsed() != 0 {
		t.Fatal("fresh server has history")
	}
}

func TestSetConfigStabilityEnvelope(t *testing.T) {
	s := New(Tank1Spec())
	if err := s.SetConfig(freq.OC3); err != nil {
		t.Fatalf("OC3 rejected: %v", err)
	}
	if s.Band() != freq.Overclocked {
		t.Fatalf("band %v, want overclocked", s.Band())
	}
	tooFar := freq.OC1
	tooFar.CoreGHz = 4.5
	err := s.SetConfig(tooFar)
	if !errors.Is(err, ErrUnstable) {
		t.Fatalf("4.5 GHz accepted: %v", err)
	}
	if s.Config().Name != "OC3" {
		t.Fatal("failed SetConfig mutated configuration")
	}
}

func TestPowerIncreasesWithOverclock(t *testing.T) {
	s := New(Tank1Spec())
	s.SetLoad(14, 16)
	base := s.PowerW()
	if err := s.SetConfig(freq.OC3); err != nil {
		t.Fatal(err)
	}
	if s.PowerW() <= base {
		t.Fatal("overclocked power not above baseline")
	}
}

func TestVoltageFollowsCurveAndOffset(t *testing.T) {
	s := New(Tank1Spec())
	vBase := s.Voltage()
	if math.Abs(vBase-0.90) > 1e-9 {
		t.Fatalf("B2 voltage %v, want 0.90", vBase)
	}
	s.SetConfig(freq.OC1)
	vOC := s.Voltage()
	if vOC <= vBase {
		t.Fatal("OC voltage not above baseline")
	}
	if vOC < 0.97 || vOC > 1.05 {
		t.Fatalf("OC1 voltage %v outside plausible range", vOC)
	}
}

func TestOperatingPointImmersion(t *testing.T) {
	s := New(Tank1Spec())
	s.SetLoad(28, 28)
	op, err := s.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	// Fully loaded at B2 in HFE-7000: ~205 W, Tj ~51 °C.
	if math.Abs(op.PowerW-205) > 8 {
		t.Fatalf("operating power %v, want ~205", op.PowerW)
	}
	if math.Abs(op.JunctionC-51) > 3 {
		t.Fatalf("junction %v, want ~51", op.JunctionC)
	}
}

func TestProjectedLifetime(t *testing.T) {
	imm := New(Tank1Spec())
	imm.SetLoad(28, 28)
	life, err := imm.ProjectedLifetimeYears()
	if err != nil {
		t.Fatal(err)
	}
	if life < 10 {
		t.Fatalf("nominal immersion lifetime %v, want >10 years", life)
	}
	imm.SetConfig(freq.OC1)
	lifeOC, err := imm.ProjectedLifetimeYears()
	if err != nil {
		t.Fatal(err)
	}
	if lifeOC >= life {
		t.Fatal("overclocking did not reduce projected lifetime")
	}
	if lifeOC < 4 {
		t.Fatalf("OC1 in HFE lifetime %v, want ≥ ~4.5 years (Table V)", lifeOC)
	}
}

func TestAirWearFasterThanImmersion(t *testing.T) {
	air := New(AirSpec())
	imm := New(Tank1Spec())
	for _, s := range []*Server{air, imm} {
		s.SetLoad(28, 28)
		s.SetConfig(freq.OC1)
		if err := s.Advance(1000); err != nil {
			t.Fatal(err)
		}
	}
	if air.WearUsed() <= imm.WearUsed() {
		t.Fatalf("air wear %v not above immersion %v under overclock", air.WearUsed(), imm.WearUsed())
	}
}

func TestWearCreditAccrues(t *testing.T) {
	s := New(Tank1Spec())
	s.SetLoad(7, 28) // lightly utilized, cool
	if err := s.Advance(5000); err != nil {
		t.Fatal(err)
	}
	if s.WearCredit() <= 0 {
		t.Fatal("cool lightly-loaded server accrued no credit")
	}
	if s.Hours() != 5000 {
		t.Fatalf("hours %v", s.Hours())
	}
}

func TestErrorsAccrueOnlyPastSafeOC(t *testing.T) {
	s := New(Tank1Spec())
	s.SetLoad(28, 28)
	s.SetConfig(freq.OC1) // at the validated safe overclock
	s.Advance(24 * 180)
	if s.ExpectedErrors() != 0 {
		t.Fatalf("errors at safe OC: %v", s.ExpectedErrors())
	}
	pushed := freq.OC1
	pushed.CoreGHz = 4.25 // past safe, below crash
	if err := s.SetConfig(pushed); err != nil {
		t.Fatal(err)
	}
	s.Advance(24 * 180)
	if s.ExpectedErrors() <= 0 {
		t.Fatal("no errors past the validated overclock")
	}
}

func TestAdvanceNegativeHours(t *testing.T) {
	s := New(Tank1Spec())
	if err := s.Advance(-1); err == nil {
		t.Fatal("negative hours accepted")
	}
}

func TestSetLoadValidation(t *testing.T) {
	s := New(Tank1Spec())
	defer func() {
		if recover() == nil {
			t.Fatal("invalid load did not panic")
		}
	}()
	s.SetLoad(-1, 4)
}

func TestSocketUtilClamped(t *testing.T) {
	s := New(Tank1Spec())
	s.SetLoad(28, 28)
	if got := s.SocketUtil(); got != 1 {
		t.Fatalf("full util %v", got)
	}
	s.SetLoad(14, 28)
	if got := s.SocketUtil(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("half util %v", got)
	}
}

func TestAirOverclockShortensLifeBelowServiceLife(t *testing.T) {
	air := New(AirSpec())
	air.SetLoad(28, 28)
	air.SetConfig(freq.OC1)
	life, err := air.ProjectedLifetimeYears()
	if err != nil {
		t.Fatal(err)
	}
	if life >= reliability.ServiceLifeYears {
		t.Fatalf("air-cooled overclock lifetime %v, want below service life", life)
	}
}

func TestTank2GPU(t *testing.T) {
	s := New(Tank2Spec())
	cfg, err := s.GPUConfig()
	if err != nil || cfg.Name != "Base" {
		t.Fatalf("default GPU config %v err %v", cfg.Name, err)
	}
	basePower, err := s.GPUPowerW()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetGPUConfig(freq.OCG3); err != nil {
		t.Fatal(err)
	}
	ocPower, err := s.GPUPowerW()
	if err != nil {
		t.Fatal(err)
	}
	if ocPower <= basePower {
		t.Fatal("overclocked GPU not drawing more power")
	}
	if s.TotalPowerW() <= s.PowerW() {
		t.Fatal("total power does not include the GPU")
	}
}

func TestNoGPUErrors(t *testing.T) {
	s := New(Tank1Spec())
	if err := s.SetGPUConfig(freq.OCG1); err == nil {
		t.Fatal("GPU config accepted on GPU-less server")
	}
	if _, err := s.GPUPowerW(); err == nil {
		t.Fatal("GPU power on GPU-less server")
	}
	// Total power degrades gracefully to CPU-side power.
	if s.TotalPowerW() != s.PowerW() {
		t.Fatal("total power wrong without GPU")
	}
}

func TestTank2CPUBands(t *testing.T) {
	s := New(Tank2Spec())
	if s.Spec.Bands.Validate() != nil {
		t.Fatal("tank2 bands invalid")
	}
	// The i9900k overclocks ~6% past all-core turbo safely.
	head := s.Spec.Bands.SafeHeadroom()
	if head <= 0.04 || head > 0.10 {
		t.Fatalf("tank2 safe headroom %v", head)
	}
}
