package server

import (
	"errors"

	"immersionoc/internal/freq"
	"immersionoc/internal/power"
	"immersionoc/internal/reliability"
	"immersionoc/internal/thermal"
	"immersionoc/internal/workload"
)

// GPUSpec describes an attached overclockable GPU (small tank #2's
// RTX 2080ti).
type GPUSpec struct {
	Name string
	// Power estimates board power per configuration.
	Power workload.GPUPowerModel
}

// Tank2Spec is small tank #2: an 8-core i9900k with an overclockable
// RTX 2080ti, immersed in FC-3284. The CPU side reuses the Xeon
// behavioural models scaled to the desktop part; the GPU side carries
// the Table VIII configurations.
func Tank2Spec() Spec {
	s := Spec{
		Name:     "tank2-i9900k-2080ti",
		Cores:    8,
		MemoryGB: 128,
		Bands: freq.Bands{
			Min:       1.2,
			Base:      3.6,
			MaxTurbo:  4.7,
			MaxSafeOC: 5.0,
			MaxOC:     5.2,
		},
		Curve:       i9900kCurve,
		Socket:      i9900kSocket,
		ServerPower: tank2Server,
		Thermal:     thermal.XeonTableV.Immersion, // FC-3284 bath
		Lifetime:    reliability.Composite5nm,
		Stability:   reliability.DefaultStability,
		GPU: &GPUSpec{
			Name:  "RTX 2080ti",
			Power: workload.DefaultGPUPower,
		},
	}
	return s
}

// i9900kCurve is the desktop part's voltage curve (higher clocks,
// higher voltages than the server Xeon).
var i9900kCurve = mustCurve(
	power.VFPoint{GHz: 3.6, V: 1.00},
	power.VFPoint{GHz: 4.7, V: 1.18},
	power.VFPoint{GHz: 5.0, V: 1.28},
)

func mustCurve(points ...power.VFPoint) *power.VFCurve {
	c, err := power.NewVFCurve(points...)
	if err != nil {
		panic(err)
	}
	return c
}

// i9900kSocket scales the socket power model to the 95 W desktop TDP
// class (the part runs far beyond TDP at all-core turbo, as desktop
// boards allow).
var i9900kSocket = power.SocketModel{
	LeakRefW:      10,
	LeakRefV:      1.0,
	LeakRefTempC:  92,
	LeakThetaC:    25,
	VoltExp:       3,
	CeffWPerGHzV2: 22,
	TDPW:          95,
}

// tank2Server is the whole-server power model for the desktop box.
var tank2Server = power.ServerModel{
	PlatformW:    30,
	UncoreRefW:   12,
	MemRefW:      14,
	CorePerGHzV2: 2.6,
	CoreActiveW:  1.0,
	CoreParkedW:  0.3,
	TotalCores:   8,
	Curve:        i9900kCurve,
}

// ErrNoGPU is returned by GPU operations on servers without one.
var ErrNoGPU = errors.New("server: no GPU attached")

// SetGPUConfig applies a Table VIII configuration to the attached GPU.
func (s *Server) SetGPUConfig(cfg freq.GPUConfig) error {
	if s.Spec.GPU == nil {
		return ErrNoGPU
	}
	s.gpuCfg = cfg
	s.gpuSet = true
	return nil
}

// GPUConfig returns the active GPU configuration (stock when never
// set).
func (s *Server) GPUConfig() (freq.GPUConfig, error) {
	if s.Spec.GPU == nil {
		return freq.GPUConfig{}, ErrNoGPU
	}
	if !s.gpuSet {
		return freq.GPUBase, nil
	}
	return s.gpuCfg, nil
}

// GPUPowerW returns the GPU's average board power during a training
// run under the active configuration.
func (s *Server) GPUPowerW() (float64, error) {
	cfg, err := s.GPUConfig()
	if err != nil {
		return 0, err
	}
	return s.Spec.GPU.Power.Average(cfg), nil
}

// TotalPowerW returns server plus GPU power (servers without GPUs
// return CPU-side power only).
func (s *Server) TotalPowerW() float64 {
	p := s.PowerW()
	if g, err := s.GPUPowerW(); err == nil {
		p += g
	}
	return p
}
