package fluids

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestTableIIValues(t *testing.T) {
	if FC3284.BoilingPointC != 50 {
		t.Fatalf("FC-3284 boiling point %v, want 50", FC3284.BoilingPointC)
	}
	if HFE7000.BoilingPointC != 34 {
		t.Fatalf("HFE-7000 boiling point %v, want 34", HFE7000.BoilingPointC)
	}
	if FC3284.DielectricConstant != 1.86 || HFE7000.DielectricConstant != 7.4 {
		t.Fatal("dielectric constants disagree with Table II")
	}
	if FC3284.LatentHeatJPerG != 105 || HFE7000.LatentHeatJPerG != 142 {
		t.Fatal("latent heats disagree with Table II")
	}
	if FC3284.UsefulLifeYears < 30 || HFE7000.UsefulLifeYears < 30 {
		t.Fatal("useful life below 30 years")
	}
}

func TestByName(t *testing.T) {
	f, err := ByName("3M FC-3284")
	if err != nil || f.Name != FC3284.Name {
		t.Fatalf("ByName FC-3284: %v %v", f, err)
	}
	if _, err := ByName("water"); err == nil {
		t.Fatal("unknown fluid did not error")
	}
}

func TestCatalogStable(t *testing.T) {
	c := Catalog()
	if len(c) != 2 || c[0].Name != FC3284.Name || c[1].Name != HFE7000.Name {
		t.Fatalf("catalog order unexpected: %v", c)
	}
}

func testBoiler() Boiler {
	return Boiler{Fluid: FC3284, AreaCm2: 20, SpreadingResistance: 0.05}
}

func TestBECDoublesHeatTransfer(t *testing.T) {
	plain := testBoiler()
	coated := testBoiler()
	coated.BEC = true
	sp, err := plain.Superheat(100)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := coated.Superheat(100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp/sc-BECImprovement) > 1e-9 {
		t.Fatalf("BEC improvement %v, want %v", sp/sc, BECImprovement)
	}
	if coated.MaxPower() != plain.MaxPower()*BECImprovement {
		t.Fatal("BEC did not raise critical heat flux")
	}
}

func TestDryout(t *testing.T) {
	b := testBoiler() // CHF 15 W/cm² × 20 cm² = 300 W
	if _, err := b.Superheat(299); err != nil {
		t.Fatalf("unexpected dryout at 299 W: %v", err)
	}
	_, err := b.Superheat(301)
	if !errors.Is(err, ErrDryout) {
		t.Fatalf("expected ErrDryout, got %v", err)
	}
	if _, err := b.JunctionTemp(301); !errors.Is(err, ErrDryout) {
		t.Fatalf("JunctionTemp should propagate dryout, got %v", err)
	}
}

func TestJunctionTempComposition(t *testing.T) {
	b := testBoiler()
	tj, err := b.JunctionTemp(100)
	if err != nil {
		t.Fatal(err)
	}
	// 50 (bath) + flux/htc (5/1) + 0.05×100 = 60.
	if math.Abs(tj-60) > 1e-9 {
		t.Fatalf("junction temp %v, want 60", tj)
	}
}

func TestThermalResistanceConsistency(t *testing.T) {
	b := testBoiler()
	r, err := b.ThermalResistance(100)
	if err != nil {
		t.Fatal(err)
	}
	tj, _ := b.JunctionTemp(100)
	if math.Abs(tj-(b.Fluid.BoilingPointC+r*100)) > 1e-9 {
		t.Fatalf("resistance %v inconsistent with junction temp %v", r, tj)
	}
}

func TestJunctionTempMonotonic(t *testing.T) {
	b := testBoiler()
	f := func(raw uint8) bool {
		p1 := float64(raw)
		p2 := p1 + 10
		if p2 > b.MaxPower() {
			return true
		}
		t1, err1 := b.JunctionTemp(p1)
		t2, err2 := b.JunctionTemp(p2)
		return err1 == nil && err2 == nil && t2 > t1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVaporGeneration(t *testing.T) {
	b := testBoiler()
	// 105 J/g latent heat → 105 W boils 1 g/s.
	if got := b.VaporGeneration(105); math.Abs(got-1) > 1e-9 {
		t.Fatalf("vapor generation %v g/s, want 1", got)
	}
	if b.VaporGeneration(0) != 0 {
		t.Fatal("idle boiler generates vapor")
	}
}

func TestZeroAreaErrors(t *testing.T) {
	b := Boiler{Fluid: FC3284}
	if _, err := b.Superheat(10); err == nil {
		t.Fatal("zero-area boiler did not error")
	}
	if _, err := b.ThermalResistance(10); err == nil {
		t.Fatal("zero-area resistance did not error")
	}
}
