// Package fluids models the dielectric fluids used for two-phase
// immersion cooling and the boiling heat-transfer behaviour that
// determines junction temperatures. Properties for the two fluids the
// paper uses (3M FC-3284 and 3M HFE-7000, Table II) are built in, along
// with the boiling-enhancement-coating (BEC) effect the paper applies
// to CPU boilers.
package fluids

import (
	"errors"
	"fmt"
)

// Fluid describes a dielectric immersion fluid.
type Fluid struct {
	// Name is the commercial designation, e.g. "3M FC-3284".
	Name string
	// BoilingPointC is the boiling point at one atmosphere, in °C.
	// In steady-state two-phase operation the bath sits at this
	// temperature, which anchors component temperatures.
	BoilingPointC float64
	// DielectricConstant is the relative permittivity.
	DielectricConstant float64
	// LatentHeatJPerG is the latent heat of vaporization in J/g.
	LatentHeatJPerG float64
	// UsefulLifeYears is the manufacturer-stated useful life.
	UsefulLifeYears float64
	// NucleateHTC is the nucleate-boiling heat transfer coefficient
	// on a smooth surface, in W/(cm²·°C). Determines the superheat
	// (surface temperature above the boiling point) needed to carry
	// a given heat flux.
	NucleateHTC float64
	// CriticalHeatFluxWPerCm2 is the flux beyond which film boiling
	// (dryout) occurs on a smooth surface.
	CriticalHeatFluxWPerCm2 float64
}

// Catalog entries for the fluids in Table II. Heat-transfer parameters
// are representative values for fluorinated fluids; the paper's thermal
// results (Table III, Table V) are matched by the thermal package using
// these together with boiler geometry.
var (
	// FC3284 is 3M Fluorinert FC-3284 (boiling point 50°C), used in
	// small tank #2 and the 36-server large tank.
	FC3284 = Fluid{
		Name:                    "3M FC-3284",
		BoilingPointC:           50,
		DielectricConstant:      1.86,
		LatentHeatJPerG:         105,
		UsefulLifeYears:         30,
		NucleateHTC:             1.0,
		CriticalHeatFluxWPerCm2: 15,
	}
	// HFE7000 is 3M Novec HFE-7000 (boiling point 34°C), used in
	// small tank #1 with the overclockable Xeon W-3175X.
	HFE7000 = Fluid{
		Name:                    "3M HFE-7000",
		BoilingPointC:           34,
		DielectricConstant:      7.4,
		LatentHeatJPerG:         142,
		UsefulLifeYears:         30,
		NucleateHTC:             1.1,
		CriticalHeatFluxWPerCm2: 17,
	}
)

// Catalog returns the built-in fluids in a stable order.
func Catalog() []Fluid { return []Fluid{FC3284, HFE7000} }

// ByName looks up a catalog fluid by its commercial name.
func ByName(name string) (Fluid, error) {
	for _, f := range Catalog() {
		if f.Name == name {
			return f, nil
		}
	}
	return Fluid{}, fmt.Errorf("fluids: unknown fluid %q", name)
}

// BECImprovement is the boiling performance multiplier from 3M's
// L-20227 microporous boiling enhancement coating, per the paper
// ("improves boiling performance by 2× compared to un-coated smooth
// surfaces").
const BECImprovement = 2.0

// ErrDryout is returned when a requested heat flux exceeds the critical
// heat flux for the surface, meaning nucleate boiling would collapse
// into film boiling and the component would overheat.
var ErrDryout = errors.New("fluids: heat flux exceeds critical heat flux (dryout)")

// Boiler models a boiling surface in contact with the fluid: the bare
// integral heat spreader or a copper boiler plate, optionally coated
// with BEC.
type Boiler struct {
	Fluid Fluid
	// AreaCm2 is the wetted surface area in cm².
	AreaCm2 float64
	// BEC indicates whether the surface carries the L-20227 coating.
	BEC bool
	// SpreadingResistance is the conduction resistance from junction
	// to boiling surface in °C/W (die, TIM, heat spreader, plate).
	SpreadingResistance float64
}

// htc returns the effective heat transfer coefficient in W/(cm²·°C).
func (b Boiler) htc() float64 {
	h := b.Fluid.NucleateHTC
	if b.BEC {
		h *= BECImprovement
	}
	return h
}

// chf returns the effective critical heat flux in W/cm².
func (b Boiler) chf() float64 {
	c := b.Fluid.CriticalHeatFluxWPerCm2
	if b.BEC {
		c *= BECImprovement
	}
	return c
}

// Superheat returns the surface temperature rise above the fluid's
// boiling point required to dissipate powerW, or ErrDryout if the flux
// exceeds the critical heat flux.
func (b Boiler) Superheat(powerW float64) (float64, error) {
	if b.AreaCm2 <= 0 {
		return 0, errors.New("fluids: boiler area must be positive")
	}
	flux := powerW / b.AreaCm2
	if flux > b.chf() {
		return 0, fmt.Errorf("%w: flux %.1f W/cm² > CHF %.1f W/cm²", ErrDryout, flux, b.chf())
	}
	return flux / b.htc(), nil
}

// JunctionTemp returns the junction temperature in °C when dissipating
// powerW into the fluid bath: boiling point + surface superheat +
// conduction rise through the spreading resistance.
func (b Boiler) JunctionTemp(powerW float64) (float64, error) {
	sh, err := b.Superheat(powerW)
	if err != nil {
		return 0, err
	}
	return b.Fluid.BoilingPointC + sh + b.SpreadingResistance*powerW, nil
}

// ThermalResistance returns the effective junction-to-fluid thermal
// resistance in °C/W at the given power (superheat is linear in flux in
// the nucleate regime, so this is power-independent apart from the CHF
// limit; power is accepted for symmetry and validation).
func (b Boiler) ThermalResistance(powerW float64) (float64, error) {
	if b.AreaCm2 <= 0 {
		return 0, errors.New("fluids: boiler area must be positive")
	}
	if _, err := b.Superheat(powerW); err != nil {
		return 0, err
	}
	return 1/(b.htc()*b.AreaCm2) + b.SpreadingResistance, nil
}

// MaxPower returns the largest power the boiler can dissipate before
// dryout.
func (b Boiler) MaxPower() float64 {
	return b.chf() * b.AreaCm2
}

// VaporGeneration returns the rate of vapor generation in g/s when the
// boiler dissipates powerW. The condenser coil must return at least
// this rate to liquid; sealed tanks plus vapor traps keep losses near
// zero, per the paper's environmental discussion.
func (b Boiler) VaporGeneration(powerW float64) float64 {
	if b.Fluid.LatentHeatJPerG <= 0 {
		return 0
	}
	return powerW / b.Fluid.LatentHeatJPerG
}
