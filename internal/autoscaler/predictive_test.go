package autoscaler

import (
	"testing"

	"immersionoc/internal/queueing"
)

func rampForPrediction() []queueing.LoadPhase {
	// A steady climb the trend extrapolation can see coming.
	return []queueing.LoadPhase{
		{QPS: 400, DurationS: 200},
		{QPS: 700, DurationS: 120},
		{QPS: 1000, DurationS: 120},
		{QPS: 1300, DurationS: 120},
		{QPS: 1600, DurationS: 240},
	}
}

func runPolicy(t *testing.T, p Policy) *Result {
	t.Helper()
	cfg := DefaultConfig(p, rampForPrediction())
	cfg.Seed = 9
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPredictiveScalesOutEarlier(t *testing.T) {
	base := runPolicy(t, Baseline)
	pred := runPolicy(t, Predictive)
	if pred.ScaleOuts == 0 {
		t.Fatal("predictive never scaled out on a climbing ramp")
	}
	// The predictive policy's second VM must arrive no later than the
	// baseline's (forecast triggers at or before the threshold
	// crossing).
	firstAt := func(r *Result) float64 {
		for i, v := range r.VMs.Values {
			if v >= 2 {
				return r.VMs.Times[i]
			}
		}
		return 1e18
	}
	if firstAt(pred) > firstAt(base) {
		t.Fatalf("predictive scaled out at %v, baseline at %v", firstAt(pred), firstAt(base))
	}
}

func TestPredictiveNeverOverclocks(t *testing.T) {
	pred := runPolicy(t, Predictive)
	if pred.ScaleUps != 0 || pred.ScaleDowns != 0 {
		t.Fatal("pure predictive policy changed frequency")
	}
	if pred.FreqFrac.Max() != 0 {
		t.Fatal("predictive policy left base frequency")
	}
}

func TestPredictiveOCACombines(t *testing.T) {
	r := runPolicy(t, PredictiveOCA)
	if r.ScaleUps == 0 {
		t.Fatal("Pred+OC-A never overclocked on a climbing ramp")
	}
	base := runPolicy(t, Baseline)
	if r.P95LatencyS >= base.P95LatencyS {
		t.Fatalf("Pred+OC-A P95 %v not below baseline %v", r.P95LatencyS, base.P95LatencyS)
	}
}

func TestNaiveScaleUpJumpsToMax(t *testing.T) {
	cfg := DefaultConfig(OCA, []queueing.LoadPhase{{QPS: 1900, DurationS: 300}})
	cfg.Seed = 9
	cfg.InitialVMs = 3
	cfg.MinVMs = 3
	cfg.DisableScaleOut = true
	cfg.NaiveScaleUp = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.ScaleUps == 0 {
		t.Fatal("naive controller never scaled up")
	}
	// Every scale-up lands on the top rung: the frequency series
	// only ever shows 0 or 1.
	for _, v := range r.FreqFrac.Values {
		if v != 0 && v != 1 {
			t.Fatalf("naive controller at intermediate rung %v", v)
		}
	}
}

func TestModelUsesIntermediateRungs(t *testing.T) {
	// A load needing only a modest boost: the Equation 1 controller
	// settles below the top rung.
	cfg := DefaultConfig(OCA, []queueing.LoadPhase{{QPS: 1800, DurationS: 400}})
	cfg.Seed = 9
	cfg.InitialVMs = 3
	cfg.MinVMs = 3
	cfg.DisableScaleOut = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	final := r.FreqFrac.Values[len(r.FreqFrac.Values)-1]
	if final <= 0 {
		t.Fatal("model never scaled up")
	}
	if final >= 1 {
		t.Fatalf("model pegged at max for a moderate load (util ~0.42)")
	}
}
