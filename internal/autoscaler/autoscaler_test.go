package autoscaler

import (
	"testing"

	"immersionoc/internal/queueing"
)

func shortPhases() []queueing.LoadPhase {
	return []queueing.LoadPhase{
		{QPS: 500, DurationS: 200},
		{QPS: 1500, DurationS: 300},
		{QPS: 500, DurationS: 300},
	}
}

func TestPolicyStrings(t *testing.T) {
	if Baseline.String() != "Baseline" || OCE.String() != "OC-E" || OCA.String() != "OC-A" {
		t.Fatal("policy strings wrong")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(Baseline, nil)
	if cfg.ScaleOutThr != 0.50 || cfg.ScaleInThr != 0.20 {
		t.Fatal("scale-out/in thresholds not 50%/20%")
	}
	if cfg.ScaleUpThr != 0.40 || cfg.ScaleDownThr != 0.20 {
		t.Fatal("scale-up/down thresholds not 40%/20%")
	}
	if cfg.LongWindowS != 180 || cfg.ShortWindowS != 30 {
		t.Fatal("windows not 3 min / 30 s")
	}
	if cfg.DecisionPeriodS != 3 {
		t.Fatal("decision period not 3 s")
	}
	if cfg.ScaleOutLatencyS != 60 {
		t.Fatal("scale-out latency not 60 s")
	}
	if cfg.BaseGHz != 3.4 || cfg.MaxGHz != 4.1 || cfg.LadderBins != 8 {
		t.Fatal("frequency range not B2→OC1 in 8 bins")
	}
}

func TestBaselineScalesOut(t *testing.T) {
	cfg := DefaultConfig(Baseline, shortPhases())
	cfg.Seed = 11
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.ScaleOuts == 0 {
		t.Fatal("baseline never scaled out under a 3× load jump")
	}
	if r.ScaleUps != 0 || r.ScaleDowns != 0 {
		t.Fatal("baseline changed frequency")
	}
	if r.MaxVMs < 2 {
		t.Fatalf("max VMs %d", r.MaxVMs)
	}
	if r.Completed == 0 {
		t.Fatal("no requests completed")
	}
}

func TestBaselineScalesInAfterPeak(t *testing.T) {
	cfg := DefaultConfig(Baseline, []queueing.LoadPhase{
		{QPS: 1500, DurationS: 400},
		{QPS: 200, DurationS: 600},
	})
	cfg.Seed = 11
	cfg.InitialVMs = 3
	cfg.MinVMs = 1
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.ScaleIns == 0 {
		t.Fatal("never scaled in after load dropped")
	}
}

func TestOCAScalesUpBeforeOut(t *testing.T) {
	cfg := DefaultConfig(OCA, shortPhases())
	cfg.Seed = 11
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.ScaleUps == 0 {
		t.Fatal("OC-A never scaled up")
	}
	base := DefaultConfig(Baseline, shortPhases())
	base.Seed = 11
	rb, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if r.VMHours > rb.VMHours {
		t.Fatalf("OC-A used more VM hours (%v) than baseline (%v)", r.VMHours, rb.VMHours)
	}
}

func TestOCEOverclocksDuringScaleOutOnly(t *testing.T) {
	cfg := DefaultConfig(OCE, shortPhases())
	cfg.Seed = 11
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.ScaleUps == 0 {
		t.Fatal("OC-E never overclocked")
	}
	if r.ScaleUps != r.ScaleDowns {
		t.Fatalf("OC-E ups %d != downs %d (must return to base after scale-out)", r.ScaleUps, r.ScaleDowns)
	}
	// OC-E must end the run at base frequency.
	if got := r.FreqGHz.Values[len(r.FreqGHz.Values)-1]; got != float64(cfg.BaseGHz) {
		t.Fatalf("final frequency %v, want base", got)
	}
}

func TestFig15Validation(t *testing.T) {
	cfg := DefaultConfig(OCA, ValidationPhases())
	cfg.Seed = 3
	cfg.InitialVMs = 3
	cfg.MinVMs = 3
	cfg.DisableScaleOut = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.ScaleOuts != 0 || r.ScaleIns != 0 {
		t.Fatal("scale-out/in fired while disabled")
	}
	// At 1000 QPS utilization sits under the scale-up threshold →
	// base frequency.
	if got := r.FreqFrac.At(250); got != 0 {
		t.Fatalf("frequency fraction %v at low load, want 0", got)
	}
	// The 2000 QPS phase crosses 40% → frequency rises and the
	// model brings utilization back under the threshold.
	if got := r.FreqFrac.At(550); got <= 0 {
		t.Fatal("no scale-up during the 2000 QPS phase")
	}
	if got := r.Util.At(580); got > 0.45 {
		t.Fatalf("model failed to contain utilization: %v", got)
	}
	// At 3000 QPS even max frequency leaves utilization above the
	// scale-out threshold (the paper's observation).
	if got := r.FreqFrac.At(1150); got != 1 {
		t.Fatalf("frequency fraction %v at 3000 QPS, want 1 (max)", got)
	}
	if got := r.Util.At(1150); got < 0.5 {
		t.Fatalf("utilization %v at 3000 QPS, want > 0.5", got)
	}
	// Frequency returns to base when load drops.
	if got := r.FreqFrac.At(1450); got != 0 {
		t.Fatalf("frequency fraction %v after load drop, want 0", got)
	}
}

func TestEquation1ReducesUtilization(t *testing.T) {
	// With and without frequency control under the same 2000 QPS
	// load: the controlled run must show lower utilization.
	mk := func(policy Policy) *Result {
		cfg := DefaultConfig(policy, []queueing.LoadPhase{{QPS: 2000, DurationS: 400}})
		cfg.Seed = 5
		cfg.InitialVMs = 3
		cfg.MinVMs = 3
		cfg.DisableScaleOut = true
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	oca := mk(OCA)
	base := mk(Baseline)
	if oca.Util.At(350) >= base.Util.At(350) {
		t.Fatalf("OC-A utilization %v not below baseline %v", oca.Util.At(350), base.Util.At(350))
	}
	if oca.AvgPowerW <= base.AvgPowerW {
		t.Fatal("overclocking did not raise power")
	}
}

func TestRampPhases(t *testing.T) {
	phases := RampPhases(500, 4000, 500, 300)
	if len(phases) != 8 {
		t.Fatalf("%d phases, want 8", len(phases))
	}
	if phases[0].QPS != 500 || phases[7].QPS != 4000 {
		t.Fatal("ramp endpoints wrong")
	}
}

func TestValidationPhases(t *testing.T) {
	phases := ValidationPhases()
	want := []float64{1000, 2000, 500, 3000, 1000}
	if len(phases) != len(want) {
		t.Fatalf("%d phases", len(phases))
	}
	for i, p := range phases {
		if p.QPS != want[i] || p.DurationS != 300 {
			t.Fatalf("phase %d = %+v", i, p)
		}
	}
}

func TestRunValidation(t *testing.T) {
	cfg := DefaultConfig(Baseline, shortPhases())
	cfg.InitialVMs = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero initial VMs accepted")
	}
	cfg = DefaultConfig(Baseline, shortPhases())
	cfg.MaxVMs = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("max below initial accepted")
	}
}

func TestTableXIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table XI run in -short mode")
	}
	phases := RampPhases(500, 4000, 500, 300)
	run := func(p Policy) *Result {
		cfg := DefaultConfig(p, phases)
		cfg.Seed = 3
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run(Baseline)
	oce := run(OCE)
	oca := run(OCA)

	// Paper Table XI shape: baseline and OC-E reach 6 VMs, OC-A 5.
	if base.MaxVMs != 6 {
		t.Errorf("baseline max VMs %d, want 6", base.MaxVMs)
	}
	if oce.MaxVMs != 6 {
		t.Errorf("OC-E max VMs %d, want 6", oce.MaxVMs)
	}
	if oca.MaxVMs != 5 {
		t.Errorf("OC-A max VMs %d, want 5", oca.MaxVMs)
	}
	// Latency: OC-A ≤ OC-E < baseline.
	if !(oca.P95LatencyS < base.P95LatencyS && oce.P95LatencyS < base.P95LatencyS) {
		t.Errorf("P95 ordering violated: base %v, OC-E %v, OC-A %v",
			base.P95LatencyS, oce.P95LatencyS, oca.P95LatencyS)
	}
	if oca.AvgLatencyS >= base.AvgLatencyS {
		t.Errorf("OC-A average latency not below baseline")
	}
	// VM-hours: OC-A saves capacity (paper: 2.20 → 1.95, ~11%).
	if oca.VMHours >= base.VMHours*0.95 {
		t.Errorf("OC-A VM-hours %v, want well below baseline %v", oca.VMHours, base.VMHours)
	}
	// Power: OC-A draws the most VM power, baseline the least.
	if !(oca.AvgVMPowerW > oce.AvgVMPowerW && oce.AvgVMPowerW >= base.AvgVMPowerW) {
		t.Errorf("VM power ordering violated: base %v, OC-E %v, OC-A %v",
			base.AvgVMPowerW, oce.AvgVMPowerW, oca.AvgVMPowerW)
	}
	// Baseline utilization peaks near 70% (Figure 16).
	if base.Util.Max() < 0.6 {
		t.Errorf("baseline peak utilization %v, want ≥0.6", base.Util.Max())
	}
}
