// Package autoscaler implements the paper's overclocking-enhanced VM
// auto-scaler (§V, §VI-D, Figure 14).
//
// The auto-scaler watches the server VMs' telemetry (CPU utilization,
// Aperf/Pperf counters) and makes two kinds of decisions:
//
//   - scale-out/in: add a VM when the 3-minute average utilization
//     exceeds the scale-out threshold (deployment takes ~60 s), remove
//     one when it falls below the scale-in threshold;
//   - scale-up/down: change the CPU frequency of the server VMs within
//     a ladder between the baseline (B2, 3.4 GHz) and the overclock
//     (OC1, 4.1 GHz), using the 30-second average utilization and the
//     Equation 1 model to pick the minimum frequency that keeps
//     utilization under the scale-up threshold.
//
// Three policies are evaluated (Table XI):
//
//   - Baseline: scale-out/in only, no frequency changes;
//   - OC-E: overclock straight to OC1 while a scale-out is in flight,
//     hiding the VM-creation latency, then return to baseline;
//   - OC-A ("scale up then out"): keep utilization below the scale-up
//     threshold by overclocking first, postponing or avoiding the
//     scale-out; scale out only when even the maximum frequency cannot
//     hold utilization under the scale-out threshold.
package autoscaler

import (
	"context"
	"fmt"
	"math"

	"immersionoc/internal/counters"
	"immersionoc/internal/freq"
	"immersionoc/internal/power"
	"immersionoc/internal/queueing"
	"immersionoc/internal/sim"
	"immersionoc/internal/stats"
	"immersionoc/internal/telemetry"
	"immersionoc/internal/workload"
)

// Policy selects the auto-scaler variant.
type Policy int

const (
	// Baseline scales out/in only.
	Baseline Policy = iota
	// OCE overclocks while scale-out is in flight (OC-E).
	OCE
	// OCA overclocks to postpone/avoid scale-out (OC-A).
	OCA
	// Predictive extends the baseline with trend-based proactive
	// scale-out (the predictive autoscaling the paper cites
	// providers deploying): when the utilization trend forecasts a
	// threshold crossing within the scale-out latency, the VM starts
	// early. No overclocking. Not part of the paper's evaluation;
	// included as an ablation point against OC-E/OC-A.
	Predictive
	// PredictiveOCA combines the trend-based early scale-out with
	// OC-A's overclock-first behaviour.
	PredictiveOCA
)

func (p Policy) String() string {
	switch p {
	case Baseline:
		return "Baseline"
	case OCE:
		return "OC-E"
	case OCA:
		return "OC-A"
	case Predictive:
		return "Predictive"
	case PredictiveOCA:
		return "Pred+OC-A"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterizes one auto-scaler run.
type Config struct {
	Policy Policy
	// App is the served application (Client-Server in the paper).
	App workload.Profile
	// Phases is the client load schedule.
	Phases []queueing.LoadPhase
	// Seed seeds the arrival process.
	Seed uint64

	// InitialVMs is the starting VM count.
	InitialVMs int
	// MinVMs/MaxVMs bound scale-in/out.
	MinVMs, MaxVMs int

	// ScaleOutThr/ScaleInThr act on the long-window utilization.
	ScaleOutThr, ScaleInThr float64
	// ScaleUpThr/ScaleDownThr act on the short-window utilization.
	ScaleUpThr, ScaleDownThr float64
	// LongWindowS and ShortWindowS are the averaging windows (180 s
	// and 30 s in the paper).
	LongWindowS, ShortWindowS float64
	// DecisionPeriodS is the control loop period (3 s).
	DecisionPeriodS float64
	// ScaleOutLatencyS is VM deployment time (60 s).
	ScaleOutLatencyS float64
	// ScaleInCooldownS throttles consecutive scale-ins so the
	// post-removal window can refill.
	ScaleInCooldownS float64
	// ScaleOutCooldownS suppresses new scale-outs after one
	// completes until the long utilization window has refilled with
	// post-scale-out samples; otherwise stale high samples trigger
	// spurious additional VMs.
	ScaleOutCooldownS float64
	// FreqCooldownS spaces consecutive scale-up steps so the short
	// window can reflect the previous step before the next one (the
	// paper's "more than one frequency adjustment ... because the
	// utilization ... is averaged over the last 30 seconds").
	FreqCooldownS float64
	// ForecastHorizonS is how far ahead the Predictive policies
	// extrapolate the utilization trend; defaults to the scale-out
	// latency plus one long window.
	ForecastHorizonS float64
	// NaiveScaleUp disables the Equation 1 model in the OC-A
	// policies: any scale-up goes straight to the maximum frequency
	// regardless of the measured scalable fraction. Used by the
	// ablation that quantifies what the model is worth.
	NaiveScaleUp bool

	// BaseGHz/MaxGHz and LadderBins define the frequency range (B2
	// to OC1 in 8 bins).
	BaseGHz, MaxGHz freq.GHz
	LadderBins      int

	// DisableScaleOut turns off scale-out/in (the Figure 15 model
	// validation runs scale-up/down only).
	DisableScaleOut bool
	// PCores is the host's physical core capacity.
	PCores int
	// AppWorkers is the per-VM service concurrency (worker pool
	// size); zero means one worker per vcore. The paper's
	// client-server application serves requests from a worker pool
	// smaller than the VM size, so CPU utilization reads moderate
	// while the pool saturates during load surges.
	AppWorkers int
	// AppUtilQueueWeight is the per-queued-request utilization
	// overhead (see queueing.VM.UtilQueueWeight).
	AppUtilQueueWeight float64
	// SampleEveryS is the telemetry sampling period for the series
	// recorded for figures.
	SampleEveryS float64
	// PowerModel computes server power for the power accounting.
	PowerModel power.ServerModel
	// Tel, when non-nil, receives the run's telemetry: scale-decision
	// counters (scale_outs/ins/ups/downs), forecast_scaleouts and
	// mispredictions for the predictive policies, power/frequency
	// gauges and the queueing engine's request metrics.
	Tel *telemetry.Scope
}

// DefaultConfig returns the paper's experimental setup for the given
// policy and load schedule.
func DefaultConfig(p Policy, phases []queueing.LoadPhase) Config {
	return Config{
		Policy:             p,
		App:                workload.ClientServer,
		Phases:             phases,
		Seed:               1,
		InitialVMs:         1,
		MinVMs:             1,
		MaxVMs:             7,
		ScaleOutThr:        0.50,
		ScaleInThr:         0.20,
		ScaleUpThr:         0.40,
		ScaleDownThr:       0.20,
		LongWindowS:        180,
		ShortWindowS:       30,
		DecisionPeriodS:    3,
		ScaleOutLatencyS:   60,
		ScaleInCooldownS:   120,
		ScaleOutCooldownS:  180,
		FreqCooldownS:      24,
		ForecastHorizonS:   240,
		BaseGHz:            freq.B2.CoreGHz,
		MaxGHz:             freq.OC1.CoreGHz,
		LadderBins:         8,
		PCores:             28,
		AppWorkers:         3,
		AppUtilQueueWeight: 0,
		SampleEveryS:       3,
		PowerModel:         power.Tank1Server,
	}
}

// Result captures one run's outcome and the recorded series.
type Result struct {
	Policy Policy
	// P95LatencyS and AvgLatencyS are end-to-end request latencies.
	P95LatencyS, AvgLatencyS float64
	// MaxVMs is the peak concurrent (deployed or deploying) VMs.
	MaxVMs int
	// VMHours integrates deployed VMs over the run.
	VMHours float64
	// AvgPowerW is the time-averaged server power.
	AvgPowerW float64
	// AvgVMPowerW is the time-averaged power attributable to the
	// server VMs themselves (core dynamic + active-core overhead,
	// excluding shared platform/uncore/memory power) — the quantity
	// the paper's +7%/+27% numbers describe.
	AvgVMPowerW float64
	// Completed and Dropped count requests.
	Completed, Dropped uint64
	// EnergyPerReqJ is server energy divided by completed requests —
	// the efficiency metric that decides whether overclocking or
	// extra VMs serve a diurnal day more cheaply.
	EnergyPerReqJ float64
	// Util is the sampled average VM utilization (Figure 16).
	Util *stats.Series
	// FreqFrac is the frequency as a fraction of the ladder range
	// (Figure 15's secondary axis).
	FreqFrac *stats.Series
	// FreqGHz is the absolute frequency series.
	FreqGHz *stats.Series
	// VMs is the deployed VM count over time.
	VMs *stats.Series
	// PowerW is the sampled power series.
	PowerW *stats.Series
	// VMPowerW is the sampled VM-attributed power series.
	VMPowerW *stats.Series
	// ScaleOuts, ScaleIns, ScaleUps, ScaleDowns count actions.
	ScaleOuts, ScaleIns, ScaleUps, ScaleDowns int
}

// vmState tracks telemetry bookkeeping for one VM.
type vmState struct {
	vm           *queueing.VM
	acc          *counters.Accumulator
	lastSample   counters.Sample
	lastIntegral float64
	lastTime     float64
}

// Run executes the auto-scaler simulation and returns the result.
func Run(cfg Config) (*Result, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx executes the auto-scaler simulation under ctx. Cancellation
// is honored at the kernel's event-batch boundaries, so a cancelled
// run returns promptly (well within one decision period of simulated
// progress) with the context error.
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.App.Validate(); err != nil {
		return nil, err
	}
	if cfg.InitialVMs < 1 || cfg.MaxVMs < cfg.InitialVMs {
		return nil, fmt.Errorf("autoscaler: bad VM bounds (initial %d, max %d)", cfg.InitialVMs, cfg.MaxVMs)
	}
	ladder, err := freq.NewLadder(cfg.BaseGHz, cfg.MaxGHz, cfg.LadderBins)
	if err != nil {
		return nil, err
	}

	sf := cfg.App.ScalableFraction()
	eng := queueing.NewEngine(sf)
	eng.SetTelemetry(cfg.Tel)
	host := eng.NewHost(cfg.PCores)
	lb := queueing.NewLoadBalancer(host)

	// Telemetry handles (all nil no-ops when cfg.Tel is nil).
	mScaleOuts := cfg.Tel.Counter("scale_outs")
	mScaleIns := cfg.Tel.Counter("scale_ins")
	mScaleUps := cfg.Tel.Counter("scale_ups")
	mScaleDowns := cfg.Tel.Counter("scale_downs")
	mForecastOuts := cfg.Tel.Counter("forecast_scaleouts")
	mMispredictions := cfg.Tel.Counter("mispredictions")
	gFreq := cfg.Tel.Gauge("freq_ghz")
	gVMs := cfg.Tel.Gauge("vms")
	gPower := cfg.Tel.Gauge("power_w")
	gPeakPower := cfg.Tel.Gauge("peak_power_w")

	// The load schedule pins the run's sample counts up front: one
	// series point per decision period and roughly QPS×duration
	// latency samples. Sizing the buffers here keeps the million-
	// sample digests from doubling their way up during the run.
	var totalS, totalReq float64
	for _, ph := range cfg.Phases {
		totalS += ph.DurationS
		totalReq += ph.QPS * ph.DurationS
	}
	nPoints := 0
	if cfg.DecisionPeriodS > 0 {
		nPoints = int(totalS/cfg.DecisionPeriodS) + 2
	}
	eng.AllLatency.Reserve(int(totalReq) + 1024)

	res := &Result{
		Policy:   cfg.Policy,
		Util:     stats.NewSeriesCap("utilization", nPoints),
		FreqFrac: stats.NewSeriesCap("freq-fraction", nPoints),
		FreqGHz:  stats.NewSeriesCap("freq-ghz", nPoints),
		VMs:      stats.NewSeriesCap("vms", nPoints),
		PowerW:   stats.NewSeriesCap("power", nPoints),
		VMPowerW: stats.NewSeriesCap("vm-power", nPoints),
	}

	// speedAt converts a core frequency into the engine's execution
	// rate multiplier: the frequency-scalable part of the demand
	// shrinks with the clock.
	speedAt := func(f freq.GHz) float64 {
		r := sf*float64(cfg.BaseGHz/f) + (1 - sf)
		return 1 / r
	}

	curFreq := cfg.BaseGHz
	var states []*vmState
	vmSeq := 0
	addVM := func(now float64) *vmState {
		vmSeq++
		v := host.NewVM(fmt.Sprintf("vm%d", vmSeq), cfg.App.Cores, speedAt(curFreq))
		if cfg.DisableScaleOut {
			// Fixed fleet: the balancer spreads the load evenly, so
			// each VM's latency digest can be sized to its share.
			v.Latency.Reserve(int(totalReq)/cfg.InitialVMs + 1024)
		}
		v.Workers = cfg.AppWorkers
		v.UtilQueueWeight = cfg.AppUtilQueueWeight
		st := &vmState{
			vm:       v,
			acc:      counters.NewAccumulator(float64(cfg.BaseGHz)),
			lastTime: now,
		}
		states = append(states, st)
		return st
	}

	for i := 0; i < cfg.InitialVMs; i++ {
		addVM(0)
	}

	service := queueing.LogNormalService(cfg.App.BaseServiceMS/1000, cfg.App.ServiceCV)
	gen := queueing.NewGenerator(eng, lb, cfg.Seed, service, cfg.Phases)
	gen.Start()

	longWin := stats.NewWindow(cfg.LongWindowS)
	shortWin := stats.NewWindow(cfg.ShortWindowS)

	pendingScaleOut := false
	lastScaleIn := math.Inf(-1)
	lastScaleOutDone := math.Inf(-1)
	lastFreqUp := math.Inf(-1)
	deployed := cfg.InitialVMs
	res.VMs.Add(0, float64(deployed))
	res.MaxVMs = deployed

	setFreq := func(f freq.GHz) {
		if f == curFreq {
			return
		}
		if f > curFreq {
			res.ScaleUps++
			mScaleUps.Inc()
		} else {
			res.ScaleDowns++
			mScaleDowns.Inc()
		}
		curFreq = f
		gFreq.Set(float64(f))
		sp := speedAt(f)
		for _, st := range states {
			st.vm.SetSpeed(sp)
		}
	}

	powerCfg := func() freq.Config {
		c := freq.B2
		c.CoreGHz = curFreq
		if curFreq > cfg.BaseGHz {
			// Voltage offset scales with position in the ladder up
			// to OC1's +50 mV.
			c.VoltageOffsetMV = 50 * ladder.Fraction(curFreq)
			c.Overclocked = true
		}
		return c
	}

	// forecastPending tracks a scale-out started purely on the
	// predictive trend trigger; if the long-window utilization never
	// crosses the scale-out threshold before the VM deploys, that
	// deployment was a misprediction.
	forecastPending, forecastVindicated := false, false
	startScaleOut := func(s *sim.Simulation, forecastOnly bool) bool {
		if pendingScaleOut || deployed >= cfg.MaxVMs {
			return false
		}
		if float64(s.Now())-lastScaleOutDone < cfg.ScaleOutCooldownS {
			return false
		}
		pendingScaleOut = true
		res.ScaleOuts++
		mScaleOuts.Inc()
		if forecastOnly {
			mForecastOuts.Inc()
			forecastPending, forecastVindicated = true, false
		}
		deployed++
		gVMs.Set(float64(deployed))
		if deployed > res.MaxVMs {
			res.MaxVMs = deployed
		}
		s.After(cfg.ScaleOutLatencyS, func(s2 *sim.Simulation) {
			now := float64(s2.Now())
			addVM(now)
			pendingScaleOut = false
			lastScaleOutDone = now
			if forecastPending {
				if !forecastVindicated {
					mMispredictions.Inc()
				}
				forecastPending = false
			}
			res.VMs.Add(now, float64(deployed))
			if cfg.Policy == OCE {
				// Scale-out complete: drop back to baseline.
				setFreq(cfg.BaseGHz)
			}
		})
		res.VMs.Add(float64(s.Now()), float64(deployed))
		return true
	}

	scaleIn := func(now float64) {
		if len(states) <= cfg.MinVMs || pendingScaleOut {
			return
		}
		if now-lastScaleIn < cfg.ScaleInCooldownS {
			return
		}
		lastScaleIn = now
		res.ScaleIns++
		mScaleIns.Inc()
		victim := states[len(states)-1]
		states = states[:len(states)-1]
		victim.vm.SetAccepting(false)
		host.RemoveVM(victim.vm)
		deployed--
		gVMs.Set(float64(deployed))
		res.VMs.Add(now, float64(deployed))
	}

	// avgUtilAndSlope samples each VM's utilization since the last
	// decision and the counter-measured scalable fraction.
	avgUtilAndSlope := func(now float64) (util, slope float64) {
		if len(states) == 0 {
			return 0, sf
		}
		var uSum, slopeSum float64
		var slopeN int
		for _, st := range states {
			integ := st.vm.BusyIntegral(now)
			span := now - st.lastTime
			var u float64
			if span > 0 {
				u = (integ - st.lastIntegral) / (span * float64(st.vm.VCores))
			}
			busy := integ - st.lastIntegral
			st.acc.Advance(now, busy, float64(curFreq), sf)
			cur := st.acc.Read()
			d := cur.Sub(st.lastSample)
			if d.Aperf > 0 {
				slopeSum += d.ScalableFraction()
				slopeN++
			}
			st.lastSample = cur
			st.lastIntegral = integ
			st.lastTime = now
			uSum += u
		}
		util = uSum / float64(len(states))
		if slopeN > 0 {
			slope = slopeSum / float64(slopeN)
		} else {
			slope = sf
		}
		return util, slope
	}

	duration := gen.TotalDuration()
	eng.Sim.NewTicker(sim.Time(cfg.DecisionPeriodS), cfg.DecisionPeriodS, func(s *sim.Simulation, t sim.Time) {
		now := float64(t)
		if now > duration {
			return
		}
		util, slope := avgUtilAndSlope(now)
		longWin.Add(now, util)
		shortWin.Add(now, util)
		uLong := longWin.Mean()
		uShort := shortWin.Mean()

		// Record series.
		res.Util.Add(now, uShort)
		res.FreqFrac.Add(now, ladder.Fraction(curFreq))
		res.FreqGHz.Add(now, float64(curFreq))
		total, vmOnly := instantPower(cfg, powerCfg(), states)
		res.PowerW.Add(now, total)
		res.VMPowerW.Add(now, vmOnly)
		gPower.Set(total)
		gPeakPower.SetMax(total)

		// A pending forecast-triggered scale-out is vindicated the
		// moment the reactive trigger would also have fired.
		if forecastPending && uLong > cfg.ScaleOutThr {
			forecastVindicated = true
		}

		switch cfg.Policy {
		case Baseline:
			if !cfg.DisableScaleOut {
				if uLong > cfg.ScaleOutThr {
					startScaleOut(s, false)
				} else if uLong < cfg.ScaleInThr {
					scaleIn(now)
				}
			}
		case OCE:
			if !cfg.DisableScaleOut {
				if uLong > cfg.ScaleOutThr {
					// Overclock for the duration of the scale-out to
					// hide the VM-creation latency.
					if startScaleOut(s, false) {
						setFreq(cfg.MaxGHz)
					}
				} else if uLong < cfg.ScaleInThr {
					scaleIn(now)
				}
			}
		case OCA, PredictiveOCA:
			// Frequency control on the short window (Equation 1).
			if uShort > cfg.ScaleUpThr && now-lastFreqUp >= cfg.FreqCooldownS {
				if cfg.NaiveScaleUp {
					if curFreq < cfg.MaxGHz {
						setFreq(cfg.MaxGHz)
						lastFreqUp = now
					}
				} else {
					target := cfg.ScaleUpThr * 0.97
					f, ok := counters.MinFreqForUtil(uShort, slope, float64(curFreq), target, ladderAbove(ladder, curFreq))
					if (ok || f > float64(curFreq)) && freq.GHz(f) > curFreq {
						setFreq(freq.GHz(f))
						lastFreqUp = now
					}
				}
			} else if uShort < cfg.ScaleDownThr && curFreq > cfg.BaseGHz {
				target := cfg.ScaleUpThr * 0.9
				f := counters.MaxDownFreqForUtil(uShort, slope, float64(curFreq), target, ladder.StepsFloat())
				if freq.GHz(f) < curFreq {
					setFreq(freq.GHz(f))
				}
			}
			if !cfg.DisableScaleOut {
				// Scale out only when even the max frequency cannot
				// hold the long-window utilization under the
				// threshold — or, for the predictive variant, when
				// the trend forecasts that happening within the
				// deployment latency.
				reactive := uLong > cfg.ScaleOutThr
				trigger := reactive
				if cfg.Policy == PredictiveOCA {
					trigger = trigger || shortWin.Forecast(cfg.ForecastHorizonS) > cfg.ScaleOutThr
				}
				if trigger && curFreq >= cfg.MaxGHz-1e-9 {
					startScaleOut(s, !reactive)
				} else if uLong < cfg.ScaleInThr {
					scaleIn(now)
				}
			}
		case Predictive:
			if !cfg.DisableScaleOut {
				// Proactive trigger: the short-window trend forecasts
				// a scale-out-threshold crossing within the
				// deployment latency.
				forecast := shortWin.Forecast(cfg.ForecastHorizonS)
				if uLong > cfg.ScaleOutThr || forecast > cfg.ScaleOutThr {
					startScaleOut(s, uLong <= cfg.ScaleOutThr)
				} else if uLong < cfg.ScaleInThr && shortWin.Slope() <= 0 {
					scaleIn(now)
				}
			}
		}
	})

	if err := eng.Sim.RunUntilCtx(ctx, sim.Time(duration)); err != nil {
		return nil, err
	}

	res.P95LatencyS = eng.AllLatency.P95()
	res.AvgLatencyS = eng.AllLatency.Mean()
	// The engine is discarded on return and the result carries only
	// scalars and series, so the latency sample blocks can go back to
	// the pool for the next policy arm or replication.
	defer eng.ReleaseStats()
	res.Completed = eng.Completed
	res.Dropped = gen.Dropped
	res.VMHours = res.VMs.Integral(0, duration) / 3600
	res.AvgPowerW = res.PowerW.Mean()
	res.AvgVMPowerW = res.VMPowerW.Mean()
	if res.Completed > 0 {
		res.EnergyPerReqJ = res.AvgPowerW * duration / float64(res.Completed)
	}
	return res, nil
}

// instantPower estimates server power from the VMs' current runnable
// vcores under the active frequency configuration. The second return
// value is the power attributable to the VMs themselves (core dynamic
// plus active-core overhead).
func instantPower(cfg Config, fc freq.Config, states []*vmState) (totalW, vmW float64) {
	var utilSum float64
	var active int
	for _, st := range states {
		utilSum += float64(st.vm.InService())
		active += st.vm.VCores
	}
	totalW = cfg.PowerModel.Power(fc, utilSum, active)
	vmW = utilSum*cfg.PowerModel.CoreW(fc) + float64(active)*cfg.PowerModel.CoreActiveW
	return totalW, vmW
}

// ladderAbove returns ladder rungs strictly above f, ascending, as
// float64 for the counters helpers.
func ladderAbove(l *freq.Ladder, f freq.GHz) []float64 {
	var out []float64
	for _, s := range l.Steps() {
		if s > f+1e-9 {
			out = append(out, float64(s))
		}
	}
	return out
}

// DiurnalPhases builds a compressed diurnal day: QPS follows a raised
// cosine from base to peak and back over dayS seconds, discretized in
// stepS-second phases. Long-running services see exactly this shape,
// and it is where "scale up, then out" saves the most VM-hours.
func DiurnalPhases(baseQPS, peakQPS, dayS, stepS float64) []queueing.LoadPhase {
	var out []queueing.LoadPhase
	for t := 0.0; t < dayS; t += stepS {
		frac := (1 - math.Cos(2*math.Pi*t/dayS)) / 2
		out = append(out, queueing.LoadPhase{
			QPS:       baseQPS + (peakQPS-baseQPS)*frac,
			DurationS: math.Min(stepS, dayS-t),
		})
	}
	return out
}

// RampPhases builds the Table XI load schedule: QPS from start to max
// in steps of `step` every phaseS seconds.
func RampPhases(start, max, step, phaseS float64) []queueing.LoadPhase {
	var out []queueing.LoadPhase
	for q := start; q <= max+1e-9; q += step {
		out = append(out, queueing.LoadPhase{QPS: q, DurationS: phaseS})
	}
	return out
}

// ValidationPhases is the Figure 15 load schedule: 1000, 2000, 500,
// 3000, 1000 QPS for 5 minutes each.
func ValidationPhases() []queueing.LoadPhase {
	qs := []float64{1000, 2000, 500, 3000, 1000}
	out := make([]queueing.LoadPhase, len(qs))
	for i, q := range qs {
		out[i] = queueing.LoadPhase{QPS: q, DurationS: 300}
	}
	return out
}
