// Package rng provides deterministic random number generation and the
// statistical distributions used by the workload and queueing
// simulators. All experiments seed their generators explicitly so runs
// are reproducible bit-for-bit.
//
// The core generator is SplitMix64: tiny, fast, passes BigCrush for the
// purposes of simulation, and trivially splittable so every simulated
// entity (VM, client, server) can own an independent stream derived from
// the experiment seed.
package rng

import "math"

// Source is a deterministic 64-bit random source (SplitMix64).
type Source struct {
	state uint64
}

// New returns a source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives an independent child stream from the source; the parent
// stream advances by one step. Use this to hand each simulated entity
// its own generator.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). Used for Markovian (Poisson) arrival processes.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	u := s.Float64()
	// Guard against log(0).
	for u == 0 {
		u = s.Float64()
	}
	return -math.Log(u) / rate
}

// Norm returns a normally distributed value with the given mean and
// standard deviation (Box–Muller; one value per call for determinism).
func (s *Source) Norm(mean, stddev float64) float64 {
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value parameterized by
// the desired mean and coefficient of variation (stddev/mean) of the
// resulting distribution. Log-normal service times give the "general"
// distribution in the paper's M/G/k client-server application.
// Samplers drawing many values with fixed parameters should hoist the
// parameter conversion with LogNormalParams + LogNormalMuSigma.
func (s *Source) LogNormal(mean, cv float64) float64 {
	mu, sigma, ok := LogNormalParams(mean, cv)
	if !ok {
		return mean
	}
	return s.LogNormalMuSigma(mu, sigma)
}

// LogNormalParams converts a (mean, cv) parameterization into the
// underlying normal's (mu, sigma). ok is false for cv == 0, where the
// distribution degenerates to the constant mean. The conversion costs
// two logs and a square root, so per-request samplers compute it once.
func LogNormalParams(mean, cv float64) (mu, sigma float64, ok bool) {
	if mean <= 0 {
		panic("rng: LogNormal with non-positive mean")
	}
	if cv < 0 {
		panic("rng: LogNormal with negative cv")
	}
	if cv == 0 {
		return 0, 0, false
	}
	sigma2 := math.Log(1 + cv*cv)
	return math.Log(mean) - sigma2/2, math.Sqrt(sigma2), true
}

// LogNormalMuSigma draws exp(Norm(mu, sigma)) — LogNormal with the
// parameter conversion already done. Consumes exactly the same
// variates as LogNormal, so hoisting the conversion does not perturb
// the stream.
func (s *Source) LogNormalMuSigma(mu, sigma float64) float64 {
	return math.Exp(s.Norm(mu, sigma))
}

// Pareto returns a bounded Pareto value with shape alpha and minimum
// xmin. Heavy-tailed service demands (e.g. batch jobs) use this.
func (s *Source) Pareto(xmin, alpha float64) float64 {
	if xmin <= 0 || alpha <= 0 {
		panic("rng: Pareto requires positive xmin and alpha")
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xmin / math.Pow(u, 1/alpha)
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Poisson returns a Poisson-distributed count with the given mean
// (Knuth's algorithm for small means, normal approximation for large).
func (s *Source) Poisson(mean float64) int {
	if mean < 0 {
		panic("rng: Poisson with negative mean")
	}
	if mean == 0 {
		return 0
	}
	if mean > 64 {
		v := s.Norm(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Empirical samples from a discrete distribution given by weights.
// Returns the selected index. Weights must be non-negative and sum to a
// positive value.
func (s *Source) Empirical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: Empirical with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Empirical with zero total weight")
	}
	x := s.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
