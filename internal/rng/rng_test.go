package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not replay the parent's outputs.
	p := New(7)
	p.Uint64() // advance past the split draw
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatalf("child replays parent at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(9)
	s := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestExpMean(t *testing.T) {
	r := New(11)
	rate := 4.0
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Exp(rate)
	}
	mean := sum / float64(n)
	if math.Abs(mean-1/rate) > 0.01/rate*4 {
		t.Fatalf("exp mean %v, want ~%v", mean, 1/rate)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	n := 200000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		ss += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(ss/float64(n) - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("norm mean %v, want ~10", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Fatalf("norm stddev %v, want ~2", std)
	}
}

func TestLogNormalMoments(t *testing.T) {
	r := New(17)
	n := 400000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := r.LogNormal(5, 0.8)
		if v <= 0 {
			t.Fatalf("lognormal non-positive: %v", v)
		}
		sum += v
		ss += v * v
	}
	mean := sum / float64(n)
	cv := math.Sqrt(ss/float64(n)-mean*mean) / mean
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("lognormal mean %v, want ~5", mean)
	}
	if math.Abs(cv-0.8) > 0.05 {
		t.Fatalf("lognormal cv %v, want ~0.8", cv)
	}
}

func TestLogNormalZeroCV(t *testing.T) {
	r := New(1)
	if v := r.LogNormal(3, 0); v != 3 {
		t.Fatalf("cv=0 lognormal = %v, want 3", v)
	}
}

func TestParetoTail(t *testing.T) {
	r := New(19)
	xmin := 2.0
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(xmin, 1.5); v < xmin {
			t.Fatalf("pareto below xmin: %v", v)
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(23)
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("bernoulli rate %v, want ~0.3", rate)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(29)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		n := 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("poisson(%v) mean %v", mean, got)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	if New(1).Poisson(0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
}

func TestEmpiricalDistribution(t *testing.T) {
	r := New(31)
	weights := []float64{1, 3, 0, 6}
	counts := make([]int, 4)
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.Empirical(weights)]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero-weight bucket selected %d times", counts[2])
	}
	if got := float64(counts[3]) / float64(n); math.Abs(got-0.6) > 0.01 {
		t.Fatalf("bucket 3 rate %v, want ~0.6", got)
	}
	if got := float64(counts[0]) / float64(n); math.Abs(got-0.1) > 0.01 {
		t.Fatalf("bucket 0 rate %v, want ~0.1", got)
	}
}

func TestEmpiricalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-total Empirical did not panic")
		}
	}()
	New(1).Empirical([]float64{0, 0})
}
