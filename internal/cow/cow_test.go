package cow

import (
	"math/rand"
	"testing"
)

// fillFrom returns a fill callback copying from src.
func fillFrom(src []int) func(dst []int, base int) {
	return func(dst []int, base int) { copy(dst, src[base:base+len(dst)]) }
}

// readAll flattens a column for comparison.
func readAll(c *Col[int]) []int {
	out := make([]int, c.Len())
	for i := range out {
		out[i] = c.At(i)
	}
	return out
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFillMaterializesAndShares drives the basic COW lifecycle: a
// fresh destination materializes fully, a clean re-fill shares every
// chunk (same backing arrays, zero allocations), and a marked element
// re-materializes exactly its chunk while the rest stay shared.
func TestFillMaterializesAndShares(t *testing.T) {
	const n, shift = 37, 3 // chunk size 8, last chunk 5 elements
	src := make([]int, n)
	for i := range src {
		src[i] = i * 11
	}
	tr := NewTracker(n, shift)
	var col Col[int]
	Fill(tr, &col, fillFrom(src))
	tr.Advance()
	if !equal(readAll(&col), src) {
		t.Fatalf("fresh fill mismatch: %v", readAll(&col))
	}
	if col.NumChunks() != 5 {
		t.Fatalf("NumChunks = %d, want 5", col.NumChunks())
	}
	if got := len(col.Chunk(4)); got != 5 {
		t.Fatalf("last chunk length = %d, want 5", got)
	}

	// Clean re-fill: zero allocations, chunks shared.
	before := make([][]int, col.NumChunks())
	for i := range before {
		before[i] = col.Chunk(i)
	}
	if a := testing.AllocsPerRun(20, func() {
		Fill(tr, &col, fillFrom(src))
		tr.Advance()
	}); a != 0 {
		t.Fatalf("clean re-fill allocated %v times per run, want 0", a)
	}
	for i := range before {
		if &col.Chunk(i)[0] != &before[i][0] {
			t.Fatalf("clean re-fill replaced chunk %d", i)
		}
	}

	// One marked element: only its chunk is rebuilt.
	src[19] = -1 // chunk 2
	tr.Mark(19)
	Fill(tr, &col, fillFrom(src))
	tr.Advance()
	if !equal(readAll(&col), src) {
		t.Fatalf("dirty re-fill mismatch")
	}
	for i := range before {
		same := &col.Chunk(i)[0] == &before[i][0]
		if i == 2 && same {
			t.Fatalf("dirty chunk 2 was not re-materialized")
		}
		if i != 2 && !same {
			t.Fatalf("clean chunk %d was re-materialized", i)
		}
	}
}

// TestFillNeverMutatesPublished pins immutability: the previous view's
// chunks hold their old values after the source mutates and a new view
// is filled.
func TestFillNeverMutatesPublished(t *testing.T) {
	const n, shift = 16, 2
	src := make([]int, n)
	for i := range src {
		src[i] = i
	}
	tr := NewTracker(n, shift)
	var a Col[int]
	Fill(tr, &a, fillFrom(src))
	tr.Advance()

	published := a // readers hold the struct by value via pointer-to-view
	src[5] = 500
	tr.Mark(5)
	b := a // chain the next view off the previous one
	Fill(tr, &b, fillFrom(src))
	tr.Advance()

	if published.At(5) != 5 {
		t.Fatalf("published view changed: At(5) = %d, want 5", published.At(5))
	}
	if b.At(5) != 500 {
		t.Fatalf("new view stale: At(5) = %d, want 500", b.At(5))
	}
	// Unmarked chunks are shared between the two views.
	if &published.Chunk(0)[0] != &b.Chunk(0)[0] {
		t.Fatalf("clean chunk not shared across views")
	}
}

// TestFillForeignDestinations checks the safety net: a zero-value
// destination, a destination from another tracker, and a destination
// refilled after a geometry change are all fully materialized.
func TestFillForeignDestinations(t *testing.T) {
	src := []int{1, 2, 3, 4, 5, 6, 7}
	tr := NewTracker(len(src), 1)
	var a Col[int]
	Fill(tr, &a, fillFrom(src))
	tr.Advance()

	// Foreign geometry: same length, different shift.
	tr2 := NewTracker(len(src), 2)
	b := a
	Fill(tr2, &b, fillFrom(src))
	tr2.Advance()
	if !equal(readAll(&b), src) || b.NumChunks() != 2 {
		t.Fatalf("foreign-geometry refill mismatch: %v (%d chunks)", readAll(&b), b.NumChunks())
	}

	// Fresh zero-value destination after many clean rounds.
	for i := 0; i < 5; i++ {
		Fill(tr, &a, fillFrom(src))
		tr.Advance()
	}
	var fresh Col[int]
	Fill(tr, &fresh, fillFrom(src))
	tr.Advance()
	if !equal(readAll(&fresh), src) {
		t.Fatalf("fresh destination mismatch: %v", readAll(&fresh))
	}
}

// TestMultipleChains pins the non-destructive-export property: two
// destinations chained off one tracker each see every mutation, even
// when they are filled at different cadences. This is what the
// COW-vs-full-copy differential tests and the benchmark baseline rely
// on.
func TestMultipleChains(t *testing.T) {
	const n, shift = 100, 3
	src := make([]int, n)
	tr := NewTracker(n, shift)
	rng := rand.New(rand.NewSource(7))
	var fast, slow Col[int]
	for round := 0; round < 200; round++ {
		for k := 0; k < 1+rng.Intn(4); k++ {
			i := rng.Intn(n)
			src[i] = rng.Int()
			tr.Mark(i)
		}
		Fill(tr, &fast, fillFrom(src))
		tr.Advance()
		if !equal(readAll(&fast), src) {
			t.Fatalf("round %d: fast chain diverged", round)
		}
		if round%7 == 0 {
			Fill(tr, &slow, fillFrom(src))
			tr.Advance()
			if !equal(readAll(&slow), src) {
				t.Fatalf("round %d: slow chain diverged", round)
			}
		}
	}
}

// TestMarkRangeAndAll covers the bulk marking paths, including ranges
// that straddle chunk boundaries and empty ranges.
func TestMarkRangeAndAll(t *testing.T) {
	const n, shift = 64, 3
	src := make([]int, n)
	tr := NewTracker(n, shift)
	var col Col[int]
	Fill(tr, &col, fillFrom(src))
	tr.Advance()

	gen := tr.Gen() - 1
	tr.MarkRange(6, 6) // empty: no chunks dirty
	if d := tr.DirtyChunks(gen); d != 0 {
		t.Fatalf("empty MarkRange dirtied %d chunks", d)
	}
	tr.MarkRange(6, 19) // elements 6..18 span chunks 0, 1, 2
	if d := tr.DirtyChunks(gen); d != 3 {
		t.Fatalf("MarkRange(6,19) dirtied %d chunks, want 3", d)
	}
	tr.MarkAll()
	if d := tr.DirtyChunks(gen); d != col.NumChunks() {
		t.Fatalf("MarkAll dirtied %d chunks, want %d", d, col.NumChunks())
	}
	for i := range src {
		src[i] = i + 1
	}
	Fill(tr, &col, fillFrom(src))
	tr.Advance()
	if !equal(readAll(&col), src) {
		t.Fatalf("refill after MarkAll mismatch")
	}
}

// TestDirtyFillAllocsBounded pins the publication cost: re-filling
// after one marked element allocates exactly the chunk-header copy
// plus the one rebuilt chunk, independent of column length.
func TestDirtyFillAllocsBounded(t *testing.T) {
	for _, n := range []int{1 << 11, 1 << 15} {
		src := make([]int, n)
		tr := NewTracker(n, 0)
		var col Col[int]
		Fill(tr, &col, fillFrom(src))
		tr.Advance()
		allocs := testing.AllocsPerRun(20, func() {
			tr.Mark(n / 2)
			Fill(tr, &col, fillFrom(src))
			tr.Advance()
		})
		if allocs != 2 {
			t.Fatalf("n=%d: dirty re-fill allocated %v times per run, want 2 (header + chunk)", n, allocs)
		}
	}
}
