// Package cow provides chunked copy-on-write columns: the publication
// primitive that lets the control plane export a full per-server
// column in O(changed chunks) instead of O(fleet).
//
// A Col is an immutable chunked view of a logical []T: the elements
// are stored in fixed power-of-two chunks, and successive exports of
// the same column SHARE the chunks that did not change — only dirty
// chunks are re-materialized. A Tracker records, per chunk, the
// export generation at which it was last mutated; Fill consults those
// watermarks to decide which chunks of the previous view it may alias
// and which it must rebuild.
//
// Contracts:
//
//   - A published Col is immutable. Fill never writes into a chunk the
//     destination already references: dirty chunks get fresh backing
//     arrays, so readers holding an older Col are never perturbed.
//   - A Col must only be re-filled against the Tracker that produced
//     it (generation watermarks are meaningless across trackers); any
//     destination the tracker does not recognize — zero value, foreign
//     geometry — is fully materialized, so misuse costs performance,
//     never correctness.
//   - Mutation marks and Fill/Advance must be externally serialized
//     (the daemon's write mutex); concurrent readers of published Cols
//     need no synchronization.
//
// The watermark scheme (rather than a clear-on-export dirty bitmap)
// makes exports non-destructive: any number of destinations can chain
// off one tracker — the steady-state published view, a differential
// test's full-copy twin, a debug fork — and each rebuilds exactly the
// chunks modified since IT was last filled.
package cow

// DefaultShift selects 1<<10 = 1024 elements per chunk: at the 100k
// hyper-scale target that is ~98 chunks, so a single-server mutation
// republishes 1/98th of a column while the per-publish chunk-header
// walk stays trivially small.
const DefaultShift = 10

// Col is an immutable chunked column view. The zero value is an empty
// column that any Fill fully materializes.
type Col[T any] struct {
	shift  uint
	mask   int
	n      int
	gen    uint64
	chunks [][]T
}

// Len returns the logical element count.
func (c *Col[T]) Len() int { return c.n }

// At returns element i. Cost is two indexed loads — the chunk-aware
// spelling of col[i] for read handlers that must stay allocation-free.
func (c *Col[T]) At(i int) T { return c.chunks[i>>c.shift][i&c.mask] }

// NumChunks returns the number of chunks backing the column.
func (c *Col[T]) NumChunks() int { return len(c.chunks) }

// Chunk returns chunk ci's backing slice. Callers must treat it as
// read-only: it may be shared with any number of other views.
func (c *Col[T]) Chunk(ci int) []T { return c.chunks[ci] }

// Tracker owns the dirty-chunk watermarks for one logical column
// geometry (all columns of one exporter share a tracker: the cluster's
// placement columns are marked by the same mutations, so tracking them
// separately would record identical bits several times).
type Tracker struct {
	shift   uint
	mask    int
	n       int
	nchunks int
	// gen is the current export generation; Advance bumps it after
	// each export round, so marks land on the new generation and the
	// previous round's views read as clean.
	gen uint64
	// maxMod is max(lastMod): one comparison decides "nothing changed
	// since this view was filled" without walking the watermarks.
	maxMod uint64
	// lastMod[ci] is the generation at which chunk ci was last marked.
	lastMod []uint64
}

// NewTracker builds a tracker for an n-element column chunked at
// 1<<shift elements (shift 0 selects DefaultShift). All chunks start
// marked so the first export of any destination materializes fully.
func NewTracker(n int, shift uint) *Tracker {
	if shift == 0 {
		shift = DefaultShift
	}
	t := &Tracker{shift: shift, mask: 1<<shift - 1, n: n, gen: 1, maxMod: 1}
	t.nchunks = (n + t.mask) >> shift
	t.lastMod = make([]uint64, t.nchunks)
	for i := range t.lastMod {
		t.lastMod[i] = 1
	}
	return t
}

// Len returns the tracked element count.
func (t *Tracker) Len() int { return t.n }

// ChunkSize returns the elements per chunk.
func (t *Tracker) ChunkSize() int { return 1 << t.shift }

// Mark records that element i changed in the current generation.
func (t *Tracker) Mark(i int) {
	t.lastMod[i>>t.shift] = t.gen
	t.maxMod = t.gen
}

// MarkRange records that elements [lo, hi) changed. Like all marks it
// must be serialized with other tracker use (server ranges need not be
// chunk-aligned, so ranges from different callers may share a chunk).
func (t *Tracker) MarkRange(lo, hi int) {
	if hi <= lo {
		return
	}
	for ci := lo >> t.shift; ci <= (hi-1)>>t.shift; ci++ {
		t.lastMod[ci] = t.gen
	}
	t.maxMod = t.gen
}

// MarkAll records a whole-column change (geometry rebuilds, bulk
// mutations that don't know what they touched).
func (t *Tracker) MarkAll() {
	for i := range t.lastMod {
		t.lastMod[i] = t.gen
	}
	t.maxMod = t.gen
}

// Advance closes the current export round: later marks are attributed
// to the next generation, so the views just filled read as clean until
// something actually changes. Call once after filling every column of
// the round.
func (t *Tracker) Advance() { t.gen++ }

// DirtyChunks reports how many chunks a destination filled at
// generation gen would re-materialize now — the publish-cost metric
// benchmarks report.
func (t *Tracker) DirtyChunks(gen uint64) int {
	d := 0
	for _, lm := range t.lastMod {
		if lm > gen {
			d++
		}
	}
	return d
}

// Gen returns the destination generation Fill stamps this round.
func (t *Tracker) Gen() uint64 { return t.gen }

// chunkBounds returns chunk ci's [base, end) element range.
func (t *Tracker) chunkBounds(ci int) (base, end int) {
	base = ci << t.shift
	end = base + 1<<t.shift
	if end > t.n {
		end = t.n
	}
	return base, end
}

// Fill rebuilds col to the tracker's current state. fill must write
// the current value of elements [base, base+len(dst)) into dst; it is
// invoked only for chunks that changed since col was last filled from
// this tracker (all chunks when col is fresh or foreign). The chunk
// slice passed to fill is never shared with a published view.
func Fill[T any](t *Tracker, col *Col[T], fill func(dst []T, base int)) {
	prevGen := col.gen
	match := col.n == t.n && col.shift == t.shift && len(col.chunks) == t.nchunks
	col.gen, col.n, col.shift, col.mask = t.gen, t.n, t.shift, t.mask
	if match && t.maxMod <= prevGen {
		return // nothing changed since col was filled: share everything
	}
	if !match {
		col.chunks = make([][]T, t.nchunks)
		for ci := range col.chunks {
			base, end := t.chunkBounds(ci)
			c := make([]T, end-base)
			fill(c, base)
			col.chunks[ci] = c
		}
		return
	}
	// Copy the chunk header (the previous view keeps its own) and
	// re-materialize only the chunks modified since col's generation.
	nc := make([][]T, t.nchunks)
	copy(nc, col.chunks)
	col.chunks = nc
	for ci, lm := range t.lastMod {
		if lm > prevGen {
			base, end := t.chunkBounds(ci)
			c := make([]T, end-base)
			fill(c, base)
			nc[ci] = c
		}
	}
}
