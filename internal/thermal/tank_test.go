package thermal

import (
	"math"
	"testing"

	"immersionoc/internal/fluids"
)

func TestLargeTankValidates(t *testing.T) {
	if err := LargeTank().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTankValidation(t *testing.T) {
	bad := &Tank{Fluid: fluids.FC3284, CondenserUAWPerC: 0, ThermalMassJPerC: 1}
	if bad.Validate() == nil {
		t.Fatal("zero UA accepted")
	}
	hot := &Tank{Fluid: fluids.HFE7000, CondenserUAWPerC: 100, ThermalMassJPerC: 1, CoolantInC: 40}
	if hot.Validate() == nil {
		t.Fatal("coolant above boiling point accepted")
	}
}

func TestSteadyBathFloorsAtBoilingPoint(t *testing.T) {
	tk := LargeTank()
	// Light load: the condenser easily keeps the bath at the boiling
	// point.
	if got := tk.SteadyBathC(1000); got != fluids.FC3284.BoilingPointC {
		t.Fatalf("light-load bath %v, want boiling point", got)
	}
}

func TestSteadyBathRisesPastCapacity(t *testing.T) {
	tk := LargeTank()
	capacity := tk.CondenserCapacityW()
	if got := tk.SteadyBathC(capacity); math.Abs(got-fluids.FC3284.BoilingPointC) > 1e-9 {
		t.Fatalf("bath at capacity %v, want boiling point", got)
	}
	over := tk.SteadyBathC(capacity * 1.2)
	if over <= fluids.FC3284.BoilingPointC {
		t.Fatal("bath did not rise past condenser capacity")
	}
}

func TestLargeTankSizedForNominalLoad(t *testing.T) {
	tk := LargeTank()
	// 36 blades × 658 W (immersed, no fans) must fit inside the
	// condenser budget; fully overclocked (+200 W each) must not.
	nominal := 36 * 658.0
	if tk.OverBudget(nominal) {
		t.Fatalf("nominal load %v W over budget (max %v)", nominal, tk.MaxHeatW())
	}
	allOC := 36 * 858.0
	if !tk.OverBudget(allOC) {
		t.Fatalf("fully overclocked load %v W within budget (max %v)", allOC, tk.MaxHeatW())
	}
}

func TestOverclockBudget(t *testing.T) {
	tk := LargeTank()
	n := tk.OverclockBudget(36, 658, 858)
	if n <= 0 || n >= 36 {
		t.Fatalf("overclock budget %d, want a real subset of 36", n)
	}
	// Check the budget is tight: n servers fit, n+1 do not.
	heat := func(k int) float64 { return float64(36-k)*658 + float64(k)*858 }
	if tk.OverBudget(heat(n)) {
		t.Fatalf("%d overclocked servers over budget", n)
	}
	if !tk.OverBudget(heat(n + 1)) {
		t.Fatalf("%d overclocked servers still within budget", n+1)
	}
}

func TestOverclockBudgetEdges(t *testing.T) {
	tk := LargeTank()
	if got := tk.OverclockBudget(10, 658, 658); got != 10 {
		t.Fatalf("no extra power: budget %d, want all", got)
	}
	if got := tk.OverclockBudget(200, 658, 858); got != 0 {
		t.Fatalf("oversized fleet: budget %d, want 0", got)
	}
	unlimited := LargeTank()
	unlimited.MaxBathC = 0
	if got := unlimited.OverclockBudget(36, 658, 858); got != 36 {
		t.Fatalf("no bath limit: budget %d, want 36", got)
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	tk := LargeTank()
	heat := tk.CondenserCapacityW() * 1.15
	want := tk.SteadyBathC(heat)
	for i := 0; i < 100000; i++ {
		tk.Step(1, heat)
	}
	if math.Abs(tk.BathC()-want) > 0.05 {
		t.Fatalf("transient bath %v, steady state %v", tk.BathC(), want)
	}
}

func TestTransientCoolsBackToBoilingPoint(t *testing.T) {
	tk := LargeTank()
	for i := 0; i < 50000; i++ {
		tk.Step(1, tk.CondenserCapacityW()*1.3)
	}
	if tk.BathC() <= fluids.FC3284.BoilingPointC {
		t.Fatal("bath did not heat up")
	}
	for i := 0; i < 200000; i++ {
		tk.Step(1, 1000)
	}
	if math.Abs(tk.BathC()-fluids.FC3284.BoilingPointC) > 0.05 {
		t.Fatalf("bath %v did not cool back to boiling point", tk.BathC())
	}
}

func TestTankThermalModelTracksBath(t *testing.T) {
	tk := LargeTank()
	m := TankThermalModel{
		Tank:   tk,
		Boiler: fluids.Boiler{Fluid: fluids.FC3284, AreaCm2: 28, BEC: true, SpreadingResistance: 0.06},
	}
	cool, err := m.JunctionTemp(205)
	if err != nil {
		t.Fatal(err)
	}
	// Heat the tank and re-evaluate: the junction must rise with the
	// bath, one-for-one.
	for i := 0; i < 100000; i++ {
		tk.Step(1, tk.CondenserCapacityW()*1.2)
	}
	hot, err := m.JunctionTemp(205)
	if err != nil {
		t.Fatal(err)
	}
	rise := tk.BathC() - fluids.FC3284.BoilingPointC
	if math.Abs((hot-cool)-rise) > 0.05 {
		t.Fatalf("junction rose %v for a %v bath rise", hot-cool, rise)
	}
	if m.IdleTemp() != tk.BathC() {
		t.Fatal("idle temperature does not track the bath")
	}
}

func TestTankModelRejectsDryout(t *testing.T) {
	m := TankThermalModel{
		Tank:   LargeTank(),
		Boiler: fluids.Boiler{Fluid: fluids.FC3284, AreaCm2: 4},
	}
	if _, err := m.JunctionTemp(1000); err == nil {
		t.Fatal("dryout not propagated")
	}
}
