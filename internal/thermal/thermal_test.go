package thermal

import (
	"math"
	"testing"
)

func TestTableIMatchesPaper(t *testing.T) {
	want := map[Technology]struct {
		avg, peak, fan, max float64
	}{
		Chillers:          {1.70, 2.00, 0.05, 700},
		WaterSide:         {1.19, 1.25, 0.06, 700},
		DirectEvaporative: {1.12, 1.20, 0.06, 700},
		ColdPlates:        {1.08, 1.13, 0.03, 2000},
		OnePhaseImmersion: {1.05, 1.07, 0, 2000},
		TwoPhaseImmersion: {1.02, 1.03, 0, 4000},
	}
	for _, s := range TableI() {
		w := want[s.Tech]
		if s.AveragePUE != w.avg || s.PeakPUE != w.peak || s.FanOverhead != w.fan || s.MaxServerCoolingW != w.max {
			t.Fatalf("%v: got %+v, want %+v", s.Tech, s, w)
		}
	}
}

func TestImmersionHasNoFans(t *testing.T) {
	for _, s := range TableI() {
		if !s.Air && s.Tech != ColdPlates && s.FanOverhead != 0 {
			t.Fatalf("%v: immersion with fan overhead %v", s.Tech, s.FanOverhead)
		}
	}
}

func TestPeakPUESavings14Percent(t *testing.T) {
	// The paper: evaporative 1.20 → 2PIC 1.03 is a 14% reduction in
	// total datacenter power.
	got, err := PeakPUESavings(DirectEvaporative, TwoPhaseImmersion)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.14) > 0.005 {
		t.Fatalf("peak PUE savings %v, want ~0.14", got)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup(Technology(99)); err == nil {
		t.Fatal("unknown technology did not error")
	}
}

func TestTableIIICalibration(t *testing.T) {
	cases := []struct {
		p        Platform
		airTj    float64
		immTj    float64
		airTurbo float64
		immTurbo float64
		airRth   float64
		immRth   float64
		tjTol    float64
	}{
		{Skylake8168, 92, 75, 3.1, 3.2, 0.22, 0.12, 1.5},
		{Skylake8180, 90, 68, 2.6, 2.7, 0.21, 0.08, 1.5},
	}
	for _, c := range cases {
		airT, err := c.p.Air.JunctionTemp(c.p.TDPW)
		if err != nil {
			t.Fatal(err)
		}
		immT, err := c.p.Immersion.JunctionTemp(c.p.TDPW)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(airT-c.airTj) > c.tjTol {
			t.Errorf("%s air Tj %v, want %v±%v", c.p.Name, airT, c.airTj, c.tjTol)
		}
		if math.Abs(immT-c.immTj) > c.tjTol {
			t.Errorf("%s 2PIC Tj %v, want %v±%v", c.p.Name, immT, c.immTj, c.tjTol)
		}
		at, err := c.p.MaxTurbo(c.p.Air)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(at-c.airTurbo) > 1e-9 {
			t.Errorf("%s air turbo %v, want %v", c.p.Name, at, c.airTurbo)
		}
		it, err := c.p.MaxTurbo(c.p.Immersion)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(it-c.immTurbo) > 1e-9 {
			t.Errorf("%s 2PIC turbo %v, want %v (one extra bin)", c.p.Name, it, c.immTurbo)
		}
		if math.Abs(c.p.Air.Resistance()-c.airRth) > 0.005 {
			t.Errorf("%s air Rth %v, want %v", c.p.Name, c.p.Air.Resistance(), c.airRth)
		}
		if math.Abs(c.p.Immersion.Resistance()-c.immRth) > 0.006 {
			t.Errorf("%s 2PIC Rth %v, want %v", c.p.Name, c.p.Immersion.Resistance(), c.immRth)
		}
	}
}

func TestTableVTemperatures(t *testing.T) {
	// The lifetime table's operating points: air 85/101 °C,
	// FC-3284 66/74 °C, HFE-7000 51/60 °C at 205/305 W.
	cases := []struct {
		m            Model
		nom, oc, tol float64
	}{
		{XeonTableV.Air, 85, 101, 1},
		{XeonTableV.Immersion, 66, 74, 1},
		{XeonTableVHFE.Immersion, 51, 60, 1},
	}
	for i, c := range cases {
		nom, err := c.m.JunctionTemp(205)
		if err != nil {
			t.Fatal(err)
		}
		oc, err := c.m.JunctionTemp(305)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(nom-c.nom) > c.tol {
			t.Errorf("case %d nominal Tj %v, want %v", i, nom, c.nom)
		}
		if math.Abs(oc-c.oc) > c.tol {
			t.Errorf("case %d OC Tj %v, want %v", i, oc, c.oc)
		}
	}
}

func TestIdleTemps(t *testing.T) {
	if XeonTableV.Air.IdleTemp() != 20 {
		t.Fatalf("air idle %v, want 20 (Table V DTj low end)", XeonTableV.Air.IdleTemp())
	}
	if XeonTableV.Immersion.IdleTemp() != 50 {
		t.Fatalf("FC idle %v, want 50 (bath temperature)", XeonTableV.Immersion.IdleTemp())
	}
	if XeonTableVHFE.Immersion.IdleTemp() != 34 {
		t.Fatalf("HFE idle %v, want 34 (bath temperature)", XeonTableVHFE.Immersion.IdleTemp())
	}
}

func TestAirThrottling(t *testing.T) {
	m := AirModel{InletC: 35, PreheatC: 12, RthCPerW: 0.22, ThrottleC: 96}
	if m.Throttling(205) {
		t.Fatal("throttling at TDP")
	}
	if !m.Throttling(305) {
		t.Fatal("not throttling at overclocked power in air")
	}
}

func TestNegativePowerErrors(t *testing.T) {
	for _, m := range []Model{XeonTableV.Air, XeonTableV.Immersion, FixedModel{}} {
		if _, err := m.JunctionTemp(-1); err == nil {
			t.Fatalf("%s accepted negative power", m.Describe())
		}
	}
}

func TestFixedModel(t *testing.T) {
	m := FixedModel{BaseC: 40, RthCPerW: 0.1, IdleC: 25, Name: "fixed"}
	tj, err := m.JunctionTemp(100)
	if err != nil || tj != 50 {
		t.Fatalf("fixed model Tj %v err %v", tj, err)
	}
	if m.IdleTemp() != 25 || m.Resistance() != 0.1 || m.Describe() != "fixed" {
		t.Fatal("fixed model accessors wrong")
	}
}

func TestImmersionCoolerThanAirEverywhere(t *testing.T) {
	for _, p := range Platforms() {
		for _, w := range []float64{50, 100, 205, 305} {
			at, err1 := p.Air.JunctionTemp(w)
			it, err2 := p.Immersion.JunctionTemp(w)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s at %vW: %v %v", p.Name, w, err1, err2)
			}
			if it >= at {
				t.Fatalf("%s at %vW: immersion (%v°C) not cooler than air (%v°C)", p.Name, w, it, at)
			}
		}
	}
}
