package thermal

import (
	"errors"
	"fmt"
)

// ColdPlateModel is a single-phase cold-plate loop (§II): coolant is
// pumped through a plate mounted on the package. Junction temperature
// is the coolant supply temperature plus the coolant's caloric rise
// plus the plate's convective resistance. Cold plates cool the plated
// component well but leave the rest of the server on air — the
// engineering-complexity point the paper makes.
type ColdPlateModel struct {
	// CoolantInC is the facility water/glycol supply temperature.
	CoolantInC float64
	// FlowWPerC is the coolant's caloric capacity (ṁ·cp): the bulk
	// coolant temperature rises by P/FlowWPerC across the plate.
	FlowWPerC float64
	// PlateRthCPerW is the junction-to-coolant convective+conductive
	// resistance of the plate assembly.
	PlateRthCPerW float64
	// IdleC is the junction temperature of an idle part.
	IdleC float64
}

var _ Model = ColdPlateModel{}

// JunctionTemp implements Model.
func (m ColdPlateModel) JunctionTemp(powerW float64) (float64, error) {
	if powerW < 0 {
		return 0, errors.New("thermal: negative power")
	}
	if m.FlowWPerC <= 0 {
		return 0, errors.New("thermal: cold plate needs positive coolant flow")
	}
	// Average bulk coolant temperature under the plate is the inlet
	// plus half the caloric rise.
	bulk := m.CoolantInC + powerW/(2*m.FlowWPerC)
	return bulk + m.PlateRthCPerW*powerW, nil
}

// IdleTemp implements Model.
func (m ColdPlateModel) IdleTemp() float64 { return m.IdleC }

// Resistance implements Model (effective at 200 W).
func (m ColdPlateModel) Resistance() float64 {
	t, err := m.JunctionTemp(200)
	if err != nil {
		return 0
	}
	return (t - m.CoolantInC) / 200
}

// Describe implements Model.
func (m ColdPlateModel) Describe() string {
	return fmt.Sprintf("cold plate (coolant %.0f°C, Rth %.2f°C/W)", m.CoolantInC, m.Resistance())
}

// OnePhaseModel is single-phase immersion (1PIC): the dielectric bath
// does not boil; pumps circulate it past the electronics and a heat
// exchanger. Heat transfer is single-phase convection — better than
// air, worse than boiling — and the bath temperature rises with the
// tank's total load.
type OnePhaseModel struct {
	// BathC is the circulated bath temperature at the server (set by
	// the tank's heat exchanger and total load).
	BathC float64
	// ConvRthCPerW is the junction-to-bath convective resistance
	// (no phase change, so several times 2PIC's).
	ConvRthCPerW float64
}

var _ Model = OnePhaseModel{}

// JunctionTemp implements Model.
func (m OnePhaseModel) JunctionTemp(powerW float64) (float64, error) {
	if powerW < 0 {
		return 0, errors.New("thermal: negative power")
	}
	return m.BathC + m.ConvRthCPerW*powerW, nil
}

// IdleTemp implements Model.
func (m OnePhaseModel) IdleTemp() float64 { return m.BathC }

// Resistance implements Model.
func (m OnePhaseModel) Resistance() float64 { return m.ConvRthCPerW }

// Describe implements Model.
func (m OnePhaseModel) Describe() string {
	return fmt.Sprintf("1PIC (bath %.0f°C, Rth %.2f°C/W)", m.BathC, m.ConvRthCPerW)
}

// Representative per-socket models for the §II technology comparison,
// consistent with the Table I capabilities (cold plates and 1PIC cool
// to ~2 kW/server, 2PIC beyond 4 kW) and the Alibaba/Google deployments
// the paper cites.
var (
	// ColdPlateXeon: 30 °C facility water, generous flow, a good
	// microchannel plate.
	ColdPlateXeon = ColdPlateModel{CoolantInC: 30, FlowWPerC: 180, PlateRthCPerW: 0.085, IdleC: 30}
	// OnePhaseXeon: 42 °C circulated bath (Alibaba-style), forced
	// single-phase convection over a finned spreader.
	OnePhaseXeon = OnePhaseModel{BathC: 42, ConvRthCPerW: 0.13}
)
