// Package thermal models datacenter cooling: the technology catalog of
// Table I (PUE, fan overhead, maximum server cooling), lumped
// thermal-resistance models that turn component power into junction
// temperatures for air and immersion cooling (Table III, Table V), and
// the derived datacenter-level quantities (PUE savings, reclaimed
// power) that feed the power and TCO models.
package thermal

import (
	"errors"
	"fmt"

	"immersionoc/internal/fluids"
)

// Technology identifies a datacenter cooling technology from Table I.
type Technology int

const (
	// Chillers is closed-loop chiller-based air cooling.
	Chillers Technology = iota
	// WaterSide is water-side economized air cooling.
	WaterSide
	// DirectEvaporative is direct evaporative (free) air cooling.
	DirectEvaporative
	// ColdPlates is CPU cold-plate liquid cooling.
	ColdPlates
	// OnePhaseImmersion is single-phase immersion cooling (1PIC).
	OnePhaseImmersion
	// TwoPhaseImmersion is two-phase immersion cooling (2PIC).
	TwoPhaseImmersion
)

func (t Technology) String() string {
	switch t {
	case Chillers:
		return "Chillers"
	case WaterSide:
		return "Water-side"
	case DirectEvaporative:
		return "Direct evaporative"
	case ColdPlates:
		return "CPU cold plates"
	case OnePhaseImmersion:
		return "1PIC"
	case TwoPhaseImmersion:
		return "2PIC"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// Spec describes one cooling technology (one row of Table I).
type Spec struct {
	Tech Technology
	// AveragePUE and PeakPUE are total-power/IT-power ratios.
	AveragePUE, PeakPUE float64
	// FanOverhead is the fraction of server power consumed by server
	// fans (0 for immersion).
	FanOverhead float64
	// MaxServerCoolingW is the highest per-server heat load the
	// technology can remove.
	MaxServerCoolingW float64
	// Air reports whether servers are air cooled (vs liquid).
	Air bool
}

// TableI returns the cooling technology catalog (Table I) in paper
// order.
func TableI() []Spec {
	return []Spec{
		{Tech: Chillers, AveragePUE: 1.70, PeakPUE: 2.00, FanOverhead: 0.05, MaxServerCoolingW: 700, Air: true},
		{Tech: WaterSide, AveragePUE: 1.19, PeakPUE: 1.25, FanOverhead: 0.06, MaxServerCoolingW: 700, Air: true},
		{Tech: DirectEvaporative, AveragePUE: 1.12, PeakPUE: 1.20, FanOverhead: 0.06, MaxServerCoolingW: 700, Air: true},
		{Tech: ColdPlates, AveragePUE: 1.08, PeakPUE: 1.13, FanOverhead: 0.03, MaxServerCoolingW: 2000, Air: false},
		{Tech: OnePhaseImmersion, AveragePUE: 1.05, PeakPUE: 1.07, FanOverhead: 0, MaxServerCoolingW: 2000, Air: false},
		{Tech: TwoPhaseImmersion, AveragePUE: 1.02, PeakPUE: 1.03, FanOverhead: 0, MaxServerCoolingW: 4000, Air: false},
	}
}

// Lookup returns the Table I spec for a technology.
func Lookup(t Technology) (Spec, error) {
	for _, s := range TableI() {
		if s.Tech == t {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("thermal: unknown technology %v", t)
}

// PeakPUESavings returns the fractional reduction in total datacenter
// power when moving from one technology to another at peak (the paper's
// "peak PUE is reduced from 1.20 ... to 1.03 ... a reduction of 14%").
func PeakPUESavings(from, to Technology) (float64, error) {
	f, err := Lookup(from)
	if err != nil {
		return 0, err
	}
	t, err := Lookup(to)
	if err != nil {
		return 0, err
	}
	return (f.PeakPUE - t.PeakPUE) / f.PeakPUE, nil
}

// Model converts component power into junction temperature.
type Model interface {
	// JunctionTemp returns the steady-state junction temperature in
	// °C at the given sustained component power in watts.
	JunctionTemp(powerW float64) (float64, error)
	// IdleTemp returns the junction temperature when the component
	// is idle (the low end of the thermal cycling range DTj).
	IdleTemp() float64
	// Resistance returns the effective junction-to-ambient (or
	// junction-to-fluid) thermal resistance in °C/W.
	Resistance() float64
	// Describe returns a short human-readable description.
	Describe() string
}

// AirModel is a lumped air-cooling model: junction temperature is the
// inlet air temperature plus in-chassis preheat plus the heatsink
// resistance times power, capped by a throttle temperature the part
// protects itself at.
type AirModel struct {
	// InletC is the supplied air temperature (35 °C in the paper's
	// thermal chamber).
	InletC float64
	// PreheatC is the temperature rise of the air reaching the
	// component from upstream components and chassis recirculation.
	PreheatC float64
	// RthCPerW is the junction-to-local-air thermal resistance.
	RthCPerW float64
	// IdleC is the junction temperature of an idle part (the paper's
	// lifetime table uses a 20 °C lower bound for air).
	IdleC float64
	// ThrottleC is the junction temperature at which the part
	// throttles; 0 means no explicit limit is modelled.
	ThrottleC float64
}

var _ Model = AirModel{}

// JunctionTemp implements Model.
func (m AirModel) JunctionTemp(powerW float64) (float64, error) {
	if powerW < 0 {
		return 0, errors.New("thermal: negative power")
	}
	return m.InletC + m.PreheatC + m.RthCPerW*powerW, nil
}

// IdleTemp implements Model.
func (m AirModel) IdleTemp() float64 { return m.IdleC }

// Resistance implements Model.
func (m AirModel) Resistance() float64 { return m.RthCPerW }

// Describe implements Model.
func (m AirModel) Describe() string {
	return fmt.Sprintf("air (inlet %.0f°C, Rth %.2f°C/W)", m.InletC, m.RthCPerW)
}

// Throttling reports whether the part would exceed its throttle
// temperature at the given power.
func (m AirModel) Throttling(powerW float64) bool {
	if m.ThrottleC <= 0 {
		return false
	}
	t, err := m.JunctionTemp(powerW)
	return err == nil && t > m.ThrottleC
}

// ImmersionModel is a two-phase immersion model: the bath sits at the
// fluid's boiling point and the junction rises by the boiler's
// effective resistance (nucleate boiling + spreading).
type ImmersionModel struct {
	Boiler fluids.Boiler
}

var _ Model = ImmersionModel{}

// JunctionTemp implements Model.
func (m ImmersionModel) JunctionTemp(powerW float64) (float64, error) {
	if powerW < 0 {
		return 0, errors.New("thermal: negative power")
	}
	if powerW == 0 {
		return m.IdleTemp(), nil
	}
	return m.Boiler.JunctionTemp(powerW)
}

// IdleTemp implements Model: an idle part sits at the bath temperature
// (the fluid's boiling point during steady operation of the tank).
func (m ImmersionModel) IdleTemp() float64 { return m.Boiler.Fluid.BoilingPointC }

// Resistance implements Model, evaluated at a nominal 200 W.
func (m ImmersionModel) Resistance() float64 {
	r, err := m.Boiler.ThermalResistance(200)
	if err != nil {
		return 0
	}
	return r
}

// Describe implements Model.
func (m ImmersionModel) Describe() string {
	return fmt.Sprintf("2PIC %s (bath %.0f°C, Rth %.2f°C/W)", m.Boiler.Fluid.Name, m.Boiler.Fluid.BoilingPointC, m.Resistance())
}

// FixedModel is a directly parameterized model (base temperature +
// resistance), used where the paper reports measured resistances
// without boiler geometry.
type FixedModel struct {
	BaseC, RthCPerW, IdleC float64
	Name                   string
}

var _ Model = FixedModel{}

// JunctionTemp implements Model.
func (m FixedModel) JunctionTemp(powerW float64) (float64, error) {
	if powerW < 0 {
		return 0, errors.New("thermal: negative power")
	}
	return m.BaseC + m.RthCPerW*powerW, nil
}

// IdleTemp implements Model.
func (m FixedModel) IdleTemp() float64 { return m.IdleC }

// Resistance implements Model.
func (m FixedModel) Resistance() float64 { return m.RthCPerW }

// Describe implements Model.
func (m FixedModel) Describe() string { return m.Name }

// Platform bundles the air and 2PIC thermal models for one processor
// platform, with its measured parameters.
type Platform struct {
	Name string
	// TDPW is the socket thermal design power.
	TDPW float64
	// BaseTurboGHz is the highest all-core turbo sustained in air.
	BaseTurboGHz float64
	// BinGHz is the frequency bin granularity (100 MHz).
	BinGHz float64
	// HeadroomPerBinC is the junction-temperature reduction that
	// buys one extra turbo bin (from the paper: 17–22 °C bought one
	// 100 MHz bin on both platforms).
	HeadroomPerBinC float64
	Air             Model
	Immersion       Model
	// BECLocation documents where the boiling enhancement coating is
	// applied for this platform.
	BECLocation string
}

// MaxTurbo returns the highest sustainable all-core turbo under the
// given model: the air baseline turbo plus one bin per HeadroomPerBinC
// of junction-temperature reduction relative to air at TDP.
func (p Platform) MaxTurbo(m Model) (float64, error) {
	tAir, err := p.Air.JunctionTemp(p.TDPW)
	if err != nil {
		return 0, err
	}
	t, err := m.JunctionTemp(p.TDPW)
	if err != nil {
		return 0, err
	}
	headroom := tAir - t
	if headroom <= 0 || p.HeadroomPerBinC <= 0 {
		return p.BaseTurboGHz, nil
	}
	bins := int(headroom / p.HeadroomPerBinC)
	return p.BaseTurboGHz + float64(bins)*p.BinGHz, nil
}

// Skylake8168 is the 24-core platform from the large tank (half of the
// 36 blades), calibrated to Table III: air Tj 92 °C / 3.1 GHz turbo,
// 2PIC (FC-3284, BEC on a copper plate) Tj 75 °C / 3.2 GHz.
var Skylake8168 = Platform{
	Name:            "Skylake 8168 (24-core)",
	TDPW:            205,
	BaseTurboGHz:    3.1,
	BinGHz:          0.1,
	HeadroomPerBinC: 15,
	Air:             AirModel{InletC: 35, PreheatC: 12, RthCPerW: 0.22, IdleC: 20, ThrottleC: 96},
	Immersion: ImmersionModel{Boiler: fluids.Boiler{
		Fluid: fluids.FC3284,
		// Copper boiler plate with L-20227 BEC: 16 cm² wetted area,
		// 2x HTC, plus plate spreading resistance. Net ~0.12 °C/W,
		// matching Table III.
		AreaCm2:             16,
		BEC:                 true,
		SpreadingResistance: 0.089,
	}},
	BECLocation: "Copper plate",
}

// Skylake8180 is the 28-core platform from the large tank, calibrated
// to Table III: air Tj 90 °C / 2.6 GHz turbo, 2PIC (FC-3284, BEC
// directly on the integral heat spreader) Tj 68 °C / 2.7 GHz.
var Skylake8180 = Platform{
	Name:            "Skylake 8180 (28-core)",
	TDPW:            205,
	BaseTurboGHz:    2.6,
	BinGHz:          0.1,
	HeadroomPerBinC: 15,
	Air:             AirModel{InletC: 35, PreheatC: 12, RthCPerW: 0.21, IdleC: 20, ThrottleC: 94},
	Immersion: ImmersionModel{Boiler: fluids.Boiler{
		Fluid: fluids.FC3284,
		// BEC directly on the larger 8180 IHS: 28 cm², 2x HTC,
		// minimal spreading. Net ~0.08 °C/W, matching Table III.
		AreaCm2:             28,
		BEC:                 true,
		SpreadingResistance: 0.065,
	}},
	BECLocation: "CPU IHS",
}

// XeonTableV is the platform used for the lifetime projections of
// Table V (a Xeon socket extrapolated from the W-3175X voltage curve):
// air nominal runs at Tj 85 °C and overclocked (305 W) at 101 °C;
// FC-3284 yields 66/74 °C and HFE-7000 51/60 °C.
var XeonTableV = Platform{
	Name:            "Xeon (Table V)",
	TDPW:            205,
	BaseTurboGHz:    3.4,
	BinGHz:          0.1,
	HeadroomPerBinC: 15,
	Air:             AirModel{InletC: 35, PreheatC: 17.2, RthCPerW: 0.16, IdleC: 20, ThrottleC: 105},
	Immersion: ImmersionModel{Boiler: fluids.Boiler{
		Fluid:               fluids.FC3284,
		AreaCm2:             28,
		BEC:                 true,
		SpreadingResistance: 0.060,
	}},
	BECLocation: "CPU IHS",
}

// XeonTableVHFE is XeonTableV immersed in HFE-7000 instead of FC-3284.
var XeonTableVHFE = Platform{
	Name:            "Xeon (Table V, HFE-7000)",
	TDPW:            205,
	BaseTurboGHz:    3.4,
	BinGHz:          0.1,
	HeadroomPerBinC: 15,
	Air:             XeonTableV.Air,
	Immersion: ImmersionModel{Boiler: fluids.Boiler{
		Fluid:               fluids.HFE7000,
		AreaCm2:             28,
		BEC:                 true,
		SpreadingResistance: 0.067,
	}},
	BECLocation: "CPU IHS",
}

// Platforms returns the calibrated platforms.
func Platforms() []Platform {
	return []Platform{Skylake8168, Skylake8180, XeonTableV, XeonTableVHFE}
}

// WUE (water usage effectiveness, L/kWh) projections: the paper states
// simulated 2PIC WUE is at par with evaporative-cooled datacenters.
const (
	WUEEvaporative = 1.0
	WUE2PIC        = 1.0
)
