package thermal

import (
	"math"
	"testing"
)

func TestColdPlateJunctionTemp(t *testing.T) {
	m := ColdPlateXeon
	tj, err := m.JunctionTemp(205)
	if err != nil {
		t.Fatal(err)
	}
	// 30 + 205/(2·180) + 0.085·205 ≈ 48 °C.
	want := 30 + 205.0/360 + 0.085*205
	if math.Abs(tj-want) > 1e-9 {
		t.Fatalf("cold plate Tj %v, want %v", tj, want)
	}
	if m.IdleTemp() != 30 {
		t.Fatalf("idle %v", m.IdleTemp())
	}
	if _, err := m.JunctionTemp(-1); err == nil {
		t.Fatal("negative power accepted")
	}
	bad := ColdPlateModel{CoolantInC: 30}
	if _, err := bad.JunctionTemp(100); err == nil {
		t.Fatal("zero flow accepted")
	}
}

func TestColdPlateResistanceConsistent(t *testing.T) {
	m := ColdPlateXeon
	r := m.Resistance()
	tj, _ := m.JunctionTemp(200)
	if math.Abs((m.CoolantInC+r*200)-tj) > 1e-9 {
		t.Fatalf("resistance %v inconsistent", r)
	}
}

func TestOnePhaseModel(t *testing.T) {
	m := OnePhaseXeon
	tj, err := m.JunctionTemp(205)
	if err != nil {
		t.Fatal(err)
	}
	want := 42 + 0.13*205
	if math.Abs(tj-want) > 1e-9 {
		t.Fatalf("1PIC Tj %v, want %v", tj, want)
	}
	if m.IdleTemp() != 42 || m.Resistance() != 0.13 {
		t.Fatal("1PIC accessors wrong")
	}
	if _, err := m.JunctionTemp(-1); err == nil {
		t.Fatal("negative power accepted")
	}
}

func TestLiquidCoolingOrdering(t *testing.T) {
	// At the overclocked power, the §II hierarchy must hold: air
	// hottest, 1PIC better, 2PIC FC better still.
	air, _ := XeonTableV.Air.JunctionTemp(305)
	onep, _ := OnePhaseXeon.JunctionTemp(305)
	twop, _ := XeonTableV.Immersion.JunctionTemp(305)
	if !(air > onep && onep > twop) {
		t.Fatalf("ordering violated: air %v, 1PIC %v, 2PIC %v", air, onep, twop)
	}
}
