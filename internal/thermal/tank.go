package thermal

import (
	"errors"
	"fmt"
	"math"

	"immersionoc/internal/fluids"
)

// Tank models a 2PIC tank at the vessel level: servers boil fluid,
// the condenser coil rejects the heat into a coolant loop, and in a
// sealed tank any imbalance raises pressure and with it the saturation
// (bath) temperature. The bath temperature is the floor under every
// junction temperature in the tank, so the condenser budget is the
// fleet-level constraint on how many servers may overclock at once —
// the tank-scale analogue of the paper's per-socket analysis.
//
// Heat rejection follows a UA model: Q_out = UA · (T_bath − T_coolant).
// In steady state T_bath = max(boiling point, T_coolant + Q_in/UA); the
// transient follows the tank's thermal mass.
type Tank struct {
	Fluid fluids.Fluid
	// CondenserUAWPerC is the condenser's heat transfer conductance.
	CondenserUAWPerC float64
	// CoolantInC is the condenser coolant inlet temperature.
	CoolantInC float64
	// ThermalMassJPerC is the tank's lumped thermal mass (fluid +
	// immersed hardware).
	ThermalMassJPerC float64
	// MaxBathC is the operational bath-temperature limit (vapor
	// pressure / seal rating); 0 disables the limit.
	MaxBathC float64

	bathC float64
}

// LargeTank is the 36-blade production prototype (§III): sized so the
// nominal 36 × 700 W load condenses with the bath a few degrees above
// FC-3284's boiling point.
func LargeTank() *Tank {
	t := &Tank{
		Fluid:            fluids.FC3284,
		CondenserUAWPerC: 1800, // 25.2 kW at ~14 °C approach
		CoolantInC:       38,
		ThermalMassJPerC: 2.6e6, // ~1500 kg fluid + hardware
		MaxBathC:         54,
	}
	t.bathC = t.Fluid.BoilingPointC
	return t
}

// Validate checks tank parameters.
func (t *Tank) Validate() error {
	if t.CondenserUAWPerC <= 0 {
		return errors.New("thermal: tank needs positive condenser UA")
	}
	if t.ThermalMassJPerC <= 0 {
		return errors.New("thermal: tank needs positive thermal mass")
	}
	if t.CoolantInC >= t.Fluid.BoilingPointC {
		return fmt.Errorf("thermal: coolant at %.0f°C cannot condense %s (boils at %.0f°C)",
			t.CoolantInC, t.Fluid.Name, t.Fluid.BoilingPointC)
	}
	return nil
}

// BathC returns the current bath temperature.
func (t *Tank) BathC() float64 {
	if t.bathC == 0 {
		return t.Fluid.BoilingPointC
	}
	return t.bathC
}

// SteadyBathC returns the steady-state bath temperature under a
// sustained heat load.
func (t *Tank) SteadyBathC(heatW float64) float64 {
	ss := t.CoolantInC + heatW/t.CondenserUAWPerC
	return math.Max(t.Fluid.BoilingPointC, ss)
}

// CondenserCapacityW returns the largest sustained heat load that
// keeps the bath at the fluid's boiling point (no pressure rise).
func (t *Tank) CondenserCapacityW() float64 {
	return t.CondenserUAWPerC * (t.Fluid.BoilingPointC - t.CoolantInC)
}

// MaxHeatW returns the largest sustained heat load that respects the
// bath limit (infinite when no limit is set).
func (t *Tank) MaxHeatW() float64 {
	if t.MaxBathC <= 0 {
		return math.Inf(1)
	}
	return t.CondenserUAWPerC * (t.MaxBathC - t.CoolantInC)
}

// Step advances the bath temperature by dt seconds under heatW of
// input: dT/dt = (Q_in − UA·(T − coolant)) / C, floored at the boiling
// point (excess condenser capacity cannot sub-cool a boiling bath).
func (t *Tank) Step(dtS, heatW float64) float64 {
	if t.bathC == 0 {
		t.bathC = t.Fluid.BoilingPointC
	}
	qOut := t.CondenserUAWPerC * (t.bathC - t.CoolantInC)
	t.bathC += (heatW - qOut) / t.ThermalMassJPerC * dtS
	if t.bathC < t.Fluid.BoilingPointC {
		t.bathC = t.Fluid.BoilingPointC
	}
	return t.bathC
}

// OverBudget reports whether a sustained heat load would push the bath
// past its limit.
func (t *Tank) OverBudget(heatW float64) bool {
	if t.MaxBathC <= 0 {
		return false
	}
	return t.SteadyBathC(heatW) > t.MaxBathC
}

// OverclockBudget answers the fleet question: with `servers` machines
// at nominalW each, how many can run at overclockedW simultaneously
// before the steady-state bath exceeds the limit?
func (t *Tank) OverclockBudget(servers int, nominalW, overclockedW float64) int {
	if overclockedW <= nominalW {
		if t.OverBudget(float64(servers) * nominalW) {
			return 0
		}
		return servers
	}
	budget := t.MaxHeatW() - float64(servers)*nominalW
	if budget <= 0 {
		return 0
	}
	if math.IsInf(budget, 1) {
		return servers
	}
	n := int(budget / (overclockedW - nominalW))
	if n > servers {
		n = servers
	}
	return n
}

// TankThermalModel adapts a tank-aware boiler into a Model whose
// junction temperature floats on the current bath temperature — the
// per-server thermal model to use when the tank is near its condenser
// budget.
type TankThermalModel struct {
	Tank   *Tank
	Boiler fluids.Boiler
}

var _ Model = TankThermalModel{}

// JunctionTemp implements Model: bath temperature replaces the fluid's
// nominal boiling point.
func (m TankThermalModel) JunctionTemp(powerW float64) (float64, error) {
	if powerW < 0 {
		return 0, errors.New("thermal: negative power")
	}
	if powerW == 0 {
		return m.IdleTemp(), nil
	}
	sh, err := m.Boiler.Superheat(powerW)
	if err != nil {
		return 0, err
	}
	return m.Tank.BathC() + sh + m.Boiler.SpreadingResistance*powerW, nil
}

// IdleTemp implements Model.
func (m TankThermalModel) IdleTemp() float64 { return m.Tank.BathC() }

// Resistance implements Model.
func (m TankThermalModel) Resistance() float64 {
	r, err := m.Boiler.ThermalResistance(200)
	if err != nil {
		return 0
	}
	return r
}

// Describe implements Model.
func (m TankThermalModel) Describe() string {
	return fmt.Sprintf("2PIC tank %s (bath %.1f°C)", m.Tank.Fluid.Name, m.Tank.BathC())
}
