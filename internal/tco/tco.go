// Package tco implements the total-cost-of-ownership analysis of §IV
// and §VI-C (Table VI): the cost per physical core of an air-cooled
// hyperscale datacenter versus non-overclockable and overclockable
// 2PIC datacenters, and the cost per virtual core under
// oversubscription.
//
// The mechanics follow the paper's accounting:
//
//   - a datacenter has a fixed facility power budget; lowering peak PUE
//     from 1.20 (direct evaporative) to 1.03 (2PIC) reclaims 14% of
//     facility power, which buys ~16.5% more servers and amortizes all
//     per-datacenter fixed costs (construction, operations, energy,
//     design/taxes/fees) over more cores;
//   - immersion servers are slightly cheaper to build (no fans, less
//     sheet metal), but overclockable servers give that back in power
//     delivery upgrades;
//   - overclocking adds up to 200 W per server (+~30% energy), pushing
//     the per-core energy cost back to the air baseline;
//   - network grows with server count plus redundancy for
//     iso-availability; tanks and fluid add an immersion line item.
package tco

import (
	"fmt"

	"immersionoc/internal/thermal"
)

// Scenario selects the datacenter design being costed.
type Scenario int

const (
	// AirCooled is the direct-evaporative baseline with Azure's
	// latest server generation.
	AirCooled Scenario = iota
	// TwoPhase is a non-overclockable 2PIC datacenter.
	TwoPhase
	// TwoPhaseOC is an overclockable 2PIC datacenter.
	TwoPhaseOC
)

func (s Scenario) String() string {
	switch s {
	case AirCooled:
		return "Air-cooled"
	case TwoPhase:
		return "Non-overclockable 2PIC"
	case TwoPhaseOC:
		return "Overclockable 2PIC"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// Category is one Table VI cost line.
type Category int

const (
	Servers Category = iota
	Network
	DCConstruction
	Energy
	Operations
	DesignTaxesFees
	Immersion
	numCategories
)

func (c Category) String() string {
	switch c {
	case Servers:
		return "Servers"
	case Network:
		return "Network"
	case DCConstruction:
		return "DC construction"
	case Energy:
		return "Energy"
	case Operations:
		return "Operations"
	case DesignTaxesFees:
		return "Design, taxes, fees"
	case Immersion:
		return "Immersion"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Categories returns all cost categories in Table VI order.
func Categories() []Category {
	return []Category{Servers, Network, DCConstruction, Energy, Operations, DesignTaxesFees, Immersion}
}

// Model holds the baseline cost structure and the 2PIC adjustments.
type Model struct {
	// BaselineShare is each category's share of the air-cooled
	// baseline TCO per core (sums to 1; Immersion is 0 for air).
	// The relative contributions follow the warehouse-scale
	// datacenter cost literature the paper cites.
	BaselineShare [numCategories]float64

	// AirPeakPUE and TwoPhasePeakPUE drive the capacity expansion.
	AirPeakPUE, TwoPhasePeakPUE float64

	// ServerBuildSavings is the fractional per-server cost saved by
	// removing fans, heatsinks and sheet metal.
	ServerBuildSavings float64
	// OCPowerDeliveryUpcharge is the fractional per-server cost of
	// the upgraded power delivery for overclockable servers.
	OCPowerDeliveryUpcharge float64
	// NetworkRedundancy is the fractional extra network cost for
	// iso-availability with the air baseline.
	NetworkRedundancy float64
	// ImmersionShare is tanks+fluid, amortized, as a fraction of the
	// baseline per-core TCO.
	ImmersionShare float64
	// OCEnergyIncrease is the fractional energy increase of an
	// overclockable datacenter over non-overclockable 2PIC (the
	// paper conservatively assumes the full 200 W, ~30%).
	OCEnergyIncrease float64
}

// Default is calibrated to the published Table I PUEs and the cost
// shares of the datacenter-cost literature; it reproduces Table VI.
var Default = Model{
	BaselineShare: [numCategories]float64{
		Servers:         0.34,
		Network:         0.09,
		DCConstruction:  0.15,
		Energy:          0.14,
		Operations:      0.14,
		DesignTaxesFees: 0.14,
		Immersion:       0,
	},
	AirPeakPUE:              1.20,
	TwoPhasePeakPUE:         1.03,
	ServerBuildSavings:      0.03,
	OCPowerDeliveryUpcharge: 0.03,
	NetworkRedundancy:       0.12,
	ImmersionShare:          0.01,
	OCEnergyIncrease:        0.30,
}

// NewDefaultFromTableI builds the default model but reads the PUEs
// from the thermal package's Table I catalog, keeping the two sources
// consistent.
func NewDefaultFromTableI() (Model, error) {
	m := Default
	air, err := thermal.Lookup(thermal.DirectEvaporative)
	if err != nil {
		return Model{}, err
	}
	twoP, err := thermal.Lookup(thermal.TwoPhaseImmersion)
	if err != nil {
		return Model{}, err
	}
	m.AirPeakPUE = air.PeakPUE
	m.TwoPhasePeakPUE = twoP.PeakPUE
	return m, nil
}

// ExpansionFactor returns the ratio of 2PIC server count to air server
// count at a fixed facility power budget (reclaimed PUE power buys
// servers).
func (m Model) ExpansionFactor() float64 {
	return m.AirPeakPUE / m.TwoPhasePeakPUE
}

// Breakdown is a per-category cost-per-core result, normalized so the
// air baseline totals 1.0.
type Breakdown struct {
	Scenario Scenario
	// PerCore holds each category's contribution to cost per
	// physical core.
	PerCore [numCategories]float64
}

// Total returns the summed cost per physical core (air baseline = 1).
func (b Breakdown) Total() float64 {
	var t float64
	for _, v := range b.PerCore {
		t += v
	}
	return t
}

// Delta returns the per-category change versus the air baseline in
// fractions of baseline TCO (the Table VI cells).
func (b Breakdown) Delta(base Breakdown) [numCategories]float64 {
	var d [numCategories]float64
	for i := range d {
		d[i] = b.PerCore[i] - base.PerCore[i]
	}
	return d
}

// CostPerCore evaluates the model for a scenario.
func (m Model) CostPerCore(s Scenario) Breakdown {
	b := Breakdown{Scenario: s}
	if s == AirCooled {
		b.PerCore = m.BaselineShare
		return b
	}
	// 2PIC: per-datacenter fixed costs amortize over expansion×
	// more cores; per-server costs stay per-core constant apart
	// from explicit adjustments.
	exp := m.ExpansionFactor()
	amortize := func(c Category) float64 { return m.BaselineShare[c] / exp }

	// Servers: per-core cost constant with count; build savings for
	// immersion, power-delivery upcharge for overclockable.
	serverAdj := 1 - m.ServerBuildSavings
	if s == TwoPhaseOC {
		serverAdj += m.OCPowerDeliveryUpcharge
	}
	b.PerCore[Servers] = m.BaselineShare[Servers] * serverAdj

	// Network: scales with servers (per-core constant) plus the
	// redundancy adder.
	b.PerCore[Network] = m.BaselineShare[Network] * (1 + m.NetworkRedundancy)

	// Fixed-per-datacenter categories amortize.
	b.PerCore[DCConstruction] = amortize(DCConstruction)
	b.PerCore[Operations] = amortize(Operations)
	b.PerCore[DesignTaxesFees] = amortize(DesignTaxesFees)

	// Energy: facility power is fixed, so per-core energy amortizes
	// — unless overclocking spends the reclaimed power again.
	energy := amortize(Energy)
	if s == TwoPhaseOC {
		energy *= 1 + m.OCEnergyIncrease
		// Conservative clamp: no better than the air baseline when
		// the increase overshoots (the paper lands exactly back at
		// baseline).
		if energy > m.BaselineShare[Energy] {
			energy = m.BaselineShare[Energy]
		}
	}
	b.PerCore[Energy] = energy

	b.PerCore[Immersion] = m.ImmersionShare
	return b
}

// CostPerVCore returns cost per virtual core under physical-core
// oversubscription (§VI-C): the per-physical-core cost amortized over
// 1+ratio virtual cores.
func (m Model) CostPerVCore(s Scenario, oversubRatio float64) float64 {
	if oversubRatio < 0 {
		oversubRatio = 0
	}
	return m.CostPerCore(s).Total() / (1 + oversubRatio)
}

// OversubSavings summarizes the §VI-C headline numbers.
type OversubSavings struct {
	// VsAir is the cost-per-vcore saving versus the air-cooled
	// baseline without oversubscription.
	VsAir float64
	// VsSelf is the saving versus the same datacenter without
	// oversubscription.
	VsSelf float64
}

// OversubAnalysis evaluates the savings of oversubscribing scenario s
// by ratio (the paper uses 10%, leveraging stranded memory).
func (m Model) OversubAnalysis(s Scenario, ratio float64) OversubSavings {
	air := m.CostPerCore(AirCooled).Total()
	self := m.CostPerCore(s).Total()
	with := m.CostPerVCore(s, ratio)
	return OversubSavings{
		VsAir:  1 - with/air,
		VsSelf: 1 - with/self,
	}
}
