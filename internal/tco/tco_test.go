package tco

import (
	"math"
	"testing"
)

func model(t *testing.T) Model {
	t.Helper()
	m, err := NewDefaultFromTableI()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBaselineSharesSumToOne(t *testing.T) {
	m := model(t)
	sum := 0.0
	for _, c := range Categories() {
		sum += m.BaselineShare[c]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("baseline shares sum to %v", sum)
	}
	if got := m.CostPerCore(AirCooled).Total(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("air baseline total %v, want 1", got)
	}
}

func TestTableVIHeadline(t *testing.T) {
	m := model(t)
	nonOC := m.CostPerCore(TwoPhase).Total()
	oc := m.CostPerCore(TwoPhaseOC).Total()
	// Paper: −7% and −4% per physical core.
	if math.Abs(nonOC-0.93) > 0.005 {
		t.Fatalf("non-OC 2PIC cost/core %v, want 0.93", nonOC)
	}
	if math.Abs(oc-0.96) > 0.005 {
		t.Fatalf("OC 2PIC cost/core %v, want 0.96", oc)
	}
}

func TestTableVICategorySigns(t *testing.T) {
	m := model(t)
	air := m.CostPerCore(AirCooled)
	nonOC := m.CostPerCore(TwoPhase)
	oc := m.CostPerCore(TwoPhaseOC)
	dn := nonOC.Delta(air)
	do := oc.Delta(air)

	// Table VI signs: non-OC servers −1, network +1, construction −2,
	// energy −2, operations −2, design −2, immersion +1.
	if dn[Servers] >= 0 || math.Abs(dn[Servers]+0.01) > 0.005 {
		t.Errorf("non-OC servers delta %v, want ~−1%%", dn[Servers])
	}
	if dn[Network] <= 0 || math.Abs(dn[Network]-0.011) > 0.005 {
		t.Errorf("network delta %v, want ~+1%%", dn[Network])
	}
	for _, c := range []Category{DCConstruction, Energy, Operations, DesignTaxesFees} {
		if math.Abs(dn[c]+0.02) > 0.005 {
			t.Errorf("non-OC %v delta %v, want ~−2%%", c, dn[c])
		}
	}
	if math.Abs(dn[Immersion]-0.01) > 0.003 {
		t.Errorf("immersion delta %v, want ~+1%%", dn[Immersion])
	}

	// OC column: servers and energy go back to baseline (blank).
	if math.Abs(do[Servers]) > 0.005 {
		t.Errorf("OC servers delta %v, want ~0 (upgrade negates savings)", do[Servers])
	}
	if math.Abs(do[Energy]) > 0.005 {
		t.Errorf("OC energy delta %v, want ~0 (overclocking spends the reclaim)", do[Energy])
	}
}

func TestOversubscription13Percent(t *testing.T) {
	m := model(t)
	s := m.OversubAnalysis(TwoPhaseOC, 0.10)
	// Paper: 10% oversubscription in overclockable 2PIC reduces cost
	// per virtual core by 13% versus air-cooled.
	if math.Abs(s.VsAir-0.13) > 0.01 {
		t.Fatalf("OC oversub saving vs air %v, want ~0.13", s.VsAir)
	}
	nonOC := m.OversubAnalysis(TwoPhase, 0.10)
	// Paper: "~10%" benefit for non-overclockable 2PIC (vs itself).
	if math.Abs(nonOC.VsSelf-0.091) > 0.01 {
		t.Fatalf("non-OC oversub saving vs self %v, want ~0.09", nonOC.VsSelf)
	}
}

func TestExpansionFactorFromPUE(t *testing.T) {
	m := model(t)
	want := 1.20 / 1.03
	if math.Abs(m.ExpansionFactor()-want) > 1e-9 {
		t.Fatalf("expansion factor %v, want %v", m.ExpansionFactor(), want)
	}
}

func TestCostPerVCoreClampsRatio(t *testing.T) {
	m := model(t)
	if m.CostPerVCore(AirCooled, -0.5) != m.CostPerCore(AirCooled).Total() {
		t.Fatal("negative oversubscription not clamped")
	}
}

func TestOrderingAcrossScenarios(t *testing.T) {
	m := model(t)
	air := m.CostPerCore(AirCooled).Total()
	nonOC := m.CostPerCore(TwoPhase).Total()
	oc := m.CostPerCore(TwoPhaseOC).Total()
	if !(nonOC < oc && oc < air) {
		t.Fatalf("ordering violated: nonOC %v, OC %v, air %v", nonOC, oc, air)
	}
}

func TestOCEnergyNeverBelowNonOC(t *testing.T) {
	m := model(t)
	if m.CostPerCore(TwoPhaseOC).PerCore[Energy] < m.CostPerCore(TwoPhase).PerCore[Energy] {
		t.Fatal("overclockable energy cost below non-overclockable")
	}
}

func TestScenarioStrings(t *testing.T) {
	if AirCooled.String() == "" || TwoPhase.String() == "" || TwoPhaseOC.String() == "" {
		t.Fatal("empty scenario strings")
	}
	for _, c := range Categories() {
		if c.String() == "" {
			t.Fatal("empty category string")
		}
	}
}
