package telemetry

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promFixture builds a registry with every metric kind, including a
// name that needs sanitization and a second scope sharing a metric
// name with the first (must fold into one family via the scope label).
func promFixture() *Registry {
	reg := NewRegistry()
	s := reg.Scope("dcsim")
	s.Counter("rejected").Add(7)
	s.Counter("cap_events").Add(2)
	s.Gauge("row_power_w").Set(12543.25)
	s.Gauge("bath.peak-c").Set(49.5)
	h := s.Histogram("step_wall_s", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.02)
	h.Observe(0.02)
	h.Observe(5)
	reg.Scope("dcsim/cell-1").Counter("rejected").Add(3)
	return reg
}

const promGolden = `# HELP ocd_bath_peak_c gauge bath_peak_c from the immersionoc telemetry registry.
# TYPE ocd_bath_peak_c gauge
ocd_bath_peak_c{scope="dcsim"} 49.5
# HELP ocd_cap_events_total counter cap_events from the immersionoc telemetry registry.
# TYPE ocd_cap_events_total counter
ocd_cap_events_total{scope="dcsim"} 2
# HELP ocd_rejected_total counter rejected from the immersionoc telemetry registry.
# TYPE ocd_rejected_total counter
ocd_rejected_total{scope="dcsim"} 7
ocd_rejected_total{scope="dcsim/cell-1"} 3
# HELP ocd_row_power_w gauge row_power_w from the immersionoc telemetry registry.
# TYPE ocd_row_power_w gauge
ocd_row_power_w{scope="dcsim"} 12543.25
# HELP ocd_step_wall_s histogram step_wall_s from the immersionoc telemetry registry.
# TYPE ocd_step_wall_s histogram
ocd_step_wall_s_bucket{scope="dcsim",le="0.001"} 1
ocd_step_wall_s_bucket{scope="dcsim",le="0.01"} 1
ocd_step_wall_s_bucket{scope="dcsim",le="0.1"} 3
ocd_step_wall_s_bucket{scope="dcsim",le="+Inf"} 4
ocd_step_wall_s_sum{scope="dcsim"} 5.0405
ocd_step_wall_s_count{scope="dcsim"} 4
`

// TestWritePrometheusGolden pins the full text exposition for a fixed
// registry: counters with _total, gauges, the cumulative histogram
// series, sanitized names, scope labels, deterministic order.
func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := promFixture().Snapshot().WritePrometheus(&b, "ocd"); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != promGolden {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, promGolden)
	}
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)\{([^}]*)\} (\S+)$`)
	labelPairRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// TestWritePrometheusLint validates the exposition the way promlint
// does: every line parses, every name is legal, counters end in
// _total, every sample's base name has a preceding TYPE line, and
// histogram bucket counts are cumulative and consistent with _count.
func TestWritePrometheusLint(t *testing.T) {
	reg := promFixture()
	// A hostile metric name must still sanitize to something legal.
	reg.Scope("dcsim").Gauge("util.v8-large (burst)").Set(1)

	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b, "ocd"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "\n") {
		t.Error("exposition must end with a newline")
	}

	typed := map[string]string{} // base name -> type
	bucketCum := map[string]uint64{}
	for ln, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("line %d: malformed TYPE: %q", ln+1, line)
				continue
			}
			name, kind := parts[2], parts[3]
			if !metricNameRe.MatchString(name) {
				t.Errorf("line %d: illegal metric name %q", ln+1, name)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Errorf("line %d: unknown type %q", ln+1, kind)
			}
			if kind == "counter" && !strings.HasSuffix(name, "_total") {
				t.Errorf("line %d: counter %q lacks the _total suffix", ln+1, name)
			}
			typed[name] = kind
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: unparseable sample: %q", ln+1, line)
			continue
		}
		name, labels := m[1], m[2]
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if trimmed, ok := strings.CutSuffix(name, suf); ok && typed[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		if _, ok := typed[base]; !ok {
			t.Errorf("line %d: sample %q has no preceding TYPE line", ln+1, name)
		}
		for _, pair := range strings.Split(labels, ",") {
			lm := labelPairRe.FindStringSubmatch(pair)
			if lm == nil {
				t.Errorf("line %d: malformed label pair %q", ln+1, pair)
				continue
			}
			if !labelNameRe.MatchString(lm[1]) {
				t.Errorf("line %d: illegal label name %q", ln+1, lm[1])
			}
		}
		if strings.HasSuffix(name, "_bucket") && typed[base] == "histogram" {
			v, err := strconv.ParseUint(m[3], 10, 64)
			if err != nil {
				t.Errorf("line %d: bucket value %q not an integer: %v", ln+1, m[3], err)
				continue
			}
			key := base + "|" + scopeOf(labels)
			if v < bucketCum[key] {
				t.Errorf("line %d: bucket counts not cumulative for %s: %d < %d", ln+1, name, v, bucketCum[key])
			}
			bucketCum[key] = v
		}
	}
	if typed["ocd_util_v8_large_burst"] != "gauge" {
		t.Errorf("sanitized name missing; typed = %v", typed)
	}
}

func scopeOf(labels string) string {
	for _, pair := range strings.Split(labels, ",") {
		if m := labelPairRe.FindStringSubmatch(pair); m != nil && m[1] == "scope" {
			return m[2]
		}
	}
	return ""
}

// TestWritePrometheusNilSnapshot pins that a nil snapshot (telemetry
// off) writes nothing.
func TestWritePrometheusNilSnapshot(t *testing.T) {
	var b strings.Builder
	var s *Snapshot
	if err := s.WritePrometheus(&b, "ocd"); err != nil || b.Len() != 0 {
		t.Fatalf("nil snapshot: err=%v out=%q", err, b.String())
	}
}
