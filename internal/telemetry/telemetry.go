// Package telemetry is the lightweight metrics layer the simulation
// engines publish their observed signals through: counters, gauges and
// fixed-bucket histograms, grouped into per-run scopes keyed by
// experiment name.
//
// The paper's control plane (auto-scaler, oversubscription placement,
// priority capping) is driven by continuously observed signals —
// utilization, junction temperature, power draw — so the simulated
// plant must expose the same signals instead of computing and
// discarding them. Digital-twin work on datacenter cooling treats this
// telemetry substrate as the prerequisite for any optimization loop;
// parameter sweeps and calibration searches read from it.
//
// The layer is designed so the hot simulation loops can afford to keep
// it on:
//
//   - every metric operation is at most a couple of atomic ops on
//     preallocated words (no locks, no allocation after metric
//     creation);
//   - instrumented code hoists metric lookups out of its loops and
//     holds the typed handles (*Counter, *Gauge, *Histogram);
//   - per-event paths (one observation per simulated request) batch
//     through a goroutine-local HistAccum and flush at the simulation
//     kernel's batch boundaries, so the per-event cost is plain
//     arithmetic on private memory — no atomic bus traffic at all;
//   - a nil handle is a no-op for every operation, so "telemetry off"
//     is a nil check per call site — no branches on a config struct,
//     no interface dispatch.
//
// Scopes come from a Registry. The package Default registry backs the
// CLI; the runner gives each Run call its own registry so concurrent
// runs do not mix, and Off disables collection entirely.
package telemetry

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry owns a set of named scopes. The zero value is ready to use;
// a nil *Registry hands out nil scopes (all operations no-op).
type Registry struct {
	off    bool
	mu     sync.RWMutex
	scopes map[string]*Scope
}

// NewRegistry returns an empty, collecting registry.
func NewRegistry() *Registry { return &Registry{} }

// Default is the process-wide registry the CLI exports from.
var Default = NewRegistry()

// Off is a registry that collects nothing: its scopes are nil and
// every metric operation through them is a no-op. Pass it where a
// *Registry is expected to disable telemetry.
var Off = &Registry{off: true}

// Scope returns the named scope, creating it on first use. A nil or
// Off registry returns nil, which is safe to use everywhere.
func (r *Registry) Scope(name string) *Scope {
	if r == nil || r.off {
		return nil
	}
	r.mu.RLock()
	s := r.scopes[name]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.scopes[name]; s == nil {
		if r.scopes == nil {
			r.scopes = make(map[string]*Scope)
		}
		s = &Scope{name: name, reg: r}
		r.scopes[name] = s
	}
	return s
}

// ScopeNames returns the registered scope names, sorted.
func (r *Registry) ScopeNames() []string {
	if r == nil || r.off {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.scopes))
	for n := range r.scopes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Scope is one named group of metrics — in this repository, one scope
// per experiment run plus one for the runner itself, with per-cell
// child scopes underneath the experiments that sweep a grid. Metric
// handles are created on first use and live for the scope's lifetime.
type Scope struct {
	name       string
	reg        *Registry
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// Name returns the scope's key ("" for a nil scope).
func (s *Scope) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Child returns the scope named "<parent>/<suffix>" in the same
// registry, creating it on first use. Sweeping experiments give each
// grid cell its own child scope so last-write metrics (gauges) stay
// deterministic under parallel cells instead of racing on completion
// order. A nil scope returns nil.
func (s *Scope) Child(suffix string) *Scope {
	if s == nil {
		return nil
	}
	return s.reg.Scope(s.name + "/" + suffix)
}

// Counter returns the named counter, creating it on first use. Nil
// scopes return nil (a no-op counter).
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	c := s.counters[name]
	s.mu.RUnlock()
	if c != nil {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c = s.counters[name]; c == nil {
		if s.counters == nil {
			s.counters = make(map[string]*Counter)
		}
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil scopes
// return nil (a no-op gauge).
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	g := s.gauges[name]
	s.mu.RUnlock()
	if g != nil {
		return g
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if g = s.gauges[name]; g == nil {
		if s.gauges == nil {
			s.gauges = make(map[string]*Gauge)
		}
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls reuse the existing
// buckets). Bounds must be ascending; observations above the last
// bound land in an implicit +Inf bucket. Nil scopes return nil.
func (s *Scope) Histogram(name string, bounds []float64) *Histogram {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	h := s.histograms[name]
	s.mu.RUnlock()
	if h != nil {
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h = s.histograms[name]; h == nil {
		if s.histograms == nil {
			s.histograms = make(map[string]*Histogram)
		}
		h = newHistogram(bounds)
		s.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing count. All methods are safe
// for concurrent use and no-ops on a nil receiver.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-written float64 value. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetMax stores v only if it exceeds the current value — a running
// maximum (peak bath temperature, peak power).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v && old != 0 {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the stored value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Observe is a
// short linear scan plus one atomic add per bucket hit and a CAS for
// the running sum; quantiles are estimated at snapshot time by linear
// interpolation within the landing bucket. All methods are safe for
// concurrent use and no-ops on a nil receiver. The total count is
// derived from the buckets, so Observe touches exactly two shared
// words.
type Histogram struct {
	bounds []float64       // ascending upper bounds; implicit +Inf last
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// bucket returns the index v lands in: bucket i covers
// (bounds[i-1], bounds[i]], the last bucket is +Inf. A linear scan
// beats binary search here — the layouts are small (≤ ~20 bounds,
// exponentially spaced from the smallest observable value) and hot
// observations exit within the first few comparisons, without the
// per-probe closure call sort.Search costs.
func (h *Histogram) bucket(v float64) int {
	for i, b := range h.bounds {
		if v <= b {
			return i
		}
	}
	return len(h.bounds)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucket(v)].Add(1)
	h.addSum(v)
}

func (h *Histogram) addSum(v float64) {
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket
// counts, interpolating linearly within the landing bucket. Values in
// the +Inf bucket report the last finite bound. Returns 0 for an
// empty or nil histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	loaded := make([]float64, len(h.counts))
	var total float64
	for i := range h.counts {
		loaded[i] = float64(h.counts[i].Load())
		total += loaded[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * total
	var cum float64
	for i, n := range loaded {
		if cum+n >= rank && n > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) {
				// +Inf bucket: report the last finite bound.
				return lo
			}
			hi := h.bounds[i]
			frac := (rank - cum) / n
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// HistAccum is a single-goroutine accumulator in front of a shared
// Histogram. Observe is plain arithmetic on private memory — no atomic
// ops — and Flush merges the whole batch into the histogram with one
// atomic add per non-empty bucket. The simulation engines keep one per
// run loop for their per-request signals and flush at the kernel's
// batch boundaries (sim.Simulation.OnFlush), so shared metrics are
// complete whenever the kernel hands control back. Not safe for
// concurrent use; a nil accumulator no-ops like the other handles.
type HistAccum struct {
	h      *Histogram
	counts []uint64
	sum    float64
	n      uint64
}

// Accum returns a private accumulator feeding h. A nil histogram
// returns a nil accumulator (all operations no-op).
func (h *Histogram) Accum() *HistAccum {
	if h == nil {
		return nil
	}
	return &HistAccum{h: h, counts: make([]uint64, len(h.counts))}
}

// Observe records one value locally; it is not visible in the
// histogram until Flush.
func (a *HistAccum) Observe(v float64) {
	if a == nil {
		return
	}
	a.counts[a.h.bucket(v)]++
	a.sum += v
	a.n++
}

// Flush publishes the accumulated batch into the histogram and clears
// the accumulator.
func (a *HistAccum) Flush() {
	if a == nil || a.n == 0 {
		return
	}
	for i, c := range a.counts {
		if c != 0 {
			a.h.counts[i].Add(c)
			a.counts[i] = 0
		}
	}
	a.h.addSum(a.sum)
	a.sum = 0
	a.n = 0
}

// Standard bucket layouts. Shared so the same metric name always has
// the same schema across engines.
var (
	// LatencyBuckets covers request sojourn times in seconds, from
	// 1 ms to ~67 s in powers of two.
	LatencyBuckets = expBuckets(0.001, 2, 17)
	// WallBuckets covers experiment wall times in seconds, from 1 ms
	// to ~2 min in powers of two.
	WallBuckets = expBuckets(0.001, 2, 18)
)

// expBuckets returns n exponentially spaced bounds starting at start.
func expBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Snapshot is the exportable state of a registry: one entry per scope,
// each carrying its metric values. It marshals to the JSON schema
// `octl -metrics` writes.
type Snapshot struct {
	Scopes map[string]ScopeSnapshot `json:"scopes"`
}

// ScopeSnapshot is one scope's metrics at snapshot time.
type ScopeSnapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot carries a histogram's buckets plus precomputed
// headline quantiles.
type HistogramSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Mean   float64   `json:"mean"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// Snapshot captures the registry's current state. Nil and Off
// registries return nil.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil || r.off {
		return nil
	}
	r.mu.RLock()
	scopes := make([]*Scope, 0, len(r.scopes))
	for _, s := range r.scopes {
		scopes = append(scopes, s)
	}
	r.mu.RUnlock()

	snap := &Snapshot{Scopes: make(map[string]ScopeSnapshot, len(scopes))}
	for _, s := range scopes {
		snap.Scopes[s.name] = s.snapshot()
	}
	return snap
}

func (s *Scope) snapshot() ScopeSnapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := ScopeSnapshot{}
	if len(s.counters) > 0 {
		out.Counters = make(map[string]uint64, len(s.counters))
		for n, c := range s.counters {
			out.Counters[n] = c.Value()
		}
	}
	if len(s.gauges) > 0 {
		out.Gauges = make(map[string]float64, len(s.gauges))
		for n, g := range s.gauges {
			out.Gauges[n] = g.Value()
		}
	}
	if len(s.histograms) > 0 {
		out.Histograms = make(map[string]HistogramSnapshot, len(s.histograms))
		for n, h := range s.histograms {
			hs := HistogramSnapshot{
				Count:  h.Count(),
				Sum:    h.Sum(),
				P50:    h.Quantile(0.50),
				P95:    h.Quantile(0.95),
				P99:    h.Quantile(0.99),
				Bounds: h.bounds,
				Counts: make([]uint64, len(h.counts)),
			}
			if hs.Count > 0 {
				hs.Mean = hs.Sum / float64(hs.Count)
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			out.Histograms[n] = hs
		}
	}
	return out
}

// MarshalIndent renders the snapshot as indented JSON (the `octl
// -metrics` file format). A nil snapshot marshals as "null".
func (s *Snapshot) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
