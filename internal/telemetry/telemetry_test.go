package telemetry

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// Every operation through a nil registry/scope/metric must be a
	// silent no-op: this is the "telemetry off" path the hot loops take.
	var r *Registry
	s := r.Scope("x")
	if s != nil {
		t.Fatal("nil registry handed out a live scope")
	}
	if got := Off.Scope("x"); got != nil {
		t.Fatal("Off registry handed out a live scope")
	}
	s.Counter("c").Inc()
	s.Counter("c").Add(5)
	s.Gauge("g").Set(3)
	s.Gauge("g").SetMax(9)
	s.Histogram("h", LatencyBuckets).Observe(0.5)
	if s.Counter("c").Value() != 0 || s.Gauge("g").Value() != 0 {
		t.Fatal("nil metrics returned non-zero values")
	}
	if s.Histogram("h", nil).Count() != 0 || s.Histogram("h", nil).Quantile(0.5) != 0 {
		t.Fatal("nil histogram returned non-zero values")
	}
	if r.Snapshot() != nil || Off.Snapshot() != nil {
		t.Fatal("disabled registry produced a snapshot")
	}
	if s.Name() != "" {
		t.Fatal("nil scope has a name")
	}
}

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	s := reg.Scope("run")
	c := s.Counter("requests")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	if s.Counter("requests") != c {
		t.Fatal("counter handle not stable across lookups")
	}

	g := s.Gauge("power_w")
	g.Set(120.5)
	if g.Value() != 120.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	g.SetMax(100) // below current → keep
	if g.Value() != 120.5 {
		t.Fatalf("SetMax lowered the gauge to %v", g.Value())
	}
	g.SetMax(150)
	if g.Value() != 150 {
		t.Fatalf("SetMax = %v, want 150", g.Value())
	}
	neg := s.Gauge("neg")
	neg.Set(-5)
	neg.SetMax(-10) // below current → keep
	if neg.Value() != -5 {
		t.Fatalf("SetMax on negative gauge = %v, want -5", neg.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Scope("run").Histogram("lat", []float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-150) > 1e-9 {
		t.Fatalf("sum = %v", got)
	}
	// Interpolated quantiles stay inside the bucket.
	for _, q := range []float64{0.1, 0.5, 0.95} {
		v := h.Quantile(q)
		if v < 1 || v > 2 {
			t.Fatalf("q%.2f = %v, outside (1,2]", q, v)
		}
	}
	// Overflow lands in the +Inf bucket and reports the last bound.
	h.Observe(100)
	if got := h.Quantile(1); got != 8 {
		t.Fatalf("overflow quantile = %v, want last bound 8", got)
	}
	if empty := reg.Scope("run").Histogram("empty", []float64{1}); empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
}

func TestSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	s := reg.Scope("fig12")
	s.Counter("requests").Add(42)
	s.Gauge("power_w").Set(130)
	s.Histogram("sojourn_s", []float64{0.01, 0.1, 1}).Observe(0.05)
	reg.Scope("runner").Counter("attempts").Inc()

	snap := reg.Snapshot()
	if snap == nil {
		t.Fatal("nil snapshot from live registry")
	}
	fig := snap.Scopes["fig12"]
	if fig.Counters["requests"] != 42 || fig.Gauges["power_w"] != 130 {
		t.Fatalf("snapshot values wrong: %+v", fig)
	}
	hs := fig.Histograms["sojourn_s"]
	if hs.Count != 1 || hs.Mean != 0.05 {
		t.Fatalf("histogram snapshot: %+v", hs)
	}
	if len(hs.Counts) != len(hs.Bounds)+1 {
		t.Fatalf("bucket schema: %d counts for %d bounds", len(hs.Counts), len(hs.Bounds))
	}

	data, err := snap.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if round.Scopes["runner"].Counters["attempts"] != 1 {
		t.Fatal("round-trip lost the runner scope")
	}
	if got := reg.ScopeNames(); len(got) != 2 || got[0] != "fig12" || got[1] != "runner" {
		t.Fatalf("scope names = %v", got)
	}
}

func TestHistAccum(t *testing.T) {
	reg := NewRegistry()
	h := reg.Scope("run").Histogram("lat", []float64{1, 2, 4})
	a := h.Accum()
	a.Observe(0.5)
	a.Observe(1.5)
	a.Observe(100)
	if h.Count() != 0 {
		t.Fatalf("observations visible before Flush: count = %d", h.Count())
	}
	a.Flush()
	if h.Count() != 3 {
		t.Fatalf("count = %d after Flush, want 3", h.Count())
	}
	if got := h.Sum(); math.Abs(got-102) > 1e-9 {
		t.Fatalf("sum = %v after Flush, want 102", got)
	}
	a.Flush() // empty flush is a no-op
	if h.Count() != 3 {
		t.Fatalf("count = %d after empty Flush, want 3", h.Count())
	}
	a.Observe(3)
	a.Flush()
	if h.Count() != 4 || math.Abs(h.Sum()-105) > 1e-9 {
		t.Fatalf("count = %d sum = %v after second batch, want 4/105", h.Count(), h.Sum())
	}

	// Accumulator and direct Observe agree on bucketing.
	direct := reg.Scope("run").Histogram("direct", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 100, 3} {
		direct.Observe(v)
	}
	for q := 0.0; q <= 1; q += 0.25 {
		if a, b := h.Quantile(q), direct.Quantile(q); a != b {
			t.Fatalf("q%.2f: accum %v != direct %v", q, a, b)
		}
	}

	var nilAcc *HistAccum
	nilAcc.Observe(1)
	nilAcc.Flush()
	var nilHist *Histogram
	if nilHist.Accum() != nil {
		t.Fatal("nil histogram handed out a live accumulator")
	}
}

func TestConcurrentWrites(t *testing.T) {
	// 8 goroutines hammer the same handles and the lazy-creation maps;
	// meaningful under -race.
	reg := NewRegistry()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := reg.Scope("shared")
			c := s.Counter("n")
			g := s.Gauge("max")
			h := s.Histogram("lat", LatencyBuckets)
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(float64(w*per + i))
				h.Observe(float64(i%50) / 1000)
				if i%500 == 0 {
					reg.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := reg.Scope("shared")
	if got := s.Counter("n").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := s.Histogram("lat", LatencyBuckets).Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if got := s.Gauge("max").Value(); got != workers*per-1 {
		t.Fatalf("gauge max = %v, want %d", got, workers*per-1)
	}
}

// The micro-benchmarks quantify the per-operation cost backing the
// < 2% evaluation overhead budget: one atomic op when collection is
// on, a nil-receiver branch when it is off.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Scope("bench").Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterHandles contrasts the two ways to reach a metric:
// resolving it by name on every observation versus holding the handle,
// which is what every hot loop (queueing's SetTelemetry, dcsim's fleet
// step) does. The held row must stay at 0 allocs/op — handle
// resolution happens once, before the timer starts.
func BenchmarkCounterHandles(b *testing.B) {
	b.Run("lookup", func(b *testing.B) {
		s := NewRegistry().Scope("bench")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Counter("c").Inc()
		}
	})
	b.Run("held", func(b *testing.B) {
		c := NewRegistry().Scope("bench").Counter("c")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Scope("bench").Gauge("g")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Scope("bench").Histogram("h", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 1e4)
	}
}

func BenchmarkHistAccumObserve(b *testing.B) {
	h := NewRegistry().Scope("bench").Histogram("h", LatencyBuckets)
	a := h.Accum()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Observe(float64(i%1000) / 1e4)
	}
	a.Flush()
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1)
	}
}
