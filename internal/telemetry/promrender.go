package telemetry

// PromRenderer is the scrape-rate Prometheus exposition path: it
// renders a live Registry byte-identical to
// Registry.Snapshot().WritePrometheus but without building the
// intermediate Snapshot, and with zero steady-state allocations.
//
// The renderer exploits the registry's shape being append-only: scopes
// and metrics are created once and never removed, so the expensive
// parts of exposition — name sanitization, sort order, HELP/TYPE
// headers, label escaping, bucket bound formatting — depend only on
// the *shape* (which scopes and metric names exist), not on the
// values. The renderer caches a fully ordered render plan whose lines
// are pre-rendered up to the value byte, holds the typed metric
// handles, and on each scrape appends just the atomic-loaded values.
// A cheap shape probe (scope count plus per-scope map sizes) detects
// new registrations and rebuilds the plan; between registrations a
// scrape is a walk over the plan plus one Write.
//
// A PromRenderer is NOT safe for concurrent use — callers that serve
// scrapes concurrently keep a sync.Pool of renderers (each warms its
// own plan and buffer). WritePrometheus stays as the one-shot path for
// snapshots that already exist.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// promItem is one cached sample line: everything up to the value byte
// pre-rendered, plus the typed handle the value is loaded from. For
// histograms one item carries the whole expansion (buckets, _sum,
// _count) because the cumulative bucket walk shares one pass over the
// atomic counts.
type promItem struct {
	pre []byte // bytes up to and including the space before the value
	ctr *Counter
	g   *Gauge
	h   *Histogram
	// Histogram expansion: per-bucket preludes (le pre-formatted,
	// +Inf last), then _sum and _count preludes.
	bucketPre [][]byte
	sumPre    []byte
	countPre  []byte
}

// promFam is one cached family: its HELP/TYPE header plus ordered
// sample items.
type promFam struct {
	name   string
	kind   string
	header []byte
	items  []promItem
}

// promScopeShape records the per-scope metric counts the staleness
// probe compares against.
type promScopeShape struct {
	s          *Scope
	nc, ng, nh int
}

// PromRenderer renders one registry under one namespace. See the
// package comment above for the caching contract.
type PromRenderer struct {
	reg       *Registry
	namespace string // sanitized, defaulted

	scopes []promScopeShape
	fams   []*promFam
	buf    []byte
}

// NewPromRenderer builds a renderer for reg under the namespace prefix
// ("" defaults to "immersionoc", matching WritePrometheus). The render
// plan is built lazily on first Render.
func NewPromRenderer(reg *Registry, namespace string) *PromRenderer {
	if namespace == "" {
		namespace = "immersionoc"
	}
	return &PromRenderer{reg: reg, namespace: promName(namespace)}
}

// Render writes the registry's current state in Prometheus text
// exposition format: byte-identical to
// reg.Snapshot().WritePrometheus(w, namespace) taken at the same
// instant (on a quiescent registry). A nil or Off registry writes
// nothing.
func (r *PromRenderer) Render(w io.Writer) error {
	if r.reg == nil || r.reg.off {
		return nil
	}
	if r.stale() {
		r.rebuild()
	}
	buf := r.buf[:0]
	for _, f := range r.fams {
		buf = append(buf, f.header...)
		for i := range f.items {
			it := &f.items[i]
			switch {
			case it.ctr != nil:
				buf = append(buf, it.pre...)
				buf = strconv.AppendUint(buf, it.ctr.Value(), 10)
				buf = append(buf, '\n')
			case it.g != nil:
				buf = append(buf, it.pre...)
				buf = strconv.AppendFloat(buf, it.g.Value(), 'g', -1, 64)
				buf = append(buf, '\n')
			case it.h != nil:
				// One pass over the atomic counts renders the cumulative
				// buckets; the final cumulative value IS the _count, so
				// the expansion is self-consistent even if observations
				// land mid-scrape.
				var cum uint64
				for b := range it.h.counts {
					cum += it.h.counts[b].Load()
					buf = append(buf, it.bucketPre[b]...)
					buf = strconv.AppendUint(buf, cum, 10)
					buf = append(buf, '\n')
				}
				buf = append(buf, it.sumPre...)
				buf = strconv.AppendFloat(buf, it.h.Sum(), 'g', -1, 64)
				buf = append(buf, '\n')
				buf = append(buf, it.countPre...)
				buf = strconv.AppendUint(buf, cum, 10)
				buf = append(buf, '\n')
			}
		}
	}
	r.buf = buf
	_, err := w.Write(buf)
	return err
}

// stale reports whether the registry grew metrics or scopes since the
// plan was built. Registrations are rare (start-up, first use) and
// removals impossible, so comparing counts is exact.
func (r *PromRenderer) stale() bool {
	r.reg.mu.RLock()
	n := len(r.reg.scopes)
	r.reg.mu.RUnlock()
	if n != len(r.scopes) {
		return true
	}
	for i := range r.scopes {
		sc := &r.scopes[i]
		sc.s.mu.RLock()
		same := len(sc.s.counters) == sc.nc &&
			len(sc.s.gauges) == sc.ng &&
			len(sc.s.histograms) == sc.nh
		sc.s.mu.RUnlock()
		if !same {
			return true
		}
	}
	return false
}

// rebuild reconstructs the render plan, replicating WritePrometheus's
// ordering exactly: scopes sorted, per-scope metric names sorted
// (counters, then gauges, then histograms), families emitted in
// sorted-name order with first-registration-wins TYPE.
func (r *PromRenderer) rebuild() {
	r.reg.mu.RLock()
	scopes := make([]*Scope, 0, len(r.reg.scopes))
	for _, s := range r.reg.scopes {
		scopes = append(scopes, s)
	}
	r.reg.mu.RUnlock()
	sort.Slice(scopes, func(i, j int) bool { return scopes[i].name < scopes[j].name })

	fams := map[string]*promFam{}
	family := func(name, kind string) *promFam {
		full := r.namespace + "_" + promName(name)
		f := fams[full]
		if f == nil {
			f = &promFam{name: full, kind: kind}
			fams[full] = f
		}
		return f
	}
	labels := func(scope, le string) string {
		l := `scope="` + escapeLabel(scope) + `"`
		if le != "" {
			l += `,le="` + escapeLabel(le) + `"`
		}
		return l
	}
	pre := func(f *promFam, suffix, scope, le string) []byte {
		return []byte(f.name + suffix + "{" + labels(scope, le) + "} ")
	}

	r.scopes = r.scopes[:0]
	for _, s := range scopes {
		s.mu.RLock()
		r.scopes = append(r.scopes, promScopeShape{
			s: s, nc: len(s.counters), ng: len(s.gauges), nh: len(s.histograms),
		})
		for _, name := range sortedKeys(s.counters) {
			f := family(name+"_total", "counter")
			f.items = append(f.items, promItem{pre: pre(f, "", s.name, ""), ctr: s.counters[name]})
		}
		for _, name := range sortedKeys(s.gauges) {
			f := family(name, "gauge")
			f.items = append(f.items, promItem{pre: pre(f, "", s.name, ""), g: s.gauges[name]})
		}
		for _, name := range sortedKeys(s.histograms) {
			h := s.histograms[name]
			f := family(name, "histogram")
			it := promItem{h: h, bucketPre: make([][]byte, len(h.counts))}
			for b := range h.counts {
				le := "+Inf"
				if b < len(h.bounds) {
					le = formatFloat(h.bounds[b])
				}
				it.bucketPre[b] = pre(f, "_bucket", s.name, le)
			}
			it.sumPre = pre(f, "_sum", s.name, "")
			it.countPre = pre(f, "_count", s.name, "")
			f.items = append(f.items, it)
		}
		s.mu.RUnlock()
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	r.fams = r.fams[:0]
	for _, name := range names {
		f := fams[name]
		f.header = []byte(fmt.Sprintf("# HELP %s %s %s from the immersionoc telemetry registry.\n# TYPE %s %s\n",
			f.name, f.kind, trimFamily(f.name, r.namespace), f.name, f.kind))
		r.fams = append(r.fams, f)
	}
}

// trimFamily strips the namespace prefix and counter suffix for the
// HELP line, exactly as WritePrometheus does.
func trimFamily(name, namespace string) string {
	if len(name) >= 6 && name[len(name)-6:] == "_total" {
		name = name[:len(name)-6]
	}
	p := namespace + "_"
	if len(name) >= len(p) && name[:len(p)] == p {
		name = name[len(p):]
	}
	return name
}
