package telemetry

import (
	"io"
	"strings"
	"testing"
)

// TestPromRendererMatchesSnapshot pins the cached renderer to the
// snapshot path byte for byte, through value updates and through a
// shape change (new scope + new metrics) that forces a plan rebuild.
func TestPromRendererMatchesSnapshot(t *testing.T) {
	reg := promFixture()
	r := NewPromRenderer(reg, "ocd")

	check := func(stage string) {
		t.Helper()
		var want, got strings.Builder
		if err := reg.Snapshot().WritePrometheus(&want, "ocd"); err != nil {
			t.Fatal(err)
		}
		if err := r.Render(&got); err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Fatalf("%s: renderer diverged from snapshot path:\n--- renderer ---\n%s\n--- snapshot ---\n%s",
				stage, got.String(), want.String())
		}
	}

	check("initial")
	if got := func() string { var b strings.Builder; _ = r.Render(&b); return b.String() }(); got != promGolden {
		t.Fatalf("renderer does not match the golden exposition:\n%s", got)
	}

	// Value-only updates must be visible without a rebuild.
	s := reg.Scope("dcsim")
	s.Counter("rejected").Add(5)
	s.Gauge("row_power_w").Set(-0.25)
	s.Histogram("step_wall_s", nil).Observe(0.05)
	check("after value updates")

	// Shape changes (new metric, new scope, new histogram) must be
	// picked up by the staleness probe.
	s.Counter("new_counter").Inc()
	check("after new counter")
	reg.Scope("ocd").Gauge("sim_time_drift_s").Set(1.5)
	check("after new scope")
	reg.Scope("ocd").Histogram("lat_s", []float64{0.001, 0.01}).Observe(0.002)
	check("after new histogram")
}

// TestPromRendererNilRegistry checks the nil/off no-op contract.
func TestPromRendererNilRegistry(t *testing.T) {
	for _, reg := range []*Registry{nil, Off} {
		var b strings.Builder
		if err := NewPromRenderer(reg, "").Render(&b); err != nil {
			t.Fatal(err)
		}
		if b.Len() != 0 {
			t.Fatalf("nil/off registry rendered %q, want nothing", b.String())
		}
	}
}

// TestPromRendererZeroAllocs is the scrape-scratch regression gate: on
// a warm registry (plan built, buffer grown) a scrape performs zero
// allocations.
func TestPromRendererZeroAllocs(t *testing.T) {
	reg := promFixture()
	r := NewPromRenderer(reg, "ocd")
	if err := r.Render(io.Discard); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := r.Render(io.Discard); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("warm scrape allocated %v times per run, want 0", n)
	}
}
