package telemetry

// Prometheus text exposition of a Snapshot: the bridge between the
// simulation's in-process metrics and the scrape-based telemetry
// pipelines real control planes are built on (the paper's placement
// loop, and the Telemetry Aware Scheduling line of work, consume
// exactly this format). The ocd daemon serves it at /metrics.
//
// Mapping:
//
//   - every metric becomes <namespace>_<sanitized name>, with the
//     scope attached as a `scope` label, so one family groups the same
//     signal across scopes (per-cell child scopes become label values,
//     not new names);
//   - counters get the conventional _total suffix;
//   - histograms expand to the _bucket (cumulative, with le labels,
//     +Inf last), _sum and _count series;
//   - output is deterministic: families ordered by name, samples by
//     scope, so golden tests and diff-based scrape debugging work.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promName sanitizes a metric or scope-derived token into a valid
// Prometheus metric-name fragment: every run of invalid characters
// collapses to one underscore ("util.v8-large" → "util_v8_large").
func promName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	lastUnderscore := false
	for i, r := range s {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if valid {
			b.WriteRune(r)
			lastUnderscore = r == '_'
			continue
		}
		if !lastUnderscore {
			b.WriteByte('_')
			lastUnderscore = true
		}
	}
	out := strings.TrimRight(b.String(), "_")
	if out == "" {
		return "_"
	}
	return out
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest round-trippable decimal.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSample is one (scope, suffix-labels, value) series point.
type promSample struct {
	scope  string
	le     string // bucket bound for _bucket samples, "" otherwise
	suffix string // "", "_total", "_bucket", "_sum", "_count"
	value  string
}

// promFamily is one metric name with its TYPE and ordered samples.
type promFamily struct {
	name    string
	kind    string // "counter", "gauge", "histogram"
	samples []promSample
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format under the namespace prefix ("" defaults to "immersionoc").
// A nil snapshot writes nothing and returns nil.
func (s *Snapshot) WritePrometheus(w io.Writer, namespace string) error {
	if s == nil {
		return nil
	}
	if namespace == "" {
		namespace = "immersionoc"
	}
	namespace = promName(namespace)

	fams := map[string]*promFamily{}
	family := func(name, kind string) *promFamily {
		full := namespace + "_" + promName(name)
		f := fams[full]
		if f == nil {
			f = &promFamily{name: full, kind: kind}
			fams[full] = f
		}
		return f
	}

	scopes := make([]string, 0, len(s.Scopes))
	for name := range s.Scopes {
		scopes = append(scopes, name)
	}
	sort.Strings(scopes)

	for _, scope := range scopes {
		ss := s.Scopes[scope]
		for _, name := range sortedKeys(ss.Counters) {
			f := family(name+"_total", "counter")
			f.samples = append(f.samples, promSample{
				scope: scope,
				value: strconv.FormatUint(ss.Counters[name], 10),
			})
		}
		for _, name := range sortedKeys(ss.Gauges) {
			f := family(name, "gauge")
			f.samples = append(f.samples, promSample{
				scope: scope,
				value: formatFloat(ss.Gauges[name]),
			})
		}
		for _, name := range sortedKeys(ss.Histograms) {
			h := ss.Histograms[name]
			f := family(name, "histogram")
			var cum uint64
			for i, c := range h.Counts {
				cum += c
				le := "+Inf"
				if i < len(h.Bounds) {
					le = formatFloat(h.Bounds[i])
				}
				f.samples = append(f.samples, promSample{
					scope: scope, suffix: "_bucket", le: le,
					value: strconv.FormatUint(cum, 10),
				})
			}
			f.samples = append(f.samples,
				promSample{scope: scope, suffix: "_sum", value: formatFloat(h.Sum)},
				promSample{scope: scope, suffix: "_count", value: strconv.FormatUint(h.Count, 10)})
		}
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		f := fams[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s %s from the immersionoc telemetry registry.\n# TYPE %s %s\n",
			f.name, f.kind, strings.TrimPrefix(strings.TrimSuffix(f.name, "_total"), namespace+"_"), f.name, f.kind); err != nil {
			return err
		}
		for _, sm := range f.samples {
			labels := `scope="` + escapeLabel(sm.scope) + `"`
			if sm.le != "" {
				labels += `,le="` + escapeLabel(sm.le) + `"`
			}
			if _, err := fmt.Fprintf(w, "%s%s{%s} %s\n", f.name, sm.suffix, labels, sm.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// sortedKeys returns m's keys sorted.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
