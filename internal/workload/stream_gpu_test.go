package workload

import (
	"math"
	"testing"

	"immersionoc/internal/freq"
	"immersionoc/internal/power"
)

func TestStreamHeadlineNumbers(t *testing.T) {
	// Paper Figure 10: B4 achieves +17% and OC3 +24% over B1.
	m := DefaultStream
	for _, k := range StreamKernels() {
		if got := m.Improvement(k, freq.B1, freq.B4); math.Abs(got-0.17) > 0.015 {
			t.Errorf("%v: B4 improvement %v, want ~0.17", k, got)
		}
		if got := m.Improvement(k, freq.B1, freq.OC3); math.Abs(got-0.24) > 0.015 {
			t.Errorf("%v: OC3 improvement %v, want ~0.24", k, got)
		}
	}
}

func TestStreamBandwidthMonotoneInAggressiveness(t *testing.T) {
	m := DefaultStream
	order := []freq.Config{freq.B1, freq.B2, freq.B3, freq.B4}
	for _, k := range StreamKernels() {
		prev := 0.0
		for _, cfg := range order {
			bw := m.Bandwidth(k, cfg)
			if bw <= prev {
				t.Errorf("%v: bandwidth not increasing at %s", k, cfg.Name)
			}
			prev = bw
		}
	}
}

func TestStreamB1Absolute(t *testing.T) {
	// B1 bandwidths should be six-channel DDR4-2400 class (80–95
	// GB/s).
	m := DefaultStream
	for _, k := range StreamKernels() {
		bw := m.Bandwidth(k, freq.B1)
		if bw < 80000 || bw > 96000 {
			t.Errorf("%v: B1 bandwidth %v MB/s out of DDR4 range", k, bw)
		}
	}
}

func TestStreamMemoryDominates(t *testing.T) {
	// Memory overclocking (B3→B4) must matter more than core
	// overclocking (B2→... OC1 vs B2) for STREAM.
	m := DefaultStream
	memGain := m.Improvement(Triad, freq.B3, freq.B4)
	coreGain := m.Improvement(Triad, freq.B2, withCore(freq.B2, 4.1))
	if memGain <= coreGain {
		t.Fatalf("memory gain %v not above core gain %v", memGain, coreGain)
	}
}

func withCore(cfg freq.Config, f freq.GHz) freq.Config {
	cfg.CoreGHz = f
	return cfg
}

func TestStreamPowerIncreasesWithAggressiveness(t *testing.T) {
	m := DefaultStream
	p1 := m.Power(power.Tank1Server, freq.B1)
	p2 := m.Power(power.Tank1Server, freq.OC3)
	if p2 <= p1 {
		t.Fatal("OC3 STREAM power not above B1")
	}
}

func TestStreamUnknownKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kernel did not panic")
		}
	}()
	DefaultStream.Bandwidth(StreamKernel(42), freq.B1)
}

func TestVGGModelsValidate(t *testing.T) {
	models := VGGModels()
	if len(models) != 6 {
		t.Fatalf("%d VGG models, want 6", len(models))
	}
	for _, m := range models {
		if err := m.Validate(); err != nil {
			t.Error(err)
		}
	}
	if _, err := VGGByName("VGG16B"); err != nil {
		t.Fatal(err)
	}
	if _, err := VGGByName("VGG99"); err == nil {
		t.Fatal("unknown model did not error")
	}
}

func TestVGGImprovementUpTo15Percent(t *testing.T) {
	// Paper: execution time decreases by up to 15%.
	best := 0.0
	for _, m := range VGGModels() {
		for _, cfg := range freq.TableVIII() {
			if imp := m.Improvement(cfg); imp > best {
				best = imp
			}
			if imp := m.Improvement(cfg); imp < 0 {
				t.Errorf("%s under %s: negative improvement %v", m.Name, cfg.Name, imp)
			}
		}
	}
	if best < 0.12 || best > 0.16 {
		t.Fatalf("best VGG improvement %.1f%%, want ~15%%", best*100)
	}
}

func TestVGG16BSaturatesPastOCG1(t *testing.T) {
	// Paper: for VGG16B, OCG3 provides no additional improvement
	// over OCG2, and its memory sensitivity is minimal.
	m, _ := VGGByName("VGG16B")
	i2 := m.Improvement(freq.OCG2)
	i3 := m.Improvement(freq.OCG3)
	if i3-i2 > 0.005 {
		t.Fatalf("VGG16B gains %.2f%% from OCG2→OCG3, want ~none", (i3-i2)*100)
	}
	// Memory-bound fraction must be the smallest of all models.
	for _, other := range VGGModels() {
		if other.Name != "VGG16B" && other.WMem <= m.WMem {
			t.Errorf("%s WMem %v ≤ VGG16B's %v", other.Name, other.WMem, m.WMem)
		}
	}
}

func TestVGGPowerCalibration(t *testing.T) {
	// Paper: P99 power 193 W stock → 231 W overclocked (+19%).
	pm := DefaultGPUPower
	base := pm.P99(freq.GPUBase)
	oc := pm.P99(freq.OCG3)
	if math.Abs(base-193) > 5 {
		t.Fatalf("stock P99 power %v, want ~193 W", base)
	}
	if math.Abs(oc-231) > 7 {
		t.Fatalf("OCG3 P99 power %v, want ~231 W", oc)
	}
	if math.Abs(oc/base-1.19) > 0.03 {
		t.Fatalf("power increase %v, want ~+19%%", oc/base-1)
	}
}

func TestVGGPowerRespectsLimit(t *testing.T) {
	pm := DefaultGPUPower
	for _, cfg := range freq.TableVIII() {
		if pm.Average(cfg) > cfg.PowerLimitW || pm.P99(cfg) > cfg.PowerLimitW {
			t.Errorf("%s: power exceeds board limit", cfg.Name)
		}
	}
}

func TestVGGOCG1ToOCG3P99Increase(t *testing.T) {
	// Paper: P99 increases ~9.5% between OCG1 and OCG3.
	pm := DefaultGPUPower
	got := pm.P99(freq.OCG3)/pm.P99(freq.OCG1) - 1
	if got < 0.06 || got > 0.14 {
		t.Fatalf("OCG1→OCG3 P99 increase %v, want ~9.5%%", got)
	}
}

func TestVGGSecondsScale(t *testing.T) {
	m, _ := VGGByName("VGG16")
	if m.Seconds(freq.GPUBase) != m.BaseSeconds {
		t.Fatal("base seconds not identity")
	}
	if m.Seconds(freq.OCG3) >= m.BaseSeconds {
		t.Fatal("overclocked training not faster")
	}
}
