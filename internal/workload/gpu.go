package workload

import (
	"fmt"

	"immersionoc/internal/freq"
)

// VGGModel describes one CNN training workload from the Figure 11
// experiment (VGG variants trained with PyTorch on the tank #2 RTX
// 2080ti; inputs fit in GPU memory).
type VGGModel struct {
	Name string
	// WSM is the fraction of step time bound by the SM (compute)
	// clock; WMem by the GDDR6 memory clock; WFixed is
	// host-side/launch overhead that scales with neither. The
	// batch-optimized variants (suffix B) have high arithmetic
	// intensity, so memory overclocking barely helps them — the
	// paper's VGG16B observation.
	WSM, WMem, WFixed float64
	// BaseSeconds is the epoch time under the stock GPU config.
	BaseSeconds float64
}

// Validate checks the fraction vector.
func (m VGGModel) Validate() error {
	sum := m.WSM + m.WMem + m.WFixed
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("workload: VGG %s fractions sum to %.4f", m.Name, sum)
	}
	return nil
}

// VGGModels returns the six CNN models of Figure 11.
func VGGModels() []VGGModel {
	return []VGGModel{
		{Name: "VGG11", WSM: 0.72, WMem: 0.24, WFixed: 0.04, BaseSeconds: 212},
		{Name: "VGG11B", WSM: 0.88, WMem: 0.08, WFixed: 0.04, BaseSeconds: 168},
		{Name: "VGG13", WSM: 0.76, WMem: 0.20, WFixed: 0.04, BaseSeconds: 318},
		{Name: "VGG13B", WSM: 0.90, WMem: 0.06, WFixed: 0.04, BaseSeconds: 256},
		{Name: "VGG16", WSM: 0.80, WMem: 0.16, WFixed: 0.04, BaseSeconds: 388},
		{Name: "VGG16B", WSM: 0.93, WMem: 0.03, WFixed: 0.04, BaseSeconds: 310},
	}
}

// VGGByName looks up a Figure 11 model.
func VGGByName(name string) (VGGModel, error) {
	for _, m := range VGGModels() {
		if m.Name == name {
			return m, nil
		}
	}
	return VGGModel{}, fmt.Errorf("workload: unknown VGG model %q", name)
}

// TimeRatio returns training time under cfg divided by time under the
// stock GPU configuration: the SM-bound fraction scales with the
// sustained SM clock (which depends on the power limit), the
// memory-bound fraction with the GDDR6 clock.
func (m VGGModel) TimeRatio(cfg freq.GPUConfig) float64 {
	base := freq.GPUBase
	return m.WSM*float64(base.SustainedGHz()/cfg.SustainedGHz()) +
		m.WMem*float64(base.MemoryGHz/cfg.MemoryGHz) +
		m.WFixed
}

// Improvement returns the fractional training-time reduction under cfg.
func (m VGGModel) Improvement(cfg freq.GPUConfig) float64 {
	return 1 - m.TimeRatio(cfg)
}

// Seconds returns the absolute epoch time under cfg.
func (m VGGModel) Seconds(cfg freq.GPUConfig) float64 {
	return m.BaseSeconds * m.TimeRatio(cfg)
}

// GPUPowerModel estimates board power during training (Figure 11's
// power panel): dynamic power scales with the SM clock and the square
// of (1 + voltage offset), and memory power with the memory clock,
// clamped at the configured power limit.
type GPUPowerModel struct {
	// SMRefW is SM-domain power at the stock sustained clock.
	SMRefW float64
	// MemRefW is memory-domain power at the stock memory clock.
	MemRefW float64
	// BoardW is fixed board overhead (fans excluded in immersion).
	BoardW float64
	// P99Factor converts average power to the P99 during a run.
	P99Factor float64
	// VoltScale is the fraction of the configured voltage offset
	// that applies on average (boost tables only hold the offset at
	// the top clock states).
	VoltScale float64
}

// DefaultGPUPower is calibrated so the stock config draws a 193 W P99
// and the aggressive overclocks draw ~231 W P99, the paper's reported
// +19%.
var DefaultGPUPower = GPUPowerModel{
	SMRefW:    125,
	MemRefW:   38,
	BoardW:    17,
	P99Factor: 1.072,
	VoltScale: 0.25,
}

// stockGPUVoltage is the reference voltage scale for the SM domain.
const stockGPUVoltage = 1.00

// Average returns average board power under cfg during training.
func (g GPUPowerModel) Average(cfg freq.GPUConfig) float64 {
	base := freq.GPUBase
	v := stockGPUVoltage + g.VoltScale*cfg.VoltageOffsetMV/1000
	sm := g.SMRefW * float64(cfg.SustainedGHz()/base.SustainedGHz()) * v * v
	mem := g.MemRefW * float64(cfg.MemoryGHz/base.MemoryGHz)
	p := g.BoardW + sm + mem
	if p > cfg.PowerLimitW {
		p = cfg.PowerLimitW
	}
	return p
}

// P99 returns the 99th-percentile board power under cfg.
func (g GPUPowerModel) P99(cfg freq.GPUConfig) float64 {
	p := g.Average(cfg) * g.P99Factor
	if p > cfg.PowerLimitW {
		p = cfg.PowerLimitW
	}
	return p
}
