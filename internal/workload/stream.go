package workload

import (
	"fmt"

	"immersionoc/internal/freq"
	"immersionoc/internal/power"
)

// StreamKernel identifies one of the four STREAM kernels.
type StreamKernel int

const (
	// Copy is a[i] = b[i].
	Copy StreamKernel = iota
	// Scale is a[i] = q*b[i].
	Scale
	// Add is a[i] = b[i] + c[i].
	Add
	// Triad is a[i] = b[i] + q*c[i].
	Triad
)

func (k StreamKernel) String() string {
	switch k {
	case Copy:
		return "copy"
	case Scale:
		return "scale"
	case Add:
		return "add"
	case Triad:
		return "triad"
	default:
		return fmt.Sprintf("kernel(%d)", int(k))
	}
}

// StreamKernels returns the four kernels in STREAM order.
func StreamKernels() []StreamKernel { return []StreamKernel{Copy, Scale, Add, Triad} }

// StreamModel predicts sustainable memory bandwidth for the STREAM
// benchmark as a function of the memory, uncore and core clocks
// (Figure 10). Peak bandwidth scales with the memory clock; the
// achievable fraction of peak is limited by how fast the core and
// uncore can generate and retire requests, captured by a
// latency-concurrency denominator:
//
//	BW = K_kernel · f_mem / (1 + α·f_mem/f_uncore + β·f_mem/f_core)
//
// α and β are calibrated so B4 achieves +17% and OC3 +24% over B1, the
// paper's headline Figure 10 numbers.
type StreamModel struct {
	// Alpha weights the uncore (LLC/ring) limitation.
	Alpha float64
	// Beta weights the core request-generation limitation.
	Beta float64
	// KernelScale is the per-kernel bandwidth constant in MB/s per
	// GHz of memory clock, normalized so B1 bandwidths land at
	// typical six-channel DDR4 values.
	KernelScale map[StreamKernel]float64
}

// DefaultStream is the calibrated Figure 10 model. KernelScale values
// are the B1-configuration bandwidths in MB/s (typical of a
// six-channel DDR4-2400 Skylake socket).
var DefaultStream = StreamModel{
	Alpha: 1.03,
	Beta:  1.18,
	KernelScale: map[StreamKernel]float64{
		Copy:  84000,
		Scale: 83000,
		Add:   92500,
		Triad: 93500,
	},
}

// Bandwidth returns the sustainable bandwidth in MB/s for a kernel
// under cfg.
func (m StreamModel) Bandwidth(k StreamKernel, cfg freq.Config) float64 {
	scale, ok := m.KernelScale[k]
	if !ok {
		panic(fmt.Sprintf("workload: no scale for kernel %v", k))
	}
	den := func(c freq.Config) float64 {
		fm := float64(c.MemoryGHz)
		return 1 + m.Alpha*fm/float64(c.UncoreGHz) + m.Beta*fm/float64(c.CoreGHz)
	}
	// Normalized so KernelScale is the B1 bandwidth exactly.
	return scale * float64(cfg.MemoryGHz/freq.B1.MemoryGHz) * den(freq.B1) / den(cfg)
}

// Improvement returns the bandwidth gain of cfg over base for kernel k.
func (m StreamModel) Improvement(k StreamKernel, base, cfg freq.Config) float64 {
	return m.Bandwidth(k, cfg)/m.Bandwidth(k, base) - 1
}

// Power returns the average server power while running STREAM on all
// cores under cfg — STREAM keeps cores busy issuing loads, so core
// activity is high but the scalable fraction is low.
func (m StreamModel) Power(sm power.ServerModel, cfg freq.Config) float64 {
	// 16 threads as in Table IX; cores are architecturally active
	// but mostly stalled on memory, so their effective switching
	// activity is low.
	return sm.Power(cfg, 16*0.45, 16)
}
