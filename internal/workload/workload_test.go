package workload

import (
	"math"
	"testing"
	"testing/quick"

	"immersionoc/internal/freq"
	"immersionoc/internal/power"
)

func TestAllProfilesValidate(t *testing.T) {
	for _, p := range TableIX() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestTableIXCatalog(t *testing.T) {
	if len(TableIX()) != 11 {
		t.Fatalf("Table IX has %d apps, want 11", len(TableIX()))
	}
	wantCores := map[string]int{
		"SQL": 4, "Training": 4, "Key-Value": 8, "BI": 4, "Client-Server": 4,
		"Pmbench": 2, "DiskSpeed": 2, "SPECJBB": 4, "TeraSort": 4, "VGG": 16, "STREAM": 16,
	}
	for _, p := range TableIX() {
		if wantCores[p.Name] != p.Cores {
			t.Errorf("%s cores %d, want %d", p.Name, p.Cores, wantCores[p.Name])
		}
	}
	if _, err := ByName("SQL"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown app did not error")
	}
}

func TestBaselineIsIdentity(t *testing.T) {
	for _, p := range TableIX() {
		if r := p.MetricRatio(freq.B2); math.Abs(r-1) > 1e-12 {
			t.Errorf("%s: MetricRatio(B2) = %v", p.Name, r)
		}
		if imp := p.Improvement(freq.B2); math.Abs(imp) > 1e-12 {
			t.Errorf("%s: Improvement(B2) = %v", p.Name, imp)
		}
	}
}

func TestOverclockingAlwaysImproves(t *testing.T) {
	// Paper: "In all configurations, overclocking improves the
	// metric of interest."
	for _, p := range Figure9Apps() {
		for _, cfg := range []freq.Config{freq.OC1, freq.OC2, freq.OC3} {
			if imp := p.Improvement(cfg); imp <= 0 {
				t.Errorf("%s under %s: improvement %v", p.Name, cfg.Name, imp)
			}
		}
	}
}

func TestImprovementRange10To25(t *testing.T) {
	// Paper: best-case improvements land in roughly 10–25%.
	for _, p := range Figure9Apps() {
		_, best := p.BestConfig()
		if best < 0.10 || best > 0.27 {
			t.Errorf("%s: best improvement %.1f%%, want within ~10–25%%", p.Name, best*100)
		}
	}
}

func TestCoreOCBestExceptTeraSortAndDiskSpeed(t *testing.T) {
	// Paper: "Core overclocking (OC1) provides the most benefit,
	// with the exception of TeraSort and DiskSpeed" — i.e. the
	// B2→OC1 increment dominates the cache and memory increments.
	for _, p := range Figure9Apps() {
		core, cache, mem := p.IncrementalGains()
		coreDominates := core >= cache && core >= mem
		switch p.Name {
		case "TeraSort", "DiskSpeed":
			if coreDominates {
				t.Errorf("%s: core increment %v dominates (cache %v, mem %v), paper says it should not", p.Name, core, cache, mem)
			}
		default:
			if !coreDominates {
				t.Errorf("%s: core increment %v not dominant (cache %v, mem %v)", p.Name, core, cache, mem)
			}
		}
	}
}

func TestCacheOCAcceleratesPmbenchAndDiskSpeed(t *testing.T) {
	for _, name := range []string{"Pmbench", "DiskSpeed"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		_, cache, _ := p.IncrementalGains()
		if cache < 0.04 {
			t.Errorf("%s: cache increment only %.1f%%", name, cache*100)
		}
	}
}

func TestMemoryOCHelpsSQLMost(t *testing.T) {
	_, _, sqlMem := SQL.IncrementalGains()
	for _, p := range Figure9Apps() {
		if p.Name == "SQL" {
			continue
		}
		_, _, mem := p.IncrementalGains()
		if mem >= sqlMem {
			t.Errorf("%s memory increment %.1f%% ≥ SQL's %.1f%%", p.Name, mem*100, sqlMem*100)
		}
	}
}

func TestTrainingAndBIInsensitiveToUncoreMemory(t *testing.T) {
	for _, name := range []string{"Training", "BI"} {
		p, _ := ByName(name)
		core, cache, mem := p.IncrementalGains()
		if cache+mem > 0.25*core {
			t.Errorf("%s: cache+mem increments %.1f%% too large vs core %.1f%%",
				name, (cache+mem)*100, core*100)
		}
	}
}

func TestB1SlowerThanB2(t *testing.T) {
	for _, p := range Figure9Apps() {
		if p.Improvement(freq.B1) >= 0 {
			t.Errorf("%s: B1 (no turbo) not slower than B2", p.Name)
		}
	}
}

func TestScalableFraction(t *testing.T) {
	// ClientServer: wCore/(wCore+wLLC+wMem) = 0.75/0.85.
	if got := ClientServer.ScalableFraction(); math.Abs(got-0.75/0.85) > 1e-9 {
		t.Fatalf("ClientServer scalable fraction %v", got)
	}
	f := func(a, b, c uint8) bool {
		p := Profile{WCore: float64(a), WLLC: float64(b), WMem: float64(c)}
		sf := p.ScalableFraction()
		return sf >= 0 && sf <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyAmplification(t *testing.T) {
	// A latency metric with queueing improves MORE than its raw
	// service time under overclocking.
	svc := 1 - SQL.ServiceTimeRatio(freq.OC3)
	lat := SQL.Improvement(freq.OC3)
	if lat <= svc {
		t.Fatalf("latency improvement %v not amplified over service %v", lat, svc)
	}
}

func TestServerPowerOrdering(t *testing.T) {
	for _, p := range Figure9Apps() {
		avg, p99 := p.ServerPower(power.Tank1Server, freq.B2)
		if p99 < avg {
			t.Errorf("%s: P99 power %v below average %v", p.Name, p99, avg)
		}
		avgOC, _ := p.ServerPower(power.Tank1Server, freq.OC3)
		if avgOC <= avg {
			t.Errorf("%s: OC3 power not above B2", p.Name)
		}
	}
}

func TestMetricValueScales(t *testing.T) {
	got := Training.MetricValue(freq.OC1)
	want := Training.BaseMetric * Training.MetricRatio(freq.OC1)
	if got != want {
		t.Fatalf("MetricValue %v, want %v", got, want)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := Profile{Name: "x", Cores: 4, WCore: 0.5, WLLC: 0.1, WMem: 0.1, WFixed: 0.1}
	if bad.Validate() == nil {
		t.Fatal("vector not summing to 1 accepted")
	}
	bad2 := Profile{Name: "x", Cores: 0, WCore: 1}
	if bad2.Validate() == nil {
		t.Fatal("zero cores accepted")
	}
	bad3 := Profile{Name: "x", Cores: 1, WCore: 1, QueueRho: 1.0}
	if bad3.Validate() == nil {
		t.Fatal("queue rho = 1 accepted")
	}
}

func TestThroughputMetricInverse(t *testing.T) {
	r := SPECJBB.ServiceTimeRatio(freq.OC1)
	if got := SPECJBB.MetricRatio(freq.OC1); math.Abs(got-1/r) > 1e-12 {
		t.Fatalf("throughput ratio %v, want %v", got, 1/r)
	}
}
