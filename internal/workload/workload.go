// Package workload models the representative cloud applications of
// Table IX and how their performance and power respond to component
// overclocking.
//
// Each application is characterized by a bottleneck vector: the
// fractions of its execution (or request service) time attributable to
// core compute, the uncore/LLC, memory, and fixed components (I/O,
// network) at the B2 baseline configuration. Changing a domain's clock
// rescales only that component, which is exactly the paper's
// observation that "the performance impact of overclocking depends on
// the workload-bounding resource". Latency metrics (P95/P99) are
// additionally amplified through the queueing relationship between
// service time and waiting time at the app's operating utilization.
//
// Vectors are calibrated against Figure 9: OC1 (core) helps most apps
// the most, except TeraSort and DiskSpeed; OC2 (cache) accelerates
// Pmbench and DiskSpeed; OC3 (memory) helps memory-bound SQL
// significantly; Training and BI gain nothing from cache/memory
// overclocking.
package workload

import (
	"fmt"
	"math"

	"immersionoc/internal/freq"
	"immersionoc/internal/power"
)

// MetricKind says whether the application's metric of interest
// improves by going down (latency, runtime) or up (throughput).
type MetricKind int

const (
	// LowerIsBetter marks latency/runtime metrics.
	LowerIsBetter MetricKind = iota
	// HigherIsBetter marks throughput metrics.
	HigherIsBetter
)

func (k MetricKind) String() string {
	if k == HigherIsBetter {
		return "higher-is-better"
	}
	return "lower-is-better"
}

// Profile describes one Table IX application.
type Profile struct {
	// Name is the application name as in Table IX.
	Name string
	// Cores is the number of cores the application needs.
	Cores int
	// InHouse reports whether the workload is Microsoft-internal (I)
	// vs publicly available (P).
	InHouse bool
	// Desc is the Table IX description.
	Desc string
	// Metric is the metric of interest ("P95 Lat", "Seconds", ...).
	Metric string
	Kind   MetricKind

	// WCore, WLLC, WMem, WFixed are the bottleneck fractions at the
	// B2 baseline. They sum to 1.
	WCore, WLLC, WMem, WFixed float64

	// QueueRho is the operating utilization for latency metrics;
	// latency then amplifies service-time improvements through
	// 1/(1-ρ). Zero means the metric tracks service time directly.
	QueueRho float64

	// AvgUtil and P99Util are the per-core utilizations during the
	// run, used for the average and 99th-percentile power draw of
	// Figure 9.
	AvgUtil, P99Util float64

	// BaseMetric is the absolute metric value at B2 (milliseconds
	// for latencies, seconds for runtimes, operations/s for
	// throughputs), for presentation.
	BaseMetric float64
	// BaseServiceMS is the mean per-request service time at B2 in
	// milliseconds, for apps driven through the queueing simulator.
	BaseServiceMS float64
	// ServiceCV is the coefficient of variation of service times
	// (the "G" in M/G/k).
	ServiceCV float64
}

// Validate checks internal consistency.
func (p Profile) Validate() error {
	sum := p.WCore + p.WLLC + p.WMem + p.WFixed
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("workload %s: bottleneck vector sums to %.4f, want 1", p.Name, sum)
	}
	for _, w := range []float64{p.WCore, p.WLLC, p.WMem, p.WFixed} {
		if w < 0 {
			return fmt.Errorf("workload %s: negative bottleneck weight", p.Name)
		}
	}
	if p.Cores <= 0 {
		return fmt.Errorf("workload %s: non-positive core count", p.Name)
	}
	if p.QueueRho < 0 || p.QueueRho >= 1 {
		return fmt.Errorf("workload %s: queue utilization %.2f outside [0,1)", p.Name, p.QueueRho)
	}
	return nil
}

// Reference is the configuration all bottleneck vectors are measured
// at (B2: core 3.4, uncore 2.4, memory 2.4).
var Reference = freq.B2

// ServiceTimeRatio returns service time under cfg divided by service
// time under the B2 reference: each bottleneck component scales
// inversely with its domain clock.
func (p Profile) ServiceTimeRatio(cfg freq.Config) float64 {
	return p.WCore*float64(Reference.CoreGHz/cfg.CoreGHz) +
		p.WLLC*float64(Reference.UncoreGHz/cfg.UncoreGHz) +
		p.WMem*float64(Reference.MemoryGHz/cfg.MemoryGHz) +
		p.WFixed
}

// ScalableFraction returns the fraction of *busy* cycles that scale
// with the core clock — what ΔPperf/ΔAperf measures. Stall cycles
// (LLC and memory waits) do not retire work; fixed I/O time is not
// busy at all, so it is excluded from the denominator.
func (p Profile) ScalableFraction() float64 {
	busy := p.WCore + p.WLLC + p.WMem
	if busy <= 0 {
		return 0
	}
	return p.WCore / busy
}

// MetricRatio returns metric(cfg)/metric(B2). For lower-is-better
// latency metrics with QueueRho > 0, the service-time change is
// amplified by queueing: lat ∝ S/(1−ρ·S/S0) at fixed offered load.
// Throughput metrics return the inverse of the runtime ratio.
func (p Profile) MetricRatio(cfg freq.Config) float64 {
	s := p.ServiceTimeRatio(cfg)
	switch {
	case p.Kind == HigherIsBetter:
		return 1 / s
	case p.QueueRho > 0:
		// M/G/1-PS response time at fixed arrival rate λ:
		// T = S/(1-λS). At B2, λS0 = ρ. Under cfg, λS = ρ·s.
		num := s * (1 - p.QueueRho)
		den := 1 - p.QueueRho*s
		if den <= 0 {
			return math.Inf(1)
		}
		return num / den
	default:
		return s
	}
}

// Improvement returns the fractional improvement of the metric of
// interest under cfg versus B2 (positive is better for both metric
// kinds).
func (p Profile) Improvement(cfg freq.Config) float64 {
	r := p.MetricRatio(cfg)
	if p.Kind == HigherIsBetter {
		return r - 1
	}
	return 1 - r
}

// MetricValue returns the absolute metric value under cfg.
func (p Profile) MetricValue(cfg freq.Config) float64 {
	return p.BaseMetric * p.MetricRatio(cfg)
}

// ServerPower returns the average and P99 server power draw while the
// application runs alone on the given server model under cfg
// (Figure 9's lower panels).
func (p Profile) ServerPower(m power.ServerModel, cfg freq.Config) (avgW, p99W float64) {
	avgW = m.Power(cfg, float64(p.Cores)*p.AvgUtil, p.Cores)
	p99W = m.Power(cfg, float64(p.Cores)*p.P99Util, p.Cores)
	return avgW, p99W
}

// Table IX application profiles. The top nine are the cloud
// applications; VGG and STREAM are modelled separately (gpu.go,
// stream.go) and appear here for the catalog only.
var (
	SQL = Profile{
		Name: "SQL", Cores: 4, InHouse: true,
		Desc: "BenchCraft standard OLTP", Metric: "P95 Lat", Kind: LowerIsBetter,
		WCore: 0.42, WLLC: 0.10, WMem: 0.33, WFixed: 0.15,
		QueueRho: 0.45, AvgUtil: 0.55, P99Util: 0.85,
		BaseMetric: 18.0, BaseServiceMS: 8.0, ServiceCV: 1.2,
	}
	Training = Profile{
		Name: "Training", Cores: 4, InHouse: true,
		Desc: "TensorFlow model CPU training", Metric: "Seconds", Kind: LowerIsBetter,
		WCore: 0.80, WLLC: 0.03, WMem: 0.02, WFixed: 0.15,
		AvgUtil: 0.92, P99Util: 0.99,
		BaseMetric: 1260, BaseServiceMS: 0, ServiceCV: 0,
	}
	KeyValue = Profile{
		Name: "Key-Value", Cores: 8, InHouse: true,
		Desc: "Distributed key-value store", Metric: "P99 Lat", Kind: LowerIsBetter,
		WCore: 0.45, WLLC: 0.15, WMem: 0.15, WFixed: 0.25,
		QueueRho: 0.40, AvgUtil: 0.45, P99Util: 0.80,
		BaseMetric: 2.4, BaseServiceMS: 0.9, ServiceCV: 1.5,
	}
	BI = Profile{
		Name: "BI", Cores: 4, InHouse: true,
		Desc: "Business intelligence", Metric: "Seconds", Kind: LowerIsBetter,
		WCore: 0.75, WLLC: 0.02, WMem: 0.03, WFixed: 0.20,
		AvgUtil: 0.85, P99Util: 0.98,
		BaseMetric: 840, BaseServiceMS: 0, ServiceCV: 0,
	}
	ClientServer = Profile{
		Name: "Client-Server", Cores: 4, InHouse: true,
		Desc: "M/G/k queue application", Metric: "P95 Lat", Kind: LowerIsBetter,
		WCore: 0.75, WLLC: 0.05, WMem: 0.05, WFixed: 0.15,
		QueueRho: 0.40, AvgUtil: 0.50, P99Util: 0.90,
		BaseMetric: 12.0, BaseServiceMS: 2.8, ServiceCV: 0.5,
	}
	Pmbench = Profile{
		Name: "Pmbench", Cores: 2, InHouse: false,
		Desc: "Paging performance", Metric: "Seconds", Kind: LowerIsBetter,
		WCore: 0.35, WLLC: 0.32, WMem: 0.18, WFixed: 0.15,
		AvgUtil: 0.70, P99Util: 0.95,
		BaseMetric: 310, BaseServiceMS: 0, ServiceCV: 0,
	}
	DiskSpeed = Profile{
		Name: "DiskSpeed", Cores: 2, InHouse: false,
		Desc: "Microsoft's Disk IO bench", Metric: "OPS/S", Kind: HigherIsBetter,
		WCore: 0.20, WLLC: 0.45, WMem: 0.10, WFixed: 0.25,
		AvgUtil: 0.60, P99Util: 0.85,
		BaseMetric: 182000, BaseServiceMS: 0, ServiceCV: 0,
	}
	SPECJBB = Profile{
		Name: "SPECJBB", Cores: 4, InHouse: false,
		Desc: "SpecJbb 2000", Metric: "OPS/S", Kind: HigherIsBetter,
		WCore: 0.60, WLLC: 0.15, WMem: 0.10, WFixed: 0.15,
		AvgUtil: 0.88, P99Util: 0.99,
		BaseMetric: 95000, BaseServiceMS: 0, ServiceCV: 0,
	}
	TeraSort = Profile{
		Name: "TeraSort", Cores: 4, InHouse: false,
		Desc: "Hadoop TeraSort", Metric: "Seconds", Kind: LowerIsBetter,
		WCore: 0.20, WLLC: 0.15, WMem: 0.30, WFixed: 0.35,
		AvgUtil: 0.65, P99Util: 0.92,
		BaseMetric: 540, BaseServiceMS: 0, ServiceCV: 0,
	}
	VGGEntry = Profile{
		Name: "VGG", Cores: 16, InHouse: false,
		Desc: "CNN model GPU training", Metric: "Seconds", Kind: LowerIsBetter,
		WCore: 0.10, WLLC: 0.02, WMem: 0.03, WFixed: 0.85,
		AvgUtil: 0.30, P99Util: 0.60,
		BaseMetric: 3600,
	}
	STREAMEntry = Profile{
		Name: "STREAM", Cores: 16, InHouse: false,
		Desc: "Memory bandwidth", Metric: "MB/S", Kind: HigherIsBetter,
		WCore: 0.05, WLLC: 0.15, WMem: 0.78, WFixed: 0.02,
		AvgUtil: 0.95, P99Util: 1.0,
		BaseMetric: 88000,
	}
)

// TableIX returns all Table IX applications in paper order.
func TableIX() []Profile {
	return []Profile{SQL, Training, KeyValue, BI, ClientServer, Pmbench, DiskSpeed, SPECJBB, TeraSort, VGGEntry, STREAMEntry}
}

// Figure9Apps returns the applications shown in Figure 9 (the CPU
// cloud applications: six lower-is-better, two higher-is-better).
func Figure9Apps() []Profile {
	return []Profile{SQL, Training, KeyValue, BI, Pmbench, TeraSort, DiskSpeed, SPECJBB}
}

// ByName looks up a Table IX application.
func ByName(name string) (Profile, error) {
	for _, p := range TableIX() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown application %q", name)
}

// BestConfig returns the Table VII configuration that maximizes the
// metric improvement for the profile, and the improvement.
func (p Profile) BestConfig() (freq.Config, float64) {
	best := Reference
	bestImp := 0.0
	for _, cfg := range freq.TableVII() {
		if imp := p.Improvement(cfg); imp > bestImp {
			best, bestImp = cfg, imp
		}
	}
	return best, bestImp
}

// IncrementalGains returns the marginal improvement contributed by
// each overclocking step: B2→OC1 (core), OC1→OC2 (+cache),
// OC2→OC3 (+memory). This is the decomposition behind the paper's
// "core overclocking provides the most benefit, with the exception of
// TeraSort and DiskSpeed".
func (p Profile) IncrementalGains() (core, cache, memory float64) {
	i1 := p.Improvement(freq.OC1)
	i2 := p.Improvement(freq.OC2)
	i3 := p.Improvement(freq.OC3)
	return i1, i2 - i1, i3 - i2
}
