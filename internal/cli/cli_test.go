package cli

import (
	"flag"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestParseInterleaved(t *testing.T) {
	var c Common
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c.Register(fs)
	ops, err := ParseInterleaved(fs, []string{"alpha", "-j", "8", "beta", "-seed", "42", "gamma"})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"alpha", "beta", "gamma"}; strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Errorf("operands = %v, want %v", ops, want)
	}
	if c.Workers != 8 || c.Seed != 42 {
		t.Errorf("flags not bound: %+v", c)
	}
}

func TestCommonRegistersSharedFlags(t *testing.T) {
	var c Common
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c.Register(fs)
	for _, name := range []string{"j", "seed", "timeout", "metrics", "pprof"} {
		if fs.Lookup(name) == nil {
			t.Errorf("shared flag -%s not registered", name)
		}
	}
	if err := fs.Parse([]string{"-timeout", "90s", "-metrics", "m.json", "-pprof", ":0"}); err != nil {
		t.Fatal(err)
	}
	if c.Timeout != 90*time.Second || c.Metrics != "m.json" || c.Pprof != ":0" {
		t.Errorf("flags not bound: %+v", c)
	}
}

var listenLine = regexp.MustCompile(`^testprog: api on http://([^\s]+:\d+)/v1\n$`)

// TestListenResolvesEphemeralPort binds ":0" and checks the logged
// line carries the real port, not ":0".
func TestListenResolvesEphemeralPort(t *testing.T) {
	var log strings.Builder
	ln, err := Listen("testprog", "api", "127.0.0.1:0", "/v1", &log)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	m := listenLine.FindStringSubmatch(log.String())
	if m == nil {
		t.Fatalf("log line %q does not match %v", log.String(), listenLine)
	}
	if m[1] != ln.Addr().String() {
		t.Errorf("logged %q, listener bound %q", m[1], ln.Addr())
	}
	if strings.HasSuffix(m[1], ":0") {
		t.Errorf("logged address %q still has the unresolved port", m[1])
	}
}

// TestServePprof serves the pprof index from an ephemeral port.
func TestServePprof(t *testing.T) {
	var log strings.Builder
	ln, err := ServePprof("testprog", "127.0.0.1:0", &log)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index: HTTP %d", resp.StatusCode)
	}
	if !strings.Contains(log.String(), "pprof on http://") {
		t.Errorf("missing resolved-address log line: %q", log.String())
	}
}

func TestServePprofOff(t *testing.T) {
	ln, err := ServePprof("testprog", "", nil)
	if ln != nil || err != nil {
		t.Fatalf("empty addr must be off, got ln=%v err=%v", ln, err)
	}
}
