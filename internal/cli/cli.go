// Package cli factors the flag and listener conventions shared by the
// repo's long-running binaries (octl, ocd): the common -j / -seed /
// -metrics / -pprof / -timeout flags, interleaved flag/operand parsing,
// and ":0"-friendly TCP listeners that log their resolved address so
// tests and scripts can bind an ephemeral port and discover it.
//
// The one-shot calculators (tcocalc, ascsim) keep their plain `run()
// int` entrypoints — they take no shared flags.
package cli

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers on DefaultServeMux
	"time"
)

// Common is the flag block shared by octl and ocd. Register wires it
// into a FlagSet; binaries keep their own extra flags alongside.
type Common struct {
	// Workers bounds the process-wide worker budget (0 = GOMAXPROCS).
	Workers int
	// Seed overrides RNG seeds (0 = calibrated defaults).
	Seed uint64
	// Timeout bounds one unit of work — an experiment for octl, an API
	// request's simulation hold for ocd (0 = none).
	Timeout time.Duration
	// Metrics names a file to write the final telemetry snapshot to as
	// JSON ("" = off).
	Metrics string
	// Pprof is a listen address for net/http/pprof ("" = off).
	Pprof string
}

// Register installs the shared flags on fs.
func (c *Common) Register(fs *flag.FlagSet) {
	fs.IntVar(&c.Workers, "j", 0, "shared worker budget for experiments and their internal sweeps (0 = GOMAXPROCS)")
	fs.Uint64Var(&c.Seed, "seed", 0, "override experiment RNG seeds (0 = calibrated defaults)")
	fs.DurationVar(&c.Timeout, "timeout", 0, "per-experiment timeout (0 = none)")
	fs.StringVar(&c.Metrics, "metrics", "", "write the run's telemetry snapshot as JSON to this file")
	fs.StringVar(&c.Pprof, "pprof", "", "serve net/http/pprof on this address (empty = off)")
}

// ParseInterleaved parses fs over args accepting flags interleaved
// with positional operands (`octl all -j 8` and `octl -j 8 all` both
// work) and returns the operands in order.
func ParseInterleaved(fs *flag.FlagSet, args []string) ([]string, error) {
	var operands []string
	rest := args
	for {
		if err := fs.Parse(rest); err != nil {
			return nil, err
		}
		rest = fs.Args()
		if len(rest) == 0 {
			return operands, nil
		}
		operands = append(operands, rest[0])
		rest = rest[1:]
	}
}

// Listen binds a TCP listener on addr — ":0" picks an ephemeral port —
// and logs the resolved address to w as "<prog>: <what> on
// http://<host:port><path>", the line tests and scripts scrape the
// real port from.
func Listen(prog, what, addr, path string, w io.Writer) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%s: listen %s: %w", what, addr, err)
	}
	if w != nil {
		fmt.Fprintf(w, "%s: %s on http://%s%s\n", prog, what, ln.Addr(), path)
	}
	return ln, nil
}

// ServePprof binds addr per Listen and serves the net/http/pprof
// handlers in the background. Close the returned listener to stop; a
// "" addr is off and returns (nil, nil).
func ServePprof(prog, addr string, w io.Writer) (net.Listener, error) {
	if addr == "" {
		return nil, nil
	}
	ln, err := Listen(prog, "pprof", addr, "/debug/pprof/", w)
	if err != nil {
		return nil, err
	}
	// DefaultServeMux carries the net/http/pprof handlers.
	go http.Serve(ln, nil)
	return ln, nil
}
