// Package experiments contains one reproducible harness per table and
// figure of the paper's evaluation. Each harness returns structured
// results plus a formatted text table matching the paper's
// presentation; cmd/octl prints them, the test suite checks their
// calibration targets, and bench_test.go wraps each in a testing.B
// benchmark.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a formatted result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are printed under the table (calibration caveats,
	// paper-reported values for comparison).
	Notes []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// F formats a float with the given decimals.
func F(v float64, dec int) string {
	return fmt.Sprintf("%.*f", dec, v)
}

// Pct formats a fraction as a signed percentage.
func Pct(v float64) string {
	return fmt.Sprintf("%+.1f%%", v*100)
}
