package experiments

import (
	"context"
	"fmt"

	"immersionoc/internal/core"
	"immersionoc/internal/power"
	"immersionoc/internal/reliability"
	"immersionoc/internal/server"
	"immersionoc/internal/thermal"
	"immersionoc/internal/workload"
)

// HighPerfRow is one application's high-performance-VM offering.
type HighPerfRow struct {
	App           string
	Config        string
	Improvement   float64
	PowerDeltaW   float64
	LifetimeYears float64
	Granted       bool
}

// HighPerfData evaluates the paper's first use-case (Figure 5c):
// selling high-performance VMs that run overclocked. For each cloud
// application the governor picks the best admissible configuration on
// the immersed server; the same request against the air-cooled twin
// shows why the offering needs 2PIC.
func HighPerfData() ([]HighPerfRow, int, error) {
	immersed := core.NewGovernor(server.New(server.Tank1Spec()))
	air := core.NewGovernor(server.New(server.AirSpec()))

	var rows []HighPerfRow
	airDenied := 0
	for _, app := range workload.Figure9Apps() {
		req := core.Request{
			Vector:      core.VectorOf(app),
			Objective:   core.MaxPerformance,
			UtilSum:     float64(app.Cores) * app.AvgUtil,
			ActiveCores: app.Cores,
		}
		d, err := immersed.Decide(req)
		row := HighPerfRow{App: app.Name}
		if err == nil {
			row.Config = d.Config.Name
			row.Improvement = d.Improvement
			row.PowerDeltaW = d.PowerDeltaW
			row.LifetimeYears = d.LifetimeYears
			row.Granted = true
		}
		rows = append(rows, row)
		if _, err := air.Decide(req); err != nil {
			airDenied++
		}
	}
	return rows, airDenied, nil
}

// HighPerf renders the high-performance VM offering.
func HighPerf() (*Table, error) {
	rows, airDenied, err := HighPerfData()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 5(c) — High-performance VM offering (governor-granted overclock per workload)",
		Header: []string{"App", "Config", "Guaranteed gain", "Added power", "Lifetime"},
		Notes: []string{
			"the governor grants each workload the best configuration that keeps the",
			"5-year service life; green-band overclocking makes the gain guaranteed, not opportunistic",
			fmt.Sprintf("the air-cooled twin denies the offering for %d of %d workloads", airDenied, len(rows)),
		},
	}
	for _, r := range rows {
		if !r.Granted {
			t.AddRow(r.App, "—", "denied", "", "")
			continue
		}
		t.AddRow(r.App, r.Config, Pct(r.Improvement),
			fmt.Sprintf("+%.0f W", r.PowerDeltaW), fmt.Sprintf("%.1f y", r.LifetimeYears))
	}
	return t, nil
}

// WearBudgetRow is one cooling option's sustainable overclocking duty
// cycle.
type WearBudgetRow struct {
	Cooling   string
	NominalTj float64
	OCTj      float64
	DutyCycle float64
}

// WearBudgetData computes, per cooling option, the fraction of the
// service life a socket can spend at the 305 W / 0.98 V overclock while
// still lasting the full 5 years — the paper's "lifetime credit" traded
// for performance, and the quantity its proposed wear-out counters
// would enforce.
func WearBudgetData() ([]WearBudgetRow, error) {
	cases := []struct {
		name string
		tm   thermal.Model
	}{
		{"Air cooling", thermal.XeonTableV.Air},
		{"FC-3284", thermal.XeonTableV.Immersion},
		{"HFE-7000", thermal.XeonTableVHFE.Immersion},
	}
	var rows []WearBudgetRow
	for _, c := range cases {
		nomTj, err := c.tm.JunctionTemp(power.NominalSocketW)
		if err != nil {
			return nil, err
		}
		ocTj, err := c.tm.JunctionTemp(power.OverclockedSocketW)
		if err != nil {
			return nil, err
		}
		nominal := reliability.Condition{VoltageV: power.NominalVoltage, TjMaxC: nomTj, TjMinC: c.tm.IdleTemp()}
		oc := reliability.Condition{VoltageV: power.OverclockedVoltage, TjMaxC: ocTj, TjMinC: c.tm.IdleTemp()}
		duty, err := reliability.Composite5nm.MaxOCDutyCycle(nominal, oc, reliability.ServiceLifeYears)
		if err != nil {
			return nil, err
		}
		rows = append(rows, WearBudgetRow{Cooling: c.name, NominalTj: nomTj, OCTj: ocTj, DutyCycle: duty})
	}
	return rows, nil
}

// WearBudget renders the duty-cycle analysis.
func WearBudget() (*Table, error) {
	rows, err := WearBudgetData()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "§IV — Sustainable overclocking duty cycle within the 5-year wear budget",
		Header: []string{"Cooling", "Tj nominal", "Tj overclocked", "Max OC duty cycle"},
		Notes: []string{
			"the fraction of the service life a socket can spend at 305 W / 0.98 V and still",
			"last 5 years — the wear-out-counter arithmetic the paper proposes with manufacturers",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Cooling, fmt.Sprintf("%.0f°C", r.NominalTj), fmt.Sprintf("%.0f°C", r.OCTj),
			fmt.Sprintf("%.0f%%", r.DutyCycle*100))
	}
	return t, nil
}

func init() {
	registerTable("highperf", 270, []string{"extension", "fast"},
		func(ctx context.Context, o Options) (*Table, error) { return HighPerf() })
	registerTable("wearbudget", 280, []string{"extension", "fast"},
		func(ctx context.Context, o Options) (*Table, error) { return WearBudget() })
}
