package experiments

import (
	"testing"
)

func TestCappingExperiment(t *testing.T) {
	res, err := CappingData(0.06)
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetW >= res.DemandW {
		t.Fatal("no breach in the capping scenario")
	}
	// Priority-aware capping spares critical entirely under a 6%
	// breach; uniform capping does not.
	if res.Priority["critical-latency"].PerfImpact != 0 {
		t.Fatalf("priority capper hit critical: %+v", res.Priority["critical-latency"])
	}
	if res.Uniform["critical-latency"].PerfImpact <= 0 {
		t.Fatal("uniform capper spared critical")
	}
	// Harvest absorbs the most under priority capping.
	if res.Priority["harvest"].PerfImpact <= res.Priority["batch"].PerfImpact {
		t.Fatal("harvest did not absorb more than batch")
	}
	if _, err := Capping(); err != nil {
		t.Fatal(err)
	}
}

func TestTankExperiment(t *testing.T) {
	rows, budget, err := TankData()
	if err != nil {
		t.Fatal(err)
	}
	if budget <= 0 || budget >= 36 {
		t.Fatalf("overclock budget %d, want a real subset of 36", budget)
	}
	if len(rows) != 7 {
		t.Fatalf("%d sweep rows", len(rows))
	}
	// Bath, Tj monotone in overclocked count; lifetime monotone down.
	for i := 1; i < len(rows); i++ {
		if rows[i].BathC < rows[i-1].BathC {
			t.Fatal("bath not monotone")
		}
		if rows[i].TjOverclockedC < rows[i-1].TjOverclockedC {
			t.Fatal("Tj not monotone")
		}
		if rows[i].LifetimeYears > rows[i-1].LifetimeYears+1e-9 {
			t.Fatal("lifetime not monotone down")
		}
	}
	// The budget boundary shows up in the sweep: 36 OC servers are
	// out of budget, 0 are in.
	if !rows[0].WithinBudget {
		t.Fatal("nominal tank out of budget")
	}
	if rows[len(rows)-1].WithinBudget {
		t.Fatal("fully overclocked tank within budget")
	}
	if _, err := TankEnvelope(); err != nil {
		t.Fatal(err)
	}
}

func TestAblationBEC(t *testing.T) {
	rows, err := AblationBECData()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	coated, bare := rows[0], rows[1]
	if !coated.BEC || bare.BEC {
		t.Fatal("row order unexpected")
	}
	if coated.TjOverclockC >= bare.TjOverclockC {
		t.Fatal("coating did not lower overclocked Tj")
	}
	if coated.LifetimeOC <= bare.LifetimeOC {
		t.Fatal("coating did not extend lifetime")
	}
	if coated.MaxPowerW != 2*bare.MaxPowerW {
		t.Fatalf("coating CHF gain %v/%v, want 2×", coated.MaxPowerW, bare.MaxPowerW)
	}
}

func TestAblationBursts(t *testing.T) {
	if testing.Short() {
		t.Skip("burst ablation in -short mode")
	}
	res := AblationBurstsData()
	// Correlated bursts must be substantially worse than independent
	// ones on the oversubscribed host — this is the mechanism behind
	// Figure 12/13.
	if res.Penalty < 2 {
		t.Fatalf("correlation penalty %v, want ≥2×", res.Penalty)
	}
}

func TestAblationEq1(t *testing.T) {
	if testing.Short() {
		t.Skip("Eq1 ablation in -short mode")
	}
	res, err := AblationEq1Data(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The model must save power versus the naive jump-to-max
	// controller on a moderate oscillating load.
	if res.Model.AvgVMPowerW >= res.Naive.AvgVMPowerW {
		t.Fatalf("model power %v not below naive %v", res.Model.AvgVMPowerW, res.Naive.AvgVMPowerW)
	}
	// And not at a catastrophic latency cost.
	if res.Model.P95LatencyS > res.Naive.P95LatencyS*1.25 {
		t.Fatalf("model P95 %v vs naive %v", res.Model.P95LatencyS, res.Naive.P95LatencyS)
	}
}

func TestPolicyComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("five-policy comparison in -short mode")
	}
	results, err := PolicyComparisonData(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("%d policies", len(results))
	}
	base, oca, pred, predOCA := results[0], results[2], results[3], results[4]
	// Predictive beats the baseline on latency but spends capacity.
	if pred.P95LatencyS >= base.P95LatencyS {
		t.Fatal("predictive did not improve latency")
	}
	if pred.VMHours <= base.VMHours {
		t.Fatal("predictive did not spend extra capacity")
	}
	// OC-A achieves its latency with FEWER VM-hours than predictive —
	// the paper's core argument for overclocking vs capacity.
	if oca.VMHours >= pred.VMHours {
		t.Fatal("OC-A not cheaper in capacity than predictive")
	}
	// The combination is the latency winner.
	if predOCA.P95LatencyS >= base.P95LatencyS {
		t.Fatal("Pred+OC-A did not improve latency")
	}
}

func TestHighPerfOffering(t *testing.T) {
	rows, airDenied, err := HighPerfData()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Granted {
			t.Errorf("%s: offering denied on the immersed server", r.App)
			continue
		}
		if r.Improvement < 0.10 {
			t.Errorf("%s: guaranteed gain %v below 10%%", r.App, r.Improvement)
		}
		if r.LifetimeYears < 5 {
			t.Errorf("%s: lifetime %v below service life", r.App, r.LifetimeYears)
		}
	}
	if airDenied != len(rows) {
		t.Fatalf("air twin denied %d of %d; overclocked VMs must need 2PIC", airDenied, len(rows))
	}
	if _, err := HighPerf(); err != nil {
		t.Fatal(err)
	}
}

func TestWearBudgetDutyCycles(t *testing.T) {
	rows, err := WearBudgetData()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]WearBudgetRow{}
	for _, r := range rows {
		byName[r.Cooling] = r
	}
	// Air cannot afford any sustained overclocking; HFE-7000 can
	// overclock full-time; FC-3284 lands in between (Table V).
	if byName["Air cooling"].DutyCycle != 0 {
		t.Fatalf("air duty cycle %v, want 0", byName["Air cooling"].DutyCycle)
	}
	if byName["HFE-7000"].DutyCycle != 1 {
		t.Fatalf("HFE duty cycle %v, want 1", byName["HFE-7000"].DutyCycle)
	}
	fc := byName["FC-3284"].DutyCycle
	if fc <= 0.4 || fc >= 0.9 {
		t.Fatalf("FC-3284 duty cycle %v, want interior", fc)
	}
	if _, err := WearBudget(); err != nil {
		t.Fatal(err)
	}
}

func TestCoolingComparison(t *testing.T) {
	rows, err := CoolingComparisonData()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]CoolingRow{}
	for _, r := range rows {
		byName[r.Tech] = r
	}
	if byName["Air (direct evaporative)"].OCDutyCycle != 0 {
		t.Fatal("air sustains overclocking")
	}
	if !byName["2PIC HFE-7000"].SustainedOCOK {
		t.Fatal("HFE-7000 does not sustain the overclock")
	}
	if byName["1PIC"].OCDutyCycle >= byName["2PIC FC-3284"].OCDutyCycle {
		t.Fatal("1PIC duty cycle not below 2PIC FC-3284")
	}
	if _, err := CoolingComparison(); err != nil {
		t.Fatal(err)
	}
}

func TestDiurnal(t *testing.T) {
	if testing.Short() {
		t.Skip("diurnal day in -short mode")
	}
	res, err := DiurnalData(Options{DurationS: 1800})
	if err != nil {
		t.Fatal(err)
	}
	base, oca := res.Results[0], res.Results[2]
	if oca.VMHours >= base.VMHours {
		t.Fatalf("OC-A VM-hours %v not below baseline %v over a diurnal day", oca.VMHours, base.VMHours)
	}
	if oca.P95LatencyS >= base.P95LatencyS {
		t.Fatal("OC-A P95 not below baseline over a diurnal day")
	}
	if base.EnergyPerReqJ <= 0 {
		t.Fatal("energy per request not computed")
	}
	if _, err := Diurnal(Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestFleetSim(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet integration in -short mode")
	}
	tbl, err := FleetSim()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
}

func TestMigrationStopGap(t *testing.T) {
	stages, err := MigrationData()
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) < 2 {
		t.Fatalf("%d stages", len(stages))
	}
	first, last := stages[0], stages[len(stages)-1]
	if !first.Overclocked || first.NeededSpeedup <= 1 {
		t.Fatalf("initial state not overclock-mitigated: %+v", first)
	}
	if first.OversubscribedSrv == 0 {
		t.Fatal("initial state not oversubscribed")
	}
	if last.Overclocked || last.OversubscribedSrv != 0 {
		t.Fatalf("migration did not clear the oversubscription: %+v", last)
	}
	totalMoves := 0
	for _, s := range stages {
		totalMoves += s.Moves
	}
	if totalMoves == 0 {
		t.Fatal("no VMs migrated")
	}
	if _, err := Migration(); err != nil {
		t.Fatal(err)
	}
}
