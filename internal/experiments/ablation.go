package experiments

import (
	"context"
	"fmt"

	"immersionoc/internal/autoscaler"
	"immersionoc/internal/power"
	"immersionoc/internal/queueing"
	"immersionoc/internal/reliability"
	"immersionoc/internal/sweep"
	"immersionoc/internal/thermal"
)

// This file holds the ablations for the design choices DESIGN.md calls
// out: the Equation 1 utilization model, the boiling enhancement
// coating, burst correlation in the oversubscription workload, and the
// auto-scaler policy space extended with predictive variants.

// AblationEq1Result compares OC-A with the Equation 1 model against a
// naive controller that always jumps to the maximum frequency.
type AblationEq1Result struct {
	Model, Naive *autoscaler.Result
}

// AblationEq1Data runs both controllers on an oscillating moderate
// load where intermediate ladder rungs suffice, so the model's
// minimum-frequency selection can actually save power. The zero
// Options reproduces the published run (seed 5).
func AblationEq1Data(o Options) (AblationEq1Result, error) {
	return AblationEq1DataCtx(context.Background(), o)
}

// AblationEq1DataCtx is AblationEq1Data honoring ctx: a cancelled
// context stops the in-flight controller simulation at the kernel's
// next event batch. The two controller runs are independent, so they
// fan out through sweep.Map under o.Workers.
func AblationEq1DataCtx(ctx context.Context, o Options) (AblationEq1Result, error) {
	phases := []queueing.LoadPhase{
		{QPS: 1000, DurationS: 240},
		{QPS: 1700, DurationS: 300},
		{QPS: 1100, DurationS: 240},
		{QPS: 1800, DurationS: 300},
		{QPS: 1000, DurationS: 240},
	}
	variants := []struct {
		name  string
		naive bool
	}{{"model", false}, {"naive", true}}
	results, err := sweep.Map(ctx, len(variants), sweep.Options{Workers: o.Workers, Tel: o.Tel},
		func(ctx context.Context, i int) (*autoscaler.Result, error) {
			cfg := autoscaler.DefaultConfig(autoscaler.OCA, phases)
			cfg.Seed = o.SeedOr(5)
			cfg.InitialVMs = 3
			cfg.MinVMs = 3
			cfg.DisableScaleOut = true
			cfg.NaiveScaleUp = variants[i].naive
			cfg.Tel = o.Tel.Child(variants[i].name)
			return autoscaler.RunCtx(ctx, cfg)
		})
	if err != nil {
		return AblationEq1Result{}, err
	}
	return AblationEq1Result{Model: results[0], Naive: results[1]}, nil
}

// AblationEq1 renders the Equation 1 ablation.
func AblationEq1(o Options) (*Table, error) {
	res, err := AblationEq1Data(o)
	if err != nil {
		return nil, err
	}
	return ablationEq1Table(res), nil
}

// ablationEq1Table renders the two controllers.
func ablationEq1Table(res AblationEq1Result) *Table {
	t := &Table{
		Title:  "Ablation — Equation 1 model vs naive jump-to-max scale-up (3 VMs, oscillating load)",
		Header: []string{"Controller", "P95 latency", "Avg VM power", "Scale-ups"},
		Notes: []string{
			"the model picks the minimum ladder rung that meets the utilization target;",
			"jumping straight to max burns power for little additional latency benefit",
		},
	}
	row := func(name string, r *autoscaler.Result) {
		t.AddRow(name, fmt.Sprintf("%.2f ms", r.P95LatencyS*1000),
			fmt.Sprintf("%.1f W", r.AvgVMPowerW), fmt.Sprintf("%d", r.ScaleUps))
	}
	row("Equation 1", res.Model)
	row("naive max", res.Naive)
	t.Notes = append(t.Notes, fmt.Sprintf("model saves %.1f%% VM power at %.1f%% P95 cost",
		(1-res.Model.AvgVMPowerW/res.Naive.AvgVMPowerW)*100,
		(res.Model.P95LatencyS/res.Naive.P95LatencyS-1)*100))
	return t
}

// BECAblationRow captures one coating configuration.
type BECAblationRow struct {
	BEC          bool
	TjNominalC   float64
	TjOverclockC float64
	LifetimeOC   float64
	MaxPowerW    float64
}

// AblationBECData evaluates the FC-3284 Xeon boiler with and without
// the L-20227 boiling enhancement coating: junction temperatures at
// 205/305 W, overclocked lifetime, and the dryout limit.
func AblationBECData() ([]BECAblationRow, error) {
	var rows []BECAblationRow
	for _, bec := range []bool{true, false} {
		boiler := thermal.XeonTableV.Immersion.(thermal.ImmersionModel).Boiler
		boiler.BEC = bec
		m := thermal.ImmersionModel{Boiler: boiler}
		nom, err := m.JunctionTemp(power.NominalSocketW)
		if err != nil {
			return nil, err
		}
		oc, err := m.JunctionTemp(power.OverclockedSocketW)
		if err != nil {
			return nil, err
		}
		life, err := reliability.Composite5nm.Lifetime(reliability.Condition{
			VoltageV: power.OverclockedVoltage,
			TjMaxC:   oc,
			TjMinC:   m.IdleTemp(),
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, BECAblationRow{
			BEC:          bec,
			TjNominalC:   nom,
			TjOverclockC: oc,
			LifetimeOC:   life,
			MaxPowerW:    boiler.MaxPower(),
		})
	}
	return rows, nil
}

// AblationBEC renders the coating ablation.
func AblationBEC() (*Table, error) {
	rows, err := AblationBECData()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation — boiling enhancement coating (FC-3284 Xeon boiler)",
		Header: []string{"BEC", "Tj @205W", "Tj @305W", "OC lifetime", "Dryout limit"},
		Notes:  []string{"the paper: L-20227 BEC improves boiling performance 2× over smooth surfaces"},
	}
	for _, r := range rows {
		label := "uncoated"
		if r.BEC {
			label = "L-20227"
		}
		t.AddRow(label, fmt.Sprintf("%.1f°C", r.TjNominalC), fmt.Sprintf("%.1f°C", r.TjOverclockC),
			fmt.Sprintf("%.1f years", r.LifetimeOC), fmt.Sprintf("%.0f W", r.MaxPowerW))
	}
	return t, nil
}

// AblationBurstsResult compares correlated and independent VM bursts
// in the Figure 12 oversubscription experiment.
type AblationBurstsResult struct {
	CorrelatedP95MS, IndependentP95MS float64
	// Penalty is the correlated/independent P95 ratio at 12 pcores
	// under B2 — how much of the oversubscription pain is burst
	// alignment.
	Penalty float64
}

// AblationBurstsData runs the 12-pcore B2 oversubscription point with
// shared and per-VM burst schedules.
func AblationBurstsData() AblationBurstsResult {
	res, _ := AblationBurstsDataCtx(context.Background(), Options{})
	return res
}

// AblationBurstsDataCtx is AblationBurstsData honoring ctx and
// Options: a cancelled context stops the in-flight oversubscription
// run at the kernel's next event batch. The correlated and
// independent variants fan out through sweep.Map; each variant is
// itself a Fig12 sweep, exercising nested fan-out under the shared
// worker budget (the outer cells lend their slots while blocked on
// the inner grids).
func AblationBurstsDataCtx(ctx context.Context, o Options) (AblationBurstsResult, error) {
	base := DefaultFig12Params()
	base.DurationS = 300
	base.PCoreSteps = []int{12}
	base = base.withOptions(o)

	variants := []struct {
		name        string
		independent bool
	}{{"correlated", false}, {"independent", true}}
	grids, err := sweep.Map(ctx, len(variants), sweep.Options{Workers: base.Workers, Tel: base.Tel},
		func(ctx context.Context, i int) ([]Fig12Point, error) {
			p := base
			p.IndependentBursts = variants[i].independent
			p.Tel = base.Tel.Child(variants[i].name)
			return Fig12DataCtx(ctx, p)
		})
	if err != nil {
		return AblationBurstsResult{}, err
	}

	c, _ := Fig12Find(grids[0], "B2", 12)
	i, _ := Fig12Find(grids[1], "B2", 12)
	res := AblationBurstsResult{CorrelatedP95MS: c.MeanP95MS, IndependentP95MS: i.MeanP95MS}
	if i.MeanP95MS > 0 {
		res.Penalty = c.MeanP95MS / i.MeanP95MS
	}
	return res, nil
}

// AblationBursts renders the burst-correlation ablation.
func AblationBursts() *Table {
	return ablationBurstsTable(AblationBurstsData())
}

// ablationBurstsTable renders the correlation comparison.
func ablationBurstsTable(res AblationBurstsResult) *Table {
	t := &Table{
		Title:  "Ablation — burst correlation across co-located VMs (B2, 12 pcores, 16 vcores)",
		Header: []string{"Burst schedules", "Mean P95"},
		Notes: []string{
			"oversubscription gambles that co-located VMs do not need the same cores at the",
			"same time; correlated bursts are the losing side of that bet",
		},
	}
	t.AddRow("correlated (shared driver)", fmt.Sprintf("%.1f ms", res.CorrelatedP95MS))
	t.AddRow("independent", fmt.Sprintf("%.1f ms", res.IndependentP95MS))
	t.Notes = append(t.Notes, fmt.Sprintf("correlation penalty: %.1fx", res.Penalty))
	return t
}

// PolicyComparisonData runs all five auto-scaler policies (the paper's
// three plus the predictive extensions) over the Table XI ramp. The
// zero Options reproduces the published run (seed 3).
func PolicyComparisonData(o Options) ([]*autoscaler.Result, error) {
	return PolicyComparisonDataCtx(context.Background(), o)
}

// PolicyComparisonDataCtx is PolicyComparisonData honoring ctx: a
// cancelled context stops the in-flight policy simulation at the
// kernel's next event batch. The five policy runs share only the
// read-only ramp phases, so they fan out through sweep.Map under
// o.Workers.
func PolicyComparisonDataCtx(ctx context.Context, o Options) ([]*autoscaler.Result, error) {
	phases := autoscaler.RampPhases(500, 4000, 500, 300)
	policies := []autoscaler.Policy{
		autoscaler.Baseline, autoscaler.OCE, autoscaler.OCA,
		autoscaler.Predictive, autoscaler.PredictiveOCA,
	}
	return sweep.Map(ctx, len(policies), sweep.Options{Workers: o.Workers, Tel: o.Tel},
		func(ctx context.Context, i int) (*autoscaler.Result, error) {
			cfg := autoscaler.DefaultConfig(policies[i], phases)
			cfg.Seed = o.SeedOr(3)
			cfg.Tel = o.Tel.Child(policies[i].String())
			return autoscaler.RunCtx(ctx, cfg)
		})
}

// PolicyComparison renders the five-policy comparison.
func PolicyComparison(o Options) (*Table, error) {
	results, err := PolicyComparisonData(o)
	if err != nil {
		return nil, err
	}
	return policyComparisonTable(results), nil
}

// policyComparisonTable renders the five policies.
func policyComparisonTable(results []*autoscaler.Result) *Table {
	base := results[0]
	t := &Table{
		Title:  "Extension — auto-scaler policy space (paper's three + predictive variants)",
		Header: []string{"Policy", "Norm P95", "Norm Avg", "Max VMs", "VM×hours", "VM power vs base"},
		Notes: []string{
			"Predictive buys latency with capacity (earlier VMs); OC-A buys it with power;",
			"Pred+OC-A combines the trend trigger with overclock-first",
		},
	}
	for _, r := range results {
		t.AddRow(r.Policy.String(),
			F(r.P95LatencyS/base.P95LatencyS, 2),
			F(r.AvgLatencyS/base.AvgLatencyS, 2),
			fmt.Sprintf("%d", r.MaxVMs),
			F(r.VMHours, 2),
			Pct(r.AvgVMPowerW/base.AvgVMPowerW-1))
	}
	return t
}

func init() {
	registerTable("ablation-eq1", 220, []string{"ablation", "sim"},
		func(ctx context.Context, o Options) (*Table, error) {
			res, err := AblationEq1DataCtx(ctx, o)
			if err != nil {
				return nil, err
			}
			return ablationEq1Table(res), nil
		})
	registerTable("ablation-bec", 230, []string{"ablation", "fast"},
		func(ctx context.Context, o Options) (*Table, error) { return AblationBEC() })
	registerTable("ablation-bursts", 240, []string{"ablation", "sim"},
		func(ctx context.Context, o Options) (*Table, error) {
			res, err := AblationBurstsDataCtx(ctx, o)
			if err != nil {
				return nil, err
			}
			return ablationBurstsTable(res), nil
		})
	registerTable("policies", 250, []string{"extension", "sim"},
		func(ctx context.Context, o Options) (*Table, error) {
			results, err := PolicyComparisonDataCtx(ctx, o)
			if err != nil {
				return nil, err
			}
			return policyComparisonTable(results), nil
		})
}
