package experiments

import (
	"context"
	"fmt"

	"immersionoc/internal/fluids"
	"immersionoc/internal/freq"
	"immersionoc/internal/power"
	"immersionoc/internal/reliability"
	"immersionoc/internal/tco"
	"immersionoc/internal/thermal"
)

// TableI reproduces the cooling-technology comparison.
func TableI() *Table {
	t := &Table{
		Title:  "Table I — Comparison of the main datacenter cooling technologies",
		Header: []string{"Technology", "Avg PUE", "Peak PUE", "Fan overhead", "Max server cooling"},
	}
	for _, s := range thermal.TableI() {
		cool := fmt.Sprintf("%.0f W", s.MaxServerCoolingW)
		if s.Tech == thermal.TwoPhaseImmersion {
			cool = fmt.Sprintf(">%.0f kW", s.MaxServerCoolingW/1000)
		}
		t.AddRow(s.Tech.String(), F(s.AveragePUE, 2), F(s.PeakPUE, 2),
			fmt.Sprintf("%.0f%%", s.FanOverhead*100), cool)
	}
	return t
}

// TableII reproduces the dielectric fluid properties.
func TableII() *Table {
	t := &Table{
		Title:  "Table II — Main properties for two commonly used dielectric fluids",
		Header: []string{"Property", fluids.FC3284.Name, fluids.HFE7000.Name},
	}
	fc, hfe := fluids.FC3284, fluids.HFE7000
	t.AddRow("Boiling point", fmt.Sprintf("%.0f°C", fc.BoilingPointC), fmt.Sprintf("%.0f°C", hfe.BoilingPointC))
	t.AddRow("Dielectric constant", F(fc.DielectricConstant, 2), F(hfe.DielectricConstant, 1))
	t.AddRow("Latent heat of vaporization", fmt.Sprintf("%.0f J/g", fc.LatentHeatJPerG), fmt.Sprintf("%.0f J/g", hfe.LatentHeatJPerG))
	t.AddRow("Useful life", fmt.Sprintf(">%.0f years", fc.UsefulLifeYears), fmt.Sprintf(">%.0f years", hfe.UsefulLifeYears))
	return t
}

// TableIIIRow is one platform column of Table III.
type TableIIIRow struct {
	Platform          string
	Cooling           string
	TjC               float64
	PowerW            float64
	MaxTurboGHz       float64
	BECLocation       string
	ThermalResistance float64
}

// TableIIIData computes the Table III measurements from the thermal
// models: junction temperature and attainable turbo for the two
// large-tank platforms under air and FC-3284.
func TableIIIData() ([]TableIIIRow, error) {
	var rows []TableIIIRow
	for _, p := range []thermal.Platform{thermal.Skylake8168, thermal.Skylake8180} {
		for _, m := range []struct {
			name  string
			model thermal.Model
			bec   string
		}{
			{"Air", p.Air, "N/A"},
			{"2PIC", p.Immersion, p.BECLocation},
		} {
			tj, err := m.model.JunctionTemp(p.TDPW)
			if err != nil {
				return nil, err
			}
			turbo, err := p.MaxTurbo(m.model)
			if err != nil {
				return nil, err
			}
			rows = append(rows, TableIIIRow{
				Platform:          p.Name,
				Cooling:           m.name,
				TjC:               tj,
				PowerW:            p.TDPW,
				MaxTurboGHz:       turbo,
				BECLocation:       m.bec,
				ThermalResistance: m.model.Resistance(),
			})
		}
	}
	return rows, nil
}

// TableIII renders the Table III reproduction.
func TableIII() (*Table, error) {
	rows, err := TableIIIData()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table III — Max attained frequency and power, air vs FC-3284 2PIC",
		Header: []string{"Platform", "Cooling", "Tjmax", "Power", "Max turbo", "BEC location", "Rth"},
		Notes: []string{
			"paper: 8168 92/75°C 3.1/3.2GHz 0.22/0.12°C/W; 8180 90/68°C 2.6/2.7GHz 0.21/0.08°C/W",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Platform, r.Cooling, fmt.Sprintf("%.0f°C", r.TjC),
			fmt.Sprintf("%.1fW", r.PowerW), fmt.Sprintf("%.1f GHz", r.MaxTurboGHz),
			r.BECLocation, fmt.Sprintf("%.2f°C/W", r.ThermalResistance))
	}
	return t, nil
}

// Fig4 renders the operating bands of Figure 4 for the overclockable
// Xeon.
func Fig4() *Table {
	b := freq.XeonW3175XBands
	t := &Table{
		Title:  "Figure 4 — Operating domains (Xeon W-3175X core clock)",
		Header: []string{"Band", "Range (GHz)", "Availability"},
	}
	t.AddRow(freq.Guaranteed.String(), fmt.Sprintf("%.1f – %.1f", b.Min, b.Base), "always (guaranteed)")
	t.AddRow(freq.Turbo.String(), fmt.Sprintf("%.1f – %.1f", b.Base, b.MaxTurbo), "thermal/power budget permitting")
	t.AddRow("overclocked (green)", fmt.Sprintf("%.1f – %.1f", b.MaxTurbo, b.MaxSafeOC), "2PIC: sustained, no lifetime impact")
	t.AddRow("overclocked (red)", fmt.Sprintf("%.1f – %.1f", b.MaxSafeOC, b.MaxOC), "2PIC: sustained, lifetime trade-off")
	t.AddRow(freq.NonOperating.String(), fmt.Sprintf("> %.1f", b.MaxOC), "unstable (crashes observed)")
	t.Notes = append(t.Notes, fmt.Sprintf("safe overclock headroom over all-core turbo: %+.0f%%", b.SafeHeadroom()*100))
	return t
}

// TableVRow is one Table V lifetime projection.
type TableVRow struct {
	Cooling     string
	Overclocked bool
	VoltageV    float64
	TjMaxC      float64
	TjMinC      float64
	Lifetime    float64
}

// TableVData evaluates the lifetime model at the six Table V operating
// points. Junction temperatures come from the thermal models at the
// nominal (205 W) and overclocked (305 W) socket powers.
func TableVData() ([]TableVRow, error) {
	model := reliability.Composite5nm
	type caseDef struct {
		cooling string
		tm      thermal.Model
		oc      bool
	}
	cases := []caseDef{
		{"Air cooling", thermal.XeonTableV.Air, false},
		{"Air cooling", thermal.XeonTableV.Air, true},
		{"FC-3284", thermal.XeonTableV.Immersion, false},
		{"FC-3284", thermal.XeonTableV.Immersion, true},
		{"HFE-7000", thermal.XeonTableVHFE.Immersion, false},
		{"HFE-7000", thermal.XeonTableVHFE.Immersion, true},
	}
	var rows []TableVRow
	for _, c := range cases {
		powerW := power.NominalSocketW
		v := power.NominalVoltage
		if c.oc {
			powerW = power.OverclockedSocketW
			v = power.OverclockedVoltage
		}
		tj, err := c.tm.JunctionTemp(powerW)
		if err != nil {
			return nil, err
		}
		cond := reliability.Condition{VoltageV: v, TjMaxC: tj, TjMinC: c.tm.IdleTemp()}
		life, err := model.Lifetime(cond)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableVRow{
			Cooling:     c.cooling,
			Overclocked: c.oc,
			VoltageV:    v,
			TjMaxC:      tj,
			TjMinC:      cond.TjMinC,
			Lifetime:    life,
		})
	}
	return rows, nil
}

// TableV renders the lifetime projections.
func TableV() (*Table, error) {
	rows, err := TableVData()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table V — Projected lifetime, air vs 2PIC, nominal vs overclocked",
		Header: []string{"Cooling", "OC", "Voltage", "Tj max", "DTj", "Lifetime"},
		Notes: []string{
			"paper: 5y / <1y / >10y / 4y / >10y / 5y",
		},
	}
	for _, r := range rows {
		oc := "no"
		if r.Overclocked {
			oc = "yes"
		}
		life := fmt.Sprintf("%.1f years", r.Lifetime)
		if r.Lifetime > 10 {
			life = ">10 years"
		}
		t.AddRow(r.Cooling, oc, fmt.Sprintf("%.2fV", r.VoltageV),
			fmt.Sprintf("%.0f°C", r.TjMaxC),
			fmt.Sprintf("%.0f°–%.0f°C", r.TjMinC, r.TjMaxC), life)
	}
	return t, nil
}

// PowerSavings reproduces the §IV per-server power-saving
// decomposition (~182 W: 2×11 W static, 42 W fans, 118 W PUE).
func PowerSavings() (power.SavingsBreakdown, *Table, error) {
	// Static savings evaluated at the large-tank measurement: air
	// 92 °C → FC-3284 75 °C (Table III, 8168 platform).
	tAir, err := thermal.Skylake8168.Air.JunctionTemp(thermal.Skylake8168.TDPW)
	if err != nil {
		return power.SavingsBreakdown{}, nil, err
	}
	tImm, err := thermal.Skylake8168.Immersion.JunctionTemp(thermal.Skylake8168.TDPW)
	if err != nil {
		return power.SavingsBreakdown{}, nil, err
	}
	sb, err := power.ComputeSavings(power.XeonSocket, power.OpenComputeBlade, thermal.DirectEvaporative, power.NominalVoltage, tAir, tImm)
	if err != nil {
		return power.SavingsBreakdown{}, nil, err
	}
	t := &Table{
		Title:  "§IV — Per-server power savings from 2PIC",
		Header: []string{"Component", "Savings"},
		Notes:  []string{"paper: 2×11W static + 42W fans + 118W PUE ≈ 182W"},
	}
	t.AddRow("Static power (per socket)", fmt.Sprintf("%.1f W × %d", sb.StaticPerSocketW, sb.Sockets))
	t.AddRow("Fans", fmt.Sprintf("%.0f W", sb.FansW))
	t.AddRow("PUE (datacenter, per server)", fmt.Sprintf("%.0f W", sb.PUEW))
	t.AddRow("Total", fmt.Sprintf("%.0f W", sb.Total()))
	return sb, t, nil
}

// StabilityReport reproduces the §IV computational-stability
// observations: expected correctable errors over six months for the
// two overclocking platforms.
func StabilityReport() *Table {
	s := reliability.DefaultStability
	t := &Table{
		Title:  "§IV — Computational stability under 6 months of aggressive overclocking",
		Header: []string{"Platform", "Freq vs safe OC", "Expected correctable errors (180 days)", "Crash region"},
		Notes:  []string{"paper: 0 errors tank #1, 56 CPU cache errors tank #2, crashes only when pushed excessively"},
	}
	cases := []struct {
		name  string
		ratio float64
	}{
		{"small tank #1 (Xeon @ +20.6%, validated)", 1.00},
		{"small tank #2 (i9900k pushed past validation)", 1.035},
		{"excessive (crash territory)", 1.06},
	}
	for _, c := range cases {
		errs := s.ExpectedErrors(c.ratio, 1.0, 180)
		crash := "no"
		if s.Unstable(c.ratio, 1.0) {
			crash = "yes"
		}
		t.AddRow(c.name, fmt.Sprintf("%.1f%%", (c.ratio-1)*100), F(errs, 1), crash)
	}
	return t
}

// TableVIData evaluates the TCO model for both 2PIC scenarios.
func TableVIData() (tco.Model, tco.Breakdown, tco.Breakdown, tco.Breakdown, error) {
	m, err := tco.NewDefaultFromTableI()
	if err != nil {
		return tco.Model{}, tco.Breakdown{}, tco.Breakdown{}, tco.Breakdown{}, err
	}
	return m, m.CostPerCore(tco.AirCooled), m.CostPerCore(tco.TwoPhase), m.CostPerCore(tco.TwoPhaseOC), nil
}

// TableVI renders the TCO analysis.
func TableVI() (*Table, error) {
	m, air, nonOC, oc, err := TableVIData()
	if err != nil {
		return nil, err
	}
	_ = m
	t := &Table{
		Title:  "Table VI — TCO analysis for 2PIC (relative to air-cooled baseline)",
		Header: []string{"Category", "Non-overclockable 2PIC", "Overclockable 2PIC"},
		Notes:  []string{"paper: -7% and -4% cost per physical core"},
	}
	dn := nonOC.Delta(air)
	do := oc.Delta(air)
	for _, c := range tco.Categories() {
		fmtCell := func(v float64) string {
			if v > -0.0005 && v < 0.0005 {
				return ""
			}
			return Pct(v)
		}
		t.AddRow(c.String(), fmtCell(dn[c]), fmtCell(do[c]))
	}
	t.AddRow("Cost per physical core", Pct(nonOC.Total()-1), Pct(oc.Total()-1))
	return t, nil
}

// OversubTCO reproduces the §VI-C oversubscription TCO numbers.
func OversubTCO() (*Table, tco.OversubSavings, tco.OversubSavings, error) {
	m, err := tco.NewDefaultFromTableI()
	if err != nil {
		return nil, tco.OversubSavings{}, tco.OversubSavings{}, err
	}
	ocS := m.OversubAnalysis(tco.TwoPhaseOC, 0.10)
	nonS := m.OversubAnalysis(tco.TwoPhase, 0.10)
	t := &Table{
		Title:  "§VI-C — TCO per virtual core with 10% oversubscription",
		Header: []string{"Scenario", "vs air-cooled (no oversub)", "vs same DC (no oversub)"},
		Notes:  []string{"paper: overclockable 2PIC −13% vs air; non-overclockable ~−10% (vs itself)"},
	}
	t.AddRow(tco.TwoPhaseOC.String(), Pct(-ocS.VsAir), Pct(-ocS.VsSelf))
	t.AddRow(tco.TwoPhase.String(), Pct(-nonS.VsAir), Pct(-nonS.VsSelf))
	return t, ocS, nonS, nil
}

func init() {
	registerTable("table1", 10, []string{"paper", "fast"},
		func(ctx context.Context, o Options) (*Table, error) { return TableI(), nil })
	registerTable("table2", 20, []string{"paper", "fast"},
		func(ctx context.Context, o Options) (*Table, error) { return TableII(), nil })
	registerTable("table3", 30, []string{"paper", "fast"},
		func(ctx context.Context, o Options) (*Table, error) { return TableIII() })
	registerTable("fig4", 40, []string{"paper", "fast"},
		func(ctx context.Context, o Options) (*Table, error) { return Fig4(), nil })
	registerTable("table5", 50, []string{"paper", "fast"},
		func(ctx context.Context, o Options) (*Table, error) { return TableV() })
	registerTable("power-savings", 60, []string{"paper", "fast"},
		func(ctx context.Context, o Options) (*Table, error) {
			_, t, err := PowerSavings()
			return t, err
		})
	registerTable("stability", 70, []string{"paper", "fast"},
		func(ctx context.Context, o Options) (*Table, error) { return StabilityReport(), nil })
	registerTable("table6", 80, []string{"paper", "fast"},
		func(ctx context.Context, o Options) (*Table, error) { return TableVI() })
	registerTable("tco-oversub", 90, []string{"paper", "fast"},
		func(ctx context.Context, o Options) (*Table, error) {
			t, _, _, err := OversubTCO()
			return t, err
		})
}
