package experiments

import (
	"context"
	"fmt"

	"immersionoc/internal/fluids"
	"immersionoc/internal/power"
	"immersionoc/internal/reliability"
	"immersionoc/internal/thermal"
)

// TankRow is one point of the tank overclocking-budget sweep.
type TankRow struct {
	OverclockedServers int
	HeatW              float64
	BathC              float64
	TjOverclockedC     float64
	LifetimeYears      float64
	WithinBudget       bool
}

// TankData sweeps the number of simultaneously overclocked blades in
// the 36-server production tank and evaluates the vessel-level
// consequences: bath temperature, the overclocked blades' junction
// temperature, and their projected lifetime. The per-socket analysis of
// Table V holds only while the condenser keeps the bath at the fluid's
// boiling point; past the budget every server in the tank runs hotter.
func TankData() ([]TankRow, int, error) {
	const (
		servers  = 36
		nominalW = 658.0 // immersed blade (fans removed)
		ocW      = 858.0 // +200 W for two overclocked sockets
		socketW  = power.OverclockedSocketW
	)
	boiler := fluids.Boiler{Fluid: fluids.FC3284, AreaCm2: 28, BEC: true, SpreadingResistance: 0.065}

	tank := thermal.LargeTank()
	budget := tank.OverclockBudget(servers, nominalW, ocW)

	var rows []TankRow
	for n := 0; n <= servers; n += 6 {
		heat := float64(servers-n)*nominalW + float64(n)*ocW
		bath := tank.SteadyBathC(heat)
		// Junction temperature of an overclocked socket at this bath.
		sh, err := boiler.Superheat(socketW)
		if err != nil {
			return nil, 0, err
		}
		tj := bath + sh + boiler.SpreadingResistance*socketW
		life, err := reliability.Composite5nm.Lifetime(reliability.Condition{
			VoltageV: power.OverclockedVoltage,
			TjMaxC:   tj,
			TjMinC:   bath,
		})
		if err != nil {
			return nil, 0, err
		}
		rows = append(rows, TankRow{
			OverclockedServers: n,
			HeatW:              heat,
			BathC:              bath,
			TjOverclockedC:     tj,
			LifetimeYears:      life,
			WithinBudget:       !tank.OverBudget(heat),
		})
	}
	return rows, budget, nil
}

// TankEnvelope renders the tank-level overclocking budget experiment.
func TankEnvelope() (*Table, error) {
	rows, budget, err := TankData()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Extension — tank-level overclocking budget (36-blade production tank, FC-3284)",
		Header: []string{"OC servers", "Heat", "Bath", "Tj (OC socket)", "OC lifetime", "Within budget"},
		Notes: []string{
			"the per-socket Table V analysis assumes the bath stays at the boiling point;",
			"past the condenser budget every blade in the tank runs hotter",
			fmt.Sprintf("condenser overclock budget: %d of 36 servers simultaneously", budget),
		},
	}
	for _, r := range rows {
		ok := "yes"
		if !r.WithinBudget {
			ok = "no"
		}
		t.AddRow(fmt.Sprintf("%d", r.OverclockedServers),
			fmt.Sprintf("%.1f kW", r.HeatW/1000),
			fmt.Sprintf("%.1f°C", r.BathC),
			fmt.Sprintf("%.1f°C", r.TjOverclockedC),
			fmt.Sprintf("%.1f years", r.LifetimeYears),
			ok)
	}
	return t, nil
}

func init() {
	registerTable("tank", 260, []string{"extension", "fast"},
		func(ctx context.Context, o Options) (*Table, error) { return TankEnvelope() })
}
