package experiments

import (
	"context"
	"fmt"

	"immersionoc/internal/cluster"
	"immersionoc/internal/core"
	"immersionoc/internal/vm"
)

// MigrationStage captures the fleet at one step of the stop-gap story.
type MigrationStage struct {
	Stage             string
	OversubscribedSrv int
	// NeededSpeedup is the worst-case overclocking speedup required
	// to hide the oversubscription (1.0 = none needed).
	NeededSpeedup float64
	// Overclocked reports whether any server needs its overclock.
	Overclocked bool
	Moves       int
}

// MigrationData plays the §V sequence: a burst of arrivals
// oversubscribes a server; overclocking hides the interference
// immediately (µs-scale); live migration — resource-hungry and lengthy
// — then spreads the VMs and the overclock is revoked.
func MigrationData() ([]MigrationStage, error) {
	c := cluster.New(cluster.TwoSocketBlade, cluster.Policy{CPUOversubRatio: 0.25}, 3)
	// A placement burst: fifteen 4-vcore VMs consolidate (best fit)
	// onto server 0, oversubscribing it 60/48.
	for i := 1; i <= 15; i++ {
		v := &vm.VM{ID: i, Type: vm.Size4, AvgUtil: 0.9, ScalableFraction: 0.8}
		if _, err := c.Place(v); err != nil {
			return nil, fmt.Errorf("placement burst: %w", err)
		}
	}

	snapshot := func(stage string, moves int) MigrationStage {
		st := c.Stats()
		worst := 1.0
		for _, s := range c.Servers() {
			var demand float64
			for _, v := range s.VMsList() {
				demand += float64(v.Type.VCores) * v.AvgUtil
			}
			if sp := core.MitigationSpeedup(demand, float64(s.Spec.PCores)); sp > worst {
				worst = sp
			}
		}
		return MigrationStage{
			Stage:             stage,
			OversubscribedSrv: st.OversubscribedSrv,
			NeededSpeedup:     worst,
			Overclocked:       worst > 1,
			Moves:             moves,
		}
	}

	stages := []MigrationStage{snapshot("after placement burst (overclock engaged as stop-gap)", 0)}

	// Live migration proceeds in small batches (it is lengthy and
	// resource-hungry); the overclock covers the gap meanwhile.
	for round := 1; ; round++ {
		plan := c.PlanMigrations(2)
		if len(plan) == 0 {
			break
		}
		moved := c.ApplyMigrations(plan)
		stages = append(stages, snapshot(fmt.Sprintf("after migration round %d", round), moved))
	}
	return stages, nil
}

// Migration renders the overclock-as-stopgap / migrate-to-resolve
// sequence.
func Migration() (*Table, error) {
	stages, err := MigrationData()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "§V — Overclocking as a stop-gap until live migration resolves oversubscription",
		Header: []string{"Stage", "Oversubscribed servers", "Needed speedup", "Overclock", "VMs moved"},
		Notes: []string{
			"frequency changes take tens of µs; migration takes minutes — the overclock",
			"holds performance while migration drains the oversubscription, then reverts",
		},
	}
	for _, s := range stages {
		oc := "off"
		if s.Overclocked {
			oc = "on"
		}
		t.AddRow(s.Stage, fmt.Sprintf("%d", s.OversubscribedSrv),
			fmt.Sprintf("%.2f×", s.NeededSpeedup), oc, fmt.Sprintf("%d", s.Moves))
	}
	return t, nil
}

func init() {
	registerTable("migration", 320, []string{"extension"},
		func(ctx context.Context, o Options) (*Table, error) { return Migration() })
}
