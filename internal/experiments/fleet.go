package experiments

import (
	"context"
	"fmt"

	"immersionoc/internal/cluster"
	"immersionoc/internal/sweep"
	"immersionoc/internal/vm"
)

// packOutcome is one fleet's trace replay: peak density, rejected
// arrivals, and the post-replay interference count (only meaningful
// for oversubscribed fleets).
type packOutcome struct {
	peak   float64
	rej    int
	atRisk int
}

// packFleets replays the same generated trace through independent
// fleets, fanning the replays out through sweep.Map under o.Workers.
// The VM slice is shared read-only: PackTrace mutates only its own
// cluster's placement state.
func packFleets(ctx context.Context, o Options, vms []*vm.VM, mk func(i int) *cluster.Cluster) ([]packOutcome, error) {
	return sweep.Map(ctx, 2, sweep.Options{Workers: o.Workers, Tel: o.Tel},
		func(ctx context.Context, i int) (packOutcome, error) {
			c := mk(i)
			peak, rej := c.PackTrace(vms)
			return packOutcome{peak: peak, rej: rej, atRisk: c.InterferenceRisk()}, nil
		})
}

// PackingResult compares packing density with and without
// overclocking-backed oversubscription.
type PackingResult struct {
	BaselineDensity, OversubDensity   float64
	BaselineRejected, OversubRejected int
	// DensityGain is the relative packing-density improvement.
	DensityGain float64
	AtRisk      int
}

// PackingData replays a VM trace through two fleets of equal size: an
// air-cooled fleet (1:1 vcore:pcore) and a 2PIC fleet allowed 20% CPU
// oversubscription backed by overclocking (§V "Dense VM packing").
func PackingData(servers int, trace vm.TraceConfig, oversub float64) PackingResult {
	res, _ := PackingDataCtx(context.Background(), Options{}, servers, trace, oversub)
	return res
}

// PackingDataCtx is PackingData with the two fleet replays fanned out
// through sweep.Map under o.Workers; both replay the same generated
// trace, so the result is worker-count-independent.
func PackingDataCtx(ctx context.Context, o Options, servers int, trace vm.TraceConfig, oversub float64) (PackingResult, error) {
	vms := vm.Generate(trace)
	outs, err := packFleets(ctx, o, vms, func(i int) *cluster.Cluster {
		if i == 0 {
			return cluster.New(cluster.AirBlade, cluster.Policy{}, servers)
		}
		return cluster.New(cluster.TwoSocketBlade, cluster.Policy{CPUOversubRatio: oversub}, servers)
	})
	if err != nil {
		return PackingResult{}, err
	}
	base, over := outs[0], outs[1]
	gain := 0.0
	if base.peak > 0 {
		gain = over.peak/base.peak - 1
	}
	return PackingResult{
		BaselineDensity:  base.peak,
		OversubDensity:   over.peak,
		BaselineRejected: base.rej,
		OversubRejected:  over.rej,
		DensityGain:      gain,
		AtRisk:           over.atRisk,
	}, nil
}

// Packing renders the packing-density experiment.
func Packing() *Table {
	t, _ := packingCtx(context.Background(), Options{})
	return t
}

// packingCtx renders the packing-density experiment from a sweep run.
func packingCtx(ctx context.Context, o Options) (*Table, error) {
	trace := vm.DefaultTrace
	// Sized so steady demand hovers around the air fleet's 1:1
	// capacity: the oversubscribed fleet absorbs the overflow.
	trace.ArrivalRatePerS = 0.012
	res, err := PackingDataCtx(ctx, o, 24, trace, 0.25)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "§V — VM packing density via overclocking-backed oversubscription (24 servers)",
		Header: []string{"Fleet", "Peak density (vcores/pcore)", "Rejected arrivals"},
		Notes:  []string{"paper: overclocking + oversubscription increases packing density by ~20%"},
	}
	t.AddRow("Air-cooled (1:1)", F(res.BaselineDensity, 3), fmt.Sprintf("%d", res.BaselineRejected))
	t.AddRow("2PIC + 25% oversub", F(res.OversubDensity, 3), fmt.Sprintf("%d", res.OversubRejected))
	t.Notes = append(t.Notes,
		fmt.Sprintf("density gain %+.1f%%; oversubscribed servers exceeding even overclocked capacity: %d", res.DensityGain*100, res.AtRisk))
	return t, nil
}

// BufferResult compares static failover buffers with
// overclocking-backed virtual buffers (Figure 6).
type BufferResult struct {
	// StaticRecovered / VirtualRecovered are the fractions of
	// displaced VMs re-created after the failure.
	StaticRecovered, VirtualRecovered float64
	// StaticSellable / VirtualSellable are the vcores the fleet can
	// sell during normal operation (the static buffer idles
	// capacity; the virtual buffer sells it).
	StaticSellable, VirtualSellable int
	Displaced                       int
}

// BuffersData fills two equal fleets to the same demand, fails
// `failures` servers in each, and recovers the displaced VMs: the
// static fleet onto its reserved buffer servers, the virtual fleet
// onto surviving servers via oversubscription + overclocking.
func BuffersData(servers, failures int, bufferFraction float64, trace vm.TraceConfig) BufferResult {
	vms := vm.Generate(trace)

	staticC := cluster.New(cluster.TwoSocketBlade, cluster.Policy{BufferFraction: bufferFraction}, servers)
	// The virtual-buffer fleet runs 1:1 during normal operation and
	// keeps the overclocking headroom in reserve for failover.
	virtualC := cluster.New(cluster.TwoSocketBlade, cluster.Policy{}, servers)

	for _, v := range vms {
		// Steady-state fill: place every VM that fits, no departures.
		staticC.Place(v)  //nolint:errcheck — rejection is the signal
		virtualC.Place(v) //nolint:errcheck
	}
	stStatic := staticC.Stats()
	stVirtual := virtualC.Stats()

	res := BufferResult{
		StaticSellable:  stStatic.VCoresAllocated,
		VirtualSellable: stVirtual.VCoresAllocated,
	}

	dispStatic := staticC.FailServers(failures)
	recStatic := staticC.Recover(dispStatic)
	dispVirtual := virtualC.FailServers(failures)
	// Failover: enable overclocking-backed oversubscription to absorb
	// the displaced VMs on the surviving servers.
	virtualC.SetOversubRatio(0.25)
	recVirtual := virtualC.Recover(dispVirtual)

	res.Displaced = len(dispStatic)
	if len(dispStatic) > 0 {
		res.StaticRecovered = float64(recStatic) / float64(len(dispStatic))
	}
	if len(dispVirtual) > 0 {
		res.VirtualRecovered = float64(recVirtual) / float64(len(dispVirtual))
	}
	return res
}

// Buffers renders the buffer-reduction experiment.
func Buffers() *Table {
	trace := vm.DefaultTrace
	trace.ArrivalRatePerS = 0.25
	trace.DurationS = 24 * 3600
	trace.MeanLifetimeS = 48 * 3600
	res := BuffersData(20, 2, 0.10, trace)
	t := &Table{
		Title:  "Figure 6 — Static failover buffers vs overclocking-backed virtual buffers (20 servers, 2 failures)",
		Header: []string{"Strategy", "Sellable vcores (normal op)", "Displaced VMs recovered"},
		Notes: []string{
			"the virtual buffer sells the reserve capacity during normal operation and absorbs",
			"failover through oversubscription + overclocking",
		},
	}
	t.AddRow("Static buffer (10% reserved)", fmt.Sprintf("%d", res.StaticSellable), Pct(res.StaticRecovered))
	t.AddRow("Virtual buffer (OC-backed)", fmt.Sprintf("%d", res.VirtualSellable), Pct(res.VirtualRecovered))
	return t
}

// CapacityCrisisResult quantifies Figure 7: a demand overshoot against
// fixed supply, bridged by overclocking-backed oversubscription.
type CapacityCrisisResult struct {
	// DemandVCores is the peak demanded vcores; SupplyPCores the
	// fleet's physical cores.
	DemandVCores, SupplyPCores int
	// ServedBaseline / ServedOC are peak vcores actually placed.
	ServedBaseline, ServedOC int
	// DeniedBaseline / DeniedOC are VM requests denied.
	DeniedBaseline, DeniedOC int
}

// CapacityCrisisData replays a demand trace whose peak exceeds the
// fleet's 1:1 capacity (the red gap of Figure 7) through a baseline and
// an overclocking-backed fleet, counting denied VM requests.
func CapacityCrisisData(servers int, trace vm.TraceConfig) CapacityCrisisResult {
	res, _ := CapacityCrisisDataCtx(context.Background(), Options{}, servers, trace)
	return res
}

// CapacityCrisisDataCtx is CapacityCrisisData with the two fleet
// replays fanned out through sweep.Map under o.Workers.
func CapacityCrisisDataCtx(ctx context.Context, o Options, servers int, trace vm.TraceConfig) (CapacityCrisisResult, error) {
	vms := vm.Generate(trace)
	peak := 0
	cur := 0
	for _, ev := range vm.Events(vms) {
		if ev.Arrival {
			cur += ev.VM.Type.VCores
			if cur > peak {
				peak = cur
			}
		} else {
			cur -= ev.VM.Type.VCores
		}
	}

	res := CapacityCrisisResult{DemandVCores: peak, SupplyPCores: servers * cluster.TwoSocketBlade.PCores}
	outs, err := packFleets(ctx, o, vms, func(i int) *cluster.Cluster {
		if i == 0 {
			return cluster.New(cluster.TwoSocketBlade, cluster.Policy{}, servers)
		}
		return cluster.New(cluster.TwoSocketBlade, cluster.Policy{CPUOversubRatio: 0.20}, servers)
	})
	if err != nil {
		return CapacityCrisisResult{}, err
	}
	res.DeniedBaseline = outs[0].rej
	res.DeniedOC = outs[1].rej
	res.ServedBaseline = int(outs[0].peak * float64(res.SupplyPCores))
	res.ServedOC = int(outs[1].peak * float64(res.SupplyPCores))
	return res, nil
}

// CapacityCrisis renders the capacity-crisis experiment.
func CapacityCrisis() *Table {
	t, _ := capacityCrisisCtx(context.Background(), Options{})
	return t
}

// capacityCrisisCtx renders the capacity-crisis experiment from a
// sweep run.
func capacityCrisisCtx(ctx context.Context, o Options) (*Table, error) {
	trace := vm.DefaultTrace
	trace.Seed = 99
	trace.ArrivalRatePerS = 0.012
	trace.DurationS = 2 * 24 * 3600
	trace.MeanLifetimeS = 24 * 3600
	res, err := CapacityCrisisDataCtx(ctx, o, 16, trace)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 7 — Capacity crisis mitigation (demand beyond supply)",
		Header: []string{"Fleet", "VM requests denied"},
		Notes:  []string{fmt.Sprintf("peak demand %d vcores against %d pcores", res.DemandVCores, res.SupplyPCores)},
	}
	t.AddRow("1:1 (no overclocking)", fmt.Sprintf("%d", res.DeniedBaseline))
	t.AddRow("overclocking-backed +20%", fmt.Sprintf("%d", res.DeniedOC))
	return t, nil
}

func init() {
	registerTable("packing", 180, []string{"paper", "sim"},
		func(ctx context.Context, o Options) (*Table, error) { return packingCtx(ctx, o) })
	registerTable("buffers", 190, []string{"paper", "sim"},
		func(ctx context.Context, o Options) (*Table, error) { return Buffers(), nil })
	registerTable("capacity", 200, []string{"paper", "sim"},
		func(ctx context.Context, o Options) (*Table, error) { return capacityCrisisCtx(ctx, o) })
}
